package amrproxyio_test

import (
	"strings"
	"testing"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/report"
	"amrproxyio/internal/resilience"
)

// TestMitigation512Ranks is the PR's headline acceptance: a 512-rank
// surrogate campaign case under a harsh fault plan (long target outage +
// a 3 s MTBF interrupt process), run unmitigated and mitigated with the
// default policy. Mitigation must strictly raise forward progress and
// strictly cut retry-storm time — the closed loop has to beat doing
// nothing, not just differ from it.
func TestMitigation512Ranks(t *testing.T) {
	base := campaign.Case{
		Name: "mit512", NCell: 4096, MaxLevel: 2, MaxStep: 20, PlotInt: 2,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: campaign.EngineSurrogate,
		Storage: campaign.StorageTiered, ComputeSeconds: 0.5,
		Faults: &faults.Plan{
			Events: []faults.Event{
				{Kind: faults.KindTargetOutage, Start: 0, Target: 0},
				{Kind: faults.KindTargetOutage, Start: 0.5, Target: 1},
			},
			MTBFSeconds: 3,
			Seed:        9,
		},
	}
	run := func(p *resilience.Policy, name string) resilience.Outcome {
		c := base
		c.Name = name
		c.Mitigate = p
		fs := iosim.New(c.FSConfig(true), "")
		res, err := campaign.Run(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs.FaultEvents()) == 0 {
			t.Fatalf("%s: plan injected no faults; the comparison is vacuous", name)
		}
		return resilience.Evaluate(name, c.Faults, fs.Ledger(), fs.FaultEvents(), res.Mitigation)
	}
	unmit := run(nil, "mit512_nomitigate")
	mit := run(resilience.DefaultPolicy(), "mit512_mitigate")

	if unmit.Stats != (resilience.Stats{}) {
		t.Errorf("unmitigated run carries engine stats: %+v", unmit.Stats)
	}
	if mit.ForwardProgress <= unmit.ForwardProgress {
		t.Errorf("mitigated forward progress %.4f <= unmitigated %.4f",
			mit.ForwardProgress, unmit.ForwardProgress)
	}
	if mit.RetryStormSeconds >= unmit.RetryStormSeconds {
		t.Errorf("mitigated retry-storm %.4gs >= unmitigated %.4gs",
			mit.RetryStormSeconds, unmit.RetryStormSeconds)
	}
	if mit.Stats.QuarantinedTargets == 0 {
		t.Errorf("no target was ever quarantined: %+v", mit.Stats)
	}
	if mit.Stats.AdaptiveCheckpoints == 0 {
		t.Errorf("adaptive cadence never checkpointed: %+v", mit.Stats)
	}
	if mit.Stats.ObservedMTBFSeconds <= 0 {
		t.Errorf("online MTBF estimate never came live: %+v", mit.Stats)
	}

	out := report.MitigationReport([]report.MitigationPair{{
		Base:        "mit512",
		Unmitigated: report.MitigationSummary{Name: unmit.Name, Outcome: unmit},
		Mitigated:   report.MitigationSummary{Name: mit.Name, Outcome: mit},
	}})
	if !strings.Contains(out, "fwd-progress delta: +") {
		t.Errorf("mitigation report lost the positive delta marker:\n%s", out)
	}
	t.Logf("512-rank mitigation comparison:\n%s", out)
}

// TestMitigationMacsioQuarantine pins the quarantine loop on the proxy
// app, where no remap can route around a dead target: after the breaker
// trips, later dumps' writes to the dead target must be absorbed as
// Mitigated events (immediate failover, zero storm seconds), and the
// mitigated run must strictly beat the unmitigated one.
func TestMitigationMacsioQuarantine(t *testing.T) {
	cfg := macsio.DefaultConfig()
	cfg.NProcs = 64
	cfg.NumDumps = 8
	cfg.PartSize = 200000
	cfg.ComputeTime = 1
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindTargetOutage, Start: 0, Target: 0},
		{Kind: faults.KindTargetOutage, Start: 0, Target: 1},
	}}
	run := func(mitigate bool) ([]iosim.FaultEvent, resilience.Outcome) {
		fsCfg := iosim.DefaultConfig()
		fsCfg.JitterSigma = 0
		fsCfg.Topology = iosim.TopologyForCase(16, cfg.NProcs)
		fsCfg.Faults = plan.Injector(fsCfg.Topology)
		fs := iosim.New(fsCfg, "")
		var eng *resilience.Engine
		if mitigate {
			eng = resilience.ForFileSystem(resilience.DefaultPolicy(), fs, cfg.NProcs)
			if eng == nil {
				t.Fatal("no engine for mitigated macsio run")
			}
		}
		if _, err := macsio.RunMitigated(fs, cfg, eng); err != nil {
			t.Fatal(err)
		}
		return fs.FaultEvents(), resilience.Evaluate("macsio", plan, fs.Ledger(), fs.FaultEvents(), eng.Stats())
	}
	evs, unmit := run(false)
	for i, ev := range evs {
		if ev.Mitigated {
			t.Fatalf("unmitigated run produced a mitigated event %d: %+v", i, ev)
		}
	}
	mevs, mit := run(true)
	if mit.MitigatedWrites == 0 {
		t.Fatal("quarantine absorbed no writes on the proxy app")
	}
	var sawMitigated bool
	for _, ev := range mevs {
		if !ev.Mitigated {
			continue
		}
		sawMitigated = true
		if ev.Seconds != 0 || ev.Retries != 0 {
			t.Errorf("mitigated event still paid the storm: %+v", ev)
		}
		if ev.FailoverTarget < 0 {
			t.Errorf("mitigated event did not fail over: %+v", ev)
		}
	}
	if !sawMitigated {
		t.Fatal("no Mitigated events in the mitigated run's stream")
	}
	if mit.ForwardProgress <= unmit.ForwardProgress {
		t.Errorf("mitigated macsio forward progress %.4f <= unmitigated %.4f",
			mit.ForwardProgress, unmit.ForwardProgress)
	}
	if mit.RetryStormSeconds >= unmit.RetryStormSeconds {
		t.Errorf("mitigated macsio retry-storm %.4gs >= unmitigated %.4gs",
			mit.RetryStormSeconds, unmit.RetryStormSeconds)
	}
}
