// Package plotfile implements the AMReX plotfile output format the paper's
// Fig. 2 diagrams: a per-step directory containing a top-level Header and
// job_info, and one Level_N subdirectory per mesh level holding an ASCII
// Cell_H metadata file plus binary Cell_D_XXXXX data files written in the
// N-to-N pattern — one file per MPI task per level, and only when the task
// owns data at that level.
//
// # Writer
//
// The writer runs as an SPMD program under mpisim (rank 0 writes the
// metadata, every rank writes its own Cell_D file after a barrier, the
// same ordering AMReX's plotfile path performs) and routes all bytes
// through the iosim filesystem model, labeling each record with
// (step, level) so the analysis layer can reconstruct the paper's Eq. (2)
// hierarchy of output sizes. Checkpoint output (checkpoint.go) reuses the
// same machinery for the conserved state and restarts exactly from it.
//
// A size-only path (a LevelSpec with nil State) produces byte-for-byte
// identical ledger entries without materializing field data — CellDBytes
// computes every FAB record size arithmetically. The Summit-scale
// surrogate pipeline runs entirely on this path, which is why
// 17-billion-cell dumps never allocate field memory.
//
// # The byte-identical encoder pin
//
// Encoders are allocation-frugal by design: encodeCellD preallocates the
// exact CellDBytes buffer and emits float64 rows with math.Float64bits —
// one allocation per Cell_D file, no reflection — and the ASCII metadata
// encoders (EncodeHeader, EncodeCellH) are strconv-append builders rather
// than per-box fmt.Fprintf calls. Their outputs are pinned byte-identical
// to the seed's original fmt/binary.Write encoders by equivalence tests
// (encode_equiv_test.go) that re-implement the historical encoders and
// compare outputs across mesh shapes. That pin is a contract: any future
// encoder change must preserve the on-disk format bit-for-bit, because
// ledger byte counts — the paper's measured quantity — and the reader's
// round-trip both depend on it. CI runs an allocation gate
// (TestEncodeCellDAllocations) so the O(1)-allocation property can't
// silently regress either.
package plotfile
