package plotfile

// Equivalence tests pinning the strconv-append / preallocated-buffer
// encoders byte-identical to the original fmt + binary.Write encoders
// they replaced. The seed implementations are kept here verbatim as the
// reference; any formatting drift in the rewrite fails these tests.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"testing"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

// --- seed (reference) encoders, verbatim from the original package ------

func seedFormatBox(b grid.Box) string {
	return fmt.Sprintf("((%d,%d) (%d,%d) (0,0))", b.Lo.X, b.Lo.Y, b.Hi.X, b.Hi.Y)
}

func seedFabHeader(b grid.Box, ncomp int) string {
	return fmt.Sprintf("FAB %s %d\n", seedFormatBox(b), ncomp)
}

func seedEncodeHeader(spec Spec) string {
	var sb strings.Builder
	fmt.Fprintln(&sb, FormatVersion)
	fmt.Fprintln(&sb, spec.NComp())
	for _, v := range spec.VarNames {
		fmt.Fprintln(&sb, v)
	}
	fmt.Fprintln(&sb, 2)
	fmt.Fprintf(&sb, "%.17g\n", spec.Time)
	fmt.Fprintln(&sb, len(spec.Levels)-1)
	g0 := spec.Levels[0].Geom
	fmt.Fprintf(&sb, "%.17g %.17g\n", g0.ProbLo[0], g0.ProbLo[1])
	fmt.Fprintf(&sb, "%.17g %.17g\n", g0.ProbHi[0], g0.ProbHi[1])
	for l := 0; l < len(spec.Levels)-1; l++ {
		if l > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", spec.Levels[l].RefRatio)
	}
	sb.WriteByte('\n')
	for l, lev := range spec.Levels {
		if l > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(seedFormatBox(lev.Geom.Domain))
	}
	sb.WriteByte('\n')
	for l := range spec.Levels {
		if l > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", spec.Step)
	}
	sb.WriteByte('\n')
	for _, lev := range spec.Levels {
		fmt.Fprintf(&sb, "%.17g %.17g\n", lev.Geom.CellSize[0], lev.Geom.CellSize[1])
	}
	fmt.Fprintln(&sb, 0)
	fmt.Fprintln(&sb, 0)
	return sb.String()
}

func seedEncodeCellH(spec Spec, level int) string {
	lev := spec.Levels[level]
	var sb strings.Builder
	fmt.Fprintln(&sb, 1)
	fmt.Fprintln(&sb, 1)
	fmt.Fprintln(&sb, spec.NComp())
	fmt.Fprintln(&sb, 0)
	fmt.Fprintf(&sb, "(%d 0\n", lev.BA.Len())
	for _, b := range lev.BA.Boxes {
		fmt.Fprintln(&sb, seedFormatBox(b))
	}
	fmt.Fprintln(&sb, ")")
	fmt.Fprintln(&sb, lev.BA.Len())
	offsets := map[int]int64{}
	for i, b := range lev.BA.Boxes {
		rank := lev.DM.Owner[i]
		fmt.Fprintf(&sb, "FabOnDisk: Cell_D_%05d %d\n", rank, offsets[rank])
		offsets[rank] += int64(len(seedFabHeader(b, spec.NComp()))) + b.NumPts()*int64(spec.NComp())*8
	}
	return sb.String()
}

func seedEncodeCellD(lev LevelSpec, owned []int, ncomp int) []byte {
	var buf bytes.Buffer
	for _, idx := range owned {
		b := lev.BA.Boxes[idx]
		buf.WriteString(seedFabHeader(b, ncomp))
		f := lev.State.FABs[idx]
		vals := make([]float64, 0, b.NumPts())
		for c := 0; c < ncomp; c++ {
			vals = vals[:0]
			for j := b.Lo.Y; j <= b.Hi.Y; j++ {
				for i := b.Lo.X; i <= b.Hi.X; i++ {
					vals = append(vals, f.At(i, j, c))
				}
			}
			_ = binary.Write(&buf, binary.LittleEndian, vals)
		}
	}
	return buf.Bytes()
}

func seedEncodeCheckpointHeader(spec CheckpointSpec) string {
	var sb strings.Builder
	fmt.Fprintln(&sb, CheckpointFormatVersion)
	fmt.Fprintf(&sb, "%d\n", spec.Step)
	fmt.Fprintf(&sb, "%.17g\n", spec.Time)
	fmt.Fprintf(&sb, "%.17g\n", spec.LastDt)
	fmt.Fprintf(&sb, "%d\n", spec.NComp)
	fmt.Fprintf(&sb, "%d\n", spec.NProcs)
	fmt.Fprintf(&sb, "%d\n", len(spec.Levels))
	for _, lev := range spec.Levels {
		g := lev.Geom
		fmt.Fprintf(&sb, "%s %.17g %.17g %.17g %.17g %d\n",
			seedFormatBox(g.Domain), g.ProbLo[0], g.ProbLo[1], g.ProbHi[0], g.ProbHi[1], lev.RefRatio)
		fmt.Fprintf(&sb, "%d\n", lev.BA.Len())
		for i, b := range lev.BA.Boxes {
			fmt.Fprintf(&sb, "%s %d\n", seedFormatBox(b), lev.DM.Owner[i])
		}
	}
	return sb.String()
}

func seedEncodeJobInfo(spec Spec) string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "==============================================================================")
	fmt.Fprintln(&sb, " amrproxyio Job Information")
	fmt.Fprintln(&sb, "==============================================================================")
	fmt.Fprintf(&sb, "number of MPI processes: %d\n", spec.NProcs)
	fmt.Fprintf(&sb, "plot step: %d\n", spec.Step)
	fmt.Fprintf(&sb, "simulation time: %.17g\n", spec.Time)
	fmt.Fprintf(&sb, "levels: %d\n", len(spec.Levels))
	for l, lev := range spec.Levels {
		fmt.Fprintf(&sb, "level %d: %d grids, %d cells\n", l, lev.BA.Len(), lev.BA.NumPts())
	}
	return sb.String()
}

// --- fixtures ------------------------------------------------------------

// equivSpecs covers the formatting corners: irrational float values that
// stress %.17g, multi-digit box coordinates, many components, and ranks
// needing %05d padding.
func equivSpecs() []Spec {
	specs := []Spec{twoLevelSpec(4, true), twoLevelSpec(1, true)}

	dom := grid.NewBox(grid.IV(0, 0), grid.IV(1023, 767))
	g := grid.NewGeom(dom, [2]float64{-1.0 / 3.0, 0}, [2]float64{math.Pi, math.E})
	ba := amr.SingleBoxArray(dom, 256, 8)
	dm := amr.MustDistribute(ba, 12, amr.DistKnapsack)
	mf := amr.NewMultiFab(ba, dm, 5, 0)
	mf.ForEachFAB(func(idx int, f *amr.FAB) {
		for c := 0; c < 5; c++ {
			f.FillConst(c, math.Sqrt(float64(idx+1))*math.Pow(10, float64(c-2)))
		}
	})
	specs = append(specs, Spec{
		Root:     "plt31415",
		VarNames: []string{"a", "b", "c", "d", "e"},
		Time:     1.0 / 3.0,
		Step:     31415,
		NProcs:   12,
		Levels:   []LevelSpec{{Geom: g, BA: ba, DM: dm, RefRatio: 4, State: mf}},
	})
	return specs
}

// --- tests ---------------------------------------------------------------

func TestEncodeHeaderMatchesSeed(t *testing.T) {
	for i, spec := range equivSpecs() {
		if got, want := EncodeHeader(spec), seedEncodeHeader(spec); got != want {
			t.Errorf("spec %d: Header drifted from seed encoder:\n got %q\nwant %q", i, got, want)
		}
		if got, want := encodeJobInfo(spec), seedEncodeJobInfo(spec); got != want {
			t.Errorf("spec %d: job_info drifted from seed encoder:\n got %q\nwant %q", i, got, want)
		}
	}
}

func TestEncodeCellHMatchesSeed(t *testing.T) {
	for i, spec := range equivSpecs() {
		for l := range spec.Levels {
			if got, want := EncodeCellH(spec, l), seedEncodeCellH(spec, l); got != want {
				t.Errorf("spec %d level %d: Cell_H drifted from seed encoder:\n got %q\nwant %q", i, l, got, want)
			}
		}
	}
}

func TestEncodeCellDMatchesSeed(t *testing.T) {
	for i, spec := range equivSpecs() {
		for l, lev := range spec.Levels {
			for rank := 0; rank < spec.NProcs; rank++ {
				owned := lev.DM.RankBoxes(rank)
				if len(owned) == 0 {
					continue
				}
				got := encodeCellD(lev, owned, spec.NComp())
				want := seedEncodeCellD(lev, owned, spec.NComp())
				if !bytes.Equal(got, want) {
					t.Errorf("spec %d level %d rank %d: Cell_D drifted from seed encoder (%d vs %d bytes)",
						i, l, rank, len(got), len(want))
				}
				if int64(len(got)) != CellDBytes(lev.BA, owned, spec.NComp()) {
					t.Errorf("spec %d level %d rank %d: CellDBytes %d != encoded %d",
						i, l, rank, CellDBytes(lev.BA, owned, spec.NComp()), len(got))
				}
			}
		}
	}
}

func TestEncodeCheckpointHeaderMatchesSeed(t *testing.T) {
	for i, spec := range equivSpecs() {
		ck := CheckpointSpec{
			Root:   "chk" + spec.Root,
			Time:   spec.Time,
			Step:   spec.Step,
			LastDt: spec.Time / 7,
			NComp:  spec.NComp(),
			Levels: spec.Levels,
			NProcs: spec.NProcs,
		}
		if got, want := encodeCheckpointHeader(ck), seedEncodeCheckpointHeader(ck); got != want {
			t.Errorf("spec %d: checkpoint Header drifted from seed encoder:\n got %q\nwant %q", i, got, want)
		}
	}
}

func TestFormatBoxAndFabHeaderMatchSeed(t *testing.T) {
	boxes := []grid.Box{
		grid.NewBox(grid.IV(0, 0), grid.IV(0, 0)),
		grid.NewBox(grid.IV(7, 19), grid.IV(131071, 99999)),
		grid.NewBox(grid.IV(-32, -8), grid.IV(-1, 255)),
	}
	for _, b := range boxes {
		if got, want := formatBox(b), seedFormatBox(b); got != want {
			t.Errorf("formatBox(%v) = %q, want %q", b, got, want)
		}
		for _, ncomp := range []int{1, 10, 123} {
			if got, want := fabHeader(b, ncomp), seedFabHeader(b, ncomp); got != want {
				t.Errorf("fabHeader(%v, %d) = %q, want %q", b, ncomp, got, want)
			}
			if got, want := fabHeaderLen(b, ncomp), len(seedFabHeader(b, ncomp)); got != want {
				t.Errorf("fabHeaderLen(%v, %d) = %d, want %d", b, ncomp, got, want)
			}
		}
	}
}

func TestAppendZeroPaddedMatchesFmt(t *testing.T) {
	for _, v := range []int64{0, 3, 42, 4095, 99999, 100000, 1234567, -1, -42, -99999} {
		got := string(appendZeroPadded(nil, v, 5))
		want := fmt.Sprintf("%05d", v)
		if got != want {
			t.Errorf("appendZeroPadded(%d, 5) = %q, want %q", v, got, want)
		}
	}
	for _, rank := range []int{0, 7, 31, 99999, 123456} {
		got := CellDPath("plt00040", 2, rank)
		want := fmt.Sprintf("%s/Level_%d/Cell_D_%05d", "plt00040", 2, rank)
		if got != want {
			t.Errorf("CellDPath rank %d = %q, want %q", rank, got, want)
		}
	}
}

// TestEncodeCellDAllocations is the allocation gate for the tentpole: one
// buffer per Cell_D file, nothing per component or per row.
func TestEncodeCellDAllocations(t *testing.T) {
	spec := twoLevelSpec(2, true)
	lev := spec.Levels[0]
	owned := lev.DM.RankBoxes(0)
	if len(owned) == 0 {
		t.Fatal("fixture rank 0 owns no boxes")
	}
	allocs := testing.AllocsPerRun(20, func() {
		_ = encodeCellD(lev, owned, spec.NComp())
	})
	if allocs > 1 {
		t.Errorf("encodeCellD allocates %.1f objects per file, want <= 1 (the output buffer)", allocs)
	}
}
