package plotfile

// Allocation benchmarks for the encode hot path. BenchmarkEncodeCellD is
// the headline number the tentpole gates on (one allocation per Cell_D
// file); BenchmarkEncodeCellDSeed keeps the replaced reflection-based
// encoder measurable for before/after comparison (see CHANGES.md).

import (
	"testing"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

// benchLevel builds a single-rank 256^2 level with 10 components — a
// realistic per-rank Cell_D payload (~5 MB).
func benchLevel(b *testing.B) (LevelSpec, []int, int) {
	const ncomp = 10
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(255, 255))
	g := grid.NewGeom(dom, [2]float64{0, 0}, [2]float64{1, 1})
	ba := amr.SingleBoxArray(dom, 64, 8)
	dm := amr.MustDistribute(ba, 1, amr.DistKnapsack)
	mf := amr.NewMultiFab(ba, dm, ncomp, 0)
	mf.ForEachFAB(func(idx int, f *amr.FAB) {
		for c := 0; c < ncomp; c++ {
			f.FillConst(c, float64(idx)*1.25+float64(c))
		}
	})
	lev := LevelSpec{Geom: g, BA: ba, DM: dm, RefRatio: 2, State: mf}
	owned := dm.RankBoxes(0)
	if len(owned) == 0 {
		b.Fatal("rank 0 owns nothing")
	}
	return lev, owned, ncomp
}

func BenchmarkEncodeCellD(b *testing.B) {
	lev, owned, ncomp := benchLevel(b)
	b.SetBytes(CellDBytes(lev.BA, owned, ncomp))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := encodeCellD(lev, owned, ncomp); len(buf) == 0 {
			b.Fatal("empty encode")
		}
	}
}

func BenchmarkEncodeCellDSeed(b *testing.B) {
	lev, owned, ncomp := benchLevel(b)
	b.SetBytes(CellDBytes(lev.BA, owned, ncomp))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := seedEncodeCellD(lev, owned, ncomp); len(buf) == 0 {
			b.Fatal("empty encode")
		}
	}
}

func BenchmarkEncodeCellH(b *testing.B) {
	spec := twoLevelSpec(4, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for l := range spec.Levels {
			if EncodeCellH(spec, l) == "" {
				b.Fatal("empty Cell_H")
			}
		}
	}
}

func BenchmarkEncodeCellHSeed(b *testing.B) {
	spec := twoLevelSpec(4, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for l := range spec.Levels {
			if seedEncodeCellH(spec, l) == "" {
				b.Fatal("empty Cell_H")
			}
		}
	}
}

func BenchmarkEncodeHeader(b *testing.B) {
	spec := twoLevelSpec(4, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if EncodeHeader(spec) == "" {
			b.Fatal("empty Header")
		}
	}
}
