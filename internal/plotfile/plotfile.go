// Package plotfile implements the AMReX plotfile output format the paper's
// Fig. 2 diagrams: a per-step directory containing a top-level Header and
// job_info, and one Level_N subdirectory per mesh level holding an ASCII
// Cell_H metadata file plus binary Cell_D_XXXXX data files written in the
// N-to-N pattern — one file per MPI task per level, and only when the task
// owns data at that level.
//
// The writer runs as an SPMD program under mpisim (rank 0 writes the
// metadata, every rank writes its own Cell_D file) and routes all bytes
// through the iosim filesystem model, labeling each record with
// (step, level) so the analysis layer can reconstruct the paper's Eq. (2)
// hierarchy of output sizes.
//
// A size-only path (WriteSizes) produces byte-for-byte identical ledger
// entries without materializing field data; the Summit-scale surrogate
// pipeline uses it.
package plotfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/mpisim"
)

// FormatVersion is the first line of every Header.
const FormatVersion = "AMReX-PlotfileProxy-V1.0"

// LevelSpec describes one mesh level of a plot dump.
type LevelSpec struct {
	Geom     grid.Geom
	BA       amr.BoxArray
	DM       amr.DistributionMapping
	RefRatio int // ratio to the next finer level (unused on the finest)
	// State supplies field data; nil selects size-only accounting.
	State *amr.MultiFab
}

// Spec is a complete plot dump description.
type Spec struct {
	Root     string // plotfile directory name, e.g. "plt00020"
	VarNames []string
	Time     float64
	Step     int
	Levels   []LevelSpec
	NProcs   int
}

// NComp returns the number of plotted components.
func (s Spec) NComp() int { return len(s.VarNames) }

// OutputRecord summarizes bytes written for one (step, level, rank) cell
// of the paper's Eq. (2) hierarchy.
type OutputRecord struct {
	Step  int   `json:"step"`
	Level int   `json:"level"`
	Rank  int   `json:"rank"`
	Bytes int64 `json:"bytes"`
}

// Write emits the full plotfile through fs, returning the per-(level,rank)
// records. If every LevelSpec has non-nil State the actual FAB data is
// serialized; otherwise sizes are modeled exactly.
func Write(fs *iosim.FileSystem, spec Spec) ([]OutputRecord, error) {
	if spec.NProcs < 1 {
		return nil, fmt.Errorf("plotfile: nprocs = %d", spec.NProcs)
	}
	if len(spec.Levels) == 0 {
		return nil, fmt.Errorf("plotfile: no levels")
	}
	type rankRec struct {
		level int
		rank  int
		bytes int64
	}
	results := make([][]rankRec, spec.NProcs)
	labels := func(level int) iosim.Labels {
		return iosim.Labels{Step: spec.Step, Level: level}
	}

	fs.BeginBurst(spec.NProcs)
	defer fs.EndBurst()

	err := mpisim.Run(spec.NProcs, func(c *mpisim.Comm) error {
		rank := c.Rank()
		if rank == 0 {
			if err := fs.Mkdir(0, spec.Root); err != nil {
				return err
			}
			hdr := EncodeHeader(spec)
			if _, err := fs.Write(0, spec.Root+"/Header", []byte(hdr), labels(0)); err != nil {
				return err
			}
			ji := encodeJobInfo(spec)
			if _, err := fs.Write(0, spec.Root+"/job_info", []byte(ji), labels(0)); err != nil {
				return err
			}
			for l := range spec.Levels {
				if err := fs.Mkdir(0, fmt.Sprintf("%s/Level_%d", spec.Root, l)); err != nil {
					return err
				}
				ch := EncodeCellH(spec, l)
				path := fmt.Sprintf("%s/Level_%d/Cell_H", spec.Root, l)
				if _, err := fs.Write(0, path, []byte(ch), labels(l)); err != nil {
					return err
				}
			}
		}
		// All ranks wait for the directory structure before writing data,
		// the same barrier AMReX's plotfile path performs.
		c.Barrier()

		for l, lev := range spec.Levels {
			owned := lev.DM.RankBoxes(rank)
			if len(owned) == 0 {
				continue // the paper's "file only when the task has data"
			}
			path := fmt.Sprintf("%s/Level_%d/Cell_D_%05d", spec.Root, l, rank)
			var nbytes int64
			if lev.State != nil {
				data := encodeCellD(lev, owned, spec.NComp())
				if _, err := fs.Write(rank, path, data, labels(l)); err != nil {
					return err
				}
				nbytes = int64(len(data))
			} else {
				nbytes = CellDBytes(lev.BA, owned, spec.NComp())
				if _, err := fs.WriteSize(rank, path, nbytes, labels(l)); err != nil {
					return err
				}
			}
			results[rank] = append(results[rank], rankRec{level: l, rank: rank, bytes: nbytes})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []OutputRecord
	for _, rr := range results {
		for _, r := range rr {
			out = append(out, OutputRecord{Step: spec.Step, Level: r.level, Rank: r.rank, Bytes: r.bytes})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Rank < out[j].Rank
	})
	return out, nil
}

// EncodeHeader renders the top-level Header file.
func EncodeHeader(spec Spec) string {
	var sb strings.Builder
	fmt.Fprintln(&sb, FormatVersion)
	fmt.Fprintln(&sb, spec.NComp())
	for _, v := range spec.VarNames {
		fmt.Fprintln(&sb, v)
	}
	fmt.Fprintln(&sb, 2) // spacedim
	fmt.Fprintf(&sb, "%.17g\n", spec.Time)
	fmt.Fprintln(&sb, len(spec.Levels)-1) // finest_level
	g0 := spec.Levels[0].Geom
	fmt.Fprintf(&sb, "%.17g %.17g\n", g0.ProbLo[0], g0.ProbLo[1])
	fmt.Fprintf(&sb, "%.17g %.17g\n", g0.ProbHi[0], g0.ProbHi[1])
	for l := 0; l < len(spec.Levels)-1; l++ {
		if l > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", spec.Levels[l].RefRatio)
	}
	sb.WriteByte('\n')
	for l, lev := range spec.Levels {
		if l > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(formatBox(lev.Geom.Domain))
	}
	sb.WriteByte('\n')
	for l := range spec.Levels {
		if l > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", spec.Step)
	}
	sb.WriteByte('\n')
	for _, lev := range spec.Levels {
		fmt.Fprintf(&sb, "%.17g %.17g\n", lev.Geom.CellSize[0], lev.Geom.CellSize[1])
	}
	fmt.Fprintln(&sb, 0) // coord_sys: cartesian
	fmt.Fprintln(&sb, 0) // boundary width
	return sb.String()
}

func encodeJobInfo(spec Spec) string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "==============================================================================")
	fmt.Fprintln(&sb, " amrproxyio Job Information")
	fmt.Fprintln(&sb, "==============================================================================")
	fmt.Fprintf(&sb, "number of MPI processes: %d\n", spec.NProcs)
	fmt.Fprintf(&sb, "plot step: %d\n", spec.Step)
	fmt.Fprintf(&sb, "simulation time: %.17g\n", spec.Time)
	fmt.Fprintf(&sb, "levels: %d\n", len(spec.Levels))
	for l, lev := range spec.Levels {
		fmt.Fprintf(&sb, "level %d: %d grids, %d cells\n", l, lev.BA.Len(), lev.BA.NumPts())
	}
	return sb.String()
}

// EncodeCellH renders the per-level Cell_H metadata file.
func EncodeCellH(spec Spec, level int) string {
	lev := spec.Levels[level]
	var sb strings.Builder
	fmt.Fprintln(&sb, 1) // version
	fmt.Fprintln(&sb, 1) // how
	fmt.Fprintln(&sb, spec.NComp())
	fmt.Fprintln(&sb, 0) // nghost on disk
	fmt.Fprintf(&sb, "(%d 0\n", lev.BA.Len())
	for _, b := range lev.BA.Boxes {
		fmt.Fprintln(&sb, formatBox(b))
	}
	fmt.Fprintln(&sb, ")")
	fmt.Fprintln(&sb, lev.BA.Len())
	// Fab locations: file per owning rank, offset within that rank's file.
	offsets := map[int]int64{}
	for i, b := range lev.BA.Boxes {
		rank := lev.DM.Owner[i]
		fmt.Fprintf(&sb, "FabOnDisk: Cell_D_%05d %d\n", rank, offsets[rank])
		offsets[rank] += fabBytes(b, spec.NComp())
	}
	return sb.String()
}

// formatBox renders a box the AMReX way: ((lox,loy) (hix,hiy) (0,0)).
func formatBox(b grid.Box) string {
	return fmt.Sprintf("((%d,%d) (%d,%d) (0,0))", b.Lo.X, b.Lo.Y, b.Hi.X, b.Hi.Y)
}

// fabHeader renders the per-FAB ASCII header preceding the binary data.
func fabHeader(b grid.Box, ncomp int) string {
	return fmt.Sprintf("FAB %s %d\n", formatBox(b), ncomp)
}

// fabBytes is the exact on-disk size of one FAB record.
func fabBytes(b grid.Box, ncomp int) int64 {
	return int64(len(fabHeader(b, ncomp))) + b.NumPts()*int64(ncomp)*8
}

// CellDBytes is the exact size of the Cell_D file a rank writes for its
// owned boxes — used by the size-only path and verified against the data
// path in tests.
func CellDBytes(ba amr.BoxArray, owned []int, ncomp int) int64 {
	var n int64
	for _, idx := range owned {
		n += fabBytes(ba.Boxes[idx], ncomp)
	}
	return n
}

// encodeCellD serializes the owned FABs of a level: ASCII FAB header then
// little-endian float64 data, component-major, row-major within component
// — only valid-region cells, no ghosts.
func encodeCellD(lev LevelSpec, owned []int, ncomp int) []byte {
	var buf bytes.Buffer
	for _, idx := range owned {
		b := lev.BA.Boxes[idx]
		buf.WriteString(fabHeader(b, ncomp))
		f := lev.State.FABs[idx]
		vals := make([]float64, 0, b.NumPts())
		for c := 0; c < ncomp; c++ {
			vals = vals[:0]
			for j := b.Lo.Y; j <= b.Hi.Y; j++ {
				for i := b.Lo.X; i <= b.Hi.X; i++ {
					vals = append(vals, f.At(i, j, c))
				}
			}
			_ = binary.Write(&buf, binary.LittleEndian, vals)
		}
	}
	return buf.Bytes()
}

// TotalBytes sums a record set.
func TotalBytes(recs []OutputRecord) int64 {
	var n int64
	for _, r := range recs {
		n += r.Bytes
	}
	return n
}

// MaxAbs is a helper used by tests comparing round-tripped data.
func MaxAbs(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
