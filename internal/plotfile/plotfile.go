package plotfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/mpisim"
)

// FormatVersion is the first line of every Header.
const FormatVersion = "AMReX-PlotfileProxy-V1.0"

// LevelSpec describes one mesh level of a plot dump.
type LevelSpec struct {
	Geom     grid.Geom
	BA       amr.BoxArray
	DM       amr.DistributionMapping
	RefRatio int // ratio to the next finer level (unused on the finest)
	// State supplies field data; nil selects size-only accounting.
	State *amr.MultiFab
}

// Spec is a complete plot dump description.
type Spec struct {
	Root     string // plotfile directory name, e.g. "plt00020"
	VarNames []string
	Time     float64
	Step     int
	Levels   []LevelSpec
	NProcs   int
}

// NComp returns the number of plotted components.
func (s Spec) NComp() int { return len(s.VarNames) }

// OutputRecord summarizes bytes written for one (step, level, rank) cell
// of the paper's Eq. (2) hierarchy.
type OutputRecord struct {
	Step  int   `json:"step"`
	Level int   `json:"level"`
	Rank  int   `json:"rank"`
	Bytes int64 `json:"bytes"`
}

// Write emits the full plotfile through fs, returning the per-(level,rank)
// records. If every LevelSpec has non-nil State the actual FAB data is
// serialized; otherwise sizes are modeled exactly.
func Write(fs *iosim.FileSystem, spec Spec) ([]OutputRecord, error) {
	if spec.NProcs < 1 {
		return nil, fmt.Errorf("plotfile: nprocs = %d", spec.NProcs)
	}
	if len(spec.Levels) == 0 {
		return nil, fmt.Errorf("plotfile: no levels")
	}
	type rankRec struct {
		level int
		rank  int
		bytes int64
	}
	results := make([][]rankRec, spec.NProcs)
	labels := func(level int) iosim.Labels {
		return iosim.Labels{Step: spec.Step, Level: level}
	}

	fs.BeginBurst(spec.NProcs)
	defer fs.EndBurst()

	err := mpisim.Run(spec.NProcs, func(c *mpisim.Comm) error {
		rank := c.Rank()
		if rank == 0 {
			if err := fs.Mkdir(0, spec.Root, labels(0)); err != nil {
				return err
			}
			hdr := EncodeHeader(spec)
			if _, err := fs.Write(0, spec.Root+"/Header", []byte(hdr), labels(0)); err != nil {
				return err
			}
			ji := encodeJobInfo(spec)
			if _, err := fs.Write(0, spec.Root+"/job_info", []byte(ji), labels(0)); err != nil {
				return err
			}
			for l := range spec.Levels {
				if err := fs.Mkdir(0, levelDir(spec.Root, l), labels(l)); err != nil {
					return err
				}
				ch := EncodeCellH(spec, l)
				path := levelDir(spec.Root, l) + "/Cell_H"
				if _, err := fs.Write(0, path, []byte(ch), labels(l)); err != nil {
					return err
				}
			}
		}
		// All ranks wait for the directory structure before writing data,
		// the same barrier AMReX's plotfile path performs.
		c.Barrier()

		for l, lev := range spec.Levels {
			owned := lev.DM.RankBoxes(rank)
			if len(owned) == 0 {
				continue // the paper's "file only when the task has data"
			}
			path := CellDPath(spec.Root, l, rank)
			var nbytes int64
			if lev.State != nil {
				data := encodeCellD(lev, owned, spec.NComp())
				if _, err := fs.Write(rank, path, data, labels(l)); err != nil {
					return err
				}
				nbytes = int64(len(data))
			} else {
				nbytes = CellDBytes(lev.BA, owned, spec.NComp())
				if _, err := fs.WriteSize(rank, path, nbytes, labels(l)); err != nil {
					return err
				}
			}
			results[rank] = append(results[rank], rankRec{level: l, rank: rank, bytes: nbytes})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []OutputRecord
	for _, rr := range results {
		for _, r := range rr {
			out = append(out, OutputRecord{Step: spec.Step, Level: r.level, Rank: r.rank, Bytes: r.bytes})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Rank < out[j].Rank
	})
	return out, nil
}

// levelDir names the per-level subdirectory: "<root>/Level_<l>".
func levelDir(root string, level int) string {
	b := make([]byte, 0, len(root)+16)
	b = append(b, root...)
	b = append(b, "/Level_"...)
	b = strconv.AppendInt(b, int64(level), 10)
	return string(b)
}

// CellDPath names the Cell_D file rank writes at a level:
// "<root>/Level_<l>/Cell_D_<rank %05d>".
func CellDPath(root string, level, rank int) string {
	b := make([]byte, 0, len(root)+32)
	b = append(b, root...)
	b = append(b, "/Level_"...)
	b = strconv.AppendInt(b, int64(level), 10)
	b = append(b, "/Cell_D_"...)
	b = appendZeroPadded(b, int64(rank), 5)
	return string(b)
}

// appendFloat17 appends v the way fmt's %.17g renders it.
func appendFloat17(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', 17, 64)
}

// appendZeroPadded appends v zero-padded to the given total width (sign
// included), matching fmt's %0*d.
func appendZeroPadded(dst []byte, v int64, width int) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
		width--
	}
	for n := intLen(int(v)); n < width; n++ {
		dst = append(dst, '0')
	}
	return strconv.AppendInt(dst, v, 10)
}

// EncodeHeader renders the top-level Header file.
func EncodeHeader(spec Spec) string {
	b := make([]byte, 0, 256+32*len(spec.Levels))
	b = append(b, FormatVersion...)
	b = append(b, '\n')
	b = strconv.AppendInt(b, int64(spec.NComp()), 10)
	b = append(b, '\n')
	for _, v := range spec.VarNames {
		b = append(b, v...)
		b = append(b, '\n')
	}
	b = append(b, '2', '\n') // spacedim
	b = appendFloat17(b, spec.Time)
	b = append(b, '\n')
	b = strconv.AppendInt(b, int64(len(spec.Levels)-1), 10) // finest_level
	b = append(b, '\n')
	g0 := spec.Levels[0].Geom
	b = appendFloat17(b, g0.ProbLo[0])
	b = append(b, ' ')
	b = appendFloat17(b, g0.ProbLo[1])
	b = append(b, '\n')
	b = appendFloat17(b, g0.ProbHi[0])
	b = append(b, ' ')
	b = appendFloat17(b, g0.ProbHi[1])
	b = append(b, '\n')
	for l := 0; l < len(spec.Levels)-1; l++ {
		if l > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(spec.Levels[l].RefRatio), 10)
	}
	b = append(b, '\n')
	for l, lev := range spec.Levels {
		if l > 0 {
			b = append(b, ' ')
		}
		b = appendBox(b, lev.Geom.Domain)
	}
	b = append(b, '\n')
	for l := range spec.Levels {
		if l > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(spec.Step), 10)
	}
	b = append(b, '\n')
	for _, lev := range spec.Levels {
		b = appendFloat17(b, lev.Geom.CellSize[0])
		b = append(b, ' ')
		b = appendFloat17(b, lev.Geom.CellSize[1])
		b = append(b, '\n')
	}
	b = append(b, '0', '\n') // coord_sys: cartesian
	b = append(b, '0', '\n') // boundary width
	return string(b)
}

func encodeJobInfo(spec Spec) string {
	const rule = "=============================================================================="
	b := make([]byte, 0, 4*len(rule))
	b = append(b, rule...)
	b = append(b, '\n')
	b = append(b, " amrproxyio Job Information\n"...)
	b = append(b, rule...)
	b = append(b, '\n')
	b = append(b, "number of MPI processes: "...)
	b = strconv.AppendInt(b, int64(spec.NProcs), 10)
	b = append(b, "\nplot step: "...)
	b = strconv.AppendInt(b, int64(spec.Step), 10)
	b = append(b, "\nsimulation time: "...)
	b = appendFloat17(b, spec.Time)
	b = append(b, "\nlevels: "...)
	b = strconv.AppendInt(b, int64(len(spec.Levels)), 10)
	b = append(b, '\n')
	for l, lev := range spec.Levels {
		b = append(b, "level "...)
		b = strconv.AppendInt(b, int64(l), 10)
		b = append(b, ": "...)
		b = strconv.AppendInt(b, int64(lev.BA.Len()), 10)
		b = append(b, " grids, "...)
		b = strconv.AppendInt(b, lev.BA.NumPts(), 10)
		b = append(b, " cells\n"...)
	}
	return string(b)
}

// EncodeCellH renders the per-level Cell_H metadata file.
func EncodeCellH(spec Spec, level int) string {
	lev := spec.Levels[level]
	b := make([]byte, 0, 64+48*lev.BA.Len())
	b = append(b, '1', '\n') // version
	b = append(b, '1', '\n') // how
	b = strconv.AppendInt(b, int64(spec.NComp()), 10)
	b = append(b, '\n')
	b = append(b, '0', '\n') // nghost on disk
	b = append(b, '(')
	b = strconv.AppendInt(b, int64(lev.BA.Len()), 10)
	b = append(b, " 0\n"...)
	for _, bx := range lev.BA.Boxes {
		b = appendBox(b, bx)
		b = append(b, '\n')
	}
	b = append(b, ")\n"...)
	b = strconv.AppendInt(b, int64(lev.BA.Len()), 10)
	b = append(b, '\n')
	// Fab locations: file per owning rank, offset within that rank's file.
	offsets := map[int]int64{}
	for i, bx := range lev.BA.Boxes {
		rank := lev.DM.Owner[i]
		b = append(b, "FabOnDisk: Cell_D_"...)
		b = appendZeroPadded(b, int64(rank), 5)
		b = append(b, ' ')
		b = strconv.AppendInt(b, offsets[rank], 10)
		b = append(b, '\n')
		offsets[rank] += fabBytes(bx, spec.NComp())
	}
	return string(b)
}

// appendBox appends a box the AMReX way: ((lox,loy) (hix,hiy) (0,0)).
func appendBox(dst []byte, b grid.Box) []byte {
	dst = append(dst, '(', '(')
	dst = strconv.AppendInt(dst, int64(b.Lo.X), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(b.Lo.Y), 10)
	dst = append(dst, ") ("...)
	dst = strconv.AppendInt(dst, int64(b.Hi.X), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(b.Hi.Y), 10)
	dst = append(dst, ") (0,0))"...)
	return dst
}

// formatBox renders a box the AMReX way: ((lox,loy) (hix,hiy) (0,0)).
func formatBox(b grid.Box) string {
	return string(appendBox(make([]byte, 0, 40), b))
}

// appendFabHeader appends the per-FAB ASCII header preceding binary data.
func appendFabHeader(dst []byte, b grid.Box, ncomp int) []byte {
	dst = append(dst, "FAB "...)
	dst = appendBox(dst, b)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(ncomp), 10)
	return append(dst, '\n')
}

// fabHeader renders the per-FAB ASCII header preceding the binary data.
func fabHeader(b grid.Box, ncomp int) string {
	return string(appendFabHeader(make([]byte, 0, 56), b, ncomp))
}

// intLen returns the rendered decimal length of v (sign included).
func intLen(v int) int {
	n := 1
	if v < 0 {
		n++
		v = -v
	}
	for v >= 10 {
		n++
		v /= 10
	}
	return n
}

// fabHeaderLen is len(fabHeader(b, ncomp)) computed without allocating —
// the size-only surrogate path calls it per box per dump.
func fabHeaderLen(b grid.Box, ncomp int) int {
	// "FAB " + "((lox,loy) (hix,hiy) (0,0))" + " " + ncomp + "\n"
	return len("FAB ") +
		len("((") + intLen(b.Lo.X) + 1 + intLen(b.Lo.Y) +
		len(") (") + intLen(b.Hi.X) + 1 + intLen(b.Hi.Y) +
		len(") (0,0))") + 1 + intLen(ncomp) + 1
}

// fabBytes is the exact on-disk size of one FAB record.
func fabBytes(b grid.Box, ncomp int) int64 {
	return int64(fabHeaderLen(b, ncomp)) + b.NumPts()*int64(ncomp)*8
}

// CellDBytes is the exact size of the Cell_D file a rank writes for its
// owned boxes — used by the size-only path and verified against the data
// path in tests.
func CellDBytes(ba amr.BoxArray, owned []int, ncomp int) int64 {
	var n int64
	for _, idx := range owned {
		n += fabBytes(ba.Boxes[idx], ncomp)
	}
	return n
}

// encodeCellD serializes the owned FABs of a level: ASCII FAB header then
// little-endian float64 data, component-major, row-major within component
// — only valid-region cells, no ghosts. The buffer is preallocated at the
// exact CellDBytes size and values are emitted row-by-row straight from
// the FAB backing array with math.Float64bits, so encoding a Cell_D file
// costs one allocation total.
func encodeCellD(lev LevelSpec, owned []int, ncomp int) []byte {
	buf := make([]byte, 0, CellDBytes(lev.BA, owned, ncomp))
	for _, idx := range owned {
		b := lev.BA.Boxes[idx]
		buf = appendFabHeader(buf, b, ncomp)
		f := lev.State.FABs[idx]
		for c := 0; c < ncomp; c++ {
			for j := b.Lo.Y; j <= b.Hi.Y; j++ {
				for _, v := range f.Row(j, c) {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
				}
			}
		}
	}
	return buf
}

// TotalBytes sums a record set.
func TotalBytes(recs []OutputRecord) int64 {
	var n int64
	for _, r := range recs {
		n += r.Bytes
	}
	return n
}

// MaxAbs is a helper used by tests comparing round-tripped data.
func MaxAbs(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
