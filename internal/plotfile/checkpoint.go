package plotfile

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/mpisim"
)

// Checkpoint-restart output. The paper (§III.A) notes that "AMReX also
// supports the generation of checkpoint-restart data in a similar manner"
// to plotfiles — the same N-to-N per-level pattern, but carrying the raw
// conserved state (with enough metadata to resume: step, time, dt). The
// study focuses on plotfiles; checkpoints are implemented here both for
// completeness and because amr.check_int appears in the baseline inputs
// (Listing 2), so campaign variants can include checkpoint traffic.

// CheckpointFormatVersion heads every checkpoint Header.
const CheckpointFormatVersion = "AMReX-CheckpointProxy-V1.0"

// CheckpointSpec describes a checkpoint dump.
type CheckpointSpec struct {
	Root   string // e.g. "sedov_2d_cyl_in_cart_chk00020"
	Time   float64
	Step   int
	LastDt float64
	NComp  int // conserved components
	Levels []LevelSpec
	NProcs int
	// SizeOnly prices the checkpoint without materializing state — the
	// exact Cell_D sizes through WriteSize, like a state-free plot
	// level. A size-only checkpoint cannot restart (nothing round-trips)
	// but produces the identical ledger: it exists for the surrogate
	// engine, whose hierarchy carries no field memory.
	SizeOnly bool
}

// WriteCheckpoint emits the checkpoint through fs. Unless spec.SizeOnly,
// State must be non-nil on every level — a restartable checkpoint always
// carries data.
func WriteCheckpoint(fs *iosim.FileSystem, spec CheckpointSpec) ([]OutputRecord, error) {
	if spec.NProcs < 1 || len(spec.Levels) == 0 {
		return nil, fmt.Errorf("plotfile: bad checkpoint spec (nprocs=%d levels=%d)", spec.NProcs, len(spec.Levels))
	}
	if !spec.SizeOnly {
		for l, lev := range spec.Levels {
			if lev.State == nil {
				return nil, fmt.Errorf("plotfile: checkpoint level %d has no state", l)
			}
		}
	}
	labels := func(level int) iosim.Labels {
		return iosim.Labels{Step: spec.Step, Level: level}
	}
	results := make([][]OutputRecord, spec.NProcs)
	fs.BeginBurst(spec.NProcs)
	defer fs.EndBurst()

	err := mpisim.Run(spec.NProcs, func(c *mpisim.Comm) error {
		rank := c.Rank()
		if rank == 0 {
			if err := fs.Mkdir(0, spec.Root, labels(0)); err != nil {
				return err
			}
			hdr := encodeCheckpointHeader(spec)
			if _, err := fs.Write(0, spec.Root+"/Header", []byte(hdr), labels(0)); err != nil {
				return err
			}
			for l := range spec.Levels {
				if err := fs.Mkdir(0, levelDir(spec.Root, l), labels(l)); err != nil {
					return err
				}
			}
		}
		c.Barrier()
		for l, lev := range spec.Levels {
			owned := lev.DM.RankBoxes(rank)
			if len(owned) == 0 {
				continue
			}
			path := CellDPath(spec.Root, l, rank)
			var nbytes int64
			if spec.SizeOnly {
				nbytes = CellDBytes(lev.BA, owned, spec.NComp)
				if _, err := fs.WriteSize(rank, path, nbytes, labels(l)); err != nil {
					return err
				}
			} else {
				data := encodeCellD(lev, owned, spec.NComp)
				if _, err := fs.Write(rank, path, data, labels(l)); err != nil {
					return err
				}
				nbytes = int64(len(data))
			}
			results[rank] = append(results[rank], OutputRecord{
				Step: spec.Step, Level: l, Rank: rank, Bytes: nbytes,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []OutputRecord
	for _, rr := range results {
		out = append(out, rr...)
	}
	return out, nil
}

// encodeCheckpointHeader writes everything restart needs: time state plus
// per-level geometry, box lists and owners. Like the plotfile metadata
// encoders it is a strconv-append builder — the per-box loop allocates
// nothing.
func encodeCheckpointHeader(spec CheckpointSpec) string {
	nboxes := 0
	for _, lev := range spec.Levels {
		nboxes += lev.BA.Len()
	}
	b := make([]byte, 0, 160+96*len(spec.Levels)+48*nboxes)
	b = append(b, CheckpointFormatVersion...)
	b = append(b, '\n')
	b = strconv.AppendInt(b, int64(spec.Step), 10)
	b = append(b, '\n')
	b = appendFloat17(b, spec.Time)
	b = append(b, '\n')
	b = appendFloat17(b, spec.LastDt)
	b = append(b, '\n')
	b = strconv.AppendInt(b, int64(spec.NComp), 10)
	b = append(b, '\n')
	b = strconv.AppendInt(b, int64(spec.NProcs), 10)
	b = append(b, '\n')
	b = strconv.AppendInt(b, int64(len(spec.Levels)), 10)
	b = append(b, '\n')
	for _, lev := range spec.Levels {
		g := lev.Geom
		b = appendBox(b, g.Domain)
		for _, v := range []float64{g.ProbLo[0], g.ProbLo[1], g.ProbHi[0], g.ProbHi[1]} {
			b = append(b, ' ')
			b = appendFloat17(b, v)
		}
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(lev.RefRatio), 10)
		b = append(b, '\n')
		b = strconv.AppendInt(b, int64(lev.BA.Len()), 10)
		b = append(b, '\n')
		for i, bx := range lev.BA.Boxes {
			b = appendBox(b, bx)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(lev.DM.Owner[i]), 10)
			b = append(b, '\n')
		}
	}
	return string(b)
}

// RestartLevel is one level recovered from a checkpoint.
type RestartLevel struct {
	Geom     grid.Geom
	BA       amr.BoxArray
	DM       amr.DistributionMapping
	RefRatio int
	// Data[i] holds box i's values, component-major, valid region only.
	Data [][]float64
}

// Restart is a parsed checkpoint.
type Restart struct {
	Step   int
	Time   float64
	LastDt float64
	NComp  int
	NProcs int
	Levels []RestartLevel
}

// ReadCheckpoint loads a checkpoint from a RealDisk directory.
func ReadCheckpoint(dir string) (Restart, error) {
	var rs Restart
	f, err := os.Open(filepath.Join(dir, "Header"))
	if err != nil {
		return rs, fmt.Errorf("plotfile: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("plotfile: truncated checkpoint Header")
		}
		return strings.TrimSpace(sc.Text()), nil
	}
	version, err := next()
	if err != nil {
		return rs, err
	}
	if version != CheckpointFormatVersion {
		return rs, fmt.Errorf("plotfile: checkpoint version %q unsupported", version)
	}
	readInt := func() (int, error) {
		s, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.Atoi(s)
	}
	readFloat := func() (float64, error) {
		s, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.ParseFloat(s, 64)
	}
	if rs.Step, err = readInt(); err != nil {
		return rs, err
	}
	if rs.Time, err = readFloat(); err != nil {
		return rs, err
	}
	if rs.LastDt, err = readFloat(); err != nil {
		return rs, err
	}
	if rs.NComp, err = readInt(); err != nil {
		return rs, err
	}
	if rs.NProcs, err = readInt(); err != nil {
		return rs, err
	}
	nLevels, err := readInt()
	if err != nil {
		return rs, err
	}
	for l := 0; l < nLevels; l++ {
		line, err := next()
		if err != nil {
			return rs, err
		}
		lev, err := parseLevelLine(line)
		if err != nil {
			return rs, fmt.Errorf("plotfile: level %d: %w", l, err)
		}
		nboxes, err := readInt()
		if err != nil {
			return rs, err
		}
		for b := 0; b < nboxes; b++ {
			line, err := next()
			if err != nil {
				return rs, err
			}
			box, owner, err := parseBoxOwner(line)
			if err != nil {
				return rs, fmt.Errorf("plotfile: level %d box %d: %w", l, b, err)
			}
			lev.BA.Boxes = append(lev.BA.Boxes, box)
			lev.DM.Owner = append(lev.DM.Owner, owner)
		}
		rs.Levels = append(rs.Levels, lev)
	}
	// Load the per-rank data files.
	for l := range rs.Levels {
		lev := &rs.Levels[l]
		lev.Data = make([][]float64, lev.BA.Len())
		offsets := map[int]int64{}
		cache := map[int][]byte{}
		for i, b := range lev.BA.Boxes {
			rank := lev.DM.Owner[i]
			raw, ok := cache[rank]
			if !ok {
				raw, err = os.ReadFile(filepath.Join(dir, fmt.Sprintf("Level_%d", l), fmt.Sprintf("Cell_D_%05d", rank)))
				if err != nil {
					return rs, fmt.Errorf("plotfile: %w", err)
				}
				cache[rank] = raw
			}
			vals, err := decodeFAB(raw[offsets[rank]:], b, rs.NComp)
			if err != nil {
				return rs, fmt.Errorf("plotfile: level %d box %d: %w", l, i, err)
			}
			lev.Data[i] = vals
			offsets[rank] += fabBytes(b, rs.NComp)
		}
	}
	return rs, nil
}

// parseLevelLine parses "((lo) (hi) (0,0)) plo0 plo1 phi0 phi1 ratio".
func parseLevelLine(line string) (RestartLevel, error) {
	var lev RestartLevel
	// formatBox nests single parens inside one outer pair, so the box
	// token ends at the only "))" in the line.
	end := strings.Index(line, "))")
	if end < 0 {
		return lev, fmt.Errorf("bad level line %q", line)
	}
	boxTok := line[:end+2]
	dom, err := parseBox(boxTok)
	if err != nil {
		return lev, err
	}
	fields := strings.Fields(line[len(boxTok):])
	if len(fields) != 5 {
		return lev, fmt.Errorf("bad level tail %q", line)
	}
	var nums [4]float64
	for i := 0; i < 4; i++ {
		if nums[i], err = strconv.ParseFloat(fields[i], 64); err != nil {
			return lev, err
		}
	}
	ratio, err := strconv.Atoi(fields[4])
	if err != nil {
		return lev, err
	}
	lev.Geom = grid.NewGeom(dom, [2]float64{nums[0], nums[1]}, [2]float64{nums[2], nums[3]})
	lev.RefRatio = ratio
	return lev, nil
}

// parseBoxOwner parses "((..) (..) (..)) owner".
func parseBoxOwner(line string) (grid.Box, int, error) {
	idx := strings.LastIndex(line, ")")
	if idx < 0 {
		return grid.Box{}, 0, fmt.Errorf("bad box line %q", line)
	}
	box, err := parseBox(line[:idx+1])
	if err != nil {
		return grid.Box{}, 0, err
	}
	owner, err := strconv.Atoi(strings.TrimSpace(line[idx+1:]))
	if err != nil {
		return grid.Box{}, 0, err
	}
	return box, owner, nil
}

// FillMultiFabFromRestart copies a restart level's data into a freshly
// allocated MultiFab (valid regions only; ghosts are refilled by the
// driver's FillPatch).
func FillMultiFabFromRestart(lev RestartLevel, ncomp, nghost int) *amr.MultiFab {
	mf := amr.NewMultiFab(lev.BA, lev.DM, ncomp, nghost)
	for i, f := range mf.FABs {
		vals := lev.Data[i]
		vi := 0
		b := f.ValidBox
		for c := 0; c < ncomp; c++ {
			for j := b.Lo.Y; j <= b.Hi.Y; j++ {
				for i2 := b.Lo.X; i2 <= b.Hi.X; i2++ {
					f.Set(i2, j, c, vals[vi])
					vi++
				}
			}
		}
	}
	return mf
}
