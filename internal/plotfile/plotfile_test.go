package plotfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
)

// twoLevelSpec builds a small two-level hierarchy with filled state data.
func twoLevelSpec(nprocs int, withState bool) Spec {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(31, 31))
	g0 := grid.NewGeom(dom, [2]float64{0, 0}, [2]float64{1, 1})
	ba0 := amr.SingleBoxArray(dom, 16, 8)
	dm0 := amr.MustDistribute(ba0, nprocs, amr.DistKnapsack)

	fineBA := amr.NewBoxArray([]grid.Box{
		grid.NewBox(grid.IV(16, 16), grid.IV(31, 31)),
		grid.NewBox(grid.IV(32, 16), grid.IV(47, 31)),
	})
	dm1 := amr.MustDistribute(fineBA, nprocs, amr.DistKnapsack)
	g1 := g0.Refine(2)

	spec := Spec{
		Root:     "plt00040",
		VarNames: []string{"density", "xmom", "ymom"},
		Time:     0.0125,
		Step:     40,
		NProcs:   nprocs,
		Levels: []LevelSpec{
			{Geom: g0, BA: ba0, DM: dm0, RefRatio: 2},
			{Geom: g1, BA: fineBA, DM: dm1, RefRatio: 2},
		},
	}
	if withState {
		for l := range spec.Levels {
			mf := amr.NewMultiFab(spec.Levels[l].BA, spec.Levels[l].DM, 3, 0)
			mf.ForEachFAB(func(idx int, f *amr.FAB) {
				for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
					for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
						f.Set(i, j, 0, float64(i)+float64(j)/100)
						f.Set(i, j, 1, float64(l))
						f.Set(i, j, 2, float64(idx))
					}
				}
			})
			spec.Levels[l].State = mf
		}
	}
	return spec
}

func TestWriteProducesFig2Structure(t *testing.T) {
	dir := t.TempDir()
	cfg := iosim.DefaultConfig()
	cfg.Backend = iosim.RealDisk
	fs := iosim.New(cfg, dir)
	spec := twoLevelSpec(4, true)
	recs, err := Write(fs, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Top-level metadata.
	for _, p := range []string{"Header", "job_info", "Level_0/Cell_H", "Level_1/Cell_H"} {
		if _, err := os.Stat(filepath.Join(dir, spec.Root, p)); err != nil {
			t.Errorf("missing %s: %v", p, err)
		}
	}
	// Per-task data files: level 0 has 4 boxes on 4 ranks -> 4 files.
	matches, _ := filepath.Glob(filepath.Join(dir, spec.Root, "Level_0", "Cell_D_*"))
	if len(matches) != 4 {
		t.Errorf("level 0 data files = %d, want 4", len(matches))
	}
	// Level 1 has 2 boxes -> exactly 2 ranks have data (paper: file only
	// when a task owns data at that level).
	matches, _ = filepath.Glob(filepath.Join(dir, spec.Root, "Level_1", "Cell_D_*"))
	if len(matches) != 2 {
		t.Errorf("level 1 data files = %d, want 2", len(matches))
	}
	if len(recs) != 6 {
		t.Errorf("records = %d, want 6", len(recs))
	}
}

func TestSizeOnlyMatchesDataPath(t *testing.T) {
	fsData := iosim.New(iosim.DefaultConfig(), "")
	fsSize := iosim.New(iosim.DefaultConfig(), "")

	withData := twoLevelSpec(3, true)
	sizeOnly := twoLevelSpec(3, false)

	recsData, err := Write(fsData, withData)
	if err != nil {
		t.Fatal(err)
	}
	recsSize, err := Write(fsSize, sizeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsData) != len(recsSize) {
		t.Fatalf("record counts differ: %d vs %d", len(recsData), len(recsSize))
	}
	for i := range recsData {
		if recsData[i] != recsSize[i] {
			t.Errorf("record %d: data path %+v != size path %+v", i, recsData[i], recsSize[i])
		}
	}
	if TotalBytes(recsData) != TotalBytes(recsSize) {
		t.Error("total bytes differ between data and size paths")
	}
}

func TestRecordBytesMatchFormula(t *testing.T) {
	fs := iosim.New(iosim.DefaultConfig(), "")
	spec := twoLevelSpec(1, true)
	recs, err := Write(fs, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Single rank: one record per level; bytes = sum over boxes of
	// header + 8 * cells * ncomp.
	for _, r := range recs {
		lev := spec.Levels[r.Level]
		want := CellDBytes(lev.BA, lev.DM.RankBoxes(0), 3)
		if r.Bytes != want {
			t.Errorf("level %d bytes = %d, want %d", r.Level, r.Bytes, want)
		}
		// Data dominated by the raw field payload.
		raw := lev.BA.NumPts() * 3 * 8
		if r.Bytes <= raw || r.Bytes > raw+int64(lev.BA.Len()*128) {
			t.Errorf("level %d bytes = %d implausible vs raw %d", r.Level, r.Bytes, raw)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := iosim.DefaultConfig()
	cfg.Backend = iosim.RealDisk
	fs := iosim.New(cfg, dir)
	spec := twoLevelSpec(2, true)
	if _, err := Write(fs, spec); err != nil {
		t.Fatal(err)
	}
	m, err := ReadHeader(filepath.Join(dir, spec.Root))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != FormatVersion {
		t.Errorf("version = %q", m.Version)
	}
	if len(m.VarNames) != 3 || m.VarNames[0] != "density" {
		t.Errorf("varnames = %v", m.VarNames)
	}
	if m.Time != spec.Time || m.FinestLevel != 1 {
		t.Errorf("time/finest = %g/%d", m.Time, m.FinestLevel)
	}
	if m.ProbLo != [2]float64{0, 0} || m.ProbHi != [2]float64{1, 1} {
		t.Errorf("prob bounds = %v %v", m.ProbLo, m.ProbHi)
	}
	if len(m.RefRatios) != 1 || m.RefRatios[0] != 2 {
		t.Errorf("ref ratios = %v", m.RefRatios)
	}
	if len(m.Domains) != 2 || !m.Domains[0].Equal(spec.Levels[0].Geom.Domain) {
		t.Errorf("domains = %v", m.Domains)
	}
	if m.Steps[0] != 40 || m.CellSizes[1][0] != spec.Levels[1].Geom.CellSize[0] {
		t.Errorf("steps/cellsizes = %v %v", m.Steps, m.CellSizes)
	}
}

func TestDataRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := iosim.DefaultConfig()
	cfg.Backend = iosim.RealDisk
	fs := iosim.New(cfg, dir)
	spec := twoLevelSpec(4, true)
	if _, err := Write(fs, spec); err != nil {
		t.Fatal(err)
	}
	for l := range spec.Levels {
		rl, err := ReadLevelData(filepath.Join(dir, spec.Root), l, 3)
		if err != nil {
			t.Fatalf("level %d: %v", l, err)
		}
		if len(rl.Boxes) != spec.Levels[l].BA.Len() {
			t.Fatalf("level %d boxes = %d", l, len(rl.Boxes))
		}
		for i, b := range rl.Boxes {
			if !b.Equal(spec.Levels[l].BA.Boxes[i]) {
				t.Errorf("level %d box %d = %v", l, i, b)
			}
			want := FABValuesOf(spec.Levels[l].State, i)
			if len(want) != len(rl.Data[i]) {
				t.Fatalf("level %d box %d data len %d != %d", l, i, len(rl.Data[i]), len(want))
			}
			if MaxAbs(want, rl.Data[i]) != 0 {
				t.Errorf("level %d box %d data mismatch", l, i)
			}
		}
	}
}

func TestCellHOffsetsAreCumulative(t *testing.T) {
	spec := twoLevelSpec(1, false)
	ch := EncodeCellH(spec, 0)
	lines := strings.Split(ch, "\n")
	var offsets []int64
	for _, ln := range lines {
		if strings.HasPrefix(ln, "FabOnDisk:") {
			var off int64
			var file string
			if _, err := fmtSscan(ln, &file, &off); err != nil {
				t.Fatalf("parse %q: %v", ln, err)
			}
			offsets = append(offsets, off)
		}
	}
	if len(offsets) != 4 {
		t.Fatalf("offsets = %v", offsets)
	}
	if offsets[0] != 0 {
		t.Errorf("first offset = %d", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			t.Errorf("offsets not increasing: %v", offsets)
		}
	}
}

// fmtSscan extracts the file and offset from a FabOnDisk line.
func fmtSscan(line string, file *string, off *int64) (int, error) {
	fields := strings.Fields(line)
	*file = fields[1]
	v, err := parseInt64(fields[2])
	*off = v
	return 2, err
}

func parseInt64(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, os.ErrInvalid
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

func TestWriteValidations(t *testing.T) {
	fs := iosim.New(iosim.DefaultConfig(), "")
	if _, err := Write(fs, Spec{NProcs: 0, Levels: []LevelSpec{{}}}); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := Write(fs, Spec{NProcs: 1}); err == nil {
		t.Error("no levels accepted")
	}
}

func TestLedgerLabels(t *testing.T) {
	fs := iosim.New(iosim.DefaultConfig(), "")
	spec := twoLevelSpec(2, false)
	if _, err := Write(fs, spec); err != nil {
		t.Fatal(err)
	}
	byLevel := iosim.BytesByLevel(fs.Ledger())
	if len(byLevel) != 2 {
		t.Errorf("levels in ledger = %v", byLevel)
	}
	byStep := iosim.BytesByStep(fs.Ledger())
	if _, ok := byStep[40]; !ok || len(byStep) != 1 {
		t.Errorf("steps in ledger = %v", byStep)
	}
}
