package plotfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

// Reader support: parse a plotfile directory written through the RealDisk
// backend back into levels and FAB data, enabling round-trip tests and
// external inspection.

// ReadHeaderMeta is the parsed top-level Header.
type ReadHeaderMeta struct {
	Version     string
	VarNames    []string
	Time        float64
	FinestLevel int
	ProbLo      [2]float64
	ProbHi      [2]float64
	RefRatios   []int
	Domains     []grid.Box
	Steps       []int
	CellSizes   [][2]float64
}

// ReadLevel is one parsed level: its box list and per-box data.
type ReadLevel struct {
	Boxes []grid.Box
	// Data[i] is box i's values, component-major then row-major.
	Data [][]float64
}

// ReadHeader parses <dir>/Header.
func ReadHeader(dir string) (ReadHeaderMeta, error) {
	var m ReadHeaderMeta
	f, err := os.Open(filepath.Join(dir, "Header"))
	if err != nil {
		return m, fmt.Errorf("plotfile: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("plotfile: truncated Header")
		}
		return strings.TrimSpace(sc.Text()), nil
	}
	if m.Version, err = next(); err != nil {
		return m, err
	}
	line, err := next()
	if err != nil {
		return m, err
	}
	ncomp, err := strconv.Atoi(line)
	if err != nil {
		return m, fmt.Errorf("plotfile: ncomp: %w", err)
	}
	for i := 0; i < ncomp; i++ {
		v, err := next()
		if err != nil {
			return m, err
		}
		m.VarNames = append(m.VarNames, v)
	}
	if _, err = next(); err != nil { // spacedim
		return m, err
	}
	if line, err = next(); err != nil {
		return m, err
	}
	if m.Time, err = strconv.ParseFloat(line, 64); err != nil {
		return m, fmt.Errorf("plotfile: time: %w", err)
	}
	if line, err = next(); err != nil {
		return m, err
	}
	if m.FinestLevel, err = strconv.Atoi(line); err != nil {
		return m, fmt.Errorf("plotfile: finest_level: %w", err)
	}
	parse2 := func() ([2]float64, error) {
		line, err := next()
		if err != nil {
			return [2]float64{}, err
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return [2]float64{}, fmt.Errorf("plotfile: expected 2 floats: %q", line)
		}
		a, err1 := strconv.ParseFloat(fields[0], 64)
		b, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			return [2]float64{}, fmt.Errorf("plotfile: bad float pair %q", line)
		}
		return [2]float64{a, b}, nil
	}
	if m.ProbLo, err = parse2(); err != nil {
		return m, err
	}
	if m.ProbHi, err = parse2(); err != nil {
		return m, err
	}
	if line, err = next(); err != nil { // ref ratios
		return m, err
	}
	for _, f := range strings.Fields(line) {
		r, err := strconv.Atoi(f)
		if err != nil {
			return m, fmt.Errorf("plotfile: ref ratio: %w", err)
		}
		m.RefRatios = append(m.RefRatios, r)
	}
	if line, err = next(); err != nil { // domains
		return m, err
	}
	m.Domains, err = parseBoxes(line)
	if err != nil {
		return m, err
	}
	if line, err = next(); err != nil { // steps
		return m, err
	}
	for _, f := range strings.Fields(line) {
		s, err := strconv.Atoi(f)
		if err != nil {
			return m, fmt.Errorf("plotfile: step: %w", err)
		}
		m.Steps = append(m.Steps, s)
	}
	for l := 0; l <= m.FinestLevel; l++ {
		cs, err := parse2()
		if err != nil {
			return m, err
		}
		m.CellSizes = append(m.CellSizes, cs)
	}
	return m, nil
}

// parseBoxes extracts every ((x,y) (x,y) (0,0)) occurrence in a line.
func parseBoxes(line string) ([]grid.Box, error) {
	var out []grid.Box
	rest := line
	for {
		start := strings.Index(rest, "((")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], "))")
		if end < 0 {
			return nil, fmt.Errorf("plotfile: unbalanced box in %q", line)
		}
		tok := rest[start : start+end+2]
		b, err := parseBox(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		rest = rest[start+end+2:]
	}
	return out, nil
}

// parseBox parses ((lox,loy) (hix,hiy) (0,0)).
func parseBox(tok string) (grid.Box, error) {
	clean := strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(tok)
	fields := strings.Fields(clean)
	if len(fields) < 4 {
		return grid.Box{}, fmt.Errorf("plotfile: bad box token %q", tok)
	}
	vals := make([]int, 4)
	for i := 0; i < 4; i++ {
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return grid.Box{}, fmt.Errorf("plotfile: bad box token %q: %w", tok, err)
		}
		vals[i] = v
	}
	return grid.NewBox(grid.IV(vals[0], vals[1]), grid.IV(vals[2], vals[3])), nil
}

// ReadLevelData parses Level_<l>/Cell_H and the referenced Cell_D files.
func ReadLevelData(dir string, level, ncomp int) (ReadLevel, error) {
	var rl ReadLevel
	chPath := filepath.Join(dir, fmt.Sprintf("Level_%d", level), "Cell_H")
	raw, err := os.ReadFile(chPath)
	if err != nil {
		return rl, fmt.Errorf("plotfile: %w", err)
	}
	lines := strings.Split(string(raw), "\n")
	idx := 4 // version, how, ncomp, nghost
	if len(lines) < 6 {
		return rl, fmt.Errorf("plotfile: truncated Cell_H")
	}
	// "(N 0"
	nStr := strings.Trim(strings.Fields(lines[idx])[0], "(")
	nboxes, err := strconv.Atoi(nStr)
	if err != nil {
		return rl, fmt.Errorf("plotfile: Cell_H box count: %w", err)
	}
	idx++
	for b := 0; b < nboxes; b++ {
		box, err := parseBox(lines[idx])
		if err != nil {
			return rl, err
		}
		rl.Boxes = append(rl.Boxes, box)
		idx++
	}
	idx += 2 // ")" and the fab count line
	type loc struct {
		file   string
		offset int64
	}
	locs := make([]loc, 0, nboxes)
	for b := 0; b < nboxes; b++ {
		fields := strings.Fields(lines[idx])
		if len(fields) != 3 || fields[0] != "FabOnDisk:" {
			return rl, fmt.Errorf("plotfile: bad FabOnDisk line %q", lines[idx])
		}
		off, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return rl, fmt.Errorf("plotfile: offset: %w", err)
		}
		locs = append(locs, loc{file: fields[1], offset: off})
		idx++
	}
	// Load each referenced file once.
	cache := map[string][]byte{}
	for b, lc := range locs {
		data, ok := cache[lc.file]
		if !ok {
			data, err = os.ReadFile(filepath.Join(dir, fmt.Sprintf("Level_%d", level), lc.file))
			if err != nil {
				return rl, fmt.Errorf("plotfile: %w", err)
			}
			cache[lc.file] = data
		}
		vals, err := decodeFAB(data[lc.offset:], rl.Boxes[b], ncomp)
		if err != nil {
			return rl, fmt.Errorf("plotfile: box %d: %w", b, err)
		}
		rl.Data = append(rl.Data, vals)
	}
	return rl, nil
}

// decodeFAB parses one FAB record starting at data[0].
func decodeFAB(data []byte, expect grid.Box, ncomp int) ([]float64, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("missing FAB header terminator")
	}
	header := string(data[:nl])
	if !strings.HasPrefix(header, "FAB ") {
		return nil, fmt.Errorf("bad FAB header %q", header)
	}
	b, err := parseBox(header[4:])
	if err != nil {
		return nil, err
	}
	if !b.Equal(expect) {
		return nil, fmt.Errorf("FAB box %v != Cell_H box %v", b, expect)
	}
	n := int(b.NumPts()) * ncomp
	payload := data[nl+1:]
	if len(payload) < n*8 {
		return nil, fmt.Errorf("short FAB payload: %d < %d", len(payload), n*8)
	}
	vals := make([]float64, n)
	if err := binary.Read(bytes.NewReader(payload[:n*8]), binary.LittleEndian, vals); err != nil {
		return nil, err
	}
	return vals, nil
}

// FABValuesOf extracts box idx's data from a MultiFab in the on-disk
// order, for comparison against ReadLevelData.
func FABValuesOf(mf *amr.MultiFab, idx int) []float64 {
	f := mf.FABs[idx]
	b := f.ValidBox
	out := make([]float64, 0, b.NumPts()*int64(mf.NComp))
	for c := 0; c < mf.NComp; c++ {
		for j := b.Lo.Y; j <= b.Hi.Y; j++ {
			for i := b.Lo.X; i <= b.Hi.X; i++ {
				out = append(out, f.At(i, j, c))
			}
		}
	}
	return out
}
