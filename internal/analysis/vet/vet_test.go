package vet_test

import (
	"bytes"
	"strings"
	"testing"

	"amrproxyio/internal/analysis/vet"
)

// TestSuiteRegistersAllAnalyzers pins the suite roster: every invariant
// analyzer must be wired into the driver, with unique names.
func TestSuiteRegistersAllAnalyzers(t *testing.T) {
	want := []string{"boxarraylit", "jsonstrict", "ledgerretain", "lockedalloc", "maprangefloat", "nondeterm"}
	got := vet.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil || a.Doc == "" {
			t.Errorf("analyzer %q missing Run or Doc", a.Name)
		}
	}
}

// TestHandshakeModes covers the go vet -vettool protocol endpoints.
func TestHandshakeModes(t *testing.T) {
	var out, errw bytes.Buffer
	if code := vet.Main([]string{"-flags"}, &out, &errw); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, errw.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", out.String())
	}

	out.Reset()
	if code := vet.Main([]string{"-V=full"}, &out, &errw); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, errw.String())
	}
	if !strings.HasPrefix(out.String(), "amrio-vet version") {
		t.Errorf("-V=full printed %q, want amrio-vet version prefix", out.String())
	}
}

// TestStandaloneFlagsKnownBadFixture runs the driver end to end against
// the seeded-violation package and checks all seeded analyzers fire.
func TestStandaloneFlagsKnownBadFixture(t *testing.T) {
	var out, errw bytes.Buffer
	code := vet.Main([]string{"./testdata/src/bad"}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (diagnostics)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "time.Now") {
		t.Errorf("nondeterm diagnostic missing from output:\n%s", text)
	}
	if !strings.Contains(text, "BoxArray") {
		t.Errorf("boxarraylit diagnostic missing from output:\n%s", text)
	}
	if !strings.Contains(text, "Ledger()") {
		t.Errorf("ledgerretain diagnostic missing from output:\n%s", text)
	}
}

// TestStandaloneCleanPackage: a clean package exits 0 with no output.
func TestStandaloneCleanPackage(t *testing.T) {
	var out, errw bytes.Buffer
	code := vet.Main([]string{"amrproxyio/internal/grid"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}
