// Package bad is the known-bad smoke fixture for the amrio-vet driver
// tests: it violates three different analyzers (nondeterm, boxarraylit,
// ledgerretain) so a passing run proves the suite is actually wired in.
package bad

import (
	"time"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
)

// Stamp uses wall-clock time in simulation-scoped code.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// RawBoxArray bypasses NewBoxArray, leaving the lazy index holder nil.
func RawBoxArray(boxes []grid.Box) amr.BoxArray {
	return amr.BoxArray{Boxes: boxes}
}

// MaterializeLedger rematerializes the full write ledger in a
// streaming-scoped path.
func MaterializeLedger(fs *iosim.FileSystem) []iosim.WriteRecord {
	return fs.Ledger()
}
