// Package vet assembles the amrio-vet analyzer suite and implements its
// command-line driver. The logic lives here (not in cmd/amrio-vet) so
// the driver is testable in-process; the cmd wrapper only forwards
// os.Args and exits.
package vet

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amrproxyio/internal/analysis"
	"amrproxyio/internal/analysis/boxarraylit"
	"amrproxyio/internal/analysis/jsonstrict"
	"amrproxyio/internal/analysis/ledgerretain"
	"amrproxyio/internal/analysis/lockedalloc"
	"amrproxyio/internal/analysis/maprangefloat"
	"amrproxyio/internal/analysis/nondeterm"
)

// Analyzers returns the full suite, in reporting order. Adding an
// analyzer here is all it takes to ship it through go vet and CI.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		boxarraylit.Analyzer,
		jsonstrict.Analyzer,
		ledgerretain.Analyzer,
		lockedalloc.Analyzer,
		maprangefloat.Analyzer,
		nondeterm.Analyzer,
	}
}

// Main is the amrio-vet entry point. It speaks three protocols:
//
//   - `amrio-vet -flags` and `amrio-vet -V=full`: the go vet handshake
//     (flag inventory, then a version line hashed into build cache keys).
//   - `amrio-vet <unit>.cfg`: one vet compilation unit, as invoked per
//     package by `go vet -vettool=amrio-vet`.
//   - `amrio-vet [-tests=false] [patterns]`: standalone mode; loads the
//     patterns (default ./...) via go list and checks them directly.
//
// Exit codes: 0 clean, 1 driver error, 2 diagnostics reported.
func Main(args []string, stdout, stderr io.Writer) int {
	for _, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			// No analyzer exposes flags; an empty JSON array completes the
			// handshake.
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			fmt.Fprintln(stdout, versionLine())
			return 0
		case strings.HasSuffix(a, ".cfg"):
			n, err := analysis.RunUnit(a, Analyzers(), stderr)
			if err != nil {
				fmt.Fprintf(stderr, "amrio-vet: %v\n", err)
				return 1
			}
			if n > 0 {
				return 2
			}
			return 0
		}
	}
	return standalone(args, stdout, stderr)
}

func standalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("amrio-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", true, "also check _test.go files and test-only packages")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", *tests, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "amrio-vet: %v\n", err)
		return 1
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, Analyzers())
		if err != nil {
			fmt.Fprintf(stderr, "amrio-vet: %s: %v\n", pkg.Path, err)
			return 1
		}
		all = append(all, diags...)
	}
	analysis.SortDiagnostics(all)
	analysis.Print(stdout, all)
	if len(all) > 0 {
		fmt.Fprintf(stderr, "amrio-vet: %d finding(s)\n", len(all))
		return 2
	}
	return 0
}

// versionLine mimics the x/tools unitchecker convention: the go command
// hashes this line into its action cache, so it must change when the
// tool binary changes.
func versionLine() string {
	h := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	return fmt.Sprintf("amrio-vet version devel buildID=%s", h)
}
