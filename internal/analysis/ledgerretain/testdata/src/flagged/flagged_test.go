package flagged

import "amrproxyio/internal/iosim"

// Test files are exempt: the fold-vs-batch equivalence pins compare
// streamed folds against Ledger() on purpose. No want comment — this
// call must stay unflagged.
func batchBaselineForTests(fs *iosim.FileSystem) []iosim.WriteRecord {
	return fs.Ledger()
}
