// Package flagged seeds ledgerretain violations against the real
// iosim.FileSystem, so the receiver-type matching is tested against the
// genuine article rather than a look-alike.
package flagged

import "amrproxyio/internal/iosim"

// Direct materialization: the canonical violation.
func Materialize(fs *iosim.FileSystem) []iosim.WriteRecord {
	return fs.Ledger() // want `FileSystem.Ledger\(\) in a streaming path`
}

// Hidden in an expression: still a violation.
func Count(fs *iosim.FileSystem) int {
	return len(fs.Ledger()) // want `FileSystem.Ledger\(\) in a streaming path`
}

// Streaming path: allowed.
func Stream(fs *iosim.FileSystem, c iosim.LedgerConsumer) {
	fs.Attach(c)
	fs.FlushConsumers()
}

// A method merely named Ledger on another type is fine — only the
// FileSystem receiver is the violation.
type fakeLedgerHolder struct{}

func (fakeLedgerHolder) Ledger() []iosim.WriteRecord { return nil }

func OtherLedger(h fakeLedgerHolder) []iosim.WriteRecord {
	return h.Ledger()
}

// Method value reference without a call is out of scope for the
// analyzer (it flags call sites); keep one here to pin that choice.
var ledgerFn = (*iosim.FileSystem).Ledger
