// Package ledgerretain keeps the streaming subsystem streaming: it
// forbids FileSystem.Ledger() calls in the consumer/report-fold paths.
// Design 10's memory claim — O(bursts) per case instead of O(writes) —
// holds only while those paths fold records as they are produced; one
// convenient Ledger() call rematerializes millions of WriteRecords and
// silently reverts the subsystem to batch mode. The batch paths that
// legitimately reduce retained ledgers (the CLIs, iosim itself, tests
// pinning fold == batch) are out of scope.
package ledgerretain

import (
	"go/ast"
	"go/types"

	"amrproxyio/internal/analysis"
)

// Packages scopes the analyzer to the streaming paths: the serve
// service, the memoizing campaign executor, and the report folds. The
// analyzer's own fixture tree is included so the golden tests run it
// against real compiling code.
var Packages = []string{
	"amrproxyio/internal/serve",
	"amrproxyio/internal/campaign",
	"amrproxyio/internal/report",
	"amrproxyio/internal/analysis/ledgerretain",
	"amrproxyio/internal/analysis/vet", // the driver's known-bad smoke fixture
}

var Analyzer = &analysis.Analyzer{
	Name: "ledgerretain",
	Doc: "forbids FileSystem.Ledger() in streaming consumer/report-fold paths; " +
		"materializing the ledger defeats the O(bursts) streaming subsystem",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMatch(pass.PkgPath(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // fold-vs-batch equivalence tests compare against Ledger() on purpose
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Name() != "Ledger" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if !analysis.IsNamedType(sig.Recv().Type(), "amrproxyio/internal/iosim", "FileSystem") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"FileSystem.Ledger() in a streaming path materializes the full ledger: attach a LedgerConsumer fold instead")
			return true
		})
	}
	return nil
}
