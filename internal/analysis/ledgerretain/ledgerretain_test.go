package ledgerretain_test

import (
	"testing"

	"amrproxyio/internal/analysis/analysistest"
	"amrproxyio/internal/analysis/ledgerretain"
)

func TestFlaggedAndAllowedCases(t *testing.T) {
	// Two violations (direct and in-expression materialization); the
	// constructor-free streaming path, the same-named method on another
	// type, the method expression, and the _test.go call stay clean.
	diags := analysistest.Run(t, ledgerretain.Analyzer, "testdata/src/flagged")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
}

func TestScopeCoversStreamingPaths(t *testing.T) {
	// The scope is part of the contract: serve and the memoizing
	// campaign executor must never materialize a ledger.
	for _, pkg := range []string{"amrproxyio/internal/serve", "amrproxyio/internal/campaign", "amrproxyio/internal/report"} {
		found := false
		for _, p := range ledgerretain.Packages {
			if p == pkg {
				found = true
			}
		}
		if !found {
			t.Errorf("package %s missing from ledgerretain scope", pkg)
		}
	}
}
