// Package boxarraylit enforces the ROADMAP's standing BoxArray
// invariant: construction goes through amr.NewBoxArray so every copy of
// the value shares the lazily-built spatial index and content
// fingerprint. A bare amr.BoxArray{...} composite literal carries a nil
// holder — correct but quietly O(N²) on every Index() call, and invisible
// to benchmarks until box counts grow. PR 8's aggregation tests slipped
// two such literals past review; this analyzer makes the invariant
// compiler-grade, tests and benches included.
package boxarraylit

import (
	"go/ast"

	"amrproxyio/internal/analysis"
)

// TargetPkg and TargetType name the guarded composite-literal type.
// AllowedIn is the one package that may build the literal directly: the
// type's own, where the constructors live.
var (
	TargetPkg  = "amrproxyio/internal/amr"
	TargetType = "BoxArray"
	AllowedIn  = "amrproxyio/internal/amr"
)

var Analyzer = &analysis.Analyzer{
	Name: "boxarraylit",
	Doc: "flags amr.BoxArray composite literals outside internal/amr; " +
		"route construction through amr.NewBoxArray so the lazy index is shared",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgPath() == AllowedIn {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.TypeOf(lit)
			if t == nil || !analysis.IsNamedType(t, TargetPkg, TargetType) {
				return true
			}
			pass.Reportf(lit.Pos(),
				"%s composite literal bypasses New%s: the value carries no shared lazy index, so every Index() call rebuilds it (use New%s)",
				TargetType, TargetType, TargetType)
			return true
		})
	}
	return nil
}
