// Package flagged seeds boxarraylit violations using the real
// amr.BoxArray type, so the analyzer's type matching is tested against
// the genuine article rather than a look-alike.
package flagged

import (
	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

// Direct composite literal: no shared holder, O(N²) Index() calls.
func Direct(boxes []grid.Box) amr.BoxArray {
	return amr.BoxArray{Boxes: boxes} // want `BoxArray composite literal bypasses NewBoxArray`
}

// Elided element literals inside a slice literal are just as bad — this
// is the exact shape PR 8's surrogate test shipped.
func InSlice(boxes []grid.Box) []amr.BoxArray {
	return []amr.BoxArray{{Boxes: boxes}} // want `BoxArray composite literal bypasses NewBoxArray`
}

// Empty literal: still a holderless value.
func Empty() amr.BoxArray {
	return amr.BoxArray{} // want `BoxArray composite literal bypasses NewBoxArray`
}

// Constructor path: allowed.
func ViaConstructor(boxes []grid.Box) amr.BoxArray {
	return amr.NewBoxArray(boxes)
}

// A slice literal of constructed values is fine — only the struct
// literal itself is the violation.
func SliceOfConstructed(a amr.BoxArray) []amr.BoxArray {
	return []amr.BoxArray{a}
}

// Other composite literals stay legal.
func OtherLiterals() []grid.Box {
	return []grid.Box{grid.NewBox(grid.IV(0, 0), grid.IV(7, 7))}
}
