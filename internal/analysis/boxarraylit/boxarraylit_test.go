package boxarraylit_test

import (
	"testing"

	"amrproxyio/internal/analysis/analysistest"
	"amrproxyio/internal/analysis/boxarraylit"
)

func TestFlaggedAndAllowedCases(t *testing.T) {
	diags := analysistest.Run(t, boxarraylit.Analyzer, "testdata/src/flagged")
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
}
