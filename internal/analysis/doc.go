// Package analysis is a self-contained static-analysis framework (a
// stdlib-only mirror of golang.org/x/tools/go/analysis) plus the
// contract that the amrio-vet analyzer suite enforces over this
// repository. The suite exists because the invariants below were each
// violated at least once by plausible-looking code that compiled, passed
// unit tests, and broke a property the simulator's results depend on.
//
// # The contract
//
// 1. Deterministic aggregation (maprangefloat). Go randomizes map
// iteration order, and float addition is not associative: summing the
// same values in two orders can differ in the last ulp. Any loop that
// ranges over a map and accumulates floats — or appends map-derived
// elements to an order-bearing slice — therefore produces run-to-run
// nondeterminism, which breaks the repo's byte-identical pinning tests
// (plotfile encoders, zero-Topology property pins). The BurstStats
// aggregation shipped exactly this bug. Such loops must iterate over
// sorted keys; the analyzer's suggested fix emits the canonical
// sorted-keys header.
//
// 2. No ambient nondeterminism (nondeterm). Simulation and pricing code
// must be a pure function of its inputs and seed. time.Now and the
// global math/rand source smuggle in ambient state that cannot be
// replayed; only explicitly seeded sources (rand.New(rand.NewSource(s)))
// are allowed. Test files and the campaign package (which times real
// subprocess runs) are exempt.
//
// 3. BoxArray construction goes through NewBoxArray (boxarraylit).
// BoxArray carries a lazily built spatial index behind a holder pointer;
// a composite literal outside internal/amr leaves the holder nil and
// either panics or silently skips index-accelerated paths. Only the
// defining package may use the literal form.
//
// 4. Strict config decoding (jsonstrict). Fault plans, mitigation
// policies, aggregation specs, and campaign cases configure what a sweep
// measures. A lenient json.Unmarshal drops unknown fields, so a typo
// ("targets" for "target") configures nothing and the sweep silently
// runs without its axis. Every decode whose target contains a config
// type must go through a DisallowUnknownFields decoder, or the type must
// define its own strict UnmarshalJSON.
//
// 5. Non-blocking shard sections (lockedalloc). iosim's ledger is
// sharded per rank so concurrent writes never contend; that only holds
// if the critical sections stay short. Blocking calls (host I/O,
// channel waits, sleeps), nested shard locks, and size-unbounded
// allocations under a shard mutex reintroduce the serialization point
// the sharding removed — or deadlock the rank-major merge.
//
// # Running the suite
//
// The analyzers ship as cmd/amrio-vet, which speaks the `go vet
// -vettool` unit-checker protocol and also runs standalone:
//
//	go build -o /tmp/amrio-vet ./cmd/amrio-vet
//	go vet -vettool=/tmp/amrio-vet ./...
//
// CI runs this as a blocking gate; it must pass clean on the tree.
// Each analyzer has golden-file coverage under its testdata/src
// directory with both flagged and allowed cases, loaded through the
// offline go/types loader in load.go (go list -export + the gc
// importer), so the whole suite works without network access or a
// populated module cache.
package analysis
