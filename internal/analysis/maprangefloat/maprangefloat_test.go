package maprangefloat_test

import (
	"strings"
	"testing"

	"amrproxyio/internal/analysis/analysistest"
	"amrproxyio/internal/analysis/maprangefloat"
)

const fixtureScope = "amrproxyio/internal/analysis/maprangefloat/testdata/src/flagged"

func TestFlaggedAndAllowedCases(t *testing.T) {
	maprangefloat.Packages = append(maprangefloat.Packages, fixtureScope)
	defer func() { maprangefloat.Packages = maprangefloat.Packages[:len(maprangefloat.Packages)-1] }()

	diags := analysistest.Run(t, maprangefloat.Analyzer, "testdata/src/flagged")
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4", len(diags))
	}

	// The int-keyed map sites must carry the mechanical sorted-keys
	// rewrite.
	fixes := 0
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		fixes++
		if len(d.Fix.Edits) != 1 {
			t.Fatalf("fix for %s has %d edits, want 1", d.Message, len(d.Fix.Edits))
		}
		text := d.Fix.Edits[0].NewText
		if !strings.Contains(text, "sort.Ints(ks)") || !strings.Contains(text, "for _,") {
			t.Errorf("suggested fix is not the sorted-keys loop:\n%s", text)
		}
	}
	if fixes != 4 {
		t.Errorf("got %d suggested fixes, want 4 (all fixtures use int-keyed maps)", fixes)
	}
}

func TestOutOfScopePackageIsIgnored(t *testing.T) {
	// The fixture contains a violation but its package path is not in
	// maprangefloat.Packages, so the analyzer must report nothing.
	diags := analysistest.Run(t, maprangefloat.Analyzer, "testdata/src/outofscope")
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0", len(diags))
	}
}
