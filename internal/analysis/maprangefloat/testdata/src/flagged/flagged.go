// Package flagged seeds maprangefloat violations: order-sensitive
// reductions over map iteration.
package flagged

import "sort"

// SumDurations is the PR-7 BurstStats bug shape: a float sum in map
// iteration order.
func SumDurations(perRank map[int]float64) float64 {
	var sum float64
	for _, d := range perRank { // the fix is the sorted-keys loop below
		sum += d // want `float accumulation into sum in map iteration order`
	}
	return sum
}

// MeanByField accumulates into a struct field, which is just as
// order-sensitive as a local.
type stats struct{ wall float64 }

func MeanByField(perRank map[int]float64) stats {
	var s stats
	for _, d := range perRank {
		s.wall += d // want `float accumulation into s.wall`
	}
	return s
}

// CollectValues appends map values, making the slice's order
// schedule-dependent.
func CollectValues(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `append to out in map iteration order`
	}
	return out
}

// SortedSum is the required idiom: collect keys (legal append), sort,
// reduce in key order.
func SortedSum(perRank map[int]float64) float64 {
	keys := make([]int, 0, len(perRank))
	for k := range perRank {
		keys = append(keys, k) // collecting the range key is the prep idiom
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += perRank[k]
	}
	return sum
}

// MaxDuration is order-independent (max is commutative): allowed.
func MaxDuration(perRank map[int]float64) float64 {
	var max float64
	for _, d := range perRank {
		if d > max {
			max = d
		}
	}
	return max
}

// IntSum is exact integer addition: order-independent, allowed.
func IntSum(m map[int]int64) int64 {
	var total int64
	for _, b := range m {
		total += b
	}
	return total
}

// KeyedWrite touches each destination key once: order-independent.
func KeyedWrite(src map[int]float64, dst map[int]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// LocalAccumulator is declared inside the loop body, so it never spans
// iterations: allowed.
func LocalAccumulator(m map[int][]float64) []float64 {
	var out []float64
	for k, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		_ = k
		out = append(out, rowSum) // want `append to out in map iteration order`
	}
	return out
}
