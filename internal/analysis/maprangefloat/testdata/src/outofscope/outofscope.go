// Package outofscope carries the same float-over-map-range shape as the
// flagged fixture but is analyzed without being added to
// maprangefloat.Packages: the analyzer must stay silent outside the
// determinism-pinned packages.
package outofscope

// Sum would be flagged inside iosim/faults/resilience/report.
func Sum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
