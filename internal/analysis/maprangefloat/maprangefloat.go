// Package maprangefloat flags order-sensitive reductions over map
// iteration, the bug class behind PR 7's BurstStats nondeterminism: Go
// randomizes map range order and float addition is not associative, so a
// `sum += v` inside `for _, v := range m` makes equal ledgers produce
// last-ulp-different statistics and breaks the byte-identical report
// pins. The same goes for appending anything but the range key to a
// slice that outlives the loop — the slice's element order becomes
// schedule-dependent. The fix is always the same sorted-keys loop
// BurstStats now uses, and the analyzer emits it as a suggested rewrite
// for int-keyed maps.
package maprangefloat

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"amrproxyio/internal/analysis"
)

// Packages scopes the analyzer to the ledger-reducing packages whose
// outputs are pinned byte-identical by property tests. Order-insensitive
// map ranges elsewhere (e.g. cache invalidation) stay legal.
var Packages = []string{
	"amrproxyio/internal/iosim",
	"amrproxyio/internal/faults",
	"amrproxyio/internal/resilience",
	"amrproxyio/internal/report",
}

var Analyzer = &analysis.Analyzer{
	Name: "maprangefloat",
	Doc: "flags float accumulation and order-sensitive appends inside range-over-map " +
		"loops in the determinism-pinned packages; iterate sorted keys instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMatch(pass.PkgPath(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkBody(pass, rs)
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkBody walks one map-range body for order-sensitive reductions into
// variables that outlive the loop.
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := as.Lhs[0]
			if !isFloat(pass.TypeOf(lhs)) {
				return true
			}
			// Indexed writes (acc[k] += v) touch each key once per
			// iteration and stay order-independent; plain identifiers and
			// struct fields are running reductions.
			if _, indexed := lhs.(*ast.IndexExpr); indexed {
				return true
			}
			if declaredWithin(pass, lhs, rs) {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: as.Pos(),
				Message: fmt.Sprintf(
					"float accumulation into %s in map iteration order; float addition is not associative, so this sum is nondeterministic — iterate sorted keys (PR-7 BurstStats bug class)",
					exprString(lhs)),
				Fix: sortedKeysFix(pass, rs),
			})
		case token.ASSIGN:
			// dst = append(dst, ...) where dst outlives the loop makes
			// dst's order schedule-dependent — unless the only thing
			// appended is the range key itself (the sorted-keys prep
			// idiom: collect, sort, then iterate).
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				return true
			}
			if declaredWithin(pass, as.Lhs[0], rs) {
				return true
			}
			if appendsOnlyRangeKey(pass, call, keyObj) {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: as.Pos(),
				Message: fmt.Sprintf(
					"append to %s in map iteration order makes its element order nondeterministic — iterate sorted keys, or append only the range key and sort",
					exprString(as.Lhs[0])),
				Fix: sortedKeysFix(pass, rs),
			})
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rangeVarObj resolves a range clause variable to its object.
func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.ObjectOf(id)
}

// declaredWithin reports whether the root identifier of e is declared
// inside the range statement (a per-iteration local, so order-safe).
func declaredWithin(pass *analysis.Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
			continue
		case *ast.IndexExpr:
			e = v.X
			continue
		case *ast.StarExpr:
			e = v.X
			continue
		case *ast.Ident:
			obj := pass.ObjectOf(v)
			return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
		default:
			return false
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pass.ObjectOf(id).(*types.Builtin)
	return builtin
}

// appendsOnlyRangeKey reports whether every appended value is exactly the
// range key identifier (the legal collect-then-sort idiom).
func appendsOnlyRangeKey(pass *analysis.Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, a := range call.Args[1:] {
		id, ok := a.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != keyObj {
			return false
		}
	}
	return true
}

// exprString renders a small expression for a message.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	default:
		return "accumulator"
	}
}

// sortedKeysFix builds the mechanical sorted-keys rewrite for int-keyed
// maps over a simple (identifier or selector) map expression: the range
// header is replaced by iteration over a sorted key slice with the value
// rebound in the body. Non-int keys and computed map expressions get no
// fix — the diagnostic alone.
func sortedKeysFix(pass *analysis.Pass, rs *ast.RangeStmt) *analysis.SuggestedFix {
	mt, ok := pass.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return nil
	}
	kb, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || kb.Kind() != types.Int {
		return nil
	}
	var mapText string
	switch rs.X.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		mapText = exprString(rs.X)
	default:
		return nil
	}
	key := "k"
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		key = id.Name
	}
	header := fmt.Sprintf(
		"for _, %[1]s := range func() []int {\n\t\tks := make([]int, 0, len(%[2]s))\n\t\tfor %[1]s := range %[2]s {\n\t\t\tks = append(ks, %[1]s)\n\t\t}\n\t\tsort.Ints(ks)\n\t\treturn ks\n\t}() {",
		key, mapText)
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		header += fmt.Sprintf("\n\t\t%s := %s[%s]", id.Name, mapText, key)
	}
	return &analysis.SuggestedFix{
		Message: `iterate the map's sorted keys (add "sort" to imports if missing)`,
		Edits: []analysis.TextEdit{{
			Pos:     rs.Pos(),
			End:     rs.Body.Lbrace + 1,
			NewText: header,
		}},
	}
}
