package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check. The API deliberately mirrors
// golang.org/x/tools/go/analysis (Name/Doc/Run over a Pass) so the suite
// can migrate to the upstream framework wholesale if the dependency ever
// becomes available; this container builds offline from the standard
// library only.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags. It must
	// be a valid identifier.
	Name string
	// Doc is the one-paragraph contract: what the analyzer forbids and
	// which shipped bug motivated it.
	Doc string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path as the build system names it
	// (test variants keep their " [pkg.test]" suffix; PkgPath strips it).
	Path string

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Fix, when non-nil, is a mechanical rewrite that discharges the
	// diagnostic (maprangefloat and jsonstrict emit them).
	Fix *SuggestedFix

	// Position is resolved by the driver for sorting and rendering.
	Position token.Position
}

// SuggestedFix is a set of textual edits plus a human-readable summary.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Report records a diagnostic against the pass's package.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	d.Position = p.Fset.Position(d.Pos)
	*p.diags = append(*p.diags, d)
}

// Reportf is Report with a formatted message and no suggested fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (nil if unresolved).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// PkgPath returns the package path with any build-system test-variant
// suffix ("pkg [pkg.test]") stripped, which is the form scope lists use.
func (p *Pass) PkgPath() string {
	return StripTestVariant(p.Path)
}

// StripTestVariant drops the " [pkg.test]" suffix go list and go vet
// append to in-package test variants.
func StripTestVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// PackageMatch reports whether path equals, or is a subpackage of, any
// entry in scope. An empty scope matches everything.
func PackageMatch(path string, scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	path = StripTestVariant(path)
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// IsNamedType reports whether t (or the type it points to) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && StripTestVariant(obj.Pkg().Path()) == pkgPath
}
