// Package analysistest runs one analyzer over a golden fixture package
// and matches its diagnostics against `// want "regexp"` comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest. Fixture
// packages live under the analyzer's testdata/src/ directory; they are
// real, compiling packages of this module (go's wildcard patterns skip
// testdata directories, so the CI gate never scans them), which lets
// fixtures import the repo's own types — boxarraylit's fixtures build
// genuine amr.BoxArray literals rather than look-alikes.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"amrproxyio/internal/analysis"
)

// Run loads the fixture package at dir (a path relative to the test's
// working directory, e.g. "testdata/src/flagged"), applies the analyzer,
// and asserts the diagnostics exactly match the fixture's want comments.
// The diagnostics are returned for extra assertions (suggested fixes).
func Run(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tests are included so fixtures can pin test-file exemptions
	// (nondeterm skips _test.go; jsonstrict's contract is non-test code).
	pkgs, err := analysis.Load(filepath.Dir(abs), true, []string{"./" + filepath.Base(abs)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	matchDiagnostics(t, diags, wants)
	return diags
}

// want is one expectation: a diagnostic whose message matches rx on the
// given file:line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants parses `// want "rx" "rx2"` comments (double- or
// back-quoted) from every fixture file.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, text) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{
						file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits a want payload into its quoted patterns.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: want patterns must be quoted, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		quoted := s[:end+2]
		unq, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// matchDiagnostics pairs every diagnostic with a want on its line and
// fails on unmatched entries in either direction.
func matchDiagnostics(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s (%s)",
				fmtPos(d.Position.Filename, d.Position.Line), d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s matched %q", fmtPos(w.file, w.line), w.raw)
		}
	}
}

func fmtPos(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}
