package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks packages without golang.org/x/tools and without
// network access: `go list -export -deps -json` resolves every package in
// the dependency closure to compiler export data in the local build
// cache, and the standard library's gc importer reads those files through
// a lookup function. Each analyzed package's own sources are parsed and
// checked directly so analyzers see full ASTs with type information.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path as go list names it (test variants bracketed)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
}

const listFields = "-json=Dir,ImportPath,Name,Export,Standard,DepOnly,ForTest,GoFiles,ImportMap"

// goList runs `go list -export -deps` in dir over patterns and decodes
// the JSON stream.
func goList(dir string, includeTests bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps", listFields}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		q := p
		pkgs = append(pkgs, &q)
	}
	return pkgs, nil
}

// Load lists patterns (relative to dir), type-checks every non-dependency
// package in the module, and returns them ready for analysis. With
// includeTests set, in-package test variants replace their plain package
// (they are a superset of its files) and external _test packages are
// loaded too, mirroring what `go vet` analyzes.
func Load(dir string, includeTests bool, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, includeTests, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	byPath := map[string]*listPkg{}
	hasTestVariant := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && strings.Contains(p.ImportPath, " [") {
			hasTestVariant[StripTestVariant(p.ImportPath)] = true
		}
	}
	var out []*Package
	for _, p := range pkgs {
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		// Skip the synthesized test-main package; skip a plain package
		// when its in-package test variant (a file superset) is loaded.
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if !strings.Contains(p.ImportPath, " [") && hasTestVariant[p.ImportPath] {
			continue
		}
		lp, err := checkPackage(p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkPackage parses and type-checks one listed package against the
// export data of its dependency closure.
func checkPackage(p *listPkg, exports map[string]string) (*Package, error) {
	var files []string
	for _, f := range p.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(p.Dir, f)
		}
		files = append(files, f)
	}
	return CheckFiles(p.ImportPath, files, p.ImportMap, exports)
}

// CheckFiles parses and type-checks the given files as one package.
// importMap translates source import paths to build-system package IDs
// (identity when absent); exports maps package IDs to export-data files.
// Both the standalone driver and the unitchecker protocol funnel through
// here.
func CheckFiles(path string, files []string, importMap, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		asts = append(asts, af)
	}
	lookup := func(p string) (io.ReadCloser, error) {
		if m, ok := importMap[p]; ok {
			p = m
		}
		e, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(e)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // keep checking past errors; first error still returned
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(StripTestVariant(path), fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
