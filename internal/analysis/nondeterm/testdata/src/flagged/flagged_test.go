package flagged

import (
	"testing"
	"time"
)

// Test files are exempt: timing a test against the wall clock is fine.
func TestWallClockAllowedInTests(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
