// Package flagged seeds nondeterm violations: wall-clock reads and
// global randomness inside what the analyzer treats as a simulation
// package.
package flagged

import (
	"math/rand"
	"time"
)

// Jitter draws from the process-global source: irreproducible.
func Jitter() float64 {
	return rand.Float64() // want `global rand.Float64 draws from process-global state`
}

// Stamp reads the host clock: simulation time must be simulated.
func Stamp() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

// Shuffle mutates order via the global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global rand.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// SeededDraws is the allowed path: an explicit seed makes replays exact.
func SeededDraws(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() // method on a seeded *rand.Rand: allowed
	}
	return out
}

// Since is not Now: durations of simulated instants are fine.
func Since(a, b time.Duration) time.Duration { return b - a }
