// Package nondeterm forbids wall-clock time and unseeded randomness in
// the simulation and pricing packages. The whole proxy-app methodology
// rests on replayed I/O ledgers being bit-reproducible: a time.Now or a
// global math/rand draw anywhere in the write path would make two runs of
// the same case disagree, silently invalidating every byte-identical
// property pin. Jitter must stay the inline seeded FNV-1a hash (pinned to
// the seed since PR 2), and any other randomness must flow from an
// explicit rand.New(rand.NewSource(seed)) the way faults.Plan draws its
// MTBF interrupts.
package nondeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"amrproxyio/internal/analysis"
)

// Packages scopes the analyzer. Everything under internal/ is simulation
// or reporting and must replay deterministically; campaign is exempt
// because its job includes measuring real elapsed wall time for RunAll.
var Packages = []string{"amrproxyio/internal"}

// Exempt lists subtrees inside Packages the analyzer skips. serve is
// exempt for the same reason as campaign: its /statz throughput and
// uptime numbers measure real wall-clock time by design.
var Exempt = []string{"amrproxyio/internal/campaign", "amrproxyio/internal/serve"}

// seededConstructors are the math/rand entry points that take an explicit
// source or seed — the allowed, reproducible path.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "forbids time.Now and global/unseeded math/rand in simulation packages; " +
		"randomness must be seeded (rand.New(rand.NewSource(seed))) and time simulated",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.PkgPath()
	if !analysis.PackageMatch(path, Packages) || analysis.PackageMatch(path, Exempt) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests may time themselves; the ledger contract binds non-test code
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now in a simulation package: simulated clocks only, or ledgers stop replaying bit-identically")
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global %s.%s draws from process-global state: use rand.New(rand.NewSource(seed)) so runs replay",
						pkgBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
