package nondeterm_test

import (
	"testing"

	"amrproxyio/internal/analysis/analysistest"
	"amrproxyio/internal/analysis/nondeterm"
)

func TestFlaggedAndAllowedCases(t *testing.T) {
	// The fixture sits under amrproxyio/internal/..., so it is in the
	// analyzer's default scope; its _test.go file uses time.Now and must
	// stay unflagged.
	diags := analysistest.Run(t, nondeterm.Analyzer, "testdata/src/flagged")
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
}

func TestCampaignIsExempt(t *testing.T) {
	// campaign measures real wall time for RunAll; the exemption is part
	// of the contract, not an accident of scoping.
	if !contains(nondeterm.Exempt, "amrproxyio/internal/campaign") {
		t.Fatal("campaign must be exempt from nondeterm (it times real runs)")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
