package analysis

import (
	"fmt"
	"io"
	"sort"
)

// RunPackage applies each analyzer to one loaded package and returns the
// diagnostics, sorted by position then analyzer name so output is stable
// across runs (the suite holds itself to its own determinism contract).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.Path,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// Print renders diagnostics in the conventional file:line:col form, with
// suggested fixes (when present) indented beneath.
func Print(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
		if d.Fix != nil {
			fmt.Fprintf(w, "\tsuggested fix: %s\n", d.Fix.Message)
		}
	}
}
