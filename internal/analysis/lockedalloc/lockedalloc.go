// Package lockedalloc guards iosim's sharded-ledger hot path: the
// per-rank shard mutex is uncontended by design (PR 2), so the only way
// to reintroduce the global serialization point the sharding removed is
// to make the critical section slow — blocking I/O, a channel wait, a
// nested shard lock (deadlock risk under the rank-major merge), or a
// size-unbounded allocation while the lock is held. The write path
// deliberately does its RealDisk I/O *before* taking the lock and
// preallocates merge buffers *outside* the per-shard sections; this
// analyzer pins that structure. The check is intra-procedural: it audits
// the statements lexically between Lock and Unlock (or function end,
// for defer), the shape all shard sections in iosim take.
package lockedalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"amrproxyio/internal/analysis"
)

// Packages scopes the analyzer to the sharded-ledger package.
var Packages = []string{"amrproxyio/internal/iosim"}

// LockOwnerTypes names the struct types whose "mu" field is a shard
// mutex. Locks on other owners (e.g. FileSystem.growMu) are not shard
// sections.
var LockOwnerTypes = map[string]bool{"shard": true}

// blockedPkgs are packages whose package-level functions block on the
// outside world (or on the scheduler) and must not run under a shard
// lock. fmt is handled separately: only its writer-backed Print family
// blocks.
var blockedPkgs = map[string]bool{
	"os": true, "io": true, "net": true, "net/http": true,
	"log": true, "os/exec": true,
}

// allocThreshold is the largest constant make() size tolerated under a
// shard lock; anything bigger (or non-constant) must be hoisted out.
const allocThreshold = 4096

var Analyzer = &analysis.Analyzer{
	Name: "lockedalloc",
	Doc: "flags blocking calls, channel operations, nested shard locks, and " +
		"size-unbounded allocations while an iosim shard mutex is held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMatch(pass.PkgPath(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkBlock(pass, block)
			return true
		})
	}
	return nil
}

// checkBlock scans one statement list for shard-lock critical sections.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		owner := lockCall(pass, stmt, "Lock")
		if owner == nil {
			continue
		}
		// Section: statements after the Lock until the matching Unlock in
		// this list; a `defer x.mu.Unlock()` (or no Unlock here) holds the
		// lock for the rest of the list.
		for j := i + 1; j < len(block.List); j++ {
			s := block.List[j]
			if u := lockCall(pass, s, "Unlock"); u != nil && sameOwner(pass, owner, u) {
				break
			}
			if d, ok := s.(*ast.DeferStmt); ok && isMuMethod(pass, d.Call, "Unlock") != nil {
				continue
			}
			checkStmt(pass, s, owner)
		}
	}
}

// lockCall matches `expr.mu.<method>()` as a statement, returning the
// owner expression when its type is a shard type.
func lockCall(pass *analysis.Pass, stmt ast.Stmt, method string) ast.Expr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	return isMuMethod(pass, call, method)
}

// isMuMethod matches a call of the form owner.mu.<method>() where owner
// has a LockOwnerTypes type; it returns the owner expression.
func isMuMethod(pass *analysis.Pass, call *ast.CallExpr, method string) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return nil
	}
	t := pass.TypeOf(mu.X)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !LockOwnerTypes[named.Obj().Name()] {
		return nil
	}
	return mu.X
}

// sameOwner compares two owner expressions, by object for identifiers
// and by rendering otherwise.
func sameOwner(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if aok && bok {
		ao, bo := pass.ObjectOf(ai), pass.ObjectOf(bi)
		return ao != nil && ao == bo
	}
	return exprText(a) == exprText(b)
}

func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprText(v.X) + "[" + exprText(v.Index) + "]"
	default:
		return ""
	}
}

// checkStmt walks one statement inside a critical section. Function
// literals are skipped: their bodies run when called, not where defined.
func checkStmt(pass *analysis.Pass, stmt ast.Stmt, owner ast.Expr) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "channel send while a shard mutex is held: the shard section must stay non-blocking")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "channel receive while a shard mutex is held: the shard section must stay non-blocking")
			}
		case *ast.SelectStmt:
			pass.Reportf(v.Pos(), "select while a shard mutex is held: the shard section must stay non-blocking")
		case *ast.CallExpr:
			checkCall(pass, v, owner)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, owner ast.Expr) {
	// Nested shard lock: deadlock risk against the rank-major merge.
	if o := isMuMethod(pass, call, "Lock"); o != nil && !sameOwner(pass, owner, o) {
		pass.Reportf(call.Pos(), "nested shard lock while another shard mutex is held: lock shards one at a time (rank-major), or the merge can deadlock")
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "make" {
			if _, ok := pass.ObjectOf(fun).(*types.Builtin); ok {
				checkMake(pass, call)
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pass.ObjectOf(fun.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // methods: intra-package pricing calls are the section's job
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		switch {
		case blockedPkgs[pkg]:
			pass.Reportf(call.Pos(), "%s.%s while a shard mutex is held: do I/O before taking the lock (the write path prices under the lock, it does not touch the host)", pkgShort(pkg), name)
		case pkg == "time" && name == "Sleep":
			pass.Reportf(call.Pos(), "time.Sleep while a shard mutex is held: the shard section must stay non-blocking")
		case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
			pass.Reportf(call.Pos(), "fmt.%s while a shard mutex is held: writer-backed printing blocks; log outside the section", name)
		}
	}
}

// checkMake flags size-unbounded (non-constant) or large-constant
// allocations under the lock.
func checkMake(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return // make(map) / make(chan) without size hint: cheap header alloc
	}
	// The largest size argument (len or cap) governs the allocation.
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil {
			pass.Reportf(call.Pos(), "size-unbounded make while a shard mutex is held: preallocate outside the section (Ledger sizes its merge buffer before locking)")
			return
		}
		if v, exact := constIntValue(tv); exact && v > allocThreshold {
			pass.Reportf(call.Pos(), "make of %d elements while a shard mutex is held (threshold %d): hoist the allocation out of the section", v, allocThreshold)
			return
		}
	}
}

func constIntValue(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	var v int64
	neg := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, false // overflow: treat as non-exact
		}
	}
	if neg {
		v = -v
	}
	return v, true
}

func pkgShort(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
