package lockedalloc_test

import (
	"testing"

	"amrproxyio/internal/analysis/analysistest"
	"amrproxyio/internal/analysis/lockedalloc"
)

const fixturePkg = "amrproxyio/internal/analysis/lockedalloc/testdata/src/flagged"

func TestFlaggedAndAllowedCases(t *testing.T) {
	old := lockedalloc.Packages
	lockedalloc.Packages = append([]string{fixturePkg}, old...)
	defer func() { lockedalloc.Packages = old }()

	diags := analysistest.Run(t, lockedalloc.Analyzer, "testdata/src/flagged")
	if len(diags) != 8 {
		for _, d := range diags {
			t.Logf("%s: %s", d.Position, d.Message)
		}
		t.Fatalf("got %d diagnostics, want 8", len(diags))
	}
}
