// Package flagged seeds lockedalloc violations against a local shard
// type shaped like iosim's: blocking calls, channel waits, nested shard
// locks, and unbounded allocations inside the critical section.
package flagged

import (
	"fmt"
	"os"
	"sync"
	"time"
)

type shard struct {
	mu      sync.Mutex
	records []int64
	bytes   int64
}

// table has a mutex too, but it is not a shard: its sections are not
// audited.
type table struct {
	mu sync.Mutex
	n  int
}

// BlockingUnderLock does host I/O and sleeps inside the section.
func BlockingUnderLock(s *shard, path string, data []byte) error {
	s.mu.Lock()
	err := os.WriteFile(path, data, 0o644) // want `os.WriteFile while a shard mutex is held`
	time.Sleep(time.Millisecond)           // want `time.Sleep while a shard mutex is held`
	fmt.Printf("wrote %d\n", len(data))    // want `fmt.Printf while a shard mutex is held`
	s.mu.Unlock()
	return err
}

// AllocUnderLock sizes buffers inside the section.
func AllocUnderLock(s *shard, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, n)        // want `size-unbounded make while a shard mutex is held`
	big := make([]float64, 1<<20) // want `make of 1048576 elements while a shard mutex is held`
	s.bytes += int64(len(buf) + len(big))
}

// NestedLock takes a second shard's lock inside the first's section.
func NestedLock(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `nested shard lock while another shard mutex is held`
	b.bytes++
	b.mu.Unlock()
	a.mu.Unlock()
}

// ChannelUnderLock waits on channels inside the section.
func ChannelUnderLock(s *shard, in <-chan int64, out chan<- int64) {
	s.mu.Lock()
	v := <-in // want `channel receive while a shard mutex is held`
	out <- v  // want `channel send while a shard mutex is held`
	s.mu.Unlock()
}

// WritePath is the contract: I/O before the lock, append and pricing
// under it, small preallocation allowed.
func WritePath(s *shard, path string, data []byte) error {
	err := os.WriteFile(path, data, 0o644)
	scratch := make([]int64, 0, 64)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, int64(len(data)))
	s.records = append(s.records, scratch...)
	s.bytes += int64(len(data))
	return err
}

// DeferredWork defines (but does not run) a closure under the lock:
// its body executes later, so it is not part of the section.
func DeferredWork(s *shard, path string) func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.bytes
	return func() error {
		return os.WriteFile(path, make([]byte, n), 0o644)
	}
}

// NotAShard locks a non-shard mutex: out of scope for this analyzer.
func NotAShard(t *table, path string, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	return os.WriteFile(path, data, 0o644)
}
