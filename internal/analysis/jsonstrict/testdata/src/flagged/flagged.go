// Package flagged seeds jsonstrict violations against the real config
// types, including the containment case (a struct holding a
// campaign.Case) that bit campaign.LoadResult.
package flagged

import (
	"bytes"
	"encoding/json"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/resilience"
)

// LenientPlan decodes a fault plan without strictness: a typo configures
// nothing and the sweep silently runs fault-free.
func LenientPlan(data []byte) (faults.Plan, error) {
	var p faults.Plan
	err := json.Unmarshal(data, &p) // want `json.Unmarshal into a type containing config type faults.Plan`
	return p, err
}

// LenientContained: the config type hides one field deep — the exact
// campaign.LoadResult shape.
type wrapper struct {
	Name string        `json:"name"`
	Case campaign.Case `json:"case"`
}

func LenientContained(data []byte) (wrapper, error) {
	var w wrapper
	err := json.Unmarshal(data, &w) // want `json.Unmarshal into a type containing config type campaign.Case`
	return w, err
}

// LenientDecoder builds a decoder but never hardens it.
func LenientDecoder(data []byte) (resilience.Policy, error) {
	var p resilience.Policy
	dec := json.NewDecoder(bytes.NewReader(data))
	err := dec.Decode(&p) // want `Decode into a type containing config type resilience.Policy`
	return p, err
}

// ChainedDecoder can never be strict: no variable to harden.
func ChainedDecoder(data []byte) (faults.Plan, error) {
	var p faults.Plan
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&p) // want `Decode into a type containing config type faults.Plan`
	return p, err
}

// StrictDecoder is the contract: allowed.
func StrictDecoder(data []byte) (faults.Plan, error) {
	var p faults.Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	err := dec.Decode(&p)
	return p, err
}

// TrustedCustomUnmarshaler: AggregationSpec's own UnmarshalJSON is
// already strict, so plain Unmarshal into it is allowed.
func TrustedCustomUnmarshaler(data []byte) (iosim.AggregationSpec, error) {
	var s iosim.AggregationSpec
	err := json.Unmarshal(data, &s)
	return s, err
}

// NonConfigDecode: arbitrary types decode however they like.
func NonConfigDecode(data []byte) (map[string]int, error) {
	var m map[string]int
	err := json.Unmarshal(data, &m)
	return m, err
}
