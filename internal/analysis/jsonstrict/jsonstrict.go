// Package jsonstrict enforces the config-decoding contract faults.Parse
// established: JSON that configures a simulation (fault plans, mitigation
// policies, aggregation specs, campaign cases) must be decoded with
// DisallowUnknownFields, so a typo ("targets" for "target") fails loudly
// instead of silently injecting nothing and "passing" a sweep that never
// exercised its axis. The analyzer flags json.Unmarshal calls whose
// target type contains a config type, and json.Decoder.Decode calls on
// decoders that never call DisallowUnknownFields in the same function.
// Config types that define their own strict UnmarshalJSON (AggregationSpec)
// are trusted wherever they appear.
package jsonstrict

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"amrproxyio/internal/analysis"
)

// ConfigTypes lists the guarded types as "pkgpath.Name". A decode target
// that is, or transitively contains, one of these must be strict.
var ConfigTypes = []string{
	"amrproxyio/internal/faults.Plan",
	"amrproxyio/internal/resilience.Policy",
	"amrproxyio/internal/iosim.AggregationSpec",
	"amrproxyio/internal/campaign.Case",
}

var Analyzer = &analysis.Analyzer{
	Name: "jsonstrict",
	Doc: "flags lenient JSON decoding (no DisallowUnknownFields) of simulation config " +
		"types; typos in a config must fail loudly, not configure nothing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests exercise lenient and error paths on purpose
		}
		var funcs []*ast.FuncDecl
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
		for _, fd := range funcs {
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// First pass: which decoder objects had DisallowUnknownFields called.
	strict := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DisallowUnknownFields" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				strict[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Unmarshal":
			if !isJSONPkgFunc(pass, sel) || len(call.Args) != 2 {
				return true
			}
			if name, ok := targetConfigType(pass, call.Args[1]); ok {
				pass.Report(analysis.Diagnostic{
					Pos: call.Pos(),
					Message: fmt.Sprintf(
						"json.Unmarshal into a type containing config type %s without DisallowUnknownFields: unknown fields (typos) are silently dropped — decode strictly",
						name),
					Fix: unmarshalFix(pass, call),
				})
			}
		case "Decode":
			recv := pass.TypeOf(sel.X)
			if recv == nil || !isJSONDecoder(recv) || len(call.Args) != 1 {
				return true
			}
			name, ok := targetConfigType(pass, call.Args[0])
			if !ok {
				return true
			}
			if id, isIdent := sel.X.(*ast.Ident); isIdent {
				if obj := pass.ObjectOf(id); obj != nil && strict[obj] {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"Decode into a type containing config type %s on a decoder without DisallowUnknownFields in this function: unknown fields (typos) are silently dropped",
				name)
		}
		return true
	})
}

// isJSONPkgFunc reports whether sel resolves to a function in
// encoding/json.
func isJSONPkgFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json"
}

func isJSONDecoder(t types.Type) bool {
	return analysis.IsNamedType(t, "encoding/json", "Decoder")
}

// targetConfigType reports whether the decode target (typically &x)
// contains a guarded config type, returning the first one found.
func targetConfigType(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	t := pass.TypeOf(arg)
	if t == nil {
		return "", false
	}
	seen := map[types.Type]bool{}
	return containsConfig(t, seen)
}

// containsConfig walks t's structure looking for config types. A named
// config type with its own UnmarshalJSON method is trusted (the
// strictness lives on the type) and terminates that branch.
func containsConfig(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	switch v := t.(type) {
	case *types.Pointer:
		return containsConfig(v.Elem(), seen)
	case *types.Slice:
		return containsConfig(v.Elem(), seen)
	case *types.Array:
		return containsConfig(v.Elem(), seen)
	case *types.Map:
		return containsConfig(v.Elem(), seen)
	case *types.Named:
		obj := v.Obj()
		if obj != nil && obj.Pkg() != nil {
			full := analysis.StripTestVariant(obj.Pkg().Path()) + "." + obj.Name()
			for _, c := range ConfigTypes {
				if full == c {
					if hasUnmarshalJSON(v) {
						return "", false // trusted custom strict decoder
					}
					return shortName(full), true
				}
			}
		}
		return containsConfig(v.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if name, ok := containsConfig(v.Field(i).Type(), seen); ok {
				return name, ok
			}
		}
	}
	return "", false
}

// hasUnmarshalJSON reports whether *T defines UnmarshalJSON.
func hasUnmarshalJSON(n *types.Named) bool {
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "UnmarshalJSON" {
			return true
		}
	}
	return false
}

func shortName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// unmarshalFix rewrites json.Unmarshal(data, &x) into an equivalent
// strict-decoding expression. The rewrite is expression-for-expression
// (both evaluate to error), so it is safe in any context.
func unmarshalFix(pass *analysis.Pass, call *ast.CallExpr) *analysis.SuggestedFix {
	data, target := sourceText(pass, call.Args[0]), sourceText(pass, call.Args[1])
	if data == "" || target == "" {
		return nil
	}
	repl := fmt.Sprintf("func() error {\n\t\tdec := json.NewDecoder(bytes.NewReader(%s))\n\t\tdec.DisallowUnknownFields()\n\t\treturn dec.Decode(%s)\n\t}()", data, target)
	return &analysis.SuggestedFix{
		Message: `decode through a strict decoder (add "bytes" to imports if missing)`,
		Edits: []analysis.TextEdit{{
			Pos:     call.Pos(),
			End:     call.End(),
			NewText: repl,
		}},
	}
}

// sourceText renders simple argument expressions; empty for shapes the
// fix generator does not handle.
func sourceText(pass *analysis.Pass, e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := sourceText(pass, v.X); base != "" {
			return base + "." + v.Sel.Name
		}
	case *ast.UnaryExpr:
		if inner := sourceText(pass, v.X); inner != "" {
			return v.Op.String() + inner
		}
	}
	return ""
}
