package jsonstrict_test

import (
	"strings"
	"testing"

	"amrproxyio/internal/analysis/analysistest"
	"amrproxyio/internal/analysis/jsonstrict"
)

func TestFlaggedAndAllowedCases(t *testing.T) {
	diags := analysistest.Run(t, jsonstrict.Analyzer, "testdata/src/flagged")
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4", len(diags))
	}
	// Both json.Unmarshal sites must carry the mechanical strict-decoder
	// rewrite; the decoder sites need a human (move or harden the
	// decoder), so no fix there.
	fixes := 0
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		fixes++
		text := d.Fix.Edits[0].NewText
		if !strings.Contains(text, "DisallowUnknownFields()") || !strings.Contains(text, "json.NewDecoder(bytes.NewReader(") {
			t.Errorf("suggested fix is not the strict-decoder block:\n%s", text)
		}
	}
	if fixes != 2 {
		t.Errorf("got %d suggested fixes, want 2 (the json.Unmarshal sites)", fixes)
	}
}
