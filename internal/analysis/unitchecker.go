package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The go vet driver protocol (`go vet -vettool=$(which amrio-vet)`): the
// go command invokes the tool once with -flags (expecting a JSON array of
// flag definitions), once with -V=full (a version line it hashes into
// cache keys), and then once per package with the path of a JSON config
// file describing the compilation unit. The tool must write the VetxOutput
// facts file (empty: this suite exports no facts) and exit non-zero to
// fail the build when diagnostics are found. The schema mirrors
// golang.org/x/tools/go/analysis/unitchecker.

// VetConfig is the per-unit JSON the go command hands the tool.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes analyzers over one vet compilation unit. It returns
// the number of diagnostics reported; the caller maps that to the exit
// code (go vet treats any non-zero exit as failure).
func RunUnit(cfgPath string, analyzers []*Analyzer, out io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, fmt.Errorf("analysis: reading vet config: %v", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("analysis: parsing vet config %s: %v", cfgPath, err)
	}
	// The facts file must exist even when empty, or the go command
	// reports the tool as failed regardless of diagnostics.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, fmt.Errorf("analysis: writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0, nil
	}
	pkg, err := CheckFiles(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	Print(out, diags)
	return len(diags), nil
}
