package hydro

import (
	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

// Flux-recording sweep variants. Refluxing (the Berger–Colella coarse-fine
// flux correction Castro applies) needs the interface fluxes each sweep
// actually used, so these wrappers run the same MUSCL-Hancock + HLLC
// update as SweepX/SweepY while returning the face flux fields.

// FluxField stores the fluxes of one FAB's directional sweep.
// For an x-sweep over valid box [lo, hi]:
//
//	face index k in a row corresponds to the face between cells
//	(lo.X+k-1, j) and (lo.X+k, j), for k = 0..nx.
//
// For a y-sweep, roles of x and y swap (faces between (i, lo.Y+k-1) and
// (i, lo.Y+k)). Flux components are stored un-rotated: Mx is always
// x-momentum flux, My always y-momentum flux.
type FluxField struct {
	Valid grid.Box
	Dir   int // 0 = x faces, 1 = y faces
	nFace int // faces per pencil (nx+1 or ny+1)
	nRow  int // pencils (ny or nx)
	Data  []Cons
}

// newFluxField allocates a zeroed field for a box sweep.
func newFluxField(valid grid.Box, dir int) *FluxField {
	s := valid.Size()
	var nFace, nRow int
	if dir == 0 {
		nFace, nRow = s.X+1, s.Y
	} else {
		nFace, nRow = s.Y+1, s.X
	}
	return &FluxField{
		Valid: valid, Dir: dir, nFace: nFace, nRow: nRow,
		Data: make([]Cons, nFace*nRow),
	}
}

// AtX returns the x-face flux at face coordinate fx (cells fx-1 | fx) and
// row j. Panics if the face is outside the field.
func (ff *FluxField) AtX(fx, j int) Cons {
	return ff.Data[(j-ff.Valid.Lo.Y)*ff.nFace+(fx-ff.Valid.Lo.X)]
}

// AtY returns the y-face flux at face coordinate fy (cells fy-1 | fy) and
// column i.
func (ff *FluxField) AtY(i, fy int) Cons {
	return ff.Data[(i-ff.Valid.Lo.X)*ff.nFace+(fy-ff.Valid.Lo.Y)]
}

// ContainsXFace reports whether x-face (fx, j) lies in this field.
func (ff *FluxField) ContainsXFace(fx, j int) bool {
	return ff.Dir == 0 &&
		fx >= ff.Valid.Lo.X && fx <= ff.Valid.Hi.X+1 &&
		j >= ff.Valid.Lo.Y && j <= ff.Valid.Hi.Y
}

// ContainsYFace reports whether y-face (i, fy) lies in this field.
func (ff *FluxField) ContainsYFace(i, fy int) bool {
	return ff.Dir == 1 &&
		fy >= ff.Valid.Lo.Y && fy <= ff.Valid.Hi.Y+1 &&
		i >= ff.Valid.Lo.X && i <= ff.Valid.Hi.X
}

// SweepXWithFlux is SweepX plus flux capture.
func SweepXWithFlux(f *amr.FAB, dt, dx, gamma float64) *FluxField {
	vb := f.ValidBox
	n := vb.Size().X
	ff := newFluxField(vb, 0)
	row := make([]Prim, n+4)
	for j := vb.Lo.Y; j <= vb.Hi.Y; j++ {
		for i := 0; i < n+4; i++ {
			row[i] = ToPrim(consAt(f, vb.Lo.X-2+i, j), gamma)
		}
		dU, flux := sweep1DWithFlux(row, dt/dx, gamma)
		base := (j - vb.Lo.Y) * ff.nFace
		copy(ff.Data[base:base+n+1], flux)
		for i := 0; i < n; i++ {
			c := consAt(f, vb.Lo.X+i, j)
			c.Rho += dU[i].Rho
			c.Mx += dU[i].Mx
			c.My += dU[i].My
			c.E += dU[i].E
			setCons(f, vb.Lo.X+i, j, enforceFloors(c, gamma))
		}
	}
	return ff
}

// SweepYWithFlux is SweepY plus flux capture (fluxes stored un-rotated).
func SweepYWithFlux(f *amr.FAB, dt, dy, gamma float64) *FluxField {
	vb := f.ValidBox
	n := vb.Size().Y
	ff := newFluxField(vb, 1)
	row := make([]Prim, n+4)
	for i := vb.Lo.X; i <= vb.Hi.X; i++ {
		for j := 0; j < n+4; j++ {
			w := ToPrim(consAt(f, i, vb.Lo.Y-2+j), gamma)
			row[j] = Prim{Rho: w.Rho, U: w.V, V: w.U, P: w.P}
		}
		dU, flux := sweep1DWithFlux(row, dt/dy, gamma)
		base := (i - vb.Lo.X) * ff.nFace
		for k := 0; k <= n; k++ {
			// Un-rotate: the 1D solver's Mx is the sweep-direction
			// momentum flux (y here), its My the transverse (x).
			ff.Data[base+k] = Cons{Rho: flux[k].Rho, Mx: flux[k].My, My: flux[k].Mx, E: flux[k].E}
		}
		for j := 0; j < n; j++ {
			c := consAt(f, i, vb.Lo.Y+j)
			c.Rho += dU[j].Rho
			c.My += dU[j].Mx
			c.Mx += dU[j].My
			c.E += dU[j].E
			setCons(f, i, vb.Lo.Y+j, enforceFloors(c, gamma))
		}
	}
	return ff
}

// sweep1DWithFlux mirrors Sweep1D but also returns the n+1 interface
// fluxes used for the update.
func sweep1DWithFlux(w []Prim, dtOverDx, gamma float64) ([]Cons, []Cons) {
	n := len(w) - 4
	if n <= 0 {
		return nil, nil
	}
	flux := interfaceFluxes(w, dtOverDx, gamma)
	dU := make([]Cons, n)
	for i := 0; i < n; i++ {
		dU[i] = Cons{
			Rho: dtOverDx * (flux[i].Rho - flux[i+1].Rho),
			Mx:  dtOverDx * (flux[i].Mx - flux[i+1].Mx),
			My:  dtOverDx * (flux[i].My - flux[i+1].My),
			E:   dtOverDx * (flux[i].E - flux[i+1].E),
		}
	}
	return dU, flux
}
