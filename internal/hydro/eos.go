// Package hydro implements the 2D compressible Euler solver that stands in
// for Castro's hydrodynamics: gamma-law equation of state, MUSCL-Hancock
// reconstruction with minmod limiting, an HLLC approximate Riemann solver,
// dimensionally split sweeps, CFL time-step control with Castro's
// init_shrink/change_max damping, and the Sedov energy-deposit initial
// condition.
//
// The solver's job in this reproduction is to move the blast wave the way
// Castro does so the AMR hierarchy — and therefore the I/O workload the
// paper measures — evolves realistically.
package hydro

import "math"

// Conserved component indices within the state MultiFab.
const (
	IRho  = iota // density
	IMx          // x-momentum
	IMy          // y-momentum
	IEner        // total energy density
	NCons        // number of conserved components
)

// VarNames are the plotfile names of the conserved components (Castro
// spelling).
var VarNames = [NCons]string{"density", "xmom", "ymom", "rho_E"}

// Floors applied to keep the EOS well-defined through strong rarefactions.
const (
	smallDens = 1e-12
	smallPres = 1e-14
)

// Prim is the primitive state (density, velocities, pressure).
type Prim struct {
	Rho, U, V, P float64
}

// Cons is the conserved state (density, momenta, total energy).
type Cons struct {
	Rho, Mx, My, E float64
}

// ToPrim converts a conserved state with the given gamma, applying floors.
func ToPrim(c Cons, gamma float64) Prim {
	rho := c.Rho
	if rho < smallDens {
		rho = smallDens
	}
	u := c.Mx / rho
	v := c.My / rho
	p := (gamma - 1) * (c.E - 0.5*rho*(u*u+v*v))
	if p < smallPres {
		p = smallPres
	}
	return Prim{Rho: rho, U: u, V: v, P: p}
}

// ToCons converts a primitive state back to conserved form.
func ToCons(w Prim, gamma float64) Cons {
	return Cons{
		Rho: w.Rho,
		Mx:  w.Rho * w.U,
		My:  w.Rho * w.V,
		E:   w.P/(gamma-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V),
	}
}

// SoundSpeed returns sqrt(γ p / ρ) for a primitive state.
func SoundSpeed(w Prim, gamma float64) float64 {
	return math.Sqrt(gamma * w.P / w.Rho)
}

// Mach returns the local Mach number |vel| / c.
func Mach(w Prim, gamma float64) float64 {
	return math.Sqrt(w.U*w.U+w.V*w.V) / SoundSpeed(w, gamma)
}

// FluxX returns the x-direction Euler flux of a primitive state.
func FluxX(w Prim, gamma float64) Cons {
	c := ToCons(w, gamma)
	return Cons{
		Rho: c.Mx,
		Mx:  c.Mx*w.U + w.P,
		My:  c.My * w.U,
		E:   (c.E + w.P) * w.U,
	}
}
