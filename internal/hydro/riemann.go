package hydro

import "math"

// HLLC approximate Riemann solver for the 1D Euler equations in the
// x-direction (the y-sweep rotates velocities before calling it). Wave
// speed estimates follow Batten et al. / Toro: Roe-averaged signal
// velocities bounded by the one-sided extremes.

// HLLCFlux returns the interface flux between left and right primitive
// states.
func HLLCFlux(l, r Prim, gamma float64) Cons {
	cl := SoundSpeed(l, gamma)
	cr := SoundSpeed(r, gamma)

	// Pressure-based wave speed estimate (PVRS, Toro §10.5).
	rhoBar := 0.5 * (l.Rho + r.Rho)
	cBar := 0.5 * (cl + cr)
	pStar := 0.5*(l.P+r.P) - 0.5*(r.U-l.U)*rhoBar*cBar
	if pStar < smallPres {
		pStar = smallPres
	}
	ql := waveSpeedFactor(pStar, l.P, gamma)
	qr := waveSpeedFactor(pStar, r.P, gamma)
	sl := l.U - cl*ql
	sr := r.U + cr*qr

	if sl >= 0 {
		return FluxX(l, gamma)
	}
	if sr <= 0 {
		return FluxX(r, gamma)
	}

	// Contact wave speed.
	num := r.P - l.P + l.Rho*l.U*(sl-l.U) - r.Rho*r.U*(sr-r.U)
	den := l.Rho*(sl-l.U) - r.Rho*(sr-r.U)
	var sm float64
	if math.Abs(den) < 1e-300 {
		sm = 0.5 * (l.U + r.U)
	} else {
		sm = num / den
	}

	if sm >= 0 {
		return hllcSide(l, sl, sm, gamma)
	}
	return hllcSide(r, sr, sm, gamma)
}

// waveSpeedFactor sharpens the acoustic estimate inside shocks (Toro eq.
// 10.59-10.60).
func waveSpeedFactor(pStar, p, gamma float64) float64 {
	if pStar <= p {
		return 1
	}
	return math.Sqrt(1 + (gamma+1)/(2*gamma)*(pStar/p-1))
}

// hllcSide evaluates the HLLC flux using the star state on side k
// (either left with speed s=sl or right with s=sr) and contact speed sm.
func hllcSide(w Prim, s, sm float64, gamma float64) Cons {
	u := ToCons(w, gamma)
	f := FluxX(w, gamma)
	factor := w.Rho * (s - w.U) / (s - sm)
	eStar := u.E/w.Rho + (sm-w.U)*(sm+w.P/(w.Rho*(s-w.U)))
	uStar := Cons{
		Rho: factor,
		Mx:  factor * sm,
		My:  factor * w.V,
		E:   factor * eStar,
	}
	return Cons{
		Rho: f.Rho + s*(uStar.Rho-u.Rho),
		Mx:  f.Mx + s*(uStar.Mx-u.Mx),
		My:  f.My + s*(uStar.My-u.My),
		E:   f.E + s*(uStar.E-u.E),
	}
}
