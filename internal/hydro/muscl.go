package hydro

import "math"

// MUSCL-Hancock 1D sweep: slope-limited linear reconstruction, a half
// time-step predictor using the cell's own face fluxes, then HLLC fluxes
// at each interface. The sweep operates on a row of primitive states with
// two ghost cells on each end and returns the conservative update for the
// interior cells.

// minmodP applies the minmod limiter componentwise to primitive slopes.
func minmodP(a, b Prim) Prim {
	return Prim{
		Rho: minmod(a.Rho, b.Rho),
		U:   minmod(a.U, b.U),
		V:   minmod(a.V, b.V),
		P:   minmod(a.P, b.P),
	}
}

func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

func subP(a, b Prim) Prim {
	return Prim{Rho: a.Rho - b.Rho, U: a.U - b.U, V: a.V - b.V, P: a.P - b.P}
}

func addScaledP(a Prim, s float64, d Prim) Prim {
	return Prim{Rho: a.Rho + s*d.Rho, U: a.U + s*d.U, V: a.V + s*d.V, P: a.P + s*d.P}
}

// floorP re-applies positivity floors after reconstruction.
func floorP(w Prim) Prim {
	if w.Rho < smallDens {
		w.Rho = smallDens
	}
	if w.P < smallPres {
		w.P = smallPres
	}
	return w
}

// interfaceFluxes computes the n+1 interior interface fluxes for a row of
// n cells with 2 ghosts per side: MUSCL slopes, Hancock half-step
// predictor, HLLC at each face. Interface k (k = 0..n) sits between cells
// k+1 and k+2 in w-index space.
func interfaceFluxes(w []Prim, dtOverDx, gamma float64) []Cons {
	n := len(w) - 4
	// Limited slopes for cells 1..len-2 (needs one neighbor each side).
	slopes := make([]Prim, len(w))
	for i := 1; i < len(w)-1; i++ {
		slopes[i] = minmodP(subP(w[i+1], w[i]), subP(w[i], w[i-1]))
	}
	// Face states with Hancock half-step for cells 1..len-2.
	type faces struct{ L, R Prim }
	fs := make([]faces, len(w))
	for i := 1; i < len(w)-1; i++ {
		wl := floorP(addScaledP(w[i], -0.5, slopes[i]))
		wr := floorP(addScaledP(w[i], +0.5, slopes[i]))
		fl := FluxX(wl, gamma)
		fr := FluxX(wr, gamma)
		// Evolve both faces by half a step with the internal flux
		// difference, in conserved variables.
		cl := ToCons(wl, gamma)
		crr := ToCons(wr, gamma)
		half := 0.5 * dtOverDx
		cl = Cons{cl.Rho + half*(fl.Rho-fr.Rho), cl.Mx + half*(fl.Mx-fr.Mx), cl.My + half*(fl.My-fr.My), cl.E + half*(fl.E-fr.E)}
		crr = Cons{crr.Rho + half*(fl.Rho-fr.Rho), crr.Mx + half*(fl.Mx-fr.Mx), crr.My + half*(fl.My-fr.My), crr.E + half*(fl.E-fr.E)}
		fs[i] = faces{L: ToPrim(cl, gamma), R: ToPrim(crr, gamma)}
	}
	flux := make([]Cons, n+1)
	for k := 0; k <= n; k++ {
		flux[k] = HLLCFlux(fs[k+1].R, fs[k+2].L, gamma)
	}
	return flux
}

// Sweep1D advances one row. w has n+4 entries (2 ghosts each side); the
// returned dU has n entries: the conservative increments for interior
// cells given dtOverDx = dt/dx.
func Sweep1D(w []Prim, dtOverDx, gamma float64) []Cons {
	n := len(w) - 4
	if n <= 0 {
		return nil
	}
	flux := interfaceFluxes(w, dtOverDx, gamma)
	dU := make([]Cons, n)
	for i := 0; i < n; i++ {
		dU[i] = Cons{
			Rho: dtOverDx * (flux[i].Rho - flux[i+1].Rho),
			Mx:  dtOverDx * (flux[i].Mx - flux[i+1].Mx),
			My:  dtOverDx * (flux[i].My - flux[i+1].My),
			E:   dtOverDx * (flux[i].E - flux[i+1].E),
		}
	}
	return dU
}
