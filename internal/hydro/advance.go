package hydro

import (
	"math"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

// FAB-level operations: time-step estimation and the dimensionally split
// advance. The AMR driver (internal/sim) is responsible for filling ghost
// cells between sweeps.

// MaxSignalSpeed scans a FAB's valid region and returns the largest
// |u|/dx + c/dx style wave speed in each direction: (sx, sy) with
// sx = max(|u| + c)/dx. The CFL time step is cfl / max(sx + sy) (the
// standard 2D corner-transport bound Castro uses).
func MaxSignalSpeed(f *amr.FAB, dx, dy, gamma float64) (sx, sy float64) {
	for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
		for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
			w := ToPrim(consAt(f, i, j), gamma)
			c := SoundSpeed(w, gamma)
			if v := (math.Abs(w.U) + c) / dx; v > sx {
				sx = v
			}
			if v := (math.Abs(w.V) + c) / dy; v > sy {
				sy = v
			}
		}
	}
	return
}

func consAt(f *amr.FAB, i, j int) Cons {
	return Cons{
		Rho: f.At(i, j, IRho),
		Mx:  f.At(i, j, IMx),
		My:  f.At(i, j, IMy),
		E:   f.At(i, j, IEner),
	}
}

func setCons(f *amr.FAB, i, j int, c Cons) {
	f.Set(i, j, IRho, c.Rho)
	f.Set(i, j, IMx, c.Mx)
	f.Set(i, j, IMy, c.My)
	f.Set(i, j, IEner, c.E)
}

// SweepX advances every valid cell of the FAB by dt using x-direction
// fluxes. Two filled ghost cells are required.
func SweepX(f *amr.FAB, dt, dx, gamma float64) {
	vb := f.ValidBox
	n := vb.Size().X
	row := make([]Prim, n+4)
	for j := vb.Lo.Y; j <= vb.Hi.Y; j++ {
		for i := 0; i < n+4; i++ {
			row[i] = ToPrim(consAt(f, vb.Lo.X-2+i, j), gamma)
		}
		dU := Sweep1D(row, dt/dx, gamma)
		for i := 0; i < n; i++ {
			c := consAt(f, vb.Lo.X+i, j)
			c.Rho += dU[i].Rho
			c.Mx += dU[i].Mx
			c.My += dU[i].My
			c.E += dU[i].E
			setCons(f, vb.Lo.X+i, j, enforceFloors(c, gamma))
		}
	}
}

// SweepY advances every valid cell by dt using y-direction fluxes. The
// row is built along y with velocities rotated so the 1D solver sees the
// sweep direction as "u".
func SweepY(f *amr.FAB, dt, dy, gamma float64) {
	vb := f.ValidBox
	n := vb.Size().Y
	row := make([]Prim, n+4)
	for i := vb.Lo.X; i <= vb.Hi.X; i++ {
		for j := 0; j < n+4; j++ {
			w := ToPrim(consAt(f, i, vb.Lo.Y-2+j), gamma)
			row[j] = Prim{Rho: w.Rho, U: w.V, V: w.U, P: w.P} // rotate
		}
		dU := Sweep1D(row, dt/dy, gamma)
		for j := 0; j < n; j++ {
			c := consAt(f, i, vb.Lo.Y+j)
			// Rotate the update back: dU.Mx is the y-momentum update.
			c.Rho += dU[j].Rho
			c.My += dU[j].Mx
			c.Mx += dU[j].My
			c.E += dU[j].E
			setCons(f, i, vb.Lo.Y+j, enforceFloors(c, gamma))
		}
	}
}

// enforceFloors keeps density and internal energy positive after an
// update, re-deriving total energy if the pressure floor engaged.
func enforceFloors(c Cons, gamma float64) Cons {
	if c.Rho < smallDens {
		c.Rho = smallDens
		c.Mx, c.My = 0, 0
	}
	kin := 0.5 * (c.Mx*c.Mx + c.My*c.My) / c.Rho
	eint := c.E - kin
	minEint := smallPres / (gamma - 1)
	if eint < minEint {
		c.E = kin + minEint
	}
	return c
}

// SedovIC fills a state MultiFab with the Sedov initial condition:
// ambient gas everywhere, with the blast energy deposited uniformly in
// the circle of radius rInit around center (in physical coordinates).
// The deposit conserves total energy E regardless of resolution by
// scaling the energy density to the actual discrete deposit area.
func SedovIC(state *amr.MultiFab, geom grid.Geom, gamma, rho0, p0, energy, rInit float64, center [2]float64) {
	cellArea := geom.CellSize[0] * geom.CellSize[1]
	// Count deposit cells first so the discrete integral matches E.
	var depositCells int
	for _, f := range state.FABs {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				x, y := geom.CellCenter(i, j)
				if inDeposit(x, y, center, rInit) {
					depositCells++
				}
			}
		}
	}
	// If the deposit radius is below the grid resolution no center lands
	// inside; fall back to the single cell containing the blast center so
	// coarse levels still see the explosion (Castro's probin sets r_init
	// of order one fine cell, with the same effect).
	fallback := depositCells == 0
	var fi, fj int
	if fallback {
		fi = geom.Domain.Lo.X + int((center[0]-geom.ProbLo[0])/geom.CellSize[0])
		fj = geom.Domain.Lo.Y + int((center[1]-geom.ProbLo[1])/geom.CellSize[1])
		depositCells = 1
	}
	eAmbient := p0 / (gamma - 1)
	eBlast := energy / (float64(depositCells) * cellArea)
	state.ForEachFAB(func(_ int, f *amr.FAB) {
		for j := f.DataBox.Lo.Y; j <= f.DataBox.Hi.Y; j++ {
			for i := f.DataBox.Lo.X; i <= f.DataBox.Hi.X; i++ {
				x, y := geom.CellCenter(i, j)
				e := eAmbient
				if fallback {
					if i == fi && j == fj {
						e = eBlast
					}
				} else if inDeposit(x, y, center, rInit) {
					e = eBlast
				}
				f.Set(i, j, IRho, rho0)
				f.Set(i, j, IMx, 0)
				f.Set(i, j, IMy, 0)
				f.Set(i, j, IEner, e)
			}
		}
	})
}

func inDeposit(x, y float64, center [2]float64, r float64) bool {
	dx, dy := x-center[0], y-center[1]
	return dx*dx+dy*dy <= r*r
}

// DeriveMach fills a single-component MultiFab with the Mach number
// computed from the state.
func DeriveMach(dst *amr.MultiFab, state *amr.MultiFab, gamma float64) {
	for idx, df := range dst.FABs {
		sf := state.FABs[idx]
		for j := df.ValidBox.Lo.Y; j <= df.ValidBox.Hi.Y; j++ {
			for i := df.ValidBox.Lo.X; i <= df.ValidBox.Hi.X; i++ {
				w := ToPrim(consAt(sf, i, j), gamma)
				df.Set(i, j, 0, Mach(w, gamma))
			}
		}
	}
}

// TotalEnergy integrates the energy density over the valid region of a
// level (cells * cell area), for conservation checks.
func TotalEnergy(state *amr.MultiFab, geom grid.Geom) float64 {
	return state.Sum(IEner) * geom.CellSize[0] * geom.CellSize[1]
}

// TotalMass integrates density over the valid region of a level.
func TotalMass(state *amr.MultiFab, geom grid.Geom) float64 {
	return state.Sum(IRho) * geom.CellSize[0] * geom.CellSize[1]
}
