package hydro

import (
	"math"
	"testing"
	"testing/quick"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
)

const gamma = 1.4

func TestPrimConsRoundTrip(t *testing.T) {
	w := Prim{Rho: 2, U: 3, V: -1, P: 5}
	c := ToCons(w, gamma)
	back := ToPrim(c, gamma)
	if math.Abs(back.Rho-2) > 1e-14 || math.Abs(back.U-3) > 1e-14 ||
		math.Abs(back.V+1) > 1e-14 || math.Abs(back.P-5) > 1e-13 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestPrimConsRoundTripProperty(t *testing.T) {
	f := func(rho, u, v, p float64) bool {
		rho = 0.1 + math.Abs(math.Mod(rho, 100))
		p = 0.1 + math.Abs(math.Mod(p, 100))
		u = math.Mod(u, 50)
		v = math.Mod(v, 50)
		if math.IsNaN(rho) || math.IsNaN(u) || math.IsNaN(v) || math.IsNaN(p) {
			return true
		}
		w := Prim{Rho: rho, U: u, V: v, P: p}
		back := ToPrim(ToCons(w, gamma), gamma)
		tol := 1e-9 * (1 + math.Abs(p) + rho*(u*u+v*v))
		return math.Abs(back.Rho-rho) < tol && math.Abs(back.U-u) < tol &&
			math.Abs(back.V-v) < tol && math.Abs(back.P-p) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFloorsApplied(t *testing.T) {
	w := ToPrim(Cons{Rho: -1, Mx: 0, My: 0, E: -5}, gamma)
	if w.Rho <= 0 || w.P <= 0 {
		t.Errorf("floors not applied: %+v", w)
	}
}

func TestSoundSpeedAndMach(t *testing.T) {
	w := Prim{Rho: 1, U: 0, V: 0, P: 1}
	c := SoundSpeed(w, gamma)
	if math.Abs(c-math.Sqrt(1.4)) > 1e-14 {
		t.Errorf("c = %g", c)
	}
	w.U = 2 * c
	if m := Mach(w, gamma); math.Abs(m-2) > 1e-14 {
		t.Errorf("Mach = %g", m)
	}
}

func TestHLLCConsistency(t *testing.T) {
	// Equal states: flux must equal the exact Euler flux.
	w := Prim{Rho: 1.5, U: 0.3, V: -0.2, P: 2.0}
	got := HLLCFlux(w, w, gamma)
	want := FluxX(w, gamma)
	for _, pair := range [][2]float64{
		{got.Rho, want.Rho}, {got.Mx, want.Mx}, {got.My, want.My}, {got.E, want.E},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-12 {
			t.Errorf("HLLC consistency: got %+v want %+v", got, want)
			break
		}
	}
}

func TestHLLCSupersonicUpwinding(t *testing.T) {
	// Supersonic flow to the right: flux is the left flux exactly.
	l := Prim{Rho: 1, U: 10, V: 0, P: 1}
	r := Prim{Rho: 0.1, U: 10, V: 0, P: 0.1}
	got := HLLCFlux(l, r, gamma)
	want := FluxX(l, gamma)
	if math.Abs(got.Rho-want.Rho) > 1e-12 {
		t.Errorf("supersonic flux = %+v, want left flux %+v", got, want)
	}
	// Supersonic to the left mirrors.
	l2 := Prim{Rho: 0.1, U: -10, V: 0, P: 0.1}
	r2 := Prim{Rho: 1, U: -10, V: 0, P: 1}
	got2 := HLLCFlux(l2, r2, gamma)
	want2 := FluxX(r2, gamma)
	if math.Abs(got2.Rho-want2.Rho) > 1e-12 {
		t.Errorf("supersonic-left flux = %+v, want right flux %+v", got2, want2)
	}
}

func TestHLLCContactPreservation(t *testing.T) {
	// A stationary contact (equal pressure and velocity, different
	// densities at rest) must produce zero mass/momentum/energy flux.
	l := Prim{Rho: 1.0, U: 0, V: 0, P: 1}
	r := Prim{Rho: 0.125, U: 0, V: 0, P: 1}
	f := HLLCFlux(l, r, gamma)
	if math.Abs(f.Rho) > 1e-12 || math.Abs(f.E) > 1e-12 {
		t.Errorf("contact flux = %+v", f)
	}
	if math.Abs(f.Mx-1.0) > 1e-12 { // momentum flux = pressure
		t.Errorf("momentum flux = %g, want 1 (pressure)", f.Mx)
	}
}

// sod sets up the Sod shock tube along x on a single-box level and runs n
// steps, returning the final density profile.
func sod(t *testing.T, n int) []float64 {
	t.Helper()
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(199, 3))
	geom := grid.NewGeom(dom, [2]float64{0, 0}, [2]float64{1, 0.02})
	ba := amr.SingleBoxArray(dom, 256, 1)
	mf := amr.NewMultiFab(ba, amr.MustDistribute(ba, 1, amr.DistRoundRobin), NCons, 2)
	for _, f := range mf.FABs {
		for j := f.DataBox.Lo.Y; j <= f.DataBox.Hi.Y; j++ {
			for i := f.DataBox.Lo.X; i <= f.DataBox.Hi.X; i++ {
				x, _ := geom.CellCenter(i, j)
				w := Prim{Rho: 1, U: 0, V: 0, P: 1}
				if x > 0.5 {
					w = Prim{Rho: 0.125, U: 0, V: 0, P: 0.1}
				}
				c := ToCons(w, gamma)
				f.Set(i, j, IRho, c.Rho)
				f.Set(i, j, IMx, c.Mx)
				f.Set(i, j, IMy, c.My)
				f.Set(i, j, IEner, c.E)
			}
		}
	}
	dt := 0.0005
	for s := 0; s < n; s++ {
		amr.FillPatch(mf, nil, dom, 1, amr.InterpPiecewiseConstant)
		for _, f := range mf.FABs {
			SweepX(f, dt, geom.CellSize[0], gamma)
		}
		amr.FillPatch(mf, nil, dom, 1, amr.InterpPiecewiseConstant)
		for _, f := range mf.FABs {
			SweepY(f, dt, geom.CellSize[1], gamma)
		}
	}
	out := make([]float64, 200)
	for i := range out {
		v, _ := mf.ValueAt(grid.IV(i, 1), IRho)
		out[i] = v
	}
	return out
}

func TestSodShockTube(t *testing.T) {
	rho := sod(t, 300) // t = 0.15
	// Qualitative exact-solution checks at t=0.15:
	// left state intact near x=0, right state intact near x=1.
	if math.Abs(rho[5]-1.0) > 0.01 {
		t.Errorf("left state = %g", rho[5])
	}
	if math.Abs(rho[195]-0.125) > 0.01 {
		t.Errorf("right state = %g", rho[195])
	}
	// Post-shock density plateau ~0.2655; shock near x ≈ 0.76 at t=0.15.
	plateau := rho[142] // x ≈ 0.7125, between contact (~0.685) and shock (~0.76)
	if math.Abs(plateau-0.2655) > 0.03 {
		t.Errorf("post-shock plateau = %g, want ~0.2655", plateau)
	}
	// Monotone decrease through the rarefaction region (x in [0.3, 0.45]).
	for i := 62; i < 88; i++ {
		if rho[i+1] > rho[i]+1e-6 {
			t.Errorf("rarefaction not monotone at %d: %g -> %g", i, rho[i], rho[i+1])
			break
		}
	}
}

func TestSweepConservation(t *testing.T) {
	// With outflow boundaries far from the action, interior sweeps
	// conserve mass to machine precision.
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	geom := grid.NewGeom(dom, [2]float64{0, 0}, [2]float64{1, 1})
	ba := amr.SingleBoxArray(dom, 64, 1)
	mf := amr.NewMultiFab(ba, amr.MustDistribute(ba, 1, amr.DistRoundRobin), NCons, 2)
	SedovIC(mf, geom, gamma, 1.0, 1e-5, 1.0, 0.1, [2]float64{0.5, 0.5})
	mass0 := TotalMass(mf, geom)
	energy0 := TotalEnergy(mf, geom)
	dt := 1e-4
	for s := 0; s < 5; s++ {
		amr.FillPatch(mf, nil, dom, 1, amr.InterpPiecewiseConstant)
		for _, f := range mf.FABs {
			SweepX(f, dt, geom.CellSize[0], gamma)
		}
		amr.FillPatch(mf, nil, dom, 1, amr.InterpPiecewiseConstant)
		for _, f := range mf.FABs {
			SweepY(f, dt, geom.CellSize[1], gamma)
		}
	}
	if rel := math.Abs(TotalMass(mf, geom)-mass0) / mass0; rel > 1e-10 {
		t.Errorf("mass drift = %g", rel)
	}
	if rel := math.Abs(TotalEnergy(mf, geom)-energy0) / energy0; rel > 1e-10 {
		t.Errorf("energy drift = %g", rel)
	}
}

func TestSedovICEnergyDeposit(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	geom := grid.NewGeom(dom, [2]float64{0, 0}, [2]float64{1, 1})
	ba := amr.SingleBoxArray(dom, 32, 8)
	mf := amr.NewMultiFab(ba, amr.MustDistribute(ba, 2, amr.DistRoundRobin), NCons, 2)
	const E = 1.0
	SedovIC(mf, geom, gamma, 1.0, 1e-5, E, 0.05, [2]float64{0.5, 0.5})
	// Total energy should equal E plus the small ambient contribution.
	ambient := 1e-5 / (gamma - 1) * 1.0 // p0/(γ-1) * area(1x1), roughly
	got := TotalEnergy(mf, geom)
	if math.Abs(got-E-ambient)/E > 0.01 {
		t.Errorf("deposited energy = %g, want ~%g", got, E+ambient)
	}
	// Density must be uniform rho0.
	if mf.Min(IRho) != 1.0 || mf.Max(IRho) != 1.0 {
		t.Errorf("density not uniform: [%g, %g]", mf.Min(IRho), mf.Max(IRho))
	}
	// Velocity zero initially.
	if mf.Max(IMx) != 0 || mf.Min(IMx) != 0 {
		t.Error("initial momentum nonzero")
	}
}

func TestMaxSignalSpeed(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(7, 7))
	ba := amr.SingleBoxArray(dom, 8, 1)
	mf := amr.NewMultiFab(ba, amr.MustDistribute(ba, 1, amr.DistRoundRobin), NCons, 0)
	w := Prim{Rho: 1, U: 3, V: -4, P: 1}
	c := ToCons(w, gamma)
	mf.ForEachFAB(func(_ int, f *amr.FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, IRho, c.Rho)
				f.Set(i, j, IMx, c.Mx)
				f.Set(i, j, IMy, c.My)
				f.Set(i, j, IEner, c.E)
			}
		}
	})
	dx, dy := 0.1, 0.2
	sx, sy := MaxSignalSpeed(mf.FABs[0], dx, dy, gamma)
	cs := SoundSpeed(w, gamma)
	if math.Abs(sx-(3+cs)/dx) > 1e-12 {
		t.Errorf("sx = %g, want %g", sx, (3+cs)/dx)
	}
	if math.Abs(sy-(4+cs)/dy) > 1e-12 {
		t.Errorf("sy = %g, want %g", sy, (4+cs)/dy)
	}
}

func TestDeriveMach(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(3, 3))
	ba := amr.SingleBoxArray(dom, 4, 1)
	dm := amr.MustDistribute(ba, 1, amr.DistRoundRobin)
	state := amr.NewMultiFab(ba, dm, NCons, 0)
	mach := amr.NewMultiFab(ba, dm, 1, 0)
	w := Prim{Rho: 1, U: 2 * math.Sqrt(1.4), V: 0, P: 1} // Mach 2
	c := ToCons(w, gamma)
	state.ForEachFAB(func(_ int, f *amr.FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, IRho, c.Rho)
				f.Set(i, j, IMx, c.Mx)
				f.Set(i, j, IMy, c.My)
				f.Set(i, j, IEner, c.E)
			}
		}
	})
	DeriveMach(mach, state, gamma)
	if v, _ := mach.ValueAt(grid.IV(1, 1), 0); math.Abs(v-2) > 1e-12 {
		t.Errorf("Mach = %g", v)
	}
}

func TestEnforceFloorsRecoversBadState(t *testing.T) {
	c := enforceFloors(Cons{Rho: -5, Mx: 1, My: 1, E: -10}, gamma)
	if c.Rho <= 0 {
		t.Error("density floor failed")
	}
	w := ToPrim(c, gamma)
	if w.P <= 0 {
		t.Error("pressure floor failed")
	}
}

func TestVarNames(t *testing.T) {
	if len(VarNames) != NCons {
		t.Error("VarNames length mismatch")
	}
	if VarNames[IRho] != "density" || VarNames[IEner] != "rho_E" {
		t.Errorf("VarNames = %v", VarNames)
	}
}
