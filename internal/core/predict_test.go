package core

import (
	"math"
	"math/rand"
	"testing"
)

// synthObs generates observations from a known law:
// bytes = C * ncells^a * events^b * exp(c*maxLevel + d*cfl).
func synthObs(n int, noise float64, seed int64) []RunObservation {
	rng := rand.New(rand.NewSource(seed))
	const (
		C = 80.0 // ~bytes per cell per event
		a = 1.0
		b = 1.0
		c = 0.35
		d = 0.2
	)
	var obs []RunObservation
	sizes := []int{32, 64, 128, 256, 512, 1024}
	for i := 0; i < n; i++ {
		sz := sizes[i%len(sizes)]
		ml := 2 + i%3
		cfl := 0.3 + 0.1*float64(i%4)
		events := 5 + i%20
		cells := float64(sz) * float64(sz)
		bytes := C * math.Pow(cells, a) * math.Pow(float64(events), b) *
			math.Exp(c*float64(ml)+d*cfl) * math.Exp(noise*rng.NormFloat64())
		obs = append(obs, RunObservation{
			NCellX: sz, NCellY: sz, MaxLevel: ml, CFL: cfl,
			NProcs: 4, PlotEvents: events, TotalBytes: int64(bytes),
		})
	}
	return obs
}

func TestFitSizePredictorExactLaw(t *testing.T) {
	obs := synthObs(60, 0, 1)
	p, err := FitSizePredictor(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.InSampleMAPE > 0.5 {
		t.Errorf("in-sample MAPE = %g%% on noiseless data", p.InSampleMAPE)
	}
	// With the dimensional part imposed, the fit recovers
	// [log C, levels coefficient, cfl coefficient] exactly.
	coef := p.Fit.Coef
	if math.Abs(coef[0]-math.Log(80)) > 1e-6 {
		t.Errorf("intercept = %g, want log(80)=%g", coef[0], math.Log(80))
	}
	if math.Abs(coef[1]-0.35) > 1e-6 || math.Abs(coef[2]-0.2) > 1e-4 {
		t.Errorf("level/cfl coefficients = %v", coef)
	}
}

func TestFitSizePredictorNoisyGeneralizes(t *testing.T) {
	train := synthObs(80, 0.05, 2)
	p, err := FitSizePredictor(train)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out set from a different seed.
	test := synthObs(40, 0.05, 3)
	var worst float64
	for _, o := range test {
		pred := p.PredictBytes(o)
		rel := math.Abs(pred-float64(o.TotalBytes)) / float64(o.TotalBytes)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.5 {
		t.Errorf("worst held-out relative error = %g", worst)
	}
}

func TestFitSizePredictorExtrapolatesInSize(t *testing.T) {
	// Train on small meshes, predict a mesh 100x larger under the same
	// law: the imposed dimensional scaling keeps extrapolation exact —
	// this is the property that lets laptop runs size Summit targets.
	train := synthObs(60, 0, 8)
	p, err := FitSizePredictor(train)
	if err != nil {
		t.Fatal(err)
	}
	big := RunObservation{NCellX: 8192, NCellY: 8192, MaxLevel: 3, CFL: 0.5, NProcs: 64, PlotEvents: 10}
	cells := float64(big.NCellX) * float64(big.NCellY)
	want := 80.0 * cells * 10 * math.Exp(0.35*3+0.2*0.5)
	got := p.PredictBytes(big)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("extrapolated = %g, want %g", got, want)
	}
}

func TestFitSizePredictorErrors(t *testing.T) {
	if _, err := FitSizePredictor(synthObs(3, 0, 4)); err == nil {
		t.Error("too few observations accepted")
	}
	bad := synthObs(10, 0, 5)
	bad[0].TotalBytes = 0
	if _, err := FitSizePredictor(bad); err == nil {
		t.Error("zero-byte observation accepted")
	}
	bad = synthObs(10, 0, 6)
	bad[2].PlotEvents = 0
	if _, err := FitSizePredictor(bad); err == nil {
		t.Error("zero-event observation accepted")
	}
}

func TestPredictMACSioKernelMatchesTotal(t *testing.T) {
	obs := synthObs(60, 0, 7)
	p, err := FitSizePredictor(obs)
	if err != nil {
		t.Fatal(err)
	}
	target := RunObservation{NCellX: 256, NCellY: 256, MaxLevel: 3, CFL: 0.5, NProcs: 8, PlotEvents: 12}
	kernel := p.PredictMACSio(target)
	// Sum of the kernel series over the predicted events equals the
	// predicted total.
	var sum float64
	for k := 0; k < target.PlotEvents; k++ {
		sum += kernel.Predict(k)
	}
	total := p.PredictBytes(target)
	if math.Abs(sum-total)/total > 1e-9 {
		t.Errorf("kernel sum %g != predicted total %g", sum, total)
	}
	// Growth honors the paper's guidance range.
	if kernel.Growth < 1.0 || kernel.Growth > 1.02 {
		t.Errorf("growth = %g outside [1.0, 1.02]", kernel.Growth)
	}
}
