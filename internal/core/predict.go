package core

import (
	"fmt"
	"math"

	"amrproxyio/internal/stats"
)

// Predictive sizing — the paper's stated follow-up ("a good initial
// candidate for follow up studies on predictive I/O sizes ... that could
// potentially benefit from machine-learning approaches as more data
// becomes available", §V). Given the campaign's measured runs, fit a
// log-linear regression of total output bytes on the input parameters so
// that unseen configurations can be sized without running anything — the
// autotuning use case the paper motivates.

// RunObservation is one measured run reduced to model features.
type RunObservation struct {
	NCellX, NCellY int
	MaxLevel       int
	CFL            float64
	NProcs         int
	PlotEvents     int
	TotalBytes     int64
}

// features maps an observation onto the regression design row:
// [1, maxLevel, cfl]. The dimensional part of the scaling — bytes grow
// linearly with L0 cells and with the number of plot events — is imposed
// exactly rather than fitted (the same physics-informed structure as the
// paper's Eq. 3: part_size ∝ 8·Nx·Ny), so that predictions extrapolate
// from laptop-size training runs to Summit-size targets without the
// regression aliasing the size exponent onto the other features.
func (o RunObservation) features() []float64 {
	return []float64{
		1,
		float64(o.MaxLevel),
		o.CFL,
	}
}

// dimensionalOffset is the exactly-known part of log(total bytes).
func (o RunObservation) dimensionalOffset() float64 {
	return math.Log(float64(o.NCellX)*float64(o.NCellY)) + math.Log(float64(o.PlotEvents))
}

// SizePredictor predicts total output bytes from run parameters.
type SizePredictor struct {
	Fit stats.MultiFit
	// InSampleMAPE is the training-set error in percent.
	InSampleMAPE float64
}

// FitSizePredictor fits log(total_bytes) - log(cells·events) against the
// observation features by multiple OLS.
func FitSizePredictor(obs []RunObservation) (SizePredictor, error) {
	if len(obs) < 6 {
		return SizePredictor{}, fmt.Errorf("core: need >= 6 observations, got %d", len(obs))
	}
	X := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		if o.TotalBytes <= 0 || o.PlotEvents <= 0 || o.NCellX <= 0 || o.NCellY <= 0 {
			return SizePredictor{}, fmt.Errorf("core: invalid observation %+v", o)
		}
		X[i] = o.features()
		y[i] = math.Log(float64(o.TotalBytes)) - o.dimensionalOffset()
	}
	fit, err := stats.OLSMulti(X, y)
	if err != nil {
		return SizePredictor{}, err
	}
	p := SizePredictor{Fit: fit}
	var meas, pred []float64
	for _, o := range obs {
		meas = append(meas, float64(o.TotalBytes))
		pred = append(pred, p.PredictBytes(o))
	}
	p.InSampleMAPE = stats.MAPE(meas, pred)
	return p, nil
}

// PredictBytes returns the modeled total output bytes for a configuration.
func (p SizePredictor) PredictBytes(o RunObservation) float64 {
	return math.Exp(p.Fit.Predict(o.features()) + o.dimensionalOffset())
}

// PredictMACSio builds a full MACSio invocation for an unseen
// configuration from the predictor plus the paper's guidance table: total
// bytes are split evenly over predicted plot events to seed part_size, and
// dataset_growth comes from the cfl/level interpolation (GrowthGuess).
func (p SizePredictor) PredictMACSio(o RunObservation) KernelModel {
	total := p.PredictBytes(o)
	growth := GrowthGuess(o.CFL, o.MaxLevel)
	// Solve base * sum(growth^k, k=0..n-1) = total for base.
	n := o.PlotEvents
	var geom float64
	if math.Abs(growth-1) < 1e-12 {
		geom = float64(n)
	} else {
		geom = (math.Pow(growth, float64(n)) - 1) / (growth - 1)
	}
	return KernelModel{Base: total / geom, Growth: growth}
}
