package core

import "amrproxyio/internal/iosim"

func newModelFS() *iosim.FileSystem {
	c := iosim.DefaultConfig()
	c.JitterSigma = 0
	return iosim.New(c, "")
}
