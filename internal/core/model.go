// Package core implements the paper's contribution: the analytical model
// that translates AMReX Castro inputs into MACSio proxy parameters.
//
//   - Eq. (1): the cumulative independent variable x = output_counter ×
//     ncells built from a run's plot events.
//   - Eq. (2): the dependent output sizes y at the (time step, level, task)
//     hierarchy, extracted from the plotfile ledger.
//   - Eq. (3): part_size = f · 8 · Nx · Ny / nprocs with the correction
//     factor f fitted from a measured run.
//   - Listing 1: the functional mapping g(AMR inputs) → MACSio arguments,
//     with dataset_growth calibrated against the measured per-step series
//     by single-parameter minimization (the paper's Fig. 9 procedure) or,
//     alternatively, by log-linear regression.
package core

import (
	"fmt"
	"math"
	"sort"

	"amrproxyio/internal/inputs"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/stats"
)

// PerStepBytes collapses ledger records into total bytes per plot event,
// ordered by step — the y series behind Figs. 9-11.
func PerStepBytes(recs []plotfile.OutputRecord) (steps []int, bytes []int64) {
	agg := map[int]int64{}
	for _, r := range recs {
		agg[r.Step] += r.Bytes
	}
	for s := range agg {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	for _, s := range steps {
		bytes = append(bytes, agg[s])
	}
	return
}

// PerLevelPerStep returns bytes[level][k] for plot event k — Fig. 7's
// per-level decomposition.
func PerLevelPerStep(recs []plotfile.OutputRecord) (steps []int, byLevel map[int][]int64) {
	type key struct{ step, level int }
	agg := map[key]int64{}
	stepSet := map[int]bool{}
	maxLevel := 0
	for _, r := range recs {
		agg[key{r.Step, r.Level}] += r.Bytes
		stepSet[r.Step] = true
		if r.Level > maxLevel {
			maxLevel = r.Level
		}
	}
	for s := range stepSet {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	byLevel = map[int][]int64{}
	for l := 0; l <= maxLevel; l++ {
		series := make([]int64, len(steps))
		for k, s := range steps {
			series[k] = agg[key{s, l}]
		}
		byLevel[l] = series
	}
	return
}

// PerTaskPerStep returns bytes[rank][k] for a single level — Fig. 8's
// per-task view.
func PerTaskPerStep(recs []plotfile.OutputRecord, level, nprocs int) (steps []int, byTask [][]int64) {
	type key struct{ step, rank int }
	agg := map[key]int64{}
	stepSet := map[int]bool{}
	for _, r := range recs {
		if r.Level != level {
			continue
		}
		agg[key{r.Step, r.Rank}] += r.Bytes
		stepSet[r.Step] = true
	}
	for s := range stepSet {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	byTask = make([][]int64, nprocs)
	for rank := 0; rank < nprocs; rank++ {
		series := make([]int64, len(steps))
		for k, s := range steps {
			series[k] = agg[key{s, rank}]
		}
		byTask[rank] = series
	}
	return
}

// CumulativeXY builds the paper's Eq. (1)/(2) cumulative series: for the
// k-th plot event (1-based), x_k = k · Nx·Ny and y_k = cumulative bytes
// through event k. This is the Fig. 5 coordinate system.
func CumulativeXY(recs []plotfile.OutputRecord, ncells int64) (xs, ys []float64) {
	_, perStep := PerStepBytes(recs)
	var acc float64
	for k, b := range perStep {
		acc += float64(b)
		xs = append(xs, float64(k+1)*float64(ncells))
		ys = append(ys, acc)
	}
	return
}

// PartSizeEq3 evaluates the paper's Eq. (3):
// part_size = f · 8 · Nx · Ny / nprocs  [bytes].
func PartSizeEq3(f float64, nx, ny, nprocs int) int64 {
	return int64(f * 8 * float64(nx) * float64(ny) / float64(nprocs))
}

// FMatch selects what the Eq. 3 factor f is fitted against.
type FMatch int

const (
	// MatchFileBytes fits f so MACSio's actual on-disk bytes at the first
	// dump match the measured AMReX bytes (what an external observer of
	// the filesystem sees). The JSON textual inflation is divided out.
	MatchFileBytes FMatch = iota
	// MatchNominal fits f against MACSio's nominal request size, the
	// paper's part_size semantics.
	MatchNominal
)

// FitF computes the Eq. 3 correction factor from the measured bytes of
// the first plot event. For MatchNominal, f is the effective number of
// 8-byte words MACSio must request per L0 cell to reproduce the AMReX
// step; the paper's f ≈ 23-25 for Castro's derive_plot_vars=ALL output
// (~20+ variables); this implementation writes 10 plot variables, so the
// same fit lands proportionally lower — see EXPERIMENTS.md.
func FitF(step0Bytes int64, nx, ny int, match FMatch) float64 {
	denom := 8 * float64(nx) * float64(ny)
	f := float64(step0Bytes) / denom
	if match == MatchFileBytes {
		f /= macsio.JSONInflation(1 << 16)
	}
	return f
}

// GrowthGuess is the paper's §Appendix-A guidance: dataset_growth in
// [1.0, 1.02], increasing with the CFL number and the number of levels.
// The interpolation is anchored at the paper's reported corners: cfl 0.3
// with 2 levels near 1.0, cfl 0.6 with 4 levels near 1.02.
func GrowthGuess(cfl float64, maxLevel int) float64 {
	cflT := (cfl - 0.3) / (0.6 - 0.3)
	levT := (float64(maxLevel) - 2) / 2
	t := 0.5*clamp01(cflT) + 0.5*clamp01(levT)
	return 1.0 + 0.02*t
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// KernelModel is the calibrated "kernel" y(k) = Base · Growth^k the MACSio
// proxy realizes per dump step.
type KernelModel struct {
	Base   float64 // bytes at the first dump
	Growth float64 // per-dump multiplier (dataset_growth)
}

// Predict returns the modeled bytes at dump step k (0-based).
func (m KernelModel) Predict(k int) float64 {
	return m.Base * math.Pow(m.Growth, float64(k))
}

// PredictSeries evaluates the kernel at 0..n-1.
func (m KernelModel) PredictSeries(n int) []float64 {
	out := make([]float64, n)
	for k := range out {
		out[k] = m.Predict(k)
	}
	return out
}

// CalibrationIter records one step of the Fig. 9 convergence procedure.
type CalibrationIter struct {
	Growth float64
	SSE    float64
}

// CalibrateGrowth fits dataset_growth by minimizing the SSE between the
// kernel and the measured per-step bytes over [lo, hi], holding Base fixed
// (the paper's "keeping the initial data size fixed would lead to a single
// parameter optimization problem"). It returns the fitted model and the
// iteration trace for Fig. 9.
func CalibrateGrowth(measured []int64, base float64, lo, hi float64) (KernelModel, []CalibrationIter) {
	target := make([]float64, len(measured))
	for i, b := range measured {
		target[i] = float64(b)
	}
	var trace []CalibrationIter
	obj := func(g float64) float64 {
		m := KernelModel{Base: base, Growth: g}
		sse := stats.SSE(m.PredictSeries(len(target)), target)
		trace = append(trace, CalibrationIter{Growth: g, SSE: sse})
		return sse
	}
	g, _ := stats.GridThenGolden(obj, lo, hi, 21, 1e-9)
	return KernelModel{Base: base, Growth: g}, trace
}

// CalibrateGrowthOLS fits ln(y_k) = ln(base) + k ln(growth) by ordinary
// least squares — the "linear regression" formulation of the paper's
// model, used as the ablation alternative to the SSE search.
func CalibrateGrowthOLS(measured []int64) (KernelModel, error) {
	if len(measured) < 2 {
		return KernelModel{}, fmt.Errorf("core: need >= 2 plot events, got %d", len(measured))
	}
	xs := make([]float64, len(measured))
	ys := make([]float64, len(measured))
	for i, b := range measured {
		if b <= 0 {
			return KernelModel{}, fmt.Errorf("core: non-positive step bytes %d at %d", b, i)
		}
		xs[i] = float64(i)
		ys[i] = math.Log(float64(b))
	}
	fit, err := stats.OLS(xs, ys)
	if err != nil {
		return KernelModel{}, err
	}
	return KernelModel{Base: math.Exp(fit.Intercept), Growth: math.Exp(fit.Slope)}, nil
}

// Translation is the result of the Listing-1 mapping g: AMR inputs (plus a
// measured reference run) → MACSio invocation.
type Translation struct {
	MACSio macsio.Config
	F      float64     // fitted Eq. 3 factor
	Kernel KernelModel // calibrated per-dump kernel
	Trace  []CalibrationIter
	// Quality of the fit against the measured series.
	MAPE    float64
	Pearson float64
}

// TranslateOptions tunes the translation.
type TranslateOptions struct {
	Match       FMatch
	GrowthLo    float64 // calibration bracket (default [1.0, 1.05])
	GrowthHi    float64
	ComputeTime float64 // seconds between dumps for dynamic studies
}

// DefaultTranslateOptions returns the paper-flavored defaults. The growth
// bracket is wider than the paper's reported ≈[1.0, 1.02] operating range:
// scaled-down meshes (where refined levels dominate L0) legitimately
// calibrate to larger factors, and the search must be able to reach them.
func DefaultTranslateOptions() TranslateOptions {
	return TranslateOptions{Match: MatchNominal, GrowthLo: 1.0, GrowthHi: 1.15}
}

// Translate performs the full Listing-1 mapping: structural parameters
// come straight from the inputs file (num_dumps = max_step/plot_int, MIF
// nprocs, one part with one variable per task), part_size from Eq. 3 with
// f fitted on the first measured plot event, and dataset_growth calibrated
// against the measured per-step series.
func Translate(cfg inputs.CastroInputs, measured []plotfile.OutputRecord, opts TranslateOptions) (Translation, error) {
	if cfg.PlotInt <= 0 {
		return Translation{}, fmt.Errorf("core: plot_int must be positive to model plots")
	}
	_, perStep := PerStepBytes(measured)
	if len(perStep) == 0 {
		return Translation{}, fmt.Errorf("core: measured run has no plot events")
	}
	f := FitF(perStep[0], cfg.NCell[0], cfg.NCell[1], opts.Match)
	partSize := PartSizeEq3(f, cfg.NCell[0], cfg.NCell[1], cfg.NProcs)
	if partSize < 8 {
		partSize = 8
	}
	base := float64(perStep[0])
	kernel, trace := CalibrateGrowth(perStep, base, opts.GrowthLo, opts.GrowthHi)

	mcfg := macsio.DefaultConfig()
	mcfg.Interface = macsio.IfaceMiftmpl
	mcfg.FileMode = macsio.ModeMIF
	mcfg.MIFFiles = cfg.NProcs
	mcfg.NumDumps = cfg.MaxStep/cfg.PlotInt + 1 // plots at 0, plot_int, ...
	mcfg.PartSize = partSize
	mcfg.AvgNumParts = 1
	mcfg.VarsPerPart = 1
	mcfg.ComputeTime = opts.ComputeTime
	mcfg.DatasetGrowth = kernel.Growth
	mcfg.NProcs = cfg.NProcs
	mcfg.SizeOnly = true

	pred := kernel.PredictSeries(len(perStep))
	meas := make([]float64, len(perStep))
	for i, b := range perStep {
		meas[i] = float64(b)
	}
	return Translation{
		MACSio:  mcfg,
		F:       f,
		Kernel:  kernel,
		Trace:   trace,
		MAPE:    stats.MAPE(meas, pred),
		Pearson: stats.Pearson(meas, pred),
	}, nil
}

// PredictMACSioStepBytes returns the actual file bytes (data + root
// metadata) a MACSio run with cfg would write at dump step k — the
// closed-form predictor used when comparing the proxy against a measured
// AMReX series without executing the dump loop.
func PredictMACSioStepBytes(cfg macsio.Config, step int) int64 {
	var total int64
	for r := 0; r < cfg.NProcs; r++ {
		nvals := int(cfg.NominalBytes(r, step) / 8)
		if nvals < 1 {
			nvals = 1
		}
		total += macsio.DataFileSize(cfg.Interface, nvals, cfg.VarsPerPart, cfg.MetaSize)
	}
	total += int64(len(macsio.EncodeRootMeta(cfg, step)))
	return total
}
