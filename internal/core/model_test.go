package core

import (
	"math"
	"testing"

	"amrproxyio/internal/inputs"
	"amrproxyio/internal/macsio"
	"amrproxyio/internal/plotfile"
)

// syntheticRecords builds a ledger with known per-(step,level,rank) bytes.
func syntheticRecords() []plotfile.OutputRecord {
	var recs []plotfile.OutputRecord
	// 3 plot events (steps 0, 20, 40), 2 levels, 2 ranks.
	for k, step := range []int{0, 20, 40} {
		growth := math.Pow(1.01, float64(k))
		for level := 0; level < 2; level++ {
			for rank := 0; rank < 2; rank++ {
				b := int64(float64((level+1)*100000) * growth)
				recs = append(recs, plotfile.OutputRecord{Step: step, Level: level, Rank: rank, Bytes: b})
			}
		}
	}
	return recs
}

func TestPerStepBytes(t *testing.T) {
	steps, bytes := PerStepBytes(syntheticRecords())
	if len(steps) != 3 || steps[0] != 0 || steps[2] != 40 {
		t.Fatalf("steps = %v", steps)
	}
	if bytes[0] != 2*100000+2*200000 {
		t.Errorf("step0 bytes = %d", bytes[0])
	}
	if bytes[1] <= bytes[0] {
		t.Error("growth not reflected")
	}
}

func TestPerLevelPerStep(t *testing.T) {
	steps, byLevel := PerLevelPerStep(syntheticRecords())
	if len(steps) != 3 || len(byLevel) != 2 {
		t.Fatalf("steps=%v levels=%d", steps, len(byLevel))
	}
	if byLevel[0][0] != 200000 || byLevel[1][0] != 400000 {
		t.Errorf("level series = %v", byLevel)
	}
}

func TestPerTaskPerStep(t *testing.T) {
	steps, byTask := PerTaskPerStep(syntheticRecords(), 1, 2)
	if len(steps) != 3 || len(byTask) != 2 {
		t.Fatalf("steps=%v tasks=%d", steps, len(byTask))
	}
	if byTask[0][0] != 200000 || byTask[1][0] != 200000 {
		t.Errorf("task series = %v", byTask)
	}
	// A rank with no data at the level gets zeros.
	_, byTask = PerTaskPerStep(syntheticRecords(), 1, 3)
	if byTask[2][0] != 0 {
		t.Errorf("absent rank bytes = %d", byTask[2][0])
	}
}

func TestCumulativeXYEq1(t *testing.T) {
	xs, ys := CumulativeXY(syntheticRecords(), 512*512)
	if len(xs) != 3 {
		t.Fatalf("len = %d", len(xs))
	}
	if xs[0] != 512*512 || xs[2] != 3*512*512 {
		t.Errorf("xs = %v", xs)
	}
	if ys[0] >= ys[1] || ys[1] >= ys[2] {
		t.Error("cumulative ys must increase")
	}
	_, perStep := PerStepBytes(syntheticRecords())
	if ys[0] != float64(perStep[0]) {
		t.Errorf("y0 = %g, want %d", ys[0], perStep[0])
	}
}

func TestPartSizeEq3(t *testing.T) {
	// The paper's worked example: 23.65 * 512^2 * 8 / 32 ≈ 1550000.
	got := PartSizeEq3(23.65, 512, 512, 32)
	if got < 1540000 || got > 1560000 {
		t.Errorf("part_size = %d, want ~1550000", got)
	}
}

func TestFitFIsInverseOfEq3(t *testing.T) {
	// If a run wrote exactly f*8*Nx*Ny bytes at step 0, FitF recovers f.
	f := 23.65
	step0 := int64(f * 8 * 512 * 512)
	got := FitF(step0, 512, 512, MatchNominal)
	if math.Abs(got-f)/f > 1e-6 { // int64 truncation of step0 costs <1 byte
		t.Errorf("f = %g, want %g", got, f)
	}
	// MatchFileBytes divides out the JSON inflation (~3).
	fb := FitF(step0, 512, 512, MatchFileBytes)
	if fb >= got || fb < got/4 {
		t.Errorf("file-bytes f = %g vs nominal %g", fb, got)
	}
}

func TestGrowthGuessMonotone(t *testing.T) {
	if GrowthGuess(0.3, 2) != 1.0 {
		t.Errorf("low corner = %g", GrowthGuess(0.3, 2))
	}
	if math.Abs(GrowthGuess(0.6, 4)-1.02) > 1e-12 {
		t.Errorf("high corner = %g", GrowthGuess(0.6, 4))
	}
	if !(GrowthGuess(0.6, 2) > GrowthGuess(0.3, 2)) {
		t.Error("cfl not monotone")
	}
	if !(GrowthGuess(0.3, 4) > GrowthGuess(0.3, 2)) {
		t.Error("levels not monotone")
	}
	// Out-of-range inputs clamp.
	if GrowthGuess(0.1, 1) != 1.0 || GrowthGuess(0.9, 6) != 1.02 {
		t.Error("clamping failed")
	}
}

func TestKernelModelPredict(t *testing.T) {
	m := KernelModel{Base: 100, Growth: 1.1}
	if m.Predict(0) != 100 {
		t.Errorf("P(0) = %g", m.Predict(0))
	}
	if math.Abs(m.Predict(2)-121) > 1e-9 {
		t.Errorf("P(2) = %g", m.Predict(2))
	}
	s := m.PredictSeries(3)
	if len(s) != 3 || s[2] != m.Predict(2) {
		t.Errorf("series = %v", s)
	}
}

func TestCalibrateGrowthRecoversKnownFactor(t *testing.T) {
	// Paper's Fig. 9 headline: growth = 1.013075.
	const trueGrowth = 1.013075
	base := 1.55e6 * 32.0
	measured := make([]int64, 20)
	for k := range measured {
		measured[k] = int64(base * math.Pow(trueGrowth, float64(k)))
	}
	m, trace := CalibrateGrowth(measured, base, 1.0, 1.05)
	if math.Abs(m.Growth-trueGrowth) > 1e-5 {
		t.Errorf("growth = %v, want %v", m.Growth, trueGrowth)
	}
	if len(trace) < 5 {
		t.Errorf("trace too short: %d", len(trace))
	}
	// SSE at the fitted growth must be the minimum of the trace.
	minSSE := math.Inf(1)
	for _, it := range trace {
		if it.SSE < minSSE {
			minSSE = it.SSE
		}
	}
	final := KernelModel{Base: base, Growth: m.Growth}
	target := make([]float64, len(measured))
	for i, b := range measured {
		target[i] = float64(b)
	}
	// Final model should be within a hair of the best traced SSE.
	finalSSE := 0.0
	for i, p := range final.PredictSeries(len(target)) {
		finalSSE += (p - target[i]) * (p - target[i])
	}
	if finalSSE > minSSE*1.001+1 {
		t.Errorf("final SSE %g worse than traced best %g", finalSSE, minSSE)
	}
}

func TestCalibrateGrowthOLS(t *testing.T) {
	const trueGrowth = 1.0131
	measured := make([]int64, 15)
	for k := range measured {
		measured[k] = int64(2e6 * math.Pow(trueGrowth, float64(k)))
	}
	m, err := CalibrateGrowthOLS(measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Growth-trueGrowth) > 1e-4 {
		t.Errorf("OLS growth = %g", m.Growth)
	}
	if math.Abs(m.Base-2e6)/2e6 > 0.01 {
		t.Errorf("OLS base = %g", m.Base)
	}
	if _, err := CalibrateGrowthOLS([]int64{5}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := CalibrateGrowthOLS([]int64{5, 0}); err == nil {
		t.Error("zero bytes accepted")
	}
}

func TestTranslateListing1Shape(t *testing.T) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{512, 512}
	cfg.MaxStep = 400
	cfg.PlotInt = 20
	cfg.NProcs = 32

	// Synthesize a measured run with known growth.
	var recs []plotfile.OutputRecord
	base := 1.5e8
	for k := 0; k <= 20; k++ {
		b := int64(base * math.Pow(1.012, float64(k)) / 32)
		for rank := 0; rank < 32; rank++ {
			recs = append(recs, plotfile.OutputRecord{Step: k * 20, Level: 0, Rank: rank, Bytes: b})
		}
	}
	tr, err := Translate(cfg, recs, DefaultTranslateOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := tr.MACSio
	if m.FileMode != macsio.ModeMIF || m.MIFFiles != 32 || m.NProcs != 32 {
		t.Errorf("MIF mapping wrong: %+v", m)
	}
	if m.NumDumps != 21 { // steps 0..400 every 20
		t.Errorf("num_dumps = %d, want 21", m.NumDumps)
	}
	if m.AvgNumParts != 1 || m.VarsPerPart != 1 {
		t.Errorf("parts/vars = %g/%d", m.AvgNumParts, m.VarsPerPart)
	}
	if math.Abs(m.DatasetGrowth-1.012) > 1e-3 {
		t.Errorf("growth = %g, want ~1.012", m.DatasetGrowth)
	}
	// Eq. 3 consistency: part_size == f*8*Nx*Ny/nprocs.
	want := PartSizeEq3(tr.F, 512, 512, 32)
	if m.PartSize != want {
		t.Errorf("part_size = %d, want %d", m.PartSize, want)
	}
	if tr.MAPE > 1 {
		t.Errorf("MAPE = %g%%, expected excellent fit on synthetic data", tr.MAPE)
	}
	if tr.Pearson < 0.999 {
		t.Errorf("Pearson = %g", tr.Pearson)
	}
}

func TestTranslateErrors(t *testing.T) {
	cfg := inputs.DefaultCastroInputs()
	cfg.PlotInt = 0
	if _, err := Translate(cfg, nil, DefaultTranslateOptions()); err == nil {
		t.Error("plot_int=0 accepted")
	}
	cfg.PlotInt = 20
	if _, err := Translate(cfg, nil, DefaultTranslateOptions()); err == nil {
		t.Error("empty ledger accepted")
	}
}

func TestPredictMACSioStepBytesMatchesRun(t *testing.T) {
	cfg := macsio.DefaultConfig()
	cfg.NProcs = 3
	cfg.NumDumps = 4
	cfg.PartSize = 20000
	cfg.DatasetGrowth = 1.05
	cfg.SizeOnly = true
	fsRecs := runMACSio(t, cfg)
	per := macsio.BytesPerStep(fsRecs)
	for k := 0; k < 4; k++ {
		pred := PredictMACSioStepBytes(cfg, k)
		// The run's DumpRecords exclude the root metadata file; the
		// predictor includes it, so compare with that correction.
		root := int64(len(macsio.EncodeRootMeta(cfg, k)))
		if per[k]+root != pred {
			t.Errorf("step %d: run %d + root %d != predicted %d", k, per[k], root, pred)
		}
	}
}

func runMACSio(t *testing.T, cfg macsio.Config) []macsio.DumpRecord {
	t.Helper()
	fs := newModelFS()
	recs, err := macsio.Run(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
