package surrogate

import (
	"testing"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
)

// TestRemapFoldsLoadsOntoAggregators is the regression pin for the
// remap × aggregation interaction: with two-phase aggregation active
// only aggregator ranks open files, so RemapToTargets must balance the
// folded per-aggregator loads. Left unfolded, the heavy node's load
// splits across its two member ranks, LPT cannot beat round-robin
// (11/11 vs 11/11), and both aggregators co-locate on target 0 carrying
// 22 of the 22 load units; folded ([20 0 2 0]) the aggregators separate.
func TestRemapFoldsLoadsOntoAggregators(t *testing.T) {
	topo := iosim.Topology{Nodes: 2, RanksPerNode: 2, Targets: 2}
	// Ranks 0 and 1 (node 0) own 10 cells each; ranks 2 and 3 (node 1)
	// own 1 cell each.
	boxes := []grid.Box{
		{Lo: grid.IntVect{X: 0, Y: 0}, Hi: grid.IntVect{X: 9, Y: 0}},
		{Lo: grid.IntVect{X: 0, Y: 1}, Hi: grid.IntVect{X: 9, Y: 1}},
		{Lo: grid.IntVect{X: 0, Y: 2}, Hi: grid.IntVect{X: 0, Y: 2}},
		{Lo: grid.IntVect{X: 1, Y: 2}, Hi: grid.IntVect{X: 1, Y: 2}},
	}
	owner := []int{0, 1, 2, 3}

	// The unfolded layout is the regression shape: per-rank loads
	// [10 10 1 1] tie LPT with round-robin, the remap declines, and the
	// round-robin placement leaves both 1/node aggregators (ranks 0 and
	// 2) on target 0.
	if m := amr.RemapToTargets(amr.DistributionMapping{Owner: owner}, topo, []int64{10, 10, 1, 1}); m != nil {
		t.Fatalf("unfolded remap = %v, expected LPT to decline the round-robin tie", m)
	}

	fscfg := iosim.DefaultConfig()
	fscfg.JitterSigma = 0
	fscfg.Topology = topo
	fscfg.Aggregation = iosim.AggregationSpec{Aggregators: "1/node"}
	fs := iosim.New(fscfg, "")
	opts := DefaultOptions()
	opts.Remap = true
	r, err := New(cfg(64, 0, 4), opts, fs)
	if err != nil {
		t.Fatal(err)
	}
	r.BAs = []amr.BoxArray{amr.NewBoxArray(boxes)}
	r.DMs = []amr.DistributionMapping{{Owner: owner}}
	if err := r.remapTargets(); err != nil {
		t.Fatal(err)
	}

	fs.BeginBurst(4)
	for rank := 0; rank < 4; rank++ {
		if _, err := fs.WriteSize(rank, "plt/Cell_D", 10, iosim.Labels{}); err != nil {
			t.Fatal(err)
		}
	}
	fs.EndBurst()

	// Folded loads [20 0 2 0] beat round-robin (20/2 vs 22/0), so the
	// heavy aggregator keeps target 0 and the light one moves to target
	// 1 — every rank's write lands on its aggregator's placement.
	want := []int{0, 0, 1, 1}
	for i, rec := range fs.Ledger() {
		if rec.Target != want[i] {
			t.Fatalf("rank %d wrote to target %d, want %d (folded remap must separate the aggregators)",
				rec.Rank, rec.Target, want[i])
		}
	}
}
