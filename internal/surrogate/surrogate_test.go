package surrogate

import (
	"testing"

	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
)

func cfg(n, maxLevel, nprocs int) inputs.CastroInputs {
	c := inputs.DefaultCastroInputs()
	c.NCell = [2]int{n, n}
	c.MaxLevel = maxLevel
	c.MaxStep = 20
	c.PlotInt = 5
	c.RegridInt = 2
	c.MaxGridSize = 64
	c.BlockingFactor = 8
	c.NProcs = nprocs
	c.StopTime = 10
	return c
}

func modelFS() *iosim.FileSystem {
	c := iosim.DefaultConfig()
	c.JitterSigma = 0
	return iosim.New(c, "")
}

func TestNewBuildsNestedHierarchy(t *testing.T) {
	r, err := New(cfg(128, 2, 8), DefaultOptions(), modelFS())
	if err != nil {
		t.Fatal(err)
	}
	if r.FinestLevel() < 1 {
		t.Fatalf("no refinement at start, finest = %d", r.FinestLevel())
	}
	for l := 1; l < len(r.BAs); l++ {
		if !r.BAs[l].IsDisjoint() {
			t.Errorf("level %d overlaps", l)
		}
		ratio := r.Cfg.RefRatioAt(l - 1)
		for _, b := range r.BAs[l].Boxes {
			if !r.BAs[l-1].ContainsBox(b.Coarsen(ratio)) {
				t.Errorf("level %d box %v not nested", l, b)
			}
			if !r.Geoms[l].Domain.ContainsBox(b) {
				t.Errorf("level %d box %v outside domain", l, b)
			}
		}
	}
}

func TestFrontGrowsRefinedRegion(t *testing.T) {
	r, err := New(cfg(128, 2, 4), DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cells0 := r.BAs[1].NumPts()
	// init_shrink=0.01 with change_max=1.1 means dt ramps up over ~60
	// steps before the front moves appreciably, mirroring the solver.
	for i := 0; i < 120; i++ {
		r.Advance()
	}
	r.buildHierarchy()
	cells1 := r.BAs[1].NumPts()
	if cells1 <= cells0 {
		t.Errorf("refined cells did not grow: %d -> %d", cells0, cells1)
	}
}

func TestRunProducesPlots(t *testing.T) {
	fs := modelFS()
	r, err := New(cfg(128, 2, 4), DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.NPlots() != 5 { // steps 0,5,10,15,20
		t.Errorf("plots = %d, want 5", r.NPlots())
	}
	if len(r.Records()) == 0 || fs.TotalBytes() == 0 {
		t.Error("no output recorded")
	}
	// Per-level records exist for level 0 and at least one refined level.
	levels := map[int]bool{}
	for _, rec := range r.Records() {
		levels[rec.Level] = true
	}
	if !levels[0] || !levels[1] {
		t.Errorf("levels in records = %v", levels)
	}
}

func TestL0BytesMatchCellCount(t *testing.T) {
	fs := modelFS()
	c := cfg(128, 0, 2)
	c.PlotInt = 10
	r, err := New(c, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	var l0 int64
	for _, rec := range r.Records() {
		if rec.Step == 0 && rec.Level == 0 {
			l0 += rec.Bytes
		}
	}
	raw := int64(128*128) * 10 * 8 // cells * plotvars * sizeof(double)
	if l0 < raw || l0 > raw+raw/100 {
		t.Errorf("L0 bytes = %d, want ~%d (+headers)", l0, raw)
	}
}

func TestSummitScaleMetadataOnly(t *testing.T) {
	// The headline scale: 131072^2 L0 (~17B cells) on 1024 ranks. Only
	// box metadata is manipulated; a single plot models ~1.4 TB of output
	// and must complete without allocating any field data.
	if testing.Short() {
		t.Skip("summit-scale surrogate skipped in -short")
	}
	fs := modelFS()
	c := cfg(131072, 0, 1024)
	c.MaxGridSize = 1024 // 16384 L0 boxes
	r, err := New(c, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WritePlot(); err != nil {
		t.Fatal(err)
	}
	total := fs.TotalBytes()
	if total < 1.37e12 {
		t.Errorf("modeled bytes = %d, want > 1.37 TB (17B cells x 10 vars x 8 B)", total)
	}
	byRank := iosim.BytesByRank(fs.Ledger())
	if len(byRank) < 1024 {
		t.Errorf("ranks writing = %d, want 1024 (+1 metadata)", len(byRank))
	}
}

func TestSummitScaleSinglePlot(t *testing.T) {
	fs := modelFS()
	c := cfg(32768, 1, 256)
	c.MaxGridSize = 512
	c.PlotInt = 1
	r, err := New(c, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WritePlot(); err != nil {
		t.Fatal(err)
	}
	// L0 alone: 32768^2 cells * 10 vars * 8 B ≈ 86 GB modeled.
	total := fs.TotalBytes()
	if total < 85e9 {
		t.Errorf("modeled bytes = %d, want > 85 GB", total)
	}
	// Many ranks participate.
	byRank := iosim.BytesByRank(fs.Ledger())
	if len(byRank) < 200 {
		t.Errorf("only %d ranks wrote", len(byRank))
	}
}

func TestDtDampingMirrorsDriver(t *testing.T) {
	r, err := New(cfg(128, 1, 2), DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dt0 := r.ComputeDt()
	r.Advance()
	dt1 := r.ComputeDt()
	if dt1 > r.Cfg.ChangeMax*r.LastDt*(1+1e-12) {
		t.Errorf("dt growth %g exceeds change_max bound", dt1)
	}
	if dt0 >= dt1 {
		t.Errorf("init_shrink not applied: dt0=%g dt1=%g", dt0, dt1)
	}
}

func TestHigherCFLWidensBand(t *testing.T) {
	// The surrogate's cfl-dependent tag band: higher cfl -> more refined
	// cells (the mechanism for the paper's Fig. 6 sensitivity).
	run := func(cfl float64) int64 {
		c := cfg(256, 1, 4)
		c.CFL = cfl
		r, err := New(c, DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			r.Advance()
		}
		r.buildHierarchy()
		return r.BAs[1].NumPts()
	}
	low, high := run(0.3), run(0.6)
	if high <= low {
		t.Errorf("cfl 0.6 cells (%d) <= cfl 0.3 cells (%d)", high, low)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	c := cfg(128, 1, 2)
	c.NProcs = 0
	if _, err := New(c, DefaultOptions(), nil); err == nil {
		t.Error("invalid config accepted")
	}
}
