// Package surrogate generates the paper's Summit-scale I/O workloads
// (meshes up to 131072 x 131072 ≈ 17B cells on up to 1024 ranks) without
// solving hydrodynamics. The analytic Sedov–Taylor front location drives
// refinement tagging — a thin annulus of cells around the shock, like the
// gradient tags the real solver produces — and the identical meshing
// pipeline (Berger–Rigoutsos clustering, blocking-factor alignment,
// max-grid-size splitting, proper nesting, distribution mapping) builds the
// level hierarchy. Plotfiles then go through the same N-to-N writer in
// size-only mode, so ledger entries are byte-exact for the structure the
// hierarchy would produce, while no field memory is ever allocated.
//
// DESIGN.md documents this as the substitution for the paper's Summit runs:
// at these scales the measured quantity (bytes per step/level/task) depends
// on grid counts, not field values.
//
// A Runner is single-threaded (its rank parallelism lives inside the
// plotfile writer's SPMD goroutines), but independent Runners share no
// state: campaign.RunAll executes many surrogate cases concurrently, each
// against its own iosim.FileSystem, with ledgers identical to serial
// execution. The size-only write path is allocation-free per box —
// plotfile.CellDBytes computes exact FAB record sizes without rendering
// headers — which is what keeps 17-billion-cell dumps cheap enough to
// fan out across a worker pool.
package surrogate

import (
	"fmt"
	"math"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/resilience"
	"amrproxyio/internal/sedov"
	"amrproxyio/internal/sim"
)

// Options tunes the surrogate's tagging and time-step model.
type Options struct {
	Dist amr.DistStrategy
	// Remap enables the inter-burst layout reorganization (Wan et al.):
	// before each dump the rank→storage-target mapping is rebuilt from
	// the hierarchy's per-rank cell load via amr.RemapToTargets. A no-op
	// unless the filesystem's Topology models storage targets.
	Remap bool
	// StepSeconds models the compute phase between time steps on the
	// filesystem clocks (see sim.Options.StepSeconds): with an
	// asynchronous storage tier (iosim Storage "bb"/"bb+gpfs") the
	// burst-buffer drain overlaps these gaps. 0 keeps historical clocks.
	StepSeconds float64
	// Blast supplies the analytic front r(t).
	Blast sedov.Params
	// Center of the blast in physical coordinates.
	Center [2]float64
	// WidthCells is the half-width of the tagged annulus in cells of the
	// level being tagged — mirroring gradient tags, which span a fixed
	// number of cells at each resolution. The CFL number widens the band
	// slightly (larger cfl -> larger dt -> the front moves farther between
	// regrids, so more cells stay tagged), which reproduces the paper's
	// Fig. 6 cfl sensitivity.
	WidthCells float64
	// SignalFactor converts the shock speed into the dt-limiting signal
	// speed (shock + post-shock acoustics).
	SignalFactor float64
	// Mitigate enables the closed-loop fault-mitigation policy engine
	// (internal/resilience), exactly as sim.Options.Mitigate does: shed
	// plots under fault pressure, quarantine failing targets, and write
	// Young/Daly-retimed (size-only) checkpoints. A nil or zero policy —
	// or a filesystem without a fault injector — builds no engine and
	// keeps every path byte-identical.
	Mitigate *resilience.Policy
}

// DefaultOptions mirrors the solver's refinement behavior.
func DefaultOptions() Options {
	return Options{
		Dist:         amr.DistKnapsack,
		Blast:        sedov.Default(),
		Center:       [2]float64{0.5, 0.5},
		WidthCells:   4,
		SignalFactor: 2,
	}
}

// Runner evolves the surrogate hierarchy through time.
type Runner struct {
	Cfg  inputs.CastroInputs
	Opts Options

	Geoms []grid.Geom // per level, 0..MaxLevel
	BAs   []amr.BoxArray
	DMs   []amr.DistributionMapping

	Step   int
	Time   float64
	LastDt float64

	fs      *iosim.FileSystem
	records []plotfile.OutputRecord
	nPlots  int

	checkpointRecords []plotfile.OutputRecord
	nCheckpoints      int

	// engine is the between-burst mitigation engine; nil (the common
	// case) disables mitigation with zero overhead.
	engine *resilience.Engine
}

// New builds the surrogate at its starting time (front at roughly the
// initial deposit radius).
func New(cfg inputs.CastroInputs, opts Options, fs *iosim.FileSystem) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{Cfg: cfg, Opts: opts, fs: fs}
	r.engine = resilience.ForFileSystem(opts.Mitigate, fs, cfg.NProcs)
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(cfg.NCell[0]-1, cfg.NCell[1]-1))
	g := grid.NewGeom(dom, cfg.ProbLo, cfg.ProbHi)
	r.Geoms = []grid.Geom{g}
	for l := 0; l < cfg.MaxLevel; l++ {
		g = g.Refine(cfg.RefRatioAt(l))
		r.Geoms = append(r.Geoms, g)
	}
	// Start when the front spans a few cells of the finest level so the
	// initial hierarchy is non-trivial, as in the solver's t=0 state.
	dxF := r.Geoms[len(r.Geoms)-1].CellSize[0]
	r.Time = opts.Blast.TimeAtRadius(4 * dxF)
	if err := r.buildHierarchy(); err != nil {
		return nil, err
	}
	return r, nil
}

// FinestLevel returns the highest level index with grids.
func (r *Runner) FinestLevel() int { return len(r.BAs) - 1 }

// Records returns accumulated plot output records.
func (r *Runner) Records() []plotfile.OutputRecord { return r.records }

// NPlots returns the number of plot dumps performed.
func (r *Runner) NPlots() int { return r.nPlots }

// Rebuild regenerates the hierarchy for the runner's current time — the
// public regrid entry point for callers driving the runner manually. The
// only error source is an unknown distribution strategy, which New
// already rejects, so a validated Runner never fails here.
func (r *Runner) Rebuild() error { return r.buildHierarchy() }

// ExchangeTraffic returns the per-rank-pair ghost-exchange volume the
// current hierarchy would generate with the given stencil width and
// component count (the solver uses nghost=2 and 4 conserved components).
// Like the size-only plotfile path, it needs no field data: the cached
// communication plans plus the distribution mappings determine the
// volumes, so Summit-scale what-if placement studies stay cheap. Feed the
// result to iosim.Topology.ExchangeTime alongside the write ledger to
// price mesh and I/O traffic with one contention model.
func (r *Runner) ExchangeTraffic(nghost, ncomp int) []iosim.PairBytes {
	var perLevel [][]amr.PairTraffic
	for l := range r.BAs {
		perLevel = append(perLevel, amr.FillBoundaryTraffic(r.BAs[l], r.DMs[l], nghost, ncomp))
	}
	return sim.MergeExchangeTraffic(perLevel)
}

// buildHierarchy regenerates every level's BoxArray for the current time.
func (r *Runner) buildHierarchy() error {
	cfg := r.Cfg
	dom0 := r.Geoms[0].Domain
	ba0 := amr.SingleBoxArray(dom0, cfg.MaxGridSize, cfg.BlockingFactor)
	dm0, err := amr.Distribute(ba0, cfg.NProcs, r.Opts.Dist)
	if err != nil {
		return err
	}
	r.BAs = []amr.BoxArray{ba0}
	r.DMs = []amr.DistributionMapping{dm0}
	for l := 0; l < cfg.MaxLevel; l++ {
		tags := r.annulusTags(l)
		if tags.Len() == 0 {
			break
		}
		ba := amr.MakeFineBoxArray(tags, r.Geoms[l].Domain, cfg.RefRatioAt(l),
			cfg.BlockingFactor, cfg.MaxGridSize, cfg.GridEff, 0)
		if l > 0 {
			ba = amr.EnforceNesting(ba, r.BAs[l], cfg.RefRatioAt(l))
		}
		if ba.Len() == 0 {
			break
		}
		dm, err := amr.Distribute(ba, cfg.NProcs, r.Opts.Dist)
		if err != nil {
			return err
		}
		r.BAs = append(r.BAs, ba)
		r.DMs = append(r.DMs, dm)
	}
	return nil
}

// annulusTags tags level-l cells within the front annulus. Tags are
// generated directly at blocking-factor granularity by walking the ring,
// so the cost scales with the front's circumference, not the mesh area.
func (r *Runner) annulusTags(l int) *amr.TagSet {
	g := r.Geoms[l]
	dx := g.CellSize[0]
	// The tag band: WidthCells cells behind and ahead of the front, with a
	// CFL-proportional widening (see Options.WidthCells).
	width := (r.Opts.WidthCells + 4*r.Cfg.CFL) * dx
	rad := r.Opts.Blast.ShockRadius(r.Time)
	rInner := rad - width
	if rInner < 0 {
		rInner = 0
	}
	rOuter := rad + width

	tags := amr.NewTagSet()
	dom := g.Domain
	cx, cy := r.Opts.Center[0], r.Opts.Center[1]
	addAt := func(x, y float64) {
		i := dom.Lo.X + int((x-g.ProbLo[0])/g.CellSize[0])
		j := dom.Lo.Y + int((y-g.ProbLo[1])/g.CellSize[1])
		p := grid.IV(i, j)
		if dom.Contains(p) {
			tags.Add(p)
		}
	}
	if rOuter <= float64(r.Cfg.BlockingFactor)*dx*2 {
		// Early times: the whole disk is a few cells; tag it directly.
		steps := int(rOuter/dx) + 2
		for jj := -steps; jj <= steps; jj++ {
			for ii := -steps; ii <= steps; ii++ {
				x, y := cx+float64(ii)*dx, cy+float64(jj)*dx
				d := math.Hypot(x-cx, y-cy)
				if d <= rOuter {
					addAt(x, y)
				}
			}
		}
		return tags
	}
	// Walk the annulus: radial step of half a cell, angular step matched
	// to the cell size at that radius.
	for rr := rInner; rr <= rOuter; rr += dx / 2 {
		if rr <= 0 {
			addAt(cx, cy)
			continue
		}
		dTheta := (dx / 2) / rr
		for th := 0.0; th < 2*math.Pi; th += dTheta {
			addAt(cx+rr*math.Cos(th), cy+rr*math.Sin(th))
		}
	}
	return tags
}

// ComputeDt models the CFL-limited step: the finest cell size over the
// front signal speed, with init_shrink and change_max damping applied the
// same way the real driver does.
func (r *Runner) ComputeDt() float64 {
	dxF := r.Geoms[len(r.Geoms)-1].CellSize[0]
	signal := r.Opts.SignalFactor * r.Opts.Blast.ShockSpeed(r.Time)
	dt := r.Cfg.CFL * dxF / signal
	if r.Step == 0 {
		dt *= r.Cfg.InitShrink
	} else if r.LastDt > 0 && dt > r.Cfg.ChangeMax*r.LastDt {
		dt = r.Cfg.ChangeMax * r.LastDt
	}
	if r.Cfg.StopTime > 0 && r.Time+dt > r.Cfg.StopTime {
		dt = r.Cfg.StopTime - r.Time
	}
	return dt
}

// Advance moves the front by one step.
func (r *Runner) Advance() {
	dt := r.ComputeDt()
	r.Time += dt
	r.LastDt = dt
	r.Step++
}

// ShouldPlot mirrors the solver's plot cadence.
func (r *Runner) ShouldPlot() bool {
	return r.Cfg.PlotInt > 0 && r.Step%r.Cfg.PlotInt == 0
}

// WritePlot emits a size-only plotfile for the current hierarchy.
func (r *Runner) WritePlot() error {
	if r.fs == nil {
		return fmt.Errorf("surrogate: no filesystem configured")
	}
	if err := r.remapTargets(); err != nil {
		return err
	}
	spec := plotfile.Spec{
		Root:     fmt.Sprintf("%s%05d", r.Cfg.PlotFile, r.Step),
		VarNames: sim.PlotVarNames,
		Time:     r.Time,
		Step:     r.Step,
		NProcs:   r.Cfg.NProcs,
	}
	for l := range r.BAs {
		spec.Levels = append(spec.Levels, plotfile.LevelSpec{
			Geom:     r.Geoms[l],
			BA:       r.BAs[l],
			DM:       r.DMs[l],
			RefRatio: r.Cfg.RefRatioAt(l),
		})
	}
	recs, err := plotfile.Write(r.fs, spec)
	if err != nil {
		return err
	}
	r.records = append(r.records, recs...)
	r.nPlots++
	return nil
}

// Run executes the surrogate: plot at step 0, advance with regridding
// every regrid_int steps, plot every plot_int steps, until max_step or
// stop_time.
func (r *Runner) Run() error {
	if r.ShouldPlot() && r.fs != nil {
		if err := r.maybePlot(); err != nil {
			return err
		}
	}
	for r.Step < r.Cfg.MaxStep {
		if r.Cfg.StopTime > 0 && r.Time >= r.Cfg.StopTime {
			break
		}
		r.Advance()
		r.advanceClocks()
		if r.Cfg.RegridInt > 0 && r.Step%r.Cfg.RegridInt == 0 {
			if err := r.buildHierarchy(); err != nil {
				return err
			}
		}
		if r.ShouldPlot() && r.fs != nil {
			if err := r.maybePlot(); err != nil {
				return err
			}
		}
		if err := r.maybeAdaptiveCheckpoint(); err != nil {
			return err
		}
	}
	return nil
}

// remapTargets reorganizes the rank→storage-target layout for the
// upcoming dump (Opts.Remap): per-rank load is the cell count each rank
// owns across all levels, and amr.RemapToTargets balances that fan-in
// across the topology's targets. Without target modeling the remap is
// nil and Retarget keeps the round-robin placement.
func (r *Runner) remapTargets() error {
	avoid := r.engine.AvoidTargets()
	if (!r.Opts.Remap && len(avoid) == 0) || r.fs == nil {
		return nil
	}
	var owner []int
	var loads []int64
	for l := range r.BAs {
		for i, b := range r.BAs[l].Boxes {
			owner = append(owner, r.DMs[l].Owner[i])
			loads = append(loads, b.NumPts())
		}
	}
	topo := r.fs.Config().Topology
	r.engine.ScaleLoads(topo, r.Cfg.NProcs, owner, loads)
	// With two-phase aggregation active only aggregator ranks open files:
	// fold each owner onto its aggregator before balancing, else the
	// remap spreads fan-in across member ranks that never write and
	// double-counts their load against the aggregator's target.
	if am := r.fs.Config().Aggregation.AggregatorMap(topo, r.Cfg.NProcs); am != nil {
		for i, o := range owner {
			if o >= 0 && o < len(am) {
				owner[i] = am[o]
			}
		}
	}
	m := amr.RemapToTargetsAvoiding(amr.DistributionMapping{Owner: owner}, topo, loads, avoid)
	// Pad box-less top ranks with their round-robin placement so the map
	// covers the full burst width Retarget validates against.
	for rk := len(m); m != nil && rk < r.Cfg.NProcs; rk++ {
		m = append(m, rk%topo.Targets)
	}
	return r.fs.Retarget(m)
}

// advanceClocks applies Options.StepSeconds of compute time to every
// rank's filesystem clock after a step.
func (r *Runner) advanceClocks() {
	if r.Opts.StepSeconds <= 0 || r.fs == nil {
		return
	}
	for rk := 0; rk < r.Cfg.NProcs; rk++ {
		r.fs.AdvanceClock(rk, r.Opts.StepSeconds)
	}
}
