package surrogate

import (
	"fmt"

	"amrproxyio/internal/hydro"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/resilience"
	"amrproxyio/internal/sim"
)

// Closed-loop mitigation hooks, mirroring internal/sim's: plots route
// through the shed decision, and checkpoints are written only when the
// adaptive cadence calls for one. The surrogate has no fixed checkpoint
// schedule of its own (the paper's analysis covers plot dumps), so
// engine-driven checkpoints are the only source of checkpoint bursts
// here — which also keeps policy-free surrogate runs byte-identical.

// maybePlot writes the scheduled size-only plotfile unless
// degraded-mode output sheds it.
func (r *Runner) maybePlot() error {
	if r.engine != nil && r.engine.ShedPlot(r.fs, r.plotBytesEstimate()) {
		return nil
	}
	t0 := r.engine.Clock(r.fs)
	if err := r.WritePlot(); err != nil {
		return err
	}
	r.engine.BurstWritten(r.fs, t0, false)
	return nil
}

// maybeAdaptiveCheckpoint writes a size-only checkpoint when the
// adaptive cadence calls for one.
func (r *Runner) maybeAdaptiveCheckpoint() error {
	if r.fs == nil || !r.engine.Adaptive() || !r.engine.CheckpointDue(r.fs) {
		return nil
	}
	t0 := r.engine.Clock(r.fs)
	if err := r.WriteCheckpoint(); err != nil {
		return err
	}
	r.engine.BurstWritten(r.fs, t0, true)
	return nil
}

// WriteCheckpoint emits a size-only checkpoint of the current
// hierarchy: the conserved state's volume (hydro.NCons components)
// through the same N-to-N writer as plots, with no field memory —
// exactly how the solver's checkpoints price, at surrogate scale.
func (r *Runner) WriteCheckpoint() error {
	if r.fs == nil {
		return fmt.Errorf("surrogate: no filesystem configured")
	}
	if err := r.remapTargets(); err != nil {
		return err
	}
	spec := plotfile.CheckpointSpec{
		Root:     fmt.Sprintf("%s%05d", r.Cfg.CheckFile, r.Step),
		Time:     r.Time,
		Step:     r.Step,
		LastDt:   r.LastDt,
		NComp:    hydro.NCons,
		NProcs:   r.Cfg.NProcs,
		SizeOnly: true,
	}
	for l := range r.BAs {
		spec.Levels = append(spec.Levels, plotfile.LevelSpec{
			Geom:     r.Geoms[l],
			BA:       r.BAs[l],
			DM:       r.DMs[l],
			RefRatio: r.Cfg.RefRatioAt(l),
		})
	}
	recs, err := plotfile.WriteCheckpoint(r.fs, spec)
	if err != nil {
		return err
	}
	r.checkpointRecords = append(r.checkpointRecords, recs...)
	r.nCheckpoints++
	return nil
}

// CheckpointRecords returns the checkpoint output ledger (kept separate
// from plot records, like sim's).
func (r *Runner) CheckpointRecords() []plotfile.OutputRecord { return r.checkpointRecords }

// NCheckpoints returns how many checkpoints were written.
func (r *Runner) NCheckpoints() int { return r.nCheckpoints }

// plotBytesEstimate is the nominal Cell_D payload of a plot dump over
// the current hierarchy — what ShedPlot records as shed bytes.
func (r *Runner) plotBytesEstimate() int64 {
	var total int64
	for l := range r.BAs {
		idx := make([]int, len(r.BAs[l].Boxes))
		for i := range idx {
			idx[i] = i
		}
		total += plotfile.CellDBytes(r.BAs[l], idx, len(sim.PlotVarNames))
	}
	return total
}

// Mitigation returns the engine's action counters, or nil when no
// mitigation policy ran.
func (r *Runner) Mitigation() *resilience.Stats { return r.engine.Stats() }
