package inputs

import (
	"testing"
	"testing/quick"
)

// Property: any valid CastroInputs survives serialization to the
// Listing-2 file format and back unchanged in every field the paper's
// study varies.
func TestCastroInputsRoundTripProperty(t *testing.T) {
	f := func(cellPow, levRaw, stepRaw, plotRaw, cflRaw, procRaw uint8) bool {
		c := DefaultCastroInputs()
		c.NCell = [2]int{32 << (cellPow % 5), 32 << (cellPow % 5)}
		c.MaxLevel = int(levRaw) % 5
		c.MaxStep = int(stepRaw)%1000 + 1
		c.PlotInt = int(plotRaw)%20 + 1
		c.CFL = 0.3 + float64(cflRaw%31)/100 // 0.30..0.60
		c.NProcs = 1 << (procRaw % 11)       // 1..1024
		if c.Validate() != nil {
			return true // not a valid config; round-trip not required
		}
		back, err := FromFile(c.ToFile())
		if err != nil {
			return false
		}
		return back.NCell == c.NCell &&
			back.MaxLevel == c.MaxLevel &&
			back.MaxStep == c.MaxStep &&
			back.PlotInt == c.PlotInt &&
			back.CFL == c.CFL &&
			back.NProcs == c.NProcs &&
			back.MaxGridSize == c.MaxGridSize &&
			back.BlockingFactor == c.BlockingFactor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: parsing is insensitive to arbitrary comment and whitespace
// decoration around assignments.
func TestParseDecorationProperty(t *testing.T) {
	f := func(pad1, pad2 uint8, comment bool) bool {
		sp := func(n uint8) string {
			out := ""
			for i := uint8(0); i < n%6; i++ {
				out += " "
			}
			return out
		}
		line := sp(pad1) + "castro.cfl" + sp(pad2) + "=" + sp(pad1) + "0.45"
		if comment {
			line += " # trailing"
		}
		file, err := ParseString(line + "\n")
		if err != nil {
			return false
		}
		v, err := file.Float("castro.cfl", 0)
		return err == nil && v == 0.45
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
