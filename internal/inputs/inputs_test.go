package inputs

import (
	"strings"
	"testing"
)

// listing2 is the paper's Appendix B configuration file, verbatim in
// structure (comments, blank lines, namespaced keys, multi-value keys).
const listing2 = `
# INPUTS TO MAIN PROGRAM
max_step = 500
stop_time = 0.1

# PROBLEM SIZE & GEOMETRY
geometry.is_periodic = 0 0
geometry.coord_sys = 0  # 0 => cart
geometry.prob_lo = 0 0
geometry.prob_hi = 1 1
amr.n_cell = 32 32

# BC FLAGS
castro.lo_bc = 2 2
castro.hi_bc = 2 2

# WHICH PHYSICS
castro.do_hydro = 1
castro.do_react = 0

# TIME STEP CONTROL
castro.cfl = 0.5
castro.init_shrink = 0.01
castro.change_max = 1.1

# DIAGNOSTICS & VERBOSITY
castro.sum_interval = 1
castro.v = 1
amr.v = 1

# REFINEMENT / REGRIDDING
amr.max_level = 3
amr.ref_ratio = 2 2 2 2
amr.regrid_int = 2
amr.blocking_factor = 8
amr.max_grid_size = 256

# CHECKPOINT FILES
amr.check_file = sedov_2d_cyl_in_cart_chk
amr.check_int = 20

# PLOTFILES
amr.plot_file = sedov_2d_cyl_in_cart_plt
amr.plot_int = 20
amr.derive_plot_vars = ALL
`

func TestParseListing2(t *testing.T) {
	f, err := ParseString(listing2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Int("max_step", 0); got != 500 {
		t.Errorf("max_step = %d", got)
	}
	if got, _ := f.Float("castro.cfl", 0); got != 0.5 {
		t.Errorf("cfl = %g", got)
	}
	nc, _ := f.Ints("amr.n_cell", nil)
	if len(nc) != 2 || nc[0] != 32 || nc[1] != 32 {
		t.Errorf("n_cell = %v", nc)
	}
	rr, _ := f.Ints("amr.ref_ratio", nil)
	if len(rr) != 4 {
		t.Errorf("ref_ratio = %v", rr)
	}
	if got := f.String("amr.plot_file", ""); got != "sedov_2d_cyl_in_cart_plt" {
		t.Errorf("plot_file = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("novalue\n"); err == nil {
		t.Error("missing '=' accepted")
	}
	if _, err := ParseString("= 3\n"); err == nil {
		t.Error("empty key accepted")
	}
	f, err := ParseString("x = notanint\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Int("x", 0); err == nil {
		t.Error("non-integer Int accepted")
	}
	if _, err := f.Float("x", 0); err == nil {
		t.Error("non-float Float accepted")
	}
}

func TestDefaultsWhenAbsent(t *testing.T) {
	f := NewFile()
	if v, err := f.Int("missing", 42); err != nil || v != 42 {
		t.Errorf("Int default = %d, %v", v, err)
	}
	if v, err := f.Float("missing", 2.5); err != nil || v != 2.5 {
		t.Errorf("Float default = %g, %v", v, err)
	}
	if v := f.String("missing", "d"); v != "d" {
		t.Errorf("String default = %q", v)
	}
	if v, err := f.Ints("missing", []int{1, 2}); err != nil || len(v) != 2 {
		t.Errorf("Ints default = %v, %v", v, err)
	}
}

func TestLastAssignmentWins(t *testing.T) {
	f, err := ParseString("a = 1\na = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Int("a", 0); v != 2 {
		t.Errorf("a = %d, want 2", v)
	}
	if keys := f.Keys(); len(keys) != 1 {
		t.Errorf("keys = %v", keys)
	}
}

func TestKeysWithPrefix(t *testing.T) {
	f, _ := ParseString(listing2)
	amr := f.KeysWithPrefix("amr.")
	if len(amr) == 0 {
		t.Fatal("no amr keys found")
	}
	for _, k := range amr {
		if !strings.HasPrefix(k, "amr.") {
			t.Errorf("unexpected key %q", k)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f, _ := ParseString(listing2)
	encoded := f.Encode()
	f2, err := ParseString(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range f.Keys() {
		a, _ := f.Strings(k)
		b, ok := f2.Strings(k)
		if !ok {
			t.Errorf("key %q lost in round trip", k)
			continue
		}
		if strings.Join(a, " ") != strings.Join(b, " ") {
			t.Errorf("key %q: %v != %v", k, a, b)
		}
	}
}

func TestFromFileListing2(t *testing.T) {
	f, _ := ParseString(listing2)
	c, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxStep != 500 || c.CFL != 0.5 || c.MaxLevel != 3 {
		t.Errorf("basic params wrong: %+v", c)
	}
	if c.NCell != [2]int{32, 32} {
		t.Errorf("NCell = %v", c.NCell)
	}
	if c.PlotInt != 20 || c.PlotFile != "sedov_2d_cyl_in_cart_plt" {
		t.Errorf("plot params wrong: %d %q", c.PlotInt, c.PlotFile)
	}
	if c.BlockingFactor != 8 || c.MaxGridSize != 256 || c.RegridInt != 2 {
		t.Errorf("grid params wrong: %+v", c)
	}
	if !c.DoHydro {
		t.Error("DoHydro should be true")
	}
	if c.TotalLevels() != 4 {
		t.Errorf("TotalLevels = %d", c.TotalLevels())
	}
}

func TestAmrMaxStepOverride(t *testing.T) {
	f, _ := ParseString("amr.max_step = 77\n")
	c, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxStep != 77 {
		t.Errorf("MaxStep = %d", c.MaxStep)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mk := func(mut func(*CastroInputs)) error {
		c := DefaultCastroInputs()
		mut(&c)
		return c.Validate()
	}
	cases := []struct {
		name string
		mut  func(*CastroInputs)
	}{
		{"zero cells", func(c *CastroInputs) { c.NCell[0] = 0 }},
		{"negative level", func(c *CastroInputs) { c.MaxLevel = -1 }},
		{"cfl too big", func(c *CastroInputs) { c.CFL = 1.5 }},
		{"cfl zero", func(c *CastroInputs) { c.CFL = 0 }},
		{"blocking zero", func(c *CastroInputs) { c.BlockingFactor = 0 }},
		{"maxgrid < blocking", func(c *CastroInputs) { c.MaxGridSize = 4; c.BlockingFactor = 8 }},
		{"maxgrid unaligned", func(c *CastroInputs) { c.MaxGridSize = 100; c.BlockingFactor = 8 }},
		{"bad ref ratio", func(c *CastroInputs) { c.RefRatio = []int{3} }},
		{"zero procs", func(c *CastroInputs) { c.NProcs = 0 }},
		{"inverted geometry", func(c *CastroInputs) { c.ProbHi[0] = -1 }},
		{"bad grid_eff", func(c *CastroInputs) { c.GridEff = 0 }},
		{"negative max_step", func(c *CastroInputs) { c.MaxStep = -5 }},
	}
	for _, tc := range cases {
		if err := mk(tc.mut); err == nil {
			t.Errorf("%s: validation passed unexpectedly", tc.name)
		}
	}
	if err := DefaultCastroInputs().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestRefRatioAt(t *testing.T) {
	c := DefaultCastroInputs()
	c.RefRatio = []int{2, 4}
	if c.RefRatioAt(0) != 2 || c.RefRatioAt(1) != 4 {
		t.Error("explicit ratios wrong")
	}
	if c.RefRatioAt(5) != 4 {
		t.Error("ratio beyond list should repeat last")
	}
	c.RefRatio = nil
	if c.RefRatioAt(0) != 2 {
		t.Error("empty ratio list should default to 2")
	}
}

func TestCastroToFileRoundTrip(t *testing.T) {
	c := DefaultCastroInputs()
	c.NCell = [2]int{512, 512}
	c.CFL = 0.4
	c.MaxLevel = 3
	c.NProcs = 32
	f := c.ToFile()
	c2, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NCell != c.NCell || c2.CFL != c.CFL || c2.MaxLevel != c.MaxLevel || c2.NProcs != c.NProcs {
		t.Errorf("round trip mismatch: %+v vs %+v", c, c2)
	}
	if c2.PlotInt != c.PlotInt || c2.MaxGridSize != c.MaxGridSize {
		t.Errorf("round trip mismatch: %+v vs %+v", c, c2)
	}
}

func TestTrailingCommentAndWhitespace(t *testing.T) {
	f, err := ParseString("  amr.plot_int   =  20   # every 20 steps\n\n#full comment line\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Int("amr.plot_int", 0); v != 20 {
		t.Errorf("plot_int = %d", v)
	}
	if len(f.Keys()) != 1 {
		t.Errorf("keys = %v", f.Keys())
	}
}
