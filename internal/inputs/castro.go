package inputs

import (
	"errors"
	"fmt"
)

// CastroInputs is the typed configuration for a Castro-like Sedov run. It
// covers the parameters the paper varies (Table I: amr.max_step,
// amr.n_cell, amr.max_level, amr.plot_int, castro.cfl) plus the structural
// parameters from the baseline configuration (Listing 2) that shape the
// mesh hierarchy and therefore the I/O: refinement ratios, regrid interval,
// blocking factor, max grid size, and the geometry.
type CastroInputs struct {
	// Time stepping.
	MaxStep    int     // amr.max_step
	StopTime   float64 // stop_time
	CFL        float64 // castro.cfl
	InitShrink float64 // castro.init_shrink
	ChangeMax  float64 // castro.change_max

	// Base grid and refinement.
	NCell          [2]int  // amr.n_cell
	MaxLevel       int     // amr.max_level (number of refined levels ABOVE level 0)
	RefRatio       []int   // amr.ref_ratio, one per coarse level
	RegridInt      int     // amr.regrid_int
	BlockingFactor int     // amr.blocking_factor
	MaxGridSize    int     // amr.max_grid_size
	GridEff        float64 // amr.grid_eff (clustering efficiency target)

	// Geometry (2D Cartesian).
	ProbLo [2]float64 // geometry.prob_lo
	ProbHi [2]float64 // geometry.prob_hi

	// Outputs.
	PlotInt   int    // amr.plot_int (steps between plotfiles; <=0 disables)
	PlotFile  string // amr.plot_file (root name)
	CheckInt  int    // amr.check_int
	CheckFile string // amr.check_file

	// Physics toggles from Listing 2 (hydro on, reactions off).
	DoHydro bool // castro.do_hydro

	// Parallel decomposition: number of simulated MPI tasks.
	NProcs int
}

// DefaultCastroInputs mirrors the paper's Listing 2 baseline.
func DefaultCastroInputs() CastroInputs {
	return CastroInputs{
		MaxStep:        500,
		StopTime:       0.1,
		CFL:            0.5,
		InitShrink:     0.01,
		ChangeMax:      1.1,
		NCell:          [2]int{32, 32},
		MaxLevel:       3,
		RefRatio:       []int{2, 2, 2, 2},
		RegridInt:      2,
		BlockingFactor: 8,
		MaxGridSize:    256,
		GridEff:        0.7,
		ProbLo:         [2]float64{0, 0},
		ProbHi:         [2]float64{1, 1},
		PlotInt:        20,
		PlotFile:       "sedov_2d_cyl_in_cart_plt",
		CheckInt:       20,
		CheckFile:      "sedov_2d_cyl_in_cart_chk",
		DoHydro:        true,
		NProcs:         1,
	}
}

// FromFile overlays the values present in f onto the Listing-2 defaults
// and validates the result.
func FromFile(f *File) (CastroInputs, error) {
	c := DefaultCastroInputs()
	var err error
	if c.MaxStep, err = f.Int("max_step", c.MaxStep); err != nil {
		return c, err
	}
	// amr.max_step (Table I spelling) overrides the bare max_step if present.
	if f.Has("amr.max_step") {
		if c.MaxStep, err = f.Int("amr.max_step", c.MaxStep); err != nil {
			return c, err
		}
	}
	if c.StopTime, err = f.Float("stop_time", c.StopTime); err != nil {
		return c, err
	}
	if c.CFL, err = f.Float("castro.cfl", c.CFL); err != nil {
		return c, err
	}
	if c.InitShrink, err = f.Float("castro.init_shrink", c.InitShrink); err != nil {
		return c, err
	}
	if c.ChangeMax, err = f.Float("castro.change_max", c.ChangeMax); err != nil {
		return c, err
	}
	nc, err := f.Ints("amr.n_cell", c.NCell[:])
	if err != nil {
		return c, err
	}
	if len(nc) < 2 {
		return c, fmt.Errorf("inputs: amr.n_cell needs 2 values, got %d", len(nc))
	}
	c.NCell = [2]int{nc[0], nc[1]}
	if c.MaxLevel, err = f.Int("amr.max_level", c.MaxLevel); err != nil {
		return c, err
	}
	if c.RefRatio, err = f.Ints("amr.ref_ratio", c.RefRatio); err != nil {
		return c, err
	}
	if c.RegridInt, err = f.Int("amr.regrid_int", c.RegridInt); err != nil {
		return c, err
	}
	if c.BlockingFactor, err = f.Int("amr.blocking_factor", c.BlockingFactor); err != nil {
		return c, err
	}
	if c.MaxGridSize, err = f.Int("amr.max_grid_size", c.MaxGridSize); err != nil {
		return c, err
	}
	if c.GridEff, err = f.Float("amr.grid_eff", c.GridEff); err != nil {
		return c, err
	}
	pl, err := f.Floats("geometry.prob_lo", c.ProbLo[:])
	if err != nil {
		return c, err
	}
	ph, err := f.Floats("geometry.prob_hi", c.ProbHi[:])
	if err != nil {
		return c, err
	}
	if len(pl) < 2 || len(ph) < 2 {
		return c, errors.New("inputs: geometry.prob_lo/hi need 2 values")
	}
	c.ProbLo = [2]float64{pl[0], pl[1]}
	c.ProbHi = [2]float64{ph[0], ph[1]}
	if c.PlotInt, err = f.Int("amr.plot_int", c.PlotInt); err != nil {
		return c, err
	}
	c.PlotFile = f.String("amr.plot_file", c.PlotFile)
	if c.CheckInt, err = f.Int("amr.check_int", c.CheckInt); err != nil {
		return c, err
	}
	c.CheckFile = f.String("amr.check_file", c.CheckFile)
	doHydro, err := f.Int("castro.do_hydro", 1)
	if err != nil {
		return c, err
	}
	c.DoHydro = doHydro != 0
	if c.NProcs, err = f.Int("nprocs", c.NProcs); err != nil {
		return c, err
	}
	return c, c.Validate()
}

// LoadCastro parses and validates a Castro inputs file from disk.
func LoadCastro(path string) (CastroInputs, error) {
	f, err := Load(path)
	if err != nil {
		return CastroInputs{}, err
	}
	return FromFile(f)
}

// Validate checks structural invariants the AMR machinery relies on.
func (c CastroInputs) Validate() error {
	if c.NCell[0] <= 0 || c.NCell[1] <= 0 {
		return fmt.Errorf("inputs: amr.n_cell must be positive, got %v", c.NCell)
	}
	if c.MaxLevel < 0 {
		return fmt.Errorf("inputs: amr.max_level must be >= 0, got %d", c.MaxLevel)
	}
	if c.MaxStep < 0 {
		return fmt.Errorf("inputs: amr.max_step must be >= 0, got %d", c.MaxStep)
	}
	if c.CFL <= 0 || c.CFL >= 1 {
		return fmt.Errorf("inputs: castro.cfl must be in (0,1), got %g", c.CFL)
	}
	if c.BlockingFactor < 1 {
		return fmt.Errorf("inputs: amr.blocking_factor must be >= 1, got %d", c.BlockingFactor)
	}
	if c.MaxGridSize < c.BlockingFactor {
		return fmt.Errorf("inputs: amr.max_grid_size %d < blocking_factor %d", c.MaxGridSize, c.BlockingFactor)
	}
	if c.MaxGridSize%c.BlockingFactor != 0 {
		return fmt.Errorf("inputs: amr.max_grid_size %d not a multiple of blocking_factor %d", c.MaxGridSize, c.BlockingFactor)
	}
	for l := 0; l < c.MaxLevel; l++ {
		r := c.RefRatioAt(l)
		if r != 2 && r != 4 {
			return fmt.Errorf("inputs: ref_ratio[%d]=%d, only 2 and 4 supported", l, r)
		}
	}
	if c.NProcs < 1 {
		return fmt.Errorf("inputs: nprocs must be >= 1, got %d", c.NProcs)
	}
	if c.ProbHi[0] <= c.ProbLo[0] || c.ProbHi[1] <= c.ProbLo[1] {
		return fmt.Errorf("inputs: geometry.prob_hi must exceed prob_lo")
	}
	if c.GridEff <= 0 || c.GridEff > 1 {
		return fmt.Errorf("inputs: amr.grid_eff must be in (0,1], got %g", c.GridEff)
	}
	return nil
}

// RefRatioAt returns the refinement ratio between level l and l+1,
// defaulting to the last specified ratio (AMReX behavior) or 2.
func (c CastroInputs) RefRatioAt(l int) int {
	if len(c.RefRatio) == 0 {
		return 2
	}
	if l < len(c.RefRatio) {
		return c.RefRatio[l]
	}
	return c.RefRatio[len(c.RefRatio)-1]
}

// TotalLevels returns the number of mesh levels including level 0. The
// paper's Table III "max_level 2 - 4 (1 to 3 levels)" counts this as
// max_level with (max_level - 1) refined levels; here we use the AMReX
// convention: levels 0..MaxLevel inclusive.
func (c CastroInputs) TotalLevels() int { return c.MaxLevel + 1 }

// ToFile serializes the typed config back to the Listing-2 key set.
func (c CastroInputs) ToFile() *File {
	f := NewFile()
	f.SetInt("max_step", c.MaxStep)
	f.SetFloat("stop_time", c.StopTime)
	f.SetFloat("geometry.prob_lo", c.ProbLo[0], c.ProbLo[1])
	f.SetFloat("geometry.prob_hi", c.ProbHi[0], c.ProbHi[1])
	f.SetInt("amr.n_cell", c.NCell[0], c.NCell[1])
	f.SetFloat("castro.cfl", c.CFL)
	f.SetFloat("castro.init_shrink", c.InitShrink)
	f.SetFloat("castro.change_max", c.ChangeMax)
	if c.DoHydro {
		f.SetInt("castro.do_hydro", 1)
	} else {
		f.SetInt("castro.do_hydro", 0)
	}
	f.SetInt("amr.max_level", c.MaxLevel)
	f.SetInt("amr.ref_ratio", c.RefRatio...)
	f.SetInt("amr.regrid_int", c.RegridInt)
	f.SetInt("amr.blocking_factor", c.BlockingFactor)
	f.SetInt("amr.max_grid_size", c.MaxGridSize)
	f.SetFloat("amr.grid_eff", c.GridEff)
	f.Set("amr.check_file", c.CheckFile)
	f.SetInt("amr.check_int", c.CheckInt)
	f.Set("amr.plot_file", c.PlotFile)
	f.SetInt("amr.plot_int", c.PlotInt)
	f.SetInt("nprocs", c.NProcs)
	return f
}
