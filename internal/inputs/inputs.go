// Package inputs parses and writes AMReX-style "inputs" configuration
// files, the format shown in the paper's Listing 2 (the Castro Sedov
// inputs.2d.cyl_in_cartcoords file). The grammar is line oriented:
//
//	# comment
//	namespace.key = value [value ...]   # trailing comment
//	key = value
//
// Values are whitespace-separated tokens; keys keep their namespace prefix
// ("amr.n_cell", "castro.cfl", ...). The package also defines CastroInputs,
// a typed view of the parameter subset the paper varies (Table I) plus the
// structural parameters the AMR driver needs (Listing 2).
package inputs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// File is a parsed inputs file: an ordered multimap from dotted keys to
// token lists.
type File struct {
	values map[string][]string
	order  []string
}

// NewFile returns an empty inputs file.
func NewFile() *File {
	return &File{values: map[string][]string{}}
}

// Parse reads an inputs file from r.
func Parse(r io.Reader) (*File, error) {
	f := NewFile()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("inputs: line %d: missing '=': %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		if key == "" {
			return nil, fmt.Errorf("inputs: line %d: empty key", lineNo)
		}
		vals := strings.Fields(line[eq+1:])
		f.Set(key, vals...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("inputs: scan: %w", err)
	}
	return f, nil
}

// ParseString parses an inputs file from a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

// Load parses an inputs file from disk.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inputs: %w", err)
	}
	defer fh.Close()
	return Parse(fh)
}

// Set replaces the values for key (last assignment wins, matching AMReX
// ParmParse semantics for repeated keys).
func (f *File) Set(key string, vals ...string) {
	if _, exists := f.values[key]; !exists {
		f.order = append(f.order, key)
	}
	f.values[key] = vals
}

// SetInt, SetFloat and friends are typed conveniences for building files.
func (f *File) SetInt(key string, vs ...int) {
	ss := make([]string, len(vs))
	for i, v := range vs {
		ss[i] = strconv.Itoa(v)
	}
	f.Set(key, ss...)
}

// SetFloat sets one or more float values.
func (f *File) SetFloat(key string, vs ...float64) {
	ss := make([]string, len(vs))
	for i, v := range vs {
		ss[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	f.Set(key, ss...)
}

// Has reports whether key is present.
func (f *File) Has(key string) bool {
	_, ok := f.values[key]
	return ok
}

// Strings returns the raw token list for key.
func (f *File) Strings(key string) ([]string, bool) {
	v, ok := f.values[key]
	return v, ok
}

// Int returns the first token of key as an int, or def if absent.
func (f *File) Int(key string, def int) (int, error) {
	v, ok := f.values[key]
	if !ok || len(v) == 0 {
		return def, nil
	}
	n, err := strconv.Atoi(v[0])
	if err != nil {
		return 0, fmt.Errorf("inputs: key %s: %w", key, err)
	}
	return n, nil
}

// Ints returns all tokens of key as ints, or def if absent.
func (f *File) Ints(key string, def []int) ([]int, error) {
	v, ok := f.values[key]
	if !ok {
		return def, nil
	}
	out := make([]int, len(v))
	for i, s := range v {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("inputs: key %s[%d]: %w", key, i, err)
		}
		out[i] = n
	}
	return out, nil
}

// Float returns the first token of key as a float64, or def if absent.
func (f *File) Float(key string, def float64) (float64, error) {
	v, ok := f.values[key]
	if !ok || len(v) == 0 {
		return def, nil
	}
	x, err := strconv.ParseFloat(v[0], 64)
	if err != nil {
		return 0, fmt.Errorf("inputs: key %s: %w", key, err)
	}
	return x, nil
}

// Floats returns all tokens of key as float64s, or def if absent.
func (f *File) Floats(key string, def []float64) ([]float64, error) {
	v, ok := f.values[key]
	if !ok {
		return def, nil
	}
	out := make([]float64, len(v))
	for i, s := range v {
		x, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("inputs: key %s[%d]: %w", key, i, err)
		}
		out[i] = x
	}
	return out, nil
}

// String returns the first token of key, or def if absent.
func (f *File) String(key, def string) string {
	v, ok := f.values[key]
	if !ok || len(v) == 0 {
		return def
	}
	return v[0]
}

// Keys returns all keys in first-assignment order.
func (f *File) Keys() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// KeysWithPrefix returns the sorted keys sharing a namespace prefix such as
// "amr." or "castro.".
func (f *File) KeysWithPrefix(prefix string) []string {
	var out []string
	for _, k := range f.order {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Write emits the file in Listing-2 style (key = values, one per line, in
// first-assignment order).
func (f *File) Write(w io.Writer) error {
	for _, k := range f.order {
		if _, err := fmt.Fprintf(w, "%s = %s\n", k, strings.Join(f.values[k], " ")); err != nil {
			return err
		}
	}
	return nil
}

// Encode returns the serialized file contents.
func (f *File) Encode() string {
	var sb strings.Builder
	f.Write(&sb) // strings.Builder writes cannot fail
	return sb.String()
}
