package macsio

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseArgs parses a MACSio-style command line (the flags in the paper's
// Table II / Listing 1) into a Config. The accepted grammar is:
//
//	--interface <miftmpl|json|hdf5|silo>
//	--parallel_file_mode <MIF|SIF> [nfiles]
//	--num_dumps <n>
//	--part_size <bytes>            (suffixes K, M, G accepted)
//	--avg_num_parts <float>
//	--vars_per_part <n>
//	--compute_time <seconds>
//	--meta_size <bytes>
//	--dataset_growth <factor>
//	--nprocs <n>                   (stands in for "jsrun -n")
//	--size_only                    (extension: model sizes without data)
func ParseArgs(args []string) (Config, error) {
	cfg := DefaultConfig()
	i := 0
	next := func(flag string) (string, error) {
		i++
		if i >= len(args) {
			return "", fmt.Errorf("macsio: flag %s needs a value", flag)
		}
		return args[i], nil
	}
	for ; i < len(args); i++ {
		switch args[i] {
		case "--interface":
			v, err := next("--interface")
			if err != nil {
				return cfg, err
			}
			cfg.Interface = Interface(v)
		case "--parallel_file_mode":
			v, err := next("--parallel_file_mode")
			if err != nil {
				return cfg, err
			}
			cfg.FileMode = FileMode(strings.ToUpper(v))
			// Optional numeric file-count operand.
			if i+1 < len(args) && !strings.HasPrefix(args[i+1], "--") {
				n, err := strconv.Atoi(args[i+1])
				if err != nil {
					return cfg, fmt.Errorf("macsio: parallel_file_mode count: %w", err)
				}
				cfg.MIFFiles = n
				i++
			}
		case "--num_dumps":
			v, err := next("--num_dumps")
			if err != nil {
				return cfg, err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, fmt.Errorf("macsio: num_dumps: %w", err)
			}
			cfg.NumDumps = n
		case "--part_size":
			v, err := next("--part_size")
			if err != nil {
				return cfg, err
			}
			n, err := parseBytes(v)
			if err != nil {
				return cfg, fmt.Errorf("macsio: part_size: %w", err)
			}
			cfg.PartSize = n
		case "--avg_num_parts":
			v, err := next("--avg_num_parts")
			if err != nil {
				return cfg, err
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("macsio: avg_num_parts: %w", err)
			}
			cfg.AvgNumParts = f
		case "--vars_per_part":
			v, err := next("--vars_per_part")
			if err != nil {
				return cfg, err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, fmt.Errorf("macsio: vars_per_part: %w", err)
			}
			cfg.VarsPerPart = n
		case "--compute_time":
			v, err := next("--compute_time")
			if err != nil {
				return cfg, err
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("macsio: compute_time: %w", err)
			}
			cfg.ComputeTime = f
		case "--meta_size":
			v, err := next("--meta_size")
			if err != nil {
				return cfg, err
			}
			n, err := parseBytes(v)
			if err != nil {
				return cfg, fmt.Errorf("macsio: meta_size: %w", err)
			}
			cfg.MetaSize = n
		case "--dataset_growth":
			v, err := next("--dataset_growth")
			if err != nil {
				return cfg, err
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("macsio: dataset_growth: %w", err)
			}
			cfg.DatasetGrowth = f
		case "--nprocs":
			v, err := next("--nprocs")
			if err != nil {
				return cfg, err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, fmt.Errorf("macsio: nprocs: %w", err)
			}
			cfg.NProcs = n
		case "--size_only":
			cfg.SizeOnly = true
		default:
			return cfg, fmt.Errorf("macsio: unknown flag %q", args[i])
		}
	}
	return cfg, cfg.Validate()
}

// parseBytes accepts plain integers plus K/M/G suffixes (powers of 1024).
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(upper, "M"):
		mult, s = 1024*1024, s[:len(s)-1]
	case strings.HasSuffix(upper, "G"):
		mult, s = 1024*1024*1024, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// CommandLine renders the config back into the Listing-1 flag form, for
// the model's "emit the MACSio invocation" feature.
func (c Config) CommandLine() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "macsio --interface %s --parallel_file_mode %s", c.Interface, c.FileMode)
	if c.FileMode == ModeMIF {
		n := c.MIFFiles
		if n == 0 {
			n = c.NProcs
		}
		fmt.Fprintf(&sb, " %d", n)
	}
	fmt.Fprintf(&sb, " --num_dumps %d --part_size %d --avg_num_parts %g --vars_per_part %d",
		c.NumDumps, c.PartSize, c.AvgNumParts, c.VarsPerPart)
	if c.ComputeTime > 0 {
		fmt.Fprintf(&sb, " --compute_time %g", c.ComputeTime)
	}
	if c.MetaSize > 0 {
		fmt.Fprintf(&sb, " --meta_size %d", c.MetaSize)
	}
	fmt.Fprintf(&sb, " --dataset_growth %.6f --nprocs %d", c.DatasetGrowth, c.NProcs)
	return sb.String()
}
