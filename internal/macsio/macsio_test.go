package macsio

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

func modelFS() *iosim.FileSystem {
	c := iosim.DefaultConfig()
	c.JitterSigma = 0
	return iosim.New(c, "")
}

func TestValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Interface = "netcdf" },
		func(c *Config) { c.FileMode = "MIX" },
		func(c *Config) { c.NumDumps = 0 },
		func(c *Config) { c.PartSize = 4 },
		func(c *Config) { c.AvgNumParts = 0 },
		func(c *Config) { c.VarsPerPart = 0 },
		func(c *Config) { c.DatasetGrowth = 0 },
		func(c *Config) { c.NProcs = 0 },
		func(c *Config) { c.ComputeTime = -1 },
	}
	for i, mut := range cases {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEncoderSizeParity(t *testing.T) {
	// The analytic size must equal the encoder's output, for every
	// interface and several value counts — this is what makes size-only
	// Summit-scale runs byte-exact.
	for _, iface := range []Interface{IfaceMiftmpl, IfaceJSON, IfaceHDF5, IfaceSilo} {
		for _, nvals := range []int{1, 7, 100, 1024, 9999} {
			for _, vars := range []int{1, 3} {
				for _, meta := range []int64{0, 1000} {
					data := EncodeDataFile(iface, 3, 5, nvals, vars, meta)
					want := DataFileSize(iface, nvals, vars, meta)
					if int64(len(data)) != want {
						t.Fatalf("%s nvals=%d vars=%d meta=%d: encoded %d != computed %d",
							iface, nvals, vars, meta, len(data), want)
					}
				}
			}
		}
	}
}

func TestJSONOutputIsValidJSON(t *testing.T) {
	data := EncodeDataFile(IfaceMiftmpl, 0, 0, 50, 2, 0)
	var v map[string]interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data[:200])
	}
	if _, ok := v["macsio"]; !ok {
		t.Error("missing macsio header object")
	}
	vars, ok := v["vars"].([]interface{})
	if !ok || len(vars) != 2 {
		t.Fatalf("vars = %v", v["vars"])
	}
}

func TestJSONInflationFactor(t *testing.T) {
	// Fixed-width text encoding inflates 8-byte doubles by ~3x — the
	// textual factor inside the paper's f ≈ 23-25.
	inf := JSONInflation(100000)
	if inf < 2.5 || inf > 3.5 {
		t.Errorf("JSON inflation = %g, expected ~3", inf)
	}
}

func TestRootMetaValidJSON(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProcs = 4
	data := EncodeRootMeta(cfg, 2)
	var v map[string]interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid root JSON: %v", err)
	}
}

func TestRunFig3Layout(t *testing.T) {
	fs := modelFS()
	cfg := DefaultConfig()
	cfg.NProcs = 4
	cfg.NumDumps = 3
	cfg.PartSize = 8000
	recs, err := Run(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 { // 4 ranks x 3 dumps
		t.Fatalf("records = %d", len(recs))
	}
	paths := map[string]bool{}
	for _, r := range fs.Ledger() {
		paths[r.Path] = true
	}
	// Fig. 3 names: per-task data files and per-step root files.
	for step := 0; step < 3; step++ {
		for rank := 0; rank < 4; rank++ {
			want := fmt.Sprintf("macsio_json_%05d_%03d.json", rank, step)
			if !paths[want] {
				t.Errorf("missing data file %s", want)
			}
		}
		root := fmt.Sprintf("macsio_json_root_%03d.json", step)
		if !paths[root] {
			t.Errorf("missing root file %s", root)
		}
	}
}

func TestDatasetGrowthGeometric(t *testing.T) {
	fs := modelFS()
	cfg := DefaultConfig()
	cfg.NProcs = 2
	cfg.NumDumps = 5
	cfg.PartSize = 80000
	cfg.DatasetGrowth = 1.1
	recs, err := Run(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := BytesPerStep(recs)
	for s := 1; s < 5; s++ {
		ratio := float64(per[s]) / float64(per[s-1])
		if math.Abs(ratio-1.1) > 0.02 {
			t.Errorf("step %d growth ratio = %g, want ~1.1", s, ratio)
		}
	}
}

func TestNominalBytesFormula(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartSize = 1000
	cfg.VarsPerPart = 2
	cfg.AvgNumParts = 1
	cfg.NProcs = 4
	cfg.DatasetGrowth = 2
	if got := cfg.NominalBytes(0, 0); got != 2000 {
		t.Errorf("step 0 nominal = %d", got)
	}
	if got := cfg.NominalBytes(0, 3); got != 16000 {
		t.Errorf("step 3 nominal = %d", got)
	}
}

func TestAvgNumPartsFractional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProcs = 4
	cfg.AvgNumParts = 1.5 // 6 parts over 4 ranks: 2,2,1,1
	total := 0
	for r := 0; r < 4; r++ {
		total += cfg.partsForRank(r)
	}
	if total != 6 {
		t.Errorf("total parts = %d, want 6", total)
	}
	if cfg.partsForRank(0) != 2 || cfg.partsForRank(3) != 1 {
		t.Errorf("parts = %d,%d", cfg.partsForRank(0), cfg.partsForRank(3))
	}
}

func TestSizeOnlyMatchesDataPath(t *testing.T) {
	run := func(sizeOnly bool) []DumpRecord {
		fs := modelFS()
		cfg := DefaultConfig()
		cfg.NProcs = 3
		cfg.NumDumps = 4
		cfg.PartSize = 16000
		cfg.DatasetGrowth = 1.0131
		cfg.SizeOnly = sizeOnly
		recs, err := Run(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("record counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSIFSingleSharedFile(t *testing.T) {
	fs := modelFS()
	cfg := DefaultConfig()
	cfg.NProcs = 4
	cfg.NumDumps = 2
	cfg.FileMode = ModeSIF
	if _, err := Run(fs, cfg); err != nil {
		t.Fatal(err)
	}
	dataPaths := map[string]bool{}
	for _, r := range fs.Ledger() {
		if !strings.Contains(r.Path, "root") {
			dataPaths[r.Path] = true
		}
	}
	if len(dataPaths) != 2 { // one shared file per step
		t.Errorf("SIF data files = %v", dataPaths)
	}
}

func TestMIFGrouping(t *testing.T) {
	fs := modelFS()
	cfg := DefaultConfig()
	cfg.NProcs = 8
	cfg.NumDumps = 1
	cfg.MIFFiles = 2
	if _, err := Run(fs, cfg); err != nil {
		t.Fatal(err)
	}
	dataPaths := map[string]bool{}
	for _, r := range fs.Ledger() {
		if !strings.Contains(r.Path, "root") {
			dataPaths[r.Path] = true
		}
	}
	if len(dataPaths) != 2 {
		t.Errorf("MIF-2 data files = %d, want 2", len(dataPaths))
	}
}

func TestComputeTimeAdvancesClock(t *testing.T) {
	fs := modelFS()
	cfg := DefaultConfig()
	cfg.NProcs = 1
	cfg.NumDumps = 3
	cfg.ComputeTime = 1.0
	if _, err := Run(fs, cfg); err != nil {
		t.Fatal(err)
	}
	if clock := fs.Clock(0); clock < 3.0 {
		t.Errorf("rank 0 clock = %g, want >= 3 (compute) + write time", clock)
	}
	// Bursty pattern: write start times separated by >= compute_time.
	var starts []float64
	for _, r := range fs.Ledger() {
		if strings.Contains(r.Path, "root") {
			continue
		}
		starts = append(starts, r.Start)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] < 1.0 {
			t.Errorf("bursts not separated by compute_time: %v", starts)
			break
		}
	}
}

func TestParseArgsListing1(t *testing.T) {
	// The paper's Listing 1 invocation shape.
	cfg, err := ParseArgs(strings.Fields(
		"--interface miftmpl --parallel_file_mode MIF 32 --num_dumps 20 " +
			"--part_size 1550000 --avg_num_parts 1 --vars_per_part 1 " +
			"--compute_time 0.5 --meta_size 1024 --dataset_growth 1.013075 --nprocs 32"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Interface != IfaceMiftmpl || cfg.FileMode != ModeMIF || cfg.MIFFiles != 32 {
		t.Errorf("iface/mode = %v %v %d", cfg.Interface, cfg.FileMode, cfg.MIFFiles)
	}
	if cfg.NumDumps != 20 || cfg.PartSize != 1550000 || cfg.DatasetGrowth != 1.013075 {
		t.Errorf("params = %+v", cfg)
	}
	if cfg.ComputeTime != 0.5 || cfg.MetaSize != 1024 || cfg.NProcs != 32 {
		t.Errorf("params = %+v", cfg)
	}
}

func TestParseArgsSuffixesAndErrors(t *testing.T) {
	cfg, err := ParseArgs(strings.Fields("--part_size 2M"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PartSize != 2*1024*1024 {
		t.Errorf("part_size = %d", cfg.PartSize)
	}
	if _, err := ParseArgs(strings.Fields("--bogus 1")); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := ParseArgs(strings.Fields("--num_dumps")); err == nil {
		t.Error("missing value accepted")
	}
	if _, err := ParseArgs(strings.Fields("--num_dumps x")); err == nil {
		t.Error("bad int accepted")
	}
}

func TestCommandLineRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProcs = 16
	cfg.PartSize = 123456
	cfg.DatasetGrowth = 1.0131
	cfg.ComputeTime = 0.25
	cfg.MetaSize = 2048
	line := cfg.CommandLine()
	if !strings.HasPrefix(line, "macsio ") {
		t.Fatalf("line = %q", line)
	}
	parsed, err := ParseArgs(strings.Fields(strings.TrimPrefix(line, "macsio ")))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.PartSize != cfg.PartSize || parsed.NProcs != cfg.NProcs {
		t.Errorf("round trip: %+v", parsed)
	}
	if math.Abs(parsed.DatasetGrowth-cfg.DatasetGrowth) > 1e-6 {
		t.Errorf("growth round trip: %g", parsed.DatasetGrowth)
	}
}
