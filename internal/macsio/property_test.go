package macsio

import (
	"testing"
	"testing/quick"
)

// Property: for every interface, the analytic size function matches the
// encoder byte-for-byte over randomized value counts, variable counts,
// rank/step ids and metadata sizes. This is the invariant that keeps
// Summit-scale size-only runs honest.
func TestEncoderSizeParityProperty(t *testing.T) {
	f := func(nvalsRaw uint16, varsRaw, rankRaw, stepRaw uint8, metaRaw uint16, ifaceRaw uint8) bool {
		nvals := int(nvalsRaw)%5000 + 1
		vars := int(varsRaw)%8 + 1
		rank := int(rankRaw)
		step := int(stepRaw)
		meta := int64(metaRaw) % 4096
		ifaces := []Interface{IfaceMiftmpl, IfaceJSON, IfaceHDF5, IfaceSilo}
		iface := ifaces[int(ifaceRaw)%len(ifaces)]
		data := EncodeDataFile(iface, rank, step, nvals, vars, meta)
		return int64(len(data)) == DataFileSize(iface, nvals, vars, meta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nominal bytes are monotone in the dump step whenever
// dataset_growth > 1, and constant when growth == 1.
func TestNominalBytesMonotoneProperty(t *testing.T) {
	f := func(partRaw uint16, growthRaw uint8, stepRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.PartSize = int64(partRaw)%100000 + 8
		cfg.DatasetGrowth = 1.0 + float64(growthRaw%50)/1000 // 1.000..1.049
		step := int(stepRaw) % 100
		a := cfg.NominalBytes(0, step)
		b := cfg.NominalBytes(0, step+1)
		if cfg.DatasetGrowth == 1.0 {
			return a == b
		}
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every parts assignment sums to round(avg*nprocs) and is
// monotone non-increasing in rank.
func TestPartsForRankProperty(t *testing.T) {
	f := func(nprocsRaw uint8, avgTimes4 uint8) bool {
		cfg := DefaultConfig()
		cfg.NProcs = int(nprocsRaw)%64 + 1
		cfg.AvgNumParts = float64(avgTimes4%12)/4 + 0.25 // 0.25..3.0
		total := 0
		prev := 1 << 30
		for r := 0; r < cfg.NProcs; r++ {
			p := cfg.partsForRank(r)
			if p > prev {
				return false
			}
			prev = p
			total += p
		}
		want := int(cfg.AvgNumParts*float64(cfg.NProcs) + 0.5)
		if want < 1 {
			want = 1
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
