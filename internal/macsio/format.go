package macsio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Encoders for the data files. The miftmpl/json encoder emits real JSON
// with fixed-width scientific-notation numbers so that file sizes are an
// exact analytic function of the value count — that is what lets the
// size-only path (used at Summit scale) stay byte-identical to the data
// path, and it mirrors the textual inflation of MACSio's json-cwx output
// that the paper's Eq. 3 correction factor f absorbs.

// jsonValueWidth is the fixed width of one encoded double in Go's %.17e
// format: "d.ddddddddddddddddde+dd" = 23 characters (synthValue keeps
// values positive and in [1, 901), so there is never a sign or a third
// exponent digit).
const jsonValueWidth = 23

// synthValue produces a deterministic positive payload value. Positivity
// keeps the fixed-width invariant (no minus sign).
func synthValue(rank, step, v int) float64 {
	x := float64(v%977)*1.000001 + float64(rank%31)*0.01 + float64(step%17)*0.001
	return 1.0 + math.Mod(x, 900.0)
}

// jsonHeader renders the per-file preamble.
func jsonHeader(rank, step int) string {
	return fmt.Sprintf(`{"macsio":{"version":"1.1-go","interface":"miftmpl","task":"%05d","step":"%03d"},"mesh":{"type":"rectilinear","topodim":2},"vars":[`, rank, step)
}

const jsonFooter = "]}\n"

// jsonVarOpen renders one variable's opening; variable ids are fixed
// width (var000...).
func jsonVarOpen(v int) string {
	return fmt.Sprintf(`{"name":"var%03d","centering":"zone","data":[`, v)
}

const jsonVarClose = "]}"

// EncodeDataFile renders a rank's dump payload for the given interface.
// nvals is the total value count across all variables (vars get
// nvals/varsPerPart each, remainder to the first). metaSize appends a
// metadata blob of exactly that many bytes.
func EncodeDataFile(iface Interface, rank, step, nvals, varsPerPart int, metaSize int64) []byte {
	switch iface {
	case IfaceMiftmpl, IfaceJSON:
		return encodeJSONFile(rank, step, nvals, varsPerPart, metaSize)
	default:
		return encodeBinaryFile(iface, rank, step, nvals, varsPerPart, metaSize)
	}
}

// DataFileSize returns the exact byte count EncodeDataFile would produce.
func DataFileSize(iface Interface, nvals, varsPerPart int, metaSize int64) int64 {
	switch iface {
	case IfaceMiftmpl, IfaceJSON:
		return jsonFileSize(nvals, varsPerPart, metaSize)
	default:
		return binaryFileSize(iface, nvals, varsPerPart, metaSize)
	}
}

// varCounts splits nvals across variables.
func varCounts(nvals, varsPerPart int) []int {
	if varsPerPart < 1 {
		varsPerPart = 1
	}
	out := make([]int, varsPerPart)
	base := nvals / varsPerPart
	rem := nvals % varsPerPart
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

func encodeJSONFile(rank, step, nvals, varsPerPart int, metaSize int64) []byte {
	var buf bytes.Buffer
	buf.WriteString(jsonHeader(rank, step))
	counts := varCounts(nvals, varsPerPart)
	vi := 0
	for v, n := range counts {
		if v > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(jsonVarOpen(v))
		for k := 0; k < n; k++ {
			if k > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%.17e", synthValue(rank, step, vi))
			vi++
		}
		buf.WriteString(jsonVarClose)
	}
	buf.WriteString(jsonFooter)
	appendMeta(&buf, metaSize)
	return buf.Bytes()
}

func jsonFileSize(nvals, varsPerPart int, metaSize int64) int64 {
	// Header is rank/step-independent in width (fixed-width ids).
	size := int64(len(jsonHeader(0, 0)))
	counts := varCounts(nvals, varsPerPart)
	for v, n := range counts {
		if v > 0 {
			size++ // comma between vars
		}
		size += int64(len(jsonVarOpen(v))) + int64(len(jsonVarClose))
		if n > 0 {
			size += int64(n)*jsonValueWidth + int64(n-1) // values + commas
		}
	}
	size += int64(len(jsonFooter))
	return size + metaSize
}

// encodeBinaryFile approximates HDF5/silo output: a fixed-size header per
// file, a small per-variable header, then raw little-endian doubles.
const (
	binFileHeader = 512
	binVarHeader  = 128
)

func encodeBinaryFile(iface Interface, rank, step, nvals, varsPerPart int, metaSize int64) []byte {
	var buf bytes.Buffer
	hdr := make([]byte, binFileHeader)
	copy(hdr, fmt.Sprintf("\x89%s\r\n task=%05d step=%03d", iface, rank, step))
	buf.Write(hdr)
	counts := varCounts(nvals, varsPerPart)
	vi := 0
	for v, n := range counts {
		vh := make([]byte, binVarHeader)
		copy(vh, fmt.Sprintf("var%03d n=%d", v, n))
		buf.Write(vh)
		vals := make([]float64, n)
		for k := range vals {
			vals[k] = synthValue(rank, step, vi)
			vi++
		}
		_ = binary.Write(&buf, binary.LittleEndian, vals)
	}
	appendMeta(&buf, metaSize)
	return buf.Bytes()
}

func binaryFileSize(_ Interface, nvals, varsPerPart int, metaSize int64) int64 {
	counts := varCounts(nvals, varsPerPart)
	size := int64(binFileHeader)
	for _, n := range counts {
		size += binVarHeader + int64(n)*8
	}
	return size + metaSize
}

// appendMeta pads the buffer with exactly metaSize bytes of annotation.
func appendMeta(buf *bytes.Buffer, metaSize int64) {
	if metaSize <= 0 {
		return
	}
	blob := make([]byte, metaSize)
	for i := range blob {
		blob[i] = byte('a' + i%26)
	}
	buf.Write(blob)
}

// EncodeRootMeta renders the per-step root metadata file (Fig. 3's
// macsio_json_root_NNN.json): a task index with per-task nominal sizes.
func EncodeRootMeta(cfg Config, step int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"macsio_root":{"step":"%03d","nprocs":%d,"interface":%q,"mode":%q,"dataset_growth":%.6f,"tasks":[`,
		step, cfg.NProcs, ifaceToken(cfg.Interface), string(cfg.FileMode), cfg.DatasetGrowth)
	for r := 0; r < cfg.NProcs; r++ {
		if r > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"task":%d,"parts":%d,"nominal_bytes":%d}`, r, cfg.partsForRank(r), cfg.NominalBytes(r, step))
	}
	buf.WriteString("]}}\n")
	return buf.Bytes()
}

// JSONInflation returns the measured ratio of encoded JSON bytes to the
// nominal 8-byte-per-value payload — the textual factor the paper's f
// absorbs (roughly 3.1 for the fixed-width encoding).
func JSONInflation(nvals int) float64 {
	if nvals < 1 {
		nvals = 1
	}
	return float64(jsonFileSize(nvals, 1, 0)) / float64(int64(nvals)*8)
}
