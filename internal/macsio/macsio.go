// Package macsio is a Go port of the subset of LLNL's MACSio proxy I/O
// application that the paper drives (its Table II): the miftmpl (JSON)
// interface plus simulated hdf5/silo binary interfaces, MIF and SIF
// parallel file modes, and the num_dumps / part_size / avg_num_parts /
// vars_per_part / compute_time / meta_size / dataset_growth parameters.
//
// A run produces the paper's Fig. 3 layout: one data file per task per
// dump step named macsio_<iface>_<task>_<step> plus a root metadata file
// per step, written through the iosim filesystem model under simulated MPI
// so contention and burst behavior are modeled the same way as the AMReX
// side.
//
// Every rank goroutine writes straight into its own iosim ledger shard;
// the per-dump BeginBurst calls (one per rank, between the same barriers)
// are idempotent snapshots of the contended bandwidth, so the N-to-N dump
// takes no shared lock anywhere on the write path.
package macsio

import (
	"fmt"
	"math"
	"sort"

	"amrproxyio/internal/iosim"
	"amrproxyio/internal/mpisim"
	"amrproxyio/internal/resilience"
)

// Interface selects the output encoder.
type Interface string

// Supported interfaces. Miftmpl emits real JSON text (the paper's choice);
// the others emit binary payloads approximating HDF5/silo overheads.
const (
	IfaceMiftmpl Interface = "miftmpl"
	IfaceJSON    Interface = "json" // alias the paper uses for miftmpl
	IfaceHDF5    Interface = "hdf5"
	IfaceSilo    Interface = "silo"
)

// FileMode selects the parallel file strategy.
type FileMode string

// MIF writes one file per group of tasks (N groups); SIF writes a single
// shared file with rank-ordered segments.
const (
	ModeMIF FileMode = "MIF"
	ModeSIF FileMode = "SIF"
)

// Config mirrors the MACSio command line (Table II).
type Config struct {
	Interface     Interface
	FileMode      FileMode
	MIFFiles      int     // the N in "MIF N"; 0 means one file per task
	NumDumps      int     // --num_dumps
	PartSize      int64   // --part_size: nominal bytes per part
	AvgNumParts   float64 // --avg_num_parts
	VarsPerPart   int     // --vars_per_part
	ComputeTime   float64 // --compute_time: seconds between dumps
	MetaSize      int64   // --meta_size: extra metadata bytes per task
	DatasetGrowth float64 // --dataset_growth: per-dump multiplier
	NProcs        int     // jsrun -n
	SizeOnly      bool    // model sizes without materializing payloads
}

// DefaultConfig mirrors MACSio's defaults for the parameters the paper
// leaves unset.
func DefaultConfig() Config {
	return Config{
		Interface:     IfaceMiftmpl,
		FileMode:      ModeMIF,
		NumDumps:      10,
		PartSize:      80000,
		AvgNumParts:   1,
		VarsPerPart:   1,
		ComputeTime:   0,
		MetaSize:      0,
		DatasetGrowth: 1.0,
		NProcs:        1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Interface {
	case IfaceMiftmpl, IfaceJSON, IfaceHDF5, IfaceSilo:
	default:
		return fmt.Errorf("macsio: unknown interface %q", c.Interface)
	}
	switch c.FileMode {
	case ModeMIF, ModeSIF:
	default:
		return fmt.Errorf("macsio: unknown parallel_file_mode %q", c.FileMode)
	}
	if c.NumDumps < 1 {
		return fmt.Errorf("macsio: num_dumps = %d", c.NumDumps)
	}
	if c.PartSize < 8 {
		return fmt.Errorf("macsio: part_size = %d (need >= 8)", c.PartSize)
	}
	if c.AvgNumParts <= 0 {
		return fmt.Errorf("macsio: avg_num_parts = %g", c.AvgNumParts)
	}
	if c.VarsPerPart < 1 {
		return fmt.Errorf("macsio: vars_per_part = %d", c.VarsPerPart)
	}
	if c.DatasetGrowth <= 0 {
		return fmt.Errorf("macsio: dataset_growth = %g", c.DatasetGrowth)
	}
	if c.NProcs < 1 {
		return fmt.Errorf("macsio: nprocs = %d", c.NProcs)
	}
	if c.ComputeTime < 0 || c.MetaSize < 0 {
		return fmt.Errorf("macsio: negative compute_time or meta_size")
	}
	return nil
}

// partsForRank distributes round(avg_num_parts * nprocs) parts across
// ranks as evenly as possible, extras to the lowest ranks (MACSio's
// deterministic assignment).
func (c Config) partsForRank(rank int) int {
	total := int(math.Round(c.AvgNumParts * float64(c.NProcs)))
	if total < 1 {
		total = 1
	}
	base := total / c.NProcs
	if rank < total%c.NProcs {
		return base + 1
	}
	return base
}

// GrowthFactor returns dataset_growth^step.
func (c Config) GrowthFactor(step int) float64 {
	return math.Pow(c.DatasetGrowth, float64(step))
}

// NominalBytes is the nominal (requested) payload for one rank at a dump
// step: parts x vars x part_size x growth^step.
func (c Config) NominalBytes(rank, step int) int64 {
	perPart := float64(c.PartSize) * c.GrowthFactor(step)
	return int64(perPart) * int64(c.partsForRank(rank)) * int64(c.VarsPerPart)
}

// DumpRecord reports the actual bytes one rank wrote at one dump step.
type DumpRecord struct {
	Step  int   `json:"step"`
	Rank  int   `json:"rank"`
	Bytes int64 `json:"bytes"`
}

// Run executes the proxy: NumDumps bulk-synchronous dumps through fs.
func Run(fs *iosim.FileSystem, cfg Config) ([]DumpRecord, error) {
	return RunMitigated(fs, cfg, nil)
}

// RunMitigated is Run with a closed-loop resilience engine observing
// between dumps. MACSio's dumps are checkpoints — never shed — and the
// dump count is fixed by the command line, so the only policy with a
// seam here is target quarantine: after each dump, rank 0 observes the
// fault-event stream and installs the circuit-breaker set before the
// next dump's writes start. The extra barrier that publishes the
// quarantine set to all ranks exists only on the mitigated path; a nil
// engine reproduces Run's historical barrier sequence exactly, keeping
// unmitigated runs byte-identical.
//
// Determinism: rank 0 observes at a full barrier — every rank has
// advanced its clock for the step and no writes are in flight — so the
// observation (and the breaker set each dump's writes see) is a pure
// function of deterministic state under any goroutine interleaving.
func RunMitigated(fs *iosim.FileSystem, cfg Config, eng *resilience.Engine) ([]DumpRecord, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	perRank := make([][]DumpRecord, cfg.NProcs)
	err := mpisim.Run(cfg.NProcs, func(c *mpisim.Comm) error {
		rank := c.Rank()
		for step := 0; step < cfg.NumDumps; step++ {
			if cfg.ComputeTime > 0 {
				fs.AdvanceClock(rank, cfg.ComputeTime)
			}
			c.Barrier() // dumps are synchronized bursts
			if eng != nil {
				if rank == 0 {
					eng.Observe(fs)
				}
				c.Barrier() // writes wait for the installed quarantine set
			}
			fs.BeginBurst(cfg.NProcs)

			nbytes, err := writeRankDump(fs, cfg, rank, step)
			if err != nil {
				return err
			}
			if rank == 0 {
				if err := writeRootMeta(fs, cfg, step); err != nil {
					return err
				}
			}
			perRank[rank] = append(perRank[rank], DumpRecord{Step: step, Rank: rank, Bytes: nbytes})
			c.Barrier()
			fs.EndBurst()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []DumpRecord
	for _, rr := range perRank {
		out = append(out, rr...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Rank < out[j].Rank
	})
	return out, nil
}

// writeRankDump writes one rank's data file for one step and returns the
// file bytes attributed to this rank.
func writeRankDump(fs *iosim.FileSystem, cfg Config, rank, step int) (int64, error) {
	path := dataPath(cfg, rank, step)
	labels := iosim.Labels{Step: step, Level: 0}
	nvals := int(cfg.NominalBytes(rank, step) / 8)
	if nvals < 1 {
		nvals = 1
	}
	size := DataFileSize(cfg.Interface, nvals, cfg.VarsPerPart, cfg.MetaSize)
	if cfg.SizeOnly {
		if _, err := fs.WriteSize(rank, path, size, labels); err != nil {
			return 0, err
		}
		return size, nil
	}
	data := EncodeDataFile(cfg.Interface, rank, step, nvals, cfg.VarsPerPart, cfg.MetaSize)
	if int64(len(data)) != size {
		return 0, fmt.Errorf("macsio: encoder/size mismatch: %d vs %d", len(data), size)
	}
	if _, err := fs.Write(rank, path, data, labels); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// writeRootMeta writes the per-step root metadata file (rank 0 only).
func writeRootMeta(fs *iosim.FileSystem, cfg Config, step int) error {
	path := rootPath(cfg, step)
	data := EncodeRootMeta(cfg, step)
	_, err := fs.Write(0, path, data, iosim.Labels{Step: step, Level: 0})
	return err
}

// dataPath names a rank's data file following the paper's Fig. 3:
// macsio_json_{taskID}_{stepID}.json (MIF) or a single shared file (SIF).
func dataPath(cfg Config, rank, step int) string {
	iface := ifaceToken(cfg.Interface)
	ext := ifaceExt(cfg.Interface)
	if cfg.FileMode == ModeSIF {
		return fmt.Sprintf("macsio_%s_%03d.%s", iface, step, ext)
	}
	group := rank
	if cfg.MIFFiles > 0 && cfg.MIFFiles < cfg.NProcs {
		group = rank % cfg.MIFFiles
	}
	return fmt.Sprintf("macsio_%s_%05d_%03d.%s", iface, group, step, ext)
}

func rootPath(cfg Config, step int) string {
	return fmt.Sprintf("macsio_%s_root_%03d.%s", ifaceToken(cfg.Interface), step, ifaceExt(cfg.Interface))
}

func ifaceToken(i Interface) string {
	if i == IfaceJSON {
		return "json"
	}
	if i == IfaceMiftmpl {
		return "json" // miftmpl writes json, and the paper names files that way
	}
	return string(i)
}

func ifaceExt(i Interface) string {
	switch i {
	case IfaceMiftmpl, IfaceJSON:
		return "json"
	case IfaceHDF5:
		return "h5"
	case IfaceSilo:
		return "silo"
	}
	return "dat"
}

// TotalBytes sums a record set.
func TotalBytes(recs []DumpRecord) int64 {
	var n int64
	for _, r := range recs {
		n += r.Bytes
	}
	return n
}

// BytesPerStep aggregates records by dump step.
func BytesPerStep(recs []DumpRecord) map[int]int64 {
	out := map[int]int64{}
	for _, r := range recs {
		out[r.Step] += r.Bytes
	}
	return out
}
