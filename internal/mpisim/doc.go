// Package mpisim is an in-process message-passing runtime that stands in
// for MPI on Summit in the paper's experiments. Each simulated rank runs as
// a goroutine executing the same SPMD function; ranks communicate through
// tagged point-to-point messages and the collectives the AMR driver and the
// plotfile/MACSio writers need (barrier, broadcast, reduce, gather, scan).
//
// # Semantics
//
// Semantics follow MPI's eager protocol: Send never blocks (messages are
// buffered at the destination mailbox), Recv blocks until a message with a
// matching (source, tag) pair arrives. Matching messages from one source
// with one tag are delivered in send order — the same non-overtaking
// guarantee MPI makes — which is what keeps every SPMD program in this
// repository deterministic: library code always names its receive source,
// so a run's communication schedule is a pure function of the program,
// not of goroutine scheduling. AnySource exists for tests and
// experimentation and matches in mailbox-arrival order.
//
// # Mailbox architecture
//
// Each rank's mailbox buckets pending messages by (source, tag), so a
// named-source Recv matches in O(1) map lookups instead of scanning one
// flat queue per wakeup; during an N-to-N burst the old flat scan made
// matching quadratic in outstanding messages. AnySource receives scan
// only the bucket heads for the tag (bounded by the number of distinct
// senders) and take the earliest arrival by sequence stamp. Queues pop
// by advancing a head index (O(1)) and compact their dead prefix so a
// bucket that never fully drains stays bounded by its live depth.
//
// # Traffic accounting
//
// A World accumulates per-run message and byte counts (Stats), which the
// exchange tests use to assert the communication volume of distributed
// ghost fills. For topology-aware contention modeling, the amr package
// derives per-rank-pair volumes from its cached communication plans
// (amr.FillBoundaryTraffic) and prices them with iosim.Topology — the
// same model the write ledger uses. The same division of labor holds
// for two-phase I/O aggregation: the intra-node gather is priced inside
// iosim's burst model (iosim.AggregationSpec), not routed through
// mpisim.Gather, so enabling it never perturbs an SPMD program's
// message schedule or the ledger pins that depend on it.
package mpisim
