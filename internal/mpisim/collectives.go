package mpisim

// Collectives implemented on top of the point-to-point layer. All of them
// are synchronizing in the MPI sense: every rank in the world must call the
// same collective in the same order.

// Barrier blocks until every rank has entered it. It is implemented as a
// gather-to-root followed by a broadcast, which is O(P) messages — fine for
// the simulated scales (P <= 4096).
func (c *Comm) Barrier() {
	if c.world.size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < c.world.size; r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < c.world.size; r++ {
			c.Send(r, tagBarrier, nil)
		}
	} else {
		c.Send(0, tagBarrier, nil)
		c.Recv(0, tagBarrier)
	}
}

// Bcast distributes root's value to every rank and returns it.
func (c *Comm) Bcast(root int, data interface{}) interface{} {
	if c.world.size == 1 {
		return data
	}
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		return data
	}
	got, _ := c.Recv(root, tagBcast)
	return got
}

// ReduceOp is a binary reduction operator over float64.
type ReduceOp func(a, b float64) float64

// Reduction operators for the float64 collectives.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
)

// Reduce combines one float64 per rank at root using op; non-root ranks
// receive the zero value.
func (c *Comm) Reduce(root int, v float64, op ReduceOp) float64 {
	if c.world.size == 1 {
		return v
	}
	if c.rank == root {
		acc := v
		for r := 0; r < c.world.size; r++ {
			if r == root {
				continue
			}
			got, _ := c.Recv(r, tagReduce)
			acc = op(acc, got.(float64))
		}
		return acc
	}
	c.Send(root, tagReduce, v)
	return 0
}

// Allreduce combines one float64 per rank with op and returns the result on
// every rank.
func (c *Comm) Allreduce(v float64, op ReduceOp) float64 {
	acc := c.Reduce(0, v, op)
	return c.Bcast(0, acc).(float64)
}

// AllreduceInt64 combines one int64 per rank by summation on every rank.
func (c *Comm) AllreduceInt64Sum(v int64) int64 {
	acc := c.Allreduce(float64(v), OpSum)
	return int64(acc + 0.5*sign(acc))
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// Gather collects one payload per rank at root, indexed by rank. Non-root
// ranks receive nil.
func (c *Comm) Gather(root int, data interface{}) []interface{} {
	if c.world.size == 1 {
		return []interface{}{data}
	}
	if c.rank == root {
		out := make([]interface{}, c.world.size)
		out[root] = data
		for r := 0; r < c.world.size; r++ {
			if r == root {
				continue
			}
			got, _ := c.Recv(r, tagGather)
			out[r] = got
		}
		return out
	}
	c.Send(root, tagGather, data)
	return nil
}

// Allgather collects one payload per rank on every rank.
func (c *Comm) Allgather(data interface{}) []interface{} {
	all := c.Gather(0, data)
	got := c.Bcast(0, all)
	return got.([]interface{})
}

// ExclusiveScanInt64 returns the exclusive prefix sum of v across ranks:
// rank r receives sum of values on ranks < r. Used to assign disjoint
// global offsets (e.g. SIF single-shared-file layouts).
func (c *Comm) ExclusiveScanInt64(v int64) int64 {
	if c.world.size == 1 {
		return 0
	}
	all := c.Gather(0, v)
	var prefixes []int64
	if c.rank == 0 {
		prefixes = make([]int64, c.world.size)
		var acc int64
		for r := 0; r < c.world.size; r++ {
			prefixes[r] = acc
			acc += all[r].(int64)
		}
	}
	got := c.Bcast(0, prefixes)
	return got.([]int64)[c.rank]
}
