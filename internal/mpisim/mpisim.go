package mpisim

import (
	"fmt"
	"sync"
)

// AnySource can be passed to Recv to match a message from any rank.
// Library code in this repository always names its source so that runs
// remain deterministic; AnySource exists for tests and experimentation.
const AnySource = -1

// Message tags used by the built-in collectives. User tags must be >= 0.
const (
	tagBarrier = -100 - iota
	tagBcast
	tagReduce
	tagGather
	tagScan
)

// message is a single point-to-point payload. seq is the mailbox arrival
// stamp; AnySource matching uses it to preserve arrival order across
// senders.
type message struct {
	src, tag int
	seq      uint64
	data     interface{}
}

// mkey buckets pending messages by their full match key.
type mkey struct{ src, tag int }

// msgQueue is a FIFO of matching messages. Pops advance head instead of
// re-slicing so delivery is O(1); the backing array is reset when drained.
type msgQueue struct {
	msgs []message
	head int
}

func (q *msgQueue) empty() bool { return q.head == len(q.msgs) }

func (q *msgQueue) push(msg message) { q.msgs = append(q.msgs, msg) }

func (q *msgQueue) pop() message {
	msg := q.msgs[q.head]
	q.msgs[q.head].data = nil // drop the payload reference
	q.head++
	switch {
	case q.empty():
		q.msgs = q.msgs[:0]
		q.head = 0
	case q.head > 32 && q.head*2 >= len(q.msgs):
		// Compact the dead prefix so a bucket that never fully drains
		// (steady producer one message ahead of the consumer) stays
		// bounded by its live depth instead of its lifetime volume.
		n := copy(q.msgs, q.msgs[q.head:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	return msg
}

// mailbox is the per-rank receive queue. Pending messages are bucketed by
// (src, tag) so a Recv with a named source matches in O(1) map lookups
// instead of scanning one flat queue per wakeup — under a cond.Broadcast
// storm during a large burst the old O(n) scan made matching quadratic.
// AnySource receives scan only the bucket heads for the tag (bounded by
// the number of distinct senders) and take the earliest arrival.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[mkey]*msgQueue
	seq     uint64
}

func newMailbox() *mailbox {
	m := &mailbox{buckets: map[mkey]*msgQueue{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	k := mkey{src: msg.src, tag: msg.tag}
	q := m.buckets[k]
	if q == nil {
		q = &msgQueue{}
		m.buckets[k] = q
	}
	msg.seq = m.seq
	m.seq++
	q.push(msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) get(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if src != AnySource {
			if q := m.buckets[mkey{src: src, tag: tag}]; q != nil && !q.empty() {
				return q.pop()
			}
		} else {
			var best *msgQueue
			for k, q := range m.buckets {
				if k.tag != tag || q.empty() {
					continue
				}
				if best == nil || q.msgs[q.head].seq < best.msgs[best.head].seq {
					best = q
				}
			}
			if best != nil {
				return best.pop()
			}
		}
		m.cond.Wait()
	}
}

// World owns the mailboxes for a fixed number of ranks.
type World struct {
	size      int
	mailboxes []*mailbox

	statsMu sync.Mutex
	stats   TrafficStats
}

// TrafficStats aggregates message-passing volume across a run; the I/O
// study uses it to confirm communication is not the bottleneck being
// modeled.
type TrafficStats struct {
	Messages int64
	Bytes    int64
}

// NewWorld creates a communicator world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpisim: world size %d must be positive", n))
	}
	w := &World{size: n, mailboxes: make([]*mailbox, n)}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of cumulative traffic statistics.
func (w *World) Stats() TrafficStats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.stats
}

func (w *World) record(bytes int) {
	w.statsMu.Lock()
	w.stats.Messages++
	w.stats.Bytes += int64(bytes)
	w.statsMu.Unlock()
}

// Comm is a rank's handle onto the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// World returns the underlying world (for stats inspection).
func (c *Comm) World() *World { return c.world }

// Run executes fn as an SPMD program on n ranks and blocks until every rank
// returns. A panic on any rank is captured and returned as an error after
// all surviving ranks finish or the panicking rank's absence deadlocks them
// — callers should treat an error as fatal for the whole run.
func Run(n int, fn func(c *Comm) error) error {
	w := NewWorld(n)
	return w.Run(fn)
}

// Run executes fn on every rank of an existing world.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpisim: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// Send delivers data to rank dst with the given tag. It never blocks.
func (c *Comm) Send(dst, tag int, data interface{}) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	c.world.record(payloadBytes(data))
	c.world.mailboxes[dst].put(message{src: c.rank, tag: tag, data: data})
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload and actual source.
func (c *Comm) Recv(src, tag int) (data interface{}, from int) {
	msg := c.world.mailboxes[c.rank].get(src, tag)
	return msg.data, msg.src
}

// Sizer lets custom payload types report their wire size for traffic
// statistics.
type Sizer interface {
	WireBytes() int
}

// payloadBytes estimates the wire size of a payload for traffic stats.
func payloadBytes(data interface{}) int {
	switch v := data.(type) {
	case nil:
		return 0
	case Sizer:
		return v.WireBytes()
	case []byte:
		return len(v)
	case []float64:
		return 8 * len(v)
	case []int64:
		return 8 * len(v)
	case []int:
		return 8 * len(v)
	case float64:
		return 8
	case int64, int:
		return 8
	case string:
		return len(v)
	default:
		return 8
	}
}
