// Package mpisim is an in-process message-passing runtime that stands in
// for MPI on Summit in the paper's experiments. Each simulated rank runs as
// a goroutine executing the same SPMD function; ranks communicate through
// tagged point-to-point messages and the collectives the AMR driver and the
// plotfile/MACSio writers need (barrier, broadcast, reduce, gather).
//
// Semantics follow MPI's eager protocol: Send never blocks (messages are
// buffered at the destination mailbox), Recv blocks until a message with a
// matching (source, tag) pair arrives. Matching messages from one source
// with one tag are delivered in send order.
package mpisim

import (
	"fmt"
	"sync"
)

// AnySource can be passed to Recv to match a message from any rank.
// Library code in this repository always names its source so that runs
// remain deterministic; AnySource exists for tests and experimentation.
const AnySource = -1

// Message tags used by the built-in collectives. User tags must be >= 0.
const (
	tagBarrier = -100 - iota
	tagBcast
	tagReduce
	tagGather
	tagScan
)

// message is a single point-to-point payload.
type message struct {
	src, tag int
	data     interface{}
}

// mailbox is the per-rank receive queue with (src,tag) matching.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) get(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// World owns the mailboxes for a fixed number of ranks.
type World struct {
	size      int
	mailboxes []*mailbox

	statsMu sync.Mutex
	stats   TrafficStats
}

// TrafficStats aggregates message-passing volume across a run; the I/O
// study uses it to confirm communication is not the bottleneck being
// modeled.
type TrafficStats struct {
	Messages int64
	Bytes    int64
}

// NewWorld creates a communicator world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpisim: world size %d must be positive", n))
	}
	w := &World{size: n, mailboxes: make([]*mailbox, n)}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of cumulative traffic statistics.
func (w *World) Stats() TrafficStats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.stats
}

func (w *World) record(bytes int) {
	w.statsMu.Lock()
	w.stats.Messages++
	w.stats.Bytes += int64(bytes)
	w.statsMu.Unlock()
}

// Comm is a rank's handle onto the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// World returns the underlying world (for stats inspection).
func (c *Comm) World() *World { return c.world }

// Run executes fn as an SPMD program on n ranks and blocks until every rank
// returns. A panic on any rank is captured and returned as an error after
// all surviving ranks finish or the panicking rank's absence deadlocks them
// — callers should treat an error as fatal for the whole run.
func Run(n int, fn func(c *Comm) error) error {
	w := NewWorld(n)
	return w.Run(fn)
}

// Run executes fn on every rank of an existing world.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpisim: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// Send delivers data to rank dst with the given tag. It never blocks.
func (c *Comm) Send(dst, tag int, data interface{}) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	c.world.record(payloadBytes(data))
	c.world.mailboxes[dst].put(message{src: c.rank, tag: tag, data: data})
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload and actual source.
func (c *Comm) Recv(src, tag int) (data interface{}, from int) {
	msg := c.world.mailboxes[c.rank].get(src, tag)
	return msg.data, msg.src
}

// Sizer lets custom payload types report their wire size for traffic
// statistics.
type Sizer interface {
	WireBytes() int
}

// payloadBytes estimates the wire size of a payload for traffic stats.
func payloadBytes(data interface{}) int {
	switch v := data.(type) {
	case nil:
		return 0
	case Sizer:
		return v.WireBytes()
	case []byte:
		return len(v)
	case []float64:
		return 8 * len(v)
	case []int64:
		return 8 * len(v)
	case []int:
		return 8 * len(v)
	case float64:
		return 8
	case int64, int:
		return 8
	case string:
		return len(v)
	default:
		return 8
	}
}
