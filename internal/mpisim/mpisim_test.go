package mpisim

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestSendRecvOrdering(t *testing.T) {
	// Messages between one (src,dst,tag) triple arrive in send order.
	err := Run(2, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 7, []int64{int64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got, from := c.Recv(0, 7)
				if from != 0 {
					return errors.New("wrong source")
				}
				if got.([]int64)[0] != int64(i) {
					t.Errorf("out of order: got %d want %d", got.([]int64)[0], i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesTag(t *testing.T) {
	// A receiver waiting on tag B is not woken by tag A.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first-tag1")
			c.Send(1, 2, "first-tag2")
			c.Send(1, 1, "second-tag1")
		} else {
			got, _ := c.Recv(0, 2)
			if got.(string) != "first-tag2" {
				t.Errorf("tag 2 recv = %v", got)
			}
			got, _ = c.Recv(0, 1)
			if got.(string) != "first-tag1" {
				t.Errorf("tag 1 first recv = %v", got)
			}
			got, _ = c.Recv(0, 1)
			if got.(string) != "second-tag1" {
				t.Errorf("tag 1 second recv = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySource(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				_, from := c.Recv(AnySource, 5)
				seen[from] = true
			}
			if len(seen) != 3 {
				t.Errorf("expected 3 distinct senders, got %v", seen)
			}
		} else {
			c.Send(0, 5, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var phase atomic.Int64
	err := Run(8, func(c *Comm) error {
		phase.Add(1)
		c.Barrier()
		// After the barrier every rank must observe all 8 arrivals.
		if got := phase.Load(); got != 8 {
			t.Errorf("rank %d saw phase %d after barrier", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		var v interface{}
		if c.Rank() == 2 {
			v = []float64{3.5, 4.5}
		}
		got := c.Bcast(2, v).([]float64)
		if got[0] != 3.5 || got[1] != 4.5 {
			t.Errorf("rank %d bcast got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		sum := c.Allreduce(float64(c.Rank()+1), OpSum)
		if sum != 21 {
			t.Errorf("sum = %g", sum)
		}
		mn := c.Allreduce(float64(c.Rank()+1), OpMin)
		if mn != 1 {
			t.Errorf("min = %g", mn)
		}
		mx := c.Allreduce(float64(c.Rank()+1), OpMax)
		if mx != 6 {
			t.Errorf("max = %g", mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceNonRootGetsZero(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		v := c.Reduce(1, 10, OpSum)
		if c.Rank() == 1 && v != 30 {
			t.Errorf("root reduce = %g", v)
		}
		if c.Rank() != 1 && v != 0 {
			t.Errorf("non-root reduce = %g", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllgather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		all := c.Allgather(int64(c.Rank() * 10))
		if len(all) != 4 {
			t.Fatalf("allgather len = %d", len(all))
		}
		for r, v := range all {
			if v.(int64) != int64(r*10) {
				t.Errorf("allgather[%d] = %v", r, v)
			}
		}
		rooted := c.Gather(2, c.Rank())
		if c.Rank() == 2 {
			for r := 0; r < 4; r++ {
				if rooted[r].(int) != r {
					t.Errorf("gather[%d] = %v", r, rooted[r])
				}
			}
		} else if rooted != nil {
			t.Error("non-root gather should be nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveScan(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		// Each rank contributes rank+1; prefix on rank r is r(r+1)/2.
		got := c.ExclusiveScanInt64(int64(c.Rank() + 1))
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			t.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestSingleRankCollectives(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.Barrier()
		if v := c.Allreduce(42, OpSum); v != 42 {
			t.Errorf("allreduce = %g", v)
		}
		if got := c.Bcast(0, "x").(string); got != "x" {
			t.Errorf("bcast = %q", got)
		}
		if all := c.Allgather(7); len(all) != 1 || all[0].(int) != 7 {
			t.Errorf("allgather = %v", all)
		}
		if s := c.ExclusiveScanInt64(9); s != 0 {
			t.Errorf("scan = %d", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficStats(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []byte{1, 2, 3, 4})
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Messages != 1 || st.Bytes != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInvalidWorldSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestSendInvalidRankPanicsAndIsRecovered(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("expected error from invalid send")
	}
}

func TestManyRanksStress(t *testing.T) {
	// Ring exchange on 64 ranks: each rank sends to the next and receives
	// from the previous, followed by a barrier, many times.
	const ranks, rounds = 64, 20
	err := Run(ranks, func(c *Comm) error {
		next := (c.Rank() + 1) % ranks
		prev := (c.Rank() + ranks - 1) % ranks
		token := int64(c.Rank())
		for i := 0; i < rounds; i++ {
			c.Send(next, 9, token)
			got, _ := c.Recv(prev, 9)
			token = got.(int64)
			c.Barrier()
		}
		// After `rounds` hops the token originated `rounds` ranks back.
		want := int64((c.Rank() + ranks - rounds%ranks) % ranks)
		if token != want {
			t.Errorf("rank %d token = %d, want %d", c.Rank(), token, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBucketedMatchingManySourcesAndTags floods one receiver with
// interleaved (src, tag) streams and checks per-pair FIFO order plus
// arrival-order AnySource draining — the properties the (src, tag)
// bucketed mailbox must preserve over the old flat-queue scan.
func TestBucketedMatchingManySourcesAndTags(t *testing.T) {
	const ranks, perTag = 8, 25
	err := Run(ranks, func(c *Comm) error {
		if c.Rank() != 0 {
			for i := 0; i < perTag; i++ {
				for tag := 0; tag < 3; tag++ {
					c.Send(0, tag, []int{c.Rank(), tag, i})
				}
			}
			return nil
		}
		// Drain tag 2 first, then tag 0, then tag 1 — each out of send
		// order relative to the others, in order within a (src, tag) pair.
		for _, tag := range []int{2, 0, 1} {
			next := map[int]int{}
			for n := 0; n < (ranks-1)*perTag; n++ {
				got, from := c.Recv(AnySource, tag)
				v := got.([]int)
				if v[0] != from || v[1] != tag {
					t.Errorf("mismatched envelope: %v from %d tag %d", v, from, tag)
				}
				if v[2] != next[from] {
					t.Errorf("src %d tag %d: got seq %d, want %d", from, tag, v[2], next[from])
				}
				next[from]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAnySourceArrivalOrder pins the bucket-scan tie-break: AnySource
// must deliver in mailbox arrival order even across different senders.
func TestAnySourceArrivalOrder(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			c.Send(0, 9, "from-1")
			c.Send(2, 0, nil) // let rank 2 send second
		case 2:
			c.Recv(1, 0)
			c.Send(0, 9, "from-2")
			c.Send(0, 0, nil) // release the receiver
		case 0:
			c.Recv(2, 0) // both tag-9 messages are now enqueued, 1 before 2
			if got, from := c.Recv(AnySource, 9); from != 1 || got.(string) != "from-1" {
				t.Errorf("first AnySource recv = %v from %d, want from-1", got, from)
			}
			if got, from := c.Recv(AnySource, 9); from != 2 || got.(string) != "from-2" {
				t.Errorf("second AnySource recv = %v from %d, want from-2", got, from)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
