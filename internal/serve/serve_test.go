package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"amrproxyio/internal/campaign"
)

func fastCase(name string, plotInt int) campaign.Case {
	return campaign.Case{
		Name: name, NCell: 32, MaxLevel: 0, MaxStep: 2, PlotInt: plotInt,
		CFL: 0.5, NProcs: 2,
	}
}

func postBatch(t *testing.T, url string, cases []campaign.Case) *http.Response {
	t.Helper()
	body, err := json.Marshal(cases)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readLines(t *testing.T, resp *http.Response) []CaseLine {
	t.Helper()
	defer resp.Body.Close()
	var lines []CaseLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var line CaseLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestServeBatchWithDuplicate is the service-level cache demo the CI
// smoke job replays: a 3-case batch with one exact duplicate streams 3
// NDJSON lines, at least one marked cached, and /statz shows the hit.
func TestServeBatchWithDuplicate(t *testing.T) {
	s := New(Options{Parallel: 1}) // serial pool: the duplicate hits the LRU
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := fastCase("a", 1)
	dup := a
	b := fastCase("b", 2)
	resp := postBatch(t, ts.URL, []campaign.Case{a, dup, b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := readLines(t, resp)
	if len(lines) != 3 {
		t.Fatalf("got %d NDJSON lines, want 3", len(lines))
	}
	cached := 0
	seen := map[int]bool{}
	for _, l := range lines {
		if l.Error != "" {
			t.Errorf("case %d (%s) errored: %s", l.Index, l.Name, l.Error)
		}
		if l.Output == nil || l.Output.Result.NPlots == 0 {
			t.Errorf("case %d missing output", l.Index)
		}
		if l.Cached {
			cached++
		}
		seen[l.Index] = true
	}
	if cached < 1 {
		t.Error("duplicated case was not served from the cache")
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Errorf("no line for case index %d", i)
		}
	}

	var st Statz
	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits < 1 {
		t.Errorf("statz hits = %d, want >= 1", st.Hits)
	}
	if st.HitRate <= 0 {
		t.Errorf("statz hit_rate = %g, want > 0", st.HitRate)
	}
	if st.CasesCompleted != 3 {
		t.Errorf("statz cases_completed = %d, want 3", st.CasesCompleted)
	}
	if st.InFlightCases != 0 || st.InFlightBatches != 0 {
		t.Errorf("statz shows in-flight work after the batch drained: %+v", st)
	}
}

func TestServeRejectsBadBatches(t *testing.T) {
	s := New(Options{MaxCases: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	if resp := post(`[{"name":"x","n_cell":32,"max_step":1,"plot_int":1,"cfl":0.5,"nprocs":1,"bogus_field":1}]`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}
	if resp := post(`[]`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", resp.StatusCode)
	}
	if resp := post(`[{"name":"x","n_cell":32,"max_step":1,"plot_int":1,"cfl":0.5,"nprocs":1,"engine":"bogus"}]`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid case: status = %d, want 400", resp.StatusCode)
	}
	// Same name, different configuration: the CheckBatch rejection.
	conflict := `[{"name":"x","n_cell":32,"max_step":1,"plot_int":1,"cfl":0.5,"nprocs":1},
	              {"name":"x","n_cell":32,"max_step":2,"plot_int":1,"cfl":0.5,"nprocs":1}]`
	if resp := post(conflict); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("name conflict: status = %d, want 400", resp.StatusCode)
	}
	// Over the batch size limit (MaxCases: 2).
	over, _ := json.Marshal([]campaign.Case{fastCase("a", 1), fastCase("b", 2), fastCase("c", 1)})
	if resp := post(string(over)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", resp.StatusCode)
	}

	getResp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status = %d, want 405", getResp.StatusCode)
	}
}

// TestServeStreamsIncrementally pins the NDJSON contract: with a slow
// and a fast case running in parallel, the fast case's line arrives
// while the batch is still in flight — results stream as they
// complete, they are not buffered until the batch returns.
func TestServeStreamsIncrementally(t *testing.T) {
	s := New(Options{Parallel: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := campaign.Case{
		Name: "slow", NCell: 64, MaxLevel: 1, MaxStep: 80, PlotInt: 20,
		CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro,
	}
	fast := fastCase("fast", 1)
	resp := postBatch(t, ts.URL, []campaign.Case{slow, fast})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first CaseLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "fast" {
		t.Errorf("first streamed line = %q, want the fast case", first.Name)
	}
	// The batch is still running when its first line arrives.
	if st := s.Stats(); st.InFlightBatches != 1 || st.InFlightCases != 2 {
		t.Errorf("after first line: in-flight batches = %d cases = %d, want 1/2",
			st.InFlightBatches, st.InFlightCases)
	}
	var rest int
	for sc.Scan() {
		rest++
	}
	if rest != 1 {
		t.Errorf("got %d further lines, want 1", rest)
	}
}

func TestServeHealthz(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

// TestServeBatchSemaphore pins the concurrency limit: with one batch
// slot, a second batch waits for the first to finish rather than
// running alongside it.
func TestServeBatchSemaphore(t *testing.T) {
	s := New(Options{MaxBatches: 1, Parallel: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := func(name string) []campaign.Case {
		c := campaign.Case{
			Name: name, NCell: 64, MaxLevel: 1, MaxStep: 40, PlotInt: 20,
			CFL: 0.5, NProcs: 4, Engine: campaign.EngineHydro,
		}
		return []campaign.Case{c}
	}
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			resp := postBatch(t, ts.URL, batch(fmt.Sprintf("sem-%d", i)))
			readLines(t, resp)
			done <- i
		}(i)
	}
	deadline := time.After(2 * time.Minute)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("batches did not complete")
		}
	}
	// Never more than one batch in flight. (Sampled at the end: the
	// gauge must read zero; the 1-slot semaphore is structural.)
	if st := s.Stats(); st.InFlightBatches != 0 {
		t.Errorf("in-flight batches = %d after drain", st.InFlightBatches)
	}
}
