// Package serve is the campaign service layer (Design 10): an HTTP
// front end over the memoizing case executor, turning the batch CLI
// sweep into a long-lived service for heavy sweep traffic.
//
// Data flow:
//
//	POST /run  —  JSON array of campaign.Case
//	   │ strict decode (unknown fields → 400), CheckBatch (invalid or
//	   │ name-conflicting batches → 400), batch semaphore (concurrency
//	   │ limit; waits, honoring request cancellation)
//	   ▼
//	campaign.RunAll + WithExecutor(memoizing LRU, single-flight)
//	            + WithCaseTimeout + WithOutputs
//	   │ each case: fingerprint lookup → cache hit, or one simulation
//	   │ streamed through iosim folds (the ledger is never retained)
//	   ▼
//	NDJSON response — one line per case, flushed as it completes, in
//	completion order (each line carries the case index and name)
//
//	GET /healthz — liveness
//	GET /statz   — executor counters (hits, misses, hit rate, errors,
//	               abandoned), cases completed, cases/sec, in-flight
//	               cases and batches, uptime
//
// The package wires handlers, limits, and stats; process concerns —
// listening, SIGTERM-driven graceful drain — live in cmd/amrio-campaign
// (the -serve flag), which shuts the http.Server down with a deadline
// so in-flight batches finish streaming before the process exits.
//
// serve is exempt from the nondeterm vet gate: unlike the simulation
// packages it measures real wall-clock throughput on purpose. It must
// never call FileSystem.Ledger() — the ledgerretain analyzer enforces
// that the service stays on the streaming path.
package serve
