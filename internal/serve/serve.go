package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"amrproxyio/internal/campaign"
)

// Options tunes the service. The zero value serves with sweep-sized
// defaults: all-cores workers per batch, a 1024-entry cache, batches up
// to DefaultMaxCases cases, DefaultMaxBatches concurrent batches, no
// per-case timeout, aggregate (topology-free) filesystems.
type Options struct {
	// Parallel is the per-batch worker-pool size (campaign.RunAll
	// semantics: <1 selects all cores).
	Parallel int
	// CaseTimeout bounds each case's wall clock (campaign.WithCaseTimeout
	// semantics: <=0 disables the bound).
	CaseTimeout time.Duration
	// MaxCases rejects larger batches with 400; <1 selects DefaultMaxCases.
	MaxCases int
	// MaxBatches caps concurrently running batches; excess requests wait
	// for a slot (honoring cancellation). <1 selects DefaultMaxBatches.
	MaxBatches int
	// CacheSize caps the executor's LRU; <1 selects the executor default.
	CacheSize int
	// Topology runs every case against its per-link topology model
	// instead of the aggregate pool (and salts the cache keys).
	Topology bool
}

// Defaults for the zero Options.
const (
	DefaultMaxCases   = 256
	DefaultMaxBatches = 4
)

// Server owns the memoizing executor and the service counters. Create
// with New; serve its Handler.
type Server struct {
	opts Options
	exec *campaign.Executor
	sem  chan struct{} // batch slots

	start     time.Time
	completed atomic.Uint64 // cases finished (hit, miss, or error)
	cases     atomic.Int64  // cases currently in some running batch
	batches   atomic.Int64  // batches currently running
}

// New builds a server from opts (zero value: see Options).
func New(opts Options) *Server {
	if opts.MaxCases < 1 {
		opts.MaxCases = DefaultMaxCases
	}
	if opts.MaxBatches < 1 {
		opts.MaxBatches = DefaultMaxBatches
	}
	return &Server{
		opts:  opts,
		exec:  campaign.NewExecutor(opts.CacheSize, opts.Topology),
		sem:   make(chan struct{}, opts.MaxBatches),
		start: time.Now(),
	}
}

// Handler returns the service mux: POST /run, GET /healthz, GET /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// CaseLine is one NDJSON response line: the per-case report JSON,
// written as the case completes. Lines arrive in completion order;
// Index ties each back to its position in the submitted batch.
type CaseLine struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// Output carries the result and the streamed reductions (burst
	// stats, characterization profile, fingerprint); omitted on error.
	Output *campaign.CaseOutput `json:"output,omitempty"`
}

// decodeBatch reads a strict JSON case batch. DisallowUnknownFields is
// the service's input contract (and the jsonstrict vet gate's): a typo
// in a case field must 400, not silently run a default.
func decodeBatch(r *http.Request) ([]campaign.Case, error) {
	var cases []campaign.Case
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cases); err != nil {
		return nil, fmt.Errorf("decode batch: %w", err)
	}
	return cases, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	cases, err := decodeBatch(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(cases) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(cases) > s.opts.MaxCases {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(cases), s.opts.MaxCases),
			http.StatusBadRequest)
		return
	}
	if err := campaign.CheckBatch(cases, s.opts.Topology); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Batch slot: the concurrency limit. Waiting requests drop out when
	// the client goes away.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		http.Error(w, "canceled while waiting for a batch slot", http.StatusServiceUnavailable)
		return
	}

	s.batches.Add(1)
	s.cases.Add(int64(len(cases)))
	defer func() {
		s.cases.Add(-int64(len(cases)))
		s.batches.Add(-1)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// The outputs hook runs on RunAll's worker goroutines: one writer
	// lock orders the lines and keeps the flushes whole.
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	_, err = campaign.RunAll(cases, s.opts.Parallel, nil,
		campaign.WithExecutor(s.exec),
		campaign.WithCaseTimeout(s.opts.CaseTimeout),
		campaign.WithOutputs(func(i int, out campaign.CaseOutput, err error) {
			line := CaseLine{Index: i, Name: cases[i].Name, Cached: out.Cached}
			if err != nil {
				line.Error = err.Error()
			} else {
				line.Output = &out
			}
			mu.Lock()
			defer mu.Unlock()
			if encErr := enc.Encode(line); encErr != nil {
				return // client gone; RunAll still drains the batch
			}
			if flusher != nil {
				flusher.Flush()
			}
			s.completed.Add(1)
		}))
	_ = err // per-case errors already went out on their own lines
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Statz is the /statz JSON document.
type Statz struct {
	campaign.ExecStats
	HitRate         float64 `json:"hit_rate"`
	CasesCompleted  uint64  `json:"cases_completed"`
	CasesPerSec     float64 `json:"cases_per_sec"`
	InFlightCases   int64   `json:"in_flight_cases"`
	InFlightBatches int64   `json:"in_flight_batches"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
}

// Stats snapshots the service counters (the /statz payload).
func (s *Server) Stats() Statz {
	es := s.exec.Stats()
	up := time.Since(s.start).Seconds()
	completed := s.completed.Load()
	var rate float64
	if up > 0 {
		rate = float64(completed) / up
	}
	return Statz{
		ExecStats:       es,
		HitRate:         es.HitRate(),
		CasesCompleted:  completed,
		CasesPerSec:     rate,
		InFlightCases:   s.cases.Load(),
		InFlightBatches: s.batches.Load(),
		UptimeSeconds:   up,
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
