package sim

import (
	"testing"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/iosim"
)

// TestRemapFoldsLoadsOntoAggregators mirrors the surrogate-engine
// regression pin on the hydro engine's remapTargets: with 1/node
// aggregation the per-rank loads [10 10 1 1] must fold onto the
// aggregator ranks ([20 0 2 0]) before LPT balancing — unfolded, LPT
// ties round-robin, declines, and both aggregators co-locate on target 0.
func TestRemapFoldsLoadsOntoAggregators(t *testing.T) {
	topo := iosim.Topology{Nodes: 2, RanksPerNode: 2, Targets: 2}
	boxes := []grid.Box{
		{Lo: grid.IntVect{X: 0, Y: 0}, Hi: grid.IntVect{X: 9, Y: 0}},
		{Lo: grid.IntVect{X: 0, Y: 1}, Hi: grid.IntVect{X: 9, Y: 1}},
		{Lo: grid.IntVect{X: 0, Y: 2}, Hi: grid.IntVect{X: 0, Y: 2}},
		{Lo: grid.IntVect{X: 1, Y: 2}, Hi: grid.IntVect{X: 1, Y: 2}},
	}
	owner := []int{0, 1, 2, 3}

	fscfg := iosim.DefaultConfig()
	fscfg.JitterSigma = 0
	fscfg.Topology = topo
	fscfg.Aggregation = iosim.AggregationSpec{Aggregators: "1/node"}
	fs := iosim.New(fscfg, "")

	c := smallCfg()
	c.MaxLevel = 0
	c.NProcs = 4
	opts := DefaultOptions()
	opts.Remap = true
	s, err := New(c, opts, fs)
	if err != nil {
		t.Fatal(err)
	}
	s.Levels = []*Level{{BA: amr.NewBoxArray(boxes), DM: amr.DistributionMapping{Owner: owner}}}
	if err := s.remapTargets(); err != nil {
		t.Fatal(err)
	}

	fs.BeginBurst(4)
	for rank := 0; rank < 4; rank++ {
		if _, err := fs.WriteSize(rank, "plt/Cell_D", 10, iosim.Labels{}); err != nil {
			t.Fatal(err)
		}
	}
	fs.EndBurst()

	want := []int{0, 0, 1, 1}
	for i, rec := range fs.Ledger() {
		if rec.Target != want[i] {
			t.Fatalf("rank %d wrote to target %d, want %d (folded remap must separate the aggregators)",
				rec.Rank, rec.Target, want[i])
		}
	}
}
