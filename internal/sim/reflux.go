package sim

import (
	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/hydro"
)

// Refluxing: the Berger–Colella coarse-fine flux correction. In a
// dimensionally split, non-subcycled advance, each directional sweep
// updates coarse cells adjacent to the fine level with the coarse flux
// through the shared face, while the fine side used (finer) fluxes through
// the same physical face. Replacing the coarse flux with the average of
// the fine fluxes restores exact conservation of the composite solution —
// which is why Castro's mass/energy sums stay flat. The correction for a
// coarse cell whose RIGHT face is a coarse-fine boundary is
//
//	U += dt/dx * (F_c(face) - mean_k F_f(face_k))
//
// and the mirror sign for a LEFT-face boundary (similarly in y).

// refluxX applies the x-direction correction between levels l and l+1,
// given both levels' captured flux fields (indexed like the FABs). The
// covered-cell test and the fine-flux owner search both go through spatial
// indexes built once per call, so the per-cell work is O(1) instead of a
// scan over every fine box.
func (s *Sim) refluxX(l int, dt float64, crseFlux, fineFlux []*hydro.FluxField) {
	crse, fine := s.Levels[l], s.Levels[l+1]
	ratio := s.Cfg.RefRatioAt(l)
	coveredIdx := fine.BA.Coarsen(ratio).Index()
	fineIdx := fine.BA.Index()
	dx := crse.Geom.CellSize[0]

	for ci, cf := range crse.State.FABs {
		vb := cf.ValidBox
		for j := vb.Lo.Y; j <= vb.Hi.Y; j++ {
			for i := vb.Lo.X; i <= vb.Hi.X; i++ {
				if coveredIdx.Contains(grid.IV(i, j)) {
					continue // under the fine level; average-down owns it
				}
				// Right face adjacent to fine region.
				if i+1 <= crse.Geom.Domain.Hi.X && coveredIdx.Contains(grid.IV(i+1, j)) {
					fc := crseFlux[ci].AtX(i+1, j)
					ffAvg, ok := fineXFaceAvg(fineIdx, fineFlux, (i+1)*ratio, j, ratio)
					if ok {
						applyCorrection(cf, i, j, dt/dx, sub(fc, ffAvg))
					}
				}
				// Left face adjacent to fine region.
				if i-1 >= crse.Geom.Domain.Lo.X && coveredIdx.Contains(grid.IV(i-1, j)) {
					fc := crseFlux[ci].AtX(i, j)
					ffAvg, ok := fineXFaceAvg(fineIdx, fineFlux, i*ratio, j, ratio)
					if ok {
						applyCorrection(cf, i, j, dt/dx, sub(ffAvg, fc))
					}
				}
			}
		}
	}
}

// refluxY mirrors refluxX for y faces.
func (s *Sim) refluxY(l int, dt float64, crseFlux, fineFlux []*hydro.FluxField) {
	crse, fine := s.Levels[l], s.Levels[l+1]
	ratio := s.Cfg.RefRatioAt(l)
	coveredIdx := fine.BA.Coarsen(ratio).Index()
	fineIdx := fine.BA.Index()
	dy := crse.Geom.CellSize[1]

	for ci, cf := range crse.State.FABs {
		vb := cf.ValidBox
		for j := vb.Lo.Y; j <= vb.Hi.Y; j++ {
			for i := vb.Lo.X; i <= vb.Hi.X; i++ {
				if coveredIdx.Contains(grid.IV(i, j)) {
					continue
				}
				if j+1 <= crse.Geom.Domain.Hi.Y && coveredIdx.Contains(grid.IV(i, j+1)) {
					fc := crseFlux[ci].AtY(i, j+1)
					ffAvg, ok := fineYFaceAvg(fineIdx, fineFlux, i, (j+1)*ratio, ratio)
					if ok {
						applyCorrection(cf, i, j, dt/dy, sub(fc, ffAvg))
					}
				}
				if j-1 >= crse.Geom.Domain.Lo.Y && coveredIdx.Contains(grid.IV(i, j-1)) {
					fc := crseFlux[ci].AtY(i, j)
					ffAvg, ok := fineYFaceAvg(fineIdx, fineFlux, i, j*ratio, ratio)
					if ok {
						applyCorrection(cf, i, j, dt/dy, sub(ffAvg, fc))
					}
				}
			}
		}
	}
}

// fineFaceOwner resolves which flux field holds an x- or y-face. A face at
// fine coordinate k separates cells k-1 and k along its direction, so its
// owner is whichever fine box contains either adjacent cell; when both
// sides are covered the lower box index wins, matching the historical
// first-hit-of-a-linear-scan behavior exactly.
func fineFaceOwner(fineIdx *grid.BoxIndex, a, b grid.IntVect) int {
	oa, ob := fineIdx.Owner(a), fineIdx.Owner(b)
	switch {
	case oa < 0:
		return ob
	case ob < 0:
		return oa
	case oa < ob:
		return oa
	default:
		return ob
	}
}

// fineXFaceAvg averages the ratio fine x-fluxes across the coarse face at
// fine face coordinate fx, coarse row j.
func fineXFaceAvg(fineIdx *grid.BoxIndex, fineFlux []*hydro.FluxField, fx, j, ratio int) (hydro.Cons, bool) {
	var sum hydro.Cons
	found := 0
	for fj := j * ratio; fj < (j+1)*ratio; fj++ {
		fi := fineFaceOwner(fineIdx, grid.IV(fx-1, fj), grid.IV(fx, fj))
		if fi >= 0 {
			ff := fineFlux[fi]
			if ff != nil && ff.ContainsXFace(fx, fj) {
				sum = add(sum, ff.AtX(fx, fj))
				found++
			}
		}
	}
	if found != ratio {
		return hydro.Cons{}, false
	}
	inv := 1.0 / float64(ratio)
	return hydro.Cons{Rho: sum.Rho * inv, Mx: sum.Mx * inv, My: sum.My * inv, E: sum.E * inv}, true
}

// fineYFaceAvg averages the ratio fine y-fluxes across the coarse face at
// coarse column i, fine face coordinate fy.
func fineYFaceAvg(fineIdx *grid.BoxIndex, fineFlux []*hydro.FluxField, i, fy, ratio int) (hydro.Cons, bool) {
	var sum hydro.Cons
	found := 0
	for fi2 := i * ratio; fi2 < (i+1)*ratio; fi2++ {
		fbi := fineFaceOwner(fineIdx, grid.IV(fi2, fy-1), grid.IV(fi2, fy))
		if fbi >= 0 {
			ff := fineFlux[fbi]
			if ff != nil && ff.ContainsYFace(fi2, fy) {
				sum = add(sum, ff.AtY(fi2, fy))
				found++
			}
		}
	}
	if found != ratio {
		return hydro.Cons{}, false
	}
	inv := 1.0 / float64(ratio)
	return hydro.Cons{Rho: sum.Rho * inv, Mx: sum.Mx * inv, My: sum.My * inv, E: sum.E * inv}, true
}

func add(a, b hydro.Cons) hydro.Cons {
	return hydro.Cons{Rho: a.Rho + b.Rho, Mx: a.Mx + b.Mx, My: a.My + b.My, E: a.E + b.E}
}

func sub(a, b hydro.Cons) hydro.Cons {
	return hydro.Cons{Rho: a.Rho - b.Rho, Mx: a.Mx - b.Mx, My: a.My - b.My, E: a.E - b.E}
}

func applyCorrection(f *amr.FAB, i, j int, scale float64, d hydro.Cons) {
	f.Add(i, j, hydro.IRho, scale*d.Rho)
	f.Add(i, j, hydro.IMx, scale*d.Mx)
	f.Add(i, j, hydro.IMy, scale*d.My)
	f.Add(i, j, hydro.IEner, scale*d.E)
}
