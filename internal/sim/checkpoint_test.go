package sim

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"amrproxyio/internal/iosim"
)

func realFS(t *testing.T) (*iosim.FileSystem, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := iosim.DefaultConfig()
	cfg.Backend = iosim.RealDisk
	cfg.JitterSigma = 0
	return iosim.New(cfg, dir), dir
}

func TestCheckpointCadence(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxStep = 12
	cfg.CheckInt = 4
	cfg.PlotInt = 0
	fs, _ := realFS(t)
	s, err := New(cfg, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWithCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if s.NCheckpoints() != 3 { // steps 4, 8, 12
		t.Errorf("checkpoints = %d, want 3", s.NCheckpoints())
	}
	if len(s.CheckpointRecords()) == 0 {
		t.Error("no checkpoint records")
	}
	// Plot records stay separate (none were requested).
	if len(s.Records()) != 0 {
		t.Error("plot records polluted by checkpoints")
	}
}

func TestCheckpointRestartExactResume(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxStep = 10
	cfg.CheckInt = 6
	cfg.PlotInt = 0
	cfg.RegridInt = 2

	// Reference: run 10 steps straight through.
	ref, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for ref.Step < 10 {
		ref.Advance()
		if ref.Step%cfg.RegridInt == 0 {
			if err := ref.Regrid(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Checkpointed: run 6 steps, dump, restart, run 4 more.
	fs, dir := realFS(t)
	first, err := New(cfg, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for first.Step < 6 {
		first.Advance()
		if first.Step%cfg.RegridInt == 0 {
			if err := first.Regrid(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := first.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	chkDir := filepath.Join(dir, fmt.Sprintf("%s%05d", cfg.CheckFile, 6))
	resumed, err := Restore(chkDir, cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Step != 6 || resumed.Time != first.Time || resumed.LastDt != first.LastDt {
		t.Fatalf("restart state: step=%d time=%g dt=%g, want %d/%g/%g",
			resumed.Step, resumed.Time, resumed.LastDt, first.Step, first.Time, first.LastDt)
	}
	// Resumed hierarchy matches the checkpointed one exactly.
	if len(resumed.Levels) != len(first.Levels) {
		t.Fatalf("levels = %d, want %d", len(resumed.Levels), len(first.Levels))
	}
	for l := range resumed.Levels {
		if resumed.Levels[l].BA.Len() != first.Levels[l].BA.Len() {
			t.Errorf("level %d box count differs", l)
		}
	}
	for resumed.Step < 10 {
		resumed.Advance()
		if resumed.Step%cfg.RegridInt == 0 {
			if err := resumed.Regrid(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The resumed run must match the straight-through run bit-for-bit:
	// same steps, same dt history effects, same state digests.
	if math.Abs(resumed.Time-ref.Time) > 1e-15 {
		t.Errorf("time diverged: %g vs %g", resumed.Time, ref.Time)
	}
	da, db := resumed.StateDigest(), ref.StateDigest()
	if len(da) != len(db) {
		t.Fatalf("level counts differ: %d vs %d", len(da), len(db))
	}
	for l := range da {
		for k := range da[l] {
			if da[l][k] != db[l][k] {
				// Allow tiny roundoff from the restart's fillpatch pass.
				rel := math.Abs(da[l][k]-db[l][k]) / (math.Abs(db[l][k]) + 1e-300)
				if rel > 1e-12 {
					t.Errorf("level %d digest[%d]: %g vs %g", l, k, da[l][k], db[l][k])
				}
			}
		}
	}
}

func TestRestoreRejectsBadInputs(t *testing.T) {
	if _, err := Restore(t.TempDir(), smallCfg(), DefaultOptions(), nil); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestCheckpointBytesMirrorNtoN(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxStep = 4
	cfg.CheckInt = 4
	cfg.PlotInt = 0
	fs, _ := realFS(t)
	s, err := New(cfg, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWithCheckpoints(); err != nil {
		t.Fatal(err)
	}
	recs := s.CheckpointRecords()
	if len(recs) == 0 {
		t.Fatal("no checkpoint records")
	}
	ranks := map[int]bool{}
	for _, r := range recs {
		if r.Bytes <= 0 {
			t.Errorf("bad record %+v", r)
		}
		ranks[r.Rank] = true
	}
	if len(ranks) < 2 {
		t.Errorf("checkpoint not N-to-N: ranks %v", ranks)
	}
}
