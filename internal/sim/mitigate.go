package sim

import (
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/resilience"
)

// Closed-loop mitigation hooks (internal/resilience): the run loops
// route plot and checkpoint bursts through these so an installed policy
// engine can shed plots under fault pressure and retime checkpoints to
// the observed Young/Daly interval. With no engine (the common case)
// every hook collapses to the historical path — the engine methods are
// all nil-receiver no-ops — keeping policy-free runs byte-identical.

// maybePlot writes the scheduled plotfile unless degraded-mode output
// sheds it; written bursts feed the engine's burst-wall estimate.
func (s *Sim) maybePlot() error {
	if s.engine != nil && s.engine.ShedPlot(s.fs, s.plotBytesEstimate()) {
		return nil
	}
	t0 := s.engine.Clock(s.fs)
	if err := s.WritePlot(); err != nil {
		return err
	}
	s.engine.BurstWritten(s.fs, t0, false)
	return nil
}

// maybeAdaptiveCheckpoint writes a checkpoint when the adaptive cadence
// calls for one (never on a fixed schedule — that path stays in
// RunWithCheckpoints).
func (s *Sim) maybeAdaptiveCheckpoint() error {
	if s.fs == nil || !s.engine.Adaptive() || !s.engine.CheckpointDue(s.fs) {
		return nil
	}
	return s.writeCheckpointTracked()
}

// writeCheckpointTracked is WriteCheckpoint plus engine bookkeeping.
func (s *Sim) writeCheckpointTracked() error {
	t0 := s.engine.Clock(s.fs)
	if err := s.WriteCheckpoint(); err != nil {
		return err
	}
	s.engine.BurstWritten(s.fs, t0, true)
	return nil
}

// plotBytesEstimate is the nominal Cell_D payload of a plot burst over
// the current hierarchy — what ShedPlot records as shed bytes.
func (s *Sim) plotBytesEstimate() int64 {
	var total int64
	for _, lev := range s.Levels {
		idx := make([]int, len(lev.BA.Boxes))
		for i := range idx {
			idx[i] = i
		}
		total += plotfile.CellDBytes(lev.BA, idx, len(PlotVarNames))
	}
	return total
}

// Mitigation returns the engine's action counters, or nil when no
// mitigation policy ran.
func (s *Sim) Mitigation() *resilience.Stats { return s.engine.Stats() }
