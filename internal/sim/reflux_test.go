package sim

import (
	"math"
	"testing"

	"amrproxyio/internal/hydro"
)

// compositeMass integrates density over the composite mesh: uncovered
// coarse cells at their area plus fine cells at theirs. Because
// average-down overwrites covered coarse cells, summing level 0 after
// average-down equals the composite integral.
func compositeMass(s *Sim) float64 {
	return hydro.TotalMass(s.Levels[0].State, s.Levels[0].Geom)
}

func compositeEnergy(s *Sim) float64 {
	return hydro.TotalEnergy(s.Levels[0].State, s.Levels[0].Geom)
}

// runDrift advances n steps (no regridding, so the hierarchy is fixed and
// the only conservation mechanism in play is the flux correction) and
// returns the relative mass and energy drift.
func runDrift(t *testing.T, reflux bool, n int) (massDrift, energyDrift float64) {
	t.Helper()
	cfg := smallCfg()
	cfg.MaxLevel = 2
	cfg.RegridInt = 0 // freeze the hierarchy
	opts := DefaultOptions()
	opts.Reflux = reflux
	s, err := New(cfg, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.FinestLevel() < 1 {
		t.Fatal("no refinement; reflux test needs a coarse-fine boundary")
	}
	m0, e0 := compositeMass(s), compositeEnergy(s)
	for i := 0; i < n; i++ {
		s.Advance()
	}
	m1, e1 := compositeMass(s), compositeEnergy(s)
	return math.Abs(m1-m0) / m0, math.Abs(e1-e0) / e0
}

func TestRefluxRestoresConservation(t *testing.T) {
	// 120 steps: enough for the dt ramp (init_shrink) to release and the
	// blast to push real flux through the coarse-fine boundary. Measured
	// without reflux: mass drift ~6e-4, energy drift ~3e-2.
	const steps = 120
	mOff, eOff := runDrift(t, false, steps)
	mOn, eOn := runDrift(t, true, steps)
	// With refluxing the composite integrals are conserved to roundoff;
	// without it the coarse-fine flux mismatch leaks mass and energy.
	if mOn > 1e-11 {
		t.Errorf("refluxed mass drift = %g, want ~machine precision", mOn)
	}
	if eOn > 1e-11 {
		t.Errorf("refluxed energy drift = %g, want ~machine precision", eOn)
	}
	if mOff < 1e-6 {
		t.Errorf("no-reflux mass drift suspiciously small (%g): test not exercising the boundary", mOff)
	}
	if eOff < 1e-4 {
		t.Errorf("no-reflux energy drift suspiciously small (%g)", eOff)
	}
	if mOff < 1000*math.Max(mOn, 1e-16) {
		t.Errorf("reflux made too little difference: off %g, on %g", mOff, mOn)
	}
}

func TestRefluxDoesNotChangeSingleLevelRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxLevel = 0
	run := func(reflux bool) [][]float64 {
		opts := DefaultOptions()
		opts.Reflux = reflux
		s, err := New(cfg, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			s.Advance()
		}
		return s.StateDigest()
	}
	a, b := run(true), run(false)
	for l := range a {
		for k := range a[l] {
			if a[l][k] != b[l][k] {
				t.Fatalf("single-level digests differ at [%d][%d]: %g vs %g", l, k, a[l][k], b[l][k])
			}
		}
	}
}

func TestFluxSweepsMatchPlainSweeps(t *testing.T) {
	// SweepXWithFlux/SweepYWithFlux must produce bit-identical states to
	// SweepX/SweepY; only the flux capture differs.
	cfg := smallCfg()
	cfg.MaxLevel = 1
	mk := func() *Sim {
		s, err := New(cfg, DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	ga := a.Opts.Blast.Gamma
	dt := a.ComputeDt()
	a.fillPatchAll()
	b.fillPatchAll()
	for li := range a.Levels {
		dx := a.Levels[li].Geom.CellSize[0]
		for idx, f := range a.Levels[li].State.FABs {
			hydro.SweepX(f, dt, dx, ga)
			hydro.SweepXWithFlux(b.Levels[li].State.FABs[idx], dt, dx, ga)
		}
	}
	for li := range a.Levels {
		for idx := range a.Levels[li].State.FABs {
			fa, fb := a.Levels[li].State.FABs[idx], b.Levels[li].State.FABs[idx]
			for k := range fa.Data {
				if fa.Data[k] != fb.Data[k] {
					t.Fatalf("level %d fab %d data[%d]: %g vs %g", li, idx, k, fa.Data[k], fb.Data[k])
				}
			}
		}
	}
}

func TestFluxTelescoping(t *testing.T) {
	// Within one FAB, the captured fluxes must telescope: the total mass
	// change equals dt/dx * (inflow - outflow) summed over boundary faces.
	cfg := smallCfg()
	cfg.MaxLevel = 0
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Opts.Blast.Gamma
	dt := s.ComputeDt()
	s.fillPatchAll()
	lev := s.Levels[0]
	dx := lev.Geom.CellSize[0]
	f := lev.State.FABs[0]
	before := f.Sum(hydro.IRho)
	ff := hydro.SweepXWithFlux(f, dt, dx, g)
	after := f.Sum(hydro.IRho)

	var boundary float64
	vb := f.ValidBox
	for j := vb.Lo.Y; j <= vb.Hi.Y; j++ {
		boundary += ff.AtX(vb.Lo.X, j).Rho - ff.AtX(vb.Hi.X+1, j).Rho
	}
	want := dt / dx * boundary
	if math.Abs((after-before)-want) > 1e-10*math.Abs(before) {
		t.Errorf("mass change %g != boundary flux %g", after-before, want)
	}
}
