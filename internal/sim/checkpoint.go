package sim

import (
	"fmt"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/hydro"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/plotfile"
)

// Checkpoint-restart integration: the driver writes checkpoints on the
// amr.check_int cadence (same N-to-N pattern as plotfiles, carrying the
// conserved state) and can resume exactly from one.

// ShouldCheckpoint reports whether the current step is a checkpoint step.
// Step 0 is excluded: a fresh run's initial state is reproducible from the
// inputs file, matching AMReX's default behavior.
func (s *Sim) ShouldCheckpoint() bool {
	return s.Cfg.CheckInt > 0 && s.Step > 0 && s.Step%s.Cfg.CheckInt == 0
}

// WriteCheckpoint emits a checkpoint of the conserved state. Like
// WritePlot it runs the inter-burst layout reorganization first when
// Opts.Remap is set — checkpoints move the same per-rank volumes.
func (s *Sim) WriteCheckpoint() error {
	if s.fs == nil {
		return fmt.Errorf("sim: no filesystem configured")
	}
	s.remapTargets()
	spec := plotfile.CheckpointSpec{
		Root:   fmt.Sprintf("%s%05d", s.Cfg.CheckFile, s.Step),
		Time:   s.Time,
		Step:   s.Step,
		LastDt: s.LastDt,
		NComp:  hydro.NCons,
		NProcs: s.Cfg.NProcs,
	}
	for l, lev := range s.Levels {
		spec.Levels = append(spec.Levels, plotfile.LevelSpec{
			Geom:     lev.Geom,
			BA:       lev.BA,
			DM:       lev.DM,
			RefRatio: s.Cfg.RefRatioAt(l),
			State:    lev.State,
		})
	}
	recs, err := plotfile.WriteCheckpoint(s.fs, spec)
	if err != nil {
		return err
	}
	s.checkpointRecords = append(s.checkpointRecords, recs...)
	s.nCheckpoints++
	return nil
}

// CheckpointRecords returns the checkpoint output ledger (kept separate
// from plot records: the paper's analysis covers plot files only).
func (s *Sim) CheckpointRecords() []plotfile.OutputRecord { return s.checkpointRecords }

// NCheckpoints returns how many checkpoints were written.
func (s *Sim) NCheckpoints() int { return s.nCheckpoints }

// Restore builds a Sim from a checkpoint directory previously written
// through a RealDisk filesystem. The configuration must match the original
// run (it supplies everything the checkpoint does not carry, e.g. CFL and
// regrid cadence).
func Restore(dir string, cfg inputs.CastroInputs, opts Options, fs *iosim.FileSystem) (*Sim, error) {
	rs, err := plotfile.ReadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if rs.NComp != hydro.NCons {
		return nil, fmt.Errorf("sim: checkpoint has %d components, want %d", rs.NComp, hydro.NCons)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{Cfg: cfg, Opts: opts, fs: fs, Step: rs.Step, Time: rs.Time, LastDt: rs.LastDt}
	for _, lev := range rs.Levels {
		state := plotfile.FillMultiFabFromRestart(lev, hydro.NCons, nGhost)
		s.Levels = append(s.Levels, &Level{
			Geom: lev.Geom,
			// The restart reader assembles Boxes directly; re-wrap so the
			// level carries a cached spatial index like a live hierarchy.
			BA:    amr.NewBoxArray(lev.BA.Boxes),
			DM:    lev.DM,
			State: state,
		})
	}
	if len(s.Levels) == 0 {
		return nil, fmt.Errorf("sim: checkpoint has no levels")
	}
	s.fillPatchAll()
	return s, nil
}

// RunWithCheckpoints is Run plus checkpoint output on the check_int
// cadence. When the mitigation policy owns the cadence
// (AdaptiveCheckpoint), the fixed schedule stands down and checkpoints
// land on the engine's Young/Daly retiming instead.
func (s *Sim) RunWithCheckpoints() error {
	if s.ShouldPlot() && s.fs != nil {
		if err := s.maybePlot(); err != nil {
			return err
		}
	}
	for s.Step < s.Cfg.MaxStep {
		if s.Cfg.StopTime > 0 && s.Time >= s.Cfg.StopTime {
			break
		}
		s.Advance()
		if s.Cfg.RegridInt > 0 && s.Step%s.Cfg.RegridInt == 0 && s.Cfg.MaxLevel > 0 {
			if err := s.Regrid(); err != nil {
				return err
			}
		}
		if s.ShouldPlot() && s.fs != nil {
			if err := s.maybePlot(); err != nil {
				return err
			}
		}
		if s.engine.Adaptive() {
			if err := s.maybeAdaptiveCheckpoint(); err != nil {
				return err
			}
		} else if s.ShouldCheckpoint() && s.fs != nil {
			if err := s.writeCheckpointTracked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// StateDigest summarizes the conserved state for exact comparison in
// restart tests: per-level (sum, min, max) of each component.
func (s *Sim) StateDigest() [][]float64 {
	var out [][]float64
	for _, lev := range s.Levels {
		row := make([]float64, 0, hydro.NCons*3)
		for c := 0; c < hydro.NCons; c++ {
			row = append(row, lev.State.Sum(c), lev.State.Min(c), lev.State.Max(c))
		}
		out = append(out, row)
	}
	return out
}
