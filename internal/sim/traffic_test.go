package sim

import (
	"reflect"
	"testing"

	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
)

func TestExchangeTrafficDeterministicAndPriced(t *testing.T) {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{64, 64}
	cfg.MaxLevel = 1
	cfg.NProcs = 4
	cfg.MaxGridSize = 16
	cfg.BlockingFactor = 8
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	traffic := s.ExchangeTraffic()
	if len(traffic) == 0 {
		t.Fatal("a 4-rank multi-box hierarchy must exchange ghosts")
	}
	if !reflect.DeepEqual(traffic, s.ExchangeTraffic()) {
		t.Fatal("ExchangeTraffic is not deterministic")
	}
	for i := 1; i < len(traffic); i++ {
		a, b := traffic[i-1], traffic[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
			t.Fatal("traffic not sorted by (src, dst)")
		}
	}

	// Packing all 4 ranks on one node makes the exchange free of NIC
	// traffic; spreading them across 4 nodes prices every cross-rank pair.
	packed := iosim.Topology{Nodes: 1, NICBandwidth: 1e9}
	spread := iosim.Topology{Nodes: 4, RanksPerNode: 1, NICBandwidth: 1e9}
	if got := packed.ExchangeTime(traffic, cfg.NProcs, 0); got != 0 {
		t.Errorf("single-node exchange time = %g, want 0", got)
	}
	var cross bool
	for _, p := range traffic {
		if p.Src != p.Dst {
			cross = true
		}
	}
	if !cross {
		t.Fatal("expected cross-rank traffic in a 4-rank decomposition")
	}
	if got := spread.ExchangeTime(traffic, cfg.NProcs, 0); got <= 0 {
		t.Errorf("4-node exchange time = %g, want > 0", got)
	}
}
