package sim

import (
	"sort"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/iosim"
)

// Mesh-traffic view of the hierarchy: the same cached communication plans
// that drive ghost exchange also yield per-rank-pair byte volumes, so the
// solver's halo traffic and its checkpoint/plot bursts can be priced by
// one topology contention model (iosim.Topology).

// ExchangeTraffic returns the per-rank-pair ghost-exchange volume of the
// current hierarchy — every level's FillBoundary traffic for the solver's
// stencil width and conserved components, summed per (src, dst) pair and
// sorted. Feed it to iosim.Topology.ExchangeTime to estimate the halo
// cost per step under per-node NIC caps.
func (s *Sim) ExchangeTraffic() []iosim.PairBytes {
	var perLevel [][]amr.PairTraffic
	for _, lev := range s.Levels {
		perLevel = append(perLevel, amr.FillBoundaryTraffic(lev.BA, lev.DM, nGhost, lev.State.NComp))
	}
	return MergeExchangeTraffic(perLevel)
}

// MergeExchangeTraffic sums per-level rank-pair volumes into one sorted
// set of contention-model pairs (shared with the surrogate runner).
func MergeExchangeTraffic(perLevel [][]amr.PairTraffic) []iosim.PairBytes {
	agg := map[[2]int]int64{}
	for _, pairs := range perLevel {
		for _, p := range pairs {
			agg[[2]int{p.Src, p.Dst}] += p.Bytes
		}
	}
	out := make([]iosim.PairBytes, 0, len(agg))
	for k, b := range agg {
		out = append(out, iosim.PairBytes{Src: k[0], Dst: k[1], Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
