// Package sim is the Castro-like AMR driver: it owns the level hierarchy,
// runs the time-step loop with CFL control, regrids on the configured
// cadence, and emits plotfiles on the plot_int cadence — producing exactly
// the (timestep, level, task) output hierarchy the paper measures (its
// Eq. 2).
//
// Differences from Castro are documented in DESIGN.md; the load-bearing
// one is non-subcycled time stepping (all levels advance with the finest
// stable dt), which leaves the plotfile structure and sizes untouched
// because plots are scheduled on coarse-level step counts.
package sim

import (
	"fmt"
	"math"

	"amrproxyio/internal/amr"
	"amrproxyio/internal/grid"
	"amrproxyio/internal/hydro"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/resilience"
	"amrproxyio/internal/sedov"
)

// PlotVarNames are the components written to plotfiles: the four conserved
// fields plus six derived ones, mirroring the breadth of Castro's
// amr.derive_plot_vars=ALL output (which is what makes the paper's Eq. 3
// correction factor f as large as it is).
var PlotVarNames = []string{
	"density", "xmom", "ymom", "rho_E",
	"pressure", "x_velocity", "y_velocity", "MachNumber", "Temp", "soundspeed",
}

// Options collects the knobs beyond the Castro inputs file.
type Options struct {
	Dist         amr.DistStrategy
	TagThreshold float64 // relative density-gradient refinement threshold
	ErrorBuf     int     // tag buffer cells (amr.n_error_buf)
	Interp       amr.InterpKind
	Blast        sedov.Params
	RInit        float64    // initial deposit radius (physical units)
	Center       [2]float64 // blast center
	// Reflux enables the Berger–Colella coarse-fine flux correction,
	// keeping the composite solution conservative as Castro does.
	Reflux bool
	// Remap enables the inter-burst layout reorganization (Wan et al.):
	// before every plot/checkpoint burst the rank→storage-target mapping
	// is rebuilt from the hierarchy's per-rank load via
	// amr.RemapToTargets. A no-op unless the filesystem's Topology models
	// storage targets.
	Remap bool
	// StepSeconds models the compute phase between time steps on the
	// filesystem clocks: after each Advance, every rank's clock moves
	// forward by this much, so bursts are separated by compute gaps and
	// an asynchronous burst-buffer drain (iosim Storage "bb"/"bb+gpfs")
	// overlaps compute the way the paper's runs do. 0 (the default)
	// keeps the historical clocks byte-identical.
	StepSeconds float64
	// Mitigate enables the closed-loop fault-mitigation policy engine
	// (internal/resilience): adaptive checkpoint cadence, target
	// quarantine, and degraded-mode output, driven between bursts by the
	// run's own fault events. A nil or zero policy (or a filesystem
	// without a fault injector) builds no engine and keeps every path
	// byte-identical.
	Mitigate *resilience.Policy
}

// DefaultOptions mirrors the Castro Sedov problem setup.
func DefaultOptions() Options {
	return Options{
		Dist:         amr.DistKnapsack,
		TagThreshold: 0.5,
		ErrorBuf:     2,
		Interp:       amr.InterpCellConsLinear,
		Blast:        sedov.Default(),
		RInit:        0.02,
		Center:       [2]float64{0.5, 0.5},
		Reflux:       true,
	}
}

// Level is one mesh level of the hierarchy.
type Level struct {
	Geom  grid.Geom
	BA    amr.BoxArray
	DM    amr.DistributionMapping
	State *amr.MultiFab
}

// Sim is the running simulation.
type Sim struct {
	Cfg  inputs.CastroInputs
	Opts Options

	Levels []*Level // Levels[0] always present; finer levels may be absent
	Step   int
	Time   float64
	LastDt float64

	fs      *iosim.FileSystem
	records []plotfile.OutputRecord
	nPlots  int

	checkpointRecords []plotfile.OutputRecord
	nCheckpoints      int

	// engine is the between-burst mitigation engine; nil (the common
	// case) disables mitigation with zero overhead.
	engine *resilience.Engine
}

const nGhost = 2 // MUSCL-Hancock stencil width

// New builds the initial hierarchy at t=0: level 0 from the inputs'
// domain, then finer levels grown iteratively from gradient tags, each
// re-initialized with the analytic initial condition. fs receives all
// plotfile writes (it may be nil if the caller never plots).
func New(cfg inputs.CastroInputs, opts Options, fs *iosim.FileSystem) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{Cfg: cfg, Opts: opts, fs: fs}
	s.engine = resilience.ForFileSystem(opts.Mitigate, fs, cfg.NProcs)
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(cfg.NCell[0]-1, cfg.NCell[1]-1))
	g0 := grid.NewGeom(dom, cfg.ProbLo, cfg.ProbHi)
	ba0 := amr.SingleBoxArray(dom, cfg.MaxGridSize, cfg.BlockingFactor)
	dm0, err := amr.Distribute(ba0, cfg.NProcs, opts.Dist)
	if err != nil {
		return nil, err
	}
	l0 := &Level{Geom: g0, BA: ba0, DM: dm0, State: amr.NewMultiFab(ba0, dm0, hydro.NCons, nGhost)}
	s.Levels = []*Level{l0}
	s.initLevelData(l0)

	// Iteratively build finer levels at t=0. Repeat the whole build a few
	// times so refinement of refined data stabilizes, as AMReX's
	// init_from_scratch does.
	for iter := 0; iter < 2; iter++ {
		for l := 0; l < cfg.MaxLevel; l++ {
			if l >= len(s.Levels) {
				break
			}
			ba := s.makeFineBoxArray(l)
			if ba.Len() == 0 {
				s.Levels = s.Levels[:l+1]
				break
			}
			dm, err := amr.Distribute(ba, cfg.NProcs, opts.Dist)
			if err != nil {
				return nil, err
			}
			fine := &Level{
				Geom:  s.Levels[l].Geom.Refine(cfg.RefRatioAt(l)),
				BA:    ba,
				DM:    dm,
				State: amr.NewMultiFab(ba, dm, hydro.NCons, nGhost),
			}
			if l+1 < len(s.Levels) {
				s.Levels[l+1] = fine
			} else {
				s.Levels = append(s.Levels, fine)
			}
			s.initLevelData(fine)
		}
	}
	s.averageDownAll()
	return s, nil
}

// initLevelData applies the Sedov initial condition on a level.
func (s *Sim) initLevelData(l *Level) {
	b := s.Opts.Blast
	hydro.SedovIC(l.State, l.Geom, b.Gamma, b.Rho0, b.P0, b.E, s.Opts.RInit, s.Opts.Center)
}

// FinestLevel returns the index of the finest active level.
func (s *Sim) FinestLevel() int { return len(s.Levels) - 1 }

// Records returns all plotfile output records accumulated so far.
func (s *Sim) Records() []plotfile.OutputRecord { return s.records }

// NPlots returns how many plotfiles have been written.
func (s *Sim) NPlots() int { return s.nPlots }

// fillPatchLevel fills ghosts of level l (coarse levels must already be
// patched).
func (s *Sim) fillPatchLevel(l int) {
	lev := s.Levels[l]
	if l == 0 {
		amr.FillPatch(lev.State, nil, lev.Geom.Domain, 1, s.Opts.Interp)
		return
	}
	amr.FillPatch(lev.State, s.Levels[l-1].State, lev.Geom.Domain, s.Cfg.RefRatioAt(l-1), s.Opts.Interp)
}

func (s *Sim) fillPatchAll() {
	for l := range s.Levels {
		s.fillPatchLevel(l)
	}
}

// ComputeDt returns the global CFL-limited time step across all levels,
// with Castro's init_shrink and change_max controls applied.
func (s *Sim) ComputeDt() float64 {
	g := s.Opts.Blast.Gamma
	minDt := math.Inf(1)
	for _, lev := range s.Levels {
		dx, dy := lev.Geom.CellSize[0], lev.Geom.CellSize[1]
		// Per-FAB signal-speed scans run in parallel; the min-reduction is
		// serial in box order, so dt stays deterministic.
		sums := make([]float64, len(lev.State.FABs))
		lev.State.ForEachFAB(func(i int, f *amr.FAB) {
			sx, sy := hydro.MaxSignalSpeed(f, dx, dy, g)
			sums[i] = sx + sy
		})
		for _, sum := range sums {
			if sum > 0 {
				if dt := s.Cfg.CFL / sum; dt < minDt {
					minDt = dt
				}
			}
		}
	}
	if math.IsInf(minDt, 1) {
		minDt = s.Cfg.StopTime / float64(max(s.Cfg.MaxStep, 1))
	}
	if s.Step == 0 {
		minDt *= s.Cfg.InitShrink
	} else if s.LastDt > 0 && minDt > s.Cfg.ChangeMax*s.LastDt {
		minDt = s.Cfg.ChangeMax * s.LastDt
	}
	if s.Cfg.StopTime > 0 && s.Time+minDt > s.Cfg.StopTime {
		minDt = s.Cfg.StopTime - s.Time
	}
	return minDt
}

// Advance takes one non-subcycled time step on every level: an x sweep on
// all levels (with coarse-fine refluxing), ghost refill, a y sweep (again
// refluxed), then average-down to keep coarse data consistent under
// refined regions.
func (s *Sim) Advance() {
	dt := s.ComputeDt()
	g := s.Opts.Blast.Gamma

	s.fillPatchAll()
	fluxes := s.sweepAll(dt, g, 0)
	if s.Opts.Reflux {
		for l := 0; l < len(s.Levels)-1; l++ {
			s.refluxX(l, dt, fluxes[l], fluxes[l+1])
		}
	}

	s.fillPatchAll()
	fluxes = s.sweepAll(dt, g, 1)
	if s.Opts.Reflux {
		for l := 0; l < len(s.Levels)-1; l++ {
			s.refluxY(l, dt, fluxes[l], fluxes[l+1])
		}
	}

	s.averageDownAll()
	s.Step++
	s.Time += dt
	s.LastDt = dt
}

// sweepAll advances every level in direction dir (0=x, 1=y), capturing
// per-FAB flux fields when refluxing is enabled (nil entries otherwise).
func (s *Sim) sweepAll(dt, gamma float64, dir int) [][]*hydro.FluxField {
	fluxes := make([][]*hydro.FluxField, len(s.Levels))
	for li, lev := range s.Levels {
		h := lev.Geom.CellSize[dir]
		fluxes[li] = make([]*hydro.FluxField, len(lev.State.FABs))
		lev.State.ForEachFAB(func(idx int, f *amr.FAB) {
			switch {
			case s.Opts.Reflux && dir == 0:
				fluxes[li][idx] = hydro.SweepXWithFlux(f, dt, h, gamma)
			case s.Opts.Reflux && dir == 1:
				fluxes[li][idx] = hydro.SweepYWithFlux(f, dt, h, gamma)
			case dir == 0:
				hydro.SweepX(f, dt, h, gamma)
			default:
				hydro.SweepY(f, dt, h, gamma)
			}
		})
	}
	return fluxes
}

func (s *Sim) averageDownAll() {
	for l := len(s.Levels) - 2; l >= 0; l-- {
		amr.AverageDown(s.Levels[l].State, s.Levels[l+1].State, s.Cfg.RefRatioAt(l))
	}
}

// makeFineBoxArray produces the BoxArray for level l+1 from tags on level
// l, including tags that keep the current level l+2 nested, clipped for
// proper nesting inside level l.
func (s *Sim) makeFineBoxArray(l int) amr.BoxArray {
	lev := s.Levels[l]
	s.fillPatchLevelChain(l)
	// Castro's Sedov setup tags on density and pressure gradients; the
	// energy field stands in for pressure (they are proportional at rest,
	// and both steepen at the shock).
	tags := amr.TagGradient(lev.State, hydro.IRho, s.Opts.TagThreshold)
	for _, p := range amr.TagGradient(lev.State, hydro.IEner, s.Opts.TagThreshold).Points() {
		tags.Add(p)
	}
	// Keep the existing grandchild level covered.
	if l+2 < len(s.Levels) {
		ratioProd := s.Cfg.RefRatioAt(l) * s.Cfg.RefRatioAt(l+1)
		for _, b := range s.Levels[l+2].BA.Boxes {
			cb := b.Coarsen(ratioProd)
			for j := cb.Lo.Y; j <= cb.Hi.Y; j++ {
				for i := cb.Lo.X; i <= cb.Hi.X; i++ {
					tags.Add(grid.IV(i, j))
				}
			}
		}
	}
	ba := amr.MakeFineBoxArray(tags, lev.Geom.Domain, s.Cfg.RefRatioAt(l),
		s.Cfg.BlockingFactor, s.Cfg.MaxGridSize, s.Cfg.GridEff, s.Opts.ErrorBuf)
	if l > 0 {
		ba = amr.EnforceNesting(ba, lev.BA, s.Cfg.RefRatioAt(l))
	}
	return ba
}

// fillPatchLevelChain patches levels 0..l in order (needed before tagging
// level l).
func (s *Sim) fillPatchLevelChain(l int) {
	for k := 0; k <= l; k++ {
		s.fillPatchLevel(k)
	}
}

// Regrid rebuilds every level above 0 from fresh tags, carrying data over
// from the old hierarchy where it overlaps and interpolating from the
// coarser level elsewhere. The only error source is an unknown
// distribution strategy, which New already rejects, so a validated Sim
// never fails here.
func (s *Sim) Regrid() error {
	for l := 0; l < s.Cfg.MaxLevel; l++ {
		if l >= len(s.Levels) {
			break
		}
		ba := s.makeFineBoxArray(l)
		if ba.Len() == 0 {
			s.Levels = s.Levels[:l+1]
			return nil
		}
		dm, err := amr.Distribute(ba, s.Cfg.NProcs, s.Opts.Dist)
		if err != nil {
			return err
		}
		ratio := s.Cfg.RefRatioAt(l)
		fine := &Level{
			Geom:  s.Levels[l].Geom.Refine(ratio),
			BA:    ba,
			DM:    dm,
			State: amr.NewMultiFab(ba, dm, hydro.NCons, nGhost),
		}
		// Fill new level: interpolate everything from the (already
		// regridded) coarse level, then overwrite with old same-level data
		// where it exists.
		s.fillPatchLevel(l)
		fine.State.ForEachFAB(func(_ int, f *amr.FAB) {
			amr.InterpRegion(f, s.Levels[l].State, f.ValidBox, ratio, s.Opts.Interp)
		})
		if l+1 < len(s.Levels) {
			s.Levels[l+1].State.CopyInto(fine.State)
			s.Levels[l+1] = fine
		} else {
			s.Levels = append(s.Levels, fine)
		}
	}
	s.averageDownAll()
	return nil
}

// ShouldPlot reports whether the current step is a plot step.
func (s *Sim) ShouldPlot() bool {
	return s.Cfg.PlotInt > 0 && s.Step%s.Cfg.PlotInt == 0
}

// WritePlot emits a plotfile for the current state through the filesystem
// model and accumulates the output records.
func (s *Sim) WritePlot() error {
	if s.fs == nil {
		return fmt.Errorf("sim: no filesystem configured")
	}
	if err := s.remapTargets(); err != nil {
		return err
	}
	spec := s.PlotSpec()
	recs, err := plotfile.Write(s.fs, spec)
	if err != nil {
		return err
	}
	s.records = append(s.records, recs...)
	s.nPlots++
	return nil
}

// remapTargets reorganizes the rank→storage-target layout for the
// upcoming I/O burst (Opts.Remap): each rank's load is the cell count it
// owns across all levels — proportional to the bytes it is about to
// write — and amr.RemapToTargets balances that fan-in across the
// topology's targets. Without target modeling the remap is nil and
// Retarget keeps the round-robin placement.
func (s *Sim) remapTargets() error {
	avoid := s.engine.AvoidTargets()
	if (!s.Opts.Remap && len(avoid) == 0) || s.fs == nil {
		return nil
	}
	var owner []int
	var loads []int64
	for _, lev := range s.Levels {
		for i, b := range lev.BA.Boxes {
			owner = append(owner, lev.DM.Owner[i])
			loads = append(loads, b.NumPts())
		}
	}
	topo := s.fs.Config().Topology
	s.engine.ScaleLoads(topo, s.Cfg.NProcs, owner, loads)
	// With two-phase aggregation active only aggregator ranks open files:
	// fold each owner onto its aggregator before balancing, else the
	// remap spreads fan-in across member ranks that never write and
	// double-counts their load against the aggregator's target.
	if am := s.fs.Config().Aggregation.AggregatorMap(topo, s.Cfg.NProcs); am != nil {
		for i, o := range owner {
			if o >= 0 && o < len(am) {
				owner[i] = am[o]
			}
		}
	}
	m := amr.RemapToTargetsAvoiding(amr.DistributionMapping{Owner: owner}, topo, loads, avoid)
	// The remap covers ranks up to the highest box owner; Retarget
	// validates full burst coverage, so pad box-less top ranks with
	// their round-robin placement.
	for r := len(m); m != nil && r < s.Cfg.NProcs; r++ {
		m = append(m, r%topo.Targets)
	}
	return s.fs.Retarget(m)
}

// PlotSpec assembles the current hierarchy into a plotfile spec with the
// derived plot variables computed.
func (s *Sim) PlotSpec() plotfile.Spec {
	spec := plotfile.Spec{
		Root:     fmt.Sprintf("%s%05d", s.Cfg.PlotFile, s.Step),
		VarNames: PlotVarNames,
		Time:     s.Time,
		Step:     s.Step,
		NProcs:   s.Cfg.NProcs,
	}
	for l, lev := range s.Levels {
		plotMF := s.derivePlotData(lev)
		spec.Levels = append(spec.Levels, plotfile.LevelSpec{
			Geom:     lev.Geom,
			BA:       lev.BA,
			DM:       lev.DM,
			RefRatio: s.Cfg.RefRatioAt(l),
			State:    plotMF,
		})
	}
	return spec
}

// derivePlotData builds the 10-component plot MultiFab from the conserved
// state.
func (s *Sim) derivePlotData(lev *Level) *amr.MultiFab {
	g := s.Opts.Blast.Gamma
	out := amr.NewMultiFab(lev.BA, lev.DM, len(PlotVarNames), 0)
	out.ForEachFAB(func(idx int, of *amr.FAB) {
		sf := lev.State.FABs[idx]
		for j := of.ValidBox.Lo.Y; j <= of.ValidBox.Hi.Y; j++ {
			for i := of.ValidBox.Lo.X; i <= of.ValidBox.Hi.X; i++ {
				c := hydro.Cons{
					Rho: sf.At(i, j, hydro.IRho),
					Mx:  sf.At(i, j, hydro.IMx),
					My:  sf.At(i, j, hydro.IMy),
					E:   sf.At(i, j, hydro.IEner),
				}
				w := hydro.ToPrim(c, g)
				cs := hydro.SoundSpeed(w, g)
				of.Set(i, j, 0, c.Rho)
				of.Set(i, j, 1, c.Mx)
				of.Set(i, j, 2, c.My)
				of.Set(i, j, 3, c.E)
				of.Set(i, j, 4, w.P)
				of.Set(i, j, 5, w.U)
				of.Set(i, j, 6, w.V)
				of.Set(i, j, 7, hydro.Mach(w, g))
				of.Set(i, j, 8, w.P/w.Rho) // ideal-gas temperature, R=1
				of.Set(i, j, 9, cs)
			}
		}
	})
	return out
}

// Run executes the whole simulation: plot at step 0, then advance,
// regridding every regrid_int steps and plotting every plot_int steps,
// until max_step or stop_time. Plotting can be disabled with PlotInt<=0.
func (s *Sim) Run() error {
	if s.ShouldPlot() && s.fs != nil {
		if err := s.maybePlot(); err != nil {
			return err
		}
	}
	for s.Step < s.Cfg.MaxStep {
		if s.Cfg.StopTime > 0 && s.Time >= s.Cfg.StopTime {
			break
		}
		s.Advance()
		s.advanceClocks()
		if s.Cfg.RegridInt > 0 && s.Step%s.Cfg.RegridInt == 0 && s.Cfg.MaxLevel > 0 {
			if err := s.Regrid(); err != nil {
				return err
			}
		}
		if s.ShouldPlot() && s.fs != nil {
			if err := s.maybePlot(); err != nil {
				return err
			}
		}
		if err := s.maybeAdaptiveCheckpoint(); err != nil {
			return err
		}
	}
	return nil
}

// advanceClocks applies Options.StepSeconds of compute time to every
// rank's filesystem clock — the inter-burst gap asynchronous storage
// drains overlap with.
func (s *Sim) advanceClocks() {
	if s.Opts.StepSeconds <= 0 || s.fs == nil {
		return
	}
	for r := 0; r < s.Cfg.NProcs; r++ {
		s.fs.AdvanceClock(r, s.Opts.StepSeconds)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
