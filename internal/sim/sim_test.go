package sim

import (
	"math"
	"testing"

	"amrproxyio/internal/grid"
	"amrproxyio/internal/hydro"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/sedov"
)

// smallCfg returns a fast configuration for tests.
func smallCfg() inputs.CastroInputs {
	c := inputs.DefaultCastroInputs()
	c.NCell = [2]int{32, 32}
	c.MaxLevel = 2
	c.MaxStep = 10
	c.PlotInt = 5
	c.RegridInt = 2
	c.MaxGridSize = 16
	c.BlockingFactor = 8
	c.NProcs = 4
	c.StopTime = 1.0 // effectively unlimited for 10 steps
	return c
}

func modelFS() *iosim.FileSystem {
	cfg := iosim.DefaultConfig()
	cfg.JitterSigma = 0
	return iosim.New(cfg, "")
}

func TestNewBuildsRefinedHierarchy(t *testing.T) {
	s, err := New(smallCfg(), DefaultOptions(), modelFS())
	if err != nil {
		t.Fatal(err)
	}
	if s.FinestLevel() < 1 {
		t.Fatalf("expected refinement around the blast, finest = %d", s.FinestLevel())
	}
	// Fine levels must be properly nested and within their domains.
	for l := 1; l < len(s.Levels); l++ {
		fineDom := s.Levels[l].Geom.Domain
		for _, b := range s.Levels[l].BA.Boxes {
			if !fineDom.ContainsBox(b) {
				t.Errorf("level %d box %v outside domain %v", l, b, fineDom)
			}
		}
		ratio := s.Cfg.RefRatioAt(l - 1)
		for _, b := range s.Levels[l].BA.Boxes {
			if !s.Levels[l-1].BA.ContainsBox(b.Coarsen(ratio)) {
				t.Errorf("level %d box %v not nested in level %d", l, b, l-1)
			}
		}
		if !s.Levels[l].BA.IsDisjoint() {
			t.Errorf("level %d boxes overlap", l)
		}
	}
	// The refined region must cover the blast center.
	center := grid.IV(s.Cfg.NCell[0]/2*2, s.Cfg.NCell[1]/2*2) // level-1 index space
	_ = center
	l1 := s.Levels[1]
	found := false
	cx := int(0.5 / l1.Geom.CellSize[0])
	for _, b := range l1.BA.Boxes {
		if b.Contains(grid.IV(cx, cx)) {
			found = true
			break
		}
	}
	if !found {
		t.Error("level 1 does not cover the blast center")
	}
}

func TestComputeDtInitShrinkAndChangeMax(t *testing.T) {
	cfg := smallCfg()
	cfg.InitShrink = 0.01
	cfg.ChangeMax = 1.1
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dt0 := s.ComputeDt()
	// First step is shrunk by init_shrink; undoing it gives the CFL dt.
	s.Advance()
	dt1 := s.ComputeDt()
	if dt1 > 1.1*s.LastDt*(1+1e-12) {
		t.Errorf("dt growth %g exceeds change_max * last (%g)", dt1, 1.1*s.LastDt)
	}
	if dt0 >= dt1 {
		t.Errorf("init_shrink did not reduce first dt: dt0=%g dt1=%g", dt0, dt1)
	}
}

func TestAdvanceConservesMassGlobally(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxLevel = 1 // keep runtime small
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mass0 := hydro.TotalMass(s.Levels[0].State, s.Levels[0].Geom)
	for i := 0; i < 5; i++ {
		s.Advance()
	}
	// With refluxing on (the default) the composite mass — level-0 after
	// average-down — is conserved to machine precision while the blast
	// stays in the interior. Regridding between steps can move small
	// amounts through interpolation, so this test runs without regrids.
	mass1 := hydro.TotalMass(s.Levels[0].State, s.Levels[0].Geom)
	if rel := math.Abs(mass1-mass0) / mass0; rel > 1e-11 {
		t.Errorf("mass drift = %g", rel)
	}
	if s.Time <= 0 || s.Step != 5 {
		t.Errorf("time/step = %g/%d", s.Time, s.Step)
	}
}

func TestBlastExpandsAndLevelsTrackIt(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxStep = 30
	cfg.PlotInt = 0 // no plotting
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cells0 := s.Levels[1].BA.NumPts()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Step != 30 {
		t.Fatalf("step = %d", s.Step)
	}
	cells1 := s.Levels[1].BA.NumPts()
	if cells1 <= cells0 {
		t.Errorf("refined region did not grow with the blast: %d -> %d", cells0, cells1)
	}
	// The flow is still spinning up after 30 steps (init_shrink = 0.01
	// damps the first dt by 100x and change_max releases it slowly), so
	// require a developing outward flow rather than the asymptotic
	// post-shock Mach ~1.9.
	lev := s.Levels[s.FinestLevel()]
	plot := s.derivePlotData(lev)
	if m := plot.Max(7); m < 0.3 {
		t.Errorf("peak Mach = %g, expected a developing outward flow", m)
	}
	// Pressure far above ambient confirms the blast is live.
	if p := plot.Max(4); p < 100*1e-5 {
		t.Errorf("peak pressure = %g, blast missing", p)
	}
}

func TestRunPlotCount(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxStep = 10
	cfg.PlotInt = 5
	fs := modelFS()
	s, err := New(cfg, DefaultOptions(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Plots at steps 0, 5, 10.
	if s.NPlots() != 3 {
		t.Errorf("plots = %d, want 3", s.NPlots())
	}
	steps := map[int]bool{}
	for _, r := range s.Records() {
		steps[r.Step] = true
	}
	for _, want := range []int{0, 5, 10} {
		if !steps[want] {
			t.Errorf("no records for plot step %d", want)
		}
	}
	if fs.TotalBytes() == 0 {
		t.Error("no bytes written")
	}
}

func TestRecordsHaveEq2Structure(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxStep = 4
	cfg.PlotInt = 2
	cfg.NProcs = 4
	s, err := New(cfg, DefaultOptions(), modelFS())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	levels := map[int]bool{}
	ranks := map[int]bool{}
	for _, r := range recs {
		if r.Bytes <= 0 {
			t.Errorf("non-positive bytes in %+v", r)
		}
		levels[r.Level] = true
		ranks[r.Rank] = true
		if r.Rank < 0 || r.Rank >= 4 {
			t.Errorf("rank out of range: %+v", r)
		}
	}
	if !levels[0] || len(levels) < 2 {
		t.Errorf("levels seen = %v", levels)
	}
	if len(ranks) < 2 {
		t.Errorf("ranks seen = %v (want several tasks writing)", ranks)
	}
}

func TestL0BytesConstantAcrossSteps(t *testing.T) {
	// The paper's Fig. 7: L0 output is essentially constant because it is
	// a function of the user-input cell count only.
	cfg := smallCfg()
	cfg.MaxStep = 6
	cfg.PlotInt = 3
	s, err := New(cfg, DefaultOptions(), modelFS())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	perStepL0 := map[int]int64{}
	for _, r := range s.Records() {
		if r.Level == 0 {
			perStepL0[r.Step] += r.Bytes
		}
	}
	var first int64 = -1
	for _, b := range perStepL0 {
		if first < 0 {
			first = b
		} else if b != first {
			t.Errorf("L0 bytes vary across steps: %v", perStepL0)
			break
		}
	}
}

func TestRegridPreservesCoverage(t *testing.T) {
	cfg := smallCfg()
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Advance()
	}
	if err := s.Regrid(); err != nil {
		t.Fatal(err)
	}
	// After regrid, high-gradient cells on level 0 must be covered by
	// level 1 (up to the clustering efficiency slack).
	s.fillPatchLevelChain(0)
	if s.FinestLevel() < 1 {
		t.Fatal("refinement vanished")
	}
	// All fine boxes nested and disjoint.
	for l := 1; l < len(s.Levels); l++ {
		if !s.Levels[l].BA.IsDisjoint() {
			t.Errorf("level %d overlaps after regrid", l)
		}
		ratio := s.Cfg.RefRatioAt(l - 1)
		for _, b := range s.Levels[l].BA.Boxes {
			if !s.Levels[l-1].BA.ContainsBox(b.Coarsen(ratio)) {
				t.Errorf("level %d box %v not nested after regrid", l, b)
			}
		}
	}
}

func TestStopTimeHonored(t *testing.T) {
	cfg := smallCfg()
	cfg.StopTime = 1e-6 // tiny: only a couple of steps possible
	cfg.MaxStep = 1000
	cfg.PlotInt = 0
	s, err := New(cfg, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Time > cfg.StopTime+1e-15 {
		t.Errorf("time %g exceeded stop_time %g", s.Time, cfg.StopTime)
	}
	if s.Step >= 1000 {
		t.Error("run did not stop on stop_time")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := smallCfg()
	cfg.CFL = 2.0
	if _, err := New(cfg, DefaultOptions(), nil); err == nil {
		t.Error("invalid CFL accepted")
	}
}

func TestMaxLevelZeroRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxLevel = 0
	cfg.MaxStep = 3
	cfg.PlotInt = 1
	s, err := New(cfg, DefaultOptions(), modelFS())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.FinestLevel() != 0 {
		t.Errorf("finest = %d", s.FinestLevel())
	}
	if s.NPlots() != 4 {
		t.Errorf("plots = %d, want 4", s.NPlots())
	}
}

func TestHigherCFLProducesFewerOutputEventsPerTime(t *testing.T) {
	// Higher CFL -> larger dt -> the blast reaches a given physical time
	// in fewer steps; with plot_int fixed this changes output cadence —
	// the mechanism behind the paper's Fig. 6 CFL sensitivity.
	run := func(cfl float64) (float64, int) {
		cfg := smallCfg()
		cfg.CFL = cfl
		cfg.MaxLevel = 1
		cfg.MaxStep = 20
		cfg.PlotInt = 0
		s, err := New(cfg, DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Time, s.Step
	}
	t3, _ := run(0.3)
	t6, _ := run(0.6)
	if t6 <= t3 {
		t.Errorf("cfl 0.6 reached t=%g, cfl 0.3 reached t=%g; expected further progress", t6, t3)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.Blast != sedov.Default() {
		t.Error("blast params not defaulted")
	}
	if o.TagThreshold <= 0 || o.ErrorBuf < 0 {
		t.Errorf("bad defaults: %+v", o)
	}
	if len(PlotVarNames) != 10 {
		t.Errorf("PlotVarNames = %d entries", len(PlotVarNames))
	}
}

// TestStepSecondsSeparatesBursts: Options.StepSeconds advances every
// rank's filesystem clock between steps, so plot bursts are separated by
// compute gaps (the window an asynchronous storage drain overlaps);
// zero keeps the historical back-to-back clocks.
func TestStepSecondsSeparatesBursts(t *testing.T) {
	run := func(stepSeconds float64) *iosim.FileSystem {
		cfg := smallCfg()
		cfg.MaxStep = 4
		cfg.PlotInt = 2
		fs := modelFS()
		opts := DefaultOptions()
		opts.StepSeconds = stepSeconds
		s, err := New(cfg, opts, fs)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	plain := run(0)
	gapped := run(2.5)
	// 4 steps of compute time land on every rank's clock.
	for r := 0; r < 4; r++ {
		if diff := gapped.Clock(r) - plain.Clock(r); math.Abs(diff-4*2.5) > 1e-9 {
			t.Errorf("rank %d clock gained %g, want 10", r, diff)
		}
	}
	// The gaps appear between bursts: each burst's earliest start moves
	// later by the accumulated compute time.
	firstStart := func(fs *iosim.FileSystem, step int) float64 {
		first := math.Inf(1)
		for _, r := range fs.Ledger() {
			if r.Labels.Step == step && r.Start < first {
				first = r.Start
			}
		}
		return first
	}
	if d := firstStart(gapped, 2) - firstStart(plain, 2); math.Abs(d-2*2.5) > 1e-9 {
		t.Errorf("step-2 burst shifted by %g, want 5", d)
	}
	if d := firstStart(gapped, 4) - firstStart(plain, 4); math.Abs(d-4*2.5) > 1e-9 {
		t.Errorf("step-4 burst shifted by %g, want 10", d)
	}
}
