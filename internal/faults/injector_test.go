package faults

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"amrproxyio/internal/iosim"
)

// linkedConfig is a jitter-free two-node, two-target topology with a
// round 100 B/s per-writer stream, so expected durations are exact.
func linkedConfig() iosim.Config {
	return iosim.Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 100,
		Topology:           iosim.Topology{Nodes: 2, RanksPerNode: 1, Targets: 2},
	}
}

// bbConfig is the storage_test.go round-number buffer: one rank owns the
// node — capacity 100 B, fill 10 B/s, drain 5 B/s — and the GPFS
// baseline never binds.
func bbConfig(storage string) iosim.Config {
	return iosim.Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 1e12,
		Storage:            storage,
		BurstBuffer: iosim.BurstBuffer{
			NodeCapacity:   100,
			NodeBandwidth:  10,
			DrainBandwidth: 5,
			Nodes:          1,
			RanksPerNode:   1,
		},
	}
}

func exactly(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %g, want %g", what, got, want)
	}
}

// TestTargetOutageRetryAndFailover: a write through an out target pays
// the retry storm (3 attempts: 3*0.5s timeouts + 0.1s linear backoff =
// 2.1s), fails over to the next healthy target, and transfers at the
// snapshot bandwidth; the sibling rank on the healthy target is
// untouched.
func TestTargetOutageRetryAndFailover(t *testing.T) {
	cfg := linkedConfig()
	plan := &Plan{Events: []Event{{Kind: KindTargetOutage, Start: 0, End: 100, Target: 0}}}
	cfg.Faults = plan.Injector(cfg.Topology)
	fs := iosim.New(cfg, "")
	fs.BeginBurst(2)
	d0, err := fs.WriteSize(0, "a", 100, iosim.Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := fs.WriteSize(1, "b", 100, iosim.Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	fs.EndBurst()
	exactly(t, "faulted write duration", d0, plan.retrySeconds()+1)
	exactly(t, "healthy write duration", d1, 1)

	led := fs.Ledger()
	r0 := led[0]
	if r0.Fault != KindTargetOutage || r0.Retries != 3 {
		t.Fatalf("faulted record = %+v, want target-outage with 3 retries", r0)
	}
	exactly(t, "record FaultSeconds", r0.FaultSeconds, plan.retrySeconds())
	if r0.Target != 1 {
		t.Fatalf("faulted record target = %d, want failover to 1", r0.Target)
	}
	if r1 := led[1]; r1.Fault != "" || r1.Retries != 0 || r1.Target != 1 {
		t.Fatalf("healthy record = %+v, want unfaulted on target 1", r1)
	}

	evs := fs.FaultEvents()
	if len(evs) != 1 {
		t.Fatalf("FaultEvents = %+v, want one outage event", evs)
	}
	ev := evs[0]
	if ev.Kind != KindTargetOutage || ev.Rank != 0 || ev.Node != 0 ||
		ev.Target != 0 || ev.FailoverTarget != 1 || ev.Retries != 3 {
		t.Fatalf("event = %+v", ev)
	}
	exactly(t, "event Seconds", ev.Seconds, plan.retrySeconds())
}

// TestTargetOutageNoHealthyTarget: a wildcard outage leaves nowhere to
// fail over, so the write pays the storm and keeps its target.
func TestTargetOutageNoHealthyTarget(t *testing.T) {
	cfg := linkedConfig()
	plan := &Plan{Events: []Event{{Kind: KindTargetOutage, Start: 0, Target: -1}}}
	cfg.Faults = plan.Injector(cfg.Topology)
	fs := iosim.New(cfg, "")
	fs.BeginBurst(1)
	if _, err := fs.WriteSize(0, "a", 100, iosim.Labels{Step: 0}); err != nil {
		t.Fatal(err)
	}
	if r := fs.Ledger()[0]; r.Target != 0 {
		t.Fatalf("record target = %d, want original 0 (no healthy failover)", r.Target)
	}
	if ev := fs.FaultEvents()[0]; ev.FailoverTarget != -1 {
		t.Fatalf("event failover = %d, want -1", ev.FailoverTarget)
	}
}

// TestNICDegrade: a half-bandwidth window doubles the degraded node's
// write durations and leaves the other node alone; composed with an
// outage, the retry storm is stretched too.
func TestNICDegrade(t *testing.T) {
	cfg := linkedConfig()
	plan := &Plan{Events: []Event{{Kind: KindNICDegrade, Start: 0, End: 100, Node: 0, Factor: 0.5}}}
	cfg.Faults = plan.Injector(cfg.Topology)
	fs := iosim.New(cfg, "")
	fs.BeginBurst(2)
	d0, _ := fs.WriteSize(0, "a", 100, iosim.Labels{Step: 0})
	d1, _ := fs.WriteSize(1, "b", 100, iosim.Labels{Step: 0})
	exactly(t, "degraded duration", d0, 2)
	exactly(t, "healthy duration", d1, 1)
	led := fs.Ledger()
	if led[0].Fault != KindNICDegrade {
		t.Fatalf("degraded record = %+v", led[0])
	}
	exactly(t, "degraded FaultSeconds", led[0].FaultSeconds, 1)

	// Outage + degrade on the same write: the whole retry+transfer
	// stretches by 1/Factor and the outage labels the record.
	cfg = linkedConfig()
	both := &Plan{Events: []Event{
		{Kind: KindTargetOutage, Start: 0, Target: 0},
		{Kind: KindNICDegrade, Start: 0, Node: 0, Factor: 0.5},
	}}
	cfg.Faults = both.Injector(cfg.Topology)
	fs = iosim.New(cfg, "")
	fs.BeginBurst(2)
	d0, _ = fs.WriteSize(0, "a", 100, iosim.Labels{Step: 0})
	exactly(t, "composed duration", d0, 2*(both.retrySeconds()+1))
	r := fs.Ledger()[0]
	if r.Fault != KindTargetOutage || r.Retries != 3 {
		t.Fatalf("composed record = %+v", r)
	}
	exactly(t, "composed FaultSeconds", r.FaultSeconds, 2*both.retrySeconds()+1)
}

// TestBBLossReplayAndFallback: losing the partition replays the buffered
// backlog through the drain once, then writes fall back to the backing
// tier until the window closes; a single-tier stack ignores the event.
func TestBBLossReplayAndFallback(t *testing.T) {
	cfg := bbConfig(iosim.StorageBB)
	plan := &Plan{Events: []Event{{Kind: KindBBLoss, Start: 3, Node: -1}}}
	cfg.Faults = plan.Injector(cfg.Topology)
	fs := iosim.New(cfg, "")
	fs.BeginBurst(1)

	// 40 B at fill 10/drain 5 before the window: 4s transfer, leaving
	// 40 - 5*4 = 20 B buffered at t=4.
	d, err := fs.WriteSize(0, "a", 40, iosim.Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	exactly(t, "pre-loss duration", d, 4)

	// At t=4 the partition is lost: 20 B replay at the 5 B/s drain
	// (4s), then 10 B at the backing tier's 1e12 B/s (~0s).
	d, err = fs.WriteSize(0, "b", 10, iosim.Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	exactly(t, "replay duration", d, 4+10/1e12)
	led := fs.Ledger()
	r := led[1]
	if r.Fault != KindBBLoss || r.Tier != iosim.TierGPFS {
		t.Fatalf("lost-partition record = %+v", r)
	}
	exactly(t, "replay FaultSeconds", r.FaultSeconds, 4)

	// The backlog is only lost once: the next write just writes through.
	d, err = fs.WriteSize(0, "c", 10, iosim.Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	exactly(t, "fallback duration", d, 10/1e12)

	// Single-tier stacks have no buffer to lose: the event is inert and
	// the ledger matches a fault-free run exactly.
	for _, storage := range []string{iosim.StorageDefault, iosim.StorageGPFS} {
		base := linkedConfig()
		base.Storage = storage
		faulted := base
		faulted.Faults = plan.Injector(faulted.Topology)
		if !reflect.DeepEqual(driveOps(t, base), driveOps(t, faulted)) {
			t.Fatalf("bb-loss perturbed the %q single-tier ledger", storage)
		}
	}
}

// driveOps mirrors the storage_test.go property-pin harness: a seeded
// random schedule of bursts, writes, mkdirs, and compute gaps across 24
// ranks.
func driveOps(t *testing.T, cfg iosim.Config) []iosim.WriteRecord {
	t.Helper()
	fs := iosim.New(cfg, "")
	rng := rand.New(rand.NewSource(99))
	writers := 0
	for i := 0; i < 400; i++ {
		switch {
		case rng.Intn(10) == 0:
			writers = 1 + rng.Intn(48)
			fs.BeginBurst(writers)
			continue
		case writers > 0 && rng.Intn(12) == 0:
			writers = 0
			fs.EndBurst()
			continue
		case rng.Intn(16) == 0:
			fs.AdvanceClock(rng.Intn(16), rng.Float64())
			continue
		}
		rank := rng.Intn(24)
		path := "plt/Cell_D_" + string(rune('a'+rng.Intn(26)))
		if rng.Intn(8) == 0 {
			if err := fs.Mkdir(rank, path, iosim.Labels{Step: i % 6}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := fs.WriteSize(rank, path, int64(rng.Intn(1<<21)), iosim.Labels{Step: i % 6}); err != nil {
			t.Fatal(err)
		}
	}
	return fs.Ledger()
}

// pinConfig builds the realistic (jittered, topology-enabled) config the
// zero-plan pins run each storage stack under.
func pinConfig(storage string) iosim.Config {
	cfg := iosim.DefaultConfig()
	cfg.Storage = storage
	cfg.Topology = iosim.Topology{
		Nodes: 4, RanksPerNode: 6,
		NICBandwidth: 25e9, Targets: 3, TargetBandwidth: 16e9,
	}
	if storage == iosim.StorageBB || storage == iosim.StorageTiered {
		cfg.BurstBuffer = iosim.BurstBuffer{
			NodeCapacity:   1 << 22,
			NodeBandwidth:  2.1e9,
			DrainBandwidth: 1e9,
			Nodes:          4,
		}
	}
	return cfg
}

// TestZeroPlanByteIdentical is the acceptance pin: an absent plan (nil
// injector) and an installed injector whose schedule never fires both
// produce ledgers, burst statistics, and characterizations byte-identical
// to the fault-free stack — for all four storage selections.
func TestZeroPlanByteIdentical(t *testing.T) {
	// A non-zero plan (so an injector IS installed) whose windows start
	// beyond any simulated clock this workload reaches.
	dormant := &Plan{Events: []Event{
		{Kind: KindTargetOutage, Start: 1e12, Target: -1},
		{Kind: KindNICDegrade, Start: 1e12, Node: -1, Factor: 0.5},
		{Kind: KindBBLoss, Start: 1e12, Node: -1},
		{Kind: KindRankInterrupt, Start: 1e12, Rank: 0},
	}}
	for _, storage := range []string{
		iosim.StorageDefault, iosim.StorageGPFS, iosim.StorageBB, iosim.StorageTiered,
	} {
		t.Run("storage="+storage, func(t *testing.T) {
			base := driveOps(t, pinConfig(storage))

			cfg := pinConfig(storage)
			if inj := (*Plan)(nil).Injector(cfg.Topology); inj != nil {
				t.Fatal("nil plan built an injector")
			}
			absent := driveOps(t, cfg)
			if !reflect.DeepEqual(base, absent) {
				t.Fatal("absent-plan ledger differs from fault-free baseline")
			}

			cfg = pinConfig(storage)
			cfg.Faults = dormant.Injector(cfg.Topology)
			if cfg.Faults == nil {
				t.Fatal("dormant plan built no injector")
			}
			pinned := driveOps(t, cfg)
			if !reflect.DeepEqual(base, pinned) {
				t.Fatal("dormant-injector ledger differs from fault-free baseline")
			}
			// BurstStats/Characterize reduce per-rank maps, so float
			// sums carry iteration-order round-off (the storage pins'
			// approx() caveat); everything else must match exactly.
			if !approxDeepEqual(reflect.ValueOf(iosim.BurstStats(base)), reflect.ValueOf(iosim.BurstStats(pinned))) {
				t.Fatal("dormant-injector BurstStats differ")
			}
			if !approxDeepEqual(reflect.ValueOf(iosim.Characterize(base)), reflect.ValueOf(iosim.Characterize(pinned))) {
				t.Fatal("dormant-injector Characterization differs")
			}
		})
	}
}

// approxDeepEqual is reflect.DeepEqual with float64 leaves compared to
// relative 1e-9 — the tolerance the storage pins use for sums reduced
// over map iteration order.
func approxDeepEqual(a, b reflect.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float64, reflect.Float32:
		x, y := a.Float(), b.Float()
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x))
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !approxDeepEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !approxDeepEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			av, bv := a.MapIndex(k), b.MapIndex(k)
			if !bv.IsValid() || !approxDeepEqual(av, bv) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

// TestConcurrentFaultDeterminism is the -race replay pin: the same plan
// run twice with concurrent rank goroutines yields byte-identical
// ledgers AND byte-identical FaultEvent streams, because the injector
// resolves its schedule against rank clocks, never wall clock.
func TestConcurrentFaultDeterminism(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: KindTargetOutage, Start: 0.5, End: 40, Target: 0},
		{Kind: KindNICDegrade, Start: 0, End: 60, Node: 1, Factor: 0.5},
		{Kind: KindBBLoss, Start: 20, Node: 0},
	}}
	run := func() ([]iosim.WriteRecord, []iosim.FaultEvent) {
		cfg := bbConfig(iosim.StorageTiered)
		cfg.BurstBuffer.RanksPerNode = 0
		cfg.BurstBuffer.Nodes = 2
		cfg.Topology = iosim.Topology{Nodes: 2, Targets: 2}
		cfg.Faults = plan.Injector(cfg.Topology)
		fs := iosim.New(cfg, "")
		const ranks = 8
		for step := 0; step < 3; step++ {
			fs.BeginBurst(ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						if _, err := fs.WriteSize(rank, "w", int64(30+rank+i), iosim.Labels{Step: step}); err != nil {
							t.Error(err)
						}
					}
				}(r)
			}
			wg.Wait()
			fs.EndBurst()
			for r := 0; r < ranks; r++ {
				fs.AdvanceClock(r, 2)
			}
		}
		return fs.Ledger(), fs.FaultEvents()
	}
	led1, ev1 := run()
	led2, ev2 := run()
	if !reflect.DeepEqual(led1, led2) {
		t.Fatal("faulted ledger differs across concurrent runs")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("FaultEvent stream differs across concurrent runs")
	}
	if len(ev1) == 0 {
		t.Fatal("plan injected no faults; the determinism pin is vacuous")
	}
}
