// Package faults models failures in the simulated I/O stack: a
// deterministic, seed-driven fault-injection and recovery-cost subsystem
// threaded through the iosim StorageModel/Topology seams.
//
// The paper prices checkpoint bursts, and checkpoints exist to survive
// failures — so the model has to be able to answer "what does a checkpoint
// cadence cost me under failures, and when does it pay off?". A Plan
// (JSON round-tripped on campaign.Case.Faults, -faults on the CLIs)
// schedules events against simulated time:
//
//   - "target-outage": a storage target is down for a window. Writes
//     routed through it pay a retry/backoff/timeout cost, then fail over
//     to the next healthy target (relabeling the ledger's placement)
//     and transfer through the contention snapshot.
//   - "nic-degrade": a node's injection bandwidth is multiplied by
//     Factor in (0,1] for a window; every write from the node slows by
//     1/Factor.
//   - "bb-loss": a node's burst-buffer partition fails. Affected ranks
//     drop their buffered backlog (replayed through the backing tier at
//     the drain rate) and write through to the GPFS tier until the
//     window closes. Single-tier stacks ignore the event.
//   - "rank-interrupt": a rank dies at Start. Consumed by Analyze, not
//     the write path: the run replays from the last completed
//     checkpoint, losing the work since it and re-reading the
//     checkpoint through the same tiered model that wrote it.
//
// MTBFSeconds > 0 additionally draws exponential rank interrupts from
// Seed, which is what makes a Young/Daly optimal-interval analysis fall
// out of a cadence sweep (YoungInterval). Plan.Interrupts materializes
// the full interrupt schedule up to a horizon, prefix-stable: growing
// the horizon only appends draws, never reshuffles earlier ones, so an
// online consumer (the resilience engine) and the post-hoc Analyze see
// the same prefix. MTBFEstimator is the shared online counterpart: a
// censored-exponential MLE (horizon / interrupts-so-far) that both
// Analyze's report and resilience's adaptive checkpoint cadence feed
// into YoungInterval.
//
// Determinism contract: Plan.Injector implements iosim.FaultInjector,
// which is consulted under each rank's shard lock with the rank's own
// simulated clock. The injector resolves its schedule purely against
// (rank, start, the BeginBurst snapshot) — never wall clock, never
// another rank's progress — so ledgers and FaultEvent streams are
// byte-identical across runs regardless of goroutine interleaving. The
// zero plan (nil, or no events and no MTBF) is property-test-pinned
// byte-identical to the fault-free stack.
package faults
