package faults

import (
	"math"
	"testing"
)

func TestMTBFEstimatorCensoredMLE(t *testing.T) {
	var e MTBFEstimator
	if e.Estimate() != 0 {
		t.Error("zero-evidence estimate != 0")
	}
	if e.Count() != 0 {
		t.Error("fresh estimator counts interrupts")
	}
	e.Observe(2)
	e.Observe(5)
	e.Observe(9)
	if e.Count() != 3 {
		t.Errorf("count = %d, want 3", e.Count())
	}
	// Horizon 9, 3 deaths: censored MLE is 3, not the mean closed gap.
	if got := e.Estimate(); got != 3 {
		t.Errorf("estimate = %g, want 3", got)
	}
	// Extending the censored horizon with no new deaths raises the mean.
	e.AdvanceTo(12)
	if got := e.Estimate(); got != 4 {
		t.Errorf("estimate after censoring = %g, want 4", got)
	}
	// AdvanceTo never rewinds.
	e.AdvanceTo(1)
	if got := e.Estimate(); got != 4 {
		t.Errorf("horizon rewound: estimate = %g", got)
	}
}

// TestInterruptsPrefixStable: the online engine replays the schedule at
// many horizons; a draw that appears at one horizon must appear, at the
// same time, at every later horizon, or the online estimate would drift
// against the post-hoc Analyze.
func TestInterruptsPrefixStable(t *testing.T) {
	p := &Plan{
		Events:      []Event{{Kind: KindRankInterrupt, Start: 7.5, Rank: 3}},
		MTBFSeconds: 2,
		Seed:        11,
	}
	long := p.Interrupts(100)
	if len(long) < 10 {
		t.Fatalf("only %d interrupts over 100s at 2s MTBF", len(long))
	}
	found := false
	for _, x := range long {
		if x == 7.5 {
			found = true
		}
	}
	if !found {
		t.Error("explicit rank-interrupt event missing from the schedule")
	}
	for _, h := range []float64{5, 20, 50, 99} {
		short := p.Interrupts(h)
		// Every drawn time <= h in the long schedule appears identically;
		// the explicit event is scheduled at every horizon.
		var wantPrefix []float64
		for _, x := range long {
			if x <= h || x == 7.5 {
				wantPrefix = append(wantPrefix, x)
			}
		}
		if len(short) != len(wantPrefix) {
			t.Fatalf("horizon %g: %d interrupts, want %d", h, len(short), len(wantPrefix))
		}
		for i := range short {
			if short[i] != wantPrefix[i] {
				t.Fatalf("horizon %g: interrupt %d = %g, want %g", h, i, short[i], wantPrefix[i])
			}
		}
	}
	// Explicit events survive a zero horizon (they are scheduled, not
	// drawn); MTBF draws need a positive horizon.
	zero := p.Interrupts(0)
	if len(zero) != 1 || zero[0] != 7.5 {
		t.Errorf("zero-horizon schedule = %v, want just the explicit event", zero)
	}
	if got := (*Plan)(nil).Interrupts(10); got != nil {
		t.Errorf("nil plan scheduled interrupts: %v", got)
	}
}

// TestInterruptsMatchAnalyze: Analyze's ObservedMTBFSeconds is the
// censored MLE over the same schedule the engine replays — the shared
// estimator is what makes the online and post-hoc numbers agree.
func TestInterruptsMatchAnalyze(t *testing.T) {
	p := &Plan{MTBFSeconds: 2, Seed: 5}
	horizon := 40.0
	var e MTBFEstimator
	for _, x := range p.Interrupts(horizon) {
		e.Observe(x)
	}
	e.AdvanceTo(horizon)
	want := horizon / float64(e.Count())
	if math.Abs(e.Estimate()-want) > 1e-12 {
		t.Errorf("estimate = %g, want %g", e.Estimate(), want)
	}
}
