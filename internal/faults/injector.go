package faults

import (
	"sync"
	"sync/atomic"

	"amrproxyio/internal/iosim"
)

// Injector implements iosim.FaultInjector for a validated Plan. Build
// one per FileSystem with Plan.Injector and install it via
// iosim.Config.Faults; a nil *Plan yields no injector (leave the field
// nil) so the fault-free write path stays byte-identical.
type Injector struct {
	plan    Plan
	targets int // topology's storage-target count; 0 = no failover pool

	// quar holds the quarantine map the resilience engine installed
	// between bursts (iosim.Quarantiner): target → breaker-open-until
	// second. Published atomically because Price reads it from many rank
	// goroutines; only ever swapped between bursts, so every write in a
	// burst sees the same map (determinism contract).
	quar atomic.Pointer[map[int]float64]

	// dropped tracks which (bb-loss event, rank) pairs have already paid
	// the backlog-replay cost — the partition is only lost once per
	// window. Only rank's own goroutine queries rank's keys, so the map
	// is deterministic under any interleaving; the mutex just keeps the
	// map itself race-free.
	mu      sync.Mutex
	dropped map[dropKey]bool
}

type dropKey struct {
	event int
	rank  int
}

// Injector builds the write-path injector against a topology (its
// target count bounds the failover pool; the zero topology disables
// failover, writes just pay the retry storm). Returns nil for a zero
// plan so callers can install the result unconditionally — but note a
// nil *Injector must not be stored into iosim.Config.Faults as a typed
// nil; campaign.Case.FSConfig guards this.
func (p *Plan) Injector(topo iosim.Topology) *Injector {
	if p.Zero() {
		return nil
	}
	return &Injector{
		plan:    *p,
		targets: topo.Targets,
		dropped: map[dropKey]bool{},
	}
}

// BeginBurst implements iosim.FaultInjector. The schedule is resolved
// per write against rank clocks, so there is no burst state to snapshot.
func (in *Injector) BeginBurst(n int) {}

// EndBurst implements iosim.FaultInjector.
func (in *Injector) EndBurst() {}

// Reset implements iosim.FaultInjector: lost partitions become lossable
// again and installed quarantines are cleared.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.dropped = map[dropKey]bool{}
	in.mu.Unlock()
	in.quar.Store(nil)
}

// Plan returns a copy of the injector's validated fault plan. The
// resilience engine reads it back through iosim.Config.Faults so the
// online view replays exactly the schedule the write path prices.
func (in *Injector) Plan() Plan { return in.plan }

// Targets returns the failover pool size the injector was built with.
func (in *Injector) Targets() int { return in.targets }

// Quarantine implements iosim.Quarantiner: install the circuit-breaker
// map (target → open-until second). Must only be called between bursts;
// the map is copied so the caller may keep mutating its own.
func (in *Injector) Quarantine(until map[int]float64) {
	if len(until) == 0 {
		in.quar.Store(nil)
		return
	}
	cp := make(map[int]float64, len(until))
	for tgt, t := range until {
		cp[tgt] = t
	}
	in.quar.Store(&cp)
}

// quarantined reports whether a breaker is open for target at time t.
func (in *Injector) quarantined(target int, t float64) bool {
	p := in.quar.Load()
	if p == nil || target < 0 {
		return false
	}
	until, ok := (*p)[target]
	return ok && t < until
}

// matchNode reports whether the event covers a write from node
// (negative event nodes are wildcards; they are also the only match
// under the aggregate model's node == -1 labels).
func matchNode(e Event, node int) bool {
	return e.Node < 0 || e.Node == node
}

// matchTarget mirrors matchNode for storage targets.
func matchTarget(e Event, target int) bool {
	return e.Target < 0 || e.Target == target
}

// firstDrop claims the one-time backlog replay for a (bb-loss event,
// rank) pair.
func (in *Injector) firstDrop(event, rank int) bool {
	key := dropKey{event, rank}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dropped[key] {
		return false
	}
	in.dropped[key] = true
	return true
}

// targetOut reports whether any outage window covers target at time t.
func (in *Injector) targetOut(target int, t float64) bool {
	for _, e := range in.plan.Events {
		if e.Kind == KindTargetOutage && e.active(t) && matchTarget(e, target) {
			return true
		}
	}
	return false
}

// failover picks the next healthy target after target at time t,
// scanning round-robin; -1 when there is no placement (aggregate model)
// or no healthy target.
func (in *Injector) failover(target int, t float64) int {
	if target < 0 || in.targets <= 0 {
		return -1
	}
	for k := 1; k <= in.targets; k++ {
		cand := (target + k) % in.targets
		if !in.targetOut(cand, t) {
			return cand
		}
	}
	return -1
}

// Price implements iosim.FaultInjector. It runs under rank's shard lock
// with rank's simulated clock; everything it consults is a pure
// function of (rank, start, the plan, the BeginBurst snapshot), which
// is the determinism contract.
//
// Event priority per write: an active bb-loss on the write's node (and
// a buffer-capable model) reprices the transfer through the backing
// tier; otherwise an active outage on the write's target charges the
// retry storm and fails over; an active nic-degrade then stretches
// whichever transfer resulted. One FaultEvent is recorded per faulted
// write, labeled by the dominant (first-applied) kind.
func (in *Injector) Price(model iosim.StorageModel, rank int, start float64, nbytes int64, node, target int) (iosim.WriteCost, iosim.FaultEvent, bool) {
	ev := iosim.FaultEvent{
		Rank: rank, Node: node, Target: target,
		Start: start, FailoverTarget: -1,
	}
	var cost iosim.WriteCost
	priced := false

	// Buffer partition loss: drop the backlog once, then write through
	// the backing tier for the rest of the window.
	for i, e := range in.plan.Events {
		if e.Kind != KindBBLoss || !e.active(start) || !matchNode(e, node) {
			continue
		}
		bf, ok := model.(iosim.BufferFaults)
		if !ok {
			continue // single-tier stack: no buffer to lose
		}
		var replay float64
		if in.firstDrop(i, rank) {
			replay = bf.DropBuffer(rank, start)
		}
		bw := bf.FallbackBandwidth(rank)
		if bw <= 0 {
			bw = 1 // degenerate-config guard, mirroring snapshotBandwidth
		}
		cost = iosim.WriteCost{
			Seconds: replay + float64(nbytes)/bw,
			Tier:    iosim.TierGPFS,
			Fault:   KindBBLoss, FaultSeconds: replay,
		}
		ev.Kind = KindBBLoss
		ev.Seconds = replay
		priced = true
		break
	}

	// Target outage: pay the retry storm, then transfer through the
	// contention snapshot and fail over to a healthy target. The
	// failover relabels the ledger's placement; bandwidth stays the
	// rank's snapshot share (the snapshot is fixed at BeginBurst —
	// recomputing fan-in per write would break determinism).
	if !priced {
		for _, e := range in.plan.Events {
			if e.Kind != KindTargetOutage || !e.active(start) || !matchTarget(e, target) {
				continue
			}
			// Circuit breaker: the resilience engine has quarantined this
			// target, so fail over immediately at fault-free price instead
			// of re-paying the storm (only when a healthy target exists to
			// take the write; the aggregate model has no placement to
			// reroute).
			if in.quarantined(target, start) {
				if ft := in.failover(target, start); ft >= 0 {
					cost = model.Price(rank, start, nbytes)
					cost.Fault = KindTargetOutage
					cost.Mitigated = MitigationQuarantine
					ev.Kind = KindTargetOutage
					ev.FailoverTarget = ft
					ev.Mitigated = true
					priced = true
					break
				}
			}
			retries := in.plan.maxRetries()
			retrySec := in.plan.retrySeconds()
			cost = model.Price(rank, start+retrySec, nbytes)
			cost.Seconds += retrySec
			cost.Fault = KindTargetOutage
			cost.Retries = retries
			cost.FaultSeconds += retrySec
			ev.Kind = KindTargetOutage
			ev.Seconds = retrySec
			ev.Retries = retries
			ev.FailoverTarget = in.failover(target, start+retrySec)
			priced = true
			break
		}
	}

	if !priced {
		cost = model.Price(rank, start, nbytes)
	}

	// NIC degradation stretches whatever transfer resulted.
	for _, e := range in.plan.Events {
		if e.Kind != KindNICDegrade || !e.active(start) || !matchNode(e, node) {
			continue
		}
		if e.Factor >= 1 {
			break // validated to (0, 1]; 1 is a no-op
		}
		extra := cost.Seconds * (1/e.Factor - 1)
		cost.Seconds += extra
		cost.FaultSeconds += extra
		if cost.Fault == "" {
			cost.Fault = KindNICDegrade
		}
		if ev.Kind == "" {
			ev.Kind = KindNICDegrade
		}
		ev.Seconds += extra
		break
	}

	if ev.Kind == "" {
		return cost, iosim.FaultEvent{}, false
	}
	return cost, ev, true
}
