package faults

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParse hammers the fault-plan decoder: no input may panic, and any
// accepted plan must be a marshal fixpoint (parse → marshal → parse
// yields the same canonical bytes), so saved plans reload identically.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"mtbf_seconds": 3600, "seed": 7}`))
	f.Add([]byte(`{"events":[{"kind":"target_outage","start":10,"duration":5,"target":2}]}`))
	f.Add([]byte(`{"events":[],"max_retries":3}`))
	f.Add([]byte(`{"unknown_field": 1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"mtbf_seconds": -1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		m1, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan does not marshal: %v", err)
		}
		p2, err := Parse(m1)
		if err != nil {
			t.Fatalf("marshal of accepted plan does not reparse: %v\nplan: %s", err, m1)
		}
		m2, err := json.Marshal(p2)
		if err != nil {
			t.Fatalf("reparsed plan does not marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("parse/marshal not a fixpoint:\nfirst:  %s\nsecond: %s", m1, m2)
		}
	})
}
