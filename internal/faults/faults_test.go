package faults

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Events: []Event{
			{Kind: KindTargetOutage, Start: 0.5, End: 2, Target: 3},
			{Kind: KindNICDegrade, Start: 1, End: 4, Node: -1, Factor: 0.25},
			{Kind: KindBBLoss, Start: 2, Node: 1},
			{Kind: KindRankInterrupt, Start: 3, Rank: 7},
		},
		MTBFSeconds:  120,
		Seed:         42,
		RetryTimeout: 0.2,
		RetryBackoff: 0.05,
		MaxRetries:   5,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip changed the plan:\n got %+v\nwant %+v", got, p)
	}
}

func TestPlanValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the rejection message
	}{
		{"unknown kind", Plan{Events: []Event{{Kind: "disk-fire", Start: 0}}}, "unknown fault kind"},
		{"negative start", Plan{Events: []Event{{Kind: KindBBLoss, Start: -1}}}, "negative start"},
		{"inverted window", Plan{Events: []Event{{Kind: KindTargetOutage, Start: 2, End: 1}}}, "end 1 <= start 2"},
		{"empty window", Plan{Events: []Event{{Kind: KindTargetOutage, Start: 2, End: 2}}}, "end 2 <= start 2"},
		{"zero factor", Plan{Events: []Event{{Kind: KindNICDegrade, Start: 0, Factor: 0}}}, "factor 0 outside"},
		{"factor above one", Plan{Events: []Event{{Kind: KindNICDegrade, Start: 0, Factor: 1.5}}}, "factor 1.5 outside"},
		{"negative rank", Plan{Events: []Event{{Kind: KindRankInterrupt, Start: 0, Rank: -2}}}, "negative rank"},
		{"negative mtbf", Plan{MTBFSeconds: -1}, "negative mtbf_seconds"},
		{"negative retry timeout", Plan{RetryTimeout: -0.1}, "negative retry knobs"},
		{"negative retry backoff", Plan{RetryBackoff: -0.1}, "negative retry knobs"},
		{"negative max retries", Plan{MaxRetries: -1}, "negative retry knobs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}

	valid := []Plan{
		{},
		{Events: []Event{{Kind: KindTargetOutage, Start: 0}}},          // open-ended
		{Events: []Event{{Kind: KindNICDegrade, Start: 0, Factor: 1}}}, // no-op factor
		{MTBFSeconds: 60, Seed: 3},
	}
	for i, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid plan %d rejected: %v", i, err)
		}
	}
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestParseRejectsMalformedJSON(t *testing.T) {
	for _, bad := range []string{
		`{`,                         // truncated
		`{"events": [{"kind": 3}]}`, // wrong type
		`{"evnets": []}`,            // typo'd field
		`{"events":[{"kind":"bogus","start":0}]}`, // unknown kind
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

func TestLoadInlineAndFile(t *testing.T) {
	const src = `{"events":[{"kind":"target-outage","start":1,"end":2,"target":0}]}`
	inline, err := Load("  " + src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inline, fromFile) {
		t.Fatalf("inline %+v != file %+v", inline, fromFile)
	}
	if p, err := Load(""); p != nil || err != nil {
		t.Fatalf("Load(\"\") = %+v, %v, want nil, nil", p, err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

func TestZeroPlanYieldsNoInjector(t *testing.T) {
	var nilPlan *Plan
	if inj := nilPlan.Injector(iosim.Topology{}); inj != nil {
		t.Fatal("nil plan built an injector")
	}
	if inj := (&Plan{}).Injector(iosim.Topology{}); inj != nil {
		t.Fatal("empty plan built an injector")
	}
	if inj := DefaultPlan().Injector(iosim.Topology{}); inj == nil {
		t.Fatal("DefaultPlan built no injector")
	}
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatalf("DefaultPlan invalid: %v", err)
	}
}
