package faults

import (
	"math"
	"reflect"
	"testing"

	"amrproxyio/internal/iosim"
)

// rec builds a minimal untopologized ledger record.
func rec(rank, step int, start, dur float64) iosim.WriteRecord {
	return iosim.WriteRecord{
		Rank: rank, Path: "w", Bytes: 100,
		Start: start, Duration: dur,
		Labels: iosim.Labels{Step: step},
		Node:   -1, Target: -1,
	}
}

func TestYoungInterval(t *testing.T) {
	if got := YoungInterval(2, 100); math.Abs(got-20) > 1e-12 {
		t.Fatalf("YoungInterval(2, 100) = %g, want 20", got)
	}
	if YoungInterval(0, 100) != 0 || YoungInterval(2, 0) != 0 {
		t.Fatal("degenerate YoungInterval inputs must return 0")
	}
}

// TestAnalyzeInterruptTimeline: two checkpoints (ends 2 and 5), one
// interrupt before the first completes (loses everything since t=0, no
// checkpoint to read) and one after (loses the work since the last
// checkpoint and re-reads it).
func TestAnalyzeInterruptTimeline(t *testing.T) {
	records := []iosim.WriteRecord{
		rec(0, 0, 0, 2), // checkpoint 0 completes at t=2, wall 2
		rec(0, 1, 3, 2), // checkpoint 1 completes at t=5, wall 2
	}
	plan := &Plan{Events: []Event{
		{Kind: KindRankInterrupt, Start: 1, Rank: 0},
		{Kind: KindRankInterrupt, Start: 4, Rank: 0},
	}}
	r := Analyze(plan, records, nil)
	if r.Checkpoints != 2 || r.Interrupts != 2 {
		t.Fatalf("checkpoints/interrupts = %d/%d, want 2/2", r.Checkpoints, r.Interrupts)
	}
	if math.Abs(r.Makespan-5) > 1e-12 {
		t.Fatalf("makespan = %g, want 5", r.Makespan)
	}
	// t=1: no checkpoint yet, lose 1s. t=4: last checkpoint ended at 2,
	// lose 2s and re-read its 2s wall.
	if math.Abs(r.LostWorkSeconds-3) > 1e-12 {
		t.Fatalf("lost work = %g, want 3", r.LostWorkSeconds)
	}
	if math.Abs(r.RestartReadSeconds-2) > 1e-12 {
		t.Fatalf("restart read = %g, want 2", r.RestartReadSeconds)
	}
	if want := 5.0 / (5 + 3 + 2); math.Abs(r.ForwardProgress-want) > 1e-12 {
		t.Fatalf("forward progress = %g, want %g", r.ForwardProgress, want)
	}
}

// TestAnalyzeFaultEventAggregation: retries, failovers, and fault time
// roll up from the write-path event stream.
func TestAnalyzeFaultEventAggregation(t *testing.T) {
	events := []iosim.FaultEvent{
		{Kind: KindTargetOutage, Rank: 0, Seconds: 2.1, Retries: 3, FailoverTarget: 1},
		{Kind: KindNICDegrade, Rank: 1, Seconds: 0.5, FailoverTarget: -1},
	}
	r := Analyze(nil, []iosim.WriteRecord{rec(0, 0, 0, 1)}, events)
	if r.FaultWrites != 2 || r.Retries != 3 || r.Failovers != 1 {
		t.Fatalf("aggregates = %+v", r)
	}
	if math.Abs(r.FaultSeconds-2.6) > 1e-12 {
		t.Fatalf("fault seconds = %g, want 2.6", r.FaultSeconds)
	}
	if r.ForwardProgress != 1 {
		t.Fatalf("fault-free-timeline forward progress = %g, want 1", r.ForwardProgress)
	}
}

// TestAnalyzeMTBFDeterministic: MTBF draws come from the plan's seed, so
// the same inputs always analyze identically — and a long-MTBF plan on a
// short run draws interrupts with the documented exponential model.
func TestAnalyzeMTBFDeterministic(t *testing.T) {
	var records []iosim.WriteRecord
	for step := 0; step < 20; step++ {
		records = append(records, rec(0, step, float64(step), 0.9))
	}
	plan := &Plan{MTBFSeconds: 5, Seed: 11}
	a := Analyze(plan, records, nil)
	b := Analyze(plan, records, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Analyze is not deterministic for a fixed seed")
	}
	if a.Interrupts == 0 {
		t.Fatal("MTBF 5s over a ~20s run drew no interrupts")
	}
	if a.YoungIntervalSeconds <= 0 {
		t.Fatal("MTBF plan reported no Young interval")
	}
	if Analyze(&Plan{MTBFSeconds: 5, Seed: 12}, records, nil).Interrupts == a.Interrupts &&
		reflect.DeepEqual(Analyze(&Plan{MTBFSeconds: 5, Seed: 12}, records, nil), a) {
		t.Fatal("different seeds produced identical analyses (seed is ignored)")
	}
}

// TestAnalyzeZeroInputs: nil plan, empty ledger.
func TestAnalyzeZeroInputs(t *testing.T) {
	r := Analyze(nil, nil, nil)
	if !reflect.DeepEqual(r, Resilience{}) {
		t.Fatalf("Analyze(nil, nil, nil) = %+v, want zero", r)
	}
}
