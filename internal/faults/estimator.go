package faults

// MTBFEstimator is the online mean-time-between-failures estimator the
// resilience policy engine and the post-hoc Analyze share. It treats
// rank interrupts as an exponential process observed over a censored
// horizon and reports the maximum-likelihood mean: horizon / count.
// (The final inter-failure gap is right-censored — the run ended before
// the next death — so dividing the whole observed horizon by the death
// count is the textbook censored-exponential MLE, not the naive mean of
// closed gaps.)
//
// The zero value is ready to use. Feed interrupt times with Observe and
// advance the observation window with AdvanceTo; both are monotone in
// effect, so re-feeding a prefix-stable schedule (Plan.Interrupts) from
// scratch each observation is deterministic.
type MTBFEstimator struct {
	n       int
	horizon float64
}

// Observe records one rank interrupt at simulated time t, extending the
// observation horizon to at least t.
func (e *MTBFEstimator) Observe(t float64) {
	e.n++
	e.AdvanceTo(t)
}

// AdvanceTo extends the observation horizon to now (no-op when the
// horizon is already past now).
func (e *MTBFEstimator) AdvanceTo(now float64) {
	if now > e.horizon {
		e.horizon = now
	}
}

// Count returns the number of interrupts observed.
func (e *MTBFEstimator) Count() int { return e.n }

// Estimate returns the censored-MLE mean time between failures, or 0
// before the first interrupt (no estimate — callers must not retime
// checkpoints on zero evidence).
func (e *MTBFEstimator) Estimate() float64 {
	if e.n == 0 {
		return 0
	}
	return e.horizon / float64(e.n)
}
