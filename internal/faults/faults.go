package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
)

// Fault kinds accepted by Plan events.
const (
	// KindTargetOutage takes a storage target down for a window; writes
	// through it retry, back off, and fail over to a healthy target.
	KindTargetOutage = "target-outage"
	// KindNICDegrade multiplies a node's injection bandwidth by Factor
	// for a window.
	KindNICDegrade = "nic-degrade"
	// KindBBLoss fails a node's burst-buffer partition for a window:
	// buffered backlog replays through the backing tier and writes fall
	// back to GPFS speed.
	KindBBLoss = "bb-loss"
	// KindRankInterrupt kills a rank at Start, forcing a restart replay
	// from the last completed checkpoint (consumed by Analyze).
	KindRankInterrupt = "rank-interrupt"
)

// MitigationQuarantine labels writes (WriteRecord.Mitigated) and fault
// events whose retry storm a quarantine circuit breaker absorbed: the
// write failed over immediately instead of burning retries against a
// target the resilience engine already knows is out.
const MitigationQuarantine = "quarantine"

// Kinds returns the valid fault kinds, in documentation order.
func Kinds() []string {
	return []string{KindTargetOutage, KindNICDegrade, KindBBLoss, KindRankInterrupt}
}

// Default retry cost knobs (Plan zero values select these).
const (
	// DefaultRetryTimeout is the simulated seconds one failed write
	// attempt burns before the client gives up on it.
	DefaultRetryTimeout = 0.5
	// DefaultRetryBackoff is the base backoff between attempts; attempt
	// i waits i*DefaultRetryBackoff (linear backoff).
	DefaultRetryBackoff = 0.1
	// DefaultMaxRetries is the attempts burned before failing over.
	DefaultMaxRetries = 3
)

// Event schedules one fault against simulated time.
type Event struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Start is the simulated second the fault begins (>= 0).
	Start float64 `json:"start"`
	// End closes the fault window; 0 leaves it open-ended. Ignored by
	// rank-interrupt (an instant, not a window).
	End float64 `json:"end,omitempty"`
	// Target selects the storage target for target-outage; negative
	// matches every target.
	Target int `json:"target,omitempty"`
	// Node selects the compute node for nic-degrade and bb-loss;
	// negative matches every node (and is the only match under the
	// aggregate model, which carries no placement).
	Node int `json:"node,omitempty"`
	// Rank selects the interrupted rank for rank-interrupt.
	Rank int `json:"rank,omitempty"`
	// Factor is the nic-degrade bandwidth multiplier, in (0, 1].
	Factor float64 `json:"factor,omitempty"`
}

// Active reports whether the event's window covers simulated time t.
func (e Event) Active(t float64) bool {
	return t >= e.Start && (e.End <= 0 || t < e.End)
}

// active is the historical unexported spelling the injector hot path
// uses.
func (e Event) active(t float64) bool { return e.Active(t) }

// Plan is a deterministic fault schedule plus recovery-cost knobs. The
// zero value (and nil) is the fault-free plan. Plans round-trip through
// JSON on campaign.Case.Faults and the -faults CLI flags.
type Plan struct {
	// Events is the explicit fault schedule.
	Events []Event `json:"events,omitempty"`
	// MTBFSeconds > 0 additionally draws exponential rank interrupts
	// with this mean from Seed (Analyze consumes them).
	MTBFSeconds float64 `json:"mtbf_seconds,omitempty"`
	// Seed drives the MTBF draws; the same (plan, ledger) pair always
	// analyzes identically.
	Seed int64 `json:"seed,omitempty"`
	// RetryTimeout, RetryBackoff, MaxRetries price a target-outage
	// retry storm; zero values select the Default* constants.
	RetryTimeout float64 `json:"retry_timeout,omitempty"`
	RetryBackoff float64 `json:"retry_backoff,omitempty"`
	MaxRetries   int     `json:"max_retries,omitempty"`
}

// Zero reports whether the plan injects nothing: a nil or zero plan
// leaves the write path untouched.
func (p *Plan) Zero() bool {
	return p == nil || (len(p.Events) == 0 && p.MTBFSeconds <= 0)
}

func (p *Plan) retryTimeout() float64 {
	if p.RetryTimeout > 0 {
		return p.RetryTimeout
	}
	return DefaultRetryTimeout
}

func (p *Plan) retryBackoff() float64 {
	if p.RetryBackoff > 0 {
		return p.RetryBackoff
	}
	return DefaultRetryBackoff
}

func (p *Plan) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return DefaultMaxRetries
}

// retrySeconds is the deterministic cost of one exhausted retry storm:
// each of the maxRetries attempts burns the timeout, with linear backoff
// between attempts.
func (p *Plan) retrySeconds() float64 {
	n := p.maxRetries()
	return float64(n)*p.retryTimeout() + p.retryBackoff()*float64(n*(n+1))/2
}

// Interrupts materializes the plan's rank-death schedule, sorted
// ascending: every explicit rank-interrupt event (unconditionally —
// Analyze has always counted scheduled deaths even past the run's
// makespan) plus, when horizon > 0, the MTBF-driven exponential draws
// from Seed up to horizon. The draws are prefix-stable: extending the
// horizon appends interrupts without perturbing earlier ones, which is
// what lets the online resilience engine and the post-hoc Analyze agree
// on the schedule they both saw.
func (p *Plan) Interrupts(horizon float64) []float64 {
	if p == nil {
		return nil
	}
	var interrupts []float64
	for _, e := range p.Events {
		if e.Kind == KindRankInterrupt {
			interrupts = append(interrupts, e.Start)
		}
	}
	if p.MTBFSeconds > 0 && horizon > 0 {
		rng := rand.New(rand.NewSource(p.Seed))
		for t := rng.ExpFloat64() * p.MTBFSeconds; t <= horizon; t += rng.ExpFloat64() * p.MTBFSeconds {
			interrupts = append(interrupts, t)
		}
	}
	sort.Float64s(interrupts)
	return interrupts
}

// Validate rejects malformed plans the way campaign.Case.Validate
// rejects malformed cases: unknown kinds, negative times, inverted
// windows, out-of-range factors, and negative retry knobs.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.MTBFSeconds < 0 {
		return fmt.Errorf("faults: negative mtbf_seconds %g", p.MTBFSeconds)
	}
	if p.RetryTimeout < 0 || p.RetryBackoff < 0 || p.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retry knobs (timeout %g, backoff %g, max %d)",
			p.RetryTimeout, p.RetryBackoff, p.MaxRetries)
	}
	for i, e := range p.Events {
		if e.Start < 0 {
			return fmt.Errorf("faults: event %d (%s): negative start %g", i, e.Kind, e.Start)
		}
		if e.End > 0 && e.End <= e.Start {
			return fmt.Errorf("faults: event %d (%s): end %g <= start %g", i, e.Kind, e.End, e.Start)
		}
		switch e.Kind {
		case KindTargetOutage, KindBBLoss:
		case KindNICDegrade:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("faults: event %d (%s): factor %g outside (0, 1]", i, e.Kind, e.Factor)
			}
		case KindRankInterrupt:
			if e.Rank < 0 {
				return fmt.Errorf("faults: event %d (%s): negative rank %d", i, e.Kind, e.Rank)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown fault kind %q (valid: %s)",
				i, e.Kind, strings.Join(Kinds(), ", "))
		}
	}
	return nil
}

// Parse decodes and validates a JSON plan. Unknown fields are rejected
// so typos ("targets" for "target") fail loudly instead of injecting
// nothing.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: malformed plan JSON: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load resolves a -faults CLI argument: an inline JSON object (first
// non-space byte '{') or a path to a JSON file.
func Load(arg string) (*Plan, error) {
	s := strings.TrimSpace(arg)
	if s == "" {
		return nil, nil
	}
	if strings.HasPrefix(s, "{") {
		return Parse([]byte(s))
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("faults: reading plan %s: %w", arg, err)
	}
	return Parse(data)
}

// DefaultPlan is the demo schedule the fault sweeps inject when no plan
// is supplied: an early target outage, a degraded node, and one rank
// interrupt mid-run.
func DefaultPlan() *Plan {
	return &Plan{
		Events: []Event{
			{Kind: KindTargetOutage, Start: 0.1, End: 5, Target: 0},
			{Kind: KindNICDegrade, Start: 0, End: 10, Node: 0, Factor: 0.5},
			{Kind: KindRankInterrupt, Start: 2, Rank: 0},
		},
	}
}
