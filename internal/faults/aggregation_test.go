package faults

import (
	"reflect"
	"sync"
	"testing"

	"amrproxyio/internal/iosim"
)

// aggConfig is the jitter-free two-node aggregation config the fault
// interaction tests price against: 1 aggregator per node, both
// aggregators round-robin onto target 0, members gather at 50 B/s and
// each 2-rank group time-shares its aggregator's 100 B/s stream.
func aggConfig() iosim.Config {
	return iosim.Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 100,
		Topology: iosim.Topology{
			Nodes: 2, RanksPerNode: 2, Targets: 2,
		},
		Aggregation: iosim.AggregationSpec{
			Aggregators:     "1/node",
			GatherBandwidth: 50,
		},
	}
}

// TestTargetOutageOnAggregatorWrites: with aggregation active the fault
// seam sees the aggregator's folded placement, so an outage on the
// aggregators' target hits every rank's write — members pay the retry
// storm on top of their gather — and the whole collective fails over
// together.
func TestTargetOutageOnAggregatorWrites(t *testing.T) {
	cfg := aggConfig()
	plan := &Plan{Events: []Event{{Kind: KindTargetOutage, Start: 0, End: 100, Target: 0}}}
	cfg.Faults = plan.Injector(cfg.Topology)
	fs := iosim.New(cfg, "")
	fs.BeginBurst(4)
	durs := make([]float64, 4)
	for r := 0; r < 4; r++ {
		d, err := fs.WriteSize(r, "plt/Cell_D", 100, iosim.Labels{Step: 0})
		if err != nil {
			t.Fatal(err)
		}
		durs[r] = d
	}
	fs.EndBurst()

	storm := plan.retrySeconds()
	// Aggregators: retry storm + 100 B over the 50 B/s group share.
	exactly(t, "aggregator duration", durs[0], storm+2)
	exactly(t, "aggregator duration", durs[2], storm+2)
	// Members: 2s gather, then the same stormed write phase.
	exactly(t, "member duration", durs[1], 2+storm+2)
	exactly(t, "member duration", durs[3], 2+storm+2)

	for _, r := range fs.Ledger() {
		if r.Fault != KindTargetOutage || r.Retries != 3 {
			t.Fatalf("record = %+v, want a stormed target-outage", r)
		}
		if r.Target != 1 {
			t.Fatalf("rank %d target = %d, want collective failover to 1", r.Rank, r.Target)
		}
	}
	evs := fs.FaultEvents()
	if len(evs) != 4 {
		t.Fatalf("FaultEvents = %d, want one per rank in the collective", len(evs))
	}
	for _, ev := range evs {
		if ev.Target != 0 || ev.FailoverTarget != 1 {
			t.Fatalf("event = %+v, want outage on the aggregator target 0 → 1", ev)
		}
	}
}

// TestTargetOutageOffAggregatorPathInert: the same outage on the target
// NO aggregator writes to never fires — aggregation concentrated the
// collective onto target 0, so target 1's window matches nothing — while
// the direct pattern (which round-robins half the ranks onto target 1)
// pays it. This is the regression shape for pricing faults against the
// folded placement instead of the original writer's.
func TestTargetOutageOffAggregatorPathInert(t *testing.T) {
	plan := &Plan{Events: []Event{{Kind: KindTargetOutage, Start: 0, End: 100, Target: 1}}}

	cfg := aggConfig()
	cfg.Faults = plan.Injector(cfg.Topology)
	fs := iosim.New(cfg, "")
	fs.BeginBurst(4)
	for r := 0; r < 4; r++ {
		if _, err := fs.WriteSize(r, "a", 100, iosim.Labels{Step: 0}); err != nil {
			t.Fatal(err)
		}
	}
	fs.EndBurst()
	if evs := fs.FaultEvents(); len(evs) != 0 {
		t.Fatalf("aggregated run faulted %d writes on the unused target: %+v", len(evs), evs)
	}

	direct := aggConfig()
	direct.Aggregation = iosim.AggregationSpec{}
	direct.Faults = plan.Injector(direct.Topology)
	fs = iosim.New(direct, "")
	fs.BeginBurst(4)
	for r := 0; r < 4; r++ {
		if _, err := fs.WriteSize(r, "a", 100, iosim.Labels{Step: 0}); err != nil {
			t.Fatal(err)
		}
	}
	fs.EndBurst()
	if evs := fs.FaultEvents(); len(evs) != 2 {
		t.Fatalf("direct run faulted %d writes, want the 2 ranks round-robined onto target 1", len(evs))
	}
}

// TestAggregationFaultConcurrentDeterministic replays an aggregated
// tiered-storage run under a firing fault plan with concurrent rank
// goroutines, twice: ledger and fault-event stream must be
// byte-identical (run under -race in CI).
func TestAggregationFaultConcurrentDeterministic(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: KindTargetOutage, Start: 0.5, End: 40, Target: 0},
		{Kind: KindNICDegrade, Start: 0, End: 60, Node: 1, Factor: 0.5},
		{Kind: KindBBLoss, Start: 20, Node: 0},
	}}
	run := func() ([]iosim.WriteRecord, []iosim.FaultEvent) {
		cfg := bbConfig(iosim.StorageTiered)
		cfg.BurstBuffer.RanksPerNode = 0
		cfg.BurstBuffer.Nodes = 2
		cfg.Topology = iosim.Topology{Nodes: 2, RanksPerNode: 4, Targets: 2}
		cfg.Aggregation = iosim.AggregationSpec{Aggregators: "2/node", GatherBandwidth: 100}
		cfg.Faults = plan.Injector(cfg.Topology)
		fs := iosim.New(cfg, "")
		const ranks = 8
		for step := 0; step < 3; step++ {
			fs.BeginBurst(ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						if _, err := fs.WriteSize(rank, "w", int64(30+rank+i), iosim.Labels{Step: step}); err != nil {
							t.Error(err)
						}
					}
				}(r)
			}
			wg.Wait()
			fs.EndBurst()
			for r := 0; r < ranks; r++ {
				fs.AdvanceClock(r, 2)
			}
		}
		return fs.Ledger(), fs.FaultEvents()
	}
	led1, ev1 := run()
	led2, ev2 := run()
	if !reflect.DeepEqual(led1, led2) {
		t.Fatal("aggregated faulted ledger differs across concurrent runs")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("aggregated FaultEvent stream differs across concurrent runs")
	}
	if len(ev1) == 0 {
		t.Fatal("plan injected no faults; the determinism pin is vacuous")
	}
}
