package faults

import (
	"math"
	"sort"

	"amrproxyio/internal/iosim"
)

// Resilience summarizes what a fault plan cost one run: the recovery
// model the ResilienceReport surfaces per campaign config.
type Resilience struct {
	// Makespan is the run's simulated I/O makespan (max record end).
	Makespan float64
	// Checkpoints is the number of completed checkpoint bursts.
	Checkpoints int
	// Interrupts counts rank deaths: explicit rank-interrupt events
	// plus MTBF-driven draws.
	Interrupts int
	// LostWorkSeconds is the simulated work discarded by interrupts:
	// for each, the time since the last completed checkpoint.
	LostWorkSeconds float64
	// RestartReadSeconds is the time spent reading checkpoints back
	// after interrupts. The read is priced symmetrically: restoring a
	// checkpoint re-moves its bytes through the same tiered model that
	// wrote it, so the read costs the burst's write wall time.
	RestartReadSeconds float64
	// FaultWrites, Retries, Failovers, and FaultSeconds aggregate the
	// write-path FaultEvent stream.
	FaultWrites  int
	Retries      int
	Failovers    int
	FaultSeconds float64
	// ForwardProgress is the effective forward-progress rate:
	// makespan / (makespan + lost work + restart reads). 1 under a
	// fault-free run.
	ForwardProgress float64
	// ObservedMTBFSeconds is the censored-MLE mean time between failures
	// over the interrupt schedule the run actually saw (MTBFEstimator);
	// 0 when no interrupt occurred. This is the same estimate the online
	// resilience engine converges to, so post-hoc and closed-loop views
	// agree.
	ObservedMTBFSeconds float64
	// YoungIntervalSeconds is the Young/Daly optimal checkpoint
	// interval sqrt(2 * C * MTBF) for the run's mean checkpoint cost C;
	// 0 when the plan has no MTBF.
	YoungIntervalSeconds float64
}

// YoungInterval is Young's first-order optimal checkpoint interval for
// a checkpoint costing ckptSeconds under exponential failures with the
// given mean time between failures: sqrt(2 * C * MTBF).
func YoungInterval(ckptSeconds, mtbfSeconds float64) float64 {
	if ckptSeconds <= 0 || mtbfSeconds <= 0 {
		return 0
	}
	return math.Sqrt(2 * ckptSeconds * mtbfSeconds)
}

// checkpoint is one completed burst on the recovery timeline.
type checkpoint struct {
	end  float64 // completion time: max record end in the burst's step
	wall float64 // the burst's write wall time (= symmetric read-back)
}

// Analyze replays a plan's interrupt schedule against a finished run's
// ledger and fault-event stream. It is post-hoc and deterministic: the
// same (plan, records, events) triple always yields the same
// Resilience, with MTBF interrupts drawn from plan.Seed.
func Analyze(plan *Plan, records []iosim.WriteRecord, events []iosim.FaultEvent) Resilience {
	var r Resilience
	for _, e := range events {
		r.FaultWrites++
		r.Retries += e.Retries
		r.FaultSeconds += e.Seconds
		if e.FailoverTarget >= 0 {
			r.Failovers++
		}
	}

	// Recovery timeline: when each checkpoint burst completed, and what
	// it cost to write (= what it costs to read back).
	ends := map[int]float64{}
	for _, rec := range records {
		if end := rec.Start + rec.Duration; end > ends[rec.Labels.Step] {
			ends[rec.Labels.Step] = end
		}
		if end := rec.Start + rec.Duration; end > r.Makespan {
			r.Makespan = end
		}
	}
	var ckpts []checkpoint
	for _, b := range iosim.BurstStats(records) {
		ckpts = append(ckpts, checkpoint{end: ends[b.Step], wall: b.WallSeconds})
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].end < ckpts[j].end })
	r.Checkpoints = len(ckpts)

	// Interrupt schedule: explicit events plus MTBF draws, shared with
	// the online resilience engine via Plan.Interrupts (prefix-stable in
	// the horizon, so both views replay the same deaths).
	interrupts := plan.Interrupts(r.Makespan)
	r.Interrupts = len(interrupts)

	var est MTBFEstimator
	for _, t := range interrupts {
		est.Observe(t)
	}
	est.AdvanceTo(r.Makespan)
	r.ObservedMTBFSeconds = est.Estimate()

	// Each interrupt discards the work since the last completed
	// checkpoint (all of it when none completed yet) and re-reads that
	// checkpoint through the tiered model.
	var ckptWallSum float64
	for _, c := range ckpts {
		ckptWallSum += c.wall
	}
	for _, t := range interrupts {
		last := -1
		for i, c := range ckpts {
			if c.end <= t {
				last = i
			} else {
				break
			}
		}
		if last < 0 {
			r.LostWorkSeconds += t
			continue
		}
		r.LostWorkSeconds += t - ckpts[last].end
		r.RestartReadSeconds += ckpts[last].wall
	}

	if r.Makespan > 0 {
		r.ForwardProgress = r.Makespan / (r.Makespan + r.LostWorkSeconds + r.RestartReadSeconds)
	}
	if plan != nil && plan.MTBFSeconds > 0 && len(ckpts) > 0 {
		r.YoungIntervalSeconds = YoungInterval(ckptWallSum/float64(len(ckpts)), plan.MTBFSeconds)
	}
	return r
}
