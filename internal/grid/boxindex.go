package grid

import "sort"

// BoxIndex is a bucketed spatial hash over a fixed set of boxes. It answers
// "which boxes intersect this region?" and "which box owns this point?" in
// ~O(1) per query instead of the O(N) all-boxes scan, which is what turns
// the AMR neighbor-search hot paths (ghost exchange, fill-patch, reflux)
// from O(N^2) into O(N) in the number of boxes.
//
// The index is immutable after construction and safe for concurrent
// queries. Callers that mutate the underlying box set must build a new
// index; amr.BoxArray couples index lifetime to array identity via a
// content fingerprint so stale indexes cannot survive a regrid.
type BoxIndex struct {
	boxes   []Box
	bounds  Box // bounding box of all indexed boxes
	cellX   int // bucket width in cells
	cellY   int // bucket height in cells
	nbx     int // buckets along x
	nby     int // buckets along y
	buckets [][]int32
}

// NewBoxIndex builds an index over boxes. The slice is retained (not
// copied) and must not be mutated afterwards. Empty boxes are indexed
// nowhere and never returned by queries.
func NewBoxIndex(boxes []Box) *BoxIndex {
	idx := &BoxIndex{boxes: boxes}
	var sumX, sumY int64
	n := 0
	bounds := Empty()
	for _, b := range boxes {
		if b.IsEmpty() {
			continue
		}
		s := b.Size()
		sumX += int64(s.X)
		sumY += int64(s.Y)
		n++
		if bounds.IsEmpty() {
			bounds = b
		} else {
			bounds.Lo = bounds.Lo.Min(b.Lo)
			bounds.Hi = bounds.Hi.Max(b.Hi)
		}
	}
	idx.bounds = bounds
	if n == 0 {
		return idx
	}
	// Bucket size ~ the average box size, so a typical box lands in O(1)
	// buckets and a typical bucket holds O(1) boxes.
	idx.cellX = int(sumX/int64(n)) + 1
	idx.cellY = int(sumY/int64(n)) + 1
	ext := bounds.Size()
	// Cap the bucket count: sparse levels (an annulus of fine boxes in a
	// large bounding box) must not blow up memory.
	for {
		idx.nbx = (ext.X + idx.cellX - 1) / idx.cellX
		idx.nby = (ext.Y + idx.cellY - 1) / idx.cellY
		if idx.nbx*idx.nby <= 8*n+64 {
			break
		}
		idx.cellX *= 2
		idx.cellY *= 2
	}
	idx.buckets = make([][]int32, idx.nbx*idx.nby)
	for i, b := range boxes {
		if b.IsEmpty() {
			continue
		}
		bx0, by0 := idx.bucketOf(b.Lo)
		bx1, by1 := idx.bucketOf(b.Hi)
		for by := by0; by <= by1; by++ {
			for bx := bx0; bx <= bx1; bx++ {
				k := by*idx.nbx + bx
				idx.buckets[k] = append(idx.buckets[k], int32(i))
			}
		}
	}
	return idx
}

// bucketOf maps a cell (clamped into bounds) to bucket coordinates.
func (idx *BoxIndex) bucketOf(p IntVect) (bx, by int) {
	bx = (p.X - idx.bounds.Lo.X) / idx.cellX
	by = (p.Y - idx.bounds.Lo.Y) / idx.cellY
	return
}

// Len returns the number of indexed boxes (including empty ones).
func (idx *BoxIndex) Len() int { return len(idx.boxes) }

// Intersecting appends the indices of all boxes intersecting b to out and
// returns it, in ascending index order with no duplicates. Passing a
// reusable out slice (sliced to zero length) avoids per-query allocation.
func (idx *BoxIndex) Intersecting(b Box, out []int) []int {
	if len(idx.buckets) == 0 {
		return out
	}
	q := b.Intersect(idx.bounds)
	if q.IsEmpty() {
		return out
	}
	bx0, by0 := idx.bucketOf(q.Lo)
	bx1, by1 := idx.bucketOf(q.Hi)
	start := len(out)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, i := range idx.buckets[by*idx.nbx+bx] {
				if idx.boxes[i].Intersects(b) {
					out = append(out, int(i))
				}
			}
		}
	}
	// A box spanning multiple queried buckets appears once per bucket;
	// sort + compact restores the deterministic ascending order.
	hits := out[start:]
	if len(hits) > 1 {
		sort.Ints(hits)
		w := 1
		for r := 1; r < len(hits); r++ {
			if hits[r] != hits[r-1] {
				hits[w] = hits[r]
				w++
			}
		}
		out = out[:start+w]
	}
	return out
}

// Owner returns the lowest index of a box containing cell p, or -1 if no
// box covers it. For disjoint box sets this is the unique owner; for
// overlapping sets it matches the first hit of an ascending linear scan.
func (idx *BoxIndex) Owner(p IntVect) int {
	if len(idx.buckets) == 0 || !idx.bounds.Contains(p) {
		return -1
	}
	bx, by := idx.bucketOf(p)
	best := -1
	for _, i := range idx.buckets[by*idx.nbx+bx] {
		if idx.boxes[i].Contains(p) && (best < 0 || int(i) < best) {
			best = int(i)
		}
	}
	return best
}

// Contains reports whether any indexed box covers cell p.
func (idx *BoxIndex) Contains(p IntVect) bool { return idx.Owner(p) >= 0 }

// FingerprintBoxes computes an FNV-1a content hash of a box list. Two
// lists fingerprint equal iff they hold the same boxes in the same order
// (up to hash collision, which is negligible at 64 bits). Plan caches key
// on fingerprints so metadata computed for one grid generation can never
// be applied to another.
func FingerprintBoxes(boxes []Box) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int) {
		u := uint64(v)
		for k := 0; k < 8; k++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	mix(len(boxes))
	for _, b := range boxes {
		mix(b.Lo.X)
		mix(b.Lo.Y)
		mix(b.Hi.X)
		mix(b.Hi.Y)
	}
	return h
}
