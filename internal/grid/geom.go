package grid

import "fmt"

// Geom describes the physical geometry of a level's index space: the
// problem domain in physical coordinates, the covering index box, and the
// derived mesh spacing. It mirrors amrex::Geometry for the 2D Cartesian
// case (geometry.coord_sys = 0 in the Castro inputs file).
type Geom struct {
	Domain         Box // covering index box at this level
	ProbLo, ProbHi [2]float64
	CellSize       [2]float64
}

// NewGeom builds the geometry for a domain box spanning [probLo, probHi].
func NewGeom(domain Box, probLo, probHi [2]float64) Geom {
	s := domain.Size()
	return Geom{
		Domain: domain,
		ProbLo: probLo,
		ProbHi: probHi,
		CellSize: [2]float64{
			(probHi[0] - probLo[0]) / float64(s.X),
			(probHi[1] - probLo[1]) / float64(s.Y),
		},
	}
}

// Refine returns the geometry of the level ratio times finer: same physical
// extent, refined domain box, proportionally smaller cells.
func (g Geom) Refine(ratio int) Geom {
	return NewGeom(g.Domain.Refine(ratio), g.ProbLo, g.ProbHi)
}

// CellCenter returns the physical coordinates of the center of cell (i,j).
func (g Geom) CellCenter(i, j int) (x, y float64) {
	x = g.ProbLo[0] + (float64(i-g.Domain.Lo.X)+0.5)*g.CellSize[0]
	y = g.ProbLo[1] + (float64(j-g.Domain.Lo.Y)+0.5)*g.CellSize[1]
	return
}

// CellLo returns the physical coordinates of the lower-left corner of cell (i,j).
func (g Geom) CellLo(i, j int) (x, y float64) {
	x = g.ProbLo[0] + float64(i-g.Domain.Lo.X)*g.CellSize[0]
	y = g.ProbLo[1] + float64(j-g.Domain.Lo.Y)*g.CellSize[1]
	return
}

func (g Geom) String() string {
	return fmt.Sprintf("Geom{domain=%s dx=(%g,%g)}", g.Domain, g.CellSize[0], g.CellSize[1])
}
