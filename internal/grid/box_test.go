package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntVectArithmetic(t *testing.T) {
	a, b := IV(3, -2), IV(-1, 5)
	if got := a.Add(b); got != IV(2, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != IV(4, -7) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(3); got != IV(9, -6) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Min(b); got != IV(-1, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != IV(3, 5) {
		t.Errorf("Max = %v", got)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 2, 3}, {-7, 2, -4}, {8, 2, 4}, {-8, 2, -4},
		{0, 4, 0}, {-1, 4, -1}, {-4, 4, -1}, {-5, 4, -2},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntVectCoarsenRefine(t *testing.T) {
	v := IV(-3, 7)
	if got := v.Coarsen(2); got != IV(-2, 3) {
		t.Errorf("Coarsen = %v", got)
	}
	if got := v.Refine(2); got != IV(-6, 14) {
		t.Errorf("Refine = %v", got)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(IV(0, 0), IV(3, 7))
	if b.IsEmpty() {
		t.Fatal("box should not be empty")
	}
	if got := b.Size(); got != IV(4, 8) {
		t.Errorf("Size = %v", got)
	}
	if got := b.NumPts(); got != 32 {
		t.Errorf("NumPts = %d", got)
	}
	if !b.Contains(IV(3, 7)) || b.Contains(IV(4, 7)) {
		t.Error("Contains wrong at boundary")
	}
	e := Empty()
	if !e.IsEmpty() || e.NumPts() != 0 {
		t.Error("Empty() not empty")
	}
}

func TestBoxFromSize(t *testing.T) {
	b := BoxFromSize(IV(2, 3), IV(4, 5))
	if b.Lo != IV(2, 3) || b.Hi != IV(5, 7) {
		t.Errorf("BoxFromSize = %v", b)
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox(IV(0, 0), IV(9, 9))
	b := NewBox(IV(5, 5), IV(15, 15))
	got := a.Intersect(b)
	want := NewBox(IV(5, 5), IV(9, 9))
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	c := NewBox(IV(20, 20), IV(25, 25))
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint boxes should intersect empty")
	}
	if a.Intersects(c) {
		t.Error("Intersects(disjoint) = true")
	}
}

func TestBoxGrowShift(t *testing.T) {
	b := NewBox(IV(2, 2), IV(5, 5))
	g := b.Grow(2)
	if !g.Equal(NewBox(IV(0, 0), IV(7, 7))) {
		t.Errorf("Grow = %v", g)
	}
	if !g.Grow(-2).Equal(b) {
		t.Error("Grow(-n) does not invert Grow(n)")
	}
	s := b.Shift(IV(-2, 3))
	if !s.Equal(NewBox(IV(0, 5), IV(3, 8))) {
		t.Errorf("Shift = %v", s)
	}
}

func TestBoxRefineCoarsen(t *testing.T) {
	b := NewBox(IV(1, 2), IV(3, 4))
	r := b.Refine(2)
	if !r.Equal(NewBox(IV(2, 4), IV(7, 9))) {
		t.Errorf("Refine = %v", r)
	}
	if !r.Coarsen(2).Equal(b) {
		t.Error("Coarsen does not invert Refine")
	}
	// Refining preserves cell count times ratio^2.
	if r.NumPts() != b.NumPts()*4 {
		t.Errorf("Refine NumPts = %d, want %d", r.NumPts(), b.NumPts()*4)
	}
}

func TestBoxRefineCoarsenProperty(t *testing.T) {
	f := func(lox, loy int16, sx, sy uint8, ratioBit bool) bool {
		ratio := 2
		if ratioBit {
			ratio = 4
		}
		b := BoxFromSize(IV(int(lox), int(loy)), IV(int(sx%32)+1, int(sy%32)+1))
		r := b.Refine(ratio)
		// Coarsen inverts refine exactly.
		if !r.Coarsen(ratio).Equal(b) {
			return false
		}
		return r.NumPts() == b.NumPts()*int64(ratio)*int64(ratio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoxChop(t *testing.T) {
	b := NewBox(IV(0, 0), IV(9, 9))
	l, r := b.ChopX(4)
	if !l.Equal(NewBox(IV(0, 0), IV(3, 9))) || !r.Equal(NewBox(IV(4, 0), IV(9, 9))) {
		t.Errorf("ChopX = %v | %v", l, r)
	}
	if l.NumPts()+r.NumPts() != b.NumPts() {
		t.Error("ChopX loses cells")
	}
	bt, tp := b.ChopY(7)
	if bt.NumPts()+tp.NumPts() != b.NumPts() {
		t.Error("ChopY loses cells")
	}
	if tp.Lo.Y != 7 {
		t.Errorf("ChopY top starts at %d", tp.Lo.Y)
	}
}

func TestBoxSplitMax(t *testing.T) {
	b := NewBox(IV(0, 0), IV(255, 255))
	pieces := b.SplitMax(64, 8)
	var total int64
	for _, p := range pieces {
		s := p.Size()
		if s.X > 64 || s.Y > 64 {
			t.Errorf("piece %v exceeds max size", p)
		}
		if p.Lo.X%8 != 0 || p.Lo.Y%8 != 0 {
			t.Errorf("piece %v not aligned to blocking factor", p)
		}
		total += p.NumPts()
	}
	if total != b.NumPts() {
		t.Errorf("SplitMax total = %d, want %d", total, b.NumPts())
	}
	// Pieces must be pairwise disjoint.
	for i := range pieces {
		for j := i + 1; j < len(pieces); j++ {
			if pieces[i].Intersects(pieces[j]) {
				t.Errorf("pieces %v and %v overlap", pieces[i], pieces[j])
			}
		}
	}
}

func TestBoxSplitMaxSmallStaysWhole(t *testing.T) {
	b := NewBox(IV(0, 0), IV(15, 15))
	pieces := b.SplitMax(64, 8)
	if len(pieces) != 1 || !pieces[0].Equal(b) {
		t.Errorf("small box split unexpectedly: %v", pieces)
	}
}

func TestBoxDifference(t *testing.T) {
	b := NewBox(IV(0, 0), IV(9, 9))
	hole := NewBox(IV(3, 3), IV(6, 6))
	parts := b.Difference(hole)
	var total int64
	for _, p := range parts {
		if p.Intersects(hole) {
			t.Errorf("difference part %v overlaps hole", p)
		}
		total += p.NumPts()
	}
	if total != b.NumPts()-hole.NumPts() {
		t.Errorf("Difference total = %d, want %d", total, b.NumPts()-hole.NumPts())
	}
	// Disjoint: difference is the original.
	parts = b.Difference(NewBox(IV(20, 20), IV(22, 22)))
	if len(parts) != 1 || !parts[0].Equal(b) {
		t.Errorf("disjoint Difference = %v", parts)
	}
	// Fully covered: difference is empty.
	if parts := hole.Difference(b); len(parts) != 0 {
		t.Errorf("covered Difference = %v", parts)
	}
}

func TestBoxDifferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		b := BoxFromSize(IV(rng.Intn(10), rng.Intn(10)), IV(rng.Intn(12)+1, rng.Intn(12)+1))
		o := BoxFromSize(IV(rng.Intn(10), rng.Intn(10)), IV(rng.Intn(12)+1, rng.Intn(12)+1))
		parts := b.Difference(o)
		var total int64
		for i, p := range parts {
			if p.IsEmpty() {
				t.Fatalf("empty part in difference of %v minus %v", b, o)
			}
			if p.Intersects(o) {
				t.Fatalf("part %v intersects subtrahend %v", p, o)
			}
			if !b.ContainsBox(p) {
				t.Fatalf("part %v outside original %v", p, b)
			}
			for j := i + 1; j < len(parts); j++ {
				if p.Intersects(parts[j]) {
					t.Fatalf("overlapping parts %v, %v", p, parts[j])
				}
			}
			total += p.NumPts()
		}
		if want := b.NumPts() - b.Intersect(o).NumPts(); total != want {
			t.Fatalf("difference cells = %d, want %d (b=%v o=%v)", total, want, b, o)
		}
	}
}

func TestMortonOrdering(t *testing.T) {
	// The unit Z pattern around any anchor: +1 in x sets the low x bit, +1
	// in y sets the low y bit (one position up).
	base := Morton(0, 0)
	if Morton(1, 0) != base+1 || Morton(0, 1) != base+2 || Morton(1, 1) != base+3 {
		t.Errorf("Morton unit cells = %d %d %d (base %d)",
			Morton(1, 0), Morton(0, 1), Morton(1, 1), base)
	}
	// Monotone along the diagonal — including across the origin, which is
	// what the sign bias buys (plain uint32 truncation wraps negatives to
	// the top of the code range).
	prev := Morton(-100, -100)
	for d := -99; d < 100; d++ {
		m := Morton(d, d)
		if m <= prev {
			t.Fatalf("Morton not monotone on diagonal at %d", d)
		}
		prev = m
	}
}

// TestMortonNegativeCoordinates is the regression for the uint32-wrap bug:
// negative coordinates must order below non-negative ones, not above them.
func TestMortonNegativeCoordinates(t *testing.T) {
	if !(Morton(-1, 0) < Morton(0, 0)) {
		t.Errorf("Morton(-1,0)=%d not < Morton(0,0)=%d", Morton(-1, 0), Morton(0, 0))
	}
	if !(Morton(0, -1) < Morton(0, 0)) {
		t.Errorf("Morton(0,-1)=%d not < Morton(0,0)=%d", Morton(0, -1), Morton(0, 0))
	}
	// A sequence straddling the origin along one axis stays ordered.
	xs := []int{-8, -4, -1, 0, 1, 4, 8}
	for i := 1; i < len(xs); i++ {
		if !(Morton(xs[i-1], 0) < Morton(xs[i], 0)) {
			t.Fatalf("Morton x-order broken at %d -> %d", xs[i-1], xs[i])
		}
	}
}

func TestGeom(t *testing.T) {
	dom := NewBox(IV(0, 0), IV(31, 31))
	g := NewGeom(dom, [2]float64{0, 0}, [2]float64{1, 1})
	if g.CellSize[0] != 1.0/32 || g.CellSize[1] != 1.0/32 {
		t.Errorf("CellSize = %v", g.CellSize)
	}
	x, y := g.CellCenter(0, 0)
	if x != 0.5/32 || y != 0.5/32 {
		t.Errorf("CellCenter(0,0) = %g,%g", x, y)
	}
	fine := g.Refine(2)
	if fine.Domain.Size() != IV(64, 64) {
		t.Errorf("refined domain = %v", fine.Domain)
	}
	if fine.CellSize[0] != 1.0/64 {
		t.Errorf("refined dx = %g", fine.CellSize[0])
	}
	// Physical extent preserved.
	xl, yl := fine.CellLo(0, 0)
	if xl != 0 || yl != 0 {
		t.Errorf("CellLo = %g,%g", xl, yl)
	}
}

func TestGeomCellCenterCoversDomain(t *testing.T) {
	dom := NewBox(IV(0, 0), IV(7, 3))
	g := NewGeom(dom, [2]float64{0, 0}, [2]float64{2, 1})
	x, y := g.CellCenter(7, 3)
	if x >= 2 || y >= 1 {
		t.Errorf("last cell center %g,%g outside domain", x, y)
	}
	if x != 2-0.5*g.CellSize[0] {
		t.Errorf("last center x = %g", x)
	}
	_ = y
}
