// Package grid provides the integer index-space geometry primitives used by
// the block-structured AMR machinery: integer vectors, cell-centered boxes,
// refinement/coarsening arithmetic, and physical domain geometry.
//
// The design follows AMReX's Box calculus restricted to two dimensions,
// which is what the paper's Sedov 2D study exercises.
package grid

import "fmt"

// IntVect is a point in the 2D integer index space.
type IntVect struct {
	X, Y int
}

// IV is shorthand for constructing an IntVect.
func IV(x, y int) IntVect { return IntVect{X: x, Y: y} }

// Add returns v + w componentwise.
func (v IntVect) Add(w IntVect) IntVect { return IntVect{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w componentwise.
func (v IntVect) Sub(w IntVect) IntVect { return IntVect{v.X - w.X, v.Y - w.Y} }

// Mul returns v scaled by s componentwise.
func (v IntVect) Mul(s int) IntVect { return IntVect{v.X * s, v.Y * s} }

// Min returns the componentwise minimum of v and w.
func (v IntVect) Min(w IntVect) IntVect {
	return IntVect{min(v.X, w.X), min(v.Y, w.Y)}
}

// Max returns the componentwise maximum of v and w.
func (v IntVect) Max(w IntVect) IntVect {
	return IntVect{max(v.X, w.X), max(v.Y, w.Y)}
}

// AllGE reports whether every component of v is >= the matching component of w.
func (v IntVect) AllGE(w IntVect) bool { return v.X >= w.X && v.Y >= w.Y }

// AllLE reports whether every component of v is <= the matching component of w.
func (v IntVect) AllLE(w IntVect) bool { return v.X <= w.X && v.Y <= w.Y }

// Coarsen divides each component by ratio, rounding toward negative infinity,
// which is the AMReX convention for index-space coarsening.
func (v IntVect) Coarsen(ratio int) IntVect {
	return IntVect{floorDiv(v.X, ratio), floorDiv(v.Y, ratio)}
}

// Refine multiplies each component by ratio.
func (v IntVect) Refine(ratio int) IntVect { return v.Mul(ratio) }

func (v IntVect) String() string { return fmt.Sprintf("(%d,%d)", v.X, v.Y) }

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Morton interleaves the low 32 bits of x and y into a Morton (Z-order)
// code. It is used by the space-filling-curve distribution mapping to keep
// spatially adjacent boxes on nearby ranks.
//
// Coordinates are sign-biased with an XOR 0x80000000 flip before
// interleaving, mapping int32 order onto uint32 order. Without the bias,
// plain uint32 truncation wraps negative coordinates to the top of the
// code range, so a domain with a negative lo corner has its space-filling
// curve torn at the origin and DistSFC hands spatially adjacent boxes to
// distant ranks.
func Morton(x, y int) uint64 {
	return spread(uint64(uint32(x)^0x80000000)) | spread(uint64(uint32(y)^0x80000000))<<1
}

// spread inserts a zero bit between each of the low 32 bits of v.
func spread(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}
