package grid

import "fmt"

// Box is a cell-centered rectangular region of the 2D index space. Both
// corners are inclusive: the box covers cells (i,j) with
// Lo.X <= i <= Hi.X and Lo.Y <= j <= Hi.Y.
//
// The zero Box (Lo == Hi == (0,0)) is a valid one-cell box; use Empty() to
// construct an explicitly invalid/empty box.
type Box struct {
	Lo, Hi IntVect
}

// NewBox builds a box from inclusive corners.
func NewBox(lo, hi IntVect) Box { return Box{Lo: lo, Hi: hi} }

// BoxFromSize builds a box anchored at lo covering size.X x size.Y cells.
func BoxFromSize(lo, size IntVect) Box {
	return Box{Lo: lo, Hi: IntVect{lo.X + size.X - 1, lo.Y + size.Y - 1}}
}

// Empty returns a canonical empty box (Hi < Lo in every direction).
func Empty() Box { return Box{Lo: IntVect{0, 0}, Hi: IntVect{-1, -1}} }

// IsEmpty reports whether the box contains no cells.
func (b Box) IsEmpty() bool { return b.Hi.X < b.Lo.X || b.Hi.Y < b.Lo.Y }

// Size returns the number of cells along each direction.
func (b Box) Size() IntVect {
	if b.IsEmpty() {
		return IntVect{0, 0}
	}
	return IntVect{b.Hi.X - b.Lo.X + 1, b.Hi.Y - b.Lo.Y + 1}
}

// NumPts returns the total number of cells in the box.
func (b Box) NumPts() int64 {
	s := b.Size()
	return int64(s.X) * int64(s.Y)
}

// Contains reports whether cell p lies inside the box.
func (b Box) Contains(p IntVect) bool {
	return p.AllGE(b.Lo) && p.AllLE(b.Hi)
}

// ContainsBox reports whether o is entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	if o.IsEmpty() {
		return true
	}
	return o.Lo.AllGE(b.Lo) && o.Hi.AllLE(b.Hi)
}

// Intersect returns the overlap of b and o (possibly empty).
func (b Box) Intersect(o Box) Box {
	r := Box{Lo: b.Lo.Max(o.Lo), Hi: b.Hi.Min(o.Hi)}
	if r.IsEmpty() {
		return Empty()
	}
	return r
}

// Intersects reports whether b and o share at least one cell.
func (b Box) Intersects(o Box) bool { return !b.Intersect(o).IsEmpty() }

// Grow expands the box by n cells in every direction (negative n shrinks).
func (b Box) Grow(n int) Box {
	return Box{Lo: IntVect{b.Lo.X - n, b.Lo.Y - n}, Hi: IntVect{b.Hi.X + n, b.Hi.Y + n}}
}

// Shift translates the box by v.
func (b Box) Shift(v IntVect) Box {
	return Box{Lo: b.Lo.Add(v), Hi: b.Hi.Add(v)}
}

// Refine maps the box to the index space that is ratio times finer. A
// cell-centered box [lo,hi] refines to [lo*r, (hi+1)*r - 1].
func (b Box) Refine(ratio int) Box {
	if b.IsEmpty() {
		return b
	}
	return Box{
		Lo: b.Lo.Refine(ratio),
		Hi: IntVect{(b.Hi.X+1)*ratio - 1, (b.Hi.Y+1)*ratio - 1},
	}
}

// Coarsen maps the box to the index space ratio times coarser, covering
// every coarse cell that overlaps the fine box.
func (b Box) Coarsen(ratio int) Box {
	if b.IsEmpty() {
		return b
	}
	return Box{Lo: b.Lo.Coarsen(ratio), Hi: b.Hi.Coarsen(ratio)}
}

// ChopX splits the box at index i (the right part starts at i). The caller
// must pass Lo.X < i <= Hi.X.
func (b Box) ChopX(i int) (left, right Box) {
	left = Box{Lo: b.Lo, Hi: IntVect{i - 1, b.Hi.Y}}
	right = Box{Lo: IntVect{i, b.Lo.Y}, Hi: b.Hi}
	return
}

// ChopY splits the box at index j (the upper part starts at j). The caller
// must pass Lo.Y < j <= Hi.Y.
func (b Box) ChopY(j int) (bottom, top Box) {
	bottom = Box{Lo: b.Lo, Hi: IntVect{b.Hi.X, j - 1}}
	top = Box{Lo: IntVect{b.Lo.X, j}, Hi: b.Hi}
	return
}

// LongDir returns 0 if the box is at least as long in X as in Y, else 1.
func (b Box) LongDir() int {
	s := b.Size()
	if s.X >= s.Y {
		return 0
	}
	return 1
}

func (b Box) String() string {
	return fmt.Sprintf("[%s..%s]", b.Lo, b.Hi)
}

// Equal reports exact equality of corners.
func (b Box) Equal(o Box) bool { return b.Lo == o.Lo && b.Hi == o.Hi }

// SplitMax recursively halves the box along its long direction until every
// piece is at most maxSize cells in each direction, keeping piece boundaries
// aligned to blockingFactor. blockingFactor must evenly divide maxSize for
// alignment to be guaranteed; pass 1 to disable alignment.
func (b Box) SplitMax(maxSize, blockingFactor int) []Box {
	if b.IsEmpty() {
		return nil
	}
	s := b.Size()
	if s.X <= maxSize && s.Y <= maxSize {
		return []Box{b}
	}
	dir := 0
	if s.Y > s.X {
		dir = 1
	}
	var lo, hi Box
	if dir == 0 {
		mid := b.Lo.X + alignDown(s.X/2, blockingFactor)
		if mid <= b.Lo.X {
			mid = b.Lo.X + blockingFactor
		}
		if mid > b.Hi.X {
			return []Box{b}
		}
		lo, hi = b.ChopX(mid)
	} else {
		mid := b.Lo.Y + alignDown(s.Y/2, blockingFactor)
		if mid <= b.Lo.Y {
			mid = b.Lo.Y + blockingFactor
		}
		if mid > b.Hi.Y {
			return []Box{b}
		}
		lo, hi = b.ChopY(mid)
	}
	out := b.appendSplit(nil, lo, maxSize, blockingFactor)
	out = b.appendSplit(out, hi, maxSize, blockingFactor)
	return out
}

func (Box) appendSplit(dst []Box, b Box, maxSize, blockingFactor int) []Box {
	return append(dst, b.SplitMax(maxSize, blockingFactor)...)
}

func alignDown(v, m int) int {
	if m <= 1 {
		return v
	}
	return v - v%m
}

// Difference returns b minus o as a set of disjoint boxes. If the boxes do
// not intersect the result is {b}.
func (b Box) Difference(o Box) []Box {
	isect := b.Intersect(o)
	if isect.IsEmpty() {
		if b.IsEmpty() {
			return nil
		}
		return []Box{b}
	}
	if isect.Equal(b) {
		return nil
	}
	var out []Box
	rem := b
	// Peel off slabs left/right of the intersection in X, then below/above in Y.
	if rem.Lo.X < isect.Lo.X {
		var left Box
		left, rem = rem.ChopX(isect.Lo.X)
		out = append(out, left)
	}
	if rem.Hi.X > isect.Hi.X {
		var right Box
		rem, right = rem.ChopX(isect.Hi.X + 1)
		out = append(out, right)
	}
	if rem.Lo.Y < isect.Lo.Y {
		var bottom Box
		bottom, rem = rem.ChopY(isect.Lo.Y)
		out = append(out, bottom)
	}
	if rem.Hi.Y > isect.Hi.Y {
		var top Box
		rem, top = rem.ChopY(isect.Hi.Y + 1)
		out = append(out, top)
	}
	return out
}
