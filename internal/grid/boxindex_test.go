package grid

import (
	"math/rand"
	"testing"
)

// randomBoxes generates n boxes with random position and size, possibly
// overlapping, inside roughly [0, span)^2.
func randomBoxes(rng *rand.Rand, n, span int) []Box {
	boxes := make([]Box, n)
	for i := range boxes {
		lo := IV(rng.Intn(span)-span/4, rng.Intn(span)-span/4)
		boxes[i] = BoxFromSize(lo, IV(rng.Intn(24)+1, rng.Intn(24)+1))
	}
	return boxes
}

// naiveIntersecting is the O(N) reference the index must reproduce.
func naiveIntersecting(boxes []Box, q Box) []int {
	var out []int
	for i, b := range boxes {
		if b.Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

func naiveOwner(boxes []Box, p IntVect) int {
	for i, b := range boxes {
		if b.Contains(p) {
			return i
		}
	}
	return -1
}

func TestBoxIndexMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		boxes := randomBoxes(rng, rng.Intn(60)+1, 200)
		idx := NewBoxIndex(boxes)
		for q := 0; q < 40; q++ {
			qb := BoxFromSize(
				IV(rng.Intn(300)-100, rng.Intn(300)-100),
				IV(rng.Intn(40)+1, rng.Intn(40)+1))
			got := idx.Intersecting(qb, nil)
			want := naiveIntersecting(boxes, qb)
			if len(got) != len(want) {
				t.Fatalf("iter %d query %v: got %v want %v", iter, qb, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("iter %d query %v: got %v want %v", iter, qb, got, want)
				}
			}
		}
		for q := 0; q < 80; q++ {
			p := IV(rng.Intn(300)-100, rng.Intn(300)-100)
			if got, want := idx.Owner(p), naiveOwner(boxes, p); got != want {
				t.Fatalf("iter %d owner(%v) = %d, want %d", iter, p, got, want)
			}
		}
	}
}

func TestBoxIndexEmptyAndDegenerate(t *testing.T) {
	idx := NewBoxIndex(nil)
	if got := idx.Intersecting(NewBox(IV(0, 0), IV(9, 9)), nil); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
	if idx.Owner(IV(0, 0)) != -1 {
		t.Fatal("empty index owned a point")
	}
	// Empty boxes are indexed nowhere.
	idx = NewBoxIndex([]Box{Empty(), NewBox(IV(0, 0), IV(3, 3)), Empty()})
	if got := idx.Intersecting(NewBox(IV(-10, -10), IV(10, 10)), nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("expected only box 1, got %v", got)
	}
	if idx.Owner(IV(2, 2)) != 1 {
		t.Fatalf("owner = %d, want 1", idx.Owner(IV(2, 2)))
	}
}

// TestBoxIndexScratchReuse verifies the out-slice contract: appending to a
// reused scratch buffer yields the same results as fresh allocation.
func TestBoxIndexScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	boxes := randomBoxes(rng, 30, 100)
	idx := NewBoxIndex(boxes)
	var scratch []int
	for q := 0; q < 50; q++ {
		qb := BoxFromSize(IV(rng.Intn(120)-10, rng.Intn(120)-10), IV(rng.Intn(30)+1, rng.Intn(30)+1))
		scratch = idx.Intersecting(qb, scratch[:0])
		fresh := idx.Intersecting(qb, nil)
		if len(scratch) != len(fresh) {
			t.Fatalf("scratch %v != fresh %v", scratch, fresh)
		}
		for k := range fresh {
			if scratch[k] != fresh[k] {
				t.Fatalf("scratch %v != fresh %v", scratch, fresh)
			}
		}
	}
}

// TestBoxIndexSparse exercises the bucket-count cap: a few small boxes in
// a huge bounding box must stay cheap and correct.
func TestBoxIndexSparse(t *testing.T) {
	boxes := []Box{
		NewBox(IV(0, 0), IV(7, 7)),
		NewBox(IV(100000, 100000), IV(100007, 100007)),
		NewBox(IV(-50000, 70000), IV(-49993, 70007)),
	}
	idx := NewBoxIndex(boxes)
	for i, b := range boxes {
		got := idx.Intersecting(b, nil)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("box %d: got %v", i, got)
		}
		if idx.Owner(b.Lo) != i {
			t.Fatalf("owner of %v = %d, want %d", b.Lo, idx.Owner(b.Lo), i)
		}
	}
}

func TestFingerprintBoxes(t *testing.T) {
	a := []Box{NewBox(IV(0, 0), IV(7, 7)), NewBox(IV(8, 0), IV(15, 7))}
	b := []Box{NewBox(IV(0, 0), IV(7, 7)), NewBox(IV(8, 0), IV(15, 7))}
	if FingerprintBoxes(a) != FingerprintBoxes(b) {
		t.Fatal("identical lists fingerprint differently")
	}
	// Order matters (plans replay by index).
	c := []Box{b[1], b[0]}
	if FingerprintBoxes(a) == FingerprintBoxes(c) {
		t.Fatal("reordered list fingerprints equal")
	}
	// A one-cell shift changes the fingerprint.
	d := []Box{NewBox(IV(0, 0), IV(7, 7)), NewBox(IV(8, 0), IV(15, 8))}
	if FingerprintBoxes(a) == FingerprintBoxes(d) {
		t.Fatal("shifted list fingerprints equal")
	}
	if FingerprintBoxes(nil) == FingerprintBoxes(a) {
		t.Fatal("empty list collides with non-empty")
	}
}
