package iosim

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestAggregationAllRanksByteIdenticalToDirect is the acceptance pin for
// the two-phase layer: the "all" spec (one aggregator per rank, zero
// gather, MIF layout) produces a ledger, burst statistics,
// characterization, and rendering byte-identical to the direct-write
// path, for all four storage stacks, with and without a topology (the
// PR-5/PR-7 zero-config pin idiom).
func TestAggregationAllRanksByteIdenticalToDirect(t *testing.T) {
	stacks := append([]string{StorageDefault}, StorageKinds()...)
	for _, storage := range stacks {
		for _, topo := range []Topology{
			{},
			{Nodes: 3, NICBandwidth: 5e9, Targets: 4, TargetBandwidth: 2e9},
		} {
			cfg := DefaultConfig()
			cfg.JitterSigma = 0.2 // jitter on: the pin must hold bit-for-bit with it
			cfg.Topology = topo
			cfg.Storage = storage
			// A small buffer so the bb stacks exercise fills, stalls,
			// and drains on both sides of the comparison.
			cfg.BurstBuffer = BurstBuffer{
				NodeCapacity:   2e6,
				NodeBandwidth:  5e8,
				DrainBandwidth: 1e8,
				Nodes:          3,
			}

			direct := cfg
			agged := cfg
			agged.Aggregation = AggregationSpec{Aggregators: AggregatorsAll}

			a := driveStorageOps(t, direct)
			b := driveStorageOps(t, agged)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("storage %q topology %+v: all-ranks aggregation ledger differs from direct", storage, topo)
			}
			sa, sb := BurstStats(a), BurstStats(b)
			if len(sa) != len(sb) {
				t.Fatalf("storage %q topology %+v: burst counts differ", storage, topo)
			}
			for i := range sa {
				x, y := sa[i], sb[i]
				approx(t, "MeanSeconds", &x.MeanSeconds, &y.MeanSeconds)
				approx(t, "MeanLinkSeconds", &x.MeanLinkSeconds, &y.MeanLinkSeconds)
				approx(t, "LinkSkew", &x.LinkSkew, &y.LinkSkew)
				approx(t, "NodeSkew", &x.NodeSkew, &y.NodeSkew)
				if x != y {
					t.Fatalf("storage %q topology %+v: burst %d differs:\n%+v\n%+v", storage, topo, i, x, y)
				}
			}
			ca, cb := Characterize(a), Characterize(b)
			approx(t, "RankImbalance", &ca.RankImbalance, &cb.RankImbalance)
			approx(t, "NodeImbalance", &ca.NodeImbalance, &cb.NodeImbalance)
			approx(t, "LinkImbalance", &ca.LinkImbalance, &cb.LinkImbalance)
			if !reflect.DeepEqual(ca, cb) {
				t.Fatalf("storage %q topology %+v: characterizations differ:\n%+v\n%+v", storage, topo, ca, cb)
			}
			if ra, rb := ca.Render(), cb.Render(); ra != rb {
				t.Fatalf("storage %q topology %+v: renders differ:\n%s\n%s", storage, topo, ra, rb)
			}
			// The identity spec must not leak aggregation artifacts.
			for _, r := range b {
				if r.GatherSeconds != 0 {
					t.Fatalf("all-ranks record carries gather time: %+v", r)
				}
			}
		}
	}
}

// TestAggregationTwoPhaseSemantics walks the 1/node collective through
// hand-computed numbers: members pay gather and no open, their bytes fan
// into the aggregator's target, aggregators pay the layout-scaled open,
// and the write phase moves at the aggregator-set contention snapshot
// time-shared across the group.
func TestAggregationTwoPhaseSemantics(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 30,
		OpenLatency:        2.0,
		Topology: Topology{
			Nodes: 2, RanksPerNode: 2,
			Targets: 2, TargetBandwidth: 40,
		},
		Aggregation: AggregationSpec{
			Aggregators:     "1/node",
			GatherBandwidth: 8,
		},
	}
	fs := New(cfg, "")
	fs.BeginBurst(4)
	// Aggregators 0 and 2 both round-robin onto target 0: the
	// aggregator-set fan-in is 2 on target 0 (share 40/2 = 20), the
	// per-writer cap 30 doesn't bind, and each 2-rank group time-shares
	// its aggregator's 20 B/s stream at 10 B/s.
	durs := make([]float64, 4)
	for r := 0; r < 4; r++ {
		d, err := fs.WriteSize(r, "plt/Cell_D", 80, Labels{})
		if err != nil {
			t.Fatal(err)
		}
		durs[r] = d
	}
	fs.EndBurst()

	// Aggregator: open 2.0 * (A/n = 2/4) + write 80/10 = 1 + 8.
	if math.Abs(durs[0]-9) > 1e-12 || math.Abs(durs[2]-9) > 1e-12 {
		t.Errorf("aggregator durations = %g, %g, want 9", durs[0], durs[2])
	}
	// Member: gather 80/8 + write 80/10, no open.
	if math.Abs(durs[1]-18) > 1e-12 || math.Abs(durs[3]-18) > 1e-12 {
		t.Errorf("member durations = %g, %g, want 18", durs[1], durs[3])
	}

	rec := fs.Ledger()
	if len(rec) != 4 {
		t.Fatalf("ledger len = %d", len(rec))
	}
	for _, r := range rec {
		if r.Target != 0 {
			t.Errorf("rank %d fanned into target %d, want the aggregator's target 0", r.Rank, r.Target)
		}
	}
	if rec[0].OpenSeconds != 1 || rec[0].GatherSeconds != 0 {
		t.Errorf("aggregator record = %+v, want open 1 gather 0", rec[0])
	}
	if rec[1].OpenSeconds != 0 || math.Abs(rec[1].GatherSeconds-10) > 1e-12 {
		t.Errorf("member record = %+v, want open 0 gather 10", rec[1])
	}

	// Fan-in before/after: 4 ranks funnel through 2 writers on 1 target.
	writers := map[int]bool{}
	targets := map[int]bool{}
	for _, r := range rec {
		if r.OpenSeconds > 0 {
			writers[r.Rank] = true
		}
		targets[r.Target] = true
	}
	if len(writers) != 2 || len(targets) != 1 {
		t.Errorf("writers %d targets %d, want 2 writers on 1 target", len(writers), len(targets))
	}
}

// TestAggregationLayoutOpens pins the metadata model: MIF scales opens
// with the aggregator count, SIF adds lock negotiation per peer, and the
// two coincide for a single aggregator.
func TestAggregationLayoutOpens(t *testing.T) {
	base := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 1e12,
		OpenLatency:        1.0,
	}
	open := func(spec AggregationSpec, n int) float64 {
		cfg := base
		cfg.Aggregation = spec
		fs := New(cfg, "")
		fs.BeginBurst(n)
		defer fs.EndBurst()
		if _, err := fs.WriteSize(0, "f", 0, Labels{}); err != nil {
			t.Fatal(err)
		}
		return fs.Ledger()[0].OpenSeconds
	}
	// Without a topology "K/node" means K aggregators total.
	mif := open(AggregationSpec{Aggregators: "2/node"}, 8)
	sif := open(AggregationSpec{Aggregators: "2/node", Layout: LayoutSIF}, 8)
	if math.Abs(mif-2.0/8) > 1e-12 {
		t.Errorf("MIF open scale = %g, want A/n = 0.25", mif)
	}
	if want := (1 + sifLockFactor*1) / 8; math.Abs(sif-want) > 1e-12 {
		t.Errorf("SIF open scale = %g, want %g", sif, want)
	}
	if sif <= mif {
		t.Errorf("SIF (%g) must cost more opens than MIF (%g) for A > 1", sif, mif)
	}
	mif1 := open(AggregationSpec{Aggregators: "1/node"}, 8)
	sif1 := open(AggregationSpec{Aggregators: "1/node", Layout: LayoutSIF}, 8)
	if math.Abs(mif1-sif1) > 1e-12 {
		t.Errorf("single aggregator: MIF %g != SIF %g, one file one writer must price identically", mif1, sif1)
	}
}

// TestAggregationAsyncStaging walks the opt-in staging mode through the
// fluid fill/drain model: aggregated data is absorbed at gather-plane
// speed into the staging buffer (TierStage), drains at the aggregator-set
// write bandwidth under the compute gap, and write-throughs to storage
// (TierGPFS) once the buffer fills.
func TestAggregationAsyncStaging(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 2,
		Aggregation: AggregationSpec{
			Aggregators:     "1/node",
			Async:           true,
			GatherBandwidth: 10,
			StagingCapacity: 40,
		},
	}
	fs := New(cfg, "")
	fs.BeginBurst(2)
	// Rank 0 aggregates for both ranks: group 2, absorb 10/2 = 5 B/s,
	// staging share 40/2 = 20 B, drain at the write bandwidth
	// min(2, ...)/2 = 1 B/s.
	// 10 B: absorbed in 2s (net growth 10*4/5 = 8 B), drain tail 8s.
	d, err := fs.WriteSize(0, "a", 10, Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Errorf("absorbed write duration = %g, want 2 (sync would be 10)", d)
	}
	fs.EndBurst()

	// The 8 B backlog drains through the 8s compute gap.
	fs.AdvanceClock(0, 8)
	fs.BeginBurst(2)
	// 200 B from empty: 5s fills the 20 B share (moving 25 B), the
	// remaining 175 B write through at the 1 B/s drain -> 180s, 140s of
	// stall over the 40s full-speed absorb.
	d, err = fs.WriteSize(0, "b", 200, Labels{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-180) > 1e-12 {
		t.Errorf("overflowing write duration = %g, want 180", d)
	}
	fs.EndBurst()

	rec := fs.Ledger()
	if rec[0].Tier != TierStage || rec[0].StallSeconds != 0 {
		t.Errorf("absorbed record = %+v, want TierStage no stall", rec[0])
	}
	if math.Abs(rec[0].DrainSeconds-8) > 1e-12 || math.Abs(rec[0].BBFill-0.4) > 1e-12 {
		t.Errorf("absorbed record = %+v, want drain 8 fill 0.4", rec[0])
	}
	if rec[1].Tier != TierGPFS || math.Abs(rec[1].StallSeconds-140) > 1e-12 {
		t.Errorf("overflowing record = %+v, want TierGPFS stall 140", rec[1])
	}
}

// TestAggregationConcurrentDeterministic pins the gather-phase
// determinism contract: concurrent rank goroutines produce the same
// ledger on every run (run under -race in CI).
func TestAggregationConcurrentDeterministic(t *testing.T) {
	for _, spec := range []AggregationSpec{
		{Aggregators: "2/node"},
		{Aggregators: "1/node", Async: true},
	} {
		run := func() []WriteRecord {
			cfg := DefaultConfig()
			cfg.Topology = Topology{Nodes: 2, RanksPerNode: 4, Targets: 3, TargetBandwidth: 1e9}
			cfg.Aggregation = spec
			fs := New(cfg, "")
			const ranks = 8
			for step := 0; step < 3; step++ {
				fs.BeginBurst(ranks)
				var wg sync.WaitGroup
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						for i := 0; i < 10; i++ {
							if _, err := fs.WriteSize(rank, "w", int64(1000*(3+rank+i)), Labels{Step: step}); err != nil {
								t.Error(err)
							}
						}
					}(r)
				}
				wg.Wait()
				fs.EndBurst()
				fs.AdvanceClock(0, 0.01)
			}
			return fs.Ledger()
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %+v: aggregated ledger differs across concurrent runs", spec)
		}
	}
}

// TestAggregationValidation is the table-driven rejection suite: every
// malformed spec fails Validate with an actionable message (the PR-6
// fault-plan rejection idiom).
func TestAggregationValidation(t *testing.T) {
	cases := []struct {
		name string
		spec AggregationSpec
		want string
	}{
		{"empty", AggregationSpec{}, "needs aggregators"},
		{"zero per node", AggregationSpec{Aggregators: "0/node"}, "leaves no rank to write"},
		{"negative per node", AggregationSpec{Aggregators: "-3/node"}, "leaves no rank to write"},
		{"non-integer count", AggregationSpec{Aggregators: "x/node"}, "not an integer count"},
		{"unknown placement", AggregationSpec{Aggregators: "node"}, "unknown aggregators"},
		{"unknown layout", AggregationSpec{Aggregators: AggregatorsAll, Layout: "hdf5"}, "unknown aggregation layout"},
		{"negative gather bw", AggregationSpec{Aggregators: AggregatorsAll, GatherBandwidth: -1}, "gather bandwidth"},
		{"negative staging", AggregationSpec{Aggregators: AggregatorsAll, StagingCapacity: -1}, "staging capacity"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	for _, good := range []AggregationSpec{
		{Aggregators: AggregatorsAll},
		{Aggregators: "1/node", Layout: LayoutSIF},
		{Aggregators: "4/node", Async: true, GatherBandwidth: 1e9, StagingCapacity: 1e9},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", good, err)
		}
	}
}

// TestAggregationJSONRejectsUnknownFields pins the DisallowUnknownFields
// contract: a typo in a case file fails loudly instead of silently
// running the direct pattern.
func TestAggregationJSONRejectsUnknownFields(t *testing.T) {
	var spec AggregationSpec
	if err := json.Unmarshal([]byte(`{"aggregators":"1/node","writers":3}`), &spec); err == nil {
		t.Fatal("unknown field accepted")
	} else if !strings.Contains(err.Error(), "writers") {
		t.Fatalf("error %q does not name the unknown field", err)
	}
	if err := json.Unmarshal([]byte(`{"aggregators":}`), &spec); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"aggregators":"2/node","layout":"sif","async":true}`), &spec); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if spec.Aggregators != "2/node" || spec.Layout != LayoutSIF || !spec.Async {
		t.Fatalf("decoded spec = %+v", spec)
	}
}

// TestParseAggregation covers the CLI spec grammar.
func TestParseAggregation(t *testing.T) {
	spec, err := ParseAggregation("1/node+sif+async")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Aggregators != "1/node" || spec.Layout != LayoutSIF || !spec.Async {
		t.Fatalf("parsed spec = %+v", spec)
	}
	if spec.Token() != "1per-node-sif-async" {
		t.Fatalf("token = %q", spec.Token())
	}
	for _, bad := range []string{"", "bogus", "0/node", "all+hdf5", "1/node+fast"} {
		if _, err := ParseAggregation(bad); err == nil {
			t.Errorf("ParseAggregation accepted %q", bad)
		}
	}
}

// TestAggregatorMap pins the rank→aggregator assignment the remap layer
// folds loads through.
func TestAggregatorMap(t *testing.T) {
	topo := Topology{Nodes: 2, RanksPerNode: 2}
	if m := (AggregationSpec{}).AggregatorMap(topo, 4); m != nil {
		t.Fatalf("disabled spec produced a map: %v", m)
	}
	if m := (AggregationSpec{Aggregators: AggregatorsAll}).AggregatorMap(topo, 4); m != nil {
		t.Fatalf("all-ranks identity produced a map: %v", m)
	}
	m := AggregationSpec{Aggregators: "1/node"}.AggregatorMap(topo, 4)
	if !reflect.DeepEqual(m, []int{0, 0, 2, 2}) {
		t.Fatalf("1/node map = %v, want [0 0 2 2]", m)
	}
	// 2/node on a 3-rank tail block: the lone tail rank aggregates for
	// itself.
	m = AggregationSpec{Aggregators: "2/node", GatherBandwidth: 1}.AggregatorMap(Topology{Nodes: 2, RanksPerNode: 4}, 7)
	if !reflect.DeepEqual(m, []int{0, 1, 0, 1, 4, 5, 4}) {
		t.Fatalf("2/node map = %v, want [0 1 0 1 4 5 4]", m)
	}
}

// BenchmarkAggregatedWrite prices one N-rank burst under three
// aggregation specs at two paper scales, next to BenchmarkStorageWrite
// in CI's bench smoke, so the cost of the two-phase plan and the
// aggregator-set snapshot stays visible.
func BenchmarkAggregatedWrite(b *testing.B) {
	for _, agg := range []string{AggregatorsAll, "2/node", "1/node"} {
		for _, ranks := range []int{64, 512} {
			b.Run(fmt.Sprintf("%s/%dranks", strings.ReplaceAll(agg, "/", "-"), ranks), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Topology = TopologyForCase(ranks/4, ranks)
				cfg.Aggregation = AggregationSpec{Aggregators: agg}
				fs := New(cfg, "")
				b.SetBytes(int64(ranks) << 20)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fs.BeginBurst(ranks)
					for r := 0; r < ranks; r++ {
						if _, err := fs.WriteSize(r, "plt/Cell_D", 1<<20, Labels{Step: i}); err != nil {
							b.Fatal(err)
						}
					}
					fs.EndBurst()
					if i%1024 == 1023 {
						b.StopTimer()
						fs.Reset() // bound ledger memory on long -benchtime runs
						b.StartTimer()
					}
				}
			})
		}
	}
}
