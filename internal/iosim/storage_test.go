package iosim

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// driveStorageOps runs a deterministic random mix of bursts, writes,
// mkdirs, and clock advances against a filesystem and returns its ledger
// — the shared harness for the equivalence pins below (same style as the
// PR-3/PR-4 zero-Topology pins).
func driveStorageOps(t *testing.T, cfg Config) []WriteRecord {
	t.Helper()
	fs := New(cfg, "")
	rng := rand.New(rand.NewSource(99))
	writers := 0
	for i := 0; i < 400; i++ {
		switch {
		case rng.Intn(10) == 0:
			writers = 1 + rng.Intn(48)
			fs.BeginBurst(writers)
			continue
		case writers > 0 && rng.Intn(12) == 0:
			writers = 0
			fs.EndBurst()
			continue
		case rng.Intn(16) == 0:
			fs.AdvanceClock(rng.Intn(16), rng.Float64())
			continue
		}
		rank := rng.Intn(24)
		path := "plt/Cell_D_" + string(rune('a'+rng.Intn(26)))
		if rng.Intn(8) == 0 {
			if err := fs.Mkdir(rank, path, Labels{Step: i % 6}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := fs.WriteSize(rank, path, int64(rng.Intn(1<<21)), Labels{Step: i % 6}); err != nil {
			t.Fatal(err)
		}
	}
	return fs.Ledger()
}

// TestStorageGPFSByteIdenticalToDefault is the refactor acceptance pin:
// selecting Storage "gpfs" by name produces a ledger, burst statistics,
// characterization, and rendering byte-identical to the default ("")
// stack — under both the aggregate model and the per-link topology model
// (which together are pinned to the pre-StorageModel FileSystem by the
// PR-3/PR-4 property tests that keep passing unchanged).
func TestStorageGPFSByteIdenticalToDefault(t *testing.T) {
	for _, topo := range []Topology{
		{},
		{Nodes: 3, NICBandwidth: 5e9, Targets: 4, TargetBandwidth: 2e9},
	} {
		cfg := DefaultConfig()
		cfg.JitterSigma = 0.2 // jitter on: the pin must hold bit-for-bit with it
		cfg.Topology = topo

		def := cfg
		def.Storage = StorageDefault
		named := cfg
		named.Storage = StorageGPFS

		a := driveStorageOps(t, def)
		b := driveStorageOps(t, named)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("topology %+v: %q ledger differs from default", topo, StorageGPFS)
		}
		// BurstStats/Characterize accumulate a few float means in map
		// iteration order, so identical ledgers can differ in the last
		// ulp across calls; compare those fields with a tolerance and
		// everything else exactly.
		sa, sb := BurstStats(a), BurstStats(b)
		if len(sa) != len(sb) {
			t.Fatalf("topology %+v: burst counts differ", topo)
		}
		for i := range sa {
			x, y := sa[i], sb[i]
			approx(t, "MeanSeconds", &x.MeanSeconds, &y.MeanSeconds)
			approx(t, "MeanLinkSeconds", &x.MeanLinkSeconds, &y.MeanLinkSeconds)
			approx(t, "LinkSkew", &x.LinkSkew, &y.LinkSkew)
			approx(t, "NodeSkew", &x.NodeSkew, &y.NodeSkew)
			if x != y {
				t.Fatalf("topology %+v: burst %d differs:\n%+v\n%+v", topo, i, x, y)
			}
		}
		ca, cb := Characterize(a), Characterize(b)
		approx(t, "RankImbalance", &ca.RankImbalance, &cb.RankImbalance)
		approx(t, "NodeImbalance", &ca.NodeImbalance, &cb.NodeImbalance)
		approx(t, "LinkImbalance", &ca.LinkImbalance, &cb.LinkImbalance)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("topology %+v: characterizations differ:\n%+v\n%+v", topo, ca, cb)
		}
		// Single-tier stacks must leave records untiered and tier
		// aggregations zero — that is what keeps historical ledgers
		// byte-identical.
		for _, r := range a {
			if r.Tier != "" || r.StallSeconds != 0 || r.DrainSeconds != 0 || r.BBFill != 0 {
				t.Fatalf("single-tier record carries tier fields: %+v", r)
			}
		}
		if ca.BBBytes != 0 || ca.SpillBytes != 0 || ca.MaxBBFill != 0 ||
			ca.StallRanks != 0 || ca.DrainSeconds != 0 {
			t.Fatalf("single-tier characterization carries tier fields: %+v", ca)
		}
		if strings.Contains(ca.Render(), "storage tiers") {
			t.Fatal("single-tier Render mentions storage tiers")
		}
	}
}

// approx fails the test unless *x and *y agree to float round-off, then
// equalizes them so the caller can compare the rest of the struct exactly.
func approx(t *testing.T, field string, x, y *float64) {
	t.Helper()
	if diff := math.Abs(*x - *y); diff > 1e-9*(1+math.Abs(*x)) {
		t.Fatalf("%s differs beyond round-off: %g vs %g", field, *x, *y)
	}
	*y = *x
}

func TestParseStorage(t *testing.T) {
	for _, name := range []string{"", "gpfs", "bb", "bb+gpfs"} {
		got, err := ParseStorage(name)
		if err != nil || got != name {
			t.Errorf("ParseStorage(%q) = %q, %v", name, got, err)
		}
	}
	for _, bad := range []string{"nvme", "GPFS", "bb+", "gpfs+bb"} {
		if _, err := ParseStorage(bad); err == nil || !strings.Contains(err.Error(), bad) {
			t.Errorf("ParseStorage(%q) err = %v, want error naming it", bad, err)
		}
	}
	if len(StorageKinds()) != 3 {
		t.Errorf("StorageKinds = %v", StorageKinds())
	}
}

func TestNewPanicsOnUnknownStorage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an unknown storage name")
		}
	}()
	cfg := DefaultConfig()
	cfg.Storage = "nvme"
	New(cfg, "")
}

// bbTestConfig is a burst buffer with round-number shares: one rank owns
// the whole node — capacity 100 B, fill 10 B/s, drain 5 B/s — and the
// GPFS baseline never binds.
func bbTestConfig(storage string) Config {
	return Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 1e12,
		Storage:            storage,
		BurstBuffer: BurstBuffer{
			NodeCapacity:   100,
			NodeBandwidth:  10,
			DrainBandwidth: 5,
			Nodes:          1,
			RanksPerNode:   1,
		},
	}
}

// TestBBFillAndStall walks the fluid model through its phases: a write
// that fits the buffer moves at NVMe speed, a write that fills it
// mid-burst stalls to the drain rate for the remainder, and the drain
// empties the buffer across a compute gap.
func TestBBFillAndStall(t *testing.T) {
	fs := New(bbTestConfig(StorageBB), "")
	fs.BeginBurst(1)

	// 100 B at fill 10, drain 5: 10s transfer, net growth 50 B.
	d, err := fs.WriteSize(0, "a", 100, Labels{Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-10) > 1e-12 {
		t.Errorf("absorbed write duration = %g, want 10", d)
	}

	// 200 B starting at occupancy 50: phase 1 fills the remaining 50 B
	// of headroom in 10s (moving 100 B), phase 2 pushes the last 100 B
	// at the 5 B/s drain -> 30s total, 10s of stall.
	d, err = fs.WriteSize(0, "b", 200, Labels{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-30) > 1e-12 {
		t.Errorf("stalled write duration = %g, want 30", d)
	}
	fs.EndBurst()

	// A 20s compute gap drains 100 B: the buffer is empty again.
	fs.AdvanceClock(0, 20)
	fs.BeginBurst(1)
	d, _ = fs.WriteSize(0, "c", 10, Labels{Step: 2})
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("post-drain write duration = %g, want 1", d)
	}
	fs.EndBurst()

	rec := fs.Ledger()
	if len(rec) != 3 {
		t.Fatalf("ledger len = %d", len(rec))
	}
	if rec[0].Tier != TierBB || rec[0].StallSeconds != 0 {
		t.Errorf("absorbed record = %+v, want TierBB no stall", rec[0])
	}
	if math.Abs(rec[0].BBFill-0.5) > 1e-12 || math.Abs(rec[0].DrainSeconds-10) > 1e-12 {
		t.Errorf("absorbed record fill/drain = %g/%g, want 0.5/10", rec[0].BBFill, rec[0].DrainSeconds)
	}
	if rec[1].Tier != TierGPFS || math.Abs(rec[1].StallSeconds-10) > 1e-12 {
		t.Errorf("stalled record = %+v, want TierGPFS stall 10", rec[1])
	}
	if rec[1].BBFill != 1 || math.Abs(rec[1].DrainSeconds-20) > 1e-12 {
		t.Errorf("stalled record fill/drain = %g/%g, want 1/20", rec[1].BBFill, rec[1].DrainSeconds)
	}
	if rec[2].Tier != TierBB || math.Abs(rec[2].BBFill-0.05) > 1e-12 {
		t.Errorf("post-drain record = %+v, want fill 0.05", rec[2])
	}

	// The burst aggregations see the stall straggler and the drain tail.
	stats := BurstStats(rec)
	if len(stats) != 3 {
		t.Fatalf("bursts = %d", len(stats))
	}
	if stats[0].BBBytes != 100 || stats[0].SpillBytes != 0 || stats[0].StallRanks != 0 {
		t.Errorf("burst 0 = %+v", stats[0])
	}
	if stats[1].SpillBytes != 200 || stats[1].StallRanks != 1 ||
		math.Abs(stats[1].StallSeconds-10) > 1e-12 || math.Abs(stats[1].DrainSeconds-20) > 1e-12 {
		t.Errorf("burst 1 = %+v", stats[1])
	}
	c := Characterize(rec)
	if c.BBBytes != 110 || c.SpillBytes != 200 || c.MaxBBFill != 1 || c.StallRanks != 1 {
		t.Errorf("characterization tiers = %+v", c)
	}
	if !strings.Contains(c.Render(), "storage tiers") {
		t.Error("Render omits the storage-tier section for a tiered ledger")
	}
}

// TestBBBurstLargerThanBuffer: a single write bigger than the whole
// partition write-throughs most of its bytes at the drain rate.
func TestBBBurstLargerThanBuffer(t *testing.T) {
	fs := New(bbTestConfig(StorageBB), "")
	fs.BeginBurst(1)
	// 1000 B: 20s to fill the 100 B partition (moving 200 B), then
	// 800 B at 5 B/s -> 180s; full speed would be 100s.
	d, err := fs.WriteSize(0, "huge", 1000, Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-180) > 1e-12 {
		t.Errorf("oversized write duration = %g, want 180", d)
	}
	r := fs.Ledger()[0]
	if math.Abs(r.StallSeconds-80) > 1e-12 || r.BBFill != 1 {
		t.Errorf("oversized record = %+v, want stall 80 fill 1", r)
	}
}

// TestBBDrainSlowerThanFillAccumulates: back-to-back bursts with no
// compute gap leak occupancy into each other until the partition fills —
// the cross-burst carry-over that distinguishes a burst buffer from a
// bandwidth cap.
func TestBBDrainSlowerThanFillAccumulates(t *testing.T) {
	fs := New(bbTestConfig(StorageBB), "")
	var lastFill float64
	for step := 0; step < 4; step++ {
		fs.BeginBurst(1)
		if _, err := fs.WriteSize(0, "w", 60, Labels{Step: step}); err != nil {
			t.Fatal(err)
		}
		fs.EndBurst()
		rec := fs.Ledger()
		r := rec[len(rec)-1]
		if step < 3 {
			if r.StallSeconds != 0 {
				t.Errorf("step %d stalled early: %+v", step, r)
			}
			if r.BBFill <= lastFill {
				t.Errorf("step %d occupancy did not grow: %g <= %g", step, r.BBFill, lastFill)
			}
			lastFill = r.BBFill
		} else if r.StallSeconds <= 0 || r.Tier != TierGPFS {
			// Occupancy 30/60/90 after steps 0-2; step 3's 30 B of
			// growth exceeds the 10 B of headroom.
			t.Errorf("step %d did not stall on the full partition: %+v", step, r)
		}
	}
}

// TestBBOneNodeDegenerate: without node information every rank shares a
// single node's partition — shares split by the burst width, and each
// rank's occupancy stays private (static partitioning).
func TestBBOneNodeDegenerate(t *testing.T) {
	cfg := bbTestConfig(StorageBB)
	cfg.BurstBuffer.RanksPerNode = 0 // derive from the burst
	fs := New(cfg, "")
	fs.BeginBurst(4) // 4 ranks on 1 node: 25 B, 2.5 B/s fill, 1.25 B/s drain each
	for r := 0; r < 4; r++ {
		// 50 B at fill 2.5 / drain 1.25: net growth 25 B = the whole
		// partition share, exactly at capacity with no stall.
		d, err := fs.WriteSize(r, "w", 50, Labels{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-20) > 1e-12 {
			t.Errorf("rank %d duration = %g, want 20", r, d)
		}
	}
	fs.EndBurst()
	for _, r := range fs.Ledger() {
		if r.BBFill != 1 || r.StallSeconds != 0 {
			t.Errorf("rank %d record = %+v, want fill 1, no stall", r.Rank, r)
		}
	}
}

// TestBBShrunkenShareKeepsBacklog is the regression test for the
// occupancy-deletion bug: when a wider burst shrinks a rank's partition
// share below its buffered bytes, the surplus must persist (write-through
// consumes the whole drain) and keep draining between transfers — not be
// silently clamped to the new capacity.
func TestBBShrunkenShareKeepsBacklog(t *testing.T) {
	cfg := bbTestConfig(StorageBB)
	cfg.BurstBuffer.RanksPerNode = 0 // derive shares from the burst width
	fs := New(cfg, "")

	// 1-writer burst: the full 100 B / 10 B/s / 5 B/s node share.
	fs.BeginBurst(1)
	if _, err := fs.WriteSize(0, "a", 160, Labels{Step: 0}); err != nil {
		t.Fatal(err) // occupancy 80 B
	}
	fs.EndBurst()

	// 4-writer burst: rank 0's share shrinks to 25 B / 2.5 B/s / 1.25 B/s
	// while it still holds 80 B. The write moves write-through at the
	// drain rate (8 s for 10 B) and the backlog must survive.
	fs.BeginBurst(4)
	d, err := fs.WriteSize(0, "b", 10, Labels{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-8) > 1e-12 {
		t.Errorf("write-through duration = %g, want 8", d)
	}
	fs.EndBurst()
	rec := fs.Ledger()
	last := rec[len(rec)-1]
	// 80 B backlog at the 1.25 B/s share: 64 s of drain tail, fill 80/25.
	if math.Abs(last.DrainSeconds-64) > 1e-12 {
		t.Errorf("drain tail = %g, want 64 (backlog deleted?)", last.DrainSeconds)
	}
	if math.Abs(last.BBFill-3.2) > 1e-12 {
		t.Errorf("fill = %g, want 3.2 (overfull vs the shrunken share)", last.BBFill)
	}
}

// TestTieredDrainThrottledByGPFS: under "bb+gpfs" the drain is capped by
// the GPFS tier's per-writer snapshot, so a slow file system leaves more
// bytes in the buffer than the standalone "bb" drain would.
func TestTieredDrainThrottledByGPFS(t *testing.T) {
	run := func(storage string, perWriter float64) WriteRecord {
		cfg := bbTestConfig(storage)
		cfg.PerWriterBandwidth = perWriter
		fs := New(cfg, "")
		fs.BeginBurst(1)
		if _, err := fs.WriteSize(0, "w", 100, Labels{}); err != nil {
			t.Fatal(err)
		}
		fs.EndBurst()
		return fs.Ledger()[0]
	}

	// GPFS stream at 2 B/s < the configured 5 B/s drain: the tiered
	// stack drains slower -> more end-of-write occupancy, longer tail.
	bb := run(StorageBB, 2)
	tiered := run(StorageTiered, 2)
	if math.Abs(bb.BBFill-0.5) > 1e-12 || math.Abs(bb.DrainSeconds-10) > 1e-12 {
		t.Errorf("bb record = %+v, want fill 0.5 drain 10", bb)
	}
	if math.Abs(tiered.BBFill-0.8) > 1e-12 || math.Abs(tiered.DrainSeconds-40) > 1e-12 {
		t.Errorf("tiered record = %+v, want fill 0.8 drain 40", tiered)
	}

	// A fast file system (stream >= drain) makes the stacks identical.
	fast := run(StorageTiered, 1e12)
	if fast.BBFill != 0.5 || math.Abs(fast.DrainSeconds-10) > 1e-12 {
		t.Errorf("uncongested tiered record = %+v, want the bb numbers", fast)
	}
}

// TestBBConcurrentDeterministic drives many rank goroutines through a
// burst-buffer filesystem concurrently: the ledger (occupancies, stalls,
// drain tails included) must be identical across runs — the static
// per-rank partitioning is what makes the tier deterministic.
func TestBBConcurrentDeterministic(t *testing.T) {
	run := func() []WriteRecord {
		cfg := bbTestConfig(StorageTiered)
		cfg.BurstBuffer.RanksPerNode = 0
		fs := New(cfg, "")
		const ranks = 8
		for step := 0; step < 3; step++ {
			fs.BeginBurst(ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						if _, err := fs.WriteSize(rank, "w", int64(3+rank+i), Labels{Step: step}); err != nil {
							t.Error(err)
						}
					}
				}(r)
			}
			wg.Wait()
			fs.EndBurst()
		}
		return fs.Ledger()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("burst-buffer ledger differs across concurrent runs")
	}
}

// TestRetargetValidation is the regression test for the blind-copy bug:
// maps that don't cover the declared burst, or send ranks to targets
// outside [0, Targets), are rejected instead of silently installed.
func TestRetargetValidation(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 4e9,
		Topology: Topology{
			Nodes: 2, RanksPerNode: 2,
			Targets: 2, TargetBandwidth: 1e9,
		},
	}
	fs := New(cfg, "")

	// Before any burst the width is unknown: entries are still checked.
	if err := fs.Retarget([]int{0, 5}); err == nil || !strings.Contains(err.Error(), "target 5") {
		t.Errorf("out-of-range target before burst: err = %v", err)
	}
	if err := fs.Retarget([]int{1, 0}); err != nil {
		t.Errorf("valid pre-burst map rejected: %v", err)
	}

	fs.BeginBurst(4)
	fs.EndBurst()
	if err := fs.Retarget([]int{0, 1}); err == nil ||
		!strings.Contains(err.Error(), "covers 2 ranks") || !strings.Contains(err.Error(), "4") {
		t.Errorf("too-short map: err = %v", err)
	}
	if err := fs.Retarget([]int{0, 1, 0, -1}); err == nil || !strings.Contains(err.Error(), "-1") {
		t.Errorf("negative target: err = %v", err)
	}
	if err := fs.Retarget([]int{0, 1, 0, 2}); err == nil || !strings.Contains(err.Error(), "target 2") {
		t.Errorf("target == Targets: err = %v", err)
	}
	if err := fs.Retarget([]int{1, 1, 0, 0}); err != nil {
		t.Errorf("valid full map rejected: %v", err)
	}
	if err := fs.Retarget(nil); err != nil {
		t.Errorf("nil map rejected: %v", err)
	}

	// Without target modeling Retarget stays the documented no-op.
	plain := New(Config{AggregateBandwidth: 1e12, PerWriterBandwidth: 4e9}, "")
	if err := plain.Retarget([]int{99}); err != nil {
		t.Errorf("no-op retarget errored: %v", err)
	}
}
