package iosim

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Backend selects whether writes are materialized on the host filesystem.
type Backend int

const (
	// ModelOnly records writes in the ledger without touching disk.
	ModelOnly Backend = iota
	// RealDisk records writes and also writes the bytes to the host FS.
	RealDisk
)

// Config parameterizes the filesystem performance model. The defaults
// (DefaultConfig) are scaled to a Summit-like burst: a large shared
// aggregate bandwidth, a per-writer stream cap, and a small per-file open
// latency.
type Config struct {
	Backend Backend
	// AggregateBandwidth is the shared backend bandwidth in bytes/second.
	AggregateBandwidth float64
	// PerWriterBandwidth caps a single rank's stream in bytes/second.
	PerWriterBandwidth float64
	// OpenLatency is the fixed per-file cost in seconds.
	OpenLatency float64
	// JitterSigma is the sigma of the lognormal multiplicative jitter
	// applied to each write duration. Zero disables jitter.
	JitterSigma float64
	// Seed makes the jitter deterministic.
	Seed int64
	// Topology enables the distribution-mapping-aware per-link contention
	// model (per-node NIC caps, per-target NSD fan-in). The zero value
	// keeps the aggregate model byte-identical to historical behavior.
	Topology Topology
	// Storage selects the pricing stack New installs: "" or "gpfs" for
	// the historical aggregate/per-link models, "bb" for the node-local
	// burst buffer, "bb+gpfs" for the tiered composition (see storage.go).
	// Unknown names panic in New; validate with ParseStorage first.
	Storage string
	// BurstBuffer parameterizes the "bb"/"bb+gpfs" tiers; the zero value
	// selects the Summit NVMe defaults (DefaultBurstBuffer).
	BurstBuffer BurstBuffer
	// Aggregation turns bursts into two-phase collectives (intra-node
	// gather, then aggregator-only writes; see aggregation.go). The zero
	// value keeps the direct N-to-N write path byte-identical to
	// historical behavior. Invalid enabled specs panic in New; validate
	// with AggregationSpec.Validate first (the campaign and CLI layers do).
	Aggregation AggregationSpec
	// Faults installs the deterministic fault-injection seam (fault.go):
	// the injector prices writes on behalf of the storage model, charging
	// retry/replay time and relabeling failover targets. nil — the zero
	// value — keeps the write path byte-identical to the fault-free model.
	Faults FaultInjector
	// RetainLedger controls whether records stay in the shards once
	// streaming consumers (Attach) have folded them. The zero value
	// (RetainAuto) keeps historical full-ledger behavior for callers
	// without consumers and drops fed records for callers with them; see
	// consumer.go.
	RetainLedger Retention
}

// DefaultConfig returns a Summit-flavored model: 2.5 TB/s aggregate (the
// published Alpine peak), 2 GB/s per-writer stream, 0.5 ms opens, mild
// jitter.
func DefaultConfig() Config {
	return Config{
		Backend:            ModelOnly,
		AggregateBandwidth: 2.5e12,
		PerWriterBandwidth: 2.0e9,
		OpenLatency:        0.0005,
		JitterSigma:        0.15,
		Seed:               1,
	}
}

// Labels attach experiment coordinates to a write record so the ledger can
// be sliced the way the paper slices its data: per timestep, per AMR
// level, per MPI task.
type Labels struct {
	Step  int
	Level int
}

// WriteRecord is one entry in the ledger.
type WriteRecord struct {
	Rank     int
	Path     string
	Bytes    int64
	Start    float64 // simulated seconds since FileSystem creation
	Duration float64 // simulated seconds
	Labels   Labels
	// Dir marks a zero-byte directory-creation (metadata) record, so
	// file-count audits can separate data files from directories.
	Dir bool
	// Node and Target identify the link the write moved over when the
	// topology model is enabled: the writer's compute node and the storage
	// target its file fanned into. Both are -1 under the aggregate model,
	// and Target is -1 for metadata (Dir) records, which go to the
	// metadata service rather than an NSD data target.
	Node   int
	Target int
	// Tier labels the storage tier that absorbed the write under a
	// multi-tier storage model (TierBB / TierGPFS); empty under the
	// single-tier "gpfs" models, keeping historical ledgers byte-identical.
	Tier Tier
	// StallSeconds is the portion of Duration the writer spent throttled
	// to the drain rate because its burst-buffer partition was full.
	StallSeconds float64
	// DrainSeconds is the projected time for the writer's buffer
	// occupancy to drain to the backing tier after this write ended.
	DrainSeconds float64
	// BBFill is the writer's buffer-partition occupancy fraction (0..1)
	// right after the write; 0 under single-tier models.
	BBFill float64
	// Fault labels the injected-fault kind that touched this write
	// ("target-outage", "nic-degrade", "bb-loss"); empty — along with the
	// two fields below — without an installed FaultInjector, keeping
	// fault-free ledgers byte-identical.
	Fault string
	// Retries counts failed attempts (target outage) before the write
	// went through.
	Retries int
	// FaultSeconds is the portion of Duration attributable to injected
	// faults: retry backoff/timeouts, burst-buffer backlog replay, and
	// NIC-degradation slowdown.
	FaultSeconds float64
	// Mitigated names the resilience policy that absorbed a fault on
	// this write ("quarantine": the circuit breaker skipped the retry
	// storm and failed over immediately). Empty without a policy engine,
	// keeping fault-only and fault-free ledgers byte-identical.
	Mitigated string
	// GatherSeconds is the portion of Duration spent in the intra-node
	// gather phase under two-phase aggregation: the time this rank's
	// bytes took to reach its aggregator. 0 for aggregator ranks and
	// whenever aggregation is disabled.
	GatherSeconds float64
	// OpenSeconds is the portion of Duration spent on file-open/metadata
	// cost (the per-tier open latency scaled by the aggregation layout's
	// metadata model). Under aggregation only aggregator ranks open
	// files, so member records carry 0. Directory records carry their
	// whole Duration here.
	OpenSeconds float64
}

// shard is one rank's private slice of the filesystem state. Its mutex is
// uncontended on the hot path (a rank's writes come from that rank's
// goroutine); it exists so merges and cross-rank reads are race-free.
type shard struct {
	mu      sync.Mutex
	records []WriteRecord
	faults  []FaultEvent
	bytes   int64
	clock   float64
	// fed is the drain watermark: records[:fed] have been delivered to
	// the streaming consumers (consumer.go). Always 0 when records are
	// dropped after feeding (non-retaining modes).
	fed int
}

// FileSystem is the simulated parallel filesystem. It is safe for
// concurrent use by many rank goroutines; see the package comment for the
// sharding design.
type FileSystem struct {
	cfg  Config
	root string

	// model is the installed storage-tier pricing stack (storage.go).
	// It owns the contention snapshots; the FileSystem owns the ledger,
	// clocks, open latency, jitter, and link labels.
	model StorageModel

	// rpn is the most recently resolved ranks-per-node packing, used to
	// label ledger records with their node between bursts. Updated at
	// BeginBurst; meaningful only when cfg.Topology is enabled.
	rpn atomic.Int64

	// burstN is the writer count of the most recent BeginBurst; Retarget
	// validates override maps against it once a burst has been declared.
	burstN atomic.Int64

	// retarget is the dynamically installed rank→target override
	// (Retarget / amr.RemapToTargets); nil selects cfg.Topology's own
	// placement. It layers over the configured TargetMap, so an
	// inter-burst reorganization can be undone with Retarget(nil).
	retarget atomic.Pointer[[]int]

	// agg is the current burst's two-phase aggregation schedule
	// (aggregation.go); nil when Config.Aggregation is disabled. A pure
	// function of (topology, spec, writer count), rebuilt lazily at
	// BeginBurst and invalidated by Retarget/Reset, whose placement
	// changes move the aggregators' targets.
	agg atomic.Pointer[aggPlan]

	// shards[rank] is rank's ledger segment. The slice only grows;
	// growth happens under growMu with copy-on-write publication so the
	// hot path is a single atomic pointer load.
	shards atomic.Pointer[[]*shard]
	growMu sync.Mutex

	// consumers is the streaming-fold subscription state (consumer.go);
	// drained at EndBurst and FlushConsumers.
	consumers consumerState
}

// New creates a filesystem with the given model configuration. root is the
// host directory used when Backend == RealDisk (ignored for ModelOnly, but
// still recorded for path bookkeeping). New panics on an unknown
// cfg.Storage name; validate user input with ParseStorage (the campaign
// and CLI layers do) so misconfigurations surface as errors instead.
func New(cfg Config, root string) *FileSystem {
	if cfg.Aggregation.Enabled() {
		if err := cfg.Aggregation.Validate(); err != nil {
			panic(fmt.Sprintf("iosim: invalid aggregation spec (validate configs with AggregationSpec.Validate): %v", err))
		}
	}
	fs := &FileSystem{cfg: cfg, root: root}
	empty := []*shard{}
	fs.shards.Store(&empty)
	fs.rpn.Store(int64(cfg.Topology.ranksPerNode(0)))
	fs.model = newStorageModel(cfg, fs)
	return fs
}

// snapshotBandwidth returns the per-writer bandwidth when writers ranks
// contend for the shared backend (writers <= 1 means uncontended).
func snapshotBandwidth(cfg Config, writers int) float64 {
	bw := cfg.PerWriterBandwidth
	if writers > 1 {
		share := cfg.AggregateBandwidth / float64(writers)
		if share < bw {
			bw = share
		}
	}
	if bw <= 0 {
		bw = 1 // avoid division by zero in degenerate configs
	}
	return bw
}

// topology returns the effective topology: the configured one with any
// dynamically installed TargetMap override applied.
func (fs *FileSystem) topology() Topology {
	t := fs.cfg.Topology
	if m := fs.retarget.Load(); m != nil {
		t.TargetMap = *m
	}
	return t
}

// Retarget installs a rank→storage-target override for subsequent bursts
// — the inter-burst layout-reorganization hook (Wan et al.; maps come
// from amr.RemapToTargets). A nil map restores the configured placement.
// Retargeting is a no-op unless the topology models storage targets.
//
// The map is validated before it is installed: every entry must lie in
// [0, Targets), and once a burst width has been declared (BeginBurst),
// the map must cover exactly that many ranks — a short or out-of-range
// map would silently mislabel ledger records and index fan-in tables out
// of bounds, so it is rejected with an error instead.
//
// Like Reset, Retarget must not race with an in-flight burst: call it
// between bursts, which is when layout reorganization happens.
func (fs *FileSystem) Retarget(m []int) error {
	if !fs.cfg.Topology.Enabled() || fs.cfg.Topology.Targets <= 0 {
		return nil
	}
	if m == nil {
		fs.retarget.Store(nil)
		fs.agg.Store(nil)   // member target labels follow the aggregator's placement
		fs.model.Retarget() // next BeginBurst rebuilds the per-link snapshot
		return nil
	}
	if n := int(fs.burstN.Load()); n > 0 && len(m) != n {
		return fmt.Errorf("iosim: retarget map covers %d ranks, burst declares %d", len(m), n)
	}
	for r, tgt := range m {
		if tgt < 0 || tgt >= fs.cfg.Topology.Targets {
			return fmt.Errorf("iosim: retarget map sends rank %d to target %d, outside [0, %d)",
				r, tgt, fs.cfg.Topology.Targets)
		}
	}
	cp := make([]int, len(m))
	copy(cp, m)
	fs.retarget.Store(&cp)
	fs.agg.Store(nil)
	fs.model.Retarget()
	return nil
}

// aggPlanFor returns the two-phase schedule for an n-writer burst,
// rebuilding it when the writer count or placement changed. Only called
// with Config.Aggregation enabled.
func (fs *FileSystem) aggPlanFor(n int) *aggPlan {
	if p := fs.agg.Load(); p != nil && p.n == n {
		return p
	}
	p := fs.cfg.Aggregation.plan(fs.topology(), n)
	fs.agg.Store(p)
	return p
}

// Root returns the host root directory.
func (fs *FileSystem) Root() string { return fs.root }

// Config returns the model configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// BeginBurst declares that n writers participate in the upcoming I/O burst
// and delegates the contention snapshot to the installed StorageModel:
// the default models divide the aggregate bandwidth (or the per-link
// topology shares) among the writers, the burst-buffer models
// additionally resolve each rank's NVMe partition. The snapshot is read
// atomically by every write until EndBurst, so no write takes a shared
// lock. The plotfile and MACSio writers call this once per dump with the
// number of ranks that will write. EndBurst resets to uncontended mode.
func (fs *FileSystem) BeginBurst(n int) {
	if fs.cfg.Aggregation.Enabled() && n > 0 {
		// Publish the two-phase schedule before the model snapshots:
		// the aggregation-aware stack reads it to take its contention
		// snapshot over the aggregator set.
		fs.aggPlanFor(n)
	}
	fs.model.BeginBurst(n)
	if inj := fs.cfg.Faults; inj != nil {
		inj.BeginBurst(n)
	}
	if n > 0 {
		fs.burstN.Store(int64(n))
	}
	fs.ensureShards(n)
}

// EndBurst marks the end of the current burst. It is also the streaming
// drain point: every record produced since the previous drain is fed to
// the attached consumers (consumer.go) — the burst's writes are complete
// here (the writers barrier before ending), so consumers see whole
// bursts in deterministic rank-major order.
func (fs *FileSystem) EndBurst() {
	fs.model.EndBurst()
	if inj := fs.cfg.Faults; inj != nil {
		inj.EndBurst()
	}
	fs.drainConsumers()
}

// Storage returns the installed storage-tier pricing model.
func (fs *FileSystem) Storage() StorageModel { return fs.model }

// linkOf returns the (node, target) labels for a data write by rank, or
// (-1, -1) under the aggregate model.
func (fs *FileSystem) linkOf(rank int) (node, target int) {
	t := fs.topology()
	if !t.Enabled() {
		return -1, -1
	}
	return t.nodeOf(rank, int(fs.rpn.Load())), t.TargetOf(rank)
}

// shardFor returns rank's shard, growing the shard table if needed.
func (fs *FileSystem) shardFor(rank int) *shard {
	if s := *fs.shards.Load(); rank < len(s) {
		return s[rank]
	}
	return fs.growShards(rank)
}

// ensureShards pre-grows the table so an n-rank burst never grows it from
// the write path.
func (fs *FileSystem) ensureShards(n int) {
	if n > 0 {
		fs.shardFor(n - 1)
	}
}

func (fs *FileSystem) growShards(rank int) *shard {
	fs.growMu.Lock()
	defer fs.growMu.Unlock()
	cur := *fs.shards.Load()
	if rank < len(cur) {
		return cur[rank]
	}
	n := 2 * len(cur)
	if n <= rank {
		n = rank + 1
	}
	next := make([]*shard, n)
	copy(next, cur)
	for i := len(cur); i < n; i++ {
		next[i] = &shard{}
	}
	fs.shards.Store(&next)
	return next[rank]
}

// jitter returns the deterministic lognormal factor for (rank, path). The
// hash input is the FNV-1a digest of "<seed>|<rank>|<path>", computed
// inline so the hot path allocates nothing.
func (fs *FileSystem) jitter(rank int, path string) float64 {
	if fs.cfg.JitterSigma == 0 {
		return 1
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var num [20]byte
	for _, c := range strconv.AppendInt(num[:0], fs.cfg.Seed, 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '|') * prime64
	for _, c := range strconv.AppendInt(num[:0], int64(rank), 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '|') * prime64
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * prime64
	}
	u := h
	// Two uniforms from the hash bits -> one standard normal (Box-Muller).
	u1 := (float64(u>>11) + 0.5) / float64(1<<53)
	h = (h ^ 0xA5) * prime64
	u2 := (float64(h>>11) + 0.5) / float64(1<<53)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(fs.cfg.JitterSigma * z)
}

// Write records (and, for RealDisk, materializes) a file written by rank.
// It returns the simulated duration of the write.
func (fs *FileSystem) Write(rank int, path string, data []byte, labels Labels) (float64, error) {
	return fs.write(rank, path, int64(len(data)), data, labels)
}

// WriteSize records a write of nbytes without materializing data. The
// surrogate (Summit-scale) pipeline uses this so that 17-billion-cell
// meshes never allocate field memory.
func (fs *FileSystem) WriteSize(rank int, path string, nbytes int64, labels Labels) (float64, error) {
	return fs.write(rank, path, nbytes, nil, labels)
}

func (fs *FileSystem) write(rank int, path string, nbytes int64, data []byte, labels Labels) (float64, error) {
	if nbytes < 0 {
		return 0, fmt.Errorf("iosim: negative write size %d for %s", nbytes, path)
	}
	if rank < 0 {
		return 0, fmt.Errorf("iosim: negative rank %d for %s", rank, path)
	}
	if fs.cfg.Backend == RealDisk && data != nil {
		full := filepath.Join(fs.root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return 0, fmt.Errorf("iosim: mkdir for %s: %w", path, err)
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return 0, fmt.Errorf("iosim: write %s: %w", path, err)
		}
	}

	node, target := fs.linkOf(rank)
	// Two-phase aggregation: members first gather their share to the
	// aggregator (phase one), their bytes then fan into the aggregator's
	// storage target, and only aggregators pay (scaled) open latency.
	// Without a plan every factor is the identity, keeping the direct
	// path byte-identical.
	gather, openScale := 0.0, 1.0
	if p := fs.agg.Load(); p != nil && rank < p.n {
		gather, openScale = p.gather(rank, nbytes), p.openScale[rank]
		if t := p.tgt[rank]; t >= 0 {
			target = t
		}
	}
	s := fs.shardFor(rank)
	s.mu.Lock()
	start := s.clock
	// Price under the shard lock: the model may keep per-rank state
	// (burst-buffer occupancy) keyed on rank's clock, and the lock
	// serializes exactly this rank's transfers. The fault seam wraps the
	// model call and may relabel the target on failover; the write phase
	// begins after the gather, so the fault schedule sees start+gather.
	cost := fs.price(s, rank, start+gather, nbytes, node, &target)
	j := fs.jitter(rank, path)
	open := cost.OpenSeconds
	if open <= 0 {
		open = fs.cfg.OpenLatency // models that don't price opens inherit the config's
	}
	dur := (open*openScale + gather + cost.Seconds) * j
	s.clock = start + dur
	s.records = append(s.records, WriteRecord{
		Rank: rank, Path: path, Bytes: nbytes,
		Start: start, Duration: dur, Labels: labels,
		Node: node, Target: target,
		Tier: cost.Tier, StallSeconds: cost.StallSeconds * j,
		DrainSeconds: cost.DrainSeconds, BBFill: cost.BBFill,
		Fault: cost.Fault, Retries: cost.Retries,
		FaultSeconds:  cost.FaultSeconds * j,
		Mitigated:     cost.Mitigated,
		GatherSeconds: gather * j,
		OpenSeconds:   open * openScale * j,
	})
	s.bytes += nbytes
	s.mu.Unlock()
	return dur, nil
}

// Mkdir notes a directory creation (metadata op): it costs one open
// latency on rank's clock and appends a zero-byte record with Dir set so
// file-count audits can include directories if desired.
func (fs *FileSystem) Mkdir(rank int, path string, labels Labels) error {
	if rank < 0 {
		return fmt.Errorf("iosim: negative rank %d for %s", rank, path)
	}
	if fs.cfg.Backend == RealDisk {
		if err := os.MkdirAll(filepath.Join(fs.root, path), 0o755); err != nil {
			return fmt.Errorf("iosim: mkdir %s: %w", path, err)
		}
	}
	node, _ := fs.linkOf(rank)
	s := fs.shardFor(rank)
	s.mu.Lock()
	start := s.clock
	s.clock = start + fs.cfg.OpenLatency
	s.records = append(s.records, WriteRecord{
		Rank: rank, Path: path,
		Start: start, Duration: fs.cfg.OpenLatency,
		Labels: labels, Dir: true,
		Node: node, Target: -1,
		OpenSeconds: fs.cfg.OpenLatency,
	})
	s.mu.Unlock()
	return nil
}

// AdvanceClock adds dt simulated seconds to rank's clock (used to model
// compute time between bursts, e.g. MACSio's --compute_time). Negative
// ranks have no shard and are ignored, matching Clock.
func (fs *FileSystem) AdvanceClock(rank int, dt float64) {
	if rank < 0 {
		return
	}
	s := fs.shardFor(rank)
	s.mu.Lock()
	s.clock += dt
	s.mu.Unlock()
}

// Clock returns rank's current simulated time.
func (fs *FileSystem) Clock(rank int) float64 {
	shards := *fs.shards.Load()
	if rank < 0 || rank >= len(shards) {
		return 0
	}
	s := shards[rank]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Ledger returns a merged copy of all write records. The order is
// deterministic regardless of goroutine scheduling: ascending rank, then
// each rank's own program order. (Records carry Start timestamps for
// callers that want time ordering instead.)
func (fs *FileSystem) Ledger() []WriteRecord {
	shards := *fs.shards.Load()
	var total int
	for _, s := range shards {
		s.mu.Lock()
		total += len(s.records)
		s.mu.Unlock()
	}
	out := make([]WriteRecord, 0, total)
	for _, s := range shards {
		s.mu.Lock()
		out = append(out, s.records...)
		s.mu.Unlock()
	}
	return out
}

// Reset clears the ledger and all rank clocks. It must not race with
// in-flight writers (call it between runs, not during one).
func (fs *FileSystem) Reset() {
	fs.growMu.Lock()
	empty := []*shard{}
	fs.shards.Store(&empty)
	fs.growMu.Unlock()
	fs.model.Reset()
	if inj := fs.cfg.Faults; inj != nil {
		inj.Reset()
	}
	fs.retarget.Store(nil)
	fs.agg.Store(nil)
	fs.burstN.Store(0)
	fs.rpn.Store(int64(fs.cfg.Topology.ranksPerNode(0)))
}

// TotalBytes sums all recorded writes from the per-shard running totals.
func (fs *FileSystem) TotalBytes() int64 {
	shards := *fs.shards.Load()
	var total int64
	for _, s := range shards {
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// BytesBy aggregates ledger bytes by an arbitrary key function.
func BytesBy(records []WriteRecord, key func(WriteRecord) int) map[int]int64 {
	out := map[int]int64{}
	for _, r := range records {
		out[key(r)] += r.Bytes
	}
	return out
}

// BytesByStep aggregates bytes per Labels.Step.
func BytesByStep(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Labels.Step })
}

// BytesByLevel aggregates bytes per Labels.Level.
func BytesByLevel(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Labels.Level })
}

// BytesByRank aggregates bytes per writing rank.
func BytesByRank(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Rank })
}

// SortedKeys returns the sorted keys of an aggregation map.
func SortedKeys(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// BurstStat summarizes one I/O burst (one dump step).
type BurstStat struct {
	Step         int
	Bytes        int64
	Files        int     // data files written (directory records excluded)
	Dirs         int     // directory-creation metadata ops
	WallSeconds  float64 // max over ranks of per-rank time spent in this step
	MeanSeconds  float64 // mean over participating ranks
	EffectiveBW  float64 // Bytes / WallSeconds
	Participants int
	// Stragglers counts participating ranks whose time in this burst
	// exceeds 1.5x the mean — the tail that sets the bulk-synchronous
	// wall time.
	Stragglers int

	// Per-link aggregations, populated only when ledger records carry
	// topology labels (Node >= 0); all zero under the aggregate model.
	Nodes           int     // distinct compute nodes participating
	Links           int     // distinct (node, target) links carrying data
	MaxLinkSeconds  float64 // busiest link's transfer time
	MeanLinkSeconds float64 // mean transfer time across links
	LinkSkew        float64 // MaxLinkSeconds / MeanLinkSeconds (1 = balanced)
	NodeSkew        float64 // max/mean bytes per node (1 = balanced)

	// Storage-tier aggregations, populated only when records carry tier
	// labels (the "bb"/"bb+gpfs" models); all zero under single-tier
	// models.
	BBBytes      int64   // bytes absorbed at burst-buffer speed (TierBB)
	SpillBytes   int64   // bytes that stalled through to GPFS (TierGPFS)
	MaxBBFill    float64 // peak buffer-partition occupancy fraction
	StallSeconds float64 // max over ranks of time spent drain-stalled
	StallRanks   int     // ranks that stalled at least once (stragglers)
	DrainSeconds float64 // max over ranks of the post-burst drain tail

	// Fault aggregations, populated only when records carry fault labels
	// (an installed FaultInjector); all zero under fault-free runs.
	FaultWrites  int     // writes an injected fault touched
	Retries      int     // failed attempts summed over the burst's writes
	FaultSeconds float64 // max over ranks of time lost to injected faults
}

// burstLink keys one (node, target) link of a burst.
type burstLink struct{ node, target int }

// BurstStats computes per-step burst summaries from the ledger, modeling
// the bulk-synchronous "compute then burst" pattern the paper describes.
// Directory records contribute their metadata latency to the per-rank
// burst time but are counted separately from data files. Records labeled
// by the topology model additionally produce the per-node and per-link
// skew fields, which expose where a burst is NIC- or fan-in-bound.
// Records labeled by the burst-buffer models produce the per-tier byte
// split, buffer occupancy, drain tails, and stall stragglers; the drain
// tail relies on the Ledger contract that a rank's records appear in
// program order.
func BurstStats(records []WriteRecord) []BurstStat {
	f := NewBurstFold()
	for _, r := range records {
		f.Consume(r)
	}
	return f.Stats()
}
