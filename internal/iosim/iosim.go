// Package iosim models the parallel filesystem the paper's runs wrote to
// (Summit's GPFS-based Alpine). It provides a deterministic performance
// model — shared aggregate bandwidth with per-writer caps, per-open
// latency, and seeded lognormal jitter — plus a ledger of every write so
// the analysis layer can reconstruct per-(step, level, rank) output sizes,
// which are the quantities the paper measures.
//
// Three backends are supported:
//
//   - ModelOnly: no bytes touch the real disk; only the ledger and the
//     simulated clock advance. This is how Summit-scale cases run.
//   - RealDisk: data is also written to the host filesystem so plotfile
//     round-trip tests and external tooling can read it.
//   - Both timing models apply identically; the backend only controls
//     materialization.
package iosim

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Backend selects whether writes are materialized on the host filesystem.
type Backend int

const (
	// ModelOnly records writes in the ledger without touching disk.
	ModelOnly Backend = iota
	// RealDisk records writes and also writes the bytes to the host FS.
	RealDisk
)

// Config parameterizes the filesystem performance model. The defaults
// (DefaultConfig) are scaled to a Summit-like burst: a large shared
// aggregate bandwidth, a per-writer stream cap, and a small per-file open
// latency.
type Config struct {
	Backend Backend
	// AggregateBandwidth is the shared backend bandwidth in bytes/second.
	AggregateBandwidth float64
	// PerWriterBandwidth caps a single rank's stream in bytes/second.
	PerWriterBandwidth float64
	// OpenLatency is the fixed per-file cost in seconds.
	OpenLatency float64
	// JitterSigma is the sigma of the lognormal multiplicative jitter
	// applied to each write duration. Zero disables jitter.
	JitterSigma float64
	// Seed makes the jitter deterministic.
	Seed int64
}

// DefaultConfig returns a Summit-flavored model: 2.5 TB/s aggregate (the
// published Alpine peak), 2 GB/s per-writer stream, 0.5 ms opens, mild
// jitter.
func DefaultConfig() Config {
	return Config{
		Backend:            ModelOnly,
		AggregateBandwidth: 2.5e12,
		PerWriterBandwidth: 2.0e9,
		OpenLatency:        0.0005,
		JitterSigma:        0.15,
		Seed:               1,
	}
}

// Labels attach experiment coordinates to a write record so the ledger can
// be sliced the way the paper slices its data: per timestep, per AMR
// level, per MPI task.
type Labels struct {
	Step  int
	Level int
}

// WriteRecord is one entry in the ledger.
type WriteRecord struct {
	Rank     int
	Path     string
	Bytes    int64
	Start    float64 // simulated seconds since FileSystem creation
	Duration float64 // simulated seconds
	Labels   Labels
}

// FileSystem is the simulated parallel filesystem. It is safe for
// concurrent use by many rank goroutines.
type FileSystem struct {
	cfg Config

	mu          sync.Mutex
	records     []WriteRecord
	rankClock   map[int]float64
	burstActive int // writers declared for the current burst
	root        string
}

// New creates a filesystem with the given model configuration. root is the
// host directory used when Backend == RealDisk (ignored for ModelOnly, but
// still recorded for path bookkeeping).
func New(cfg Config, root string) *FileSystem {
	return &FileSystem{cfg: cfg, rankClock: map[int]float64{}, root: root}
}

// Root returns the host root directory.
func (fs *FileSystem) Root() string { return fs.root }

// Config returns the model configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// BeginBurst declares that n writers participate in the upcoming I/O burst.
// The contention model divides the aggregate bandwidth among them. The
// plotfile and MACSio writers call this once per dump with the number of
// ranks that will write. EndBurst resets to uncontended mode.
func (fs *FileSystem) BeginBurst(n int) {
	fs.mu.Lock()
	fs.burstActive = n
	fs.mu.Unlock()
}

// EndBurst marks the end of the current burst.
func (fs *FileSystem) EndBurst() {
	fs.mu.Lock()
	fs.burstActive = 0
	fs.mu.Unlock()
}

// effectiveBandwidth returns the per-writer bandwidth under the current
// contention state.
func (fs *FileSystem) effectiveBandwidth() float64 {
	bw := fs.cfg.PerWriterBandwidth
	if fs.burstActive > 1 {
		share := fs.cfg.AggregateBandwidth / float64(fs.burstActive)
		if share < bw {
			bw = share
		}
	}
	if bw <= 0 {
		bw = 1 // avoid division by zero in degenerate configs
	}
	return bw
}

// jitter returns the deterministic lognormal factor for (rank, path).
func (fs *FileSystem) jitter(rank int, path string) float64 {
	if fs.cfg.JitterSigma == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", fs.cfg.Seed, rank, path)
	u := h.Sum64()
	// Two uniforms from the hash bits -> one standard normal (Box-Muller).
	u1 := (float64(u>>11) + 0.5) / float64(1<<53)
	h.Write([]byte{0xA5})
	u2 := (float64(h.Sum64()>>11) + 0.5) / float64(1<<53)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(fs.cfg.JitterSigma * z)
}

// Write records (and, for RealDisk, materializes) a file written by rank.
// It returns the simulated duration of the write.
func (fs *FileSystem) Write(rank int, path string, data []byte, labels Labels) (float64, error) {
	return fs.write(rank, path, int64(len(data)), data, labels)
}

// WriteSize records a write of nbytes without materializing data. The
// surrogate (Summit-scale) pipeline uses this so that 17-billion-cell
// meshes never allocate field memory.
func (fs *FileSystem) WriteSize(rank int, path string, nbytes int64, labels Labels) (float64, error) {
	return fs.write(rank, path, nbytes, nil, labels)
}

func (fs *FileSystem) write(rank int, path string, nbytes int64, data []byte, labels Labels) (float64, error) {
	if nbytes < 0 {
		return 0, fmt.Errorf("iosim: negative write size %d for %s", nbytes, path)
	}
	if fs.cfg.Backend == RealDisk && data != nil {
		full := filepath.Join(fs.root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return 0, fmt.Errorf("iosim: mkdir for %s: %w", path, err)
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return 0, fmt.Errorf("iosim: write %s: %w", path, err)
		}
	}

	fs.mu.Lock()
	defer fs.mu.Unlock()
	bw := fs.effectiveBandwidth()
	dur := (fs.cfg.OpenLatency + float64(nbytes)/bw) * fs.jitter(rank, path)
	start := fs.rankClock[rank]
	fs.rankClock[rank] = start + dur
	fs.records = append(fs.records, WriteRecord{
		Rank: rank, Path: path, Bytes: nbytes,
		Start: start, Duration: dur, Labels: labels,
	})
	return dur, nil
}

// AppendDirRecord notes a directory creation (metadata op); it costs one
// open latency on rank's clock and adds a zero-byte record so file-count
// audits can include directories if desired.
func (fs *FileSystem) Mkdir(rank int, path string) error {
	if fs.cfg.Backend == RealDisk {
		if err := os.MkdirAll(filepath.Join(fs.root, path), 0o755); err != nil {
			return fmt.Errorf("iosim: mkdir %s: %w", path, err)
		}
	}
	fs.mu.Lock()
	fs.rankClock[rank] += fs.cfg.OpenLatency
	fs.mu.Unlock()
	return nil
}

// AdvanceClock adds dt simulated seconds to rank's clock (used to model
// compute time between bursts, e.g. MACSio's --compute_time).
func (fs *FileSystem) AdvanceClock(rank int, dt float64) {
	fs.mu.Lock()
	fs.rankClock[rank] += dt
	fs.mu.Unlock()
}

// Clock returns rank's current simulated time.
func (fs *FileSystem) Clock(rank int) float64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.rankClock[rank]
}

// Ledger returns a copy of all write records in insertion order.
func (fs *FileSystem) Ledger() []WriteRecord {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]WriteRecord, len(fs.records))
	copy(out, fs.records)
	return out
}

// Reset clears the ledger and all rank clocks.
func (fs *FileSystem) Reset() {
	fs.mu.Lock()
	fs.records = nil
	fs.rankClock = map[int]float64{}
	fs.burstActive = 0
	fs.mu.Unlock()
}

// TotalBytes sums all recorded writes.
func (fs *FileSystem) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, r := range fs.records {
		total += r.Bytes
	}
	return total
}

// BytesBy aggregates ledger bytes by an arbitrary key function.
func BytesBy(records []WriteRecord, key func(WriteRecord) int) map[int]int64 {
	out := map[int]int64{}
	for _, r := range records {
		out[key(r)] += r.Bytes
	}
	return out
}

// BytesByStep aggregates bytes per Labels.Step.
func BytesByStep(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Labels.Step })
}

// BytesByLevel aggregates bytes per Labels.Level.
func BytesByLevel(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Labels.Level })
}

// BytesByRank aggregates bytes per writing rank.
func BytesByRank(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Rank })
}

// SortedKeys returns the sorted keys of an aggregation map.
func SortedKeys(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// BurstStat summarizes one I/O burst (one dump step).
type BurstStat struct {
	Step         int
	Bytes        int64
	Files        int
	WallSeconds  float64 // max over ranks of per-rank time spent in this step
	MeanSeconds  float64 // mean over participating ranks
	EffectiveBW  float64 // Bytes / WallSeconds
	Participants int
}

// BurstStats computes per-step burst summaries from the ledger, modeling
// the bulk-synchronous "compute then burst" pattern the paper describes.
func BurstStats(records []WriteRecord) []BurstStat {
	type acc struct {
		bytes   int64
		files   int
		perRank map[int]float64
	}
	bySteps := map[int]*acc{}
	for _, r := range records {
		a := bySteps[r.Labels.Step]
		if a == nil {
			a = &acc{perRank: map[int]float64{}}
			bySteps[r.Labels.Step] = a
		}
		a.bytes += r.Bytes
		a.files++
		a.perRank[r.Rank] += r.Duration
	}
	steps := make([]int, 0, len(bySteps))
	for s := range bySteps {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	out := make([]BurstStat, 0, len(steps))
	for _, s := range steps {
		a := bySteps[s]
		var wall, sum float64
		for _, d := range a.perRank {
			if d > wall {
				wall = d
			}
			sum += d
		}
		st := BurstStat{
			Step: s, Bytes: a.bytes, Files: a.files,
			WallSeconds: wall, Participants: len(a.perRank),
		}
		if len(a.perRank) > 0 {
			st.MeanSeconds = sum / float64(len(a.perRank))
		}
		if wall > 0 {
			st.EffectiveBW = float64(a.bytes) / wall
		}
		out = append(out, st)
	}
	return out
}
