// Package iosim models the parallel filesystem the paper's runs wrote to
// (Summit's GPFS-based Alpine). It provides a deterministic performance
// model — shared aggregate bandwidth with per-writer caps, per-open
// latency, and seeded lognormal jitter — plus a ledger of every write so
// the analysis layer can reconstruct per-(step, level, rank) output sizes,
// which are the quantities the paper measures.
//
// Three backends are supported:
//
//   - ModelOnly: no bytes touch the real disk; only the ledger and the
//     simulated clock advance. This is how Summit-scale cases run.
//   - RealDisk: data is also written to the host filesystem so plotfile
//     round-trip tests and external tooling can read it.
//   - Both timing models apply identically; the backend only controls
//     materialization.
//
// # Sharded ledger architecture
//
// The FileSystem is written to concurrently by every simulated rank
// goroutine of an mpisim SPMD program, so its hot path is sharded by
// rank: each rank owns a private ledger segment and clock, guarded by a
// per-shard mutex that is uncontended in SPMD use (only rank r's
// goroutine writes through rank r). No global lock is taken per write.
// Burst contention is a bandwidth snapshot taken once at BeginBurst and
// read atomically by every write, instead of a shared-lock acquisition
// per write. Ledger, TotalBytes and Clock merge or read the shards on
// demand; the merged ledger order is deterministic — ascending rank,
// then each rank's program order — regardless of goroutine scheduling.
package iosim

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Backend selects whether writes are materialized on the host filesystem.
type Backend int

const (
	// ModelOnly records writes in the ledger without touching disk.
	ModelOnly Backend = iota
	// RealDisk records writes and also writes the bytes to the host FS.
	RealDisk
)

// Config parameterizes the filesystem performance model. The defaults
// (DefaultConfig) are scaled to a Summit-like burst: a large shared
// aggregate bandwidth, a per-writer stream cap, and a small per-file open
// latency.
type Config struct {
	Backend Backend
	// AggregateBandwidth is the shared backend bandwidth in bytes/second.
	AggregateBandwidth float64
	// PerWriterBandwidth caps a single rank's stream in bytes/second.
	PerWriterBandwidth float64
	// OpenLatency is the fixed per-file cost in seconds.
	OpenLatency float64
	// JitterSigma is the sigma of the lognormal multiplicative jitter
	// applied to each write duration. Zero disables jitter.
	JitterSigma float64
	// Seed makes the jitter deterministic.
	Seed int64
}

// DefaultConfig returns a Summit-flavored model: 2.5 TB/s aggregate (the
// published Alpine peak), 2 GB/s per-writer stream, 0.5 ms opens, mild
// jitter.
func DefaultConfig() Config {
	return Config{
		Backend:            ModelOnly,
		AggregateBandwidth: 2.5e12,
		PerWriterBandwidth: 2.0e9,
		OpenLatency:        0.0005,
		JitterSigma:        0.15,
		Seed:               1,
	}
}

// Labels attach experiment coordinates to a write record so the ledger can
// be sliced the way the paper slices its data: per timestep, per AMR
// level, per MPI task.
type Labels struct {
	Step  int
	Level int
}

// WriteRecord is one entry in the ledger.
type WriteRecord struct {
	Rank     int
	Path     string
	Bytes    int64
	Start    float64 // simulated seconds since FileSystem creation
	Duration float64 // simulated seconds
	Labels   Labels
	// Dir marks a zero-byte directory-creation (metadata) record, so
	// file-count audits can separate data files from directories.
	Dir bool
}

// shard is one rank's private slice of the filesystem state. Its mutex is
// uncontended on the hot path (a rank's writes come from that rank's
// goroutine); it exists so merges and cross-rank reads are race-free.
type shard struct {
	mu      sync.Mutex
	records []WriteRecord
	bytes   int64
	clock   float64
}

// FileSystem is the simulated parallel filesystem. It is safe for
// concurrent use by many rank goroutines; see the package comment for the
// sharding design.
type FileSystem struct {
	cfg  Config
	root string

	// burstBW holds math.Float64bits of the per-writer bandwidth under
	// the current contention state, snapshotted at BeginBurst/EndBurst.
	burstBW atomic.Uint64

	// shards[rank] is rank's ledger segment. The slice only grows;
	// growth happens under growMu with copy-on-write publication so the
	// hot path is a single atomic pointer load.
	shards atomic.Pointer[[]*shard]
	growMu sync.Mutex
}

// New creates a filesystem with the given model configuration. root is the
// host directory used when Backend == RealDisk (ignored for ModelOnly, but
// still recorded for path bookkeeping).
func New(cfg Config, root string) *FileSystem {
	fs := &FileSystem{cfg: cfg, root: root}
	empty := []*shard{}
	fs.shards.Store(&empty)
	fs.burstBW.Store(math.Float64bits(snapshotBandwidth(cfg, 0)))
	return fs
}

// snapshotBandwidth returns the per-writer bandwidth when writers ranks
// contend for the shared backend (writers <= 1 means uncontended).
func snapshotBandwidth(cfg Config, writers int) float64 {
	bw := cfg.PerWriterBandwidth
	if writers > 1 {
		share := cfg.AggregateBandwidth / float64(writers)
		if share < bw {
			bw = share
		}
	}
	if bw <= 0 {
		bw = 1 // avoid division by zero in degenerate configs
	}
	return bw
}

// Root returns the host root directory.
func (fs *FileSystem) Root() string { return fs.root }

// Config returns the model configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// BeginBurst declares that n writers participate in the upcoming I/O burst.
// The contention model divides the aggregate bandwidth among them; the
// resulting per-writer share is snapshotted here and read atomically by
// every write until EndBurst, so no write takes a shared lock. The
// plotfile and MACSio writers call this once per dump with the number of
// ranks that will write. EndBurst resets to uncontended mode.
func (fs *FileSystem) BeginBurst(n int) {
	fs.burstBW.Store(math.Float64bits(snapshotBandwidth(fs.cfg, n)))
	fs.ensureShards(n)
}

// EndBurst marks the end of the current burst.
func (fs *FileSystem) EndBurst() {
	fs.burstBW.Store(math.Float64bits(snapshotBandwidth(fs.cfg, 0)))
}

// effectiveBandwidth returns the per-writer bandwidth under the current
// contention snapshot.
func (fs *FileSystem) effectiveBandwidth() float64 {
	return math.Float64frombits(fs.burstBW.Load())
}

// shardFor returns rank's shard, growing the shard table if needed.
func (fs *FileSystem) shardFor(rank int) *shard {
	if s := *fs.shards.Load(); rank < len(s) {
		return s[rank]
	}
	return fs.growShards(rank)
}

// ensureShards pre-grows the table so an n-rank burst never grows it from
// the write path.
func (fs *FileSystem) ensureShards(n int) {
	if n > 0 {
		fs.shardFor(n - 1)
	}
}

func (fs *FileSystem) growShards(rank int) *shard {
	fs.growMu.Lock()
	defer fs.growMu.Unlock()
	cur := *fs.shards.Load()
	if rank < len(cur) {
		return cur[rank]
	}
	n := 2 * len(cur)
	if n <= rank {
		n = rank + 1
	}
	next := make([]*shard, n)
	copy(next, cur)
	for i := len(cur); i < n; i++ {
		next[i] = &shard{}
	}
	fs.shards.Store(&next)
	return next[rank]
}

// jitter returns the deterministic lognormal factor for (rank, path). The
// hash input is the FNV-1a digest of "<seed>|<rank>|<path>", computed
// inline so the hot path allocates nothing.
func (fs *FileSystem) jitter(rank int, path string) float64 {
	if fs.cfg.JitterSigma == 0 {
		return 1
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var num [20]byte
	for _, c := range strconv.AppendInt(num[:0], fs.cfg.Seed, 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '|') * prime64
	for _, c := range strconv.AppendInt(num[:0], int64(rank), 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '|') * prime64
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * prime64
	}
	u := h
	// Two uniforms from the hash bits -> one standard normal (Box-Muller).
	u1 := (float64(u>>11) + 0.5) / float64(1<<53)
	h = (h ^ 0xA5) * prime64
	u2 := (float64(h>>11) + 0.5) / float64(1<<53)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(fs.cfg.JitterSigma * z)
}

// Write records (and, for RealDisk, materializes) a file written by rank.
// It returns the simulated duration of the write.
func (fs *FileSystem) Write(rank int, path string, data []byte, labels Labels) (float64, error) {
	return fs.write(rank, path, int64(len(data)), data, labels)
}

// WriteSize records a write of nbytes without materializing data. The
// surrogate (Summit-scale) pipeline uses this so that 17-billion-cell
// meshes never allocate field memory.
func (fs *FileSystem) WriteSize(rank int, path string, nbytes int64, labels Labels) (float64, error) {
	return fs.write(rank, path, nbytes, nil, labels)
}

func (fs *FileSystem) write(rank int, path string, nbytes int64, data []byte, labels Labels) (float64, error) {
	if nbytes < 0 {
		return 0, fmt.Errorf("iosim: negative write size %d for %s", nbytes, path)
	}
	if rank < 0 {
		return 0, fmt.Errorf("iosim: negative rank %d for %s", rank, path)
	}
	if fs.cfg.Backend == RealDisk && data != nil {
		full := filepath.Join(fs.root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return 0, fmt.Errorf("iosim: mkdir for %s: %w", path, err)
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return 0, fmt.Errorf("iosim: write %s: %w", path, err)
		}
	}

	bw := fs.effectiveBandwidth()
	dur := (fs.cfg.OpenLatency + float64(nbytes)/bw) * fs.jitter(rank, path)
	s := fs.shardFor(rank)
	s.mu.Lock()
	start := s.clock
	s.clock = start + dur
	s.records = append(s.records, WriteRecord{
		Rank: rank, Path: path, Bytes: nbytes,
		Start: start, Duration: dur, Labels: labels,
	})
	s.bytes += nbytes
	s.mu.Unlock()
	return dur, nil
}

// Mkdir notes a directory creation (metadata op): it costs one open
// latency on rank's clock and appends a zero-byte record with Dir set so
// file-count audits can include directories if desired.
func (fs *FileSystem) Mkdir(rank int, path string, labels Labels) error {
	if rank < 0 {
		return fmt.Errorf("iosim: negative rank %d for %s", rank, path)
	}
	if fs.cfg.Backend == RealDisk {
		if err := os.MkdirAll(filepath.Join(fs.root, path), 0o755); err != nil {
			return fmt.Errorf("iosim: mkdir %s: %w", path, err)
		}
	}
	s := fs.shardFor(rank)
	s.mu.Lock()
	start := s.clock
	s.clock = start + fs.cfg.OpenLatency
	s.records = append(s.records, WriteRecord{
		Rank: rank, Path: path,
		Start: start, Duration: fs.cfg.OpenLatency,
		Labels: labels, Dir: true,
	})
	s.mu.Unlock()
	return nil
}

// AdvanceClock adds dt simulated seconds to rank's clock (used to model
// compute time between bursts, e.g. MACSio's --compute_time). Negative
// ranks have no shard and are ignored, matching Clock.
func (fs *FileSystem) AdvanceClock(rank int, dt float64) {
	if rank < 0 {
		return
	}
	s := fs.shardFor(rank)
	s.mu.Lock()
	s.clock += dt
	s.mu.Unlock()
}

// Clock returns rank's current simulated time.
func (fs *FileSystem) Clock(rank int) float64 {
	shards := *fs.shards.Load()
	if rank < 0 || rank >= len(shards) {
		return 0
	}
	s := shards[rank]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Ledger returns a merged copy of all write records. The order is
// deterministic regardless of goroutine scheduling: ascending rank, then
// each rank's own program order. (Records carry Start timestamps for
// callers that want time ordering instead.)
func (fs *FileSystem) Ledger() []WriteRecord {
	shards := *fs.shards.Load()
	var total int
	for _, s := range shards {
		s.mu.Lock()
		total += len(s.records)
		s.mu.Unlock()
	}
	out := make([]WriteRecord, 0, total)
	for _, s := range shards {
		s.mu.Lock()
		out = append(out, s.records...)
		s.mu.Unlock()
	}
	return out
}

// Reset clears the ledger and all rank clocks. It must not race with
// in-flight writers (call it between runs, not during one).
func (fs *FileSystem) Reset() {
	fs.growMu.Lock()
	empty := []*shard{}
	fs.shards.Store(&empty)
	fs.growMu.Unlock()
	fs.burstBW.Store(math.Float64bits(snapshotBandwidth(fs.cfg, 0)))
}

// TotalBytes sums all recorded writes from the per-shard running totals.
func (fs *FileSystem) TotalBytes() int64 {
	shards := *fs.shards.Load()
	var total int64
	for _, s := range shards {
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// BytesBy aggregates ledger bytes by an arbitrary key function.
func BytesBy(records []WriteRecord, key func(WriteRecord) int) map[int]int64 {
	out := map[int]int64{}
	for _, r := range records {
		out[key(r)] += r.Bytes
	}
	return out
}

// BytesByStep aggregates bytes per Labels.Step.
func BytesByStep(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Labels.Step })
}

// BytesByLevel aggregates bytes per Labels.Level.
func BytesByLevel(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Labels.Level })
}

// BytesByRank aggregates bytes per writing rank.
func BytesByRank(records []WriteRecord) map[int]int64 {
	return BytesBy(records, func(r WriteRecord) int { return r.Rank })
}

// SortedKeys returns the sorted keys of an aggregation map.
func SortedKeys(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// BurstStat summarizes one I/O burst (one dump step).
type BurstStat struct {
	Step         int
	Bytes        int64
	Files        int     // data files written (directory records excluded)
	Dirs         int     // directory-creation metadata ops
	WallSeconds  float64 // max over ranks of per-rank time spent in this step
	MeanSeconds  float64 // mean over participating ranks
	EffectiveBW  float64 // Bytes / WallSeconds
	Participants int
}

// BurstStats computes per-step burst summaries from the ledger, modeling
// the bulk-synchronous "compute then burst" pattern the paper describes.
// Directory records contribute their metadata latency to the per-rank
// burst time but are counted separately from data files.
func BurstStats(records []WriteRecord) []BurstStat {
	type acc struct {
		bytes   int64
		files   int
		dirs    int
		perRank map[int]float64
	}
	bySteps := map[int]*acc{}
	for _, r := range records {
		a := bySteps[r.Labels.Step]
		if a == nil {
			a = &acc{perRank: map[int]float64{}}
			bySteps[r.Labels.Step] = a
		}
		a.bytes += r.Bytes
		if r.Dir {
			a.dirs++
		} else {
			a.files++
		}
		a.perRank[r.Rank] += r.Duration
	}
	steps := make([]int, 0, len(bySteps))
	for s := range bySteps {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	out := make([]BurstStat, 0, len(steps))
	for _, s := range steps {
		a := bySteps[s]
		var wall, sum float64
		for _, d := range a.perRank {
			if d > wall {
				wall = d
			}
			sum += d
		}
		st := BurstStat{
			Step: s, Bytes: a.bytes, Files: a.files, Dirs: a.dirs,
			WallSeconds: wall, Participants: len(a.perRank),
		}
		if len(a.perRank) > 0 {
			st.MeanSeconds = sum / float64(len(a.perRank))
		}
		if wall > 0 {
			st.EffectiveBW = float64(a.bytes) / wall
		}
		out = append(out, st)
	}
	return out
}
