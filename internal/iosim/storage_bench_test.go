package iosim

import (
	"fmt"
	"testing"
)

// BenchmarkStorageWrite prices one N-rank burst (one 1 MB write per
// rank) under each storage stack at two paper scales, so the cost of the
// pluggable pricing layer — and the burst-buffer bookkeeping on top of
// it — stays visible in CI's bench smoke next to the sharded-filesystem
// numbers.
func BenchmarkStorageWrite(b *testing.B) {
	for _, kind := range StorageKinds() {
		for _, ranks := range []int{64, 512} {
			b.Run(fmt.Sprintf("%s/%dranks", kind, ranks), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Storage = kind
				cfg.Topology = TopologyForCase(ranks/4, ranks)
				cfg.BurstBuffer = DefaultBurstBuffer(ranks / 4)
				fs := New(cfg, "")
				b.SetBytes(int64(ranks) << 20)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fs.BeginBurst(ranks)
					for r := 0; r < ranks; r++ {
						if _, err := fs.WriteSize(r, "plt/Cell_D", 1<<20, Labels{Step: i}); err != nil {
							b.Fatal(err)
						}
					}
					fs.EndBurst()
					if i%1024 == 1023 {
						b.StopTimer()
						fs.Reset() // bound ledger memory on long -benchtime runs
						b.StartTimer()
					}
				}
			})
		}
	}
}
