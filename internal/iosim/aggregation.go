package iosim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Two-phase collective aggregation. The paper's Summit/Alpine measurements
// show NSD fan-in dominating burst cost at scale, and the related work's
// answer is to bound the writer count: Hercule-style subfiling gathers each
// node's data onto a few aggregator ranks before touching the file system,
// and ADIOS2-style staging additionally drains the aggregated data
// asynchronously under the next compute phase. An AggregationSpec turns
// every burst into that two-phase collective:
//
//  1. Gather: non-aggregator ranks ship their share over the intra-node
//     plane to their node's aggregator(s), priced against the spec's
//     gather bandwidth split across the node's concurrent senders (the
//     same intra-node bandwidth vocabulary as Topology.ExchangeTime).
//  2. Write: only aggregator ranks open files and drive the storage
//     stack, so the NIC/NSD contention snapshot is taken over the
//     aggregator set — lower fan-in, fewer opens — and each member's
//     transfer time-shares its aggregator's stream.
//
// The "all" spec (one aggregator per rank, zero gather, MIF layout) is
// byte-identical to the direct-write path for every storage stack
// (property-test-pinned), so aggregation is strictly opt-in.
//
// Determinism contract (gather phase): the gather is priced from a
// BeginBurst snapshot — per-rank sender counts and bandwidths are a pure
// function of (topology, spec, writer count) — and each rank's gather time
// depends only on (rank, its own write size), never on another rank's
// progress, so ledgers are reproducible under any goroutine interleaving.

// Aggregator-placement and file-layout names accepted by
// AggregationSpec.Aggregators / .Layout.
const (
	// AggregatorsAll makes every rank its own aggregator: zero gather,
	// the historical N-to-N direct-write pattern.
	AggregatorsAll = "all"
	// LayoutMIF is the multiple-independent-files layout (the default):
	// each aggregator creates its own file, so per-burst metadata cost
	// scales with the aggregator count.
	LayoutMIF = "mif"
	// LayoutSIF is the single-shared-file layout: one create amortized
	// across aggregators, plus a per-writer lock-negotiation term that
	// grows with the aggregator count.
	LayoutSIF = "sif"
)

// Summit-flavored aggregation defaults.
const (
	// DefaultGatherBandwidth is the intra-node gather plane in
	// bytes/second (NVLink-class shared-memory transport), divided across
	// a node's concurrent senders.
	DefaultGatherBandwidth = 50e9
	// DefaultStagingCapacity is one aggregator's in-memory staging buffer
	// in bytes for the async mode, shared by its gather group.
	DefaultStagingCapacity = 4e9
	// sifLockFactor is the per-peer lock-negotiation cost of the shared
	// SIF file, in open-latency units: each writer pays
	// (1 + sifLockFactor*(A-1))/n opens, so a single aggregator prices
	// identically to MIF and contention grows with the writer count.
	sifLockFactor = 2.0
)

// TierStage marks a write absorbed by an aggregator group's in-memory
// staging buffer under the async aggregation mode; the buffered bytes
// drain to the storage stack under the following compute gap.
const TierStage Tier = "stage"

// AggregationSpec configures two-phase collective output. The zero value
// disables aggregation and keeps the write path byte-identical to the
// direct N-to-N pattern. Validate rejects malformed specs; New panics on
// an invalid enabled spec, so CLI and campaign layers validate first.
type AggregationSpec struct {
	// Aggregators places the phase-two writers: "all" (every rank writes
	// its own share — the direct pattern) or "K/node" (K >= 1 aggregators
	// per compute node; without a topology, K aggregators total).
	Aggregators string `json:"aggregators"`
	// Layout selects the file layout the aggregators write: "" or "mif"
	// for multiple independent files, "sif" for one shared file.
	Layout string `json:"layout,omitempty"`
	// Async enables staging: aggregated data lands in an in-memory
	// buffer at gather-plane speed and drains to storage under the
	// inter-burst compute gap (the fluid fill/drain model). Inert under
	// the "bb"/"bb+gpfs" stacks, whose node-local NVMe already stages.
	Async bool `json:"async,omitempty"`
	// GatherBandwidth overrides the intra-node gather plane in
	// bytes/second (0 selects DefaultGatherBandwidth).
	GatherBandwidth float64 `json:"gather_bandwidth,omitempty"`
	// StagingCapacity overrides one aggregator's async staging buffer in
	// bytes (0 selects DefaultStagingCapacity).
	StagingCapacity float64 `json:"staging_capacity,omitempty"`
}

// Enabled reports whether the spec turns the two-phase collective on.
func (a AggregationSpec) Enabled() bool { return a.Aggregators != "" }

// Validate rejects malformed specs with actionable errors, the way
// ParseStorage rejects unknown stacks and faults.Plan.Validate rejects
// unknown fault kinds.
func (a AggregationSpec) Validate() error {
	switch {
	case a.Aggregators == "":
		return fmt.Errorf("iosim: aggregation spec needs aggregators: %q for the direct per-rank pattern, or \"K/node\" for K aggregators per node", AggregatorsAll)
	case a.Aggregators == AggregatorsAll:
	case strings.HasSuffix(a.Aggregators, "/node"):
		count := strings.TrimSuffix(a.Aggregators, "/node")
		k, err := strconv.Atoi(count)
		if err != nil {
			return fmt.Errorf("iosim: aggregators %q: %q is not an integer count (want \"K/node\", e.g. \"1/node\")", a.Aggregators, count)
		}
		if k <= 0 {
			return fmt.Errorf("iosim: aggregators %q: %d per node leaves no rank to write; want K >= 1", a.Aggregators, k)
		}
	default:
		return fmt.Errorf("iosim: unknown aggregators %q (valid: %q, or \"K/node\" with K >= 1)", a.Aggregators, AggregatorsAll)
	}
	switch a.Layout {
	case "", LayoutMIF, LayoutSIF:
	default:
		return fmt.Errorf("iosim: unknown aggregation layout %q (valid: %q for one file per aggregator, %q for one shared file)", a.Layout, LayoutMIF, LayoutSIF)
	}
	if a.GatherBandwidth < 0 {
		return fmt.Errorf("iosim: aggregation gather bandwidth must be positive, got %g", a.GatherBandwidth)
	}
	if a.StagingCapacity < 0 {
		return fmt.Errorf("iosim: aggregation staging capacity must be positive, got %g", a.StagingCapacity)
	}
	return nil
}

// UnmarshalJSON decodes a spec rejecting unknown fields, so a typo in a
// campaign case file fails loudly instead of silently running the direct
// pattern (same contract as faults.Parse).
func (a *AggregationSpec) UnmarshalJSON(data []byte) error {
	type raw AggregationSpec // shed methods to avoid recursion
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r raw
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("aggregation spec: %w", err)
	}
	*a = AggregationSpec(r)
	return nil
}

// ParseAggregation parses a CLI spec string: an aggregator placement
// ("all", "1/node", "2/node", ...) with optional "+"-joined options
// ("mif", "sif", "async"), e.g. "1/node+sif+async". The result is
// validated.
func ParseAggregation(s string) (AggregationSpec, error) {
	parts := strings.Split(s, "+")
	spec := AggregationSpec{Aggregators: strings.TrimSpace(parts[0])}
	for _, opt := range parts[1:] {
		switch strings.TrimSpace(opt) {
		case LayoutMIF:
			spec.Layout = LayoutMIF
		case LayoutSIF:
			spec.Layout = LayoutSIF
		case "async":
			spec.Async = true
		default:
			return AggregationSpec{}, fmt.Errorf("iosim: unknown aggregation option %q in %q (valid: %q, %q, \"async\")", opt, s, LayoutMIF, LayoutSIF)
		}
	}
	if err := spec.Validate(); err != nil {
		return AggregationSpec{}, err
	}
	return spec, nil
}

// Token returns a filesystem- and sweep-name-safe identifier for the
// spec: "all", "1per-node", "2per-node-sif-async", ...
func (a AggregationSpec) Token() string {
	tok := strings.ReplaceAll(a.Aggregators, "/", "per-")
	if a.Layout == LayoutSIF {
		tok += "-sif"
	}
	if a.Async {
		tok += "-async"
	}
	return tok
}

// perNode returns the aggregators-per-node count, 0 for the "all"
// placement. Callers validate first (New panics on invalid specs).
func (a AggregationSpec) perNode() int {
	if a.Aggregators == AggregatorsAll {
		return 0
	}
	k, _ := strconv.Atoi(strings.TrimSuffix(a.Aggregators, "/node"))
	return k
}

// gatherPlane resolves the intra-node gather bandwidth.
func (a AggregationSpec) gatherPlane() float64 {
	if a.GatherBandwidth > 0 {
		return a.GatherBandwidth
	}
	return DefaultGatherBandwidth
}

// stagingCap resolves one aggregator's async staging capacity.
func (a AggregationSpec) stagingCap() float64 {
	if a.StagingCapacity > 0 {
		return a.StagingCapacity
	}
	return DefaultStagingCapacity
}

// AggregatorMap returns the rank→aggregator assignment for an n-rank job
// on topology t: entry r is the rank whose storage stream carries rank r's
// bytes. nil when aggregation is disabled or every rank writes for itself
// ("all") — the identity cases, where callers should use ranks directly.
// Inter-burst layout reorganization (amr.RemapToTargets) must fold
// per-rank loads through this map before balancing targets: only
// aggregator ranks drive storage, so balancing raw per-rank loads would
// double-count the non-writing members.
func (a AggregationSpec) AggregatorMap(t Topology, n int) []int {
	if !a.Enabled() || a.perNode() == 0 || n <= 0 {
		return nil
	}
	return a.plan(t, n).agg
}

// aggPlan is the per-burst two-phase schedule: a pure function of
// (topology, spec, writer count), built at BeginBurst, reused while the
// writer count holds, and invalidated by Retarget/Reset (member target
// labels follow the aggregator's placement).
type aggPlan struct {
	n    int
	aggs int // number of aggregator ranks
	// agg[r] is r's aggregator (agg[r] == r ⇒ r writes to storage).
	agg []int
	// group[r] is the number of ranks sharing r's aggregator.
	group []int
	// gatherBW[r] is r's intra-node gather bandwidth (the plane divided
	// across the node's concurrent senders); 0 for aggregators, whose
	// own share needs no gather.
	gatherBW []float64
	// openScale[r] scales the per-write open latency: 0 for members (no
	// file opens), for aggregators the layout's metadata model
	// normalized so the "all"+MIF identity spec scales by exactly 1.
	openScale []float64
	// tgt[r] is the storage target r's bytes fan into — the aggregator's
	// target — or -1 when targets are not modeled.
	tgt []int
}

// plan builds the schedule. Aggregators are the first K ranks of each
// node's packed block; member i of a block funnels to aggregator i mod K,
// so groups are contiguous-strided and deterministic. Without a topology
// the whole job is one block ("K/node" means K aggregators total).
func (a AggregationSpec) plan(t Topology, n int) *aggPlan {
	p := &aggPlan{
		n:         n,
		agg:       make([]int, n),
		group:     make([]int, n),
		gatherBW:  make([]float64, n),
		openScale: make([]float64, n),
		tgt:       make([]int, n),
	}
	k := a.perNode()
	rpn := n
	if t.Enabled() {
		rpn = t.ranksPerNode(n)
	}
	if rpn <= 0 {
		rpn = 1
	}
	plane := a.gatherPlane()
	for b0 := 0; b0 < n; b0 += rpn {
		bs := rpn
		if b0+bs > n {
			bs = n - b0
		}
		ka := bs // "all": every rank aggregates for itself
		if k > 0 && k < bs {
			ka = k
		}
		senders := bs - ka
		for i := 0; i < bs; i++ {
			r := b0 + i
			p.agg[r] = b0 + i%ka
			p.group[p.agg[r]]++
			if p.agg[r] != r {
				p.gatherBW[r] = plane / float64(senders)
			}
		}
	}
	for r := 0; r < n; r++ {
		if p.agg[r] == r {
			p.aggs++
		}
		// agg[r] <= r, so the aggregator's group count is already final.
		p.group[r] = p.group[p.agg[r]]
	}
	// Per-aggregator metadata scale, normalized to the direct path: MIF
	// creates one file per aggregator (an A-file create storm against
	// the metadata service — exactly 1 at the all-ranks identity), SIF
	// amortizes one create but pays lock negotiation per peer.
	scale := float64(p.aggs) / float64(n)
	if a.Layout == LayoutSIF {
		scale = (1 + sifLockFactor*(float64(p.aggs)-1)) / float64(n)
	}
	targets := t.Enabled() && t.Targets > 0
	for r := 0; r < n; r++ {
		p.tgt[r] = -1
		if targets {
			p.tgt[r] = t.targetOf(p.agg[r])
		}
		if p.agg[r] == r {
			p.openScale[r] = scale
		}
	}
	return p
}

// gather returns rank's phase-one time for shipping nbytes to its
// aggregator (0 for aggregators).
func (p *aggPlan) gather(rank int, nbytes int64) float64 {
	if bw := p.gatherBW[rank]; bw > 0 {
		return float64(nbytes) / bw
	}
	return 0
}

// aggSnapshot is the aggregator-set contention table one burst writes
// against: write[r] is r's effective phase-two bandwidth (its aggregator's
// link share time-shared across the gather group). stageCap/absorb are the
// async staging shares, nil in sync mode.
type aggSnapshot struct {
	write    []float64
	stageCap []float64
	absorb   []float64
}

// aggModel prices the write phase of the two-phase collective. It wraps
// the single-tier GPFS pricing (aggregate or per-link) and re-takes the
// contention snapshot over the aggregator set only: A aggregators
// contending beat n ranks contending exactly where fan-in was the
// bottleneck, and lose where the per-writer stream cap was, because each
// member time-shares 1/group of its aggregator's stream. The burst-buffer
// stacks wrap this model as their backing tier, so a tiered drain is
// capped by the aggregator-set snapshot too.
type aggModel struct {
	cfg  Config
	fs   *FileSystem
	base StorageModel
	spec AggregationSpec

	snap atomic.Pointer[aggSnapshot]

	// Async staging state, mirroring bbModel: the map is guarded by mu,
	// each entry is rank-private under rank's shard lock.
	mu    sync.Mutex
	ranks map[int]*bbRank
}

func newAggModel(cfg Config, fs *FileSystem, base StorageModel) *aggModel {
	return &aggModel{
		cfg:   cfg,
		fs:    fs,
		base:  base,
		spec:  cfg.Aggregation,
		ranks: map[int]*bbRank{},
	}
}

// Name keeps the base stack's selection name: aggregation is an output
// strategy layered on a stack, not a stack of its own.
func (m *aggModel) Name() string { return m.base.Name() }

func (m *aggModel) BeginBurst(n int) {
	m.base.BeginBurst(n)
	if n <= 0 {
		return
	}
	// Pure function of (topology, spec, n), like the per-link snapshot:
	// repeated SPMD BeginBurst(n) calls reuse the published table.
	if snap := m.snap.Load(); snap != nil && len(snap.write) == n {
		return
	}
	p := m.fs.aggPlanFor(n)
	snap := &aggSnapshot{write: make([]float64, n)}
	t := m.fs.topology()
	base := snapshotBandwidth(m.cfg, p.aggs)
	var perAgg []float64
	if t.Enabled() {
		// The aggregator-set refinement of Topology.snapshot: NIC and
		// fan-in shares are divided among the node's/target's writing
		// aggregators instead of all its ranks. At the all-ranks
		// identity this reproduces Topology.snapshot exactly.
		rpn := t.ranksPerNode(n)
		nodeAggs := make([]int, t.Nodes)
		var targetAggs []int
		if t.Targets > 0 {
			targetAggs = make([]int, t.Targets)
		}
		for r := 0; r < n; r++ {
			if p.agg[r] != r {
				continue
			}
			nodeAggs[t.nodeOf(r, rpn)]++
			if targetAggs != nil {
				targetAggs[t.targetOf(r)]++
			}
		}
		perAgg = make([]float64, n)
		for r := 0; r < n; r++ {
			if p.agg[r] != r {
				continue
			}
			bw := base
			if t.NICBandwidth > 0 {
				if share := t.NICBandwidth / float64(nodeAggs[t.nodeOf(r, rpn)]); share < bw {
					bw = share
				}
			}
			if targetAggs != nil && t.TargetBandwidth > 0 {
				if share := t.TargetBandwidth / float64(targetAggs[t.targetOf(r)]); share < bw {
					bw = share
				}
			}
			if bw <= 0 {
				bw = 1
			}
			perAgg[r] = bw
		}
	}
	for r := 0; r < n; r++ {
		bw := base
		if perAgg != nil {
			bw = perAgg[p.agg[r]]
		}
		snap.write[r] = bw / float64(p.group[r])
	}
	if m.spec.Async {
		snap.stageCap = make([]float64, n)
		snap.absorb = make([]float64, n)
		capA, plane := m.spec.stagingCap(), m.spec.gatherPlane()
		for r := 0; r < n; r++ {
			g := float64(p.group[r])
			snap.stageCap[r] = capA / g
			snap.absorb[r] = plane / g
		}
	}
	m.snap.Store(snap)
}

func (m *aggModel) EndBurst() {
	m.base.EndBurst()
	m.snap.Store(nil)
}

func (m *aggModel) Bandwidth(rank int) float64 {
	if snap := m.snap.Load(); snap != nil && rank < len(snap.write) {
		return snap.write[rank]
	}
	return m.base.Bandwidth(rank)
}

func (m *aggModel) Price(rank int, start float64, nbytes int64) WriteCost {
	snap := m.snap.Load()
	if snap == nil || rank >= len(snap.write) {
		// Writers outside the declared burst fall back to the base
		// stack, matching the per-link snapshot's semantics.
		return m.base.Price(rank, start, nbytes)
	}
	if m.spec.Async {
		return m.stage(snap, rank, start, nbytes)
	}
	return WriteCost{Seconds: float64(nbytes) / snap.write[rank]}
}

// stage prices one transfer through the async staging buffer: the rank's
// share absorbs at gather-plane speed and drains at the aggregator-set
// write bandwidth, reusing the burst-buffer fluid model. A full buffer
// stalls the writer through to the storage stack (TierGPFS), which is
// what bounds staging memory.
func (m *aggModel) stage(snap *aggSnapshot, rank int, start float64, nbytes int64) WriteCost {
	m.mu.Lock()
	st := m.ranks[rank]
	if st == nil {
		st = &bbRank{}
		m.ranks[rank] = st
	}
	m.mu.Unlock()
	capR, b, d := snap.stageCap[rank], snap.absorb[rank], snap.write[rank]
	// st is rank-private from here on (Price runs under rank's shard
	// lock; staging shares are statically partitioned).
	if dt := start - st.last; dt > 0 {
		st.occ -= dt * d
		if st.occ < 0 {
			st.occ = 0
		}
	}
	sec, stall, end := bbFill(st.occ, capR, b, d, nbytes)
	st.occ = end
	st.last = start + sec
	cost := WriteCost{Seconds: sec, Tier: TierStage, StallSeconds: stall}
	if stall > 0 {
		cost.Tier = TierGPFS
	}
	if d > 0 {
		cost.DrainSeconds = end / d
	}
	if capR > 0 {
		cost.BBFill = end / capR
	}
	return cost
}

func (m *aggModel) Retarget() {
	m.base.Retarget()
	m.snap.Store(nil)
}

func (m *aggModel) Reset() {
	m.base.Reset()
	m.snap.Store(nil)
	m.mu.Lock()
	m.ranks = map[int]*bbRank{}
	m.mu.Unlock()
}
