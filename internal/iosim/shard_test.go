package iosim

// Tests for the sharded-ledger architecture: deterministic merged order
// under concurrent rank goroutines, hot-path safety under the race
// detector, and byte-identical jitter versus the seed's hash/fnv +
// fmt.Fprintf implementation it replaced.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"
)

// TestMergedLedgerOrderDeterministic drives many rank goroutines through
// one FileSystem concurrently and checks that the merged ledger comes out
// in the documented deterministic order — ascending rank, then each
// rank's program order — no matter how the goroutines interleave.
func TestMergedLedgerOrderDeterministic(t *testing.T) {
	const ranks, writes = 32, 40
	run := func() []WriteRecord {
		fs := modelFS()
		fs.BeginBurst(ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for i := 0; i < writes; i++ {
					path := fmt.Sprintf("plt%05d/Cell_D_%05d", i, rank)
					if i%10 == 0 {
						if err := fs.Mkdir(rank, path+".dir", Labels{Step: i}); err != nil {
							t.Error(err)
						}
					}
					if _, err := fs.WriteSize(rank, path, int64(rank*1000+i), Labels{Step: i, Level: rank % 3}); err != nil {
						t.Error(err)
					}
				}
			}(r)
		}
		wg.Wait()
		fs.EndBurst()
		return fs.Ledger()
	}

	first := run()
	if len(first) != ranks*(writes+writes/10) {
		t.Fatalf("ledger len = %d, want %d", len(first), ranks*(writes+writes/10))
	}
	// Rank-major, program order within a rank.
	pos := 0
	for r := 0; r < ranks; r++ {
		step := -1
		for ; pos < len(first) && first[pos].Rank == r; pos++ {
			if first[pos].Labels.Step < step {
				t.Fatalf("rank %d program order broken at %d: step %d after %d",
					r, pos, first[pos].Labels.Step, step)
			}
			step = first[pos].Labels.Step
		}
	}
	if pos != len(first) {
		t.Fatalf("ledger not rank-major: stranded records from position %d", pos)
	}
	// A second concurrent run merges identically, record for record.
	second := run()
	if len(second) != len(first) {
		t.Fatalf("run lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs across runs:\n%+v\n%+v", i, first[i], second[i])
		}
	}
}

// TestConcurrentMixedOperations exercises every public mutator and reader
// at once; run with -race this is the shard-safety proof.
func TestConcurrentMixedOperations(t *testing.T) {
	fs := modelFS()
	const ranks = 16
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				fs.AdvanceClock(rank, 0.001)
				if _, err := fs.WriteSize(rank, "f", 10, Labels{Step: i}); err != nil {
					t.Error(err)
				}
				if err := fs.Mkdir(rank, "d", Labels{Step: i}); err != nil {
					t.Error(err)
				}
			}
		}(r)
	}
	// Concurrent readers over the merge paths.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = fs.TotalBytes()
				_ = fs.Clock(j % ranks)
				_ = BurstStats(fs.Ledger())
			}
		}()
	}
	wg.Wait()
	if got := fs.TotalBytes(); got != ranks*30*10 {
		t.Errorf("TotalBytes = %d, want %d", got, ranks*30*10)
	}
	stats := BurstStats(fs.Ledger())
	if len(stats) != 30 {
		t.Fatalf("bursts = %d, want 30", len(stats))
	}
	for _, s := range stats {
		if s.Files != ranks || s.Dirs != ranks {
			t.Errorf("step %d: files %d dirs %d, want %d each", s.Step, s.Files, s.Dirs, ranks)
		}
	}
}

// seedJitter is the original implementation (hash/fnv + fmt.Fprintf); the
// inline FNV-1a rewrite must reproduce it bit for bit, since jittered
// durations are part of the deterministic model output.
func seedJitter(cfg Config, rank int, path string) float64 {
	if cfg.JitterSigma == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", cfg.Seed, rank, path)
	u := h.Sum64()
	u1 := (float64(u>>11) + 0.5) / float64(1<<53)
	h.Write([]byte{0xA5})
	u2 := (float64(h.Sum64()>>11) + 0.5) / float64(1<<53)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(cfg.JitterSigma * z)
}

func TestJitterMatchesSeedImplementation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0.3
	for _, seed := range []int64{1, 42, -7} {
		cfg.Seed = seed
		fs := New(cfg, "")
		for _, rank := range []int{0, 1, 31, 1023} {
			for _, path := range []string{"plt00000/Header", "plt00040/Level_2/Cell_D_00031", "x"} {
				got := fs.jitter(rank, path)
				want := seedJitter(cfg, rank, path)
				if got != want {
					t.Errorf("seed %d rank %d path %q: jitter %g != seed %g", seed, rank, path, got, want)
				}
			}
		}
	}
}

// TestWriteHotPathAllocations pins the per-write cost: one ledger record
// append amortized, no per-write map/hash/fmt garbage.
func TestWriteHotPathAllocations(t *testing.T) {
	cfg := DefaultConfig() // jitter on: the inline FNV must not allocate
	fs := New(cfg, "")
	fs.BeginBurst(4)
	// Warm the shard and the record slice so append growth is excluded.
	for i := 0; i < 4096; i++ {
		fs.WriteSize(0, "warm", 8, Labels{})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := fs.WriteSize(0, "plt00000/Level_0/Cell_D_00000", 1<<20, Labels{Step: 1}); err != nil {
			t.Fatal(err)
		}
	})
	// Slice doubling still happens occasionally across 1000 appends.
	if allocs > 0.5 {
		t.Errorf("WriteSize allocates %.2f objects per op, want amortized ~0", allocs)
	}
}

func TestNegativeRankRejected(t *testing.T) {
	fs := modelFS()
	if _, err := fs.WriteSize(-1, "x", 10, Labels{}); err == nil {
		t.Error("negative rank accepted by WriteSize")
	}
	if err := fs.Mkdir(-2, "d", Labels{}); err == nil {
		t.Error("negative rank accepted by Mkdir")
	}
	if got := fs.Clock(-3); got != 0 {
		t.Errorf("Clock(-3) = %g, want 0", got)
	}
	fs.AdvanceClock(-1, 1.5) // must be a no-op, not a panic
	if len(fs.Ledger()) != 0 {
		t.Error("rejected operations left ledger entries")
	}
}

// TestBurstSnapshotSemantics verifies the BeginBurst bandwidth snapshot:
// contention applies to writes issued between BeginBurst and EndBurst,
// and sparse rank ids well beyond the declared burst size still work.
func TestBurstSnapshotSemantics(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e9,
		PerWriterBandwidth: 1e9,
	}
	fs := New(cfg, "")
	fs.BeginBurst(100) // share = 1e7
	d, err := fs.WriteSize(512, "sparse-rank", 1e6, Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1e6 / 1e7; math.Abs(d-want) > 1e-12 {
		t.Errorf("contended duration = %g, want %g", d, want)
	}
	fs.EndBurst()
	d, _ = fs.WriteSize(512, "sparse-rank-2", 1e6, Labels{})
	if want := 1e6 / 1e9; math.Abs(d-want) > 1e-12 {
		t.Errorf("uncontended duration = %g, want %g", d, want)
	}
}
