package iosim

import "math"

// Distribution-mapping-aware per-link contention model.
//
// The aggregate model (Config.AggregateBandwidth shared by all writers)
// reproduces the paper's published Summit/Alpine numbers, but real
// pre-exascale I/O cost is set by where writers land relative to the
// storage hardware: every compute node has a finite NIC injection
// bandwidth, and a GPFS file system fans writes into a fixed set of NSD
// servers, each with its own service rate. Two writers packed onto one
// node contend for that node's NIC even when the backend is idle; a
// thousand writers striped across 77 NSD servers contend per server, not
// per file system. A Topology describes that placement so BeginBurst can
// snapshot a per-(rank, target) link bandwidth instead of one global rate.
//
// The zero Topology disables the model entirely: every duration, ledger
// record, burst statistic and characterization is byte-identical to the
// aggregate model (property-tested), so existing configurations are
// unaffected unless they opt in.

// Topology describes rank placement and storage fan-in for the per-link
// contention model. The zero value disables it (Enabled returns false).
type Topology struct {
	// Nodes is the number of compute nodes; 0 disables the topology model.
	Nodes int
	// RanksPerNode fixes the packed block placement: rank r lives on node
	// (r / RanksPerNode) % Nodes. When 0, the packing is derived at each
	// BeginBurst as ceil(writers/Nodes) — the jsrun-style dense layout.
	RanksPerNode int
	// NICBandwidth caps one node's injection bandwidth in bytes/second
	// (shared by all ranks placed on that node). 0 means uncapped.
	NICBandwidth float64
	// Targets is the number of storage targets (GPFS NSD servers). Rank r
	// writes through target r % Targets, the round-robin placement GPFS
	// striping produces for an N-to-N burst. 0 means no target modeling.
	Targets int
	// TargetBandwidth caps one target's service rate in bytes/second,
	// shared by every writer fanned into it. 0 means uncapped.
	TargetBandwidth float64
	// TargetMap overrides the round-robin rank→target placement: rank r
	// writes through target TargetMap[r]. Ranks at or beyond
	// len(TargetMap), and entries outside [0, Targets), fall back to
	// r % Targets. nil keeps the round-robin layout, byte-identical to
	// the historical model. amr.RemapToTargets produces these maps; use
	// FileSystem.Retarget to install one between bursts.
	TargetMap []int
}

// Summit-like published constants used by SummitTopology.
const (
	// SummitNICBandwidth is a Summit node's dual-rail EDR InfiniBand
	// injection bandwidth (~2 x 12.5 GB/s).
	SummitNICBandwidth = 25e9
	// AlpineNSDServers is the number of NSD servers behind Summit's
	// Alpine GPFS file system.
	AlpineNSDServers = 77
)

// SummitTopology returns a Summit/Alpine-flavored topology for the given
// node count: 25 GB/s NIC per node and the aggregate Alpine bandwidth
// split across its 77 NSD servers. RanksPerNode is left 0 (derived per
// burst); use TopologyForCase to pin it from a rank count.
func SummitTopology(nodes int) Topology {
	return Topology{
		Nodes:           nodes,
		NICBandwidth:    SummitNICBandwidth,
		Targets:         AlpineNSDServers,
		TargetBandwidth: DefaultConfig().AggregateBandwidth / AlpineNSDServers,
	}
}

// TopologyForCase derives the Summit topology for a campaign case shape:
// nprocs ranks packed onto nodes compute nodes, ceil(nprocs/nodes) per
// node. nodes <= 0 returns the zero (disabled) topology.
func TopologyForCase(nodes, nprocs int) Topology {
	if nodes <= 0 {
		return Topology{}
	}
	t := SummitTopology(nodes)
	if nprocs > 0 {
		t.RanksPerNode = (nprocs + nodes - 1) / nodes
	}
	return t
}

// Enabled reports whether the per-link model is active.
func (t Topology) Enabled() bool { return t.Nodes > 0 }

// ranksPerNode resolves the packing for a burst of n writers: the explicit
// RanksPerNode when set, else ceil(n/Nodes), else 1.
func (t Topology) ranksPerNode(n int) int {
	if t.RanksPerNode > 0 {
		return t.RanksPerNode
	}
	if n > 0 && t.Nodes > 0 {
		return (n + t.Nodes - 1) / t.Nodes
	}
	return 1
}

// NodeOf returns the compute node hosting rank under packed block
// placement for a job of nprocs ranks: node (rank/rpn) % Nodes. Ranks
// beyond Nodes*rpn wrap, so sparse rank ids stay well-defined. Disabled
// topologies return -1.
func (t Topology) NodeOf(rank, nprocs int) int {
	if !t.Enabled() || rank < 0 {
		return -1
	}
	return t.nodeOf(rank, t.ranksPerNode(nprocs))
}

func (t Topology) nodeOf(rank, rpn int) int {
	return (rank / rpn) % t.Nodes
}

// TargetOf returns the storage target rank's data files fan into — the
// TargetMap entry when one is installed, round-robin otherwise — or -1
// when targets are not modeled.
func (t Topology) TargetOf(rank int) int {
	if !t.Enabled() || t.Targets <= 0 || rank < 0 {
		return -1
	}
	return t.targetOf(rank)
}

// targetOf assumes Targets > 0 and rank >= 0.
func (t Topology) targetOf(rank int) int {
	if rank < len(t.TargetMap) {
		if m := t.TargetMap[rank]; m >= 0 && m < t.Targets {
			return m
		}
	}
	return rank % t.Targets
}

// linkSnapshot is the per-burst bandwidth table BeginBurst publishes when
// the topology is enabled: perRank[r] is rank r's effective per-link
// bandwidth under the declared contention (NIC sharing on its node, fan-in
// sharing on its target, and the aggregate/per-writer baseline). Ranks at
// or beyond len(perRank) — writers outside the declared burst — fall back
// to the scalar snapshot, matching the aggregate model's semantics.
type linkSnapshot struct {
	perRank []float64
}

// snapshot computes the per-rank link bandwidths for an n-writer burst.
func (t Topology) snapshot(cfg Config, n int) *linkSnapshot {
	rpn := t.ranksPerNode(n)
	nodeWriters := make([]int, t.Nodes)
	var targetWriters []int
	if t.Targets > 0 {
		targetWriters = make([]int, t.Targets)
	}
	for r := 0; r < n; r++ {
		nodeWriters[t.nodeOf(r, rpn)]++
		if targetWriters != nil {
			targetWriters[t.targetOf(r)]++
		}
	}
	base := snapshotBandwidth(cfg, n)
	perRank := make([]float64, n)
	for r := range perRank {
		bw := base
		if t.NICBandwidth > 0 {
			if share := t.NICBandwidth / float64(nodeWriters[t.nodeOf(r, rpn)]); share < bw {
				bw = share
			}
		}
		if targetWriters != nil && t.TargetBandwidth > 0 {
			if share := t.TargetBandwidth / float64(targetWriters[t.targetOf(r)]); share < bw {
				bw = share
			}
		}
		if bw <= 0 {
			bw = 1
		}
		perRank[r] = bw
	}
	return &linkSnapshot{perRank: perRank}
}

// PairBytes attributes a traffic volume to a (source rank, destination
// rank) pair. The AMR layer produces these from its cached communication
// plans (amr.FillBoundaryTraffic), so mesh-exchange traffic and the
// checkpoint/plot bursts recorded in the ledger share one contention
// vocabulary.
type PairBytes struct {
	Src   int
	Dst   int
	Bytes int64
}

// ExchangeTime estimates the wall time of a bulk-synchronous exchange of
// the given rank-pair volumes on this topology for a job of nprocs ranks.
// Cross-node pairs load the source node's transmit side and the
// destination node's receive side of the NIC (full duplex: a node's cost
// is max(tx, rx)/NICBandwidth); same-node pairs move at intraNodeBW
// (0 = free, the shared-memory assumption). The burst completes when the
// busiest node finishes, so the result is the max over nodes. A disabled
// topology, or one without a NIC cap, prices cross-node traffic at zero.
func (t Topology) ExchangeTime(pairs []PairBytes, nprocs int, intraNodeBW float64) float64 {
	if !t.Enabled() {
		return 0
	}
	rpn := t.ranksPerNode(nprocs)
	tx := make([]float64, t.Nodes)
	rx := make([]float64, t.Nodes)
	intra := make([]float64, t.Nodes)
	for _, p := range pairs {
		if p.Src < 0 || p.Dst < 0 || p.Bytes <= 0 {
			continue
		}
		sn, dn := t.nodeOf(p.Src, rpn), t.nodeOf(p.Dst, rpn)
		if sn == dn {
			intra[sn] += float64(p.Bytes)
			continue
		}
		tx[sn] += float64(p.Bytes)
		rx[dn] += float64(p.Bytes)
	}
	var wall float64
	for n := 0; n < t.Nodes; n++ {
		var tn float64
		if t.NICBandwidth > 0 {
			tn = math.Max(tx[n], rx[n]) / t.NICBandwidth
		}
		if intraNodeBW > 0 {
			tn += intra[n] / intraNodeBW
		}
		if tn > wall {
			wall = tn
		}
	}
	return wall
}
