package iosim

import (
	"encoding/json"
	"testing"
)

// FuzzParseAggregation hammers the CLI aggregation-spec parser: no
// input may panic, every accepted spec must validate, survive a JSON
// round trip through its strict UnmarshalJSON unchanged, and keep a
// stable Token (sweep directory names depend on it).
func FuzzParseAggregation(f *testing.F) {
	f.Add("all")
	f.Add("1/node")
	f.Add("2/node+sif+async")
	f.Add("4/node+mif")
	f.Add("0/node")
	f.Add("all+bogus")
	f.Add("+")
	f.Add("-3/node")

	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseAggregation(s)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseAggregation(%q) accepted an invalid spec: %v", s, err)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		var back AggregationSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("marshal of accepted spec does not reparse: %v\nspec: %s", err, data)
		}
		if back != spec {
			t.Fatalf("JSON round trip changed the spec: %+v -> %+v", spec, back)
		}
		if spec.Token() == "" {
			t.Fatalf("accepted spec %q has empty Token", s)
		}
	})
}
