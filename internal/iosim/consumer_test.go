package iosim

import (
	"reflect"
	"sync"
	"testing"
)

// recordingConsumer captures the stream for order/retention assertions.
type recordingConsumer struct {
	records []WriteRecord
	flushes int
}

func (c *recordingConsumer) Consume(r WriteRecord) { c.records = append(c.records, r) }
func (c *recordingConsumer) Flush()                { c.flushes++ }

// byStep splits a record sequence into per-step subsequences, order
// preserved. The streaming contract promises per-step subsequence
// equality with Ledger() order, not whole-stream equality: the stream
// is burst-major, the batch ledger rank-major over the whole run.
func byStep(records []WriteRecord) map[int][]WriteRecord {
	out := map[int][]WriteRecord{}
	for _, r := range records {
		out[r.Labels.Step] = append(out[r.Labels.Step], r)
	}
	return out
}

// burstWrite drives one burst of n ranks, each writing one record, the
// way plotfile does: BeginBurst, all writes, EndBurst.
func burstWrite(t *testing.T, fs *FileSystem, step, n int) {
	t.Helper()
	fs.BeginBurst(n)
	for rank := 0; rank < n; rank++ {
		if _, err := fs.WriteSize(rank, "s/f.dat", 1000, Labels{Step: step}); err != nil {
			t.Fatal(err)
		}
	}
	fs.EndBurst()
}

func TestConsumerStreamMatchesLedgerPerStep(t *testing.T) {
	// Two filesystems, same writes: one batch (Ledger), one streaming.
	// Bursts align with steps, so every per-step subsequence of the
	// stream must match the batch ledger's (rank-ascending, program
	// order within a rank) — the determinism contract the fold
	// equivalence rests on.
	batch := modelFS()
	stream := modelFS()
	rec := &recordingConsumer{}
	stream.Attach(rec)
	for step := 0; step < 3; step++ {
		burstWrite(t, batch, step, 4)
		burstWrite(t, stream, step, 4)
	}
	stream.FlushConsumers()
	if rec.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", rec.flushes)
	}
	if len(rec.records) != 12 {
		t.Fatalf("stream delivered %d records, want 12", len(rec.records))
	}
	if !reflect.DeepEqual(byStep(rec.records), byStep(batch.Ledger())) {
		t.Errorf("per-step stream order != per-step batch order\nstream: %+v\nbatch:  %+v",
			rec.records, batch.Ledger())
	}
}

func TestRetainAutoDropsWhenConsuming(t *testing.T) {
	fs := modelFS() // RetainAuto (zero value)
	rec := &recordingConsumer{}
	fs.Attach(rec)
	burstWrite(t, fs, 0, 4)
	if got := len(fs.Ledger()); got != 0 {
		t.Errorf("ledger holds %d records after drain under RetainAuto+consumer, want 0", got)
	}
	if len(rec.records) != 4 {
		t.Errorf("consumer saw %d records, want 4", len(rec.records))
	}
	if fs.TotalBytes() != 4000 {
		t.Errorf("TotalBytes = %d after drop, want 4000", fs.TotalBytes())
	}
}

func TestRetainAutoKeepsWithoutConsumers(t *testing.T) {
	fs := modelFS()
	burstWrite(t, fs, 0, 4)
	if got := len(fs.Ledger()); got != 4 {
		t.Errorf("ledger holds %d records without consumers, want 4", got)
	}
}

func TestRetainAllKeepsWhileStreaming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	cfg.RetainLedger = RetainAll
	fs := New(cfg, "")
	rec := &recordingConsumer{}
	fs.Attach(rec)
	for step := 0; step < 2; step++ {
		burstWrite(t, fs, step, 3)
	}
	fs.FlushConsumers()
	led := fs.Ledger()
	if len(led) != 6 {
		t.Fatalf("ledger holds %d records under RetainAll, want 6", len(led))
	}
	if !reflect.DeepEqual(byStep(rec.records), byStep(led)) {
		t.Error("RetainAll: stream and retained ledger disagree per step")
	}
	// No double-feeding: a second flush delivers nothing new.
	fs.FlushConsumers()
	if len(rec.records) != 6 {
		t.Errorf("re-flush re-fed records: %d, want 6", len(rec.records))
	}
}

func TestRetainNoneDropsWithoutConsumers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	cfg.RetainLedger = RetainNone
	fs := New(cfg, "")
	burstWrite(t, fs, 0, 4)
	if got := len(fs.Ledger()); got != 0 {
		t.Errorf("ledger holds %d records under RetainNone, want 0", got)
	}
	if fs.TotalBytes() != 4000 {
		t.Errorf("TotalBytes = %d after drop, want 4000", fs.TotalBytes())
	}
	// Clocks survive the drop: the next burst prices against the same
	// simulated time it would have without streaming.
	if fs.Clock(0) <= 0 {
		t.Error("rank clock lost with dropped records")
	}
}

func TestLedgerReturnsUnfedTailOnly(t *testing.T) {
	fs := modelFS()
	fs.Attach(&recordingConsumer{})
	burstWrite(t, fs, 0, 2)
	// Writes outside any burst are not yet drained.
	if _, err := fs.WriteSize(0, "tail.dat", 500, Labels{Step: 1}); err != nil {
		t.Fatal(err)
	}
	led := fs.Ledger()
	if len(led) != 1 || led[0].Path != "tail.dat" {
		t.Fatalf("undrained tail = %+v, want the single tail.dat record", led)
	}
	fs.FlushConsumers()
	if got := len(fs.Ledger()); got != 0 {
		t.Errorf("ledger holds %d records after FlushConsumers, want 0", got)
	}
}

func TestConcurrentEndBurstDrainsOnce(t *testing.T) {
	// MACSio ends the burst from every rank goroutine between barriers.
	// The drain must deliver each record exactly once regardless of how
	// many concurrent EndBurst calls race.
	fs := modelFS()
	rec := &recordingConsumer{}
	fs.Attach(rec)
	const ranks = 8
	for step := 0; step < 5; step++ {
		fs.BeginBurst(ranks)
		var wg sync.WaitGroup
		for rank := 0; rank < ranks; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if _, err := fs.WriteSize(rank, "m/f.dat", 100, Labels{Step: step}); err != nil {
					t.Error(err)
				}
			}(rank)
		}
		wg.Wait() // barrier: no writes in flight during the racing EndBursts
		var eg sync.WaitGroup
		for i := 0; i < ranks; i++ {
			eg.Add(1)
			go func() { defer eg.Done(); fs.EndBurst() }()
		}
		eg.Wait()
	}
	fs.FlushConsumers()
	if len(rec.records) != 5*ranks {
		t.Fatalf("consumer saw %d records, want %d", len(rec.records), 5*ranks)
	}
	seen := map[int]int{}
	for _, r := range rec.records {
		seen[r.Labels.Step]++
	}
	for step := 0; step < 5; step++ {
		if seen[step] != ranks {
			t.Errorf("step %d delivered %d times, want %d", step, seen[step], ranks)
		}
	}
}

func TestBurstStatsIsBurstFoldFedFromSlice(t *testing.T) {
	fs := modelFS()
	for step := 0; step < 3; step++ {
		burstWrite(t, fs, step, 4)
	}
	led := fs.Ledger()
	f := NewBurstFold()
	for _, r := range led {
		f.Consume(r)
	}
	if !reflect.DeepEqual(f.Stats(), BurstStats(led)) {
		t.Error("BurstFold.Stats != BurstStats over the same ledger")
	}
}

func TestCharacterizeFoldMatchesBatch(t *testing.T) {
	// Streamed fold over live bursts == batch Characterize over the
	// retained ledger of an identical run.
	batch := modelFS()
	stream := modelFS()
	fold := NewCharacterizeFold()
	stream.Attach(fold)
	for step := 0; step < 4; step++ {
		burstWrite(t, batch, step, 6)
		burstWrite(t, stream, step, 6)
	}
	stream.FlushConsumers()
	got := fold.Profile()
	want := Characterize(batch.Ledger())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fold profile != batch profile\nfold:  %+v\nbatch: %+v", got, want)
	}
	if !reflect.DeepEqual(fold.Bursts(), BurstStats(batch.Ledger())) {
		t.Error("fold bursts != batch bursts")
	}
}

func TestResetClearsConsumerWatermarks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	cfg.RetainLedger = RetainAll
	fs := New(cfg, "")
	rec := &recordingConsumer{}
	fs.Attach(rec)
	burstWrite(t, fs, 0, 2)
	fs.Reset()
	burstWrite(t, fs, 0, 2)
	fs.FlushConsumers()
	// 2 before the reset + 2 after: Reset must rewind the fed watermark
	// along with the records, or the post-reset drain re-reads stale state.
	if len(rec.records) != 4 {
		t.Errorf("consumer saw %d records across a Reset, want 4", len(rec.records))
	}
	if got := len(fs.Ledger()); got != 2 {
		t.Errorf("ledger holds %d records after Reset+burst, want 2", got)
	}
}
