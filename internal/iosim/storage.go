package iosim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Pluggable storage-tier models. The paper characterizes AMReX/MACSio
// bursts against two very different backends — Summit's node-local NVMe
// burst buffers and the Alpine GPFS — so the pricing math cannot live
// welded inside FileSystem. A StorageModel prices data transfers; the
// FileSystem keeps the sharded ledger, clocks, open latency, and jitter,
// and delegates BeginBurst/EndBurst/Price to the installed model.
//
// Four stacks are selectable by Config.Storage name:
//
//   - "" / "gpfs": the historical single-tier pricing — the aggregate
//     bandwidth pool, refined per (rank, target) link when a Topology is
//     configured. Byte-identical to the pre-StorageModel FileSystem
//     (property-test-pinned).
//   - "bb": node-local burst buffer. Each compute node owns an NVMe
//     partition (capacity + write bandwidth, split evenly across the
//     ranks packed on the node) that drains asynchronously to a GPFS
//     tier at a configured per-node rate. A write that fills the
//     partition mid-burst stalls: the remainder moves at the drain rate.
//   - "bb+gpfs": the tiered composition. Same buffer, but the drain is
//     priced against the GPFS tier's contention snapshot, so a congested
//     file system slows the drain and produces more stalls.
//
// Determinism contract: a model may snapshot cross-rank contention state
// only at BeginBurst; per-write state must be a function of (rank, the
// rank's clock, the write size) so ledgers are reproducible no matter
// how rank goroutines interleave. The burst-buffer models honor this by
// statically partitioning each node's capacity, fill bandwidth, and
// drain bandwidth across its ranks — rank r's occupancy never depends on
// when rank s wrote.

// Storage model names accepted by Config.Storage (and, downstream, by
// campaign.Case.Storage and the -storage CLI flags).
const (
	// StorageDefault selects the same stack as StorageGPFS.
	StorageDefault = ""
	// StorageGPFS is the historical aggregate/per-link single-tier model.
	StorageGPFS = "gpfs"
	// StorageBB is the node-local burst-buffer tier with a fixed-rate
	// asynchronous drain.
	StorageBB = "bb"
	// StorageTiered stacks the burst buffer over the GPFS model: the
	// drain is throttled by the GPFS tier's contention snapshot.
	StorageTiered = "bb+gpfs"
)

// StorageKinds returns the non-empty storage model names, in sweep order.
func StorageKinds() []string {
	return []string{StorageGPFS, StorageBB, StorageTiered}
}

// ParseStorage validates a storage model name, rejecting unknown names
// the way unknown engines and distribution strategies are rejected. The
// empty string is the default ("gpfs") stack.
func ParseStorage(name string) (string, error) {
	switch name {
	case StorageDefault, StorageGPFS, StorageBB, StorageTiered:
		return name, nil
	}
	return "", fmt.Errorf("iosim: unknown storage model %q (valid: %q, %q, %q)",
		name, StorageGPFS, StorageBB, StorageTiered)
}

// Summit's published node-local burst-buffer constants.
const (
	// SummitBBNodeCapacity is the NVMe capacity of one Summit node
	// (1.6 TB Samsung PM1725a).
	SummitBBNodeCapacity = 1.6e12
	// SummitBBNodeBandwidth is one node's NVMe write bandwidth
	// (~2.1 GB/s sequential).
	SummitBBNodeBandwidth = 2.1e9
)

// BurstBuffer parameterizes the "bb" and "bb+gpfs" storage models. All
// quantities are per compute node; the model splits them evenly across
// the ranks packed on a node, so per-rank behavior is deterministic
// under any goroutine interleaving.
type BurstBuffer struct {
	// NodeCapacity is the NVMe bytes one node can buffer
	// (0 selects SummitBBNodeCapacity).
	NodeCapacity float64
	// NodeBandwidth is one node's NVMe write bandwidth in bytes/second
	// (0 selects SummitBBNodeBandwidth).
	NodeBandwidth float64
	// DrainBandwidth is one node's asynchronous drain rate to the GPFS
	// tier in bytes/second — the node's single drain stream. 0 selects
	// the default per-writer GPFS stream (DefaultConfig's 2 GB/s). The
	// tiered model additionally caps the drain by the GPFS tier's
	// current per-writer contention snapshot.
	DrainBandwidth float64
	// Nodes is the number of compute nodes ranks pack onto. 0 falls back
	// to the configured Topology's node count, then to 1 (every rank
	// shares a single node's partition — the degenerate laptop case).
	Nodes int
	// RanksPerNode fixes the packing; 0 derives ceil(writers/Nodes) at
	// each BeginBurst, mirroring Topology.RanksPerNode.
	RanksPerNode int
	// OpenLatency is the per-file open/metadata cost in seconds for
	// writes the buffer absorbs (TierBB) — an NVMe open is much cheaper
	// than a GPFS create storm. 0 inherits Config.OpenLatency (the GPFS
	// tier's cost), keeping historical ledgers byte-identical; writes
	// that stall through to the backing tier always pay the GPFS open.
	OpenLatency float64
}

// DefaultBurstBuffer returns the Summit-flavored burst buffer for a node
// count: 1.6 TB NVMe per node at 2.1 GB/s, draining on one default GPFS
// writer stream per node.
func DefaultBurstBuffer(nodes int) BurstBuffer {
	return BurstBuffer{
		NodeCapacity:   SummitBBNodeCapacity,
		NodeBandwidth:  SummitBBNodeBandwidth,
		DrainBandwidth: DefaultConfig().PerWriterBandwidth,
		Nodes:          nodes,
	}
}

// Tier labels the storage tier that absorbed a write.
type Tier string

// Tiers recorded on WriteRecord by the multi-tier models. Single-tier
// models leave records untiered ("") so historical ledgers are
// byte-identical.
const (
	// TierBB marks a write fully absorbed by the node-local buffer.
	TierBB Tier = "bb"
	// TierGPFS marks a write that filled the buffer and stalled through
	// to the GPFS tier at the drain rate.
	TierGPFS Tier = "gpfs"
)

// WriteCost is what a StorageModel charges for one data transfer. The
// FileSystem turns it into a ledger record: Duration =
// (OpenLatency + Seconds) * jitter, with StallSeconds scaled by the same
// jitter so the stall stays a sub-interval of the duration.
type WriteCost struct {
	// Seconds is the transfer time, excluding open latency and jitter.
	Seconds float64
	// Tier is the absorbing tier ("" for single-tier models).
	Tier Tier
	// StallSeconds is the portion of Seconds spent throttled to the
	// drain rate because the writer's buffer partition was full.
	StallSeconds float64
	// DrainSeconds is the projected time for the writer's buffer
	// occupancy to drain to the backing tier after this write.
	DrainSeconds float64
	// BBFill is the writer's partition occupancy fraction (0..1) right
	// after the write.
	BBFill float64
	// OpenSeconds is the tier's per-file open/metadata cost. 0 — the
	// zero value every pre-existing model returns — makes the
	// FileSystem fall back to Config.OpenLatency, so only models that
	// price opens per tier (BurstBuffer.OpenLatency) need to set it.
	// The aggregation layout scales it on the ledger record.
	OpenSeconds float64

	// Fault annotations set by an installed FaultInjector (fault.go);
	// all zero on the fault-free path so historical ledgers are
	// byte-identical.
	// Fault is the fault kind that touched the write ("" = none).
	Fault string
	// Retries counts failed attempts before the write went through.
	Retries int
	// FaultSeconds is the sub-interval of Seconds attributable to the
	// fault (retry backoff/timeouts, backlog replay, slowdown); it is
	// scaled by the same jitter as Seconds on the ledger record.
	FaultSeconds float64
	// Mitigated names the resilience policy that absorbed the fault
	// ("quarantine"); empty on the unmitigated path so PR-6 ledgers stay
	// byte-identical.
	Mitigated string
}

// StorageModel prices data transfers for a FileSystem. Implementations
// must be safe for the SPMD calling pattern: BeginBurst may be invoked
// once per rank per burst with the same writer count (idempotent
// snapshot), Price is called concurrently from many rank goroutines
// (with rank's shard lock held, so per-rank state needs no further
// ordering), and EndBurst/Retarget/Reset only run between bursts.
type StorageModel interface {
	// Name returns the selection name the model was built from.
	Name() string
	// BeginBurst snapshots contention state for an n-writer burst.
	BeginBurst(n int)
	// EndBurst restores the uncontended between-bursts state.
	EndBurst()
	// Price charges rank for moving nbytes; start is rank's simulated
	// clock when the transfer begins.
	Price(rank int, start float64, nbytes int64) WriteCost
	// Bandwidth reports rank's per-writer bandwidth under the current
	// snapshot — the drain-coupling hook for tiered models.
	Bandwidth(rank int) float64
	// Retarget invalidates placement-dependent snapshots after a
	// FileSystem.Retarget between bursts.
	Retarget()
	// Reset restores the post-New zero state.
	Reset()
}

// newStorageModel builds the configured stack. Unknown names panic: the
// campaign and CLI layers reject them with errors first (ParseStorage /
// campaign.Case.Validate), so reaching here is a programming error.
func newStorageModel(cfg Config, fs *FileSystem) StorageModel {
	gpfs := func() StorageModel {
		var m StorageModel
		if cfg.Topology.Enabled() {
			m = newTopologyModel(cfg, fs)
		} else {
			m = newAggregateModel(cfg)
		}
		if cfg.Aggregation.Enabled() {
			// Two-phase aggregation re-takes the GPFS contention
			// snapshot over the aggregator set (aggregation.go). The
			// burst-buffer stacks wrap this as their backing tier, so
			// tiered drains see aggregator-set contention too.
			m = newAggModel(cfg, fs, m)
		}
		return m
	}
	switch cfg.Storage {
	case StorageDefault, StorageGPFS:
		return gpfs()
	case StorageBB:
		return newBBModel(StorageBB, cfg, gpfs())
	case StorageTiered:
		return newBBModel(StorageTiered, cfg, gpfs())
	}
	panic(fmt.Sprintf("iosim: unknown storage model %q (validate configs with ParseStorage)", cfg.Storage))
}

// aggregateModel is the historical shared-bandwidth-pool pricing,
// extracted verbatim from the pre-StorageModel FileSystem: BeginBurst
// snapshots one per-writer share of Config.AggregateBandwidth, read
// atomically by every write.
type aggregateModel struct {
	cfg Config
	// bw holds math.Float64bits of the per-writer bandwidth under the
	// current contention state.
	bw atomic.Uint64
}

func newAggregateModel(cfg Config) *aggregateModel {
	m := &aggregateModel{cfg: cfg}
	m.bw.Store(math.Float64bits(snapshotBandwidth(cfg, 0)))
	return m
}

func (m *aggregateModel) Name() string { return StorageGPFS }

func (m *aggregateModel) BeginBurst(n int) {
	m.bw.Store(math.Float64bits(snapshotBandwidth(m.cfg, n)))
}

func (m *aggregateModel) EndBurst() {
	m.bw.Store(math.Float64bits(snapshotBandwidth(m.cfg, 0)))
}

func (m *aggregateModel) Bandwidth(rank int) float64 {
	return math.Float64frombits(m.bw.Load())
}

func (m *aggregateModel) Price(rank int, start float64, nbytes int64) WriteCost {
	return WriteCost{Seconds: float64(nbytes) / m.Bandwidth(rank)}
}

func (m *aggregateModel) Retarget() {}

func (m *aggregateModel) Reset() { m.EndBurst() }

// topologyModel refines the aggregate pool into the per-(rank, target)
// link pricing: BeginBurst publishes one bandwidth per rank (NIC share
// on its node, fan-in share on its target), ranks outside the declared
// burst fall back to the scalar snapshot. Extracted verbatim from the
// PR-3 FileSystem, including the snapshot-reuse semantics (a pure
// function of (topology, n), invalidated by Retarget) and the
// ranks-per-node label coupling.
type topologyModel struct {
	aggregateModel
	fs *FileSystem
	// link is the per-rank bandwidth table for the current burst; nil
	// between bursts, in which case the scalar snapshot applies.
	link atomic.Pointer[linkSnapshot]
}

func newTopologyModel(cfg Config, fs *FileSystem) *topologyModel {
	m := &topologyModel{fs: fs}
	m.cfg = cfg
	m.bw.Store(math.Float64bits(snapshotBandwidth(cfg, 0)))
	return m
}

func (m *topologyModel) BeginBurst(n int) {
	m.aggregateModel.BeginBurst(n)
	if t := m.fs.topology(); t.Enabled() && n > 0 {
		// The snapshot is a pure function of (topology, n) — Retarget
		// invalidates it — so repeated BeginBurst(n) calls — MACSio's
		// SPMD loop issues one per rank per dump — reuse the published
		// table instead of recomputing the O(n) shares n times per burst.
		if snap := m.link.Load(); snap == nil || len(snap.perRank) != n {
			m.fs.rpn.Store(int64(t.ranksPerNode(n)))
			m.link.Store(t.snapshot(m.cfg, n))
		}
	}
}

func (m *topologyModel) EndBurst() {
	m.aggregateModel.EndBurst()
	m.link.Store(nil)
}

func (m *topologyModel) Bandwidth(rank int) float64 {
	if snap := m.link.Load(); snap != nil && rank < len(snap.perRank) {
		return snap.perRank[rank]
	}
	return m.aggregateModel.Bandwidth(rank)
}

func (m *topologyModel) Price(rank int, start float64, nbytes int64) WriteCost {
	return WriteCost{Seconds: float64(nbytes) / m.Bandwidth(rank)}
}

func (m *topologyModel) Retarget() { m.link.Store(nil) }

func (m *topologyModel) Reset() {
	m.aggregateModel.Reset()
	m.link.Store(nil)
}

// bbRank is one rank's private slice of the burst buffer: its partition
// occupancy and the clock time of its last transfer's end (drain decays
// occupancy over the gap between transfers).
type bbRank struct {
	occ  float64
	last float64
}

// bbModel is the node-local burst-buffer tier, optionally stacked over
// the GPFS tier ("bb+gpfs"). Writes fill the rank's NVMe partition at
// the partition's fill bandwidth while the drain empties it
// concurrently; a write that fills the partition stalls, moving its
// remainder at the drain rate. Occupancy persists across bursts and
// drains through compute gaps (AdvanceClock / inter-burst clock time),
// which is what makes drain-compute overlap visible in the ledger.
type bbModel struct {
	name    string
	spec    BurstBuffer
	backing StorageModel // the GPFS tier: drain coupling (tiered) + labels
	tiered  bool

	mu     sync.Mutex
	ranks  map[int]*bbRank
	burstN int
	// Per-rank shares for the current packing.
	capR, bwR, drainR float64
}

// newBBModel normalizes the spec (zero fields take the Summit defaults,
// the node count falls back to the topology's) and seeds the
// single-writer-per-node shares.
func newBBModel(name string, cfg Config, backing StorageModel) *bbModel {
	spec := cfg.BurstBuffer
	if spec.NodeCapacity <= 0 {
		spec.NodeCapacity = SummitBBNodeCapacity
	}
	if spec.NodeBandwidth <= 0 {
		spec.NodeBandwidth = SummitBBNodeBandwidth
	}
	if spec.DrainBandwidth <= 0 {
		spec.DrainBandwidth = DefaultConfig().PerWriterBandwidth
	}
	if spec.Nodes <= 0 {
		if cfg.Topology.Enabled() {
			spec.Nodes = cfg.Topology.Nodes
		} else {
			spec.Nodes = 1
		}
	}
	m := &bbModel{
		name:    name,
		spec:    spec,
		backing: backing,
		tiered:  name == StorageTiered,
		ranks:   map[int]*bbRank{},
	}
	m.setShares(0)
	return m
}

// setShares resolves the per-rank partition for an n-writer burst.
// Callers hold mu (or have exclusive access during construction).
func (m *bbModel) setShares(n int) {
	rpn := m.spec.RanksPerNode
	if rpn <= 0 {
		rpn = 1
		if n > 0 {
			rpn = (n + m.spec.Nodes - 1) / m.spec.Nodes
		}
	}
	m.burstN = n
	m.capR = m.spec.NodeCapacity / float64(rpn)
	m.bwR = m.spec.NodeBandwidth / float64(rpn)
	m.drainR = m.spec.DrainBandwidth / float64(rpn)
}

func (m *bbModel) Name() string { return m.name }

func (m *bbModel) BeginBurst(n int) {
	m.backing.BeginBurst(n)
	if n <= 0 {
		return
	}
	m.mu.Lock()
	if n != m.burstN {
		m.setShares(n)
	}
	m.mu.Unlock()
}

// EndBurst keeps the burst's shares (occupancy keeps draining at the
// same per-rank rate between bursts) and only resets the backing tier.
func (m *bbModel) EndBurst() { m.backing.EndBurst() }

func (m *bbModel) Bandwidth(rank int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bwR
}

func (m *bbModel) Price(rank int, start float64, nbytes int64) WriteCost {
	m.mu.Lock()
	st := m.ranks[rank]
	if st == nil {
		st = &bbRank{}
		m.ranks[rank] = st
	}
	capR, b, d := m.capR, m.bwR, m.drainR
	m.mu.Unlock()
	// The tiered stack drains through the GPFS tier: its contention
	// snapshot caps the drain stream.
	if m.tiered {
		if bw := m.backing.Bandwidth(rank); bw < d {
			d = bw
		}
	}
	// st is rank-private from here on: Price runs under rank's shard
	// lock, and no other rank touches this state (static partitioning).
	if dt := start - st.last; dt > 0 {
		st.occ -= dt * d
		if st.occ < 0 {
			st.occ = 0
		}
	}
	sec, stall, end := bbFill(st.occ, capR, b, d, nbytes)
	st.occ = end
	st.last = start + sec
	cost := WriteCost{Seconds: sec, Tier: TierBB, StallSeconds: stall}
	if stall > 0 {
		cost.Tier = TierGPFS
	} else if m.spec.OpenLatency > 0 {
		// Fully buffer-absorbed writes open against the NVMe tier;
		// stalled writes went through to GPFS and pay its open (the
		// zero value, resolved by the FileSystem).
		cost.OpenSeconds = m.spec.OpenLatency
	}
	if d > 0 {
		cost.DrainSeconds = end / d
	}
	if capR > 0 {
		cost.BBFill = end / capR
	}
	return cost
}

// bbFill advances one rank's buffer partition through a write: occ bytes
// buffered at the start, cap partition capacity, b fill bandwidth, d
// concurrent drain bandwidth. Returns the transfer time, the stall time
// (the excess over full-speed caused by a filled partition), and the end
// occupancy. occ may exceed cap when a re-packed burst shrank the
// rank's share after bytes were buffered; the surplus is preserved —
// write-through consumes the whole drain, so the backlog only shrinks
// between transfers — never silently dropped.
func bbFill(occ, cap, b, d float64, nbytes int64) (sec, stall, end float64) {
	bytes := float64(nbytes)
	if bytes <= 0 {
		return 0, 0, occ
	}
	if b <= 0 {
		b = 1 // degenerate-config guard, mirroring snapshotBandwidth
	}
	if d <= 0 {
		d = 1
	}
	if b <= d {
		// The drain keeps up: the partition never grows while writing.
		sec = bytes / b
		end = occ + bytes - d*sec
		if end < 0 {
			end = 0
		}
		return sec, 0, end
	}
	free := cap - occ
	if free < 0 {
		free = 0
	}
	net := b - d // partition growth rate while writing at full speed
	if grow := bytes * net / b; grow <= free {
		return bytes / b, 0, occ + grow
	}
	// Phase 1 fills the remaining headroom at full speed; phase 2 moves
	// the remainder write-through at the drain rate, leaving the
	// partition at capacity (or at the inherited surplus above it).
	tFill := free / net
	rest := bytes - b*tFill
	sec = tFill + rest/d
	end = cap
	if occ > cap {
		end = occ
	}
	return sec, sec - bytes/b, end
}

// DropBuffer implements BufferFaults: a buffer-loss fault discards rank's
// partition contents as of start on rank's clock. The lost backlog must be
// rewritten through the backing tier, so the replay cost is the drained
// occupancy over the rank's drain stream. Runs under rank's shard lock and
// touches only rank-private state (static partitioning), matching Price.
func (m *bbModel) DropBuffer(rank int, start float64) float64 {
	m.mu.Lock()
	st := m.ranks[rank]
	if st == nil {
		st = &bbRank{}
		m.ranks[rank] = st
	}
	d := m.drainR
	m.mu.Unlock()
	if m.tiered {
		if bw := m.backing.Bandwidth(rank); bw < d {
			d = bw
		}
	}
	if dt := start - st.last; dt > 0 {
		st.occ -= dt * d
		if st.occ < 0 {
			st.occ = 0
		}
	}
	occ := st.occ
	st.occ = 0
	st.last = start
	if d <= 0 || occ <= 0 {
		return 0
	}
	return occ / d
}

// FallbackBandwidth implements BufferFaults: the backing-tier stream
// bandwidth rank writes at while its buffer partition is out.
func (m *bbModel) FallbackBandwidth(rank int) float64 {
	return m.backing.Bandwidth(rank)
}

func (m *bbModel) Retarget() { m.backing.Retarget() }

func (m *bbModel) Reset() {
	m.backing.Reset()
	m.mu.Lock()
	m.ranks = map[int]*bbRank{}
	m.setShares(0)
	m.mu.Unlock()
}
