package iosim

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// refAggregateBandwidth replicates the historical aggregate model's
// per-writer bandwidth (the pre-topology snapshotBandwidth) so the
// property test below pins the unset-Topology filesystem to it.
func refAggregateBandwidth(cfg Config, writers int) float64 {
	bw := cfg.PerWriterBandwidth
	if writers > 1 {
		if share := cfg.AggregateBandwidth / float64(writers); share < bw {
			bw = share
		}
	}
	if bw <= 0 {
		bw = 1
	}
	return bw
}

// TestTopologyUnsetByteIdenticalToAggregate is the acceptance property:
// with a zero Topology, every ledger record, BurstStat, and
// Characterization is byte-identical to the aggregate model — durations
// match the historical formula exactly, no record carries link labels,
// and no topology field or Render line appears.
func TestTopologyUnsetByteIdenticalToAggregate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0.2 // jitter on: the pin must hold bit-for-bit with it
	if !reflect.DeepEqual(cfg.Topology, Topology{}) {
		t.Fatal("DefaultConfig must leave the topology disabled")
	}
	fs := New(cfg, "")

	rng := rand.New(rand.NewSource(7))
	type op struct {
		rank  int
		path  string
		bytes int64
		dir   bool
	}
	writers := 0 // current burst size; 0 = outside a burst
	var expected []WriteRecord
	clocks := map[int]float64{}
	for i := 0; i < 500; i++ {
		switch {
		case rng.Intn(10) == 0:
			writers = 1 + rng.Intn(64)
			fs.BeginBurst(writers)
			continue
		case writers > 0 && rng.Intn(12) == 0:
			writers = 0
			fs.EndBurst()
			continue
		}
		o := op{
			rank:  rng.Intn(32),
			path:  "plt/Cell_D_" + string(rune('a'+rng.Intn(26))),
			bytes: int64(rng.Intn(1 << 20)),
			dir:   rng.Intn(8) == 0,
		}
		var dur float64
		if o.dir {
			if err := fs.Mkdir(o.rank, o.path, Labels{Step: i % 5}); err != nil {
				t.Fatal(err)
			}
			dur = cfg.OpenLatency
			o.bytes = 0
		} else {
			var err error
			dur, err = fs.WriteSize(o.rank, o.path, o.bytes, Labels{Step: i % 5})
			if err != nil {
				t.Fatal(err)
			}
			bw := refAggregateBandwidth(cfg, writers)
			want := (cfg.OpenLatency + float64(o.bytes)/bw) * fs.jitter(o.rank, o.path)
			if dur != want {
				t.Fatalf("op %d: duration %g != aggregate reference %g", i, dur, want)
			}
		}
		open := cfg.OpenLatency // Mkdir charges the open unjittered
		if !o.dir {
			open = cfg.OpenLatency * fs.jitter(o.rank, o.path)
		}
		expected = append(expected, WriteRecord{
			Rank: o.rank, Path: o.path, Bytes: o.bytes,
			Start: clocks[o.rank], Duration: dur,
			Labels: Labels{Step: i % 5}, Dir: o.dir,
			Node: -1, Target: -1,
			OpenSeconds: open,
		})
		clocks[o.rank] += dur
	}

	ledger := fs.Ledger()
	byRank := map[int][]WriteRecord{}
	for _, r := range ledger {
		byRank[r.Rank] = append(byRank[r.Rank], r)
	}
	wantByRank := map[int][]WriteRecord{}
	for _, r := range expected {
		wantByRank[r.Rank] = append(wantByRank[r.Rank], r)
	}
	if !reflect.DeepEqual(byRank, wantByRank) {
		t.Fatal("ledger differs from the aggregate-model reference")
	}

	for _, b := range BurstStats(ledger) {
		if b.Nodes != 0 || b.Links != 0 || b.LinkSkew != 0 || b.NodeSkew != 0 ||
			b.MaxLinkSeconds != 0 || b.MeanLinkSeconds != 0 {
			t.Fatalf("aggregate-model burst carries topology fields: %+v", b)
		}
	}
	c := Characterize(ledger)
	if c.NodesUsed != 0 || c.TargetsUsed != 0 || c.LinksUsed != 0 ||
		c.NodeImbalance != 0 || c.LinkImbalance != 0 {
		t.Fatalf("aggregate-model characterization carries topology fields: %+v", c)
	}
	if s := c.Render(); strings.Contains(s, "topology") {
		t.Fatal("aggregate-model Render mentions topology")
	}
}

// TestTwoNodeContention is the acceptance scenario: on a 2-node topology,
// two writers packed onto the same node contend for its NIC (per-link
// bandwidth below the aggregate case) while the same two writers spread
// across nodes do not.
func TestTwoNodeContention(t *testing.T) {
	base := Config{
		AggregateBandwidth: 1e12, // never binding here
		PerWriterBandwidth: 2e9,
		OpenLatency:        0,
		JitterSigma:        0,
	}
	burstWrite := func(cfg Config) (d0, d1 float64) {
		fs := New(cfg, "")
		fs.BeginBurst(2)
		d0, _ = fs.WriteSize(0, "a", 1e9, Labels{})
		d1, _ = fs.WriteSize(1, "b", 1e9, Labels{})
		fs.EndBurst()
		return d0, d1
	}

	aggD0, aggD1 := burstWrite(base)

	packed := base
	packed.Topology = Topology{Nodes: 2, RanksPerNode: 2, NICBandwidth: 2e9}
	pkD0, pkD1 := burstWrite(packed)
	// Same node: the 2 GB/s NIC splits two ways -> 1 GB/s each, twice the
	// aggregate-case duration.
	if want := 2 * aggD0; math.Abs(pkD0-want) > 1e-9 || math.Abs(pkD1-want) > 1e-9 {
		t.Errorf("packed durations = %g, %g; want %g (NIC contention)", pkD0, pkD1, want)
	}

	spread := base
	spread.Topology = Topology{Nodes: 2, RanksPerNode: 1, NICBandwidth: 2e9}
	spD0, spD1 := burstWrite(spread)
	// One writer per node: each has a private NIC, durations match the
	// aggregate model exactly.
	if spD0 != aggD0 || spD1 != aggD1 {
		t.Errorf("spread durations = %g, %g; want aggregate %g, %g", spD0, spD1, aggD0, aggD1)
	}
}

// TestTargetFanInContention checks the NSD fan-in cap: writers on
// different nodes still contend when they hammer the same storage target.
func TestTargetFanInContention(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 2e9,
		Topology: Topology{
			Nodes: 2, RanksPerNode: 1,
			Targets: 1, TargetBandwidth: 1e9,
		},
	}
	fs := New(cfg, "")
	fs.BeginBurst(2)
	d0, _ := fs.WriteSize(0, "a", 1e9, Labels{})
	d1, _ := fs.WriteSize(1, "b", 1e9, Labels{})
	fs.EndBurst()
	// Both ranks fan into the single 1 GB/s target: 0.5 GB/s each.
	if want := 2.0; math.Abs(d0-want) > 1e-9 || math.Abs(d1-want) > 1e-9 {
		t.Errorf("fan-in durations = %g, %g; want %g", d0, d1, want)
	}

	cfg.Topology.Targets = 2 // one writer per target: only PerWriter binds... capped at 1e9 by target
	fs = New(cfg, "")
	fs.BeginBurst(2)
	d0, _ = fs.WriteSize(0, "a", 1e9, Labels{})
	d1, _ = fs.WriteSize(1, "b", 1e9, Labels{})
	fs.EndBurst()
	if want := 1.0; math.Abs(d0-want) > 1e-9 || math.Abs(d1-want) > 1e-9 {
		t.Errorf("spread-target durations = %g, %g; want %g", d0, d1, want)
	}
}

// TestPlacementEdgeCases covers 1 node, ranks > nodes (packed), and rank
// counts not divisible by the node count.
func TestPlacementEdgeCases(t *testing.T) {
	// One node: every rank lands on node 0 and shares its NIC.
	one := Topology{Nodes: 1, NICBandwidth: 4e9}
	for r := 0; r < 8; r++ {
		if n := one.NodeOf(r, 8); n != 0 {
			t.Fatalf("1-node NodeOf(%d) = %d", r, n)
		}
	}
	cfg := Config{AggregateBandwidth: 1e12, PerWriterBandwidth: 2e9, Topology: one}
	fs := New(cfg, "")
	fs.BeginBurst(4)
	d, _ := fs.WriteSize(2, "x", 1e9, Labels{})
	if want := 1.0; math.Abs(d-want) > 1e-9 { // 4e9 NIC / 4 writers = 1e9
		t.Errorf("1-node shared-NIC duration = %g, want %g", d, want)
	}

	// 5 ranks on 2 nodes, packing derived: ceil(5/2)=3 -> nodes get 3 and 2.
	two := Topology{Nodes: 2, NICBandwidth: 6e9}
	wantNode := []int{0, 0, 0, 1, 1}
	for r, want := range wantNode {
		if n := two.NodeOf(r, 5); n != want {
			t.Errorf("NodeOf(%d, 5 ranks) = %d, want %d", r, n, want)
		}
	}
	cfg = Config{AggregateBandwidth: 1e12, PerWriterBandwidth: 1e10, Topology: two}
	fs = New(cfg, "")
	fs.BeginBurst(5)
	dPacked, _ := fs.WriteSize(0, "a", 1e9, Labels{}) // node 0: 3 writers -> 2e9
	dLight, _ := fs.WriteSize(4, "b", 1e9, Labels{})  // node 1: 2 writers -> 3e9
	if want := 0.5; math.Abs(dPacked-want) > 1e-9 {
		t.Errorf("packed-node duration = %g, want %g", dPacked, want)
	}
	if want := 1.0 / 3; math.Abs(dLight-want) > 1e-9 {
		t.Errorf("light-node duration = %g, want %g", dLight, want)
	}

	// 7 ranks on 3 nodes: ceil(7/3)=3 -> occupancy 3,3,1.
	three := Topology{Nodes: 3}
	wantNode = []int{0, 0, 0, 1, 1, 1, 2}
	for r, want := range wantNode {
		if n := three.NodeOf(r, 7); n != want {
			t.Errorf("NodeOf(%d, 7 ranks) = %d, want %d", r, n, want)
		}
	}
}

// TestZeroByteOpsOnCappedLink pins metadata behavior under the topology:
// a Mkdir (zero-byte Dir record) on a fully capped link still costs
// exactly one open latency, and a zero-byte write costs the same — link
// caps scale transfer time, not metadata latency.
func TestZeroByteOpsOnCappedLink(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 2e9,
		OpenLatency:        0.25,
		Topology: Topology{
			Nodes: 1, NICBandwidth: 1, // pathologically slow link
			Targets: 1, TargetBandwidth: 1,
		},
	}
	fs := New(cfg, "")
	fs.BeginBurst(2)
	if err := fs.Mkdir(0, "plt00000", Labels{Step: 3}); err != nil {
		t.Fatal(err)
	}
	d, err := fs.WriteSize(1, "plt00000/empty", 0, Labels{Step: 3})
	if err != nil {
		t.Fatal(err)
	}
	fs.EndBurst()
	if d != cfg.OpenLatency {
		t.Errorf("zero-byte write duration = %g, want open latency %g", d, cfg.OpenLatency)
	}
	rec := fs.Ledger()
	if len(rec) != 2 {
		t.Fatalf("ledger len = %d", len(rec))
	}
	dir := rec[0]
	if !dir.Dir || dir.Duration != cfg.OpenLatency {
		t.Errorf("dir record = %+v, want open-latency Dir record", dir)
	}
	if dir.Node != 0 || dir.Target != -1 {
		t.Errorf("dir labels = (node %d, target %d), want (0, -1)", dir.Node, dir.Target)
	}
	if rec[1].Node != 0 || rec[1].Target != 0 {
		t.Errorf("write labels = (node %d, target %d), want (0, 0)", rec[1].Node, rec[1].Target)
	}
}

// TestTopologyAggregations drives a labeled burst and checks the per-link
// fields of BurstStats and Characterize.
func TestTopologyAggregations(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 1e9,
		Topology: Topology{
			Nodes: 2, RanksPerNode: 2,
			NICBandwidth: 2e9, Targets: 2, TargetBandwidth: 1e12,
		},
	}
	fs := New(cfg, "")
	fs.BeginBurst(4)
	// Node 0 writes 3x the bytes of node 1.
	fs.WriteSize(0, "a", 3e6, Labels{Step: 1}) // node 0, target 0
	fs.WriteSize(1, "b", 3e6, Labels{Step: 1}) // node 0, target 1
	fs.WriteSize(2, "c", 1e6, Labels{Step: 1}) // node 1, target 0
	fs.WriteSize(3, "d", 1e6, Labels{Step: 1}) // node 1, target 1
	fs.EndBurst()

	stats := BurstStats(fs.Ledger())
	if len(stats) != 1 {
		t.Fatalf("stats len = %d", len(stats))
	}
	b := stats[0]
	if b.Nodes != 2 || b.Links != 4 {
		t.Errorf("nodes/links = %d/%d, want 2/4", b.Nodes, b.Links)
	}
	if want := 1.5; math.Abs(b.NodeSkew-want) > 1e-12 { // 6e6 vs mean 4e6
		t.Errorf("NodeSkew = %g, want %g", b.NodeSkew, want)
	}
	if b.LinkSkew <= 1 {
		t.Errorf("LinkSkew = %g, want > 1 (node-0 links are slower)", b.LinkSkew)
	}
	if b.MaxLinkSeconds < b.MeanLinkSeconds {
		t.Error("MaxLinkSeconds < MeanLinkSeconds")
	}

	c := Characterize(fs.Ledger())
	if c.NodesUsed != 2 || c.TargetsUsed != 2 || c.LinksUsed != 4 {
		t.Errorf("characterize topology = %d nodes, %d targets, %d links",
			c.NodesUsed, c.TargetsUsed, c.LinksUsed)
	}
	if want := 1.5; math.Abs(c.NodeImbalance-want) > 1e-12 {
		t.Errorf("NodeImbalance = %g, want %g", c.NodeImbalance, want)
	}
	if !strings.Contains(c.Render(), "topology") {
		t.Error("Render omits the topology section for a labeled ledger")
	}
}

// TestExchangeTime checks the mesh-traffic side of the contention model.
func TestExchangeTime(t *testing.T) {
	topo := Topology{Nodes: 2, RanksPerNode: 1, NICBandwidth: 1e9}
	pairs := []PairBytes{
		{Src: 0, Dst: 1, Bytes: 2e9}, // cross-node: 2s at 1 GB/s
		{Src: 1, Dst: 0, Bytes: 1e9}, // reverse direction, full duplex
	}
	// Node 0: tx 2e9, rx 1e9 -> max 2e9 -> 2s. Node 1 mirrors.
	if got := topo.ExchangeTime(pairs, 2, 0); math.Abs(got-2) > 1e-12 {
		t.Errorf("ExchangeTime = %g, want 2", got)
	}
	// Same-node traffic is free without an intra-node bandwidth...
	intra := []PairBytes{{Src: 0, Dst: 1, Bytes: 4e9}}
	packed := Topology{Nodes: 2, RanksPerNode: 2, NICBandwidth: 1e9}
	if got := packed.ExchangeTime(intra, 2, 0); got != 0 {
		t.Errorf("intra-node ExchangeTime = %g, want 0 (free)", got)
	}
	// ...and moves at intraNodeBW when one is given.
	if got := packed.ExchangeTime(intra, 2, 2e9); math.Abs(got-2) > 1e-12 {
		t.Errorf("intra-node ExchangeTime = %g, want 2", got)
	}
	// Disabled topology prices everything at zero.
	if got := (Topology{}).ExchangeTime(pairs, 2, 1); got != 0 {
		t.Errorf("disabled ExchangeTime = %g, want 0", got)
	}
}

// TestTopologyForCase pins the Summit-derived helper.
func TestTopologyForCase(t *testing.T) {
	topo := TopologyForCase(2, 32)
	if !topo.Enabled() || topo.Nodes != 2 || topo.RanksPerNode != 16 {
		t.Errorf("TopologyForCase(2, 32) = %+v", topo)
	}
	if topo.Targets != AlpineNSDServers || topo.NICBandwidth != SummitNICBandwidth {
		t.Errorf("Summit constants not applied: %+v", topo)
	}
	if topo.TargetBandwidth <= 0 {
		t.Error("TargetBandwidth must be positive")
	}
	if ranks := TopologyForCase(3, 7).RanksPerNode; ranks != 3 { // ceil(7/3)
		t.Errorf("ceil packing = %d, want 3", ranks)
	}
	if TopologyForCase(0, 8).Enabled() {
		t.Error("0 nodes must disable the topology")
	}
}

// TestTargetMapOverride pins TargetOf semantics: installed entries win,
// out-of-range entries and uncovered ranks fall back to round-robin.
func TestTargetMapOverride(t *testing.T) {
	topo := Topology{Nodes: 1, Targets: 3, TargetMap: []int{2, 2, -1, 99}}
	want := []int{2, 2, 2, 0, 1, 2} // ranks 2,3 invalid entries -> r%3; ranks 4,5 uncovered -> r%3
	for r, w := range want {
		if got := topo.TargetOf(r); got != w {
			t.Errorf("TargetOf(%d) = %d, want %d", r, got, w)
		}
	}
	if (Topology{Targets: 3, TargetMap: []int{0}}).TargetOf(0) != -1 {
		t.Error("disabled topology must return -1 even with a map")
	}
}

// TestRetargetIdentityByteIdentical is the remap acceptance pin: a
// Retarget with the round-robin identity map leaves every duration,
// label, and ledger record byte-identical to no retarget at all; and a
// zero-topology filesystem ignores Retarget entirely.
func TestRetargetIdentityByteIdentical(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 4e9,
		OpenLatency:        0.001,
		JitterSigma:        0.1,
		Seed:               7,
		Topology: Topology{
			Nodes: 2, RanksPerNode: 2,
			NICBandwidth: 4e9, Targets: 2, TargetBandwidth: 3e9,
		},
	}
	run := func(identity bool) []WriteRecord {
		fs := New(cfg, "")
		for step := 0; step < 3; step++ {
			if identity {
				fs.Retarget([]int{0, 1, 0, 1}) // == r % 2
			}
			fs.BeginBurst(4)
			for r := 0; r < 4; r++ {
				if _, err := fs.WriteSize(r, "plt/Cell_D", int64(1e6*(r+1)), Labels{Step: step}); err != nil {
					t.Fatal(err)
				}
			}
			fs.EndBurst()
		}
		return fs.Ledger()
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identity retarget changed the ledger")
	}

	// Zero topology: Retarget is a no-op, ledger stays label-free.
	plain := New(Config{AggregateBandwidth: 1e12, PerWriterBandwidth: 4e9}, "")
	plain.Retarget([]int{0, 0})
	plain.BeginBurst(2)
	plain.WriteSize(0, "x", 100, Labels{})
	plain.EndBurst()
	if rec := plain.Ledger(); rec[0].Node != -1 || rec[0].Target != -1 {
		t.Errorf("zero-topology retarget labeled records: %+v", rec[0])
	}
}

// TestRetargetChangesContention: forcing two writers onto one target
// halves their share; Retarget(nil) restores the round-robin layout.
func TestRetargetChangesContention(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 4e9,
		Topology: Topology{
			Nodes: 2, RanksPerNode: 1,
			Targets: 2, TargetBandwidth: 1e9,
		},
	}
	fs := New(cfg, "")
	burst := func() (d0, d1 float64, rec0 WriteRecord) {
		fs.BeginBurst(2)
		d0, _ = fs.WriteSize(0, "a", 1e9, Labels{})
		d1, _ = fs.WriteSize(1, "b", 1e9, Labels{})
		fs.EndBurst()
		for _, r := range fs.Ledger() {
			if r.Rank == 0 {
				rec0 = r // rank 0's latest record (ledger is rank-major)
			}
		}
		return d0, d1, rec0
	}

	// Round-robin: one writer per 1 GB/s target -> 1s each.
	d0, d1, _ := burst()
	if math.Abs(d0-1) > 1e-9 || math.Abs(d1-1) > 1e-9 {
		t.Fatalf("round-robin durations = %g, %g, want 1", d0, d1)
	}

	// Collide both writers on target 0: 0.5 GB/s each -> 2s.
	fs.Retarget([]int{0, 0})
	d0, d1, rec := burst()
	if math.Abs(d0-2) > 1e-9 || math.Abs(d1-2) > 1e-9 {
		t.Fatalf("collided durations = %g, %g, want 2", d0, d1)
	}
	if rec.Target != 0 {
		t.Errorf("collided record target = %d, want 0", rec.Target)
	}

	// Retarget(nil) restores the configured placement.
	fs.Retarget(nil)
	d0, d1, _ = burst()
	if math.Abs(d0-1) > 1e-9 || math.Abs(d1-1) > 1e-9 {
		t.Fatalf("restored durations = %g, %g, want 1", d0, d1)
	}
}
