package iosim_test

import (
	"fmt"

	"amrproxyio/internal/iosim"
)

// ExampleTopology shows the per-link contention model: two writers packed
// onto one node split that node's NIC, while the same two writers spread
// across nodes each keep a full NIC — the aggregate backend is idle
// either way.
func ExampleTopology() {
	cfg := iosim.Config{
		AggregateBandwidth: 1e12, // backend far from saturated
		PerWriterBandwidth: 2e9,
	}

	// Both ranks on one node: the 2 GB/s NIC splits two ways.
	cfg.Topology = iosim.Topology{Nodes: 2, RanksPerNode: 2, NICBandwidth: 2e9}
	fs := iosim.New(cfg, "")
	fs.BeginBurst(2)
	d, _ := fs.WriteSize(0, "ckpt/rank0", 1e9, iosim.Labels{})
	fmt.Printf("packed: %.1fs\n", d)
	fs.EndBurst()

	// One rank per node: private NICs, no contention.
	cfg.Topology = iosim.Topology{Nodes: 2, RanksPerNode: 1, NICBandwidth: 2e9}
	fs = iosim.New(cfg, "")
	fs.BeginBurst(2)
	d, _ = fs.WriteSize(0, "ckpt/rank0", 1e9, iosim.Labels{})
	fmt.Printf("spread: %.1fs\n", d)
	fs.EndBurst()

	// Output:
	// packed: 1.0s
	// spread: 0.5s
}

// ExampleBurstStats summarizes an I/O burst from the write ledger: bytes,
// file counts, and the bulk-synchronous wall time set by the slowest
// rank.
func ExampleBurstStats() {
	cfg := iosim.Config{
		AggregateBandwidth: 1e9,
		PerWriterBandwidth: 1e9,
	}
	fs := iosim.New(cfg, "")
	fs.BeginBurst(2) // fair share: 0.5 GB/s per writer
	fs.WriteSize(0, "plt00010/Cell_D_00000", 5e8, iosim.Labels{Step: 10})
	fs.WriteSize(1, "plt00010/Cell_D_00001", 1e9, iosim.Labels{Step: 10})
	fs.EndBurst()

	for _, b := range iosim.BurstStats(fs.Ledger()) {
		fmt.Printf("step %d: %d bytes in %d files, wall %.1fs, %d writers\n",
			b.Step, b.Bytes, b.Files, b.WallSeconds, b.Participants)
	}

	// Output:
	// step 10: 1500000000 bytes in 2 files, wall 2.0s, 2 writers
}
