package iosim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Darshan-style I/O characterization. The paper's background section leans
// on Carns et al.'s continuous characterization methodology ("Understanding
// and improving computational science storage access through continuous
// characterization", MSST 2011); this file computes the equivalent summary
// from the simulated filesystem's ledger so that proxy and application runs
// can be compared with the same vocabulary: operation counts, size
// histograms, per-rank balance, and burst cadence.

// Characterization is a compact I/O profile of a run.
type Characterization struct {
	TotalBytes  int64
	TotalWrites int
	UniqueFiles int
	Ranks       int
	// DirOps counts directory-creation metadata records; they are kept
	// out of the write-size distribution and file counts so data-file
	// profiles stay comparable across writers that do and don't create
	// directories (plotfile vs MACSio).
	DirOps int

	// Write-size distribution.
	MinWrite, MaxWrite int64
	MeanWrite          float64
	P50Write, P95Write int64

	// Power-of-two size histogram: bucket k counts writes with
	// 2^k <= bytes < 2^(k+1); bucket 0 also holds zero-byte writes.
	SizeHistogram map[int]int

	// Per-rank balance of bytes written (max/mean; 1.0 = perfect).
	RankImbalance float64

	// Burst cadence.
	Bursts            int
	MeanBurstBytes    float64
	MeanInterArrival  float64 // simulated seconds between burst starts
	AggregateBandwith float64 // bytes / total busy seconds (max rank clock)

	// Topology decomposition, populated only when the ledger carries
	// per-link labels (records with Node >= 0); all zero — and absent
	// from Render — under the aggregate model.
	NodesUsed     int     // distinct compute nodes that wrote data
	TargetsUsed   int     // distinct storage targets that received data
	LinksUsed     int     // distinct (node, target) links
	NodeImbalance float64 // max/mean bytes per node (1.0 = perfect)
	LinkImbalance float64 // max/mean bytes per link (1.0 = perfect)

	// Storage-tier decomposition, populated only when the ledger carries
	// tier labels (the "bb"/"bb+gpfs" storage models); all zero — and
	// absent from Render — under single-tier models.
	BBBytes      int64   // bytes absorbed at burst-buffer speed
	SpillBytes   int64   // bytes that stalled through to the GPFS tier
	MaxBBFill    float64 // peak buffer-partition occupancy fraction
	StallRanks   int     // stall stragglers summed over bursts
	StallSeconds float64 // sum over bursts of the max-rank stall time
	DrainSeconds float64 // sum over bursts of the post-burst drain tails

	// Aggregation decomposition, populated only when the ledger carries
	// two-phase gather records (Config.Aggregation with a non-identity
	// spec); GatherSeconds zero — and the line absent from Render —
	// under the direct pattern.
	Writers       int     // distinct ranks paying a file open (fan-in after aggregation)
	GatherSeconds float64 // intra-node gather time summed over data records
	OpenSeconds   float64 // open/metadata time summed over data records

	// Fault decomposition, populated only when the ledger carries
	// injected-fault labels (an installed FaultInjector); all zero — and
	// absent from Render — under fault-free runs.
	FaultWrites  int     // writes an injected fault touched
	Retries      int     // failed attempts summed over all writes
	FaultSeconds float64 // sum over bursts of the max-rank fault time
}

// Characterize computes the profile from ledger records.
func Characterize(records []WriteRecord) Characterization {
	var c Characterization
	if len(records) == 0 {
		return c
	}
	files := map[string]bool{}
	ranks := map[int]int64{}
	writers := map[int]bool{}
	nodes := map[int]int64{}
	targets := map[int]int64{}
	links := map[burstLink]int64{}
	sizes := make([]int64, 0, len(records))
	c.SizeHistogram = map[int]int{}
	c.MinWrite = math.MaxInt64
	var endMax float64
	for _, r := range records {
		if end := r.Start + r.Duration; end > endMax {
			endMax = end
		}
		if r.Dir {
			c.DirOps++
			continue
		}
		c.TotalBytes += r.Bytes
		c.TotalWrites++
		files[r.Path] = true
		ranks[r.Rank] += r.Bytes
		if r.OpenSeconds > 0 {
			writers[r.Rank] = true
		}
		c.GatherSeconds += r.GatherSeconds
		c.OpenSeconds += r.OpenSeconds
		if r.Node >= 0 {
			nodes[r.Node] += r.Bytes
			if r.Target >= 0 {
				targets[r.Target] += r.Bytes
			}
			links[burstLink{r.Node, r.Target}] += r.Bytes
		}
		sizes = append(sizes, r.Bytes)
		if r.Bytes < c.MinWrite {
			c.MinWrite = r.Bytes
		}
		if r.Bytes > c.MaxWrite {
			c.MaxWrite = r.Bytes
		}
		c.SizeHistogram[sizeBucket(r.Bytes)]++
	}
	c.UniqueFiles = len(files)
	c.Ranks = len(ranks)
	c.Writers = len(writers)
	c.NodesUsed = len(nodes)
	c.TargetsUsed = len(targets)
	c.LinksUsed = len(links)
	c.NodeImbalance = bytesImbalance(nodes)
	c.LinkImbalance = bytesImbalance(links)
	if c.TotalWrites == 0 {
		c.MinWrite = 0
		return c
	}
	c.MeanWrite = float64(c.TotalBytes) / float64(c.TotalWrites)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	c.P50Write = sizes[len(sizes)/2]
	c.P95Write = sizes[(len(sizes)*95)/100]

	c.RankImbalance = bytesImbalance(ranks)

	bursts := BurstStats(records)
	c.Bursts = len(bursts)
	if len(bursts) > 0 {
		var bb float64
		for _, b := range bursts {
			bb += float64(b.Bytes)
			c.BBBytes += b.BBBytes
			c.SpillBytes += b.SpillBytes
			if b.MaxBBFill > c.MaxBBFill {
				c.MaxBBFill = b.MaxBBFill
			}
			c.StallRanks += b.StallRanks
			c.StallSeconds += b.StallSeconds
			c.DrainSeconds += b.DrainSeconds
			c.FaultWrites += b.FaultWrites
			c.Retries += b.Retries
			c.FaultSeconds += b.FaultSeconds
		}
		c.MeanBurstBytes = bb / float64(len(bursts))
	}
	if len(bursts) > 1 {
		// Inter-arrival from the earliest record start per burst step.
		starts := map[int]float64{}
		for _, r := range records {
			if s, ok := starts[r.Labels.Step]; !ok || r.Start < s {
				starts[r.Labels.Step] = r.Start
			}
		}
		var ordered []float64
		for _, b := range bursts {
			ordered = append(ordered, starts[b.Step])
		}
		sort.Float64s(ordered)
		var gaps float64
		for i := 1; i < len(ordered); i++ {
			gaps += ordered[i] - ordered[i-1]
		}
		c.MeanInterArrival = gaps / float64(len(ordered)-1)
	}
	if endMax > 0 {
		c.AggregateBandwith = float64(c.TotalBytes) / endMax
	}
	return c
}

// bytesImbalance returns max/mean over a byte-count map (0 when empty).
// Sums accumulate in int64 — exact and order-independent — so the result
// does not depend on map iteration order (float addition is not
// associative; see the maprangefloat analyzer).
func bytesImbalance[K comparable](m map[K]int64) float64 {
	if len(m) == 0 {
		return 0
	}
	var sum, max int64
	for _, b := range m {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum > 0 {
		return float64(max) / (float64(sum) / float64(len(m)))
	}
	return 0
}

// sizeBucket returns floor(log2(bytes)) with zero-size writes in bucket 0.
func sizeBucket(bytes int64) int {
	if bytes <= 1 {
		return 0
	}
	b := 0
	for v := bytes; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Render formats the profile as a Darshan-like text summary.
func (c Characterization) Render() string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "I/O characterization (Darshan-style)")
	fmt.Fprintf(&sb, "  total bytes      : %d\n", c.TotalBytes)
	fmt.Fprintf(&sb, "  write ops        : %d across %d files, %d ranks\n",
		c.TotalWrites, c.UniqueFiles, c.Ranks)
	fmt.Fprintf(&sb, "  metadata ops     : %d directory creations\n", c.DirOps)
	fmt.Fprintf(&sb, "  write size       : min %d  p50 %d  mean %.0f  p95 %d  max %d\n",
		c.MinWrite, c.P50Write, c.MeanWrite, c.P95Write, c.MaxWrite)
	fmt.Fprintf(&sb, "  rank imbalance   : %.3f (max/mean)\n", c.RankImbalance)
	fmt.Fprintf(&sb, "  bursts           : %d, mean %.0f bytes, inter-arrival %.4gs\n",
		c.Bursts, c.MeanBurstBytes, c.MeanInterArrival)
	fmt.Fprintf(&sb, "  aggregate bw     : %.4g B/s\n", c.AggregateBandwith)
	if c.NodesUsed > 0 {
		fmt.Fprintf(&sb, "  topology         : %d nodes, %d targets, %d links\n",
			c.NodesUsed, c.TargetsUsed, c.LinksUsed)
		fmt.Fprintf(&sb, "  node imbalance   : %.3f (max/mean)\n", c.NodeImbalance)
		fmt.Fprintf(&sb, "  link imbalance   : %.3f (max/mean)\n", c.LinkImbalance)
	}
	if c.BBBytes > 0 || c.SpillBytes > 0 || c.MaxBBFill > 0 {
		fmt.Fprintf(&sb, "  storage tiers    : bb %d B, gpfs spill %d B\n", c.BBBytes, c.SpillBytes)
		fmt.Fprintf(&sb, "  burst buffer     : peak fill %.3f, %d stall stragglers, stall %.4gs, drain tail %.4gs\n",
			c.MaxBBFill, c.StallRanks, c.StallSeconds, c.DrainSeconds)
	}
	if c.GatherSeconds > 0 {
		fmt.Fprintf(&sb, "  aggregation      : fan-in %d ranks -> %d writers, gather %.4gs, open %.4gs\n",
			c.Ranks, c.Writers, c.GatherSeconds, c.OpenSeconds)
	}
	if c.FaultWrites > 0 {
		fmt.Fprintf(&sb, "  faults           : %d writes touched, %d retries, fault time %.4gs\n",
			c.FaultWrites, c.Retries, c.FaultSeconds)
	}
	if len(c.SizeHistogram) > 0 {
		fmt.Fprintln(&sb, "  size histogram (log2 buckets):")
		buckets := make([]int, 0, len(c.SizeHistogram))
		for k := range c.SizeHistogram {
			buckets = append(buckets, k)
		}
		sort.Ints(buckets)
		for _, k := range buckets {
			fmt.Fprintf(&sb, "    2^%-2d..2^%-2d : %d\n", k, k+1, c.SizeHistogram[k])
		}
	}
	return sb.String()
}
