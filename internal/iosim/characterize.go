package iosim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// Darshan-style I/O characterization. The paper's background section leans
// on Carns et al.'s continuous characterization methodology ("Understanding
// and improving computational science storage access through continuous
// characterization", MSST 2011); this file computes the equivalent summary
// from the simulated filesystem's write stream so that proxy and
// application runs can be compared with the same vocabulary: operation
// counts, size histograms, per-rank balance, and burst cadence.
//
// Since Design 10 the computation is a streaming fold (CharacterizeFold,
// a LedgerConsumer): the profile accumulates as records are produced, so
// no caller needs the materialized ledger. Characterize is the batch
// wrapper — the same fold fed from a slice — which makes fold and batch
// results identical by construction.

// Characterization is a compact I/O profile of a run.
type Characterization struct {
	TotalBytes  int64
	TotalWrites int
	UniqueFiles int
	Ranks       int
	// DirOps counts directory-creation metadata records; they are kept
	// out of the write-size distribution and file counts so data-file
	// profiles stay comparable across writers that do and don't create
	// directories (plotfile vs MACSio).
	DirOps int

	// Write-size distribution.
	MinWrite, MaxWrite int64
	MeanWrite          float64
	P50Write, P95Write int64

	// Power-of-two size histogram: bucket k counts writes with
	// 2^k <= bytes < 2^(k+1); bucket 0 also holds zero-byte writes.
	SizeHistogram map[int]int

	// Per-rank balance of bytes written (max/mean; 1.0 = perfect).
	RankImbalance float64

	// Burst cadence.
	Bursts            int
	MeanBurstBytes    float64
	MeanInterArrival  float64 // simulated seconds between burst starts
	AggregateBandwith float64 // bytes / total busy seconds (max rank clock)

	// Topology decomposition, populated only when the ledger carries
	// per-link labels (records with Node >= 0); all zero — and absent
	// from Render — under the aggregate model.
	NodesUsed     int     // distinct compute nodes that wrote data
	TargetsUsed   int     // distinct storage targets that received data
	LinksUsed     int     // distinct (node, target) links
	NodeImbalance float64 // max/mean bytes per node (1.0 = perfect)
	LinkImbalance float64 // max/mean bytes per link (1.0 = perfect)

	// Storage-tier decomposition, populated only when the ledger carries
	// tier labels (the "bb"/"bb+gpfs" storage models); all zero — and
	// absent from Render — under single-tier models.
	BBBytes      int64   // bytes absorbed at burst-buffer speed
	SpillBytes   int64   // bytes that stalled through to the GPFS tier
	MaxBBFill    float64 // peak buffer-partition occupancy fraction
	StallRanks   int     // stall stragglers summed over bursts
	StallSeconds float64 // sum over bursts of the max-rank stall time
	DrainSeconds float64 // sum over bursts of the post-burst drain tails

	// Aggregation decomposition, populated only when the ledger carries
	// two-phase gather records (Config.Aggregation with a non-identity
	// spec); GatherSeconds zero — and the line absent from Render —
	// under the direct pattern.
	Writers       int     // distinct ranks paying a file open (fan-in after aggregation)
	GatherSeconds float64 // intra-node gather time summed over data records
	OpenSeconds   float64 // open/metadata time summed over data records

	// Fault decomposition, populated only when the ledger carries
	// injected-fault labels (an installed FaultInjector); all zero — and
	// absent from Render — under fault-free runs.
	FaultWrites  int     // writes an injected fault touched
	Retries      int     // failed attempts summed over all writes
	FaultSeconds float64 // sum over bursts of the max-rank fault time
}

// CharacterizeFold is the streaming form of Characterize: a
// LedgerConsumer that accumulates the profile as records arrive and
// finalizes it on Profile(). State is O(steps + ranks + distinct write
// sizes), never O(writes) — the exact percentiles come from a size
// multiset (size → count), and every order-sensitive float accumulator
// (gather/open time) is keyed per rank and finalized in sorted-rank
// order so stream order and batch order produce bit-identical profiles.
type CharacterizeFold struct {
	n int // records consumed (0 distinguishes the zero profile)
	c Characterization

	// files counts distinct paths by 64-bit FNV-1a hash rather than by
	// retained string: UniqueFiles only needs the cardinality, and a
	// campaign case touches O(ranks x dumps) paths — storing them would
	// be the largest O(writes) term left in the fold. FNV is
	// deterministic, so fold == batch is unaffected; a 64-bit collision
	// (odds ~1e-8 even at a million files) would only undercount
	// UniqueFiles by one.
	files     map[uint64]struct{}
	ranks     map[int]int64
	writers   map[int]bool
	nodes     map[int]int64
	targets   map[int]int64
	links     map[burstLink]int64
	sizeCount map[int64]int // write-size multiset for exact percentiles

	gatherByRank map[int]float64
	openByRank   map[int]float64

	endMax    float64
	stepStart map[int]float64 // earliest record start per step

	bursts *BurstFold
}

// NewCharacterizeFold returns an empty fold.
func NewCharacterizeFold() *CharacterizeFold {
	f := &CharacterizeFold{
		files:        map[uint64]struct{}{},
		ranks:        map[int]int64{},
		writers:      map[int]bool{},
		nodes:        map[int]int64{},
		targets:      map[int]int64{},
		links:        map[burstLink]int64{},
		sizeCount:    map[int64]int{},
		gatherByRank: map[int]float64{},
		openByRank:   map[int]float64{},
		stepStart:    map[int]float64{},
		bursts:       NewBurstFold(),
	}
	f.c.SizeHistogram = map[int]int{}
	f.c.MinWrite = math.MaxInt64
	return f
}

// Consume folds one record into the profile.
func (f *CharacterizeFold) Consume(r WriteRecord) {
	f.n++
	if end := r.Start + r.Duration; end > f.endMax {
		f.endMax = end
	}
	if s, ok := f.stepStart[r.Labels.Step]; !ok || r.Start < s {
		f.stepStart[r.Labels.Step] = r.Start
	}
	f.bursts.Consume(r)
	if r.Dir {
		f.c.DirOps++
		return
	}
	f.c.TotalBytes += r.Bytes
	f.c.TotalWrites++
	h := fnv.New64a()
	h.Write([]byte(r.Path))
	f.files[h.Sum64()] = struct{}{}
	f.ranks[r.Rank] += r.Bytes
	if r.OpenSeconds > 0 {
		f.writers[r.Rank] = true
	}
	f.gatherByRank[r.Rank] += r.GatherSeconds
	f.openByRank[r.Rank] += r.OpenSeconds
	if r.Node >= 0 {
		f.nodes[r.Node] += r.Bytes
		if r.Target >= 0 {
			f.targets[r.Target] += r.Bytes
		}
		f.links[burstLink{r.Node, r.Target}] += r.Bytes
	}
	f.sizeCount[r.Bytes]++
	if r.Bytes < f.c.MinWrite {
		f.c.MinWrite = r.Bytes
	}
	if r.Bytes > f.c.MaxWrite {
		f.c.MaxWrite = r.Bytes
	}
	f.c.SizeHistogram[sizeBucket(r.Bytes)]++
}

// Flush implements LedgerConsumer; the fold keeps no buffered state, so
// it is a no-op — Profile stays callable before and after.
func (f *CharacterizeFold) Flush() {}

// Bursts finalizes the embedded burst fold — the same []BurstStat that
// BurstStats would compute from the materialized ledger.
func (f *CharacterizeFold) Bursts() []BurstStat {
	return f.bursts.Stats()
}

// Profile finalizes the fold into the profile of everything consumed so
// far. It does not reset the fold. The returned SizeHistogram shares the
// fold's map; treat it as read-only if the fold keeps consuming.
func (f *CharacterizeFold) Profile() Characterization {
	if f.n == 0 {
		return Characterization{}
	}
	c := f.c
	c.UniqueFiles = len(f.files)
	c.Ranks = len(f.ranks)
	c.Writers = len(f.writers)
	c.NodesUsed = len(f.nodes)
	c.TargetsUsed = len(f.targets)
	c.LinksUsed = len(f.links)
	c.NodeImbalance = bytesImbalance(f.nodes)
	c.LinkImbalance = bytesImbalance(f.links)
	if c.TotalWrites == 0 {
		c.MinWrite = 0
		return c
	}
	c.MeanWrite = float64(c.TotalBytes) / float64(c.TotalWrites)
	c.P50Write = f.percentile(c.TotalWrites / 2)
	c.P95Write = f.percentile((c.TotalWrites * 95) / 100)

	c.RankImbalance = bytesImbalance(f.ranks)

	// Per-rank gather/open subtotals summed in sorted-rank order: the
	// per-rank subsequences are order-identical between stream and batch
	// feeds, so the totals are too (see the maprangefloat analyzer for
	// why an unordered float sum would not be).
	gatherRanks := make([]int, 0, len(f.gatherByRank))
	for r := range f.gatherByRank {
		gatherRanks = append(gatherRanks, r)
	}
	sort.Ints(gatherRanks)
	for _, r := range gatherRanks {
		c.GatherSeconds += f.gatherByRank[r]
		c.OpenSeconds += f.openByRank[r]
	}

	bursts := f.bursts.Stats()
	c.Bursts = len(bursts)
	if len(bursts) > 0 {
		var bb float64
		for _, b := range bursts {
			bb += float64(b.Bytes)
			c.BBBytes += b.BBBytes
			c.SpillBytes += b.SpillBytes
			if b.MaxBBFill > c.MaxBBFill {
				c.MaxBBFill = b.MaxBBFill
			}
			c.StallRanks += b.StallRanks
			c.StallSeconds += b.StallSeconds
			c.DrainSeconds += b.DrainSeconds
			c.FaultWrites += b.FaultWrites
			c.Retries += b.Retries
			c.FaultSeconds += b.FaultSeconds
		}
		c.MeanBurstBytes = bb / float64(len(bursts))
	}
	if len(bursts) > 1 {
		// Inter-arrival from the earliest record start per burst step.
		var ordered []float64
		for _, b := range bursts {
			ordered = append(ordered, f.stepStart[b.Step])
		}
		sort.Float64s(ordered)
		var gaps float64
		for i := 1; i < len(ordered); i++ {
			gaps += ordered[i] - ordered[i-1]
		}
		c.MeanInterArrival = gaps / float64(len(ordered)-1)
	}
	if f.endMax > 0 {
		c.AggregateBandwith = float64(c.TotalBytes) / f.endMax
	}
	return c
}

// percentile returns the idx-th (0-based) smallest write size from the
// size multiset — the same value indexing a fully sorted size slice
// would give, without materializing one.
func (f *CharacterizeFold) percentile(idx int) int64 {
	sizes := make([]int64, 0, len(f.sizeCount))
	for s := range f.sizeCount {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	seen := 0
	for _, s := range sizes {
		seen += f.sizeCount[s]
		if idx < seen {
			return s
		}
	}
	if n := len(sizes); n > 0 {
		return sizes[n-1]
	}
	return 0
}

// Characterize computes the profile from ledger records: the streaming
// fold fed from a slice.
func Characterize(records []WriteRecord) Characterization {
	f := NewCharacterizeFold()
	for _, r := range records {
		f.Consume(r)
	}
	return f.Profile()
}

// bytesImbalance returns max/mean over a byte-count map (0 when empty).
// Sums accumulate in int64 — exact and order-independent — so the result
// does not depend on map iteration order (float addition is not
// associative; see the maprangefloat analyzer).
func bytesImbalance[K comparable](m map[K]int64) float64 {
	if len(m) == 0 {
		return 0
	}
	var sum, max int64
	for _, b := range m {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum > 0 {
		return float64(max) / (float64(sum) / float64(len(m)))
	}
	return 0
}

// sizeBucket returns floor(log2(bytes)) with zero-size writes in bucket 0.
func sizeBucket(bytes int64) int {
	if bytes <= 1 {
		return 0
	}
	b := 0
	for v := bytes; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Render formats the profile as a Darshan-like text summary.
func (c Characterization) Render() string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "I/O characterization (Darshan-style)")
	fmt.Fprintf(&sb, "  total bytes      : %d\n", c.TotalBytes)
	fmt.Fprintf(&sb, "  write ops        : %d across %d files, %d ranks\n",
		c.TotalWrites, c.UniqueFiles, c.Ranks)
	fmt.Fprintf(&sb, "  metadata ops     : %d directory creations\n", c.DirOps)
	fmt.Fprintf(&sb, "  write size       : min %d  p50 %d  mean %.0f  p95 %d  max %d\n",
		c.MinWrite, c.P50Write, c.MeanWrite, c.P95Write, c.MaxWrite)
	fmt.Fprintf(&sb, "  rank imbalance   : %.3f (max/mean)\n", c.RankImbalance)
	fmt.Fprintf(&sb, "  bursts           : %d, mean %.0f bytes, inter-arrival %.4gs\n",
		c.Bursts, c.MeanBurstBytes, c.MeanInterArrival)
	fmt.Fprintf(&sb, "  aggregate bw     : %.4g B/s\n", c.AggregateBandwith)
	if c.NodesUsed > 0 {
		fmt.Fprintf(&sb, "  topology         : %d nodes, %d targets, %d links\n",
			c.NodesUsed, c.TargetsUsed, c.LinksUsed)
		fmt.Fprintf(&sb, "  node imbalance   : %.3f (max/mean)\n", c.NodeImbalance)
		fmt.Fprintf(&sb, "  link imbalance   : %.3f (max/mean)\n", c.LinkImbalance)
	}
	if c.BBBytes > 0 || c.SpillBytes > 0 || c.MaxBBFill > 0 {
		fmt.Fprintf(&sb, "  storage tiers    : bb %d B, gpfs spill %d B\n", c.BBBytes, c.SpillBytes)
		fmt.Fprintf(&sb, "  burst buffer     : peak fill %.3f, %d stall stragglers, stall %.4gs, drain tail %.4gs\n",
			c.MaxBBFill, c.StallRanks, c.StallSeconds, c.DrainSeconds)
	}
	if c.GatherSeconds > 0 {
		fmt.Fprintf(&sb, "  aggregation      : fan-in %d ranks -> %d writers, gather %.4gs, open %.4gs\n",
			c.Ranks, c.Writers, c.GatherSeconds, c.OpenSeconds)
	}
	if c.FaultWrites > 0 {
		fmt.Fprintf(&sb, "  faults           : %d writes touched, %d retries, fault time %.4gs\n",
			c.FaultWrites, c.Retries, c.FaultSeconds)
	}
	if len(c.SizeHistogram) > 0 {
		fmt.Fprintln(&sb, "  size histogram (log2 buckets):")
		buckets := make([]int, 0, len(c.SizeHistogram))
		for k := range c.SizeHistogram {
			buckets = append(buckets, k)
		}
		sort.Ints(buckets)
		for _, k := range buckets {
			fmt.Fprintf(&sb, "    2^%-2d..2^%-2d : %d\n", k, k+1, c.SizeHistogram[k])
		}
	}
	return sb.String()
}
