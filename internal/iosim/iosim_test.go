package iosim

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func modelFS() *FileSystem {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0 // deterministic timing for exact assertions
	return New(cfg, "")
}

func TestWriteRecordsLedger(t *testing.T) {
	fs := modelFS()
	if _, err := fs.Write(3, "a/b.dat", make([]byte, 1000), Labels{Step: 2, Level: 1}); err != nil {
		t.Fatal(err)
	}
	rec := fs.Ledger()
	if len(rec) != 1 {
		t.Fatalf("ledger len = %d", len(rec))
	}
	r := rec[0]
	if r.Rank != 3 || r.Path != "a/b.dat" || r.Bytes != 1000 || r.Labels.Step != 2 || r.Labels.Level != 1 {
		t.Errorf("record = %+v", r)
	}
	if r.Duration <= 0 {
		t.Error("duration must be positive")
	}
	if fs.TotalBytes() != 1000 {
		t.Errorf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestWriteSizeModelOnly(t *testing.T) {
	fs := modelFS()
	const big = int64(17e9) // 17 GB without allocating anything
	if _, err := fs.WriteSize(0, "huge.bin", big, Labels{}); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != big {
		t.Errorf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	fs := modelFS()
	if _, err := fs.WriteSize(0, "x", -1, Labels{}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestDurationModel(t *testing.T) {
	cfg := Config{
		Backend:            ModelOnly,
		AggregateBandwidth: 1e9,
		PerWriterBandwidth: 1e8,
		OpenLatency:        0.001,
		JitterSigma:        0,
	}
	fs := New(cfg, "")
	d, err := fs.Write(0, "f", make([]byte, 1e6), Labels{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.001 + 1e6/1e8
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("duration = %g, want %g", d, want)
	}
}

func TestContentionSharesAggregate(t *testing.T) {
	cfg := Config{
		AggregateBandwidth: 1e9,
		PerWriterBandwidth: 1e9, // per-writer cap above the fair share
		OpenLatency:        0,
		JitterSigma:        0,
	}
	fs := New(cfg, "")
	fs.BeginBurst(10) // fair share = 1e8
	d, _ := fs.Write(0, "f", make([]byte, 1e6), Labels{})
	if want := 1e6 / 1e8; math.Abs(d-want) > 1e-12 {
		t.Errorf("contended duration = %g, want %g", d, want)
	}
	fs.EndBurst()
	d, _ = fs.Write(0, "g", make([]byte, 1e6), Labels{})
	if want := 1e6 / 1e9; math.Abs(d-want) > 1e-12 {
		t.Errorf("uncontended duration = %g, want %g", d, want)
	}
}

func TestJitterDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0.3
	a := New(cfg, "")
	b := New(cfg, "")
	da, _ := a.Write(1, "p", make([]byte, 1e6), Labels{})
	db, _ := b.Write(1, "p", make([]byte, 1e6), Labels{})
	if da != db {
		t.Errorf("same seed gave different durations: %g vs %g", da, db)
	}
	cfg.Seed = 2
	c := New(cfg, "")
	dc, _ := c.Write(1, "p", make([]byte, 1e6), Labels{})
	if dc == da {
		t.Error("different seed gave identical duration (suspicious)")
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0.15
	fs := New(cfg, "")
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += fs.jitter(i, "x")
	}
	mean := sum / n
	// lognormal(0, 0.15) has mean exp(0.15^2/2) = 1.0113
	if mean < 0.95 || mean > 1.1 {
		t.Errorf("jitter mean = %g, expected near 1", mean)
	}
}

func TestRealDiskBackend(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Backend = RealDisk
	fs := New(cfg, dir)
	payload := []byte("plotfile contents")
	if _, err := fs.Write(0, "plt00000/Level_0/Cell_D_00000", payload, Labels{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "plt00000/Level_0/Cell_D_00000"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("file contents = %q", got)
	}
}

func TestMkdirRealDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Backend = RealDisk
	fs := New(cfg, dir)
	if err := fs.Mkdir(0, "plt00000/Level_1", Labels{Step: 3, Level: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "plt00000/Level_1"))
	if err != nil || !st.IsDir() {
		t.Fatalf("dir not created: %v", err)
	}
	// The metadata op appears in the ledger as a zero-byte Dir record
	// costing one open latency, so file-count audits can see directories.
	rec := fs.Ledger()
	if len(rec) != 1 {
		t.Fatalf("ledger len = %d, want 1", len(rec))
	}
	r := rec[0]
	if !r.Dir || r.Bytes != 0 || r.Path != "plt00000/Level_1" || r.Labels.Step != 3 || r.Labels.Level != 1 {
		t.Errorf("dir record = %+v", r)
	}
	if r.Duration != fs.Config().OpenLatency {
		t.Errorf("dir duration = %g, want open latency %g", r.Duration, fs.Config().OpenLatency)
	}
	if got := fs.Clock(0); got != fs.Config().OpenLatency {
		t.Errorf("clock after mkdir = %g", got)
	}
	if fs.TotalBytes() != 0 {
		t.Errorf("TotalBytes after mkdir = %d", fs.TotalBytes())
	}
}

func TestRankClocksIndependent(t *testing.T) {
	fs := modelFS()
	fs.Write(0, "a", make([]byte, 1e6), Labels{})
	fs.Write(0, "b", make([]byte, 1e6), Labels{})
	fs.Write(1, "c", make([]byte, 1e6), Labels{})
	rec := fs.Ledger()
	// Rank 0's second write starts after its first; rank 1 starts at 0.
	if rec[1].Start <= rec[0].Start {
		t.Error("rank 0 writes must be serial")
	}
	if rec[2].Start != 0 {
		t.Errorf("rank 1 first write starts at %g", rec[2].Start)
	}
}

func TestAdvanceClock(t *testing.T) {
	fs := modelFS()
	fs.AdvanceClock(2, 1.5)
	if got := fs.Clock(2); got != 1.5 {
		t.Errorf("clock = %g", got)
	}
	fs.Write(2, "x", make([]byte, 10), Labels{})
	rec := fs.Ledger()
	if rec[0].Start != 1.5 {
		t.Errorf("write start = %g, want 1.5", rec[0].Start)
	}
}

func TestAggregations(t *testing.T) {
	fs := modelFS()
	fs.WriteSize(0, "a", 100, Labels{Step: 0, Level: 0})
	fs.WriteSize(1, "b", 200, Labels{Step: 0, Level: 1})
	fs.WriteSize(0, "c", 400, Labels{Step: 1, Level: 0})
	rec := fs.Ledger()
	byStep := BytesByStep(rec)
	if byStep[0] != 300 || byStep[1] != 400 {
		t.Errorf("byStep = %v", byStep)
	}
	byLevel := BytesByLevel(rec)
	if byLevel[0] != 500 || byLevel[1] != 200 {
		t.Errorf("byLevel = %v", byLevel)
	}
	byRank := BytesByRank(rec)
	if byRank[0] != 500 || byRank[1] != 200 {
		t.Errorf("byRank = %v", byRank)
	}
	if keys := SortedKeys(byStep); len(keys) != 2 || keys[0] != 0 || keys[1] != 1 {
		t.Errorf("SortedKeys = %v", keys)
	}
}

func TestBurstStats(t *testing.T) {
	fs := modelFS()
	fs.WriteSize(0, "a", 1000, Labels{Step: 0})
	fs.WriteSize(1, "b", 3000, Labels{Step: 0})
	fs.WriteSize(0, "c", 500, Labels{Step: 5})
	stats := BurstStats(fs.Ledger())
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	if stats[0].Step != 0 || stats[0].Bytes != 4000 || stats[0].Files != 2 || stats[0].Participants != 2 {
		t.Errorf("burst 0 = %+v", stats[0])
	}
	if stats[0].WallSeconds < stats[0].MeanSeconds {
		t.Error("wall must be >= mean")
	}
	if stats[1].Step != 5 || stats[1].Bytes != 500 {
		t.Errorf("burst 1 = %+v", stats[1])
	}
	if stats[0].EffectiveBW <= 0 {
		t.Error("effective bandwidth must be positive")
	}
}

func TestReset(t *testing.T) {
	fs := modelFS()
	fs.WriteSize(0, "a", 10, Labels{})
	fs.Reset()
	if len(fs.Ledger()) != 0 || fs.TotalBytes() != 0 || fs.Clock(0) != 0 {
		t.Error("reset incomplete")
	}
}

func TestConcurrentWritesSafe(t *testing.T) {
	fs := modelFS()
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fs.WriteSize(rank, "f", 10, Labels{Step: i})
			}
		}(r)
	}
	wg.Wait()
	if got := len(fs.Ledger()); got != 16*50 {
		t.Errorf("ledger len = %d", got)
	}
	if fs.TotalBytes() != 16*50*10 {
		t.Errorf("TotalBytes = %d", fs.TotalBytes())
	}
}
