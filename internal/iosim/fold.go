package iosim

import "sort"

// BurstFold is the streaming form of BurstStats: a LedgerConsumer that
// accumulates per-step burst aggregates as records arrive and finalizes
// them on Stats(). BurstStats is literally this fold fed from a slice,
// so the two are identical by construction — the fold-vs-batch property
// pins rest on that, plus the stream-order contract in consumer.go
// (every per-step subsequence of the stream matches Ledger() order).
//
// Memory is O(steps × participating ranks) of aggregate state, not
// O(writes): the raw records are never held.
type BurstFold struct {
	bySteps map[int]*burstAcc
}

// burstAcc is one step's in-flight aggregation. Every float accumulator
// is keyed per rank or per link, never a bare running sum: per-key
// subsequences are order-identical between the stream and the batch
// ledger, and finalization walks keys in sorted order, so float addition
// order — hence the last ulp — is reproducible (the maprangefloat
// lesson).
type burstAcc struct {
	bytes     int64
	files     int
	dirs      int
	perRank   map[int]float64
	perLink   map[burstLink]float64
	nodeBytes map[int]int64

	bbBytes, spillBytes int64
	maxFill             float64
	stallPerRank        map[int]float64
	lastDrain           map[int]float64

	faultWrites  int
	retries      int
	faultPerRank map[int]float64
}

// NewBurstFold returns an empty fold.
func NewBurstFold() *BurstFold {
	return &BurstFold{bySteps: map[int]*burstAcc{}}
}

// Consume folds one record into its step's aggregates.
func (f *BurstFold) Consume(r WriteRecord) {
	a := f.bySteps[r.Labels.Step]
	if a == nil {
		a = &burstAcc{perRank: map[int]float64{}}
		f.bySteps[r.Labels.Step] = a
	}
	a.bytes += r.Bytes
	if r.Dir {
		a.dirs++
	} else {
		a.files++
	}
	a.perRank[r.Rank] += r.Duration
	if r.Node >= 0 {
		if a.perLink == nil {
			a.perLink = map[burstLink]float64{}
			a.nodeBytes = map[int]int64{}
		}
		a.nodeBytes[r.Node] += r.Bytes
		if !r.Dir {
			a.perLink[burstLink{r.Node, r.Target}] += r.Duration
		}
	}
	if r.Tier != "" {
		if a.stallPerRank == nil {
			a.stallPerRank = map[int]float64{}
			a.lastDrain = map[int]float64{}
		}
		switch r.Tier {
		case TierBB:
			a.bbBytes += r.Bytes
		case TierGPFS:
			a.spillBytes += r.Bytes
		}
		if r.BBFill > a.maxFill {
			a.maxFill = r.BBFill
		}
		a.stallPerRank[r.Rank] += r.StallSeconds
		a.lastDrain[r.Rank] = r.DrainSeconds // program order: last write wins
	}
	if r.Fault != "" {
		if a.faultPerRank == nil {
			a.faultPerRank = map[int]float64{}
		}
		a.faultWrites++
		a.retries += r.Retries
		a.faultPerRank[r.Rank] += r.FaultSeconds
	}
}

// Flush implements LedgerConsumer; the fold has no buffered state to
// release, so it is a no-op. Stats stays callable before and after.
func (f *BurstFold) Flush() {}

// Stats finalizes the per-step aggregates into sorted BurstStats. It
// does not consume the fold: calling it mid-run yields the bursts seen
// so far.
func (f *BurstFold) Stats() []BurstStat {
	steps := make([]int, 0, len(f.bySteps))
	for s := range f.bySteps {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	out := make([]BurstStat, 0, len(steps))
	for _, s := range steps {
		a := f.bySteps[s]
		// Float sums run in sorted key order: map iteration order is
		// random and float addition is not associative, so an unordered
		// sum would make equal ledgers produce last-ulp-different stats
		// (breaking byte-identical report pins).
		ranks := make([]int, 0, len(a.perRank))
		for r := range a.perRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		var wall, sum float64
		for _, r := range ranks {
			d := a.perRank[r]
			if d > wall {
				wall = d
			}
			sum += d
		}
		st := BurstStat{
			Step: s, Bytes: a.bytes, Files: a.files, Dirs: a.dirs,
			WallSeconds: wall, Participants: len(a.perRank),
		}
		if len(a.perRank) > 0 {
			st.MeanSeconds = sum / float64(len(a.perRank))
			for _, d := range a.perRank {
				if d > 1.5*st.MeanSeconds {
					st.Stragglers++
				}
			}
		}
		if wall > 0 {
			st.EffectiveBW = float64(a.bytes) / wall
		}
		if len(a.nodeBytes) > 0 {
			st.Nodes = len(a.nodeBytes)
			st.NodeSkew = bytesImbalance(a.nodeBytes)
		}
		if len(a.perLink) > 0 {
			st.Links = len(a.perLink)
			links := make([]burstLink, 0, len(a.perLink))
			for l := range a.perLink {
				links = append(links, l)
			}
			sort.Slice(links, func(i, j int) bool {
				if links[i].node != links[j].node {
					return links[i].node < links[j].node
				}
				return links[i].target < links[j].target
			})
			var linkSum float64
			for _, l := range links {
				d := a.perLink[l]
				if d > st.MaxLinkSeconds {
					st.MaxLinkSeconds = d
				}
				linkSum += d
			}
			st.MeanLinkSeconds = linkSum / float64(len(a.perLink))
			if st.MeanLinkSeconds > 0 {
				st.LinkSkew = st.MaxLinkSeconds / st.MeanLinkSeconds
			}
		}
		if a.stallPerRank != nil {
			st.BBBytes = a.bbBytes
			st.SpillBytes = a.spillBytes
			st.MaxBBFill = a.maxFill
			for _, stall := range a.stallPerRank {
				if stall > st.StallSeconds {
					st.StallSeconds = stall
				}
				if stall > 0 {
					st.StallRanks++
				}
			}
			for _, drain := range a.lastDrain {
				if drain > st.DrainSeconds {
					st.DrainSeconds = drain
				}
			}
		}
		if a.faultPerRank != nil {
			st.FaultWrites = a.faultWrites
			st.Retries = a.retries
			for _, f := range a.faultPerRank {
				if f > st.FaultSeconds {
					st.FaultSeconds = f
				}
			}
		}
		out = append(out, st)
	}
	return out
}
