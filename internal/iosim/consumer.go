package iosim

import "sync"

// Streaming ledger consumption (Design 10): instead of materializing the
// full WriteRecord ledger and reducing it after the run, consumers fold
// records as bursts complete. A 512-rank, many-step case holds millions
// of records; the folds hold per-step aggregates, so a campaign sweep's
// memory stays O(bursts), not O(writes). The related ADIOS2 work (Fredj
// et al., PAPERS.md) motivates exactly this shape: reduce output where it
// is produced instead of buffering it.
//
// Determinism contract: records are fed in ascending-rank order, each
// rank's records in its own program order, one drain per burst (EndBurst)
// plus a final drain at FlushConsumers. For writers that align bursts
// with steps (plotfile and MACSio both do — every record of a step is
// produced between one BeginBurst/EndBurst pair), every per-step
// subsequence of the stream is byte-identical to the same ledger's
// Ledger() order, which is what makes the fold-vs-batch property pins
// (fold_equiv tests) exact rather than approximate.

// LedgerConsumer folds the write stream as it is produced. Consume is
// called once per record, from the goroutine that ends the burst; Flush
// marks end-of-stream (FlushConsumers). Implementations need no internal
// locking: the FileSystem serializes all Consume and Flush calls under
// its drain mutex.
type LedgerConsumer interface {
	Consume(WriteRecord)
	Flush()
}

// Retention selects what happens to ledger records once they have been
// fed to the attached consumers.
type Retention int

const (
	// RetainAuto — the zero value — keeps the full ledger unless
	// consumers are attached: historical batch behavior for every
	// existing caller, O(bursts) memory as soon as a fold subscribes.
	RetainAuto Retention = iota
	// RetainAll always keeps the full ledger, even while streaming —
	// for callers that want both the folds and a post-hoc Ledger().
	RetainAll
	// RetainNone drops records at every drain point, with or without
	// consumers. TotalBytes and the rank clocks survive; Ledger()
	// returns only what has not yet been drained.
	RetainNone
)

// consumers is the FileSystem's streaming state. It lives in its own
// struct so iosim.go's hot path stays untouched: EndBurst makes one
// cheap no-consumer check before taking any lock.
type consumerState struct {
	mu   sync.Mutex // serializes drains; feed order is rank-major per drain
	subs []LedgerConsumer
	buf  []WriteRecord // reused drain copy buffer (fed outside shard locks)
}

// Attach subscribes consumers to the write stream. Attach before the
// first write: records produced earlier are still delivered (the first
// drain covers them), but the retention decision for RetainAuto is read
// at each drain, so attaching mid-run flips retention mid-ledger.
// Attach must not race with an in-flight burst.
func (fs *FileSystem) Attach(consumers ...LedgerConsumer) {
	fs.consumers.mu.Lock()
	fs.consumers.subs = append(fs.consumers.subs, consumers...)
	fs.consumers.mu.Unlock()
}

// retains reports whether drained records stay in the shards.
func (fs *FileSystem) retains(haveConsumers bool) bool {
	switch fs.cfg.RetainLedger {
	case RetainAll:
		return true
	case RetainNone:
		return false
	default:
		return !haveConsumers
	}
}

// drainConsumers feeds every record produced since the previous drain to
// the attached consumers, ascending rank, program order within a rank.
// Concurrent callers (MACSio's per-rank EndBurst) serialize on the drain
// mutex: the first caller drains everything, the rest find the
// watermarks already advanced. Records are copied out under the shard
// lock (append into a reused buffer — no size-unbounded make, per the
// lockedalloc contract) and fed with no shard lock held.
func (fs *FileSystem) drainConsumers() {
	cs := &fs.consumers
	cs.mu.Lock()
	defer cs.mu.Unlock()
	retain := fs.retains(len(cs.subs) > 0)
	if len(cs.subs) == 0 && retain {
		return // nothing to feed, nothing to drop
	}
	shards := *fs.shards.Load()
	for _, s := range shards {
		s.mu.Lock()
		cs.buf = append(cs.buf[:0], s.records[s.fed:]...)
		if retain {
			s.fed = len(s.records)
		} else {
			s.records = s.records[:0]
			s.fed = 0
		}
		s.mu.Unlock()
		for _, r := range cs.buf {
			for _, c := range cs.subs {
				c.Consume(r)
			}
		}
	}
}

// FlushConsumers drains any records not yet delivered (writes outside a
// burst, or after the last EndBurst) and signals end-of-stream to every
// attached consumer. Call it once, after the run's last write; like
// Reset, it must not race with in-flight writers.
func (fs *FileSystem) FlushConsumers() {
	fs.drainConsumers()
	fs.consumers.mu.Lock()
	defer fs.consumers.mu.Unlock()
	for _, c := range fs.consumers.subs {
		c.Flush()
	}
}
