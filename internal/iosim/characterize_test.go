package iosim

import (
	"math"
	"strings"
	"testing"
)

func TestCharacterizeEmpty(t *testing.T) {
	c := Characterize(nil)
	if c.TotalBytes != 0 || c.TotalWrites != 0 {
		t.Errorf("empty characterization = %+v", c)
	}
}

func TestCharacterizeBasics(t *testing.T) {
	fs := modelFS()
	fs.WriteSize(0, "a", 1024, Labels{Step: 0})
	fs.WriteSize(1, "b", 2048, Labels{Step: 0})
	fs.WriteSize(0, "c", 4096, Labels{Step: 10})
	c := Characterize(fs.Ledger())
	if c.TotalBytes != 7168 || c.TotalWrites != 3 || c.UniqueFiles != 3 || c.Ranks != 2 {
		t.Errorf("characterization = %+v", c)
	}
	if c.MinWrite != 1024 || c.MaxWrite != 4096 {
		t.Errorf("min/max = %d/%d", c.MinWrite, c.MaxWrite)
	}
	if c.P50Write != 2048 {
		t.Errorf("p50 = %d", c.P50Write)
	}
	// Rank 0 wrote 5120 of 7168 -> imbalance = 5120 / 3584.
	want := 5120.0 / 3584.0
	if math.Abs(c.RankImbalance-want) > 1e-12 {
		t.Errorf("imbalance = %g, want %g", c.RankImbalance, want)
	}
	if c.Bursts != 2 {
		t.Errorf("bursts = %d", c.Bursts)
	}
}

func TestCharacterizeSizeHistogram(t *testing.T) {
	fs := modelFS()
	fs.WriteSize(0, "a", 1, Labels{})    // bucket 0
	fs.WriteSize(0, "b", 2, Labels{})    // bucket 1
	fs.WriteSize(0, "c", 3, Labels{})    // bucket 1 (floor log2)
	fs.WriteSize(0, "d", 4096, Labels{}) // bucket 12
	c := Characterize(fs.Ledger())
	if c.SizeHistogram[0] != 1 || c.SizeHistogram[1] != 2 || c.SizeHistogram[12] != 1 {
		t.Errorf("histogram = %v", c.SizeHistogram)
	}
}

func TestSizeBucket(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := sizeBucket(n); got != want {
			t.Errorf("sizeBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCharacterizeInterArrival(t *testing.T) {
	fs := modelFS()
	// Three bursts separated by 1s of compute each.
	for step := 0; step < 3; step++ {
		fs.AdvanceClock(0, 1.0)
		fs.WriteSize(0, "f", 100, Labels{Step: step})
	}
	c := Characterize(fs.Ledger())
	if c.Bursts != 3 {
		t.Fatalf("bursts = %d", c.Bursts)
	}
	if c.MeanInterArrival < 1.0 {
		t.Errorf("inter-arrival = %g, want >= 1", c.MeanInterArrival)
	}
	if c.AggregateBandwith <= 0 {
		t.Error("bandwidth not computed")
	}
}

func TestCharacterizationRender(t *testing.T) {
	fs := modelFS()
	fs.WriteSize(0, "a", 1024, Labels{Step: 0})
	fs.WriteSize(1, "b", 2048, Labels{Step: 1})
	out := Characterize(fs.Ledger()).Render()
	for _, want := range []string{"total bytes", "write ops", "rank imbalance", "size histogram", "bursts"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
