// Package iosim models the parallel filesystem the paper's runs wrote to
// (Summit's GPFS-based Alpine). It provides a deterministic performance
// model — shared aggregate bandwidth with per-writer caps, per-open
// latency, seeded lognormal jitter, and an optional per-link topology —
// plus a ledger of every write so the analysis layer can reconstruct
// per-(step, level, rank) output sizes, which are the quantities the
// paper measures.
//
// # Backends
//
// Two backends are supported, with identical timing models; the backend
// only controls materialization:
//
//   - ModelOnly: no bytes touch the real disk; only the ledger and the
//     simulated clock advance. This is how Summit-scale cases run.
//   - RealDisk: data is also written to the host filesystem so plotfile
//     round-trip tests and external tooling can read it.
//
// # Sharded ledger architecture
//
// The FileSystem is written to concurrently by every simulated rank
// goroutine of an mpisim SPMD program, so its hot path is sharded by
// rank: each rank owns a private ledger segment and clock, guarded by a
// per-shard mutex that is uncontended in SPMD use (only rank r's
// goroutine writes through rank r). No global lock is taken per write.
// Burst contention is a bandwidth snapshot taken once at BeginBurst and
// read atomically by every write, instead of a shared-lock acquisition
// per write.
//
// # Determinism guarantee
//
// Ledger, TotalBytes and Clock merge or read the shards on demand. The
// merged ledger order is a contract callers may rely on: ascending rank,
// then each rank's own program order — independent of goroutine
// scheduling, worker-pool size, or wall-clock interleaving. Every
// quantity derived from the ledger (BurstStats, Characterize, the
// campaign figures) is therefore bit-reproducible across runs, and a
// parallel campaign's ledgers are byte-identical to a serial one's.
// Records carry Start timestamps for callers that want time ordering
// instead. Jitter is a pure function of (Seed, rank, path) — an inline
// FNV-1a hash, no shared RNG state — so it survives resharding and
// concurrency unchanged.
//
// # Per-link contention model
//
// By default every burst shares one aggregate bandwidth pool
// (Config.AggregateBandwidth split across BeginBurst writers, capped per
// writer). Setting Config.Topology refines this into a
// distribution-mapping-aware per-link model: ranks are packed onto
// compute nodes (block placement), each node's NIC bandwidth is split
// across the writers placed on it, and each storage target's (GPFS NSD
// server's) bandwidth is split across the writers fanned into it.
// BeginBurst snapshots one effective bandwidth per (rank, target) link,
// so two writers packed on one node contend even when the backend is
// idle, while spread placements don't. Ledger records gain (Node, Target)
// labels, and BurstStats/Characterize gain per-node and per-link skew
// aggregations. The zero Topology keeps the historical aggregate model
// byte-identical — durations, records, statistics and renderings are
// pinned by a property test. Topology.ExchangeTime prices rank-pair
// traffic (e.g. amr mesh-exchange volumes) on the same node/NIC
// vocabulary, so compute and I/O traffic share one contention model.
//
// # Storage-tier models
//
// All pricing goes through the pluggable StorageModel interface
// (storage.go), selected by Config.Storage name: "" / "gpfs" installs
// the aggregate/per-link models above, "bb" the node-local burst-buffer
// tier (per-node NVMe capacity and bandwidth split across the ranks
// packed on a node, asynchronous drain to a GPFS tier, stall at the
// drain rate when a partition fills mid-burst), and "bb+gpfs" the tiered
// composition whose drain is throttled by the GPFS tier's contention
// snapshot. Multi-tier records carry Tier / StallSeconds / DrainSeconds
// / BBFill fields, aggregated by BurstStats and Characterize into
// per-tier bytes, buffer occupancy, drain tails, and stall stragglers.
//
// The StorageModel contract extends the determinism guarantee above:
//
//   - A model may snapshot cross-rank contention state only at
//     BeginBurst (which must be idempotent for repeated calls with the
//     same writer count — MACSio's SPMD loop issues one per rank).
//   - Price runs with the writing rank's shard lock held; per-write
//     state must be a function of (rank, rank's clock, write size) so
//     ledgers are independent of goroutine interleaving. The burst
//     buffer achieves this by statically partitioning each node's
//     capacity, fill bandwidth, and drain bandwidth across its ranks.
//   - Retarget layers over tiers the same way it layers over the
//     configured TargetMap: the FileSystem validates and installs the
//     override map (between bursts only), then tells the model to drop
//     placement-dependent snapshots; the next BeginBurst re-snapshots
//     under the new placement. Tiered models forward the invalidation
//     to their backing GPFS tier, so a drain throttled by a contended
//     target follows the reorganized fan-in.
//
// The default "" / "gpfs" stack is property-test-pinned byte-identical
// (durations, ledger, BurstStats, Characterize, Render) to the
// pre-StorageModel FileSystem, with and without a Topology.
//
// # Open latency contract
//
// Config.OpenLatency is the default per-file open/metadata cost. A
// StorageModel may override it per write by returning a non-zero
// WriteCost.OpenSeconds (the burst-buffer tiers charge their own
// BurstBuffer.OpenLatency — NVMe metadata is cheaper than a GPFS
// metadata-server round trip); OpenSeconds == 0 means "use the config
// default", so models that predate the field keep their historical
// pricing. The open cost lands in WriteRecord.OpenSeconds, which is
// what lets the aggregation layer scale it and the report layer split
// it out of the duration.
//
// # Two-phase aggregation
//
// Config.Aggregation (an AggregationSpec: "all" or "K/node" aggregators,
// MIF or SIF layout, optional async staging) turns each burst into a
// two-phase collective. Ranks are packed node-by-node; each node block's
// first K ranks are aggregators. Member ranks ship their payload to
// their aggregator over the node-internal gather plane (GatherBandwidth
// split across the node's senders, snapshotted at BeginBurst) and pay no
// file open; aggregator ranks pay a layout-scaled open (MIF: A/n of the
// direct open storm; SIF: lock-serialized (1+2(A-1))/n) and write
// through the installed StorageModel stack. The async option stages the
// gathered payload through a per-aggregator fluid buffer
// (StagingCapacity, Tier "stage") that drains at the write rate and
// stalls to the backing tier when full — the same fill/drain machinery
// as the burst-buffer models. The aggregation plan is a pure function of
// (Topology, spec, writer count), so aggregated ledgers obey the same
// determinism guarantee; the "all" spec is the identity and is pinned
// byte-identical to the direct path across all storage stacks. The
// gather phase is priced here, not routed through mpisim collectives —
// it is a timing model, and keeping it out of the message schedule
// preserves the SPMD ledger pins.
//
// # Streaming ledger consumers
//
// Attach(consumer) registers a LedgerConsumer; every EndBurst drains
// the just-completed burst to the consumers — rank-ascending, each
// rank's records in its own program order — and, by default, drops the
// records from the shards. The stream-order contract is deliberately
// weaker than Ledger()'s whole-run order (the stream is burst-major,
// the merged ledger rank-major) but every per-step subsequence of the
// two is identical, which is exactly what the folds key on: BurstFold
// and CharacterizeFold accumulate per-step/per-rank state and finalize
// in sorted-key order, so a fold fed from the stream is bit-identical
// to the same fold fed from a materialized ledger. BurstStats and
// Characterize are literally those folds fed from a slice — one
// reduction code path, exercised both ways.
//
// Config.RetainLedger picks the retention policy: RetainAuto (the zero
// value) keeps records only while no consumer is attached, RetainAll
// keeps them regardless (consumers still stream; nothing is delivered
// twice), RetainNone always drops. TotalBytes and Clock survive
// dropping — they read per-shard counters, not records. Fold state is
// O(steps x ranks) aggregates instead of O(writes) records, which is
// the memory bound the campaign service layer depends on; the
// ledgerretain analyzer keeps Ledger() calls out of the streaming
// paths so the bound cannot silently regress.
package iosim
