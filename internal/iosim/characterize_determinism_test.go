package iosim

import "testing"

// TestBytesImbalanceOrderIndependent pins the fix for the amrio-vet
// maprangefloat finding in bytesImbalance: the old code summed float64
// in map iteration order, so {1<<53, 1, 1} produced either 2^53 or
// 2^53+2 as the sum depending on which order the ranges happened to
// visit (1<<53 + 1 == 1<<53 in float64). With int64 accumulation the
// sum is exact and the skew is identical on every run.
func TestBytesImbalanceOrderIndependent(t *testing.T) {
	m := map[int]int64{0: 1 << 53, 1: 1, 2: 1}
	sum := int64(1<<53 + 2)
	want := float64(int64(1<<53)) / (float64(sum) / 3)

	for i := 0; i < 200; i++ {
		if got := bytesImbalance(m); got != want {
			t.Fatalf("run %d: bytesImbalance = %v, want %v (order-dependent float sum?)", i, got, want)
		}
	}

	// Make sure the pin actually discriminates: a runtime float sum that
	// visits 1<<53 first absorbs both +1s (they are below one ulp), so
	// that iteration order yields a different skew than the exact sum.
	fsum := float64(int64(1 << 53))
	fsum += 1
	fsum += 1
	lossy := float64(int64(1<<53)) / (fsum / 3)
	if lossy == want {
		t.Fatal("test values do not discriminate float summation orders")
	}
}
