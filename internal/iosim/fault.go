package iosim

// The fault-injection seam. The paper prices checkpoint bursts because
// checkpoints exist to survive failures, so the filesystem model carries
// a hook for deterministic failure injection: a FaultInjector (implemented
// by internal/faults, installed through Config.Faults) is consulted on the
// write path instead of the raw StorageModel and may charge retry and
// backlog-replay time, degrade link bandwidth, and fail writes over to
// healthy storage targets. A nil injector keeps the write path — and every
// ledger byte — identical to the fault-free model (property-test-pinned by
// internal/faults).
//
// Determinism contract: the injector is called under rank's shard lock
// with rank's own simulated clock, and must resolve its schedule purely
// against (rank, start, the BeginBurst snapshot) — never wall clock and
// never another rank's progress — so ledgers and fault-event streams are
// reproducible under any goroutine interleaving.

// FaultEvent records one injected-fault action taken on the write path.
// Events live beside the write ledger (FileSystem.FaultEvents) with the
// same deterministic merge order: ascending rank, then program order.
type FaultEvent struct {
	// Kind is the fault kind that fired (internal/faults names:
	// "target-outage", "nic-degrade", "bb-loss").
	Kind string
	Rank int
	// Node and Target are the affected write's link labels (-1 when the
	// aggregate model carries no placement).
	Node   int
	Target int
	// Start is rank's simulated clock when the affected write began.
	Start float64
	// Seconds is the extra time the fault added to the write (retry
	// backoff/timeouts, backlog replay, slowdown).
	Seconds float64
	// Retries counts failed attempts before the write went through.
	Retries int
	// FailoverTarget is the storage target the write was redirected to
	// after exhausting retries (-1 when the write kept its target).
	FailoverTarget int
	// Mitigated marks an event a resilience policy absorbed: the fault
	// matched the write, but an installed circuit breaker (Quarantiner)
	// made it fail over immediately instead of paying the retry storm,
	// so Seconds is 0 and Retries is 0. Always false without a policy
	// engine, keeping PR-6 event streams byte-identical.
	Mitigated bool
}

// FaultInjector prices writes on behalf of the installed StorageModel
// when fault injection is enabled. Implementations live in internal/faults
// and are installed via Config.Faults; nil disables injection with zero
// overhead. The SPMD calling contract matches StorageModel's: BeginBurst
// may be invoked once per rank per burst, Price runs concurrently from
// many rank goroutines (under rank's shard lock), EndBurst/Reset only run
// between bursts.
type FaultInjector interface {
	// BeginBurst mirrors StorageModel.BeginBurst (called right after it).
	BeginBurst(n int)
	// EndBurst mirrors StorageModel.EndBurst.
	EndBurst()
	// Price prices one data transfer by rank starting at start on its
	// simulated clock, moving over the (node, target) link the topology
	// resolved (-1 labels under the aggregate model). model is the
	// installed storage stack: the fault-free path must delegate to
	// model.Price unchanged. When a fault touched the write, the returned
	// event describes it and faulted is true; a FailoverTarget >= 0
	// relabels the ledger record's Target.
	Price(model StorageModel, rank int, start float64, nbytes int64, node, target int) (cost WriteCost, ev FaultEvent, faulted bool)
	// Reset restores the post-construction zero state (FileSystem.Reset).
	Reset()
}

// Quarantiner is the optional FaultInjector extension a between-burst
// resilience policy engine (internal/resilience) uses to install target
// circuit breakers: writes routed to a quarantined target skip the retry
// storm and fail over immediately, labeled WriteRecord.Mitigated and
// FaultEvent.Mitigated. until maps target index → the simulated second
// the breaker closes again; an empty or nil map clears every breaker.
//
// Determinism contract: Quarantine must only be called between bursts
// (like Retarget and Reset) — installing a breaker while writes are in
// flight would make which writes it covers depend on goroutine
// scheduling. The installed map is consulted from the Price hot path, so
// implementations publish it atomically.
type Quarantiner interface {
	Quarantine(until map[int]float64)
}

// BufferFaults is the optional StorageModel extension the fault injector
// uses to model burst-buffer partition loss. The "bb"/"bb+gpfs" stacks
// implement it; single-tier stacks do not, so buffer-loss events are
// no-ops against them. Both methods follow the Price locking contract:
// they run under rank's shard lock and touch only rank-private state.
type BufferFaults interface {
	// DropBuffer discards rank's buffered bytes as of start on rank's
	// clock (the partition's contents are lost), returning the seconds
	// needed to replay the lost backlog through the backing tier.
	DropBuffer(rank int, start float64) float64
	// FallbackBandwidth is the backing-tier stream bandwidth rank writes
	// at while its partition is out.
	FallbackBandwidth(rank int) float64
}

// price runs one transfer through the fault seam when an injector is
// installed, recording the fault event on rank's shard; the nil-injector
// path is exactly the historical model call. Callers hold s.mu.
func (fs *FileSystem) price(s *shard, rank int, start float64, nbytes int64, node int, target *int) WriteCost {
	inj := fs.cfg.Faults
	if inj == nil {
		return fs.model.Price(rank, start, nbytes)
	}
	cost, ev, faulted := inj.Price(fs.model, rank, start, nbytes, node, *target)
	if faulted {
		if ev.FailoverTarget >= 0 {
			*target = ev.FailoverTarget
		}
		s.faults = append(s.faults, ev)
	}
	return cost
}

// FaultEvents returns a merged copy of all injected-fault events, in the
// same deterministic order as Ledger: ascending rank, then each rank's
// program order. Empty (never nil-vs-non-nil observable) without an
// installed injector.
func (fs *FileSystem) FaultEvents() []FaultEvent {
	shards := *fs.shards.Load()
	var total int
	for _, s := range shards {
		s.mu.Lock()
		total += len(s.faults)
		s.mu.Unlock()
	}
	out := make([]FaultEvent, 0, total)
	for _, s := range shards {
		s.mu.Lock()
		out = append(out, s.faults...)
		s.mu.Unlock()
	}
	return out
}
