package campaign

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"amrproxyio/internal/iosim"
)

func memoCase(name string, plotInt int) Case {
	return Case{
		Name: name, NCell: 32, MaxLevel: 0, MaxStep: 2, PlotInt: plotInt,
		CFL: 0.5, NProcs: 2,
	}
}

func TestExecutorHitMissAndEquivalence(t *testing.T) {
	e := NewExecutor(8, false)
	c := memoCase("m1", 1)

	cold, err := e.RunCase(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first run must be a miss")
	}
	if cold.Fingerprint == "" || len(cold.Bursts) == 0 || cold.Profile.TotalWrites == 0 {
		t.Fatalf("miss output missing streamed folds: %+v", cold)
	}

	// Same config under a different row label: hit, same physics, the
	// caller's name on the row.
	c2 := c
	c2.Name = "m1-renamed"
	warm, err := e.RunCase(c2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("identical configuration must hit the cache")
	}
	if warm.Result.Case.Name != "m1-renamed" {
		t.Errorf("hit kept the stored row label %q", warm.Result.Case.Name)
	}
	if !reflect.DeepEqual(warm.Bursts, cold.Bursts) || !reflect.DeepEqual(warm.Profile, cold.Profile) {
		t.Error("cached output physics diverged from the computed output")
	}

	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", st.HitRate())
	}
}

func TestExecutorMemoizedMatchesUncached(t *testing.T) {
	// The memoized path (streaming folds, dropped ledger) must produce
	// the same Result physics as the plain uncached Run.
	c := memoCase("m-eq", 1)
	e := NewExecutor(4, false)
	out, err := e.RunCase(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(c, iosim.New(c.FSConfig(false), ""))
	if err != nil {
		t.Fatal(err)
	}
	if plain.NPlots == 0 {
		t.Fatal("plain run produced no plots")
	}
	if out.Result.NPlots != plain.NPlots || out.Result.SimTime != plain.SimTime ||
		out.Result.TotalBytes() != plain.TotalBytes() {
		t.Errorf("memoized physics diverged: %+v vs %+v", out.Result, plain)
	}
}

func TestExecutorSingleFlight(t *testing.T) {
	// N concurrent identical requests: one simulation, N-1 joiners.
	e := NewExecutor(4, false)
	c := memoCase("sf", 1)
	const n = 8
	outs := make([]CaseOutput, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := e.RunCase(c, 0)
			if err != nil {
				t.Error(err)
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 simulation for %d concurrent requests", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("hits = %d, want %d", st.Hits, n-1)
	}
	cached := 0
	for _, o := range outs {
		if o.Cached {
			cached++
		}
	}
	if cached != n-1 {
		t.Errorf("%d outputs marked Cached, want %d", cached, n-1)
	}
}

func TestExecutorLRUEviction(t *testing.T) {
	e := NewExecutor(2, false)
	a := memoCase("a", 1)
	b := memoCase("b", 2)
	c := memoCase("c", 1)
	c.MaxStep = 4 // distinct from a
	for _, cs := range []Case{a, b} {
		if _, err := e.RunCase(cs, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is the LRU victim when c arrives.
	if _, err := e.RunCase(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCase(c, 0); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Size != 2 {
		t.Fatalf("cache size = %d, want cap 2", st.Size)
	}
	// a still cached, b evicted.
	if out, _ := e.RunCase(a, 0); !out.Cached {
		t.Error("recently-used entry was evicted")
	}
	if out, _ := e.RunCase(b, 0); out.Cached {
		t.Error("LRU victim was still cached")
	}
}

func TestExecutorCollisionGuard(t *testing.T) {
	e := NewExecutor(4, false)
	e.digest = func(Case, bool) (string, error) { return strings.Repeat("f0", 32), nil }
	a := memoCase("a", 1)
	b := memoCase("b", 2) // different config, same injected digest
	if _, err := e.RunCase(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCase(b, 0); err == nil || !strings.Contains(err.Error(), "fingerprint collision") {
		t.Errorf("colliding digest served the wrong result: err = %v", err)
	}
	// The equivalent case still hits despite the degenerate digest.
	a2 := a
	a2.Name = "a2"
	out, err := e.RunCase(a2, 0)
	if err != nil || !out.Cached {
		t.Errorf("equivalent case under colliding digest: out.Cached=%v err=%v", out.Cached, err)
	}
}

func TestExecutorErrorsNotCached(t *testing.T) {
	e := NewExecutor(4, false)
	bad := memoCase("bad", 1)
	bad.Engine = "bogus"
	if _, err := e.RunCase(bad, 0); err == nil {
		t.Fatal("invalid case accepted")
	}
	st := e.Stats()
	if st.Size != 0 {
		t.Errorf("error result was cached: size = %d", st.Size)
	}
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("validation failure counted as a lookup: %+v", st)
	}
}

func TestExecutorTimeoutAbandonAccounting(t *testing.T) {
	e := NewExecutor(4, false)
	// Same shape as the abandon_test case: outlives a 1 ms timeout by
	// orders of magnitude, finishes (and drains) within the test.
	slow := Case{
		Name: "slow", NCell: 4096, MaxLevel: 2, MaxStep: 40, PlotInt: 2,
		CFL: 0.5, NProcs: 256, Nodes: 64, Engine: EngineSurrogate,
		ComputeSeconds: 0.1,
	}
	out, err := e.RunCase(slow, time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if !out.Result.Abandoned {
		t.Error("timeout output not marked Abandoned")
	}
	st := e.Stats()
	if st.Abandoned != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 abandoned / 1 error", st)
	}
	if st.Size != 0 {
		t.Error("abandoned result was cached")
	}
	// The abandoned goroutine drains and the global gauge returns to 0.
	deadline := time.Now().Add(30 * time.Second)
	for AbandonedInFlight() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := AbandonedInFlight(); got != 0 {
		t.Errorf("AbandonedInFlight = %d after drain, want 0", got)
	}
}

func TestCheckBatch(t *testing.T) {
	a := memoCase("a", 1)
	dupExact := a // same name, same config: allowed (cache demo case)
	conflict := a
	conflict.MaxStep = 6 // same name, different config: rejected
	renamed := conflict
	renamed.Name = "a-prime" // different name: allowed

	if err := CheckBatch([]Case{a, dupExact, renamed}, false); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	err := CheckBatch([]Case{a, conflict}, false)
	if err == nil || !strings.Contains(err.Error(), `duplicate name "a"`) {
		t.Errorf("conflicting batch err = %v", err)
	}
	bad := a
	bad.Engine = "bogus"
	if err := CheckBatch([]Case{bad}, false); err == nil {
		t.Error("invalid case passed CheckBatch")
	}
}

func TestRunAllWithExecutorAndOutputs(t *testing.T) {
	e := NewExecutor(8, false)
	a := memoCase("a", 1)
	dup := a
	dup.Name = "a-dup"
	b := memoCase("b", 2)
	cases := []Case{a, dup, b}

	var mu sync.Mutex
	seen := map[int]CaseOutput{}
	results, err := RunAll(cases, 2, nil,
		WithExecutor(e),
		WithOutputs(func(i int, out CaseOutput, err error) {
			if err != nil {
				t.Error(err)
			}
			mu.Lock()
			seen[i] = out
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(seen) != 3 {
		t.Fatalf("results = %d, hook calls = %d, want 3 each", len(results), len(seen))
	}
	for i, r := range results {
		if r.NPlots == 0 {
			t.Errorf("case %d produced no plots: %+v", i, r)
		}
		if r.Case.Name != cases[i].Name {
			t.Errorf("case %d result labeled %q", i, r.Case.Name)
		}
		if !reflect.DeepEqual(seen[i].Result, r) {
			t.Errorf("hook output %d diverged from returned result", i)
		}
	}
	st := e.Stats()
	// a and a-dup share a fingerprint: 2 simulations total (a/a-dup
	// de-duplicated via cache or single-flight), 1 hit.
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses / 1 hit", st)
	}
}
