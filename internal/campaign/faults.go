package campaign

import (
	"fmt"

	"amrproxyio/internal/faults"
)

// Fault-injection experiments: a Case carries a faults.Plan (JSON
// round-tripped like the engine, dist, and storage), SweepFaults expands
// a case list into fault-free/faulted pairs, and report.ResilienceReport
// renders the recovery-cost comparison. The sweep composes with
// SweepDist and SweepStorage the same way those compose with each other.

// FaultVariant names one member of a fault sweep.
type FaultVariant struct {
	// Name suffixes the sweep member ("<case>_<name>").
	Name string
	// Plan is the schedule the member runs under; nil is fault-free.
	Plan *faults.Plan
}

// DefaultFaultVariants pairs each case with its fault-free baseline and
// the faults.DefaultPlan schedule — the smallest sweep that shows a
// resilience delta.
func DefaultFaultVariants() []FaultVariant {
	return []FaultVariant{
		{Name: "nofault", Plan: nil},
		{Name: "faults", Plan: faults.DefaultPlan()},
	}
}

// SweepFaults expands cases into the fault cross-product: every case
// times every variant, named "<case>_<variant>". No explicit variants
// means DefaultFaultVariants. Like SweepDist and SweepStorage, the
// expansion preserves case order — variants vary fastest — and the
// three sweeps compose (SweepFaults(SweepStorage(SweepDist(cases))))
// into the full strategy × tier × fault matrix.
func SweepFaults(cases []Case, variants ...FaultVariant) []Case {
	if len(variants) == 0 {
		variants = DefaultFaultVariants()
	}
	out := make([]Case, 0, len(cases)*len(variants))
	for _, c := range cases {
		for _, v := range variants {
			m := c
			m.Faults = v.Plan
			m.Name = SweepFaultsName(c.Name, v.Name)
			out = append(out, m)
		}
	}
	return out
}

// SweepFaultsName is the name SweepFaults gives the (base case, variant)
// member of a sweep, mirroring SweepName and SweepStorageName.
func SweepFaultsName(base, variant string) string {
	if variant == "" {
		variant = "nofault"
	}
	return fmt.Sprintf("%s_%s", base, variant)
}
