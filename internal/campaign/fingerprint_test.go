package campaign

import (
	"reflect"
	"testing"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/resilience"
)

func mustFP(t *testing.T, c Case, topo bool) string {
	t.Helper()
	fp, err := Fingerprint(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestFingerprintCompleteness is the stale-cache guard: it walks every
// field of Case by reflection, perturbs it, and requires the
// fingerprint to change — except Name, which is a row label and must
// NOT change it. Adding a Case field that dodges the JSON canon
// (json:"-", or a kind this test cannot perturb) fails here until the
// field is folded into the fingerprint and this test deliberately.
func TestFingerprintCompleteness(t *testing.T) {
	base := Case{
		Name: "fp", NCell: 64, MaxLevel: 1, MaxStep: 4, PlotInt: 2,
		CFL: 0.5, NProcs: 4, Nodes: 2,
	}
	baseFP := mustFP(t, base, false)

	// Perturbation values for the named struct-pointer fields; a new
	// pointer field needs an entry here (and that's the point).
	pointerPerturb := map[string]any{
		"Faults":      &faults.Plan{MTBFSeconds: 100, Seed: 3},
		"Mitigate":    &resilience.Policy{AdaptiveCheckpoint: true},
		"Aggregation": &iosim.AggregationSpec{Aggregators: "1/node"},
	}

	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i)
		if tag := field.Tag.Get("json"); tag == "-" {
			t.Errorf("field %s is excluded from the JSON canon; fold it into Fingerprint and update this test", field.Name)
			continue
		}
		c := base
		v := reflect.ValueOf(&c).Elem().Field(i)
		switch field.Type.Kind() {
		case reflect.String:
			v.SetString("perturbed-value")
		case reflect.Int:
			v.SetInt(v.Int() + 7)
		case reflect.Float64:
			v.SetFloat(v.Float() + 0.125)
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Ptr:
			p, ok := pointerPerturb[field.Name]
			if !ok {
				t.Errorf("no perturbation for pointer field %s; add one so the fingerprint guard covers it", field.Name)
				continue
			}
			v.Set(reflect.ValueOf(p))
		default:
			t.Errorf("field %s has kind %s this guard cannot perturb; extend the test", field.Name, field.Type.Kind())
			continue
		}
		got := mustFP(t, c, false)
		if field.Name == "Name" {
			if got != baseFP {
				t.Errorf("Name must not enter the fingerprint: %s != %s", got, baseFP)
			}
			continue
		}
		if got == baseFP {
			t.Errorf("perturbing %s did not change the fingerprint — stale-cache hazard", field.Name)
		}
	}
}

func TestFingerprintNormalization(t *testing.T) {
	base := Case{Name: "a", NCell: 64, MaxStep: 4, PlotInt: 2, CFL: 0.5, NProcs: 4}
	fp := mustFP(t, base, false)

	// The documented equivalences share an entry.
	auto := base
	auto.Engine = EngineAuto
	if got := mustFP(t, auto, false); got != fp {
		t.Error("EngineAuto and \"\" must fingerprint identically")
	}
	explicit := base
	explicit.Engine = EngineHydro // NCell 64 auto-resolves to hydro
	if got := mustFP(t, explicit, false); got != fp {
		t.Error("auto-resolved and explicit hydro must fingerprint identically")
	}
	knap := base
	knap.Dist = DistKnapsack
	if got := mustFP(t, knap, false); got != fp {
		t.Error("DistDefault and DistKnapsack must fingerprint identically")
	}
	gpfs := base
	gpfs.Storage = StorageGPFS
	if got := mustFP(t, gpfs, false); got != fp {
		t.Error("StorageDefault and StorageGPFS must fingerprint identically")
	}

	// The topology salt separates aggregate and per-link runs.
	if got := mustFP(t, base, true); got == fp {
		t.Error("withTopology must change the fingerprint")
	}
	// Above the hydro limit, auto resolves to the surrogate: different run.
	big := base
	big.NCell = HydroCellLimit * 2
	if got := mustFP(t, big, false); got == fp {
		t.Error("different NCell must change the fingerprint")
	}
}
