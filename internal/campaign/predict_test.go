package campaign

import (
	"math"
	"testing"

	"amrproxyio/internal/core"
)

// TestPredictorOnRealCampaignRuns trains the size predictor on actual
// campaign executions and checks it interpolates a held-out configuration
// within a factor-level tolerance (the paper's autotuning use case).
func TestPredictorOnRealCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign predictor training skipped in -short")
	}
	train := []Case{
		{Name: "p32a", NCell: 32, MaxLevel: 2, MaxStep: 200, PlotInt: 20, CFL: 0.3, NProcs: 2, Engine: EngineHydro},
		{Name: "p32b", NCell: 32, MaxLevel: 3, MaxStep: 200, PlotInt: 20, CFL: 0.5, NProcs: 2, Engine: EngineHydro},
		{Name: "p64a", NCell: 64, MaxLevel: 2, MaxStep: 200, PlotInt: 20, CFL: 0.3, NProcs: 4, Engine: EngineHydro},
		{Name: "p64b", NCell: 64, MaxLevel: 3, MaxStep: 200, PlotInt: 20, CFL: 0.6, NProcs: 4, Engine: EngineHydro},
		{Name: "p64c", NCell: 64, MaxLevel: 2, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 4, Engine: EngineHydro},
		{Name: "p96a", NCell: 96, MaxLevel: 2, MaxStep: 200, PlotInt: 20, CFL: 0.4, NProcs: 4, Engine: EngineHydro},
		{Name: "p96b", NCell: 96, MaxLevel: 3, MaxStep: 200, PlotInt: 10, CFL: 0.5, NProcs: 4, Engine: EngineHydro},
	}
	var obs []core.RunObservation
	for _, c := range train {
		res, err := Run(c, modelFS())
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		obs = append(obs, res.Observation())
	}
	p, err := core.FitSizePredictor(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.InSampleMAPE > 40 {
		t.Errorf("in-sample MAPE = %.1f%%", p.InSampleMAPE)
	}

	// Held-out configuration inside the training envelope.
	held := Case{Name: "held", NCell: 64, MaxLevel: 3, MaxStep: 200, PlotInt: 20, CFL: 0.4, NProcs: 4, Engine: EngineHydro}
	res, err := Run(held, modelFS())
	if err != nil {
		t.Fatal(err)
	}
	o := res.Observation()
	pred := p.PredictBytes(o)
	rel := math.Abs(pred-float64(o.TotalBytes)) / float64(o.TotalBytes)
	if rel > 0.6 {
		t.Errorf("held-out relative error = %.2f (pred %g vs actual %d)", rel, pred, o.TotalBytes)
	}
}
