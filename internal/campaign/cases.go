package campaign

import "fmt"

// The paper's named pivot cases.

// Case4 is the paper's pivot: 512x512 L0 on 2 Summit nodes / 32 tasks,
// 20 plot outputs. Figs. 6, 7, 9 and 10 are built from this case and its
// cfl/max_level variants.
func Case4() Case {
	return Case{
		Name: "case4", NCell: 512, MaxLevel: 4, MaxStep: 400, PlotInt: 20,
		CFL: 0.4, NProcs: 32, Nodes: 2, Engine: EngineAuto,
	}
}

// Case4Variant returns the Fig. 10 pivot matrix member for a CFL number
// and max_level.
func Case4Variant(cfl float64, maxLevel int) Case {
	c := Case4()
	c.Name = fmt.Sprintf("case4_cfl%d_maxl%d", int(cfl*10), maxLevel)
	c.CFL = cfl
	c.MaxLevel = maxLevel
	return c
}

// Case27 is the paper's per-task study: 1024x1024 L0 on 64 ranks with 4
// mesh levels and 5 output steps (Fig. 8).
func Case27() Case {
	return Case{
		Name: "case27", NCell: 1024, MaxLevel: 3, MaxStep: 5, PlotInt: 1,
		CFL: 0.5, NProcs: 64, Nodes: 4, Engine: EngineAuto,
	}
}

// LargeCase is the paper's Fig. 11 large run: 8192x8192 L0 on 64 Summit
// nodes, producing ~50 output steps. The step budget runs past the
// init_shrink spin-up so the front actually moves and the refined levels
// produce the small, discrete regrid jumps Fig. 11 shows on top of an
// L0-dominated, nearly-flat series.
func LargeCase() Case {
	return Case{
		Name: "case_large_8192", NCell: 8192, MaxLevel: 2, MaxStep: 200, PlotInt: 4,
		CFL: 0.5, NProcs: 1024, Nodes: 64, Engine: EngineSurrogate,
	}
}

// PaperCampaign returns the 47-run Table III matrix. Sizes, step counts,
// plot intervals, CFL numbers, level counts, and rank counts all stay
// inside the published ranges (n_cell 32²..131072², max_step 40..1000,
// plot_int 1..20, cfl 0.3..0.6, max_level 2..4, nprocs 1..1024, nodes
// 1..512).
func PaperCampaign() []Case {
	var cases []Case
	add := func(c Case) {
		c.Name = fmt.Sprintf("case%d", len(cases)+1)
		cases = append(cases, c)
	}

	// Small meshes: many steps, frequent plots, few ranks (cases 1-12).
	for _, n := range []int{32, 64} {
		for _, cfl := range []float64{0.3, 0.5, 0.6} {
			for _, ml := range []int{2, 3} {
				add(Case{NCell: n, MaxLevel: ml, MaxStep: 1000, PlotInt: 20,
					CFL: cfl, NProcs: maxi(1, n/32), Nodes: 1, Engine: EngineAuto})
			}
		}
	}
	// Mid meshes 128-512 (cases 13-30).
	for _, n := range []int{128, 256, 512} {
		for _, cfl := range []float64{0.3, 0.4, 0.6} {
			for _, ml := range []int{2, 4} {
				add(Case{NCell: n, MaxLevel: ml, MaxStep: 400, PlotInt: 20,
					CFL: cfl, NProcs: n / 16, Nodes: maxi(1, n/256), Engine: EngineAuto})
			}
		}
	}
	// Large meshes (cases 31-42): fewer steps, more ranks.
	for _, n := range []int{1024, 2048, 4096, 8192} {
		for _, cfl := range []float64{0.4, 0.5} {
			add(Case{NCell: n, MaxLevel: 3, MaxStep: 100, PlotInt: 10,
				CFL: cfl, NProcs: mini(1024, n/16), Nodes: mini(512, n/64), Engine: EngineAuto})
		}
		add(Case{NCell: n, MaxLevel: 2, MaxStep: 40, PlotInt: 1,
			CFL: 0.5, NProcs: mini(1024, n/16), Nodes: mini(512, n/64), Engine: EngineAuto})
	}
	// Summit-scale (cases 43-47): the paper's largest configurations.
	add(Case{NCell: 16384, MaxLevel: 2, MaxStep: 40, PlotInt: 5,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: EngineSurrogate})
	add(Case{NCell: 32768, MaxLevel: 2, MaxStep: 40, PlotInt: 5,
		CFL: 0.5, NProcs: 1024, Nodes: 256, Engine: EngineSurrogate})
	add(Case{NCell: 65536, MaxLevel: 2, MaxStep: 40, PlotInt: 10,
		CFL: 0.5, NProcs: 1024, Nodes: 512, Engine: EngineSurrogate})
	add(Case{NCell: 131072, MaxLevel: 2, MaxStep: 40, PlotInt: 20,
		CFL: 0.5, NProcs: 1024, Nodes: 512, Engine: EngineSurrogate})
	add(Case{NCell: 131072, MaxLevel: 2, MaxStep: 40, PlotInt: 10,
		CFL: 0.3, NProcs: 1024, Nodes: 512, Engine: EngineSurrogate})
	return cases
}

// QuickCampaign returns the campaign scaled for fast execution (used by
// tests and default bench runs); the paper-scale campaign remains
// available through PaperCampaign.
func QuickCampaign() []Case {
	full := PaperCampaign()
	out := make([]Case, 0, len(full))
	for _, c := range full {
		q := c.Scaled(8)
		// Keep summit-scale cases on the surrogate but shrink their box
		// bookkeeping cost.
		if q.NCell > 4096 {
			q.NCell = 4096
		}
		out = append(out, q)
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
