package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

func TestCaseDistJSONRoundTrip(t *testing.T) {
	c := Case4()
	c.Dist = DistSFC
	c.Remap = true
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"dist":"sfc"`) || !strings.Contains(string(data), `"remap":true`) {
		t.Fatalf("dist/remap not serialized: %s", data)
	}
	var back Case
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip: %+v != %+v", back, c)
	}
	// Legacy results (no dist key) load as the default strategy.
	var legacy Case
	if err := json.Unmarshal([]byte(`{"name":"old","n_cell":64}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Dist != DistDefault {
		t.Errorf("legacy dist = %q, want default", legacy.Dist)
	}
}

func TestRunRejectsUnknownDist(t *testing.T) {
	c := Case{Name: "bad_dist", NCell: 32, MaxStep: 1, PlotInt: 1,
		CFL: 0.5, NProcs: 2, Engine: EngineHydro, Dist: "zorder"}
	_, err := Run(c, modelFS())
	if err == nil || !strings.Contains(err.Error(), "zorder") {
		t.Fatalf("unknown dist error = %v, want name in message", err)
	}
}

func TestParseDist(t *testing.T) {
	for _, name := range []string{"roundrobin", "knapsack", "sfc"} {
		d, err := ParseDist(name)
		if err != nil || string(d) != name {
			t.Errorf("ParseDist(%q) = %q, %v", name, d, err)
		}
	}
	if d, err := ParseDist(""); err != nil || d != DistDefault {
		t.Errorf("ParseDist(\"\") = %q, %v", d, err)
	}
	if _, err := ParseDist("hilbert"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSweepDist(t *testing.T) {
	base := []Case{Case4(), Case27()}
	out := SweepDist(base)
	if len(out) != len(base)*3 {
		t.Fatalf("sweep length = %d, want %d", len(out), len(base)*3)
	}
	// Strategies vary fastest, names carry the suffix, topology shape and
	// everything else is preserved.
	if out[0].Name != "case4_roundrobin" || out[1].Name != "case4_knapsack" || out[2].Name != "case4_sfc" {
		t.Fatalf("names = %s, %s, %s", out[0].Name, out[1].Name, out[2].Name)
	}
	for i, c := range out {
		b := base[i/3]
		if c.Nodes != b.Nodes || c.NProcs != b.NProcs || c.NCell != b.NCell {
			t.Fatalf("case %d lost its shape: %+v", i, c)
		}
		if c.Dist != AllDists()[i%3] {
			t.Fatalf("case %d dist = %q", i, c.Dist)
		}
	}
	// Explicit subset.
	two := SweepDist(base[:1], DistKnapsack, DistSFC)
	if len(two) != 2 || two[0].Dist != DistKnapsack || two[1].Dist != DistSFC {
		t.Fatalf("subset sweep = %+v", two)
	}
}

// distFixture is a refined case small enough for the hydro engine; the
// refined levels give the strategies different per-rank placements.
func distFixture(engine Engine) Case {
	c := Case{Name: "dist_fix", NCell: 64, MaxLevel: 2, MaxStep: 8, PlotInt: 4,
		CFL: 0.5, NProcs: 8, Nodes: 2, Engine: engine}
	if engine == EngineSurrogate {
		c.NCell = 512
		c.NProcs = 16
	}
	return c
}

// TestEnginesHonorDist: for both engines, different strategies must
// produce different per-rank byte distributions (the whole point of the
// sweep), and the same strategy must reproduce itself exactly
// (determinism). The rank count deliberately does not divide the box
// counts: on the 4-fold-symmetric Sedov hierarchy, divisible layouts
// give every strategy the same per-rank byte totals even though the
// box→rank pairings differ.
func TestEnginesHonorDist(t *testing.T) {
	for _, engine := range []Engine{EngineHydro, EngineSurrogate} {
		perRank := func(d Dist) map[int]int64 {
			c := distFixture(engine)
			c.NProcs = 3
			c.Dist = d
			fs := modelFS()
			if _, err := Run(c, fs); err != nil {
				t.Fatal(err)
			}
			return iosim.BytesByRank(fs.Ledger())
		}
		rr := perRank(DistRoundRobin)
		sfc := perRank(DistSFC)
		if reflect.DeepEqual(rr, sfc) {
			t.Errorf("%s: roundrobin and sfc produced identical per-rank bytes", engine)
		}
		if again := perRank(DistRoundRobin); !reflect.DeepEqual(rr, again) {
			t.Errorf("%s: same strategy not deterministic", engine)
		}
		// The default matches the explicit knapsack name.
		if def, ks := perRank(DistDefault), perRank(DistKnapsack); !reflect.DeepEqual(def, ks) {
			t.Errorf("%s: default dist is not knapsack", engine)
		}
	}
}

// skewTopoFS builds a filesystem whose topology has few targets relative
// to ranks, so per-target fan-in is sensitive to placement.
func skewTopoFS(targets int) *iosim.FileSystem {
	cfg := iosim.DefaultConfig()
	cfg.Topology = iosim.Topology{
		Nodes: 2, RanksPerNode: 4,
		NICBandwidth: 25e9,
		Targets:      targets, TargetBandwidth: 2e9,
	}
	return iosim.New(cfg, "")
}

func maxTargetBytes(ledger []iosim.WriteRecord) int64 {
	per := map[int]int64{}
	for _, r := range ledger {
		if r.Target >= 0 {
			per[r.Target] += r.Bytes
		}
	}
	var m int64
	for _, b := range per {
		if b > m {
			m = b
		}
	}
	return m
}

// TestRemapReducesFanInEndToEnd is the acceptance criterion: on a skewed
// fixture (round-robin placement over a refined hierarchy, 3 storage
// targets for 8 ranks) the inter-burst reorganization must reduce the
// max per-target byte fan-in.
func TestRemapReducesFanInEndToEnd(t *testing.T) {
	run := func(remap bool) []iosim.WriteRecord {
		c := distFixture(EngineHydro)
		c.Dist = DistRoundRobin // skewed per-rank loads on refined levels
		c.Remap = remap
		fs := skewTopoFS(3)
		if _, err := Run(c, fs); err != nil {
			t.Fatal(err)
		}
		return fs.Ledger()
	}
	plain := maxTargetBytes(run(false))
	remapped := maxTargetBytes(run(true))
	if plain == 0 {
		t.Fatal("fixture produced no target-labeled bytes")
	}
	if remapped >= plain {
		t.Fatalf("remap max target fan-in %d >= plain %d: no improvement", remapped, plain)
	}
}

// TestRemapIdentityLedger: on a uniform hierarchy (single level, equal
// boxes, one box per rank) the remap resolves to the round-robin
// identity and the ledger stays byte-identical to a non-remapped run.
func TestRemapIdentityLedger(t *testing.T) {
	run := func(remap bool) []iosim.WriteRecord {
		c := Case{Name: "uniform", NCell: 64, MaxLevel: 0, MaxStep: 4, PlotInt: 2,
			CFL: 0.5, NProcs: 4, Engine: EngineHydro, Remap: remap}
		fs := skewTopoFS(4)
		if _, err := Run(c, fs); err != nil {
			t.Fatal(err)
		}
		return fs.Ledger()
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("identity remap changed the ledger on a uniform hierarchy")
	}
}

// TestRemapZeroTopologyLedger: without a topology the remap hook is a
// no-op and ledgers stay byte-identical (the PR-3 aggregate pin).
func TestRemapZeroTopologyLedger(t *testing.T) {
	run := func(remap bool) []iosim.WriteRecord {
		c := distFixture(EngineHydro)
		c.Remap = remap
		fs := modelFS()
		if _, err := Run(c, fs); err != nil {
			t.Fatal(err)
		}
		return fs.Ledger()
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("remap changed the ledger under the aggregate model")
	}
}
