package campaign

import (
	"fmt"
	"strings"

	"amrproxyio/internal/iosim"
)

// Two-phase aggregation experiments: a Case carries an
// iosim.AggregationSpec (JSON round-tripped like the engine, dist,
// storage, and fault plan), SweepAggregation expands a case list into
// the aggregator-layout cross-product, and report.AggregationReport
// renders the fan-in/crossover comparison. The sweep composes with
// SweepDist, SweepStorage, and SweepFaults the same way those compose
// with each other.

// AggregationVariant names one member of an aggregation sweep.
type AggregationVariant struct {
	// Name suffixes the sweep member ("<case>_<name>").
	Name string
	// Spec is the two-phase layout the member writes under; nil is the
	// direct (every rank writes) pattern.
	Spec *iosim.AggregationSpec
}

// DefaultAggregationVariants spans the fan-in ladder the crossover study
// sweeps: the direct pattern, two aggregators per node, and the fully
// collapsed one-writer-per-node layout.
func DefaultAggregationVariants() []AggregationVariant {
	return []AggregationVariant{
		{Name: "direct", Spec: nil},
		{Name: "2per-node", Spec: &iosim.AggregationSpec{Aggregators: "2/node"}},
		{Name: "1per-node", Spec: &iosim.AggregationSpec{Aggregators: "1/node"}},
	}
}

// SweepAggregation expands cases into the aggregation cross-product:
// every case times every variant, named "<case>_<variant>". No explicit
// variants means DefaultAggregationVariants. Like the other sweeps, the
// expansion preserves case order — variants vary fastest — so
// SweepAggregation(SweepStorage(cases)) walks every (tier, layout) pair
// grouped per base case.
func SweepAggregation(cases []Case, variants ...AggregationVariant) []Case {
	if len(variants) == 0 {
		variants = DefaultAggregationVariants()
	}
	out := make([]Case, 0, len(cases)*len(variants))
	for _, c := range cases {
		for _, v := range variants {
			m := c
			m.Aggregation = v.Spec
			m.Name = SweepAggregationName(c.Name, v.Name)
			out = append(out, m)
		}
	}
	return out
}

// SweepAggregationName is the name SweepAggregation gives the (base
// case, variant) member of a sweep, mirroring SweepName,
// SweepStorageName, and SweepFaultsName.
func SweepAggregationName(base, variant string) string {
	if variant == "" {
		variant = "direct"
	}
	return fmt.Sprintf("%s_%s", base, variant)
}

// ParseAggregationVariants parses a comma-separated CLI list of
// aggregation specs ("all,2/node,1/node+sif") into sweep variants, each
// named by the spec's filename-safe token. The reserved word "direct"
// (and the empty element) names the no-aggregation baseline, so a sweep
// can carry its own control.
func ParseAggregationVariants(list string) ([]AggregationVariant, error) {
	var out []AggregationVariant
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" || item == "direct" {
			out = append(out, AggregationVariant{Name: "direct"})
			continue
		}
		spec, err := iosim.ParseAggregation(item)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		out = append(out, AggregationVariant{Name: spec.Token(), Spec: &spec})
	}
	return out, nil
}
