package campaign

import (
	"reflect"
	"testing"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/resilience"
)

func TestSweepMitigateNaming(t *testing.T) {
	cases := []Case{
		{Name: "a", NCell: 64, MaxLevel: 1, MaxStep: 2, PlotInt: 1, CFL: 0.5, NProcs: 2},
		{Name: "b", NCell: 64, MaxLevel: 1, MaxStep: 2, PlotInt: 1, CFL: 0.5, NProcs: 2},
	}
	out := SweepMitigate(cases)
	wantNames := []string{"a_nomitigate", "a_mitigate", "b_nomitigate", "b_mitigate"}
	if len(out) != len(wantNames) {
		t.Fatalf("sweep produced %d cases, want %d", len(out), len(wantNames))
	}
	for i, want := range wantNames {
		if out[i].Name != want {
			t.Errorf("case %d named %q, want %q", i, out[i].Name, want)
		}
	}
	// Variants vary fastest; the unmitigated member carries no policy, the
	// mitigated member the default policy; everything else is inherited.
	if out[0].Mitigate != nil || out[2].Mitigate != nil {
		t.Errorf("nomitigate members carry a policy")
	}
	if out[1].Mitigate == nil || out[3].Mitigate == nil {
		t.Errorf("mitigate members lost their policy")
	}
	if out[1].NCell != 64 || out[1].NProcs != 2 {
		t.Errorf("sweep member dropped base fields: %+v", out[1])
	}
	if got := SweepMitigateName("base", ""); got != "base_nomitigate" {
		t.Errorf("empty variant named %q", got)
	}

	// Composes with SweepFaults: the (fault plan x policy) matrix.
	plan := &faults.Plan{Events: []faults.Event{{Kind: faults.KindTargetOutage, Start: 0, End: 5, Target: 0}}}
	matrix := SweepMitigate(SweepFaults(cases[:1], FaultVariant{Name: "outage", Plan: plan}))
	if len(matrix) != 2 {
		t.Fatalf("matrix has %d members, want 2", len(matrix))
	}
	if matrix[1].Faults == nil || matrix[1].Mitigate == nil {
		t.Fatalf("matrix member lost the plan or the policy: %+v", matrix[1])
	}
	if matrix[1].Name != "a_outage_mitigate" {
		t.Errorf("matrix member named %q", matrix[1].Name)
	}
}

// TestZeroPolicyByteIdentical is the no-regression property pin: a case
// run with Mitigate == nil and the same case run with a present-but-zero
// Policy must produce byte-identical ledgers, fault-event streams, and
// burst stats on every storage stack. A zero policy builds no engine, so
// the write path must be untouched.
func TestZeroPolicyByteIdentical(t *testing.T) {
	base := Case{
		Name: "zero", NCell: 1024, MaxLevel: 2, MaxStep: 6, PlotInt: 2,
		CFL: 0.5, NProcs: 64, Nodes: 16, Engine: EngineSurrogate,
		ComputeSeconds: 0.2,
		Faults: &faults.Plan{Events: []faults.Event{
			{Kind: faults.KindTargetOutage, Start: 0, End: 10, Target: 0},
			{Kind: faults.KindNICDegrade, Start: 0, End: 20, Node: 1, Factor: 0.5},
			{Kind: faults.KindBBLoss, Start: 0.3, Node: 0},
		}},
	}
	for _, storage := range AllStorages() {
		c := base
		c.Storage = storage
		c.Name = SweepStorageName(base.Name, storage)
		run := func(p *resilience.Policy) ([]iosim.WriteRecord, []iosim.FaultEvent, []iosim.BurstStat, *resilience.Stats) {
			m := c
			m.Mitigate = p
			fs := iosim.New(m.FSConfig(true), "")
			res, err := Run(m, fs)
			if err != nil {
				t.Fatal(err)
			}
			return fs.Ledger(), fs.FaultEvents(), iosim.BurstStats(fs.Ledger()), res.Mitigation
		}
		ledNil, evNil, bsNil, mitNil := run(nil)
		ledZero, evZero, bsZero, mitZero := run(&resilience.Policy{})
		if len(evNil) == 0 {
			t.Fatalf("%s: plan injected no faults; the pin is vacuous", c.Name)
		}
		if mitNil != nil || mitZero != nil {
			t.Errorf("%s: zero-policy run reports mitigation stats: %+v %+v", c.Name, mitNil, mitZero)
		}
		if !reflect.DeepEqual(ledNil, ledZero) {
			t.Errorf("%s: ledgers differ between nil and zero policy", c.Name)
		}
		if !reflect.DeepEqual(evNil, evZero) {
			t.Errorf("%s: fault events differ between nil and zero policy", c.Name)
		}
		if !reflect.DeepEqual(bsNil, bsZero) {
			t.Errorf("%s: burst stats differ between nil and zero policy", c.Name)
		}
	}
}

// TestMitigatedRunDeterministic512: the mitigated 512-rank case run twice
// (concurrent rank goroutines, engine observes between bursts) produces
// byte-identical ledgers and fault-event streams — the closed loop must
// not introduce schedule-dependent decisions.
func TestMitigatedRunDeterministic512(t *testing.T) {
	c := Case{
		Name: "mitdet", NCell: 2048, MaxLevel: 2, MaxStep: 6, PlotInt: 2,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: EngineSurrogate,
		Storage: StorageTiered, ComputeSeconds: 0.2,
		Faults: &faults.Plan{
			Events: []faults.Event{
				{Kind: faults.KindTargetOutage, Start: 0.01, End: 10, Target: 1},
				{Kind: faults.KindNICDegrade, Start: 0, End: 20, Node: 3, Factor: 0.25},
			},
			MTBFSeconds: 1.5,
			Seed:        7,
		},
		Mitigate: resilience.DefaultPolicy(),
	}
	run := func() ([]iosim.WriteRecord, []iosim.FaultEvent, *resilience.Stats) {
		fs := iosim.New(c.FSConfig(true), "")
		res, err := Run(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		return fs.Ledger(), fs.FaultEvents(), res.Mitigation
	}
	led1, ev1, mit1 := run()
	led2, ev2, mit2 := run()
	if len(ev1) == 0 {
		t.Fatal("plan injected no faults; the determinism pin is vacuous")
	}
	if mit1 == nil {
		t.Fatal("mitigated run returned no mitigation stats")
	}
	if mit1.QuarantinedTargets == 0 {
		t.Errorf("quarantine breaker never tripped: %+v", mit1)
	}
	if !reflect.DeepEqual(mit1, mit2) {
		t.Errorf("mitigation stats differ across runs:\n%+v\n%+v", mit1, mit2)
	}
	if len(led1) != len(led2) {
		t.Fatalf("ledger lengths differ: %d vs %d", len(led1), len(led2))
	}
	for i := range led1 {
		if led1[i] != led2[i] {
			t.Fatalf("ledger record %d differs:\n%+v\n%+v", i, led1[i], led2[i])
		}
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event lengths differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("fault event %d differs:\n%+v\n%+v", i, ev1[i], ev2[i])
		}
	}
}
