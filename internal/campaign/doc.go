// Package campaign defines and executes the paper's Table III parameter
// study: 47 Castro Sedov runs spanning amr.max_step 40-1000, amr.n_cell
// 32² to 131072², amr.max_level 2-4, amr.plot_int 1-20, castro.cfl
// 0.3-0.6, and 1-1024 MPI tasks on up to 512 Summit-node equivalents.
//
// # Engines
//
// Each case runs on one of two engines: the real hydrodynamics solver
// (internal/sim) at laptop-tractable sizes, or the analytic surrogate
// (internal/surrogate) at Summit scale — with the same meshing and I/O
// pipeline either way. EngineAuto picks by mesh size (HydroCellLimit);
// any other unknown engine name is an error rather than a silent
// fallback. Results carry the full Eq. (2) output ledger and serialize
// to JSON for the reporting and benchmark layers.
//
// # RunAll's serial-equivalence contract
//
// Cases are independent — each owns a private iosim.FileSystem, and the
// solver, surrogate, and plotfile writer share no mutable state across
// runs — so RunAll executes the sweep on a worker pool, one worker per
// core by default. Its contract: for any parallelism (including 1) and
// any worker scheduling, the returned Results — records, plot counts,
// simulated times, and each case's iosim ledger — are identical to
// running the cases serially in case order. Only wall-clock time
// changes. This holds because each case's randomness is seeded through
// its own filesystem config, the iosim ledger merge is deterministic
// (see the iosim package documentation), and result slots are written by
// index, never shared. All cases run even if some fail; the joined error
// reports every failure.
//
// # Topology
//
// Case.Topology derives the Summit-like per-link contention topology for
// a case (NProcs ranks packed onto Nodes nodes, Alpine NSD fan-in); pass
// it in an iosim.Config to model per-node NIC caps instead of one
// aggregate bandwidth pool. The default filesystem (newFS == nil) keeps
// the aggregate model, preserving historical ledgers.
//
// # Distribution-mapping experiments
//
// Case.Dist selects the decomposition strategy ("roundrobin",
// "knapsack", "sfc"; empty keeps the engines' knapsack default) and is
// rejected by Run when unknown, like an unknown engine. SweepDist
// expands a case list into the strategy cross-product for placement
// studies; report.DistReport renders the per-strategy comparison.
// Case.Remap additionally enables the inter-burst layout reorganization
// (amr.RemapToTargets → iosim.FileSystem.Retarget), which rebalances
// the rank→storage-target fan-in before every dump — effective only
// when the case runs against a target-modeling topology with more
// writing ranks than targets.
//
// # Fingerprints and the memoizing executor
//
// Fingerprint(c, withTopology) is the canonical identity of a validated
// case: the case is normalized (Name zeroed — labels don't change
// physics; Engine resolved through the same auto rule Run uses;
// Dist/Storage defaults made explicit), marshaled to canonical JSON,
// salted with the topology flag, and SHA-256 hashed. Normalization only
// collapses differences Run provably ignores; when in doubt a false
// distinction (cache miss) is chosen over a false equality (wrong
// result served from cache). A reflection test walks every Case field
// and fails if perturbing it doesn't change the fingerprint, so new
// fields cannot silently alias cache entries.
//
// Executor wraps Run with an LRU memo keyed by fingerprint:
// RunCase(c, timeout) returns a cached CaseOutput (result, burst stats,
// and I/O profile, Cached=true) for a repeated configuration, and
// coalesces concurrent identical cases into a single simulation
// (single-flight; joiners get the same output). Simulations run against
// a streaming CharacterizeFold — the executor never materializes a
// ledger. Errors are never cached; timeouts use the same
// abandon-and-account machinery as runCase (AbandonedInFlight).
// RunAll(..., WithExecutor(e)) routes the worker pool through the memo,
// WithOutputs streams each case's CaseOutput as it completes (the
// service layer's NDJSON seam), and CheckBatch rejects batches that
// reuse a case name for a different configuration before any work runs.
// The campaign HTTP service built on these seams lives in
// internal/serve.
package campaign
