package campaign

import (
	"fmt"

	"amrproxyio/internal/iosim"
)

// Storage-tier experiments: the paper characterizes the same bursts
// against Summit's node-local NVMe burst buffers and the Alpine GPFS, so
// a Case carries a Storage name (JSON round-tripped like the engine and
// dist), SweepStorage expands a case list into the tier cross-product,
// and report.StorageReport renders the per-tier comparison.

// Storage names an iosim storage-model stack on a Case. The empty string
// selects the historical single-tier "gpfs" pricing.
type Storage string

// The valid storage names (iosim Storage* selection names).
const (
	StorageDefault Storage = iosim.StorageDefault
	StorageGPFS    Storage = iosim.StorageGPFS
	StorageBB      Storage = iosim.StorageBB
	StorageTiered  Storage = iosim.StorageTiered
)

// AllStorages returns the full sweep set, in iosim declaration order.
func AllStorages() []Storage {
	out := make([]Storage, 0, len(iosim.StorageKinds()))
	for _, k := range iosim.StorageKinds() {
		out = append(out, Storage(k))
	}
	return out
}

// ParseStorage validates a storage name, rejecting unknown names the
// same way unknown engines and dists are rejected.
func ParseStorage(name string) (Storage, error) {
	k, err := iosim.ParseStorage(name)
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	return Storage(k), nil
}

// SweepStorage expands cases into the storage-tier cross-product: every
// case times every named tier stack, named "<case>_<storage>". No
// explicit storages means all three (gpfs, bb, bb+gpfs). Like SweepDist,
// the expansion preserves case order — storages vary fastest — so
// results group naturally per base case; the two sweeps compose
// (SweepStorage(SweepDist(cases))) into the full strategy × tier matrix.
func SweepStorage(cases []Case, storages ...Storage) []Case {
	if len(storages) == 0 {
		storages = AllStorages()
	}
	out := make([]Case, 0, len(cases)*len(storages))
	for _, c := range cases {
		for _, s := range storages {
			v := c
			v.Storage = s
			v.Name = SweepStorageName(c.Name, s)
			out = append(out, v)
		}
	}
	return out
}

// SweepStorageName is the name SweepStorage gives the (base case, tier)
// member of a sweep — exported so consumers grouping sweep results back
// onto their base cases never re-derive the convention by hand.
func SweepStorageName(base string, s Storage) string {
	suffix := string(s)
	if suffix == "" {
		suffix = "default"
	}
	return fmt.Sprintf("%s_%s", base, suffix)
}
