package campaign

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amrproxyio/internal/iosim"
)

// Memoizing case executor (Design 10): sweeps and the serve layer hit
// the same configurations over and over (the Hercule lesson — result
// reuse, not raw bandwidth, dominates at scale). The Executor keys an
// LRU cache of completed CaseOutputs by canonical Fingerprint, with
// single-flight de-duplication so concurrent requests for the same
// configuration run one simulation and share the result. Cases run
// through streaming folds (RetainAuto + attached consumers drops the
// ledger burst by burst), so a cached entry holds per-step aggregates,
// not millions of records.

// CaseOutput is one memoizable unit of work: the run result plus the
// streamed reductions every report path needs, keyed by fingerprint.
type CaseOutput struct {
	Result      Result                 `json:"result"`
	Bursts      []iosim.BurstStat      `json:"bursts"`
	Profile     iosim.Characterization `json:"profile"`
	Fingerprint string                 `json:"fingerprint"`
	// Cached marks an output served from the LRU (or joined onto
	// another caller's in-flight run) instead of a fresh simulation.
	Cached bool `json:"cached"`
}

// ExecStats is a point-in-time snapshot of the executor's counters.
type ExecStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Errors    uint64 `json:"errors"`
	Abandoned uint64 `json:"abandoned"`
	InFlight  int    `json:"in_flight"`
	Size      int    `json:"cache_size"`
	Cap       int    `json:"cache_cap"`
}

// HitRate is hits over lookups; 0 before the first lookup.
func (s ExecStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// memoEntry is one LRU slot. The stored canon guards against a
// (cosmically unlikely, but cheap to rule out) SHA-256 collision and
// against an injected test digest colliding on purpose.
type memoEntry struct {
	fp    string
	canon Case
	out   CaseOutput
}

// flight is one in-progress computation other callers can join.
type flight struct {
	done chan struct{}
	out  CaseOutput
	err  error
}

// Executor runs cases through the memoization layer. The zero value is
// not usable; construct with NewExecutor.
type Executor struct {
	topo bool
	cap  int

	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *memoEntry
	byFP    map[string]*list.Element
	flights map[string]*flight

	hits      atomic.Uint64
	misses    atomic.Uint64
	errs      atomic.Uint64
	abandoned atomic.Uint64
	inFlight  atomic.Int64

	// digest is Fingerprint unless a test injects a colliding stand-in.
	digest func(Case, bool) (string, error)
}

// NewExecutor returns an executor caching up to capacity outputs.
// capacity < 1 selects a default sized for sweep workloads. withTopology
// selects the FSConfig every case runs against (and salts the keys).
func NewExecutor(capacity int, withTopology bool) *Executor {
	if capacity < 1 {
		capacity = 1024
	}
	return &Executor{
		topo:    withTopology,
		cap:     capacity,
		lru:     list.New(),
		byFP:    map[string]*list.Element{},
		flights: map[string]*flight{},
		digest:  Fingerprint,
	}
}

// Stats snapshots the counters.
func (e *Executor) Stats() ExecStats {
	e.mu.Lock()
	size := e.lru.Len()
	e.mu.Unlock()
	return ExecStats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Errors:    e.errs.Load(),
		Abandoned: e.abandoned.Load(),
		InFlight:  int(e.inFlight.Load()),
		Size:      size,
		Cap:       e.cap,
	}
}

// RunCase executes one case through the cache: a hit returns the stored
// output with Cached set; a miss simulates under the usual defensive
// envelope (Validate, panic recovery, optional timeout) and stores the
// output on success. Concurrent misses on the same fingerprint share a
// single simulation. timeout <= 0 disables the per-case bound.
func (e *Executor) RunCase(c Case, timeout time.Duration) (CaseOutput, error) {
	if err := c.Validate(); err != nil {
		return CaseOutput{Result: Result{Case: c, Engine: c.engineFor()}}, err
	}
	fp, err := e.digest(c, e.topo)
	if err != nil {
		return CaseOutput{Result: Result{Case: c, Engine: c.engineFor()}}, err
	}

	e.mu.Lock()
	if el, ok := e.byFP[fp]; ok {
		ent := el.Value.(*memoEntry)
		if !equivalent(ent.canon, c) {
			// Fingerprint collision between distinct configurations:
			// serving the stored result would be silently wrong. Fail
			// loudly instead; with SHA-256 this is test-injection only.
			e.mu.Unlock()
			e.errs.Add(1)
			return CaseOutput{Result: Result{Case: c, Engine: c.engineFor()}, Fingerprint: fp},
				fmt.Errorf("campaign %s: fingerprint collision on %s", c.Name, fp[:12])
		}
		e.lru.MoveToFront(el)
		out := ent.out
		e.mu.Unlock()
		e.hits.Add(1)
		out.Cached = true
		out.Result.Case.Name = c.Name // keep the caller's row label
		return out, nil
	}
	if f, ok := e.flights[fp]; ok {
		e.mu.Unlock()
		<-f.done
		if f.err != nil {
			// The computing caller reported the failure; joiners surface
			// it too but don't double-count it in the error stats.
			return f.out, f.err
		}
		e.hits.Add(1)
		out := f.out
		out.Cached = true
		out.Result.Case.Name = c.Name
		return out, nil
	}
	f := &flight{done: make(chan struct{})}
	e.flights[fp] = f
	e.mu.Unlock()

	e.misses.Add(1)
	e.inFlight.Add(1)
	out, err := e.simulate(c, fp, timeout)
	e.inFlight.Add(-1)

	f.out, f.err = out, err
	e.mu.Lock()
	delete(e.flights, fp)
	if err == nil {
		e.insert(fp, c, out)
	}
	e.mu.Unlock()
	close(f.done)

	if err != nil {
		if out.Result.Abandoned {
			e.abandoned.Add(1)
		}
		e.errs.Add(1)
	}
	return out, err
}

// simulate is the uncached path: one fresh filesystem with streaming
// folds attached, run under the shared defensive envelope.
func (e *Executor) simulate(c Case, fp string, timeout time.Duration) (CaseOutput, error) {
	work := func() (CaseOutput, error) {
		char := iosim.NewCharacterizeFold()
		fs := iosim.New(c.FSConfig(e.topo), "")
		fs.Attach(char) // RetainAuto + consumer: records drop burst by burst
		res, err := Run(c, fs)
		if err != nil {
			return CaseOutput{Result: res, Fingerprint: fp}, err
		}
		fs.FlushConsumers()
		return CaseOutput{
			Result:      res,
			Bursts:      char.Bursts(),
			Profile:     char.Profile(),
			Fingerprint: fp,
		}, nil
	}
	fallback := func(abandoned bool) CaseOutput {
		return CaseOutput{
			Result:      Result{Case: c, Engine: c.engineFor(), Abandoned: abandoned},
			Fingerprint: fp,
		}
	}
	return runBounded(c.Name, timeout, work,
		func() CaseOutput { return fallback(false) },
		func() CaseOutput { return fallback(true) })
}

// insert stores an output, evicting from the LRU tail. Caller holds mu.
func (e *Executor) insert(fp string, canon Case, out CaseOutput) {
	out.Cached = false
	e.byFP[fp] = e.lru.PushFront(&memoEntry{fp: fp, canon: canon, out: out})
	for e.lru.Len() > e.cap {
		el := e.lru.Back()
		e.lru.Remove(el)
		delete(e.byFP, el.Value.(*memoEntry).fp)
	}
}

// CheckBatch validates a batch for the memoized pool: every case must
// Validate, and two cases sharing a Name must also share a fingerprint.
// Exact duplicates are fine — de-duplicating them is the cache's job —
// but one label mapping to two distinct configurations means the
// submitter holds two different expectations for the same output row,
// and serving either would silently betray one of them. withTopology
// must match the executor the batch will run on.
func CheckBatch(cases []Case, withTopology bool) error {
	byName := map[string]string{}
	for i, c := range cases {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("case %d: %w", i, err)
		}
		fp, err := Fingerprint(c, withTopology)
		if err != nil {
			return fmt.Errorf("case %d: %w", i, err)
		}
		if prev, ok := byName[c.Name]; ok && prev != fp {
			return fmt.Errorf("case %d: duplicate name %q with a different configuration (fingerprints %s vs %s)",
				i, c.Name, prev[:12], fp[:12])
		}
		byName[c.Name] = fp
	}
	return nil
}

// equivalent reports whether two cases are the same configuration under
// the fingerprint canon — the collision guard's ground truth. It
// compares the same normalized encodings the fingerprint hashes.
func equivalent(a, b Case) bool {
	fa, erra := Fingerprint(a, false)
	fb, errb := Fingerprint(b, false)
	return erra == nil && errb == nil && fa == fb
}
