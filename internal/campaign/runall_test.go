package campaign

// Tests for the concurrent campaign executor: results (including the full
// output ledgers) must be identical to the serial loop at any
// parallelism, and per-case failures must not abort sibling cases.

import (
	"errors"
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

// runAllCases is a small but heterogeneous slice of the sweep: hydro and
// surrogate engines, multiple rank counts and level counts.
func runAllCases() []Case {
	return []Case{
		{Name: "ra_hydro_1", NCell: 32, MaxLevel: 2, MaxStep: 40, PlotInt: 10, CFL: 0.5, NProcs: 2, Engine: EngineHydro},
		{Name: "ra_hydro_2", NCell: 32, MaxLevel: 3, MaxStep: 40, PlotInt: 20, CFL: 0.4, NProcs: 4, Engine: EngineHydro},
		{Name: "ra_surr_1", NCell: 1024, MaxLevel: 2, MaxStep: 20, PlotInt: 5, CFL: 0.5, NProcs: 16, Engine: EngineSurrogate},
		{Name: "ra_surr_2", NCell: 2048, MaxLevel: 3, MaxStep: 20, PlotInt: 10, CFL: 0.3, NProcs: 32, Engine: EngineSurrogate},
		{Name: "ra_hydro_3", NCell: 64, MaxLevel: 2, MaxStep: 40, PlotInt: 20, CFL: 0.6, NProcs: 2, Engine: EngineHydro},
		{Name: "ra_surr_3", NCell: 1024, MaxLevel: 4, MaxStep: 20, PlotInt: 5, CFL: 0.6, NProcs: 8, Engine: EngineSurrogate},
	}
}

func newModelFS(Case) *iosim.FileSystem {
	cfg := iosim.DefaultConfig()
	cfg.JitterSigma = 0
	return iosim.New(cfg, "")
}

func TestRunAllMatchesSerial(t *testing.T) {
	cases := runAllCases()
	serial, err := RunAll(cases, 1, newModelFS)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(cases, 4, newModelFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cases) || len(parallel) != len(cases) {
		t.Fatalf("result counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(cases))
	}
	for i := range cases {
		s, p := serial[i], parallel[i]
		if s.Case.Name != cases[i].Name || p.Case.Name != cases[i].Name {
			t.Fatalf("case %d out of order: serial %q parallel %q want %q", i, s.Case.Name, p.Case.Name, cases[i].Name)
		}
		if s.Engine != p.Engine || s.NPlots != p.NPlots || s.SimTime != p.SimTime {
			t.Errorf("%s: engine/plots/time differ: %+v vs %+v", s.Case.Name, s, p)
		}
		if len(s.Records) != len(p.Records) {
			t.Fatalf("%s: record counts differ: %d vs %d", s.Case.Name, len(s.Records), len(p.Records))
		}
		for j := range s.Records {
			if s.Records[j] != p.Records[j] {
				t.Fatalf("%s: record %d differs: %+v vs %+v", s.Case.Name, j, s.Records[j], p.Records[j])
			}
		}
	}
}

func TestRunAllDefaults(t *testing.T) {
	cases := runAllCases()[:2]
	// parallelism <= 0 (GOMAXPROCS) and nil newFS both take defaults.
	results, err := RunAll(cases, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.TotalBytes() == 0 || r.NPlots == 0 {
			t.Errorf("case %d produced no output: %+v", i, r)
		}
	}
	if got, err := RunAll(nil, 4, nil); err != nil || got != nil {
		t.Errorf("empty case list: results %v err %v", got, err)
	}
}

func TestRunAllCollectsErrors(t *testing.T) {
	cases := []Case{
		runAllCases()[0],
		{Name: "ra_bad", NCell: 32, MaxLevel: 2, MaxStep: 40, PlotInt: 10, CFL: 0.5, NProcs: 2, Engine: Engine("nonsense")},
		runAllCases()[4],
	}
	results, err := RunAll(cases, 2, newModelFS)
	if err == nil {
		t.Fatal("bad engine did not error")
	}
	if !strings.Contains(err.Error(), "ra_bad") {
		t.Errorf("error does not name the failed case: %v", err)
	}
	var joined interface{ Unwrap() []error }
	if errors.As(err, &joined) && len(joined.Unwrap()) != 1 {
		t.Errorf("joined %d errors, want 1", len(joined.Unwrap()))
	}
	// Healthy siblings still completed.
	if results[0].TotalBytes() == 0 || results[2].TotalBytes() == 0 {
		t.Error("sibling cases did not run to completion")
	}
}
