package campaign

import (
	"fmt"

	"amrproxyio/internal/amr"
)

// Distribution-mapping experiments: the paper's Table III campaigns hold
// the AMReX distribution mapping fixed, but under the per-link topology
// model placement is the dominant knob for burst skew. A Case carries a
// Dist name (JSON round-tripped like the engine), SweepDist expands a
// case list into the strategy cross-product, and report.DistReport
// renders the per-strategy comparison.

// Dist names a distribution-mapping strategy on a Case. The empty string
// selects the engines' historical knapsack default.
type Dist string

// The valid strategy names (amr.DistStrategy String() forms).
const (
	DistDefault    Dist = ""
	DistRoundRobin Dist = "roundrobin"
	DistKnapsack   Dist = "knapsack"
	DistSFC        Dist = "sfc"
)

// AllDists returns the full sweep set, in amr declaration order.
func AllDists() []Dist {
	out := make([]Dist, 0, len(amr.DistStrategies()))
	for _, s := range amr.DistStrategies() {
		out = append(out, Dist(s.String()))
	}
	return out
}

// ParseDist validates a strategy name, rejecting unknown names the same
// way unknown engines are rejected.
func ParseDist(name string) (Dist, error) {
	if name == "" {
		return DistDefault, nil
	}
	s, err := amr.ParseDistStrategy(name)
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	return Dist(s.String()), nil
}

// strategy resolves the name for the engines; "" keeps the historical
// knapsack default (sim/surrogate DefaultOptions).
func (d Dist) strategy() (amr.DistStrategy, error) {
	if d == DistDefault {
		return amr.DistKnapsack, nil
	}
	return amr.ParseDistStrategy(string(d))
}

// SweepDist expands cases into the strategy × topology cross-product:
// every case, which carries its own Summit topology shape (Nodes,
// NProcs), times every strategy, named "<case>_<dist>". No explicit
// dists means all three. The expansion preserves case order —
// strategies vary fastest — so results group naturally per base case.
func SweepDist(cases []Case, dists ...Dist) []Case {
	if len(dists) == 0 {
		dists = AllDists()
	}
	out := make([]Case, 0, len(cases)*len(dists))
	for _, c := range cases {
		for _, d := range dists {
			v := c
			v.Dist = d
			v.Name = SweepName(c.Name, d)
			out = append(out, v)
		}
	}
	return out
}

// SweepName is the name SweepDist gives the (base case, strategy) member
// of a sweep — exported so consumers grouping sweep results back onto
// their base cases never re-derive the convention by hand.
func SweepName(base string, d Dist) string {
	suffix := string(d)
	if suffix == "" {
		suffix = "default"
	}
	return fmt.Sprintf("%s_%s", base, suffix)
}
