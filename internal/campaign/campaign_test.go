package campaign

import (
	"path/filepath"
	"testing"

	"amrproxyio/internal/iosim"
)

func modelFS() *iosim.FileSystem {
	c := iosim.DefaultConfig()
	c.JitterSigma = 0
	return iosim.New(c, "")
}

func TestPaperCampaignMatchesTableIII(t *testing.T) {
	cases := PaperCampaign()
	if len(cases) != 47 {
		t.Fatalf("campaign has %d cases, want 47", len(cases))
	}
	seen := map[string]bool{}
	var minCell, maxCell, minStep, maxStep, minPlot, maxPlot, minProcs, maxProcs, maxNodes int
	minCell, minStep, minPlot, minProcs = 1<<30, 1<<30, 1<<30, 1<<30
	minCFL, maxCFL := 1.0, 0.0
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.Inputs().Validate(); err != nil {
			t.Errorf("%s: invalid inputs: %v", c.Name, err)
		}
		minCell = mini(minCell, c.NCell)
		maxCell = maxi(maxCell, c.NCell)
		minStep = mini(minStep, c.MaxStep)
		maxStep = maxi(maxStep, c.MaxStep)
		minPlot = mini(minPlot, c.PlotInt)
		maxPlot = maxi(maxPlot, c.PlotInt)
		minProcs = mini(minProcs, c.NProcs)
		maxProcs = maxi(maxProcs, c.NProcs)
		maxNodes = maxi(maxNodes, c.Nodes)
		if c.CFL < minCFL {
			minCFL = c.CFL
		}
		if c.CFL > maxCFL {
			maxCFL = c.CFL
		}
		if c.MaxLevel < 2 || c.MaxLevel > 4 {
			t.Errorf("%s: max_level %d outside Table III", c.Name, c.MaxLevel)
		}
	}
	// Table III ranges.
	if minCell != 32 || maxCell != 131072 {
		t.Errorf("n_cell range [%d, %d], want [32, 131072]", minCell, maxCell)
	}
	if minStep < 40 || maxStep > 1000 {
		t.Errorf("max_step range [%d, %d] outside [40, 1000]", minStep, maxStep)
	}
	if minPlot < 1 || maxPlot > 20 {
		t.Errorf("plot_int range [%d, %d] outside [1, 20]", minPlot, maxPlot)
	}
	if minProcs < 1 || maxProcs > 1024 {
		t.Errorf("nprocs range [%d, %d] outside [1, 1024]", minProcs, maxProcs)
	}
	if maxNodes > 512 {
		t.Errorf("nodes max %d > 512", maxNodes)
	}
	if minCFL != 0.3 || maxCFL != 0.6 {
		t.Errorf("cfl range [%g, %g], want [0.3, 0.6]", minCFL, maxCFL)
	}
}

func TestNamedCases(t *testing.T) {
	c4 := Case4()
	if c4.NCell != 512 || c4.NProcs != 32 || c4.Nodes != 2 {
		t.Errorf("case4 = %+v", c4)
	}
	if c4.MaxStep/c4.PlotInt != 20 {
		t.Errorf("case4 outputs = %d, want 20", c4.MaxStep/c4.PlotInt)
	}
	v := Case4Variant(0.6, 2)
	if v.CFL != 0.6 || v.MaxLevel != 2 || v.NCell != 512 {
		t.Errorf("variant = %+v", v)
	}
	c27 := Case27()
	if c27.NCell != 1024 || c27.NProcs != 64 || c27.MaxStep != 5 {
		t.Errorf("case27 = %+v", c27)
	}
	lg := LargeCase()
	if lg.NCell != 8192 || lg.Engine != EngineSurrogate {
		t.Errorf("large = %+v", lg)
	}
}

func TestEngineSelection(t *testing.T) {
	small := Case{NCell: 64, Engine: EngineAuto}
	if small.engineFor() != EngineHydro {
		t.Error("small case should use hydro")
	}
	big := Case{NCell: 4096, Engine: EngineAuto}
	if big.engineFor() != EngineSurrogate {
		t.Error("big case should use surrogate")
	}
	forced := Case{NCell: 64, Engine: EngineSurrogate}
	if forced.engineFor() != EngineSurrogate {
		t.Error("explicit engine ignored")
	}
}

func TestScaled(t *testing.T) {
	c := Case4().Scaled(8)
	if c.NCell != 64 || c.MaxStep != 160 {
		t.Errorf("scaled = %+v", c)
	}
	if c.CFL != 0.4 || c.MaxLevel != 4 {
		t.Error("scaling must preserve cfl and levels")
	}
	// Plot-event count preserved: 400/20 = 20 events -> 160/8.
	if c.MaxStep/c.PlotInt != Case4().MaxStep/Case4().PlotInt {
		t.Errorf("plot events changed: %d vs %d", c.MaxStep/c.PlotInt, Case4().MaxStep/Case4().PlotInt)
	}
	if Case4().Scaled(1) != Case4() {
		t.Error("Scaled(1) must be identity")
	}
	tiny := Case{Name: "t", NCell: 32, MaxStep: 10, PlotInt: 1, NProcs: 2}.Scaled(100)
	if tiny.NCell < 32 || tiny.MaxStep < 8 || tiny.PlotInt < 1 {
		t.Errorf("floors violated: %+v", tiny)
	}
}

func TestRunHydroCase(t *testing.T) {
	fs := modelFS()
	c := Case{Name: "hydro_test", NCell: 32, MaxLevel: 2, MaxStep: 10,
		PlotInt: 5, CFL: 0.5, NProcs: 4, Engine: EngineHydro}
	res, err := Run(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineHydro {
		t.Errorf("engine = %v", res.Engine)
	}
	if res.NPlots != 3 {
		t.Errorf("plots = %d, want 3", res.NPlots)
	}
	if res.TotalBytes() == 0 || len(res.Records) == 0 {
		t.Error("no output recorded")
	}
	if res.SimTime <= 0 {
		t.Error("sim time not recorded")
	}
}

func TestRunSurrogateCase(t *testing.T) {
	fs := modelFS()
	c := Case{Name: "surr_test", NCell: 1024, MaxLevel: 2, MaxStep: 10,
		PlotInt: 5, CFL: 0.5, NProcs: 16, Engine: EngineAuto}
	res, err := Run(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineSurrogate {
		t.Errorf("engine = %v (auto should pick surrogate at 1024)", res.Engine)
	}
	if res.NPlots != 3 || res.TotalBytes() == 0 {
		t.Errorf("plots=%d bytes=%d", res.NPlots, res.TotalBytes())
	}
}

func TestResultSaveLoadRoundTrip(t *testing.T) {
	fs := modelFS()
	c := Case{Name: "roundtrip", NCell: 32, MaxLevel: 2, MaxStep: 8,
		PlotInt: 4, CFL: 0.5, NProcs: 2, Engine: EngineHydro}
	res, err := Run(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "result.json")
	if err := res.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Case != res.Case || len(back.Records) != len(res.Records) {
		t.Error("round trip mismatch")
	}
	if back.TotalBytes() != res.TotalBytes() {
		t.Errorf("bytes: %d != %d", back.TotalBytes(), res.TotalBytes())
	}
	if _, err := LoadResult(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestQuickCampaignRunsAllCases(t *testing.T) {
	if testing.Short() {
		t.Skip("quick campaign skipped in -short")
	}
	cases := QuickCampaign()
	if len(cases) != 47 {
		t.Fatalf("quick campaign = %d cases", len(cases))
	}
	// Execute a representative subset end-to-end (full sweep is the
	// TableIII bench).
	for _, idx := range []int{0, 13, 30, 46} {
		fs := modelFS()
		res, err := Run(cases[idx], fs)
		if err != nil {
			t.Fatalf("%s: %v", cases[idx].Name, err)
		}
		if res.TotalBytes() == 0 {
			t.Errorf("%s: no bytes", cases[idx].Name)
		}
	}
}
