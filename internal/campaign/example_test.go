package campaign_test

import (
	"fmt"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/iosim"
)

// ExampleRunAll executes a small sweep on the worker pool. Ledgers and
// results are identical at any parallelism (RunAll's serial-equivalence
// contract), so the output is deterministic even though the two cases
// run concurrently.
func ExampleRunAll() {
	cases := []campaign.Case{
		{Name: "tiny32", NCell: 32, MaxLevel: 1, MaxStep: 8, PlotInt: 4,
			CFL: 0.5, NProcs: 2, Nodes: 1, Engine: campaign.EngineHydro},
		{Name: "tiny64", NCell: 64, MaxLevel: 1, MaxStep: 8, PlotInt: 4,
			CFL: 0.5, NProcs: 2, Nodes: 1, Engine: campaign.EngineHydro},
	}
	results, err := campaign.RunAll(cases, 2, func(c campaign.Case) *iosim.FileSystem {
		cfg := iosim.DefaultConfig()
		cfg.Topology = c.Topology() // per-link contention model
		return iosim.New(cfg, "")
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range results {
		fmt.Printf("%s: %d plots, %d bytes\n", r.Case.Name, r.NPlots, r.TotalBytes())
	}

	// Output:
	// tiny32: 3 plots, 430260 bytes
	// tiny64: 3 plots, 1167813 bytes
}
