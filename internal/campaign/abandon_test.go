package campaign

import (
	"testing"
	"time"
)

// TestCaseTimeoutAbandonmentCounted: WithCaseTimeout cannot preempt a
// stuck case goroutine, only abandon it — the leak-telemetry contract is
// that AbandonedInFlight counts the abandoned goroutine while it is
// still running and returns to its prior level once the goroutine's
// buffered result is drained. A stuck drain here would be a goroutine
// leak in long-lived sweep services.
func TestCaseTimeoutAbandonmentCounted(t *testing.T) {
	before := AbandonedInFlight()
	// Big enough to outlive a 1 ms timeout by orders of magnitude, small
	// enough to finish (and drain) within the test.
	c := Case{
		Name: "slow", NCell: 4096, MaxLevel: 2, MaxStep: 40, PlotInt: 2,
		CFL: 0.5, NProcs: 256, Nodes: 64, Engine: EngineSurrogate,
		ComputeSeconds: 0.1,
	}
	results, err := RunAll([]Case{c}, 1, nil, WithCaseTimeout(time.Millisecond))
	if err == nil {
		t.Fatal("expected a case-timeout error")
	}
	if len(results) != 1 || !results[0].Abandoned {
		t.Fatalf("timed-out case not marked abandoned: %+v", results)
	}
	if got := AbandonedInFlight(); got <= before {
		t.Errorf("abandoned goroutine not counted: in-flight %d, was %d", got, before)
	}
	deadline := time.Now().Add(30 * time.Second)
	for AbandonedInFlight() > before {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned case goroutine leaked: %d still in flight after 30s",
				AbandonedInFlight()-before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
