package campaign_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
)

// TestSweepAggregation pins the sweep expansion and its composition with
// the storage sweep: variants vary fastest, names follow
// campaign.SweepAggregationName, and specs land on the right members.
func TestSweepAggregation(t *testing.T) {
	base := []campaign.Case{campaign.Case4()}
	sw := campaign.SweepAggregation(base)
	if len(sw) != 3 {
		t.Fatalf("default sweep size = %d, want 3", len(sw))
	}
	wantNames := []string{"case4_direct", "case4_2per-node", "case4_1per-node"}
	for i, c := range sw {
		if c.Name != wantNames[i] {
			t.Errorf("member %d name = %q, want %q", i, c.Name, wantNames[i])
		}
	}
	if sw[0].Aggregation != nil {
		t.Errorf("direct member carries a spec: %+v", sw[0].Aggregation)
	}
	if sw[2].Aggregation == nil || sw[2].Aggregation.Aggregators != "1/node" {
		t.Errorf("1per-node member spec = %+v", sw[2].Aggregation)
	}

	composed := campaign.SweepAggregation(campaign.SweepStorage(base, campaign.StorageGPFS, campaign.StorageTiered),
		campaign.AggregationVariant{Name: "direct"},
		campaign.AggregationVariant{Name: "1per-node", Spec: &iosim.AggregationSpec{Aggregators: "1/node"}})
	if len(composed) != 4 {
		t.Fatalf("composed sweep size = %d, want 4", len(composed))
	}
	if composed[3].Name != campaign.SweepAggregationName(campaign.SweepStorageName("case4", campaign.StorageTiered), "1per-node") {
		t.Errorf("composed name = %q", composed[3].Name)
	}
	for _, c := range composed {
		if err := c.Validate(); err != nil {
			t.Errorf("composed member %s invalid: %v", c.Name, err)
		}
	}
}

// TestParseAggregationVariants covers the CLI list grammar, including
// the reserved "direct" baseline and the rejection paths the
// amrio-campaign flag parser relies on.
func TestParseAggregationVariants(t *testing.T) {
	vs, err := campaign.ParseAggregationVariants("direct,all,2/node,1/node+sif+async")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 || vs[0].Spec != nil || vs[0].Name != "direct" {
		t.Fatalf("variants = %+v", vs)
	}
	if vs[3].Name != "1per-node-sif-async" || vs[3].Spec.Layout != iosim.LayoutSIF || !vs[3].Spec.Async {
		t.Fatalf("option variant = %+v spec %+v", vs[3], vs[3].Spec)
	}
	for _, bad := range []string{"bogus", "0/node", "all,-1/node", "1/node+hdf5"} {
		if _, err := campaign.ParseAggregationVariants(bad); err == nil {
			t.Errorf("campaign.ParseAggregationVariants accepted %q", bad)
		}
	}
}

// TestCaseValidateAggregation: malformed specs are rejected by
// Case.Validate with the case name attached, and unknown JSON fields
// inside a case file's aggregation object fail the decode (the CLI's
// rejection path).
func TestCaseValidateAggregation(t *testing.T) {
	c := campaign.Case4()
	c.Aggregation = &iosim.AggregationSpec{Aggregators: "0/node"}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "leaves no rank to write") {
		t.Fatalf("Validate error = %v, want the zero-aggregator rejection", err)
	}
	c.Aggregation = &iosim.AggregationSpec{Aggregators: "all", Layout: "hdf5"}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown layout")
	}

	var decoded campaign.Case
	bad := []byte(`{"name":"x","nprocs":4,"aggregation":{"aggregators":"all","writers":3}}`)
	if err := json.Unmarshal(bad, &decoded); err == nil {
		t.Fatal("case JSON with unknown aggregation field accepted")
	} else if !strings.Contains(err.Error(), "writers") {
		t.Fatalf("decode error %q does not name the unknown field", err)
	}
	good := []byte(`{"name":"x","nprocs":4,"aggregation":{"aggregators":"2/node","async":true}}`)
	if err := json.Unmarshal(good, &decoded); err != nil {
		t.Fatalf("valid case rejected: %v", err)
	}
	if decoded.Aggregation == nil || decoded.Aggregation.Aggregators != "2/node" {
		t.Fatalf("decoded case = %+v", decoded)
	}
}

// crossoverFS builds the filesystem the 512-rank crossover runs on:
// jitter-free so walls compare exactly, a GPFS open storm worth saving
// (5 ms/file), and a per-writer stream slow enough that concentrating
// four ranks' bytes onto one aggregator visibly costs write time.
func crossoverFS(c campaign.Case) *iosim.FileSystem {
	cfg := c.FSConfig(true)
	cfg.JitterSigma = 0
	cfg.OpenLatency = 0.005
	cfg.PerWriterBandwidth = 1e8
	return iosim.New(cfg, "")
}

// TestAggregationCrossover512 is the acceptance integration: a 512-rank
// Summit-scale surrogate case swept over {direct, 2/node, 1/node} ×
// {gpfs, bb+gpfs} must show the crossover — on the single-tier gpfs
// stack the per-writer stream binds, so concentrating bytes on fewer
// aggregators loses to the direct pattern; on the tiered stack the
// node-local buffer absorbs everyone at NVMe speed and the open-storm
// savings win — with non-zero fan-in and wall deltas, while the
// explicit all-ranks spec stays byte-identical to direct.
func TestAggregationCrossover512(t *testing.T) {
	// 8192² on MaxGridSize 256 gives 1024 level-0 boxes, so every one of
	// the 512 ranks owns data and the fan-in ladder is exact.
	base := campaign.Case{
		Name: "xover", NCell: 8192, MaxLevel: 2, MaxStep: 6, PlotInt: 2,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: campaign.EngineSurrogate,
	}
	variants := []campaign.AggregationVariant{
		{Name: "direct"},
		{Name: "2per-node", Spec: &iosim.AggregationSpec{Aggregators: "2/node"}},
		{Name: "1per-node", Spec: &iosim.AggregationSpec{Aggregators: "1/node"}},
	}
	cases := campaign.SweepAggregation(campaign.SweepStorage([]campaign.Case{base}, campaign.StorageGPFS, campaign.StorageTiered), variants...)

	ledgers := map[string][]iosim.WriteRecord{}
	for _, c := range cases {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		fs := crossoverFS(c)
		if _, err := campaign.Run(c, fs); err != nil {
			t.Fatal(err)
		}
		ledgers[c.Name] = fs.Ledger()
	}

	// The all-ranks identity pin at full scale: the explicit "all" spec
	// must reproduce the direct gpfs ledger byte for byte.
	pin := base
	pin.Storage = campaign.StorageGPFS
	pin.Aggregation = &iosim.AggregationSpec{Aggregators: iosim.AggregatorsAll}
	fs := crossoverFS(pin)
	if _, err := campaign.Run(pin, fs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs.Ledger(), ledgers[campaign.SweepAggregationName(campaign.SweepStorageName("xover", campaign.StorageGPFS), "direct")]) {
		t.Fatal("all-ranks spec is not byte-identical to the direct 512-rank run")
	}

	sums := map[campaign.Storage][]report.AggregationSummary{}
	for _, s := range []campaign.Storage{campaign.StorageGPFS, campaign.StorageTiered} {
		for _, v := range variants {
			name := campaign.SweepAggregationName(campaign.SweepStorageName("xover", s), v.Name)
			sum := report.SummarizeAggregation(v.Name, ledgers[name])
			sums[s] = append(sums[s], sum)
		}
	}

	// Fan-in: 512 producing ranks funnel through 256 and 128 writers.
	for _, s := range []campaign.Storage{campaign.StorageGPFS, campaign.StorageTiered} {
		wantWriters := []int{512, 256, 128}
		for i, sum := range sums[s] {
			if sum.Ranks != 512 {
				t.Errorf("%s %s: producing ranks = %d, want 512", s, sum.Name, sum.Ranks)
			}
			if sum.Writers != wantWriters[i] {
				t.Errorf("%s %s: writers = %d, want %d", s, sum.Name, sum.Writers, wantWriters[i])
			}
		}
		// Aggregated members pay a real gather phase.
		if sums[s][2].GatherSeconds <= 0 {
			t.Errorf("%s 1per-node: no gather time recorded", s)
		}
	}

	// The crossover: opposite winners on the two stacks, by a
	// non-trivial margin.
	gpfs, tiered := sums[campaign.StorageGPFS], sums[campaign.StorageTiered]
	if w := report.BestAggregation(gpfs); w != "direct" {
		t.Errorf("gpfs winner = %q, want the direct pattern (per-writer stream binds)", w)
	}
	if w := report.BestAggregation(tiered); w != "1per-node" {
		t.Errorf("bb+gpfs winner = %q, want 1per-node (open-storm savings)", w)
	}
	if d, a := gpfs[0].WallSeconds, gpfs[2].WallSeconds; a < d*1.01 {
		t.Errorf("gpfs: 1per-node wall %g not >1%% over direct %g", a, d)
	}
	if d, a := tiered[0].WallSeconds, tiered[2].WallSeconds; a > d*0.99 {
		t.Errorf("bb+gpfs: 1per-node wall %g not >1%% under direct %g", a, d)
	}

	// The rendered report carries the crossover line on the tiered stack.
	out := report.AggregationReport(tiered)
	if !strings.Contains(out, "aggregation comparison") || !strings.Contains(out, "crossover") {
		t.Errorf("tiered AggregationReport missing the crossover line:\n%s", out)
	}
}

// TestAggregatedFaultedRunDeterministic extends the 512-rank determinism
// pin with aggregation in the loop: a 2/node collective under a firing
// fault plan — including a rank interrupt on rank 0, an aggregator —
// run twice produces byte-identical ledgers and fault-event streams.
func TestAggregatedFaultedRunDeterministic(t *testing.T) {
	c := campaign.Case{
		Name: "aggdet", NCell: 8192, MaxLevel: 2, MaxStep: 6, PlotInt: 2,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: campaign.EngineSurrogate,
		Storage: campaign.StorageTiered, ComputeSeconds: 0.2,
		Aggregation: &iosim.AggregationSpec{Aggregators: "2/node"},
		Faults: &faults.Plan{Events: []faults.Event{
			{Kind: faults.KindTargetOutage, Start: 0.01, End: 10, Target: 1},
			{Kind: faults.KindNICDegrade, Start: 0, End: 20, Node: 3, Factor: 0.25},
			{Kind: faults.KindBBLoss, Start: 0.5, Node: 0},
			{Kind: faults.KindRankInterrupt, Start: 1.5, Rank: 0},
		}},
	}
	run := func() ([]iosim.WriteRecord, []iosim.FaultEvent) {
		fs := iosim.New(c.FSConfig(true), "")
		if _, err := campaign.Run(c, fs); err != nil {
			t.Fatal(err)
		}
		return fs.Ledger(), fs.FaultEvents()
	}
	led1, ev1 := run()
	led2, ev2 := run()
	if len(ev1) == 0 {
		t.Fatal("plan injected no faults; the determinism pin is vacuous")
	}
	if !reflect.DeepEqual(led1, led2) {
		t.Fatal("aggregated faulted ledger differs across runs")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("aggregated fault-event stream differs across runs")
	}
	// The collective actually engaged: member gathers appear in the
	// ledger and the fan-in is halved.
	writers := map[int]bool{}
	gathered := false
	for _, r := range led1 {
		if r.Dir {
			continue
		}
		if r.OpenSeconds > 0 {
			writers[r.Rank] = true
		}
		if r.GatherSeconds > 0 {
			gathered = true
		}
	}
	if len(writers) != 256 {
		t.Errorf("writers = %d, want 256 (2 aggregators per 4-rank node)", len(writers))
	}
	if !gathered {
		t.Error("no gather time recorded; aggregation never engaged")
	}
}
