package campaign_test

import (
	"reflect"
	"testing"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/report"
)

// Fold-vs-batch equivalence pins (Design 10): the same case run twice —
// once retaining the full ledger and reducing after the fact, once
// streaming into attached folds with the ledger dropped burst by burst —
// must produce DeepEqual characterizations, burst stats, and report
// summaries, across every storage stack, with and without topology,
// aggregation, and fault injection. The streaming run's filesystem must
// finish with an empty ledger: that emptiness is the memory claim.

type foldVariant struct {
	name string
	topo bool
	mut  func(*campaign.Case)
}

func foldVariants() []foldVariant {
	plan := &faults.Plan{
		Events: []faults.Event{
			{Kind: faults.KindTargetOutage, Start: 0.01, End: 10, Target: 1},
			{Kind: faults.KindNICDegrade, Start: 0, End: 20, Node: 3, Factor: 0.25},
			{Kind: faults.KindBBLoss, Start: 0.5, Node: 0},
		},
		MTBFSeconds: 50,
		Seed:        9,
	}
	return []foldVariant{
		{"default-aggregate", false, func(c *campaign.Case) {}},
		{"gpfs-topology", true, func(c *campaign.Case) { c.Storage = campaign.StorageGPFS }},
		{"bb-topology", true, func(c *campaign.Case) { c.Storage = campaign.StorageBB }},
		{"tiered-topology", true, func(c *campaign.Case) { c.Storage = campaign.StorageTiered }},
		{"tiered-aggregation", true, func(c *campaign.Case) {
			c.Storage = campaign.StorageTiered
			c.Aggregation = &iosim.AggregationSpec{Aggregators: "2/node"}
		}},
		{"gpfs-faults", true, func(c *campaign.Case) {
			c.Storage = campaign.StorageGPFS
			c.Faults = plan
		}},
		{"tiered-aggregation-faults", true, func(c *campaign.Case) {
			c.Storage = campaign.StorageTiered
			c.Aggregation = &iosim.AggregationSpec{Aggregators: "2/node"}
			c.Faults = plan
			c.ComputeSeconds = 0.2
		}},
	}
}

// runBoth executes the case through the batch and streaming paths and
// returns the streamed folds plus the batch ledger.
func runBoth(t *testing.T, c campaign.Case, topo bool) (
	char *iosim.CharacterizeFold, sum *report.SummaryFold, ledger []iosim.WriteRecord) {
	t.Helper()

	batchFS := iosim.New(c.FSConfig(topo), "")
	if _, err := campaign.Run(c, batchFS); err != nil {
		t.Fatal(err)
	}
	ledger = batchFS.Ledger()
	if len(ledger) == 0 {
		t.Fatal("batch run produced no records — variant exercises nothing")
	}

	streamFS := iosim.New(c.FSConfig(topo), "") // RetainAuto + consumers → drop
	char = iosim.NewCharacterizeFold()
	sum = report.NewSummaryFold()
	streamFS.Attach(char, sum)
	if _, err := campaign.Run(c, streamFS); err != nil {
		t.Fatal(err)
	}
	streamFS.FlushConsumers()
	if got := len(streamFS.Ledger()); got != 0 {
		t.Errorf("streaming run retained %d records; RetainAuto with consumers must drop them", got)
	}
	if streamFS.TotalBytes() != batchFS.TotalBytes() {
		t.Errorf("TotalBytes diverged: stream %d, batch %d", streamFS.TotalBytes(), batchFS.TotalBytes())
	}
	return char, sum, ledger
}

func TestFoldEquivalenceSurrogate(t *testing.T) {
	base := campaign.Case{
		Name: "foldeq", NCell: 4096, MaxLevel: 2, MaxStep: 6, PlotInt: 2,
		CFL: 0.5, NProcs: 128, Nodes: 32, Engine: campaign.EngineSurrogate,
	}
	for _, v := range foldVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			c := base
			v.mut(&c)
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			char, sum, ledger := runBoth(t, c, v.topo)

			if got, want := char.Profile(), iosim.Characterize(ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("characterization fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
			if got, want := char.Bursts(), iosim.BurstStats(ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("burst stats fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
			if got, want := sum.Dist("d"), report.SummarizeDist("d", ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("dist summary fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
			if got, want := sum.Storage("s"), report.SummarizeStorage("s", ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("storage summary fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
			if got, want := sum.Aggregation("a"), report.SummarizeAggregation("a", ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("aggregation summary fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
		})
	}
}

// TestFoldEquivalenceHydro covers the full-solver engine and the
// plotfile writer path (directory/metadata records included) on the
// aggregate and topology models.
func TestFoldEquivalenceHydro(t *testing.T) {
	base := campaign.Case{
		Name: "foldeqh", NCell: 32, MaxLevel: 1, MaxStep: 4, PlotInt: 2,
		CFL: 0.5, NProcs: 4, Nodes: 2, Engine: campaign.EngineHydro,
	}
	for _, v := range []foldVariant{
		{"aggregate", false, func(c *campaign.Case) {}},
		{"tiered-topology", true, func(c *campaign.Case) { c.Storage = campaign.StorageTiered }},
	} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			c := base
			v.mut(&c)
			char, sum, ledger := runBoth(t, c, v.topo)
			if got, want := char.Profile(), iosim.Characterize(ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("characterization fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
			if got, want := sum.Storage("s"), report.SummarizeStorage("s", ledger); !reflect.DeepEqual(got, want) {
				t.Errorf("storage summary fold != batch\nfold:  %+v\nbatch: %+v", got, want)
			}
		})
	}
}
