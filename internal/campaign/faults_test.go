package campaign

// Tests for the fault-injection campaign surface: Case validation of
// plans and compute time, the SweepFaults expansion, RunAll's panic
// recovery and per-case timeout, and the 512-rank resilience
// integration (non-zero lost-work/failover/restart-read deltas under an
// injected plan).

import (
	"strings"
	"testing"
	"time"

	"amrproxyio/internal/faults"
	"amrproxyio/internal/iosim"
)

func TestValidateRejections(t *testing.T) {
	base := Case{Name: "v", NCell: 32, MaxLevel: 2, MaxStep: 10, PlotInt: 5, CFL: 0.5, NProcs: 2, Engine: EngineHydro}
	cases := []struct {
		name string
		mut  func(*Case)
		want string
	}{
		{"unknown engine", func(c *Case) { c.Engine = "fortran" }, "unknown engine"},
		{"unknown dist", func(c *Case) { c.Dist = "random" }, "unknown distribution"},
		{"unknown storage", func(c *Case) { c.Storage = "nvme" }, "unknown storage"},
		{"negative compute", func(c *Case) { c.ComputeSeconds = -1 }, "negative compute_seconds"},
		{"bad fault kind", func(c *Case) {
			c.Faults = &faults.Plan{Events: []faults.Event{{Kind: "bogus"}}}
		}, "unknown fault kind"},
		{"bad fault window", func(c *Case) {
			c.Faults = &faults.Plan{Events: []faults.Event{{Kind: faults.KindTargetOutage, Start: 5, End: 1}}}
		}, "end 1 <= start 5"},
		{"negative mtbf", func(c *Case) { c.Faults = &faults.Plan{MTBFSeconds: -3} }, "negative mtbf_seconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mut(&c)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	good := base
	good.Faults = faults.DefaultPlan()
	good.ComputeSeconds = 0.5
	if err := good.Validate(); err != nil {
		t.Fatalf("valid faulted case rejected: %v", err)
	}
}

func TestSweepFaults(t *testing.T) {
	cases := []Case{{Name: "a"}, {Name: "b"}}
	out := SweepFaults(cases)
	if len(out) != 4 {
		t.Fatalf("default sweep produced %d cases, want 4", len(out))
	}
	wantNames := []string{"a_nofault", "a_faults", "b_nofault", "b_faults"}
	for i, c := range out {
		if c.Name != wantNames[i] {
			t.Errorf("member %d named %q, want %q", i, c.Name, wantNames[i])
		}
	}
	if out[0].Faults != nil || out[1].Faults == nil {
		t.Fatal("default variants: member 0 must be fault-free, member 1 faulted")
	}

	// Composes with the storage sweep the way dist and storage compose.
	composed := SweepFaults(SweepStorage([]Case{{Name: "c"}}, StorageBB))
	if len(composed) != 2 || composed[0].Name != SweepFaultsName(SweepStorageName("c", StorageBB), "nofault") {
		t.Fatalf("composed sweep = %+v", composed)
	}
	if composed[1].Storage != StorageBB || composed[1].Faults == nil {
		t.Fatal("composed member lost its storage or plan")
	}
}

func TestRunAllRecoversPanics(t *testing.T) {
	cases := runAllCases()[:3]
	// A filesystem factory that panics for one case: iosim.New panics on
	// storage names that bypassed validation.
	poisoned := func(c Case) *iosim.FileSystem {
		if c.Name == cases[1].Name {
			cfg := iosim.DefaultConfig()
			cfg.Storage = "nvme"
			return iosim.New(cfg, "")
		}
		return newModelFS(c)
	}
	results, err := RunAll(cases, 2, poisoned)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("RunAll error = %v, want a recovered panic", err)
	}
	if len(results) != len(cases) {
		t.Fatalf("got %d results, want %d", len(results), len(cases))
	}
	// Healthy siblings still completed.
	for _, i := range []int{0, 2} {
		if results[i].NPlots == 0 {
			t.Errorf("sibling %s did not complete: %+v", cases[i].Name, results[i])
		}
	}
	if results[1].NPlots != 0 {
		t.Errorf("panicked case reported work: %+v", results[1])
	}
}

func TestRunAllCaseTimeout(t *testing.T) {
	// Millisecond-scale surrogate cases so only the deliberately stalled
	// one can trip the bound.
	cases := []Case{
		{Name: "to_stall", NCell: 1024, MaxLevel: 2, MaxStep: 4, PlotInt: 2, CFL: 0.5, NProcs: 4, Engine: EngineSurrogate},
		{Name: "to_fast", NCell: 1024, MaxLevel: 2, MaxStep: 4, PlotInt: 2, CFL: 0.5, NProcs: 4, Engine: EngineSurrogate},
	}
	// Stall one case's filesystem construction past the timeout; the
	// sibling must still finish.
	slow := func(c Case) *iosim.FileSystem {
		if c.Name == cases[0].Name {
			time.Sleep(2 * time.Second)
		}
		return newModelFS(c)
	}
	results, err := RunAll(cases, 2, slow, WithCaseTimeout(250*time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("RunAll error = %v, want a timeout", err)
	}
	if results[0].NPlots != 0 {
		t.Errorf("timed-out case reported work: %+v", results[0])
	}
	if results[1].NPlots == 0 {
		t.Errorf("sibling did not complete: %+v", results[1])
	}

	// Without the option (or with a generous bound) everything passes.
	if _, err := RunAll(cases, 2, newModelFS, WithCaseTimeout(time.Minute)); err != nil {
		t.Fatalf("generous timeout failed: %v", err)
	}
}

// TestResilienceIntegration512 is the acceptance integration: a 512-rank
// Summit-scale surrogate case on the tiered stack, run fault-free and
// under an injected outage + interrupt plan. The faulted run must show
// non-zero lost work, failovers, and restart reads — and a strictly
// degraded forward-progress rate.
func TestResilienceIntegration512(t *testing.T) {
	base := Case{
		Name: "resil", NCell: 4096, MaxLevel: 2, MaxStep: 12, PlotInt: 3,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: EngineSurrogate,
		Storage: StorageTiered, ComputeSeconds: 0.5,
	}
	plan := &faults.Plan{
		Events: []faults.Event{
			{Kind: faults.KindTargetOutage, Start: 0.01, End: 30, Target: 0},
			{Kind: faults.KindRankInterrupt, Start: 1.5, Rank: 7},
			{Kind: faults.KindRankInterrupt, Start: 3.5, Rank: 130},
		},
		MTBFSeconds: 50,
		Seed:        9,
	}

	run := func(p *faults.Plan) faults.Resilience {
		c := base
		c.Faults = p
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		fs := iosim.New(c.FSConfig(true), "")
		res, err := Run(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.NPlots == 0 {
			t.Fatal("no plots written")
		}
		return faults.Analyze(p, fs.Ledger(), fs.FaultEvents())
	}

	clean := run(nil)
	faulted := run(plan)

	if clean.FaultWrites != 0 || clean.Failovers != 0 || clean.LostWorkSeconds != 0 {
		t.Fatalf("fault-free run shows fault activity: %+v", clean)
	}
	if clean.ForwardProgress != 1 {
		t.Fatalf("fault-free forward progress = %g, want 1", clean.ForwardProgress)
	}
	if faulted.LostWorkSeconds <= 0 {
		t.Errorf("faulted lost work = %g, want > 0", faulted.LostWorkSeconds)
	}
	if faulted.Failovers <= 0 {
		t.Errorf("faulted failovers = %d, want > 0", faulted.Failovers)
	}
	if faulted.RestartReadSeconds <= 0 {
		t.Errorf("faulted restart reads = %g, want > 0", faulted.RestartReadSeconds)
	}
	if faulted.Retries <= 0 {
		t.Errorf("faulted retries = %d, want > 0", faulted.Retries)
	}
	if faulted.ForwardProgress >= clean.ForwardProgress {
		t.Errorf("forward progress not degraded: faulted %g vs clean %g",
			faulted.ForwardProgress, clean.ForwardProgress)
	}
	if faulted.Checkpoints == 0 || faulted.Interrupts < 2 {
		t.Errorf("faulted timeline: %+v", faulted)
	}
}

// TestFaultedRunDeterministic: the same faulted 512-rank case run twice
// (concurrent rank goroutines inside the engine) produces byte-identical
// ledgers and fault-event streams.
func TestFaultedRunDeterministic(t *testing.T) {
	c := Case{
		Name: "det", NCell: 2048, MaxLevel: 2, MaxStep: 6, PlotInt: 2,
		CFL: 0.5, NProcs: 512, Nodes: 128, Engine: EngineSurrogate,
		Storage: StorageTiered, ComputeSeconds: 0.2,
		Faults: &faults.Plan{Events: []faults.Event{
			{Kind: faults.KindTargetOutage, Start: 0.01, End: 10, Target: 1},
			{Kind: faults.KindNICDegrade, Start: 0, End: 20, Node: 3, Factor: 0.25},
			{Kind: faults.KindBBLoss, Start: 0.5, Node: 0},
		}},
	}
	run := func() ([]iosim.WriteRecord, []iosim.FaultEvent) {
		fs := iosim.New(c.FSConfig(true), "")
		if _, err := Run(c, fs); err != nil {
			t.Fatal(err)
		}
		return fs.Ledger(), fs.FaultEvents()
	}
	led1, ev1 := run()
	led2, ev2 := run()
	if len(ev1) == 0 {
		t.Fatal("plan injected no faults; the determinism pin is vacuous")
	}
	if len(led1) != len(led2) {
		t.Fatalf("ledger lengths differ: %d vs %d", len(led1), len(led2))
	}
	for i := range led1 {
		if led1[i] != led2[i] {
			t.Fatalf("ledger record %d differs:\n%+v\n%+v", i, led1[i], led2[i])
		}
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("fault event %d differs:\n%+v\n%+v", i, ev1[i], ev2[i])
		}
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event lengths differ: %d vs %d", len(ev1), len(ev2))
	}
}
