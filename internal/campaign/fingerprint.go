package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Case-fingerprint canon (Design 10): two cases that run the same
// simulation must hash to the same fingerprint, and any case change
// that could change the output must change it. The canon is the
// case's own JSON encoding after normalizing the fields where distinct
// spellings mean the same run:
//
//   - Name is zeroed — it labels the row, it never reaches the engines.
//   - Engine is resolved (EngineAuto / "" → the NCell-based choice), so
//     an explicit "hydro" and an auto-resolved hydro share an entry.
//   - Dist "" resolves to the knapsack default, Storage "" to the
//     single-tier "gpfs" model — the documented equivalences.
//
// Everything else hashes as-is, including the pointer-valued plans
// (faults, mitigation, aggregation): a nil plan and a zero-valued plan
// price writes identically, but they fingerprint differently — a
// deliberate bias. A false distinction costs one redundant simulation;
// a false equality silently serves the wrong result.
//
// JSON is a safe canon here because encoding/json emits struct fields
// in declaration order with deterministic scalar encodings, and every
// Case field is tagged. The reflection guard in fingerprint_test.go
// fails the build-out if a future field dodges the encoding
// (json:"-" or unexported) without being folded in here explicitly.

// fingerprintPayload wraps the normalized case with the run-shape bits
// that live outside the Case struct but change the ledger: whether the
// filesystem prices against the case's topology.
type fingerprintPayload struct {
	Case     Case `json:"case"`
	Topology bool `json:"topology"`
}

// Fingerprint returns the canonical hex-encoded SHA-256 cache key for a
// validated case. withTopology must match the FSConfig the case will
// run against — the same case on the aggregate and per-link models
// produces different ledgers, so it gets different keys. Callers are
// expected to Validate first (the Executor does); Fingerprint itself
// only fails if the case cannot be encoded (e.g. a NaN CFL).
func Fingerprint(c Case, withTopology bool) (string, error) {
	n := c
	n.Name = ""
	n.Engine = c.engineFor()
	if n.Dist == DistDefault {
		n.Dist = DistKnapsack
	}
	if n.Storage == StorageDefault {
		n.Storage = StorageGPFS
	}
	data, err := json.Marshal(fingerprintPayload{Case: n, Topology: withTopology})
	if err != nil {
		return "", fmt.Errorf("campaign %s: fingerprint: %w", c.Name, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
