package campaign

import (
	"fmt"

	"amrproxyio/internal/resilience"
)

// Mitigation experiments: a Case carries a resilience.Policy (JSON
// round-tripped like the fault plan), SweepMitigate expands a case list
// into unmitigated/mitigated pairs, and report.MitigationReport renders
// the forward-progress comparison. The sweep composes with SweepFaults,
// SweepStorage, and SweepDist the same way those compose with each
// other — the natural shape is SweepMitigate(SweepFaults(cases)), which
// produces the (fault plan × policy) matrix the headline delta comes
// from.

// MitigateVariant names one member of a mitigation sweep.
type MitigateVariant struct {
	// Name suffixes the sweep member ("<case>_<name>").
	Name string
	// Policy is the mitigation policy the member runs under; nil is
	// unmitigated.
	Policy *resilience.Policy
}

// DefaultMitigateVariants pairs each case with its unmitigated baseline
// and the all-policies-on resilience.DefaultPolicy — the smallest sweep
// that shows a mitigation delta.
func DefaultMitigateVariants() []MitigateVariant {
	return []MitigateVariant{
		{Name: "nomitigate", Policy: nil},
		{Name: "mitigate", Policy: resilience.DefaultPolicy()},
	}
}

// SweepMitigate expands cases into the mitigation cross-product: every
// case times every variant, named "<case>_<variant>". No explicit
// variants means DefaultMitigateVariants. Like the other sweeps, the
// expansion preserves case order — variants vary fastest — and composes
// with SweepFaults/SweepStorage/SweepDist into the full strategy × tier
// × fault × policy matrix.
func SweepMitigate(cases []Case, variants ...MitigateVariant) []Case {
	if len(variants) == 0 {
		variants = DefaultMitigateVariants()
	}
	out := make([]Case, 0, len(cases)*len(variants))
	for _, c := range cases {
		for _, v := range variants {
			m := c
			m.Mitigate = v.Policy
			m.Name = SweepMitigateName(c.Name, v.Name)
			out = append(out, m)
		}
	}
	return out
}

// SweepMitigateName is the name SweepMitigate gives the (base case,
// variant) member of a sweep, mirroring SweepFaultsName.
func SweepMitigateName(base, variant string) string {
	if variant == "" {
		variant = "nomitigate"
	}
	return fmt.Sprintf("%s_%s", base, variant)
}
