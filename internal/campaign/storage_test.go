package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

// TestCaseValidateTable is the consolidated rejection table: every
// unknown-name class goes through the one Validate used by Run, RunAll,
// and the amrio-campaign flag parser, with the offending name in the
// message.
func TestCaseValidateTable(t *testing.T) {
	valid := Case{Name: "v", NCell: 32, MaxStep: 1, PlotInt: 1, CFL: 0.5, NProcs: 2}
	tests := []struct {
		name    string
		mutate  func(*Case)
		wantErr string // empty = must validate
	}{
		{"default", func(c *Case) {}, ""},
		{"explicit engine", func(c *Case) { c.Engine = EngineSurrogate }, ""},
		{"auto engine", func(c *Case) { c.Engine = EngineAuto }, ""},
		{"all dists", func(c *Case) { c.Dist = DistSFC }, ""},
		{"all storages", func(c *Case) { c.Storage = StorageTiered }, ""},
		{"unknown engine", func(c *Case) { c.Engine = "nonsense" }, `unknown engine "nonsense"`},
		{"unknown dist", func(c *Case) { c.Dist = "zorder" }, `"zorder"`},
		{"unknown storage", func(c *Case) { c.Storage = "nvme" }, `unknown storage model "nvme"`},
		{"storage typo", func(c *Case) { c.Storage = "gpfs+bb" }, `"gpfs+bb"`},
	}
	for _, tc := range tests {
		c := valid
		tc.mutate(&c)
		err := c.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want message containing %q", tc.name, err, tc.wantErr)
		}
		// Run and RunAll reject through the same Validate.
		if _, rerr := Run(c, modelFS()); rerr == nil || !strings.Contains(rerr.Error(), tc.wantErr) {
			t.Errorf("%s: Run() = %v, want message containing %q", tc.name, rerr, tc.wantErr)
		}
		if _, raerr := RunAll([]Case{c}, 1, nil); raerr == nil || !strings.Contains(raerr.Error(), tc.wantErr) {
			t.Errorf("%s: RunAll() = %v, want message containing %q", tc.name, raerr, tc.wantErr)
		}
	}
}

func TestCaseStorageJSONRoundTrip(t *testing.T) {
	c := Case4()
	c.Storage = StorageTiered
	c.ComputeSeconds = 0.25
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"storage":"bb+gpfs"`) ||
		!strings.Contains(string(data), `"compute_seconds":0.25`) {
		t.Fatalf("storage/compute_seconds not serialized: %s", data)
	}
	var back Case
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip: %+v != %+v", back, c)
	}
	// Legacy results (no storage key) load as the default stack.
	var legacy Case
	if err := json.Unmarshal([]byte(`{"name":"old","n_cell":64}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Storage != StorageDefault || legacy.ComputeSeconds != 0 {
		t.Errorf("legacy storage = %q compute = %g, want defaults", legacy.Storage, legacy.ComputeSeconds)
	}
}

func TestParseStorageNames(t *testing.T) {
	for _, name := range []string{"gpfs", "bb", "bb+gpfs"} {
		s, err := ParseStorage(name)
		if err != nil || string(s) != name {
			t.Errorf("ParseStorage(%q) = %q, %v", name, s, err)
		}
	}
	if s, err := ParseStorage(""); err != nil || s != StorageDefault {
		t.Errorf("ParseStorage(\"\") = %q, %v", s, err)
	}
	if _, err := ParseStorage("lustre"); err == nil {
		t.Error("unknown name accepted")
	}
	if got := AllStorages(); !reflect.DeepEqual(got, []Storage{StorageGPFS, StorageBB, StorageTiered}) {
		t.Errorf("AllStorages = %v", got)
	}
}

func TestSweepStorage(t *testing.T) {
	base := []Case{Case4(), Case27()}
	swept := SweepStorage(base)
	if len(swept) != len(base)*3 {
		t.Fatalf("swept %d cases, want %d", len(swept), len(base)*3)
	}
	// Case order preserved, storages vary fastest, names follow the
	// exported convention.
	for i, c := range swept {
		b := base[i/3]
		s := AllStorages()[i%3]
		if c.Storage != s || c.Name != SweepStorageName(b.Name, s) {
			t.Errorf("swept[%d] = %q/%q, want %q/%q", i, c.Name, c.Storage, SweepStorageName(b.Name, s), s)
		}
		if c.NCell != b.NCell || c.Nodes != b.Nodes {
			t.Errorf("swept[%d] lost its base shape", i)
		}
	}
	// Explicit subset and default naming.
	two := SweepStorage(base[:1], StorageDefault, StorageBB)
	if len(two) != 2 || two[0].Name != "case4_default" || two[1].Name != "case4_bb" {
		t.Errorf("explicit sweep = %+v", two)
	}
	// The dist and storage sweeps compose into the full matrix.
	matrix := SweepStorage(SweepDist(base[:1], DistRoundRobin, DistSFC), StorageGPFS, StorageBB)
	if len(matrix) != 4 || matrix[3].Name != "case4_sfc_bb" ||
		matrix[3].Dist != DistSFC || matrix[3].Storage != StorageBB {
		t.Errorf("composed sweep = %+v", matrix)
	}
}

// TestFSConfigStorage pins the Case→iosim wiring: burst-buffer cases get
// the Summit NVMe spec sized to their node count, default cases keep the
// historical configuration, and the topology rides the flag.
func TestFSConfigStorage(t *testing.T) {
	c := Case4() // 32 ranks, 2 nodes
	if got := c.FSConfig(false); got.Storage != "" || got.BurstBuffer != (iosim.BurstBuffer{}) {
		t.Errorf("default FSConfig = %+v", got)
	}
	if got := c.FSConfig(true); !got.Topology.Enabled() {
		t.Error("withTopology did not enable the topology")
	}
	c.Storage = StorageBB
	got := c.FSConfig(false)
	if got.Storage != iosim.StorageBB || got.BurstBuffer.Nodes != 2 {
		t.Errorf("bb FSConfig = %+v", got)
	}
	if got.BurstBuffer.NodeCapacity != iosim.SummitBBNodeCapacity {
		t.Errorf("bb capacity = %g, want Summit default", got.BurstBuffer.NodeCapacity)
	}
	// Node-less cases fall back to the 1-node degenerate spec.
	c.Nodes = 0
	if got := c.FSConfig(false); got.BurstBuffer.Nodes != 1 {
		t.Errorf("node-less bb FSConfig nodes = %d, want 1", got.BurstBuffer.Nodes)
	}
}

// TestRunAllDefaultFSHonorsStorage: RunAll's default filesystems build
// from FSConfig, so a Case.Storage selection produces tier-labeled
// ledgers without a custom newFS — verified indirectly by comparing a
// default run against an explicit FSConfig run.
func TestRunAllDefaultFSHonorsStorage(t *testing.T) {
	c := Case{Name: "bbcase", NCell: 32, MaxLevel: 0, MaxStep: 2, PlotInt: 1,
		CFL: 0.5, NProcs: 2, Nodes: 1, Engine: EngineHydro, Storage: StorageBB}
	results, err := RunAll([]Case{c}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := iosim.New(c.FSConfig(false), "")
	ref, err := Run(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].TotalBytes() != ref.TotalBytes() || results[0].NPlots != ref.NPlots {
		t.Fatalf("default-FS run diverged: %+v vs %+v", results[0], ref)
	}
	tiers := 0
	for _, r := range fs.Ledger() {
		if r.Tier != "" {
			tiers++
		}
	}
	if tiers == 0 {
		t.Fatal("bb case produced no tier-labeled records")
	}
}
