package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amrproxyio/internal/core"
	"amrproxyio/internal/faults"
	"amrproxyio/internal/inputs"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/plotfile"
	"amrproxyio/internal/resilience"
	"amrproxyio/internal/sim"
	"amrproxyio/internal/surrogate"
)

// Engine selects the execution substrate for a case.
type Engine string

// Engines. Auto picks Hydro at or below HydroCellLimit, Surrogate above.
const (
	EngineAuto      Engine = "auto"
	EngineHydro     Engine = "hydro"
	EngineSurrogate Engine = "surrogate"
)

// HydroCellLimit is the largest square mesh edge the full solver runs in
// the campaign; larger cases use the surrogate (documented substitution).
const HydroCellLimit = 192

// Case is one row of the Table III study.
type Case struct {
	Name     string  `json:"name"`
	NCell    int     `json:"n_cell"` // square mesh edge
	MaxLevel int     `json:"max_level"`
	MaxStep  int     `json:"max_step"`
	PlotInt  int     `json:"plot_int"`
	CFL      float64 `json:"cfl"`
	NProcs   int     `json:"nprocs"`
	Nodes    int     `json:"summit_nodes"`
	Engine   Engine  `json:"engine"`
	// Dist selects the distribution-mapping strategy both engines build
	// their hierarchies with. The empty string keeps the engines'
	// historical knapsack default; unknown names are rejected by Run,
	// like unknown engines.
	Dist Dist `json:"dist,omitempty"`
	// Remap enables the inter-burst layout reorganization
	// (amr.RemapToTargets): before every dump the rank→storage-target
	// placement is rebalanced to the hierarchy's per-rank load. Only
	// meaningful when the case runs against a target-modeling topology.
	Remap bool `json:"remap,omitempty"`
	// Storage selects the iosim storage-tier stack the case's filesystem
	// prices writes with ("gpfs" | "bb" | "bb+gpfs"). The empty string
	// keeps the historical single-tier model; unknown names are rejected
	// by Validate, like unknown engines and dists. The selection takes
	// effect through FSConfig (RunAll's default filesystems and the
	// CLIs); callers handing Run a custom filesystem configure it there.
	Storage Storage `json:"storage,omitempty"`
	// ComputeSeconds models the compute phase between time steps on the
	// filesystem clocks (sim/surrogate Options.StepSeconds): bursts are
	// separated by compute gaps that an asynchronous burst-buffer drain
	// overlaps. 0 keeps the historical back-to-back bursts.
	ComputeSeconds float64 `json:"compute_seconds,omitempty"`
	// Faults schedules deterministic fault injection against the case's
	// simulated time (internal/faults): target outages, NIC degradation,
	// burst-buffer loss, and rank interrupts. nil (and the zero plan)
	// keeps the fault-free write path byte-identical. The plan takes
	// effect through FSConfig, like Storage; invalid plans are rejected
	// by Validate.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Mitigate enables the closed-loop fault-mitigation policy engine
	// (internal/resilience) against the case's fault plan: adaptive
	// checkpoint cadence, target quarantine, and degraded-mode output.
	// nil (and the zero policy) keeps every path byte-identical; invalid
	// policies are rejected by Validate.
	Mitigate *resilience.Policy `json:"mitigate,omitempty"`
	// Aggregation selects the two-phase collective output layout
	// (iosim.AggregationSpec): aggregators gather their node peers' data
	// and are the only ranks that open files on the storage tiers. nil
	// keeps the direct every-rank-writes pattern byte-identical; the
	// spec takes effect through FSConfig, like Storage and Faults, and
	// invalid specs are rejected by Validate.
	Aggregation *iosim.AggregationSpec `json:"aggregation,omitempty"`
}

// Validate consolidates the case-level name checks — unknown engine,
// unknown distribution strategy, unknown storage tier — into the one
// place Run, RunAll, and the amrio-campaign flag parser all use, so a
// typo is rejected with the same message everywhere.
func (c Case) Validate() error {
	switch c.Engine {
	case "", EngineAuto, EngineHydro, EngineSurrogate:
	default:
		return fmt.Errorf("campaign %s: unknown engine %q", c.Name, c.Engine)
	}
	if _, err := c.Dist.strategy(); err != nil {
		return fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	if _, err := iosim.ParseStorage(string(c.Storage)); err != nil {
		return fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	if c.ComputeSeconds < 0 {
		return fmt.Errorf("campaign %s: negative compute_seconds %g", c.Name, c.ComputeSeconds)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	if err := c.Mitigate.Validate(); err != nil {
		return fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	if c.Aggregation != nil {
		if err := c.Aggregation.Validate(); err != nil {
			return fmt.Errorf("campaign %s: %w", c.Name, err)
		}
	}
	return nil
}

// Inputs converts a case to the Castro configuration it runs with.
func (c Case) Inputs() inputs.CastroInputs {
	cfg := inputs.DefaultCastroInputs()
	cfg.NCell = [2]int{c.NCell, c.NCell}
	cfg.MaxLevel = c.MaxLevel
	cfg.MaxStep = c.MaxStep
	cfg.PlotInt = c.PlotInt
	cfg.CFL = c.CFL
	cfg.NProcs = c.NProcs
	cfg.StopTime = 10 // step-bounded, not time-bounded
	if c.NCell <= 64 {
		cfg.MaxGridSize = 32
		cfg.BlockingFactor = 8
	} else if c.NCell <= 1024 {
		cfg.MaxGridSize = 64
		cfg.BlockingFactor = 8
	} else {
		cfg.MaxGridSize = 256
		cfg.BlockingFactor = 8
	}
	return cfg
}

// Topology derives the case's Summit-like hardware placement for the
// iosim per-link contention model: NProcs ranks packed onto Nodes
// compute nodes with per-node NIC caps and Alpine-style NSD fan-in.
// Cases without a node count (Nodes <= 0) return the zero (disabled)
// topology, preserving the aggregate model.
func (c Case) Topology() iosim.Topology {
	return iosim.TopologyForCase(c.Nodes, c.NProcs)
}

// FSConfig derives the iosim configuration the case runs against: the
// default Summit-flavored model, the per-link topology when withTopology
// is set, and the case's storage-tier stack — burst-buffer cases get the
// Summit NVMe spec sized to the case's node count. RunAll's default
// filesystems and the CLIs build from this, so Case.Storage takes effect
// without every call site re-deriving the wiring.
func (c Case) FSConfig(withTopology bool) iosim.Config {
	cfg := iosim.DefaultConfig()
	if withTopology {
		cfg.Topology = c.Topology()
	}
	cfg.Storage = string(c.Storage)
	if c.Storage == StorageBB || c.Storage == StorageTiered {
		cfg.BurstBuffer = iosim.DefaultBurstBuffer(maxi(1, c.Nodes))
	}
	if c.Aggregation != nil {
		cfg.Aggregation = *c.Aggregation
	}
	// The nil guard matters: storing a typed-nil *faults.Injector into
	// the interface field would defeat iosim's `cfg.Faults == nil` fast
	// path. The injector's failover pool is bounded by the same topology
	// the filesystem prices against.
	if inj := c.Faults.Injector(cfg.Topology); inj != nil {
		cfg.Faults = inj
	}
	return cfg
}

// engineFor resolves EngineAuto (and the empty string). Any other engine
// name passes through unchanged so Run can reject typos instead of
// silently auto-resolving them.
func (c Case) engineFor() Engine {
	if c.Engine != EngineAuto && c.Engine != "" {
		return c.Engine
	}
	if c.NCell <= HydroCellLimit {
		return EngineHydro
	}
	return EngineSurrogate
}

// Scaled returns a reduced copy for fast benchmarking: the mesh edge
// divides by div (with a floor) while cfl, levels, and rank counts are
// preserved. Step counts shrink less aggressively — the Sedov spin-up
// (castro.init_shrink damping plus the hot-center sound speed) consumes a
// fixed number of early steps regardless of mesh size, which is exactly
// why the paper's case4 runs 400 steps for 20 outputs. The scaled case
// keeps at least 160 steps and re-derives plot_int to preserve the
// original number of plot events.
func (c Case) Scaled(div int) Case {
	if div <= 1 {
		return c
	}
	out := c
	out.Name = fmt.Sprintf("%s_div%d", c.Name, div)
	out.NCell = max(32, c.NCell/div)
	events := max(2, c.MaxStep/max(1, c.PlotInt))
	out.MaxStep = max(160, c.MaxStep/div)
	out.PlotInt = max(1, out.MaxStep/events)
	out.NProcs = max(1, min(c.NProcs, 64)) // cap goroutine fan-out
	return out
}

// Result is a completed case with its output ledger.
type Result struct {
	Case    Case                    `json:"case"`
	Engine  Engine                  `json:"engine"`
	Records []plotfile.OutputRecord `json:"records"`
	NPlots  int                     `json:"n_plots"`
	SimTime float64                 `json:"sim_time"`
	Wall    time.Duration           `json:"wall_ns"`
	// Mitigation carries the policy engine's action counters when
	// Case.Mitigate ran one; nil otherwise.
	Mitigation *resilience.Stats `json:"mitigation,omitempty"`
	// Abandoned marks a WithCaseTimeout result whose work goroutine was
	// left running in the background (Go cannot preempt it); see
	// AbandonedInFlight for the live count.
	Abandoned bool `json:"abandoned,omitempty"`
}

// TotalBytes sums the ledger.
func (r Result) TotalBytes() int64 {
	return plotfile.TotalBytes(r.Records)
}

// Run executes a case through the given filesystem model (which may be
// shared across cases; pass a fresh one to isolate ledgers).
func Run(c Case, fs *iosim.FileSystem) (Result, error) {
	start := time.Now()
	cfg := c.Inputs()
	res := Result{Case: c, Engine: c.engineFor()}
	if err := c.Validate(); err != nil {
		return res, err
	}
	strat, err := c.Dist.strategy()
	if err != nil {
		return res, fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	switch res.Engine {
	case EngineHydro:
		opts := sim.DefaultOptions()
		opts.Dist = strat
		opts.Remap = c.Remap
		opts.StepSeconds = c.ComputeSeconds
		opts.Mitigate = c.Mitigate
		s, err := sim.New(cfg, opts, fs)
		if err != nil {
			return res, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		if err := s.Run(); err != nil {
			return res, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		res.Records = s.Records()
		res.NPlots = s.NPlots()
		res.SimTime = s.Time
		res.Mitigation = s.Mitigation()
	case EngineSurrogate:
		opts := surrogate.DefaultOptions()
		opts.Dist = strat
		opts.Remap = c.Remap
		opts.StepSeconds = c.ComputeSeconds
		opts.Mitigate = c.Mitigate
		r, err := surrogate.New(cfg, opts, fs)
		if err != nil {
			return res, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		if err := r.Run(); err != nil {
			return res, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		res.Records = r.Records()
		res.NPlots = r.NPlots()
		res.SimTime = r.Time
		res.Mitigation = r.Mitigation()
	default:
		return res, fmt.Errorf("campaign %s: unknown engine %q", c.Name, res.Engine)
	}
	res.Wall = time.Since(start)
	return res, nil
}

// RunOption tunes RunAll's worker pool.
type RunOption func(*runOptions)

type runOptions struct {
	caseTimeout time.Duration
	executor    *Executor
	onOutput    func(i int, out CaseOutput, err error)
}

// WithExecutor routes every case through a memoizing Executor: repeated
// configurations (same canonical fingerprint) are served from its LRU
// instead of the simulator, and concurrent duplicates within the batch
// share one simulation. The executor's withTopology setting decides the
// FSConfig, so WithExecutor supersedes RunAll's newFS argument (pass
// nil). The serve layer and warm sweeps build on this.
func WithExecutor(e *Executor) RunOption {
	return func(o *runOptions) { o.executor = e }
}

// WithOutputs registers a per-case completion hook: called once per
// case, from the worker goroutine that finished it, with the case's
// index, its output, and its error. Completion order is whatever the
// pool produces — the hook is for streaming consumers (the serve
// layer's NDJSON writer) that want results as they land rather than
// when the whole batch returns. Without WithExecutor the output carries
// only the Result (no streamed folds, never Cached). The hook must be
// safe for concurrent calls when parallelism > 1.
func WithOutputs(fn func(i int, out CaseOutput, err error)) RunOption {
	return func(o *runOptions) { o.onOutput = fn }
}

// WithCaseTimeout bounds each case's wall-clock run time: a case still
// running after d returns a timeout-error Result (Result.Abandoned set)
// while the pool moves on. The abandoned case's goroutine finishes (and
// is discarded) in the background — Go cannot preempt it — so timeouts
// are for surfacing stuck sweeps, not reclaiming their work. The
// abandoned work is no longer invisible: AbandonedInFlight counts the
// goroutines still running. d <= 0 disables the bound.
func WithCaseTimeout(d time.Duration) RunOption {
	return func(o *runOptions) { o.caseTimeout = d }
}

// abandonedInFlight counts case goroutines abandoned by WithCaseTimeout
// that are still running. Incremented when a timeout fires, decremented
// by a per-case drainer when the abandoned goroutine finally finishes.
var abandonedInFlight atomic.Int64

// AbandonedInFlight reports how many timed-out case goroutines are
// still running in the background across all RunAll pools — leak
// telemetry for long-lived sweep services (and the leak-detection
// test). 0 when every abandoned case has since finished.
func AbandonedInFlight() int {
	return int(abandonedInFlight.Load())
}

// RunAll executes cases concurrently on up to parallelism workers and
// returns one Result per case, in case order. Each case gets its own
// FileSystem from newFS (nil selects a fresh ModelOnly DefaultConfig
// filesystem per case), so ledgers are isolated and the results —
// records, plot counts, simulated times — are identical to running the
// cases serially; only wall-clock changes. parallelism < 1 selects
// GOMAXPROCS workers. All cases run even if some fail; a panicking case
// is recovered into its own error Result instead of killing the pool,
// and the returned error joins every per-case failure.
func RunAll(cases []Case, parallelism int, newFS func(Case) *iosim.FileSystem, opts ...RunOption) ([]Result, error) {
	if len(cases) == 0 {
		return nil, nil
	}
	var opt runOptions
	for _, o := range opts {
		o(&opt)
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(cases) {
		parallelism = len(cases)
	}
	if newFS == nil {
		newFS = func(c Case) *iosim.FileSystem {
			return iosim.New(c.FSConfig(false), "")
		}
	}
	results := make([]Result, len(cases))
	errs := make([]error, len(cases))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var out CaseOutput
				if opt.executor != nil {
					out, errs[i] = opt.executor.RunCase(cases[i], opt.caseTimeout)
					results[i] = out.Result
				} else {
					results[i], errs[i] = runCase(cases[i], newFS, opt.caseTimeout)
					out = CaseOutput{Result: results[i]}
				}
				if opt.onOutput != nil {
					opt.onOutput(i, out, errs[i])
				}
			}
		}()
	}
	for i := range cases {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errors.Join(errs...)
}

// runCase runs one pool member defensively: Validate rejects bad cases
// before a filesystem is built (healthy siblings still run), panics are
// recovered into error Results, and an optional timeout abandons stuck
// cases.
func runCase(c Case, newFS func(Case) *iosim.FileSystem, timeout time.Duration) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{Case: c, Engine: c.engineFor()}, err
	}
	return runBounded(c.Name, timeout,
		func() (Result, error) { return Run(c, newFS(c)) },
		func() Result { return Result{Case: c, Engine: c.engineFor()} },
		func() Result { return Result{Case: c, Engine: c.engineFor(), Abandoned: true} })
}

// runBounded is the shared defensive envelope for anything that runs a
// case: panics are recovered into onPanic's fallback value, and with
// timeout > 0 a case still running after the deadline returns
// onTimeout's fallback while the stuck goroutine is counted in
// AbandonedInFlight until it finishes. runCase and the memoizing
// Executor both run inside it.
func runBounded[T any](name string, timeout time.Duration, work func() (T, error), onPanic, onTimeout func() T) (T, error) {
	run := func() (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				out = onPanic()
				err = fmt.Errorf("campaign %s: panic: %v", name, r)
			}
		}()
		return work()
	}
	if timeout <= 0 {
		return run()
	}
	// The result travels through a buffered channel rather than shared
	// variables: after a timeout the abandoned goroutine's send must not
	// race the caller.
	type outcome struct {
		out T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		out, err := run()
		done <- outcome{out, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.out, o.err
	case <-timer.C:
		// Count the goroutine we are abandoning, and drain its (exactly
		// one, buffered) send when it eventually finishes so the count
		// returns to zero instead of leaking silently.
		abandonedInFlight.Add(1)
		go func() {
			<-done
			abandonedInFlight.Add(-1)
		}()
		return onTimeout(), fmt.Errorf("campaign %s: case timed out after %s", name, timeout)
	}
}

// Observation reduces a result to the feature tuple the predictive-sizing
// model (core.FitSizePredictor) trains on.
func (r Result) Observation() core.RunObservation {
	return core.RunObservation{
		NCellX:     r.Case.NCell,
		NCellY:     r.Case.NCell,
		MaxLevel:   r.Case.MaxLevel,
		CFL:        r.Case.CFL,
		NProcs:     r.Case.NProcs,
		PlotEvents: r.NPlots,
		TotalBytes: r.TotalBytes(),
	}
}

// Save writes a result to a JSON file.
func (r Result) Save(path string) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: marshal %s: %w", r.Case.Name, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadResult reads a previously saved result.
func LoadResult(path string) (Result, error) {
	var r Result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("campaign: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("campaign: unmarshal %s: %w", path, err)
	}
	return r, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
