package report

import (
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

// distLedger synthesizes a topology-labeled two-burst ledger where the
// given rank weight skews durations and target fan-in.
func distLedger(heavy float64) []iosim.WriteRecord {
	var out []iosim.WriteRecord
	for step := 0; step < 2; step++ {
		for r := 0; r < 4; r++ {
			d := 1.0
			if r == 0 {
				d = heavy
			}
			out = append(out, iosim.WriteRecord{
				Rank: r, Path: "plt/Cell_D", Bytes: int64(1e6 * d),
				Start: float64(step), Duration: d,
				Labels: iosim.Labels{Step: step * 10},
				Node:   r / 2, Target: r % 2,
			})
		}
	}
	return out
}

func TestSummarizeDist(t *testing.T) {
	s := SummarizeDist("roundrobin", distLedger(3))
	if s.Dist != "roundrobin" || s.Bursts != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MaxLinkSkew <= 1 || s.MaxNodeSkew <= 1 {
		t.Errorf("skews not detected: %+v", s)
	}
	if s.TargetsUsed != 2 || s.TargetImbalance <= 1 {
		t.Errorf("target fan-in not detected: %+v", s)
	}
	if s.WallSeconds != 2*3 { // per burst, the heavy rank sets the wall
		t.Errorf("wall = %g, want 6", s.WallSeconds)
	}

	// Unlabeled ledger: topology fields stay zero.
	plain := distLedger(2)
	for i := range plain {
		plain[i].Node, plain[i].Target = -1, -1
	}
	if p := SummarizeDist("knapsack", plain); p.MaxLinkSkew != 0 || p.TargetsUsed != 0 {
		t.Errorf("aggregate summary carries topology fields: %+v", p)
	}
}

func TestDistReport(t *testing.T) {
	sums := []DistSummary{
		SummarizeDist("roundrobin", distLedger(4)),
		SummarizeDist("sfc", distLedger(2)),
	}
	out := DistReport(sums)
	for _, want := range []string{"roundrobin", "sfc", "link-skew", "dwall", "dskew", "tgt-imb"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The sfc run is faster than the roundrobin baseline: a negative
	// wall delta must appear.
	if !strings.Contains(out, "-") || strings.Contains(out, "aggregate model") {
		t.Errorf("deltas/labels wrong:\n%s", out)
	}

	// Aggregate-model summaries get the explanatory note.
	plain := distLedger(2)
	for i := range plain {
		plain[i].Node, plain[i].Target = -1, -1
	}
	noTopo := DistReport([]DistSummary{SummarizeDist("roundrobin", plain)})
	if !strings.Contains(noTopo, "aggregate model") {
		t.Errorf("missing aggregate note:\n%s", noTopo)
	}
	if !strings.Contains(DistReport(nil), "no runs") {
		t.Error("empty report")
	}
}

func TestDistReportRunsAndFig(t *testing.T) {
	runs := []DistRun{
		{Dist: "roundrobin", Ledger: distLedger(4)},
		{Dist: "knapsack", Ledger: distLedger(1)},
	}
	out := DistReportRuns(runs)
	if !strings.Contains(out, "knapsack") {
		t.Errorf("runs report:\n%s", out)
	}
	fig := FigDistSkew(runs)
	render := fig.Render()
	for _, want := range []string{"link skew", "roundrobin", "knapsack"} {
		if !strings.Contains(render, want) {
			t.Errorf("figure missing %q:\n%s", want, render)
		}
	}
}
