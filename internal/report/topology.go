package report

import (
	"fmt"
	"strings"

	"amrproxyio/internal/iosim"
)

// Per-link renderings for the topology contention model: where a burst's
// bytes landed (compute node, storage target) and how skewed the links
// were — the distribution-mapping-aware view the aggregate bandwidth
// number hides.

// TopologyReport renders per-node and per-target aggregations plus a
// per-burst link-skew table from a topology-labeled ledger. Ledgers
// written under the aggregate model (no Node labels) produce a short
// explanatory note instead.
func TopologyReport(ledger []iosim.WriteRecord) string {
	nodeBytes := map[int]int64{}
	nodeSecs := map[int]float64{}
	targetBytes := map[int]int64{}
	labeled := false
	for _, r := range ledger {
		if r.Node < 0 {
			continue
		}
		labeled = true
		nodeBytes[r.Node] += r.Bytes
		nodeSecs[r.Node] += r.Duration
		if r.Target >= 0 {
			targetBytes[r.Target] += r.Bytes
		}
	}
	if !labeled {
		return "topology report: ledger carries no link labels (aggregate model; " +
			"set iosim.Config.Topology to enable the per-link contention model)\n"
	}

	var sb strings.Builder
	sb.WriteString("Per-link I/O decomposition (topology model)\n")

	var nodeRows [][]string
	for _, n := range SortedIntKeys(nodeBytes) {
		nodeRows = append(nodeRows, []string{
			fmt.Sprintf("%d", n),
			HumanBytes(nodeBytes[n]),
			fmt.Sprintf("%.4gs", nodeSecs[n]),
		})
	}
	sb.WriteString(Table([]string{"node", "bytes", "busy"}, nodeRows))

	if len(targetBytes) > 0 {
		// Targets can be numerous (Alpine has 77); summarize the extremes.
		keys := SortedIntKeys(targetBytes)
		var min, max int64 = -1, 0
		var total int64
		for _, k := range keys {
			b := targetBytes[k]
			total += b
			if b > max {
				max = b
			}
			if min < 0 || b < min {
				min = b
			}
		}
		mean := float64(total) / float64(len(keys))
		fmt.Fprintf(&sb, "targets: %d in use, bytes min %s  mean %s  max %s\n",
			len(keys), HumanBytes(min), HumanBytes(int64(mean)), HumanBytes(max))
	}

	var burstRows [][]string
	for _, b := range iosim.BurstStats(ledger) {
		if b.Nodes == 0 {
			continue
		}
		burstRows = append(burstRows, []string{
			fmt.Sprintf("%d", b.Step),
			fmt.Sprintf("%d", b.Nodes),
			fmt.Sprintf("%d", b.Links),
			fmt.Sprintf("%.3f", b.LinkSkew),
			fmt.Sprintf("%.3f", b.NodeSkew),
			fmt.Sprintf("%d", b.Stragglers),
		})
	}
	if len(burstRows) > 0 {
		sb.WriteString(Table(
			[]string{"step", "nodes", "links", "link-skew", "node-skew", "stragglers"},
			burstRows))
	}
	return sb.String()
}

// LinkSummary reduces a topology-labeled ledger to one line: worst
// per-burst link skew, worst node skew, and total stragglers — the
// compact per-case form amrio-campaign prints for a sweep. Unlabeled
// ledgers return "aggregate model".
func LinkSummary(ledger []iosim.WriteRecord) string {
	var maxLink, maxNode float64
	stragglers := 0
	labeled := false
	for _, b := range iosim.BurstStats(ledger) {
		if b.Nodes == 0 {
			continue
		}
		labeled = true
		if b.LinkSkew > maxLink {
			maxLink = b.LinkSkew
		}
		if b.NodeSkew > maxNode {
			maxNode = b.NodeSkew
		}
		stragglers += b.Stragglers
	}
	if !labeled {
		return "aggregate model"
	}
	return fmt.Sprintf("link-skew %.3f  node-skew %.3f  stragglers %d",
		maxLink, maxNode, stragglers)
}

// FigLinks plots per-node cumulative bytes from a topology-labeled
// ledger — the distribution-mapping companion to Fig. 8's per-task view.
func FigLinks(ledger []iosim.WriteRecord) *Plot {
	p := NewPlot("Per-node output bytes (topology model)", "node", "bytes")
	nodeBytes := map[int]int64{}
	for _, r := range ledger {
		if r.Node >= 0 {
			nodeBytes[r.Node] += r.Bytes
		}
	}
	nodes := SortedIntKeys(nodeBytes)
	xs := make([]float64, len(nodes))
	ys := make([]float64, len(nodes))
	for i, n := range nodes {
		xs[i] = float64(n)
		ys[i] = float64(nodeBytes[n])
	}
	p.Add("bytes", xs, ys)
	return p
}
