package report

import (
	"sort"

	"amrproxyio/internal/iosim"
)

// SummaryFold is the streaming form of the report summarizers: one
// iosim.LedgerConsumer that accumulates everything SummarizeDist,
// SummarizeStorage, and SummarizeAggregation need, without ever holding
// the ledger. Attach one fold per run (iosim.FileSystem.Attach) and ask
// it for whichever summaries the sweep renders; the batch Summarize*
// functions are this fold fed from a slice, so fold and batch agree by
// construction.
//
// Order discipline (the maprangefloat lesson): every float accumulator
// is keyed — per rank for the gather/open/write split, per step for
// burst timing — and finalized over sorted keys. Per-key subsequences
// are order-identical between the stream (burst-major, rank-major within
// a burst) and the batch ledger (rank-major over the whole run), so the
// finalized floats are bit-identical too.
type SummaryFold struct {
	bursts *iosim.BurstFold

	bytes       int64
	targetBytes map[int]int64

	// Aggregation fan-in and duration split (data records only).
	ranks        map[int]bool
	writers      map[int]bool
	targets      map[int]bool
	gatherByRank map[int]float64
	openByRank   map[int]float64
	writeByRank  map[int]float64

	// Burst timing for the storage drain-overlap computation.
	first map[int]float64
	last  map[int]float64
}

// NewSummaryFold returns an empty fold.
func NewSummaryFold() *SummaryFold {
	return &SummaryFold{
		bursts:       iosim.NewBurstFold(),
		targetBytes:  map[int]int64{},
		ranks:        map[int]bool{},
		writers:      map[int]bool{},
		targets:      map[int]bool{},
		gatherByRank: map[int]float64{},
		openByRank:   map[int]float64{},
		writeByRank:  map[int]float64{},
		first:        map[int]float64{},
		last:         map[int]float64{},
	}
}

// Consume folds one record.
func (f *SummaryFold) Consume(r iosim.WriteRecord) {
	f.bursts.Consume(r)
	f.bytes += r.Bytes
	if r.Target >= 0 {
		f.targetBytes[r.Target] += r.Bytes
	}
	step := r.Labels.Step
	end := r.Start + r.Duration
	if s, ok := f.first[step]; !ok || r.Start < s {
		f.first[step] = r.Start
	}
	if end > f.last[step] {
		f.last[step] = end
	}
	if r.Dir {
		return // metadata records shape burst walls but not the fan-in/split
	}
	f.ranks[r.Rank] = true
	if r.OpenSeconds > 0 {
		f.writers[r.Rank] = true
	}
	if r.Target >= 0 {
		f.targets[r.Target] = true
	}
	f.gatherByRank[r.Rank] += r.GatherSeconds
	f.openByRank[r.Rank] += r.OpenSeconds
	if rest := r.Duration - r.GatherSeconds - r.OpenSeconds; rest > 0 {
		f.writeByRank[r.Rank] += rest
	}
}

// Flush implements iosim.LedgerConsumer; no buffered state, no-op.
func (f *SummaryFold) Flush() {}

// Bursts finalizes the embedded burst fold.
func (f *SummaryFold) Bursts() []iosim.BurstStat {
	return f.bursts.Stats()
}

// Dist finalizes the placement comparison row (see SummarizeDist).
func (f *SummaryFold) Dist(dist string) DistSummary {
	s := DistSummary{Dist: dist, Bytes: f.bytes}
	linked := 0
	for _, b := range f.bursts.Stats() {
		s.Bursts++
		s.WallSeconds += b.WallSeconds
		s.Stragglers += b.Stragglers
		if b.Nodes == 0 {
			continue
		}
		linked++
		s.MeanLinkSkew += b.LinkSkew
		if b.LinkSkew > s.MaxLinkSkew {
			s.MaxLinkSkew = b.LinkSkew
		}
		if b.NodeSkew > s.MaxNodeSkew {
			s.MaxNodeSkew = b.NodeSkew
		}
	}
	if linked > 0 {
		s.MeanLinkSkew /= float64(linked)
	}
	if len(f.targetBytes) > 0 {
		s.TargetsUsed = len(f.targetBytes)
		var total int64
		for _, b := range f.targetBytes {
			total += b
			if b > s.MaxTargetBytes {
				s.MaxTargetBytes = b
			}
		}
		if mean := float64(total) / float64(len(f.targetBytes)); mean > 0 {
			s.TargetImbalance = float64(s.MaxTargetBytes) / mean
		}
	}
	return s
}

// Storage finalizes the storage-stack comparison row (see
// SummarizeStorage).
func (f *SummaryFold) Storage(storage string) StorageSummary {
	s := StorageSummary{Storage: storage, Bytes: f.bytes}
	bursts := f.bursts.Stats()
	for i, b := range bursts {
		s.Bursts++
		s.WallSeconds += b.WallSeconds
		s.BBBytes += b.BBBytes
		s.SpillBytes += b.SpillBytes
		if b.MaxBBFill > s.MaxBBFill {
			s.MaxBBFill = b.MaxBBFill
		}
		s.StallSeconds += b.StallSeconds
		s.StallRanks += b.StallRanks
		s.DrainSeconds += b.DrainSeconds
		if b.DrainSeconds > 0 && i+1 < len(bursts) {
			if gap := f.first[bursts[i+1].Step] - f.last[b.Step]; gap > 0 {
				overlap := gap
				if b.DrainSeconds < overlap {
					overlap = b.DrainSeconds
				}
				s.OverlapSeconds += overlap
			}
		}
	}
	return s
}

// Aggregation finalizes the two-phase layout comparison row (see
// SummarizeAggregation).
func (f *SummaryFold) Aggregation(name string) AggregationSummary {
	// Directory records carry zero bytes, so the all-records total equals
	// the data-records total the batch summarizer accumulated.
	s := AggregationSummary{Name: name, Bytes: f.bytes}
	ranks := make([]int, 0, len(f.gatherByRank))
	for r := range f.gatherByRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		s.GatherSeconds += f.gatherByRank[r]
		s.OpenSeconds += f.openByRank[r]
		s.WriteSeconds += f.writeByRank[r]
	}
	s.Ranks = len(f.ranks)
	s.Writers = len(f.writers)
	s.Targets = len(f.targets)
	for _, b := range f.bursts.Stats() {
		s.Bursts++
		s.WallSeconds += b.WallSeconds
	}
	return s
}
