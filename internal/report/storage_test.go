package report

import (
	"strings"
	"testing"

	"amrproxyio/internal/iosim"
)

// storageLedger drives two bursts separated by a compute gap through a
// filesystem with the given storage stack and returns the ledger. The
// burst-buffer spec (capacity 100 B, fill 10 B/s, drain 5 B/s, one rank
// per node) makes every quantity a round number.
func storageLedger(t *testing.T, storage string) []iosim.WriteRecord {
	t.Helper()
	cfg := iosim.Config{
		AggregateBandwidth: 1e12,
		PerWriterBandwidth: 20,
		Storage:            storage,
		BurstBuffer: iosim.BurstBuffer{
			NodeCapacity:   100,
			NodeBandwidth:  10,
			DrainBandwidth: 5,
			Nodes:          1,
			RanksPerNode:   1,
		},
	}
	fs := iosim.New(cfg, "")
	fs.BeginBurst(1)
	// 100 B: under bb this is 10s with 50 B left to drain (10s tail).
	if _, err := fs.WriteSize(0, "a", 100, iosim.Labels{Step: 0}); err != nil {
		t.Fatal(err)
	}
	fs.EndBurst()
	fs.AdvanceClock(0, 4) // compute gap: 4s of the drain tail overlaps
	fs.BeginBurst(1)
	// Under bb the buffer still holds 30 B; 200 B fills it and stalls.
	if _, err := fs.WriteSize(0, "b", 200, iosim.Labels{Step: 1}); err != nil {
		t.Fatal(err)
	}
	fs.EndBurst()
	return fs.Ledger()
}

func TestSummarizeStorage(t *testing.T) {
	gpfs := SummarizeStorage("gpfs", storageLedger(t, iosim.StorageGPFS))
	if gpfs.Bursts != 2 || gpfs.Bytes != 300 {
		t.Fatalf("gpfs summary = %+v", gpfs)
	}
	if gpfs.BBBytes != 0 || gpfs.SpillBytes != 0 || gpfs.StallRanks != 0 ||
		gpfs.DrainSeconds != 0 || gpfs.OverlapSeconds != 0 {
		t.Errorf("single-tier summary carries buffer fields: %+v", gpfs)
	}
	// 300 B at the 20 B/s stream: 5s + 10s.
	if gpfs.WallSeconds != 15 {
		t.Errorf("gpfs wall = %g, want 15", gpfs.WallSeconds)
	}

	bb := SummarizeStorage("bb", storageLedger(t, iosim.StorageBB))
	if bb.BBBytes != 100 || bb.SpillBytes != 200 {
		t.Errorf("bb tier bytes = %d/%d, want 100/200", bb.BBBytes, bb.SpillBytes)
	}
	if bb.StallRanks != 1 || bb.StallSeconds <= 0 {
		t.Errorf("bb stalls = %d ranks / %gs, want a straggler", bb.StallRanks, bb.StallSeconds)
	}
	if bb.MaxBBFill != 1 {
		t.Errorf("bb peak fill = %g, want 1", bb.MaxBBFill)
	}
	// Burst 0 leaves a 10s drain tail; 4s hide under the compute gap.
	// Burst 1 ends the run full (20s tail, nothing after to overlap).
	if bb.DrainSeconds != 30 || bb.OverlapSeconds != 4 {
		t.Errorf("bb drain/overlap = %g/%g, want 30/4", bb.DrainSeconds, bb.OverlapSeconds)
	}
	if bb.WallSeconds <= gpfs.WallSeconds {
		t.Errorf("bb wall %g <= gpfs wall %g: drain-limited stack should be slower here",
			bb.WallSeconds, gpfs.WallSeconds)
	}
}

func TestStorageReport(t *testing.T) {
	runs := []StorageRun{
		{Storage: "gpfs", Ledger: storageLedger(t, iosim.StorageGPFS)},
		{Storage: "bb", Ledger: storageLedger(t, iosim.StorageBB)},
		{Storage: "bb+gpfs", Ledger: storageLedger(t, iosim.StorageTiered)},
	}
	out := StorageReportRuns(runs)
	for _, want := range []string{"storage", "bb-bytes", "spill", "stall-ranks", "drain", "overlap",
		"gpfs", "bb+gpfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "single-tier runs only") {
		t.Error("tiered sweep still prints the single-tier note")
	}
	// The baseline row shows no wall delta marker; the others do.
	if !strings.Contains(out, "%") {
		t.Error("no wall deltas rendered")
	}

	solo := StorageReport([]StorageSummary{SummarizeStorage("gpfs", runs[0].Ledger)})
	if !strings.Contains(solo, "single-tier runs only") {
		t.Errorf("single-tier report lacks the hint:\n%s", solo)
	}
	if StorageReport(nil) != "storage report: no runs\n" {
		t.Error("empty report text changed")
	}

	fig := FigBBFill(runs)
	if fig == nil || !strings.Contains(fig.Render(), "occupancy") {
		t.Error("FigBBFill render missing")
	}
}
