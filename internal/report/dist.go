package report

import (
	"fmt"

	"amrproxyio/internal/iosim"
)

// Distribution-mapping experiment reporting: the same case run under
// different amr.DistStrategy placements (and optionally the inter-burst
// layout reorganization) produces different burst skew, stragglers, and
// per-target fan-in on the per-link topology model. DistReport renders
// the side-by-side comparison with deltas against the first strategy.

// DistRun pairs a strategy name with the ledger its run produced.
type DistRun struct {
	Dist   string
	Ledger []iosim.WriteRecord
}

// DistSummary is the per-strategy reduction of one run's ledger — the
// placement-sensitive quantities the comparison table shows. Ledgers
// written under the aggregate model (no link labels) leave the topology
// fields zero.
type DistSummary struct {
	Dist        string
	Bursts      int
	Bytes       int64
	WallSeconds float64 // sum over bursts of the burst wall time

	MaxLinkSkew  float64 // worst per-burst LinkSkew
	MeanLinkSkew float64 // mean over bursts with link labels
	MaxNodeSkew  float64
	Stragglers   int // total over bursts

	TargetsUsed     int
	MaxTargetBytes  int64
	TargetImbalance float64 // max/mean bytes per target (1 = balanced)
}

// SummarizeDist reduces a ledger to its DistSummary: the streaming
// SummaryFold fed from a slice.
func SummarizeDist(dist string, ledger []iosim.WriteRecord) DistSummary {
	f := NewSummaryFold()
	for _, r := range ledger {
		f.Consume(r)
	}
	return f.Dist(dist)
}

// DistReport renders the per-strategy comparison table. The first
// summary is the baseline: wall and link-skew deltas are relative to it.
// Summaries without link labels (aggregate-model runs) show only the
// placement-independent columns plus a note.
func DistReport(sums []DistSummary) string {
	if len(sums) == 0 {
		return "dist report: no runs\n"
	}
	base := sums[0]
	labeled := false
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		dWall := "-"
		if base.WallSeconds > 0 {
			dWall = fmt.Sprintf("%+.1f%%", 100*(s.WallSeconds-base.WallSeconds)/base.WallSeconds)
		}
		dSkew := "-"
		if base.MaxLinkSkew > 0 {
			dSkew = fmt.Sprintf("%+.3f", s.MaxLinkSkew-base.MaxLinkSkew)
		}
		if s.MaxLinkSkew > 0 || s.TargetsUsed > 0 {
			labeled = true
		}
		rows = append(rows, []string{
			s.Dist,
			fmt.Sprintf("%d", s.Bursts),
			HumanBytes(s.Bytes),
			fmt.Sprintf("%.4gs", s.WallSeconds),
			dWall,
			fmt.Sprintf("%.3f", s.MaxLinkSkew),
			dSkew,
			fmt.Sprintf("%.3f", s.MaxNodeSkew),
			fmt.Sprintf("%d", s.Stragglers),
			fmt.Sprintf("%.3f", s.TargetImbalance),
			HumanBytes(s.MaxTargetBytes),
		})
	}
	out := Table([]string{
		"dist", "bursts", "bytes", "wall", "dwall",
		"link-skew", "dskew", "node-skew", "stragglers", "tgt-imb", "max-tgt",
	}, rows)
	if !labeled {
		out += "(aggregate model: run with a topology to populate the per-link columns)\n"
	}
	return out
}

// DistReportRuns is DistReport over raw ledgers.
func DistReportRuns(runs []DistRun) string {
	sums := make([]DistSummary, 0, len(runs))
	for _, r := range runs {
		sums = append(sums, SummarizeDist(r.Dist, r.Ledger))
	}
	return DistReport(sums)
}

// FigDistSkew plots the per-burst link skew of each strategy — the
// placement-driven tail the aggregate bandwidth number hides. Bursts are
// indexed in step order on the x axis.
func FigDistSkew(runs []DistRun) *Plot {
	p := NewPlot("Per-burst link skew by distribution mapping", "burst", "link-skew")
	for _, r := range runs {
		var xs, ys []float64
		i := 0
		for _, b := range iosim.BurstStats(r.Ledger) {
			if b.Nodes == 0 {
				continue
			}
			xs = append(xs, float64(i))
			ys = append(ys, b.LinkSkew)
			i++
		}
		p.Add(r.Dist, xs, ys)
	}
	return p
}
