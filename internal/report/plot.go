// Package report renders the paper's tables and figures from campaign
// ledgers: ASCII scatter/line plots for terminals, CSV series for external
// plotting, and formatted tables. One exported function per paper exhibit
// keeps the mapping auditable (see DESIGN.md's experiment index).
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Plot accumulates series and renders them as an ASCII grid.
type Plot struct {
	Title      string
	XLabel     string
	YLabel     string
	LogX, LogY bool
	Width      int
	Height     int
	series     []Series
}

// NewPlot returns a plot with terminal-friendly dimensions.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series; len(x) must equal len(y).
func (p *Plot) Add(name string, x, y []float64) *Plot {
	p.series = append(p.series, Series{Name: name, X: x, Y: y})
	return p
}

// markers cycle per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func (p *Plot) transform(x, y float64) (float64, float64, bool) {
	if p.LogX {
		if x <= 0 {
			return 0, 0, false
		}
		x = math.Log10(x)
	}
	if p.LogY {
		if y <= 0 {
			return 0, 0, false
		}
		y = math.Log10(y)
	}
	return x, y, true
}

// Render draws the plot.
func (p *Plot) Render() string {
	var xmin, xmax, ymin, ymax float64
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	any := false
	for _, s := range p.series {
		for i := range s.X {
			x, y, ok := p.transform(s.X[i], s.Y[i])
			if !ok {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var sb strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&sb, "%s\n", p.Title)
	}
	if !any {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y, ok := p.transform(s.X[i], s.Y[i])
			if !ok {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(p.Width-1))
			row := p.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(p.Height-1))
			if row >= 0 && row < p.Height && col >= 0 && col < p.Width {
				grid[row][col] = mark
			}
		}
	}
	axisLabel := func(v float64, log bool) string {
		if log {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	for r, line := range grid {
		prefix := "          |"
		if r == 0 {
			prefix = fmt.Sprintf("%10s|", axisLabel(ymax, p.LogY))
		} else if r == p.Height-1 {
			prefix = fmt.Sprintf("%10s|", axisLabel(ymin, p.LogY))
		}
		sb.WriteString(prefix)
		sb.Write(line)
		sb.WriteByte('\n')
	}
	sb.WriteString("          +" + strings.Repeat("-", p.Width) + "\n")
	fmt.Fprintf(&sb, "           %-20s%*s\n",
		axisLabel(xmin, p.LogX), p.Width-20, axisLabel(xmax, p.LogX))
	fmt.Fprintf(&sb, "           x: %s   y: %s\n", p.XLabel, p.YLabel)
	for si, s := range p.series {
		fmt.Fprintf(&sb, "           %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// CSV renders every series as long-form CSV: series,x,y.
func (p *Plot) CSV() string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range p.series {
		for i := range s.X {
			fmt.Fprintf(&sb, "%s,%.10g,%.10g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return sb.String()
}

// Table renders rows with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// HumanBytes renders a byte count with binary-ish SI units.
func HumanBytes(n int64) string {
	f := float64(n)
	for _, unit := range []string{"B", "KB", "MB", "GB", "TB", "PB"} {
		if f < 1000 {
			return fmt.Sprintf("%.3g %s", f, unit)
		}
		f /= 1000
	}
	return fmt.Sprintf("%.3g EB", f)
}

// Int64s converts to float64 for plotting.
func Int64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// Ints converts to float64 for plotting.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// SortedIntKeys returns the sorted keys of a map keyed by int.
func SortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
