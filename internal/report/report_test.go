package report

import (
	"math"
	"strings"
	"testing"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/plotfile"
)

func TestPlotRenderBasics(t *testing.T) {
	p := NewPlot("title", "xx", "yy")
	p.Add("s1", []float64{0, 1, 2}, []float64{0, 1, 4})
	out := p.Render()
	for _, want := range []string{"title", "xx", "yy", "s1", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPlotLogScalesSkipNonPositive(t *testing.T) {
	p := NewPlot("log", "x", "y")
	p.LogX, p.LogY = true, true
	p.Add("s", []float64{0, 10, 100}, []float64{-1, 10, 1000})
	out := p.Render()
	if strings.Contains(out, "(no data)") {
		t.Error("positive points should render")
	}
	// Only non-positive data -> no data.
	q := NewPlot("empty", "x", "y")
	q.LogY = true
	q.Add("s", []float64{1}, []float64{0})
	if !strings.Contains(q.Render(), "(no data)") {
		t.Error("expected no data for all-non-positive log series")
	}
}

func TestPlotEmptyAndConstant(t *testing.T) {
	p := NewPlot("none", "x", "y")
	if !strings.Contains(p.Render(), "(no data)") {
		t.Error("empty plot should say so")
	}
	c := NewPlot("const", "x", "y")
	c.Add("s", []float64{1, 2}, []float64{5, 5})
	if strings.Contains(c.Render(), "(no data)") {
		t.Error("constant series must render")
	}
}

func TestPlotCSV(t *testing.T) {
	p := NewPlot("t", "x", "y")
	p.Add("a", []float64{1}, []float64{2})
	p.Add("b", []float64{3}, []float64{4})
	csv := p.CSV()
	if !strings.HasPrefix(csv, "series,x,y\n") {
		t.Errorf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "a,1,2") || !strings.Contains(csv, "b,3,4") {
		t.Errorf("csv rows: %q", csv)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"col", "x"}, [][]string{{"longvalue", "1"}, {"s", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[2]) < len("longvalue") {
		t.Error("column not padded")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.05 KB",
		1500000:       "1.5 MB",
		3_000_000_000: "3 GB",
		1.4e12:        "1.4 TB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestStaticTables(t *testing.T) {
	t1 := TableI()
	for _, param := range []string{"amr.max_step", "amr.n_cell", "amr.max_level", "amr.plot_int", "castro.cfl"} {
		if !strings.Contains(t1, param) {
			t.Errorf("Table I missing %s", param)
		}
	}
	t2 := TableII()
	for _, arg := range []string{"interface", "parallel_file_mode", "num_dumps", "part_size",
		"avg_num_parts", "vars_per_part", "compute_time", "meta_size", "dataset_growth"} {
		if !strings.Contains(t2, arg) {
			t.Errorf("Table II missing %s", arg)
		}
	}
}

// fakeResult builds a Result with a synthetic growing ledger.
func fakeResult(name string, ncell, nprocs, nsteps, levels int, growth float64) campaign.Result {
	c := campaign.Case{Name: name, NCell: ncell, NProcs: nprocs, MaxLevel: levels - 1,
		MaxStep: nsteps * 10, PlotInt: 10, CFL: 0.4}
	var recs []plotfile.OutputRecord
	for k := 0; k < nsteps; k++ {
		for l := 0; l < levels; l++ {
			for rank := 0; rank < nprocs; rank++ {
				b := int64(float64((l+1)*50000) * math.Pow(growth, float64(k)) * float64(1+rank%3))
				recs = append(recs, plotfile.OutputRecord{Step: k * 10, Level: l, Rank: rank, Bytes: b})
			}
		}
	}
	return campaign.Result{Case: c, Engine: campaign.EngineHydro, Records: recs, NPlots: nsteps}
}

func TestFig5Fig6Fig7(t *testing.T) {
	r1 := fakeResult("a", 128, 4, 6, 2, 1.01)
	r2 := fakeResult("b", 256, 8, 6, 3, 1.05)
	if out := Fig5([]campaign.Result{r1, r2}).Render(); !strings.Contains(out, "Fig. 5") {
		t.Error("Fig5 render broken")
	}
	if out := Fig6([]campaign.Result{r1, r2}).Render(); !strings.Contains(out, "cfl0.4_maxl1") {
		t.Errorf("Fig6 legend missing:\n%s", out)
	}
	p7 := Fig7(r1)
	out := p7.Render()
	if !strings.Contains(out, "L0") || !strings.Contains(out, "L1") {
		t.Errorf("Fig7 levels missing:\n%s", out)
	}
}

func TestFig8ImbalanceDetected(t *testing.T) {
	r := fakeResult("c27", 128, 8, 3, 2, 1.0)
	plot, imbalance := Fig8(r, 1)
	if !strings.Contains(plot.Render(), "Fig. 8") {
		t.Error("Fig8 render broken")
	}
	// ranks get 1x..3x weights -> imbalance > 1.
	if !(imbalance > 1.0) {
		t.Errorf("imbalance = %g, want > 1", imbalance)
	}
}

func TestFig9Fig10Fig11(t *testing.T) {
	measured := make([]int64, 10)
	for k := range measured {
		measured[k] = int64(1e6 * math.Pow(1.0131, float64(k)))
	}
	model, trace := core.CalibrateGrowth(measured, 1e6, 1.0, 1.05)
	if out := Fig9(measured, trace, 1e6).Render(); !strings.Contains(out, "measured") {
		t.Error("Fig9 missing measured series")
	}

	r := fakeResult("case4_cfl4_maxl4", 512, 4, 8, 3, 1.013)
	cfg := r.Case.Inputs()
	tr, err := core.Translate(cfg, r.Records, core.DefaultTranslateOptions())
	if err != nil {
		t.Fatal(err)
	}
	plot, mapes := Fig10([]campaign.Result{r}, []core.Translation{tr})
	if !strings.Contains(plot.Render(), "model") {
		t.Error("Fig10 missing model series")
	}
	if len(mapes) != 1 || mapes[0] > 5 {
		t.Errorf("Fig10 MAPE = %v, expected tight fit on synthetic growth", mapes)
	}

	p11, mape := Fig11(r, model)
	if !strings.Contains(p11.Render(), "kernel") {
		t.Error("Fig11 missing kernel series")
	}
	if math.IsNaN(mape) {
		t.Error("Fig11 MAPE NaN")
	}
}

func TestFig2Fig3FromLedger(t *testing.T) {
	fs := iosim.New(iosim.DefaultConfig(), "")
	fs.WriteSize(0, "plt00000/Header", 100, iosim.Labels{})
	fs.WriteSize(0, "plt00000/Level_0/Cell_D_00000", 1000, iosim.Labels{})
	out := Fig2(fs.Ledger())
	if !strings.Contains(out, "plt00000") || !strings.Contains(out, "Level_0/Cell_D_00000") {
		t.Errorf("Fig2:\n%s", out)
	}
	fs2 := iosim.New(iosim.DefaultConfig(), "")
	fs2.WriteSize(0, "macsio_json_00000_000.json", 100, iosim.Labels{})
	fs2.WriteSize(0, "macsio_json_root_000.json", 10, iosim.Labels{})
	out3 := Fig3(fs2.Ledger())
	if !strings.Contains(out3, "data") || !strings.Contains(out3, "metadata") {
		t.Errorf("Fig3:\n%s", out3)
	}
	if strings.Index(out3, "macsio_json_00000_000.json") > strings.Index(out3, "metadata") {
		t.Error("data file listed under metadata")
	}
}

func TestTableIIIRendersResults(t *testing.T) {
	r := fakeResult("x", 64, 2, 2, 2, 1.0)
	out := TableIII([]campaign.Result{r})
	if !strings.Contains(out, "64x64") || !strings.Contains(out, "hydro") {
		t.Errorf("TableIII:\n%s", out)
	}
}

func TestListing1AndBurstReport(t *testing.T) {
	r := fakeResult("case4", 512, 4, 8, 3, 1.012)
	tr, err := core.Translate(r.Case.Inputs(), r.Records, core.DefaultTranslateOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := Listing1(tr, 32)
	if !strings.Contains(out, "jsrun -n 32") || !strings.Contains(out, "--dataset_growth") {
		t.Errorf("Listing1:\n%s", out)
	}
	fs := iosim.New(iosim.DefaultConfig(), "")
	fs.WriteSize(0, "a", 1e6, iosim.Labels{Step: 0})
	fs.WriteSize(1, "b", 2e6, iosim.Labels{Step: 0})
	br := BurstReport(fs.Ledger())
	if !strings.Contains(br, "step") || !strings.Contains(br, "3 MB") {
		t.Errorf("BurstReport:\n%s", br)
	}
}
