package report

import (
	"fmt"

	"amrproxyio/internal/faults"
)

// Resilience reporting: the same case run under different fault plans
// (SweepFaults) produces different lost-work, failover, and restart-read
// costs. ResilienceReport renders the side-by-side comparison the way
// StorageReport compares tier stacks.

// ResilienceSummary pairs a config name with its analyzed recovery
// model.
type ResilienceSummary struct {
	Name string
	faults.Resilience
}

// ResilienceReport renders the per-config recovery comparison table.
// Fault-free configs show a forward-progress rate of 1 and zeros
// elsewhere, which is the comparison's point.
func ResilienceReport(sums []ResilienceSummary) string {
	if len(sums) == 0 {
		return "resilience report: no runs\n"
	}
	young := false
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		if s.YoungIntervalSeconds > 0 {
			young = true
		}
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Checkpoints),
			fmt.Sprintf("%d", s.Interrupts),
			fmt.Sprintf("%.4gs", s.LostWorkSeconds),
			fmt.Sprintf("%.4gs", s.RestartReadSeconds),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%d", s.Failovers),
			fmt.Sprintf("%.4gs", s.FaultSeconds),
			fmt.Sprintf("%.3f", s.ForwardProgress),
		})
	}
	out := Table([]string{
		"config", "ckpts", "interrupts", "lost-work", "restart-read",
		"retries", "failovers", "fault-time", "fwd-progress",
	}, rows)
	if young {
		for _, s := range sums {
			if s.YoungIntervalSeconds > 0 {
				out += fmt.Sprintf("%s: Young/Daly optimal checkpoint interval %.4gs (MTBF-driven)\n",
					s.Name, s.YoungIntervalSeconds)
			}
		}
	}
	return out
}
