package report

import (
	"fmt"

	"amrproxyio/internal/iosim"
)

// Two-phase aggregation reporting: the same case run under different
// iosim.AggregationSpec layouts trades per-file open/metadata cost
// against gather time and write-stream concentration, and the winning
// layout flips across storage stacks (the paper's MIF-vs-collective
// crossover). AggregationReport renders the side-by-side comparison with
// deltas against the first layout, the way StorageReport compares tiers.

// AggregationRun pairs an aggregation-layout name with the ledger its
// run produced.
type AggregationRun struct {
	Name   string
	Ledger []iosim.WriteRecord
}

// AggregationSummary is the per-layout reduction of one run's ledger.
type AggregationSummary struct {
	Name   string
	Bursts int
	Bytes  int64
	// Ranks is the fan-in before aggregation: distinct ranks producing
	// data records. Writers is the fan-in after: distinct ranks paying a
	// file open (under aggregation, only aggregators do). Targets counts
	// the distinct storage targets the data fanned into.
	Ranks   int
	Writers int
	Targets int

	WallSeconds float64 // sum over bursts of the burst wall time

	// The three-way duration split across all data records: intra-node
	// gather time, file-open/metadata time, and the write-phase
	// remainder.
	GatherSeconds float64
	OpenSeconds   float64
	WriteSeconds  float64
}

// SummarizeAggregation reduces a ledger to its AggregationSummary.
// Directory (metadata) records are excluded from the fan-in counts and
// the duration split — they go to the metadata service, not a data
// target — but still shape the burst walls, like everywhere else.
func SummarizeAggregation(name string, ledger []iosim.WriteRecord) AggregationSummary {
	f := NewSummaryFold()
	for _, r := range ledger {
		f.Consume(r)
	}
	return f.Aggregation(name)
}

// AggregationReport renders the per-layout comparison table. The first
// summary is the baseline (conventionally the direct pattern): wall
// deltas are relative to it, so the crossover — which layout wins on
// this storage stack — reads straight off the dwall column.
func AggregationReport(sums []AggregationSummary) string {
	if len(sums) == 0 {
		return "aggregation report: no runs\n"
	}
	base := sums[0]
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		dWall := "-"
		if base.WallSeconds > 0 {
			dWall = fmt.Sprintf("%+.1f%%", 100*(s.WallSeconds-base.WallSeconds)/base.WallSeconds)
		}
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Bursts),
			HumanBytes(s.Bytes),
			fmt.Sprintf("%d", s.Ranks),
			fmt.Sprintf("%d", s.Writers),
			fmt.Sprintf("%d", s.Targets),
			fmt.Sprintf("%.4gs", s.WallSeconds),
			dWall,
			fmt.Sprintf("%.4gs", s.GatherSeconds),
			fmt.Sprintf("%.4gs", s.OpenSeconds),
			fmt.Sprintf("%.4gs", s.WriteSeconds),
		})
	}
	out := "aggregation comparison (fan-in: ranks -> writers)\n"
	out += Table([]string{
		"layout", "bursts", "bytes", "ranks", "writers", "targets",
		"wall", "dwall", "gather", "open", "write",
	}, rows)
	if winner := BestAggregation(sums); winner != "" && winner != base.Name {
		out += fmt.Sprintf("crossover: %q beats the %q baseline on this stack\n", winner, base.Name)
	}
	return out
}

// AggregationReportRuns is AggregationReport over raw ledgers.
func AggregationReportRuns(runs []AggregationRun) string {
	sums := make([]AggregationSummary, 0, len(runs))
	for _, r := range runs {
		sums = append(sums, SummarizeAggregation(r.Name, r.Ledger))
	}
	return AggregationReport(sums)
}

// BestAggregation names the layout with the smallest total burst wall;
// empty for an empty comparison. The integration tests assert the winner
// flips across storage stacks (the crossover).
func BestAggregation(sums []AggregationSummary) string {
	best := ""
	bestWall := 0.0
	for _, s := range sums {
		if best == "" || s.WallSeconds < bestWall {
			best, bestWall = s.Name, s.WallSeconds
		}
	}
	return best
}
