package report

import (
	"fmt"

	"amrproxyio/internal/iosim"
)

// Storage-tier experiment reporting: the same case run against different
// iosim storage stacks ("gpfs" | "bb" | "bb+gpfs") produces different
// burst walls, per-tier byte splits, drain tails, and stall stragglers.
// StorageReport renders the side-by-side comparison with deltas against
// the first stack, the way DistReport compares placements.

// StorageRun pairs a storage stack name with the ledger its run produced.
type StorageRun struct {
	Storage string
	Ledger  []iosim.WriteRecord
}

// StorageSummary is the per-stack reduction of one run's ledger.
// Ledgers written under a single-tier model (no tier labels) leave the
// burst-buffer fields zero.
type StorageSummary struct {
	Storage     string
	Bursts      int
	Bytes       int64
	WallSeconds float64 // sum over bursts of the burst wall time

	BBBytes    int64 // bytes absorbed at burst-buffer speed
	SpillBytes int64 // bytes that stalled through to the GPFS tier

	MaxBBFill    float64 // peak buffer-partition occupancy fraction
	StallSeconds float64 // sum over bursts of the max-rank stall time
	StallRanks   int     // stall stragglers summed over bursts

	DrainSeconds float64 // sum over bursts of the post-burst drain tails
	// OverlapSeconds is the portion of DrainSeconds hidden under the
	// compute gaps between bursts: each burst's drain tail overlaps the
	// gap to the next burst's first write. Back-to-back bursts (no
	// modeled compute time) overlap nothing.
	OverlapSeconds float64
}

// SummarizeStorage reduces a ledger to its StorageSummary. Drain overlap
// needs burst timing, so the ledger must carry the usual Start/Duration
// fields (any FileSystem ledger does).
func SummarizeStorage(storage string, ledger []iosim.WriteRecord) StorageSummary {
	f := NewSummaryFold()
	for _, r := range ledger {
		f.Consume(r)
	}
	return f.Storage(storage)
}

// StorageReport renders the per-stack comparison table. The first
// summary is the baseline: wall deltas are relative to it. Summaries
// without tier labels (single-tier runs) show zeros in the burst-buffer
// columns, which is the comparison's point.
func StorageReport(sums []StorageSummary) string {
	if len(sums) == 0 {
		return "storage report: no runs\n"
	}
	base := sums[0]
	tiered := false
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		dWall := "-"
		if base.WallSeconds > 0 {
			dWall = fmt.Sprintf("%+.1f%%", 100*(s.WallSeconds-base.WallSeconds)/base.WallSeconds)
		}
		if s.BBBytes > 0 || s.SpillBytes > 0 {
			tiered = true
		}
		name := s.Storage
		if name == "" {
			name = "default"
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", s.Bursts),
			HumanBytes(s.Bytes),
			fmt.Sprintf("%.4gs", s.WallSeconds),
			dWall,
			HumanBytes(s.BBBytes),
			HumanBytes(s.SpillBytes),
			fmt.Sprintf("%.3f", s.MaxBBFill),
			fmt.Sprintf("%d", s.StallRanks),
			fmt.Sprintf("%.4gs", s.StallSeconds),
			fmt.Sprintf("%.4gs", s.DrainSeconds),
			fmt.Sprintf("%.4gs", s.OverlapSeconds),
		})
	}
	out := Table([]string{
		"storage", "bursts", "bytes", "wall", "dwall",
		"bb-bytes", "spill", "peak-fill", "stall-ranks", "stall", "drain", "overlap",
	}, rows)
	if !tiered {
		out += "(single-tier runs only: sweep a \"bb\"/\"bb+gpfs\" storage to populate the buffer columns)\n"
	}
	return out
}

// StorageReportRuns is StorageReport over raw ledgers.
func StorageReportRuns(runs []StorageRun) string {
	sums := make([]StorageSummary, 0, len(runs))
	for _, r := range runs {
		sums = append(sums, SummarizeStorage(r.Storage, r.Ledger))
	}
	return StorageReport(sums)
}

// FigBBFill plots each stack's per-burst peak buffer occupancy — the
// fill-and-drain sawtooth the single-tier wall number hides. Bursts are
// indexed in step order on the x axis.
func FigBBFill(runs []StorageRun) *Plot {
	p := NewPlot("Per-burst burst-buffer occupancy by storage stack", "burst", "peak fill")
	for _, r := range runs {
		var xs, ys []float64
		i := 0
		for _, b := range iosim.BurstStats(r.Ledger) {
			if b.BBBytes == 0 && b.SpillBytes == 0 {
				continue
			}
			xs = append(xs, float64(i))
			ys = append(ys, b.MaxBBFill)
			i++
		}
		p.Add(r.Storage, xs, ys)
	}
	return p
}
