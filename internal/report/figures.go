package report

import (
	"fmt"
	"strings"

	"amrproxyio/internal/campaign"
	"amrproxyio/internal/core"
	"amrproxyio/internal/iosim"
	"amrproxyio/internal/stats"
)

// One renderer per paper exhibit. Each returns the terminal rendering;
// pair with Plot.CSV via the cmd tools for machine-readable output.

// TableI reproduces the paper's Table I: the Castro input parameters
// varied in the study.
func TableI() string {
	return "Table I: AMReX Castro input parameters varied (Sedov baseline)\n" +
		Table(
			[]string{"parameter", "description"},
			[][]string{
				{"amr.max_step", "maximum expected number of steps"},
				{"amr.n_cell", "number of cells at Level 0 in each direction"},
				{"amr.max_level", "maximum level of refinement allowed"},
				{"amr.plot_int", "frequency of plot outputs"},
				{"castro.cfl", "CFL condition"},
			})
}

// TableII reproduces the paper's Table II: the MACSio arguments used to
// model the Castro outputs.
func TableII() string {
	return "Table II: MACSio command line arguments used in the model\n" +
		Table(
			[]string{"argument", "description"},
			[][]string{
				{"interface", "output type: hdf5, json (miftmpl), silo"},
				{"parallel_file_mode", "file mode: multiple independent (MIF), single (SIF)"},
				{"num_dumps", "number of dumps to marshal"},
				{"part_size", "per-task mesh part size"},
				{"avg_num_parts", "average number of mesh parts per task"},
				{"vars_per_part", "number of mesh variables on each part"},
				{"compute_time", "rough time between dumps"},
				{"meta_size", "additional metadata size per task"},
				{"dataset_growth", "multiplier factor for data growth"},
			})
}

// TableIII summarizes a campaign's parameter ranges the way the paper's
// Table III does, plus per-case results when ledgers are supplied.
func TableIII(results []campaign.Result) string {
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Case.Name,
			fmt.Sprintf("%dx%d", r.Case.NCell, r.Case.NCell),
			fmt.Sprintf("%d", r.Case.MaxLevel),
			fmt.Sprintf("%d", r.Case.MaxStep),
			fmt.Sprintf("%d", r.Case.PlotInt),
			fmt.Sprintf("%.1f", r.Case.CFL),
			fmt.Sprintf("%d", r.Case.NProcs),
			string(r.Engine),
			fmt.Sprintf("%d", r.NPlots),
			HumanBytes(r.TotalBytes()),
		})
	}
	return "Table III: campaign runs (paper ranges: steps 40-1000, cells 32^2-131072^2,\n" +
		"levels 2-4, plot_int 1-20, cfl 0.3-0.6, nprocs 1-1024, nodes 1-512)\n" +
		Table([]string{"case", "n_cell", "maxlev", "steps", "plot_int", "cfl", "nprocs", "engine", "plots", "bytes"}, rows)
}

// Fig2 renders the plotfile directory tree from an iosim ledger, the
// paper's Fig. 2 structure.
func Fig2(ledger []iosim.WriteRecord) string {
	tree := map[string][]string{}
	var roots []string
	seenRoot := map[string]bool{}
	for _, r := range ledger {
		if r.Dir {
			continue // directory metadata records are not tree leaves
		}
		parts := strings.SplitN(r.Path, "/", 2)
		root := parts[0]
		if !seenRoot[root] {
			seenRoot[root] = true
			roots = append(roots, root)
		}
		if len(parts) > 1 {
			tree[root] = append(tree[root], parts[1])
		}
	}
	var sb strings.Builder
	sb.WriteString("Fig. 2: Castro plotfile analysis output structure\n")
	for _, root := range roots {
		fmt.Fprintf(&sb, "%s\n", root)
		for _, child := range tree[root] {
			fmt.Fprintf(&sb, "    %s\n", child)
		}
	}
	return sb.String()
}

// Fig5 plots cumulative output size against the Eq. (1) cumulative cell
// count for a set of campaign results (log-log, as in the paper).
func Fig5(results []campaign.Result) *Plot {
	p := NewPlot("Fig. 5: cumulative output size vs cumulative output cells (log-log)",
		"output_counter * ncells", "cumulative bytes")
	p.LogX, p.LogY = true, true
	for _, r := range results {
		ncells := int64(r.Case.NCell) * int64(r.Case.NCell)
		xs, ys := core.CumulativeXY(r.Records, ncells)
		p.Add(r.Case.Name, xs, ys)
	}
	return p
}

// Fig6 plots cumulative output against cumulative cells for the case4
// CFL / max_level pivot matrix.
func Fig6(results []campaign.Result) *Plot {
	p := NewPlot("Fig. 6: CFL and AMR level dependency of cumulative output (case4 pivot)",
		"cumulative output cells", "cumulative bytes")
	for _, r := range results {
		ncells := int64(r.Case.NCell) * int64(r.Case.NCell)
		xs, ys := core.CumulativeXY(r.Records, ncells)
		p.Add(fmt.Sprintf("cfl%.1f_maxl%d", r.Case.CFL, r.Case.MaxLevel), xs, ys)
	}
	return p
}

// Fig7 plots the per-level cumulative output decomposition of one run.
func Fig7(r campaign.Result) *Plot {
	p := NewPlot("Fig. 7: cumulative output per AMR level (pivot case)",
		"cumulative output cells", "cumulative bytes per level")
	ncells := int64(r.Case.NCell) * int64(r.Case.NCell)
	_, byLevel := core.PerLevelPerStep(r.Records)
	for _, level := range SortedIntKeys(byLevel) {
		series := byLevel[level]
		xs := make([]float64, len(series))
		ys := stats.CumSum(Int64s(series))
		for k := range xs {
			xs[k] = float64(k+1) * float64(ncells)
		}
		p.Add(fmt.Sprintf("L%d", level), xs, ys)
	}
	return p
}

// Fig8 plots per-task bytes at each output step for one level of a run
// (the paper's case27 view); it also reports the imbalance ratio.
func Fig8(r campaign.Result, level int) (*Plot, float64) {
	p := NewPlot(fmt.Sprintf("Fig. 8: per-task output at level %d (%s)", level, r.Case.Name),
		"taskID", "bytes per step")
	steps, byTask := core.PerTaskPerStep(r.Records, level, r.Case.NProcs)
	var lastStep []float64
	for k := range steps {
		xs := make([]float64, len(byTask))
		ys := make([]float64, len(byTask))
		for rank := range byTask {
			xs[rank] = float64(rank)
			ys[rank] = float64(byTask[rank][k])
		}
		p.Add(fmt.Sprintf("step%d", steps[k]), xs, ys)
		lastStep = ys
	}
	imbalance := stats.ImbalanceRatio(lastStep)
	return p, imbalance
}

// Fig9 plots the dataset_growth calibration convergence: each iteration's
// kernel curve against the measured series.
func Fig9(measured []int64, trace []core.CalibrationIter, base float64) *Plot {
	p := NewPlot("Fig. 9: MACSio dataset_growth calibration convergence",
		"output step", "bytes per step")
	xs := make([]float64, len(measured))
	ys := make([]float64, len(measured))
	for i, b := range measured {
		xs[i] = float64(i)
		ys[i] = float64(b)
	}
	p.Add("measured", xs, ys)
	// A few representative iterations plus the final one.
	pick := []int{0, len(trace) / 4, len(trace) / 2, len(trace) - 1}
	for _, idx := range pick {
		if idx < 0 || idx >= len(trace) {
			continue
		}
		m := core.KernelModel{Base: base, Growth: trace[idx].Growth}
		p.Add(fmt.Sprintf("iter%d g=%.6f", idx, trace[idx].Growth), xs, m.PredictSeries(len(measured)))
	}
	return p
}

// Fig10 compares measured per-step bytes against the calibrated MACSio
// kernel for each pivot variant; returns the plot and per-variant MAPE.
func Fig10(variants []campaign.Result, translations []core.Translation) (*Plot, []float64) {
	p := NewPlot("Fig. 10: measured Castro outputs vs MACSio model (case4 variants)",
		"output step", "bytes per step")
	var mapes []float64
	for i, r := range variants {
		_, perStep := core.PerStepBytes(r.Records)
		xs := make([]float64, len(perStep))
		meas := make([]float64, len(perStep))
		for k, b := range perStep {
			xs[k] = float64(k)
			meas[k] = float64(b)
		}
		name := fmt.Sprintf("cfl%.1f_maxl%d", r.Case.CFL, r.Case.MaxLevel)
		p.Add(name+"_measured", xs, meas)
		if i < len(translations) {
			pred := translations[i].Kernel.PredictSeries(len(perStep))
			p.Add(name+"_model", xs, pred)
			mapes = append(mapes, stats.MAPE(meas, pred))
		}
	}
	return p, mapes
}

// Fig11 compares a large-scale run's per-step output against the kernel
// model, the paper's Fig. 11.
func Fig11(r campaign.Result, model core.KernelModel) (*Plot, float64) {
	p := NewPlot(fmt.Sprintf("Fig. 11: large case %s vs MACSio kernel", r.Case.Name),
		"output step", "bytes per step")
	_, perStep := core.PerStepBytes(r.Records)
	xs := make([]float64, len(perStep))
	meas := make([]float64, len(perStep))
	for k, b := range perStep {
		xs[k] = float64(k)
		meas[k] = float64(b)
	}
	p.Add("measured", xs, meas)
	pred := model.PredictSeries(len(perStep))
	p.Add("kernel", xs, pred)
	return p, stats.MAPE(meas, pred)
}

// Fig3 renders the MACSio output layout from its ledger (paper Fig. 3).
func Fig3(ledger []iosim.WriteRecord) string {
	var data, meta []string
	for _, r := range ledger {
		if strings.Contains(r.Path, "root") {
			meta = append(meta, r.Path)
		} else {
			data = append(data, r.Path)
		}
	}
	var sb strings.Builder
	sb.WriteString("Fig. 3: MACSio N-to-N output pattern (miftmpl)\n")
	sb.WriteString("  data\n")
	for _, p := range data {
		fmt.Fprintf(&sb, "    %s\n", p)
	}
	sb.WriteString("  metadata\n")
	for _, p := range meta {
		fmt.Fprintf(&sb, "    %s\n", p)
	}
	return sb.String()
}

// Listing1 renders the translated MACSio invocation, the paper's
// Listing 1.
func Listing1(tr core.Translation, nprocs int) string {
	return fmt.Sprintf("Listing 1: jsrun -n %d %s\n  (Eq.3 f = %.3f, dataset_growth = %.6f, fit MAPE = %.2f%%)\n",
		nprocs, tr.MACSio.CommandLine(), tr.F, tr.Kernel.Growth, tr.MAPE)
}

// BurstReport summarizes I/O burst behavior from a filesystem ledger (the
// "dynamic" studies the paper motivates).
func BurstReport(ledger []iosim.WriteRecord) string {
	stats := iosim.BurstStats(ledger)
	var rows [][]string
	for _, s := range stats {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Step),
			HumanBytes(s.Bytes),
			fmt.Sprintf("%d", s.Files),
			fmt.Sprintf("%d", s.Participants),
			fmt.Sprintf("%.4gs", s.WallSeconds),
			HumanBytes(int64(s.EffectiveBW)) + "/s",
		})
	}
	return "I/O burst timeline\n" +
		Table([]string{"step", "bytes", "files", "writers", "wall", "eff-bw"}, rows)
}
