package report

import (
	"fmt"

	"amrproxyio/internal/resilience"
)

// Mitigation reporting: the same faulted case run with and without a
// resilience.Policy (SweepMitigate) produces different retry-storm,
// lost-work, and forward-progress numbers. MitigationReport renders the
// side-by-side comparison plus the per-pair deltas the CI smoke gate
// checks.

// MitigationSummary pairs a config name with its evaluated mitigation
// outcome.
type MitigationSummary struct {
	Name string
	resilience.Outcome
}

// MitigationPair is one (unmitigated, mitigated) comparison of the same
// base case.
type MitigationPair struct {
	Base        string
	Unmitigated MitigationSummary
	Mitigated   MitigationSummary
}

// MitigationTable renders the per-config mitigation summary table.
func MitigationTable(sums []MitigationSummary) string {
	if len(sums) == 0 {
		return "mitigation report: no runs\n"
	}
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%.4gs", s.RetryStormSeconds),
			fmt.Sprintf("%.4gs", s.FaultCriticalSeconds),
			fmt.Sprintf("%.4gs", s.Resilience.LostWorkSeconds),
			fmt.Sprintf("%d", s.MitigatedWrites),
			fmt.Sprintf("%d", s.Stats.AdaptiveCheckpoints),
			fmt.Sprintf("%d", s.Stats.ShedBursts),
			HumanBytes(s.Stats.ShedBytes),
			fmt.Sprintf("%.3f", s.ForwardProgress),
		})
	}
	return Table([]string{
		"config", "retry-storm", "fault-crit", "lost-work", "mit-writes",
		"adapt-ckpts", "shed", "shed-bytes", "fwd-progress",
	}, rows)
}

// MitigationReport renders the mitigated-vs-unmitigated comparison: the
// summary table for both members of every pair, then one delta line per
// pair. The delta line carries the literal "fwd-progress delta:" marker
// (signed) the mitigation-smoke CI job greps — a negative delta means
// the policy engine made things worse and fails the gate.
func MitigationReport(pairs []MitigationPair) string {
	if len(pairs) == 0 {
		return "mitigation report: no runs\n"
	}
	sums := make([]MitigationSummary, 0, 2*len(pairs))
	for _, p := range pairs {
		sums = append(sums, p.Unmitigated, p.Mitigated)
	}
	out := MitigationTable(sums)
	for _, p := range pairs {
		out += fmt.Sprintf("%s: fwd-progress delta: %+.3f (%.3f -> %.3f), retry-storm %.4gs -> %.4gs, mitigated writes %d\n",
			p.Base,
			p.Mitigated.ForwardProgress-p.Unmitigated.ForwardProgress,
			p.Unmitigated.ForwardProgress, p.Mitigated.ForwardProgress,
			p.Unmitigated.RetryStormSeconds, p.Mitigated.RetryStormSeconds,
			p.Mitigated.MitigatedWrites)
	}
	return out
}
