package amr

import (
	"math/rand"
	"testing"

	"amrproxyio/internal/grid"
)

// Property: for random tag clouds, MakeFineBoxArray always produces a
// disjoint BoxArray, aligned to the blocking factor, within the refined
// domain, covering every buffered tag — the contract the whole regridding
// pipeline rests on.
func TestMakeFineBoxArrayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(127, 127))
	for iter := 0; iter < 60; iter++ {
		tags := NewTagSet()
		n := rng.Intn(400) + 1
		for k := 0; k < n; k++ {
			tags.Add(grid.IV(rng.Intn(128), rng.Intn(128)))
		}
		ratio := 2
		if rng.Intn(2) == 1 {
			ratio = 4
		}
		bf := 8
		mgs := 32
		buffer := rng.Intn(3)
		ba := MakeFineBoxArray(tags, dom, ratio, bf, mgs, 0.7, buffer)
		if !ba.IsDisjoint() {
			t.Fatalf("iter %d: overlapping boxes", iter)
		}
		fineDom := dom.Refine(ratio)
		for _, b := range ba.Boxes {
			if !fineDom.ContainsBox(b) {
				t.Fatalf("iter %d: box %v escapes the domain", iter, b)
			}
			s := b.Size()
			if s.X > mgs || s.Y > mgs {
				t.Fatalf("iter %d: box %v exceeds max grid size", iter, b)
			}
		}
		for _, p := range tags.Buffer(buffer, dom).Points() {
			if !ba.Contains(grid.IV(p.X*ratio, p.Y*ratio)) {
				t.Fatalf("iter %d: buffered tag %v not covered", iter, p)
			}
		}
	}
}

// Property: distribution mappings are complete (every box owned by a rank
// in range) and knapsack never does worse than the theoretical ceiling of
// one whole extra largest-box beyond perfect balance.
func TestDistributeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 60; iter++ {
		var boxes []grid.Box
		nb := rng.Intn(40) + 1
		for k := 0; k < nb; k++ {
			lo := grid.IV(rng.Intn(100)*8, rng.Intn(100)*8)
			boxes = append(boxes, grid.BoxFromSize(lo, grid.IV(8*(rng.Intn(4)+1), 8*(rng.Intn(4)+1))))
		}
		ba := NewBoxArray(boxes)
		nprocs := rng.Intn(16) + 1
		for _, strat := range []DistStrategy{DistRoundRobin, DistKnapsack, DistSFC} {
			dm := MustDistribute(ba, nprocs, strat)
			if len(dm.Owner) != ba.Len() {
				t.Fatalf("%v: owner count", strat)
			}
			for _, o := range dm.Owner {
				if o < 0 || o >= nprocs {
					t.Fatalf("%v: owner %d out of range", strat, o)
				}
			}
		}
		// Knapsack bound: max load <= mean + largest box.
		dm := MustDistribute(ba, nprocs, DistKnapsack)
		load := dm.LoadPerRank(ba, nprocs)
		var total, maxLoad, maxBox int64
		for _, l := range load {
			total += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		for _, b := range boxes {
			if b.NumPts() > maxBox {
				maxBox = b.NumPts()
			}
		}
		mean := total / int64(nprocs)
		if maxLoad > mean+maxBox {
			t.Fatalf("knapsack bound violated: max %d > mean %d + biggest %d", maxLoad, mean, maxBox)
		}
	}
}

// Property: AverageDown then InterpRegion (piecewise constant) is identity
// on fine data that is constant within each coarse cell.
func TestRestrictionProlongationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cdom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	cba := SingleBoxArray(cdom, 16, 1)
	for iter := 0; iter < 20; iter++ {
		crse := NewMultiFab(cba, MustDistribute(cba, 1, DistRoundRobin), 1, 1)
		fdom := cdom.Refine(2)
		fba := SingleBoxArray(fdom, 32, 1)
		fine := NewMultiFab(fba, MustDistribute(fba, 1, DistRoundRobin), 1, 0)
		// Fill fine with values constant per coarse cell.
		want := map[grid.IntVect]float64{}
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				want[grid.IV(i, j)] = rng.Float64() * 100
			}
		}
		fine.ForEachFAB(func(_ int, f *FAB) {
			for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
				for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
					f.Set(i, j, 0, want[grid.IV(i/2, j/2)])
				}
			}
		})
		AverageDown(crse, fine, 2)
		// Re-prolong into a fresh fine fab and compare.
		out := NewFAB(fdom, 1, 0)
		InterpRegion(out, crse, fdom, 2, InterpPiecewiseConstant)
		for j := fdom.Lo.Y; j <= fdom.Hi.Y; j++ {
			for i := fdom.Lo.X; i <= fdom.Hi.X; i++ {
				if got, expect := out.At(i, j, 0), want[grid.IV(i/2, j/2)]; got != expect {
					t.Fatalf("iter %d: (%d,%d) = %g, want %g", iter, i, j, got, expect)
				}
			}
		}
	}
}
