package amr

import (
	"fmt"

	"amrproxyio/internal/grid"
	"amrproxyio/internal/mpisim"
)

// Distributed ghost-cell exchange: the same result as FillBoundary, but
// executed as an SPMD program over the simulated MPI runtime — each rank
// packs the overlap regions of boxes it owns and sends them to the ghost
// regions' owners. This is how AMReX's FillBoundary actually moves data on
// Summit; running it through mpisim lets experiments measure the
// communication volume that accompanies the I/O workload under different
// distribution mappings.

const tagGhost = 7001

// ghostMsg carries one packed overlap region.
type ghostMsg struct {
	DstIdx int
	Region grid.Box
	Data   []float64
}

// WireBytes reports the payload size for mpisim traffic statistics.
func (m ghostMsg) WireBytes() int { return 8 * len(m.Data) }

// buildExchangePlan lists every (src valid, dst ghost) overlap in
// deterministic (srcIdx, dstIdx) order. It is a cached-plan lookup: the
// schedule is computed once per (BoxArray fingerprint, nghost) and
// replayed on every subsequent exchange until a regrid changes the boxes.
func buildExchangePlan(mf *MultiFab) []copyPair {
	return fillBoundaryPlan(mf.BA, mf.NGhost).pairs
}

// packRegion serializes all components of a FAB over region, appending to
// buf (pass nil for a fresh allocation). Rows are moved with copy rather
// than per-element At calls.
func packRegion(f *FAB, region grid.Box, buf []float64) []float64 {
	nx := region.Size().X
	for c := 0; c < f.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			si := f.index(region.Lo.X, j, c)
			buf = append(buf, f.Data[si:si+nx]...)
		}
	}
	return buf
}

// unpackRegion writes packed data into a FAB over region, row by row.
func unpackRegion(f *FAB, region grid.Box, data []float64) {
	nx := region.Size().X
	vi := 0
	for c := 0; c < f.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			di := f.index(region.Lo.X, j, c)
			copy(f.Data[di:di+nx], data[vi:vi+nx])
			vi += nx
		}
	}
}

// FillBoundaryDistributed performs the ghost exchange over the given
// mpisim world, whose size must equal the number of ranks in the
// distribution mapping's range. It produces exactly the same field state
// as FillBoundary; the world's traffic statistics record the communication
// volume. Returns an error if any rank fails.
func (mf *MultiFab) FillBoundaryDistributed(world *mpisim.World) error {
	pairs := buildExchangePlan(mf)
	owner := mf.DM.Owner
	return world.Run(func(c *mpisim.Comm) error {
		me := c.Rank()
		// One backing buffer per rank, sized to its total send volume;
		// each message gets a sub-slice instead of its own allocation.
		var sendVol int64
		for _, p := range pairs {
			if owner[p.srcIdx] == me && owner[p.dstIdx] != me {
				sendVol += p.region.NumPts() * int64(mf.NComp)
			}
		}
		sendBuf := make([]float64, 0, sendVol)
		// Phase 1: local copies and eager sends, in plan order.
		for _, p := range pairs {
			if owner[p.srcIdx] != me {
				continue
			}
			if owner[p.dstIdx] == me {
				mf.FABs[p.dstIdx].CopyFrom(mf.FABs[p.srcIdx], p.region)
				continue
			}
			start := len(sendBuf)
			sendBuf = packRegion(mf.FABs[p.srcIdx], p.region, sendBuf)
			c.Send(owner[p.dstIdx], tagGhost, ghostMsg{
				DstIdx: p.dstIdx,
				Region: p.region,
				Data:   sendBuf[start:len(sendBuf):len(sendBuf)],
			})
		}
		// Phase 2: receive everything destined for my boxes, per source
		// rank in plan order (the mailbox preserves per-source ordering).
		for _, p := range pairs {
			src := owner[p.srcIdx]
			if owner[p.dstIdx] != me || src == me {
				continue
			}
			raw, _ := c.Recv(src, tagGhost)
			msg, ok := raw.(ghostMsg)
			if !ok {
				return fmt.Errorf("amr: unexpected ghost payload %T", raw)
			}
			if owner[msg.DstIdx] != me {
				return fmt.Errorf("amr: misrouted ghost for box %d", msg.DstIdx)
			}
			unpackRegion(mf.FABs[msg.DstIdx], msg.Region, msg.Data)
		}
		c.Barrier()
		return nil
	})
}

// ExchangeVolume returns the total off-rank bytes a distributed
// FillBoundary of this MultiFab would move — the communication analogue
// of the paper's per-task output sizes, useful for decomposition-strategy
// ablations without running the exchange.
func (mf *MultiFab) ExchangeVolume() int64 {
	var total int64
	for _, p := range buildExchangePlan(mf) {
		if mf.DM.Owner[p.srcIdx] != mf.DM.Owner[p.dstIdx] {
			total += p.region.NumPts() * int64(mf.NComp) * 8
		}
	}
	return total
}
