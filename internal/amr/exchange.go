package amr

import (
	"fmt"
	"sort"

	"amrproxyio/internal/grid"
	"amrproxyio/internal/mpisim"
)

// Distributed ghost-cell exchange: the same result as FillBoundary, but
// executed as an SPMD program over the simulated MPI runtime — each rank
// packs the overlap regions of boxes it owns and sends them to the ghost
// regions' owners. This is how AMReX's FillBoundary actually moves data on
// Summit; running it through mpisim lets experiments measure the
// communication volume that accompanies the I/O workload under different
// distribution mappings.

const tagGhost = 7001

// ghostMsg carries one packed overlap region.
type ghostMsg struct {
	DstIdx int
	Region grid.Box
	Data   []float64
}

// WireBytes reports the payload size for mpisim traffic statistics.
func (m ghostMsg) WireBytes() int { return 8 * len(m.Data) }

// exchangePlan precomputes the overlap pairs once per (BoxArray, NGhost).
type exchangePair struct {
	srcIdx, dstIdx int
	region         grid.Box
}

// buildExchangePlan lists every (src valid, dst ghost) overlap, in
// deterministic order.
func buildExchangePlan(mf *MultiFab) []exchangePair {
	var pairs []exchangePair
	for di, df := range mf.FABs {
		for si, sf := range mf.FABs {
			if si == di {
				continue
			}
			overlap := df.DataBox.Intersect(sf.ValidBox)
			if overlap.IsEmpty() {
				continue
			}
			pairs = append(pairs, exchangePair{srcIdx: si, dstIdx: di, region: overlap})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].srcIdx != pairs[b].srcIdx {
			return pairs[a].srcIdx < pairs[b].srcIdx
		}
		return pairs[a].dstIdx < pairs[b].dstIdx
	})
	return pairs
}

// packRegion serializes all components of a FAB over region.
func packRegion(f *FAB, region grid.Box) []float64 {
	out := make([]float64, 0, region.NumPts()*int64(f.NComp))
	for c := 0; c < f.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			for i := region.Lo.X; i <= region.Hi.X; i++ {
				out = append(out, f.At(i, j, c))
			}
		}
	}
	return out
}

// unpackRegion writes packed data into a FAB over region.
func unpackRegion(f *FAB, region grid.Box, data []float64) {
	vi := 0
	for c := 0; c < f.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			for i := region.Lo.X; i <= region.Hi.X; i++ {
				f.Set(i, j, c, data[vi])
				vi++
			}
		}
	}
}

// FillBoundaryDistributed performs the ghost exchange over the given
// mpisim world, whose size must equal the number of ranks in the
// distribution mapping's range. It produces exactly the same field state
// as FillBoundary; the world's traffic statistics record the communication
// volume. Returns an error if any rank fails.
func (mf *MultiFab) FillBoundaryDistributed(world *mpisim.World) error {
	pairs := buildExchangePlan(mf)
	owner := mf.DM.Owner
	return world.Run(func(c *mpisim.Comm) error {
		me := c.Rank()
		// Phase 1: local copies and eager sends, in plan order.
		for _, p := range pairs {
			if owner[p.srcIdx] != me {
				continue
			}
			if owner[p.dstIdx] == me {
				mf.FABs[p.dstIdx].CopyFrom(mf.FABs[p.srcIdx], p.region)
				continue
			}
			c.Send(owner[p.dstIdx], tagGhost, ghostMsg{
				DstIdx: p.dstIdx,
				Region: p.region,
				Data:   packRegion(mf.FABs[p.srcIdx], p.region),
			})
		}
		// Phase 2: receive everything destined for my boxes, per source
		// rank in plan order (the mailbox preserves per-source ordering).
		for _, p := range pairs {
			src := owner[p.srcIdx]
			if owner[p.dstIdx] != me || src == me {
				continue
			}
			raw, _ := c.Recv(src, tagGhost)
			msg, ok := raw.(ghostMsg)
			if !ok {
				return fmt.Errorf("amr: unexpected ghost payload %T", raw)
			}
			if owner[msg.DstIdx] != me {
				return fmt.Errorf("amr: misrouted ghost for box %d", msg.DstIdx)
			}
			unpackRegion(mf.FABs[msg.DstIdx], msg.Region, msg.Data)
		}
		c.Barrier()
		return nil
	})
}

// ExchangeVolume returns the total off-rank bytes a distributed
// FillBoundary of this MultiFab would move — the communication analogue
// of the paper's per-task output sizes, useful for decomposition-strategy
// ablations without running the exchange.
func (mf *MultiFab) ExchangeVolume() int64 {
	var total int64
	for _, p := range buildExchangePlan(mf) {
		if mf.DM.Owner[p.srcIdx] != mf.DM.Owner[p.dstIdx] {
			total += p.region.NumPts() * int64(mf.NComp) * 8
		}
	}
	return total
}
