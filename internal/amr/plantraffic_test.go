package amr

import (
	"reflect"
	"testing"

	"amrproxyio/internal/grid"
)

// naivePairTraffic is the uncached all-pairs reference for
// FillBoundaryTraffic: every (src valid, dst ghost) overlap attributed to
// the owner rank pair.
func naivePairTraffic(ba BoxArray, dm DistributionMapping, nghost, ncomp int) map[[2]int]int64 {
	vol := map[[2]int]int64{}
	for di, db := range ba.Boxes {
		dg := db.Grow(nghost)
		for si, sb := range ba.Boxes {
			if si == di {
				continue
			}
			ov := dg.Intersect(sb)
			if ov.IsEmpty() {
				continue
			}
			vol[[2]int{dm.Owner[si], dm.Owner[di]}] += ov.NumPts() * int64(ncomp) * 8
		}
	}
	return vol
}

func TestFillBoundaryTrafficMatchesNaive(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(31, 31))
	ba := SingleBoxArray(dom, 8, 8)
	for _, nprocs := range []int{1, 3, 4, 16} {
		dm := MustDistribute(ba, nprocs, DistKnapsack)
		got := FillBoundaryTraffic(ba, dm, 2, 4)
		want := naivePairTraffic(ba, dm, 2, 4)
		gotMap := map[[2]int]int64{}
		var lastSrc, lastDst = -1, -1
		for _, p := range got {
			if p.Src < lastSrc || (p.Src == lastSrc && p.Dst <= lastDst) {
				t.Fatalf("nprocs=%d: traffic not sorted by (src, dst)", nprocs)
			}
			lastSrc, lastDst = p.Src, p.Dst
			gotMap[[2]int{p.Src, p.Dst}] = p.Bytes
		}
		if !reflect.DeepEqual(gotMap, want) {
			t.Fatalf("nprocs=%d: traffic = %v, want %v", nprocs, gotMap, want)
		}
	}
}

func TestFillBoundaryTrafficCachedPerMapping(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 8, 8)
	dmA := MustDistribute(ba, 2, DistRoundRobin)
	dmB := MustDistribute(ba, 4, DistRoundRobin)

	first := FillBoundaryTraffic(ba, dmA, 1, 2)
	_, missBefore := PlanCacheStats()
	again := FillBoundaryTraffic(ba, dmA, 1, 2)
	_, missAfter := PlanCacheStats()
	if missAfter != missBefore {
		t.Error("identical (boxes, owners, params) recomputed instead of hitting the cache")
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cache replay returned different traffic")
	}

	// A different distribution over the same boxes is a different key.
	other := FillBoundaryTraffic(ba, dmB, 1, 2)
	if reflect.DeepEqual(first, other) {
		t.Error("different distribution mappings produced identical rank-pair traffic")
	}

	// Local copies carry Src == Dst; TotalTraffic can exclude them.
	withLocal := TotalTraffic(first, true)
	wireOnly := TotalTraffic(first, false)
	if withLocal < wireOnly {
		t.Errorf("TotalTraffic: local-inclusive %d < wire-only %d", withLocal, wireOnly)
	}
}
