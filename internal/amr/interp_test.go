package amr

import (
	"math"
	"testing"

	"amrproxyio/internal/grid"
)

// makeCoarse builds a single-box coarse MultiFab over [0,15]^2 filled by fn.
func makeCoarse(fn func(i, j int) float64, nghost int) *MultiFab {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 16, 1)
	mf := NewMultiFab(ba, MustDistribute(ba, 1, DistRoundRobin), 1, nghost)
	mf.ForEachFAB(func(_ int, f *FAB) {
		for j := f.DataBox.Lo.Y; j <= f.DataBox.Hi.Y; j++ {
			for i := f.DataBox.Lo.X; i <= f.DataBox.Hi.X; i++ {
				f.Set(i, j, 0, fn(i, j))
			}
		}
	})
	return mf
}

func TestInterpPiecewiseConstant(t *testing.T) {
	crse := makeCoarse(func(i, j int) float64 { return float64(i + 100*j) }, 1)
	fineBox := grid.NewBox(grid.IV(8, 8), grid.IV(15, 15)) // covers coarse (4..7)^2
	fine := NewFAB(fineBox, 1, 0)
	InterpRegion(fine, crse, fineBox, 2, InterpPiecewiseConstant)
	for j := 8; j <= 15; j++ {
		for i := 8; i <= 15; i++ {
			want := float64(i/2 + 100*(j/2))
			if got := fine.At(i, j, 0); got != want {
				t.Fatalf("fine(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestInterpLinearReproducesLinearField(t *testing.T) {
	// A linear field is reproduced exactly by limited-linear interpolation
	// away from clamped boundaries.
	crse := makeCoarse(func(i, j int) float64 { return 2*float64(i) + 3*float64(j) }, 1)
	fineBox := grid.NewBox(grid.IV(8, 8), grid.IV(19, 19)) // interior coarse cells
	fine := NewFAB(fineBox, 1, 0)
	InterpRegion(fine, crse, fineBox, 2, InterpCellConsLinear)
	for j := fineBox.Lo.Y; j <= fineBox.Hi.Y; j++ {
		for i := fineBox.Lo.X; i <= fineBox.Hi.X; i++ {
			// Fine cell center in coarse index units: (i+0.5)/2 - 0.5.
			xc := (float64(i)+0.5)/2 - 0.5
			yc := (float64(j)+0.5)/2 - 0.5
			want := 2*xc + 3*yc
			if got := fine.At(i, j, 0); math.Abs(got-want) > 1e-12 {
				t.Fatalf("fine(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestInterpConservation(t *testing.T) {
	// The mean of the 2x2 fine children equals the coarse value for both
	// stencils (symmetric offsets).
	crse := makeCoarse(func(i, j int) float64 { return float64(i*i) + 0.5*float64(j) }, 1)
	fineBox := grid.NewBox(grid.IV(12, 12), grid.IV(13, 13)) // children of coarse (6,6)
	for _, kind := range []InterpKind{InterpPiecewiseConstant, InterpCellConsLinear} {
		fine := NewFAB(fineBox, 1, 0)
		InterpRegion(fine, crse, fineBox, 2, kind)
		mean := (fine.At(12, 12, 0) + fine.At(13, 12, 0) + fine.At(12, 13, 0) + fine.At(13, 13, 0)) / 4
		want := float64(36) + 0.5*6
		if math.Abs(mean-want) > 1e-12 {
			t.Errorf("kind %d: children mean = %g, want %g", kind, mean, want)
		}
	}
}

func TestAverageDown(t *testing.T) {
	cdom := grid.NewBox(grid.IV(0, 0), grid.IV(7, 7))
	cba := SingleBoxArray(cdom, 8, 1)
	crse := NewMultiFab(cba, MustDistribute(cba, 1, DistRoundRobin), 1, 0)
	crse.FillConst(0, -1)

	fba := NewBoxArray([]grid.Box{grid.NewBox(grid.IV(4, 4), grid.IV(11, 11))})
	fine := NewMultiFab(fba, MustDistribute(fba, 1, DistRoundRobin), 1, 0)
	fine.ForEachFAB(func(_ int, f *FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, float64(i+j))
			}
		}
	})
	AverageDown(crse, fine, 2)
	// Coarse cell (3,3) covers fine (6..7, 6..7): mean of 12,13,13,14 = 13.
	if v, _ := crse.ValueAt(grid.IV(3, 3), 0); v != 13 {
		t.Errorf("averaged value = %g, want 13", v)
	}
	// Uncovered coarse cells unchanged.
	if v, _ := crse.ValueAt(grid.IV(0, 0), 0); v != -1 {
		t.Errorf("uncovered value = %g", v)
	}
}

func TestFillOutflowBC(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(7, 7))
	ba := SingleBoxArray(dom, 8, 1)
	mf := NewMultiFab(ba, MustDistribute(ba, 1, DistRoundRobin), 1, 2)
	mf.ForEachFAB(func(_ int, f *FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, float64(i+10*j))
			}
		}
	})
	FillOutflowBC(mf, dom)
	f := mf.FABs[0]
	if got := f.At(-1, 3, 0); got != 0+30 {
		t.Errorf("left ghost = %g, want 30", got)
	}
	if got := f.At(9, 3, 0); got != 7+30 {
		t.Errorf("right ghost = %g, want 37", got)
	}
	if got := f.At(-2, -2, 0); got != 0 {
		t.Errorf("corner ghost = %g, want 0", got)
	}
	if got := f.At(3, 9, 0); got != 3+70 {
		t.Errorf("top ghost = %g, want 73", got)
	}
}

func TestFillPatchCombinesSameLevelAndCoarse(t *testing.T) {
	// Coarse level covers [0,15]^2 with value 7. Fine level has two
	// adjacent boxes; one's ghosts reach the other (same-level copy) and
	// also reach outside the fine union (coarse interp).
	cdom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	cba := SingleBoxArray(cdom, 16, 1)
	crse := NewMultiFab(cba, MustDistribute(cba, 1, DistRoundRobin), 1, 1)
	crse.FillConst(0, 7)

	fdom := cdom.Refine(2)
	fba := NewBoxArray([]grid.Box{
		grid.NewBox(grid.IV(8, 8), grid.IV(15, 15)),
		grid.NewBox(grid.IV(16, 8), grid.IV(23, 15)),
	})
	fine := NewMultiFab(fba, MustDistribute(fba, 1, DistRoundRobin), 1, 2)
	fine.FABs[0].FillConst(0, 1)
	fine.FABs[1].FillConst(0, 2)
	// Reset valid-region values explicitly (FillConst hit ghosts too).
	for idx, f := range fine.FABs {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, float64(idx+1))
			}
		}
	}
	FillPatch(fine, crse, fdom, 2, InterpPiecewiseConstant)
	f0 := fine.FABs[0]
	// Ghost into neighbor: same-level value 2.
	if got := f0.At(16, 10, 0); got != 2 {
		t.Errorf("same-level ghost = %g, want 2", got)
	}
	// Ghost outside the fine union: coarse value 7.
	if got := f0.At(7, 10, 0); got != 7 {
		t.Errorf("coarse-fill ghost = %g, want 7", got)
	}
	if got := f0.At(10, 7, 0); got != 7 {
		t.Errorf("coarse-fill ghost below = %g, want 7", got)
	}
	// Valid data untouched.
	if got := f0.At(10, 10, 0); got != 1 {
		t.Errorf("valid value = %g, want 1", got)
	}
}

func TestFillPatchLevel0NoCoarse(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 8, 8)
	mf := NewMultiFab(ba, MustDistribute(ba, 1, DistRoundRobin), 1, 2)
	mf.ForEachFAB(func(_ int, f *FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, 3)
			}
		}
	})
	FillPatch(mf, nil, dom, 1, InterpPiecewiseConstant)
	// Domain-edge ghosts filled by outflow; interior ghosts by exchange.
	f := mf.FABs[0]
	if got := f.At(-1, 0, 0); got != 3 {
		t.Errorf("outflow ghost = %g", got)
	}
	if got := f.At(8, 0, 0); got != 3 {
		t.Errorf("exchange ghost = %g", got)
	}
}
