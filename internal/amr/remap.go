package amr

import (
	"sort"

	"amrproxyio/internal/iosim"
)

// Inter-burst layout reorganization (Wan et al., "Improving I/O
// Performance for Exascale Applications through Online Data Layout
// Reorganization"): instead of the static round-robin rank%Targets
// placement GPFS striping produces, ranks are repacked onto storage
// targets between checkpoint/plot bursts so each target's byte fan-in
// matches the load the distribution mapping actually put on each rank.

// RemapToTargets builds a rank→storage-target map for the upcoming I/O
// burst. dm and loads describe the burst in the shape the AMR hierarchy
// produces: loads[i] is the write volume of box i (cells or bytes) and
// dm.Owner[i] its writing rank — pass the concatenation over levels for
// a multi-level dump. The greedy is LPT: heaviest rank first onto the
// least-loaded target (ties to the lowest target index), which keeps the
// max per-target fan-in within the classic 4/3 bound of optimal.
//
// A nil result means "keep the round-robin layout": topologies without
// target modeling, empty bursts, and — because LPT's bound is relative
// to optimal, not to round-robin, so the greedy can occasionally land
// above the incumbent — any burst where LPT does not strictly reduce
// the max per-target fan-in. That final comparison makes the invariant
// "remap never worsens fan-in" true by construction, and since uniform
// loads tie LPT with round-robin, it also keeps balanced hierarchies on
// the identity layout (both pinned by tests). A non-nil result covers
// ranks 0..maxOwner; install it with iosim.FileSystem.Retarget (or
// Topology.TargetMap). Ranks beyond the map fall back to round-robin
// there.
func RemapToTargets(dm DistributionMapping, topo iosim.Topology, loads []int64) []int {
	if !topo.Enabled() || topo.Targets <= 0 || len(dm.Owner) == 0 {
		return nil
	}
	nprocs := 0
	for _, o := range dm.Owner {
		if o+1 > nprocs {
			nprocs = o + 1
		}
	}
	if nprocs == 0 {
		return nil
	}
	perRank := make([]int64, nprocs)
	for i, o := range dm.Owner {
		if o >= 0 && i < len(loads) {
			perRank[o] += loads[i]
		}
	}
	// LPT order: load descending, rank ascending on ties (the stable sort
	// keeps rank order, which is what makes uniform loads reproduce the
	// round-robin identity).
	order := make([]int, nprocs)
	for r := range order {
		order[r] = r
	}
	sort.SliceStable(order, func(a, b int) bool {
		return perRank[order[a]] > perRank[order[b]]
	})
	targetLoad := make([]int64, topo.Targets)
	targetRanks := make([]int, topo.Targets)
	out := make([]int, nprocs)
	for _, r := range order {
		best := 0
		for tgt := 1; tgt < topo.Targets; tgt++ {
			if targetLoad[tgt] < targetLoad[best] ||
				(targetLoad[tgt] == targetLoad[best] && targetRanks[tgt] < targetRanks[best]) {
				best = tgt
			}
		}
		out[r] = best
		targetLoad[best] += perRank[r]
		targetRanks[best]++
	}
	if maxLoad(targetLoad) >= maxLoad(FanInLoads(perRank, nil, topo.Targets)) {
		return nil // LPT did not beat the incumbent round-robin layout
	}
	return out
}

// RemapToTargetsAvoiding is RemapToTargets with a quarantine set: ranks
// are packed only onto targets not in avoid (the resilience engine's
// open circuit breakers). With an empty avoid it delegates to
// RemapToTargets unchanged, preserving that function's never-worsens
// invariant; with a non-empty avoid the incumbent comparison is
// deliberately skipped — routing around a degraded target matters more
// than fan-in, since every write landing on it pays the retry storm
// (or, mitigated, still loses its share of the healthy fan-out). When
// every target is quarantined there is nowhere to route, so it falls
// back to the plain remap.
func RemapToTargetsAvoiding(dm DistributionMapping, topo iosim.Topology, loads []int64, avoid map[int]bool) []int {
	if len(avoid) == 0 {
		return RemapToTargets(dm, topo, loads)
	}
	if !topo.Enabled() || topo.Targets <= 0 || len(dm.Owner) == 0 {
		return nil
	}
	var healthy []int
	for tgt := 0; tgt < topo.Targets; tgt++ {
		if !avoid[tgt] {
			healthy = append(healthy, tgt)
		}
	}
	if len(healthy) == 0 {
		return RemapToTargets(dm, topo, loads)
	}
	nprocs := 0
	for _, o := range dm.Owner {
		if o+1 > nprocs {
			nprocs = o + 1
		}
	}
	if nprocs == 0 {
		return nil
	}
	perRank := make([]int64, nprocs)
	for i, o := range dm.Owner {
		if o >= 0 && i < len(loads) {
			perRank[o] += loads[i]
		}
	}
	order := make([]int, nprocs)
	for r := range order {
		order[r] = r
	}
	sort.SliceStable(order, func(a, b int) bool {
		return perRank[order[a]] > perRank[order[b]]
	})
	targetLoad := make([]int64, topo.Targets)
	targetRanks := make([]int, topo.Targets)
	out := make([]int, nprocs)
	for _, r := range order {
		best := healthy[0]
		for _, tgt := range healthy[1:] {
			if targetLoad[tgt] < targetLoad[best] ||
				(targetLoad[tgt] == targetLoad[best] && targetRanks[tgt] < targetRanks[best]) {
				best = tgt
			}
		}
		out[r] = best
		targetLoad[best] += perRank[r]
		targetRanks[best]++
	}
	return out
}

func maxLoad(loads []int64) int64 {
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// FanInLoads accumulates per-target load under a rank→target map (nil
// selects round-robin), the quantity RemapToTargets balances; reports
// and tests use it to compare layouts.
func FanInLoads(perRank []int64, targetMap []int, targets int) []int64 {
	if targets <= 0 {
		return nil
	}
	out := make([]int64, targets)
	for r, l := range perRank {
		tgt := r % targets
		if r < len(targetMap) && targetMap[r] >= 0 && targetMap[r] < targets {
			tgt = targetMap[r]
		}
		out[tgt] += l
	}
	return out
}
