package amr

import (
	"math"
	"testing"

	"amrproxyio/internal/grid"
)

func TestFABIndexingAndAccess(t *testing.T) {
	b := grid.NewBox(grid.IV(4, 4), grid.IV(7, 9))
	f := NewFAB(b, 3, 2)
	if !f.DataBox.Equal(b.Grow(2)) {
		t.Errorf("DataBox = %v", f.DataBox)
	}
	f.Set(5, 6, 1, 3.25)
	if got := f.At(5, 6, 1); got != 3.25 {
		t.Errorf("At = %g", got)
	}
	if got := f.At(5, 6, 0); got != 0 {
		t.Errorf("other comp = %g", got)
	}
	f.Add(5, 6, 1, 1.0)
	if got := f.At(5, 6, 1); got != 4.25 {
		t.Errorf("Add = %g", got)
	}
	// Ghost cells addressable.
	f.Set(2, 2, 0, 7)
	if f.At(2, 2, 0) != 7 {
		t.Error("ghost access failed")
	}
}

func TestFABFillConstAndStats(t *testing.T) {
	f := NewFAB(grid.NewBox(grid.IV(0, 0), grid.IV(3, 3)), 2, 1)
	f.FillConst(0, 2.5)
	mn, mx := f.MinMax(0)
	if mn != 2.5 || mx != 2.5 {
		t.Errorf("MinMax = %g,%g", mn, mx)
	}
	if got := f.Sum(0); got != 2.5*16 {
		t.Errorf("Sum = %g", got)
	}
	if got := f.ValidBytes(); got != 16*2*8 {
		t.Errorf("ValidBytes = %d", got)
	}
}

func TestFABCopyFrom(t *testing.T) {
	a := NewFAB(grid.NewBox(grid.IV(0, 0), grid.IV(7, 7)), 1, 0)
	b := NewFAB(grid.NewBox(grid.IV(4, 0), grid.IV(11, 7)), 1, 2)
	for j := 0; j <= 7; j++ {
		for i := 0; i <= 7; i++ {
			a.Set(i, j, 0, float64(10*i+j))
		}
	}
	region := b.DataBox.Intersect(a.ValidBox) // includes b's ghosts over a
	b.CopyFrom(a, region)
	if got := b.At(5, 3, 0); got != 53 {
		t.Errorf("copied value = %g", got)
	}
	if got := b.At(2, 3, 0); got != 23 { // ghost cell of b
		t.Errorf("ghost copied value = %g", got)
	}
}

func TestNewFABPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty box accepted")
		}
	}()
	NewFAB(grid.Empty(), 1, 0)
}

func TestMultiFabFillBoundary(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 8, 8) // 4 boxes
	dm := MustDistribute(ba, 2, DistRoundRobin)
	mf := NewMultiFab(ba, dm, 1, 2)
	// Value = i + 100*j over valid cells.
	mf.ForEachFAB(func(_ int, f *FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, float64(i+100*j))
			}
		}
	})
	mf.FillBoundary()
	// The box at (0,0)..(7,7) has ghosts reaching into the box at x>=8.
	var f0 *FAB
	for _, f := range mf.FABs {
		if f.ValidBox.Lo == grid.IV(0, 0) {
			f0 = f
		}
	}
	if f0 == nil {
		t.Fatal("no box at origin")
	}
	if got := f0.At(8, 3, 0); got != 8+300 {
		t.Errorf("ghost at (8,3) = %g, want %g", got, float64(8+300))
	}
	if got := f0.At(9, 9, 0); got != 9+900 {
		t.Errorf("corner ghost at (9,9) = %g", got)
	}
}

func TestMultiFabReductionsAndValueAt(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 8, 8)
	mf := NewMultiFab(ba, MustDistribute(ba, 1, DistRoundRobin), 1, 0)
	mf.ForEachFAB(func(_ int, f *FAB) {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, float64(i+j))
			}
		}
	})
	if got := mf.Min(0); got != 0 {
		t.Errorf("Min = %g", got)
	}
	if got := mf.Max(0); got != 30 {
		t.Errorf("Max = %g", got)
	}
	wantSum := 0.0
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			wantSum += float64(i + j)
		}
	}
	if got := mf.Sum(0); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, wantSum)
	}
	v, ok := mf.ValueAt(grid.IV(3, 4), 0)
	if !ok || v != 7 {
		t.Errorf("ValueAt = %g, %v", v, ok)
	}
	if _, ok := mf.ValueAt(grid.IV(99, 99), 0); ok {
		t.Error("ValueAt outside should fail")
	}
}

func TestMultiFabCopyInto(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	src := NewMultiFab(SingleBoxArray(dom, 8, 8), MustDistribute(SingleBoxArray(dom, 8, 8), 1, DistRoundRobin), 1, 0)
	src.FillConst(0, 5)
	dstBA := SingleBoxArray(dom, 16, 8) // different layout: one box
	dst := NewMultiFab(dstBA, MustDistribute(dstBA, 1, DistRoundRobin), 1, 1)
	src.CopyInto(dst)
	if v, _ := dst.ValueAt(grid.IV(9, 9), 0); v != 5 {
		t.Errorf("copied value = %g", v)
	}
}

func TestBytesPerRank(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 8, 8) // 4 boxes of 64 cells
	dm := MustDistribute(ba, 2, DistRoundRobin)
	mf := NewMultiFab(ba, dm, 4, 0)
	per := mf.BytesPerRank(2)
	if per[0] != 2*64*4*8 || per[1] != 2*64*4*8 {
		t.Errorf("BytesPerRank = %v", per)
	}
	var sum int64
	for _, b := range per {
		sum += b
	}
	if sum != 16*16*4*8 {
		t.Errorf("total bytes = %d", sum)
	}
}

func TestMultiFabMismatchedDMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched DM accepted")
		}
	}()
	ba := SingleBoxArray(domain128(), 32, 8)
	NewMultiFab(ba, DistributionMapping{Owner: []int{0}}, 1, 0)
}
