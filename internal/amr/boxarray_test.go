package amr

import (
	"testing"

	"amrproxyio/internal/grid"
)

func domain128() grid.Box { return grid.NewBox(grid.IV(0, 0), grid.IV(127, 127)) }

func TestSingleBoxArrayCoversDomain(t *testing.T) {
	dom := domain128()
	ba := SingleBoxArray(dom, 32, 8)
	if ba.NumPts() != dom.NumPts() {
		t.Errorf("cells = %d, want %d", ba.NumPts(), dom.NumPts())
	}
	if !ba.IsDisjoint() {
		t.Error("boxes overlap")
	}
	if !ba.ContainsBox(dom) {
		t.Error("union does not cover the domain")
	}
	for _, b := range ba.Boxes {
		s := b.Size()
		if s.X > 32 || s.Y > 32 {
			t.Errorf("box %v exceeds max grid size", b)
		}
	}
	if ba.Len() != 16 {
		t.Errorf("expected 16 boxes of 32x32, got %d", ba.Len())
	}
}

func TestBoxArrayMinimalBox(t *testing.T) {
	ba := NewBoxArray([]grid.Box{
		grid.NewBox(grid.IV(0, 0), grid.IV(3, 3)),
		grid.NewBox(grid.IV(10, 12), grid.IV(15, 20)),
	})
	mb := ba.MinimalBox()
	if !mb.Equal(grid.NewBox(grid.IV(0, 0), grid.IV(15, 20))) {
		t.Errorf("MinimalBox = %v", mb)
	}
	if !NewBoxArray(nil).MinimalBox().IsEmpty() {
		t.Error("empty array MinimalBox should be empty")
	}
}

func TestBoxArrayContains(t *testing.T) {
	ba := NewBoxArray([]grid.Box{
		grid.NewBox(grid.IV(0, 0), grid.IV(3, 3)),
		grid.NewBox(grid.IV(8, 8), grid.IV(11, 11)),
	})
	if !ba.Contains(grid.IV(2, 2)) || !ba.Contains(grid.IV(9, 10)) {
		t.Error("Contains false negative")
	}
	if ba.Contains(grid.IV(5, 5)) {
		t.Error("Contains false positive")
	}
	if ba.ContainsBox(grid.NewBox(grid.IV(0, 0), grid.IV(5, 5))) {
		t.Error("ContainsBox false positive across gap")
	}
	if !ba.ContainsBox(grid.NewBox(grid.IV(1, 1), grid.IV(2, 3))) {
		t.Error("ContainsBox false negative")
	}
}

func TestBoxArrayComplement(t *testing.T) {
	region := grid.NewBox(grid.IV(0, 0), grid.IV(9, 9))
	ba := NewBoxArray([]grid.Box{grid.NewBox(grid.IV(0, 0), grid.IV(4, 9))})
	comp := ba.Complement(region)
	var total int64
	for _, b := range comp {
		total += b.NumPts()
	}
	if total != 50 {
		t.Errorf("complement cells = %d, want 50", total)
	}
	full := SingleBoxArray(region, 4, 1)
	if rest := full.Complement(region); len(rest) != 0 {
		t.Errorf("full cover complement = %v", rest)
	}
}

func TestBoxArrayIntersections(t *testing.T) {
	ba := SingleBoxArray(domain128(), 64, 8)
	probe := grid.NewBox(grid.IV(60, 60), grid.IV(70, 70))
	isects := ba.Intersections(probe)
	var total int64
	for _, is := range isects {
		total += is.Box.NumPts()
	}
	if total != probe.NumPts() {
		t.Errorf("intersection cells = %d, want %d", total, probe.NumPts())
	}
	if len(isects) != 4 {
		t.Errorf("expected 4 overlapping quadrants, got %d", len(isects))
	}
}

func TestRefineCoarsenBoxArray(t *testing.T) {
	ba := SingleBoxArray(domain128(), 32, 8)
	fine := ba.Refine(2)
	if fine.NumPts() != 4*ba.NumPts() {
		t.Errorf("refine cells = %d", fine.NumPts())
	}
	back := fine.Coarsen(2)
	if back.NumPts() != ba.NumPts() {
		t.Errorf("coarsen cells = %d", back.NumPts())
	}
}

func TestDistributeRoundRobin(t *testing.T) {
	ba := SingleBoxArray(domain128(), 32, 8) // 16 boxes
	dm := Distribute(ba, 4, DistRoundRobin)
	for i, o := range dm.Owner {
		if o != i%4 {
			t.Errorf("owner[%d] = %d", i, o)
		}
	}
	if got := len(dm.RankBoxes(1)); got != 4 {
		t.Errorf("rank 1 owns %d boxes", got)
	}
}

func TestDistributeKnapsackBalances(t *testing.T) {
	// Mixed box sizes: knapsack should spread total cells well.
	boxes := []grid.Box{
		grid.BoxFromSize(grid.IV(0, 0), grid.IV(64, 64)),
		grid.BoxFromSize(grid.IV(100, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(200, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(300, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(400, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(500, 0), grid.IV(16, 16)),
		grid.BoxFromSize(grid.IV(600, 0), grid.IV(16, 16)),
	}
	ba := NewBoxArray(boxes)
	dm := Distribute(ba, 2, DistKnapsack)
	load := dm.LoadPerRank(ba, 2)
	// Greedy knapsack achieves a perfect split here: 64^2 + 16^2 on one
	// rank, 4*32^2 + 16^2 on the other (4352 cells each).
	if load[0]+load[1] != 64*64+4*32*32+2*16*16 {
		t.Errorf("total load = %d", load[0]+load[1])
	}
	big, small := load[0], load[1]
	if small > big {
		big, small = small, big
	}
	if big-small > 16*16 {
		t.Errorf("knapsack imbalance = %d cells (loads %v)", big-small, load)
	}
	// Round-robin on the same input is measurably worse, demonstrating why
	// knapsack matters for the Fig. 8 per-task distribution.
	rr := Distribute(ba, 2, DistRoundRobin).LoadPerRank(ba, 2)
	rrGap := rr[0] - rr[1]
	if rrGap < 0 {
		rrGap = -rrGap
	}
	if rrGap <= big-small {
		t.Errorf("expected round-robin gap (%d) to exceed knapsack gap (%d)", rrGap, big-small)
	}
}

func TestDistributeSFCContiguity(t *testing.T) {
	ba := SingleBoxArray(domain128(), 16, 8) // 64 boxes in a grid
	dm := Distribute(ba, 8, DistSFC)
	load := dm.LoadPerRank(ba, 8)
	for r, l := range load {
		if l == 0 {
			t.Errorf("rank %d got no boxes", r)
		}
	}
	// Equal-size boxes: perfect balance expected (64/8 boxes each).
	for r, l := range load {
		if l != 8*16*16 {
			t.Errorf("rank %d load = %d, want %d", r, l, 8*16*16)
		}
	}
}

func TestDistributeAllRanksUsedWhenEnoughBoxes(t *testing.T) {
	ba := SingleBoxArray(domain128(), 16, 8)
	for _, strat := range []DistStrategy{DistRoundRobin, DistKnapsack, DistSFC} {
		dm := Distribute(ba, 8, strat)
		used := map[int]bool{}
		for _, o := range dm.Owner {
			if o < 0 || o >= 8 {
				t.Fatalf("%v: owner out of range: %d", strat, o)
			}
			used[o] = true
		}
		if len(used) != 8 {
			t.Errorf("%v: only %d ranks used", strat, len(used))
		}
	}
}

func TestDistributeMoreRanksThanBoxes(t *testing.T) {
	ba := SingleBoxArray(grid.NewBox(grid.IV(0, 0), grid.IV(31, 31)), 32, 8)
	if ba.Len() != 1 {
		t.Fatalf("setup: %d boxes", ba.Len())
	}
	for _, strat := range []DistStrategy{DistRoundRobin, DistKnapsack, DistSFC} {
		dm := Distribute(ba, 16, strat)
		if len(dm.Owner) != 1 {
			t.Errorf("%v: owners = %v", strat, dm.Owner)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if DistRoundRobin.String() != "roundrobin" || DistKnapsack.String() != "knapsack" || DistSFC.String() != "sfc" {
		t.Error("strategy names wrong")
	}
}
