package amr

import (
	"math/rand"
	"sort"
	"testing"

	"amrproxyio/internal/grid"
)

func domain128() grid.Box { return grid.NewBox(grid.IV(0, 0), grid.IV(127, 127)) }

func TestSingleBoxArrayCoversDomain(t *testing.T) {
	dom := domain128()
	ba := SingleBoxArray(dom, 32, 8)
	if ba.NumPts() != dom.NumPts() {
		t.Errorf("cells = %d, want %d", ba.NumPts(), dom.NumPts())
	}
	if !ba.IsDisjoint() {
		t.Error("boxes overlap")
	}
	if !ba.ContainsBox(dom) {
		t.Error("union does not cover the domain")
	}
	for _, b := range ba.Boxes {
		s := b.Size()
		if s.X > 32 || s.Y > 32 {
			t.Errorf("box %v exceeds max grid size", b)
		}
	}
	if ba.Len() != 16 {
		t.Errorf("expected 16 boxes of 32x32, got %d", ba.Len())
	}
}

func TestBoxArrayMinimalBox(t *testing.T) {
	ba := NewBoxArray([]grid.Box{
		grid.NewBox(grid.IV(0, 0), grid.IV(3, 3)),
		grid.NewBox(grid.IV(10, 12), grid.IV(15, 20)),
	})
	mb := ba.MinimalBox()
	if !mb.Equal(grid.NewBox(grid.IV(0, 0), grid.IV(15, 20))) {
		t.Errorf("MinimalBox = %v", mb)
	}
	if !NewBoxArray(nil).MinimalBox().IsEmpty() {
		t.Error("empty array MinimalBox should be empty")
	}
}

func TestBoxArrayContains(t *testing.T) {
	ba := NewBoxArray([]grid.Box{
		grid.NewBox(grid.IV(0, 0), grid.IV(3, 3)),
		grid.NewBox(grid.IV(8, 8), grid.IV(11, 11)),
	})
	if !ba.Contains(grid.IV(2, 2)) || !ba.Contains(grid.IV(9, 10)) {
		t.Error("Contains false negative")
	}
	if ba.Contains(grid.IV(5, 5)) {
		t.Error("Contains false positive")
	}
	if ba.ContainsBox(grid.NewBox(grid.IV(0, 0), grid.IV(5, 5))) {
		t.Error("ContainsBox false positive across gap")
	}
	if !ba.ContainsBox(grid.NewBox(grid.IV(1, 1), grid.IV(2, 3))) {
		t.Error("ContainsBox false negative")
	}
}

func TestBoxArrayComplement(t *testing.T) {
	region := grid.NewBox(grid.IV(0, 0), grid.IV(9, 9))
	ba := NewBoxArray([]grid.Box{grid.NewBox(grid.IV(0, 0), grid.IV(4, 9))})
	comp := ba.Complement(region)
	var total int64
	for _, b := range comp {
		total += b.NumPts()
	}
	if total != 50 {
		t.Errorf("complement cells = %d, want 50", total)
	}
	full := SingleBoxArray(region, 4, 1)
	if rest := full.Complement(region); len(rest) != 0 {
		t.Errorf("full cover complement = %v", rest)
	}
}

func TestBoxArrayIntersections(t *testing.T) {
	ba := SingleBoxArray(domain128(), 64, 8)
	probe := grid.NewBox(grid.IV(60, 60), grid.IV(70, 70))
	isects := ba.Intersections(probe)
	var total int64
	for _, is := range isects {
		total += is.Box.NumPts()
	}
	if total != probe.NumPts() {
		t.Errorf("intersection cells = %d, want %d", total, probe.NumPts())
	}
	if len(isects) != 4 {
		t.Errorf("expected 4 overlapping quadrants, got %d", len(isects))
	}
}

func TestRefineCoarsenBoxArray(t *testing.T) {
	ba := SingleBoxArray(domain128(), 32, 8)
	fine := ba.Refine(2)
	if fine.NumPts() != 4*ba.NumPts() {
		t.Errorf("refine cells = %d", fine.NumPts())
	}
	back := fine.Coarsen(2)
	if back.NumPts() != ba.NumPts() {
		t.Errorf("coarsen cells = %d", back.NumPts())
	}
}

func TestDistributeRoundRobin(t *testing.T) {
	ba := SingleBoxArray(domain128(), 32, 8) // 16 boxes
	dm := MustDistribute(ba, 4, DistRoundRobin)
	for i, o := range dm.Owner {
		if o != i%4 {
			t.Errorf("owner[%d] = %d", i, o)
		}
	}
	if got := len(dm.RankBoxes(1)); got != 4 {
		t.Errorf("rank 1 owns %d boxes", got)
	}
}

func TestDistributeKnapsackBalances(t *testing.T) {
	// Mixed box sizes: knapsack should spread total cells well.
	boxes := []grid.Box{
		grid.BoxFromSize(grid.IV(0, 0), grid.IV(64, 64)),
		grid.BoxFromSize(grid.IV(100, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(200, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(300, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(400, 0), grid.IV(32, 32)),
		grid.BoxFromSize(grid.IV(500, 0), grid.IV(16, 16)),
		grid.BoxFromSize(grid.IV(600, 0), grid.IV(16, 16)),
	}
	ba := NewBoxArray(boxes)
	dm := MustDistribute(ba, 2, DistKnapsack)
	load := dm.LoadPerRank(ba, 2)
	// Greedy knapsack achieves a perfect split here: 64^2 + 16^2 on one
	// rank, 4*32^2 + 16^2 on the other (4352 cells each).
	if load[0]+load[1] != 64*64+4*32*32+2*16*16 {
		t.Errorf("total load = %d", load[0]+load[1])
	}
	big, small := load[0], load[1]
	if small > big {
		big, small = small, big
	}
	if big-small > 16*16 {
		t.Errorf("knapsack imbalance = %d cells (loads %v)", big-small, load)
	}
	// Round-robin on the same input is measurably worse, demonstrating why
	// knapsack matters for the Fig. 8 per-task distribution.
	rr := MustDistribute(ba, 2, DistRoundRobin).LoadPerRank(ba, 2)
	rrGap := rr[0] - rr[1]
	if rrGap < 0 {
		rrGap = -rrGap
	}
	if rrGap <= big-small {
		t.Errorf("expected round-robin gap (%d) to exceed knapsack gap (%d)", rrGap, big-small)
	}
}

func TestDistributeSFCContiguity(t *testing.T) {
	ba := SingleBoxArray(domain128(), 16, 8) // 64 boxes in a grid
	dm := MustDistribute(ba, 8, DistSFC)
	load := dm.LoadPerRank(ba, 8)
	for r, l := range load {
		if l == 0 {
			t.Errorf("rank %d got no boxes", r)
		}
	}
	// Equal-size boxes: perfect balance expected (64/8 boxes each).
	for r, l := range load {
		if l != 8*16*16 {
			t.Errorf("rank %d load = %d, want %d", r, l, 8*16*16)
		}
	}
}

func TestDistributeAllRanksUsedWhenEnoughBoxes(t *testing.T) {
	ba := SingleBoxArray(domain128(), 16, 8)
	for _, strat := range []DistStrategy{DistRoundRobin, DistKnapsack, DistSFC} {
		dm := MustDistribute(ba, 8, strat)
		used := map[int]bool{}
		for _, o := range dm.Owner {
			if o < 0 || o >= 8 {
				t.Fatalf("%v: owner out of range: %d", strat, o)
			}
			used[o] = true
		}
		if len(used) != 8 {
			t.Errorf("%v: only %d ranks used", strat, len(used))
		}
	}
}

func TestDistributeMoreRanksThanBoxes(t *testing.T) {
	ba := SingleBoxArray(grid.NewBox(grid.IV(0, 0), grid.IV(31, 31)), 32, 8)
	if ba.Len() != 1 {
		t.Fatalf("setup: %d boxes", ba.Len())
	}
	for _, strat := range []DistStrategy{DistRoundRobin, DistKnapsack, DistSFC} {
		dm := MustDistribute(ba, 16, strat)
		if len(dm.Owner) != 1 {
			t.Errorf("%v: owners = %v", strat, dm.Owner)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if DistRoundRobin.String() != "roundrobin" || DistKnapsack.String() != "knapsack" || DistSFC.String() != "sfc" {
		t.Error("strategy names wrong")
	}
}

func TestParseDistStrategy(t *testing.T) {
	for _, s := range DistStrategies() {
		got, err := ParseDistStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseDistStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseDistStrategy("zorder"); err == nil {
		t.Error("unknown strategy name accepted")
	}
}

func TestDistributeUnknownStrategyErrors(t *testing.T) {
	ba := SingleBoxArray(domain128(), 32, 8)
	if _, err := Distribute(ba, 4, DistStrategy(99)); err == nil {
		t.Error("unknown strategy did not error")
	}
}

// TestDistributeSFCNegativeDomain is the Morton sign-bias regression: on
// a domain with a negative lo corner, the space-filling curve must stay
// contiguous across the origin. Before the fix, uint32 truncation sent
// negative box centers to the top of the code range, so the rank chunks
// tore at x=0 (rank 1 owned the two *ends* of the row).
func TestDistributeSFCNegativeDomain(t *testing.T) {
	boxes := []grid.Box{
		grid.NewBox(grid.IV(-8, 0), grid.IV(-1, 7)),
		grid.NewBox(grid.IV(0, 0), grid.IV(7, 7)),
		grid.NewBox(grid.IV(8, 0), grid.IV(15, 7)),
		grid.NewBox(grid.IV(16, 0), grid.IV(23, 7)),
	}
	dm := MustDistribute(NewBoxArray(boxes), 2, DistSFC)
	// Boxes are listed left to right: owners must be non-decreasing along
	// x (each rank a contiguous run of the row).
	want := []int{0, 0, 1, 1}
	for i, o := range dm.Owner {
		if o != want[i] {
			t.Fatalf("owners = %v, want %v (SFC torn at the origin)", dm.Owner, want)
		}
	}
}

// TestDistributeSFCZeroCellBoxes covers the total==0 degeneracy: with the
// old load-cut, perRank was 0 and every box advanced the rank, leaving
// rank 0 empty and the last rank with nearly everything.
func TestDistributeSFCZeroCellBoxes(t *testing.T) {
	boxes := make([]grid.Box, 8)
	for i := range boxes {
		// Empty boxes (hi < lo): NumPts() == 0.
		boxes[i] = grid.NewBox(grid.IV(i*8, 0), grid.IV(i*8-1, -1))
	}
	dm := MustDistribute(NewBoxArray(boxes), 4, DistSFC)
	counts := make([]int, 4)
	for _, o := range dm.Owner {
		if o < 0 || o >= 4 {
			t.Fatalf("owner out of range: %v", dm.Owner)
		}
		counts[o]++
	}
	for r, c := range counts {
		if c != 2 {
			t.Fatalf("zero-cell mapping unbalanced: rank %d owns %d boxes (%v)", r, c, counts)
		}
	}
}

// TestDistributeEveryRankOwnsBox asserts the coverage guarantee: whenever
// n >= nprocs every rank owns at least one box, for every strategy, even
// under heavily skewed or zero box sizes.
func TestDistributeEveryRankOwnsBox(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 80; iter++ {
		nb := rng.Intn(40) + 1
		nprocs := rng.Intn(nb) + 1 // nprocs <= nb
		boxes := make([]grid.Box, nb)
		for i := range boxes {
			lo := grid.IV(rng.Intn(200)-100, rng.Intn(200)-100)
			switch rng.Intn(4) {
			case 0: // zero-cell box
				boxes[i] = grid.NewBox(lo, lo.Add(grid.IV(-1, -1)))
			case 1: // huge box
				boxes[i] = grid.BoxFromSize(lo, grid.IV(128, 128))
			default: // small box
				boxes[i] = grid.BoxFromSize(lo, grid.IV(rng.Intn(8)+1, rng.Intn(8)+1))
			}
		}
		ba := NewBoxArray(boxes)
		for _, strat := range DistStrategies() {
			dm := MustDistribute(ba, nprocs, strat)
			owned := make([]int, nprocs)
			for _, o := range dm.Owner {
				owned[o]++
			}
			for r, c := range owned {
				if c == 0 {
					t.Fatalf("iter %d %v: rank %d of %d owns no box (nb=%d, owners=%v)",
						iter, strat, r, nprocs, nb, dm.Owner)
				}
			}
		}
	}
}

// TestDistributeDeterministic: the same inputs always produce the same
// owner vector (campaign results must be reproducible across runs).
func TestDistributeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var boxes []grid.Box
	for i := 0; i < 50; i++ {
		lo := grid.IV(rng.Intn(400)-200, rng.Intn(400)-200)
		boxes = append(boxes, grid.BoxFromSize(lo, grid.IV(8*(rng.Intn(4)+1), 8*(rng.Intn(4)+1))))
	}
	ba := NewBoxArray(boxes)
	for _, strat := range DistStrategies() {
		a := MustDistribute(ba, 7, strat)
		b := MustDistribute(NewBoxArray(append([]grid.Box(nil), boxes...)), 7, strat)
		for i := range a.Owner {
			if a.Owner[i] != b.Owner[i] {
				t.Fatalf("%v: non-deterministic at box %d", strat, i)
			}
		}
	}
}

// TestDistributeSFCLocality: boxes adjacent on the curve land on the same
// or adjacent ranks — the property that makes SFC placements cheap for
// nearest-neighbor exchange.
func TestDistributeSFCLocality(t *testing.T) {
	ba := SingleBoxArray(grid.NewBox(grid.IV(-64, -64), grid.IV(63, 63)), 16, 8) // 64 boxes straddling the origin
	nprocs := 8
	dm := MustDistribute(ba, nprocs, DistSFC)
	// Recover curve order the same way Distribute does.
	type item struct {
		idx  int
		code uint64
	}
	items := make([]item, ba.Len())
	for i, b := range ba.Boxes {
		c := b.Lo.Add(b.Hi)
		items[i] = item{idx: i, code: grid.Morton(c.X, c.Y)}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].code < items[b].code })
	prev := dm.Owner[items[0].idx]
	if prev != 0 {
		t.Fatalf("curve start owned by rank %d, want 0", prev)
	}
	for _, it := range items[1:] {
		o := dm.Owner[it.idx]
		if o != prev && o != prev+1 {
			t.Fatalf("curve-adjacent boxes on ranks %d -> %d (not contiguous)", prev, o)
		}
		prev = o
	}
	if prev != nprocs-1 {
		t.Fatalf("curve ends at rank %d, want %d", prev, nprocs-1)
	}
}

// TestDistributeKnapsackNeverWorseThanRoundRobin pins the load-balance
// ordering the Fig. 8 ablation relies on: over random skewed inputs the
// knapsack max load never exceeds round-robin's.
func TestDistributeKnapsackNeverWorseThanRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	maxLoad := func(dm DistributionMapping, ba BoxArray, nprocs int) int64 {
		var m int64
		for _, l := range dm.LoadPerRank(ba, nprocs) {
			if l > m {
				m = l
			}
		}
		return m
	}
	for iter := 0; iter < 60; iter++ {
		nb := rng.Intn(30) + 2
		var boxes []grid.Box
		for i := 0; i < nb; i++ {
			lo := grid.IV(i*200, 0)
			edge := 1 << (rng.Intn(6) + 1) // 2..64: heavy skew
			boxes = append(boxes, grid.BoxFromSize(lo, grid.IV(edge, edge)))
		}
		ba := NewBoxArray(boxes)
		nprocs := rng.Intn(8) + 1
		ks := maxLoad(MustDistribute(ba, nprocs, DistKnapsack), ba, nprocs)
		rr := maxLoad(MustDistribute(ba, nprocs, DistRoundRobin), ba, nprocs)
		if ks > rr {
			t.Fatalf("iter %d: knapsack max load %d > round-robin %d", iter, ks, rr)
		}
	}
}
