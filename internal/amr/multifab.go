package amr

import (
	"fmt"
	"runtime"
	"sync"

	"amrproxyio/internal/grid"
)

// MultiFab is a distributed collection of FABs: one per box of a BoxArray,
// each tagged with an owning rank through the DistributionMapping. Field
// data lives in-process (the simulated ranks share an address space), but
// all I/O and decomposition logic respects ownership, which is what
// reproduces the paper's per-task output pattern.
type MultiFab struct {
	BA     BoxArray
	DM     DistributionMapping
	NComp  int
	NGhost int
	FABs   []*FAB
}

// NewMultiFab allocates one FAB per box.
func NewMultiFab(ba BoxArray, dm DistributionMapping, ncomp, nghost int) *MultiFab {
	if len(dm.Owner) != ba.Len() {
		panic(fmt.Sprintf("amr: distribution mapping has %d owners for %d boxes", len(dm.Owner), ba.Len()))
	}
	mf := &MultiFab{BA: ba, DM: dm, NComp: ncomp, NGhost: nghost}
	mf.FABs = make([]*FAB, ba.Len())
	for i, b := range ba.Boxes {
		mf.FABs[i] = NewFAB(b, ncomp, nghost)
	}
	return mf
}

// ForEachFAB runs fn over every FAB in parallel using a worker pool. fn
// receives the box index and the FAB. This is the compute-parallelism
// analogue of AMReX's MFIter loop.
func (mf *MultiFab) ForEachFAB(fn func(idx int, fab *FAB)) {
	n := len(mf.FABs)
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, f := range mf.FABs {
			fn(i, f)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i, mf.FABs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// FillConst sets a component to v everywhere (ghosts included).
func (mf *MultiFab) FillConst(comp int, v float64) {
	mf.ForEachFAB(func(_ int, f *FAB) { f.FillConst(comp, v) })
}

// FillBoundary copies valid data into the ghost cells of neighboring FABs
// on the same level. Ghost regions not covered by any valid box (physical
// boundaries or coarse-fine boundaries) are left untouched; FillPatch and
// the physical BC fill handle those.
func (mf *MultiFab) FillBoundary() {
	mf.ForEachFAB(func(di int, dst *FAB) {
		ghostRegion := dst.DataBox
		for si, src := range mf.FABs {
			if si == di {
				continue
			}
			overlap := ghostRegion.Intersect(src.ValidBox)
			if overlap.IsEmpty() {
				continue
			}
			dst.CopyFrom(src, overlap)
		}
	})
}

// Min and Max reduce a component over all valid regions.
func (mf *MultiFab) Min(comp int) float64 {
	mn := mf.FABs[0].Data[mf.FABs[0].index(mf.FABs[0].ValidBox.Lo.X, mf.FABs[0].ValidBox.Lo.Y, comp)]
	for _, f := range mf.FABs {
		m, _ := f.MinMax(comp)
		if m < mn {
			mn = m
		}
	}
	return mn
}

// Max reduces the maximum of a component over all valid regions.
func (mf *MultiFab) Max(comp int) float64 {
	_, mx := mf.FABs[0].MinMax(comp)
	for _, f := range mf.FABs[1:] {
		_, m := f.MinMax(comp)
		if m > mx {
			mx = m
		}
	}
	return mx
}

// Sum reduces the sum of a component over all valid regions.
func (mf *MultiFab) Sum(comp int) float64 {
	var s float64
	for _, f := range mf.FABs {
		s += f.Sum(comp)
	}
	return s
}

// ValueAt returns component comp at cell p, searching the box that owns p.
// ok is false if p is not covered by the valid region.
func (mf *MultiFab) ValueAt(p grid.IntVect, comp int) (v float64, ok bool) {
	for _, f := range mf.FABs {
		if f.ValidBox.Contains(p) {
			return f.At(p.X, p.Y, comp), true
		}
	}
	return 0, false
}

// CopyInto copies the overlapping valid data of src (same index space)
// into dst's valid+ghost regions. Used when swapping hierarchies after a
// regrid.
func (mf *MultiFab) CopyInto(dst *MultiFab) {
	if mf.NComp != dst.NComp {
		panic("amr: CopyInto component mismatch")
	}
	dst.ForEachFAB(func(_ int, df *FAB) {
		for _, sf := range mf.FABs {
			overlap := df.DataBox.Intersect(sf.ValidBox)
			if !overlap.IsEmpty() {
				df.CopyFrom(sf, overlap)
			}
		}
	})
}

// BytesPerRank returns the plotfile-serialized valid bytes owned by each
// of nprocs ranks — the per-task quantity behind the paper's Fig. 8.
func (mf *MultiFab) BytesPerRank(nprocs int) []int64 {
	out := make([]int64, nprocs)
	for i, f := range mf.FABs {
		out[mf.DM.Owner[i]] += f.ValidBytes()
	}
	return out
}
