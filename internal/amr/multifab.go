package amr

import (
	"fmt"
	"runtime"
	"sync"

	"amrproxyio/internal/grid"
)

// MultiFab is a distributed collection of FABs: one per box of a BoxArray,
// each tagged with an owning rank through the DistributionMapping. Field
// data lives in-process (the simulated ranks share an address space), but
// all I/O and decomposition logic respects ownership, which is what
// reproduces the paper's per-task output pattern.
type MultiFab struct {
	BA     BoxArray
	DM     DistributionMapping
	NComp  int
	NGhost int
	FABs   []*FAB

	// dataIdx is the lazily-built spatial index over the FABs' data boxes
	// (valid grown by NGhost); the valid-region index lives on BA itself.
	dataIdxOnce sync.Once
	dataIdx     *grid.BoxIndex
}

// NewMultiFab allocates one FAB per box.
func NewMultiFab(ba BoxArray, dm DistributionMapping, ncomp, nghost int) *MultiFab {
	if len(dm.Owner) != ba.Len() {
		panic(fmt.Sprintf("amr: distribution mapping has %d owners for %d boxes", len(dm.Owner), ba.Len()))
	}
	if ba.h == nil {
		// Arrays assembled without NewBoxArray (checkpoint loads) get a
		// cache slot here so every downstream query is indexed.
		ba = NewBoxArray(ba.Boxes)
	}
	mf := &MultiFab{BA: ba, DM: dm, NComp: ncomp, NGhost: nghost}
	mf.FABs = make([]*FAB, ba.Len())
	for i, b := range ba.Boxes {
		mf.FABs[i] = NewFAB(b, ncomp, nghost)
	}
	return mf
}

// dataBoxIndex returns the index over grown (valid+ghost) boxes, built on
// first use. The box set of a MultiFab is immutable after construction.
func (mf *MultiFab) dataBoxIndex() *grid.BoxIndex {
	mf.dataIdxOnce.Do(func() {
		boxes := make([]grid.Box, len(mf.FABs))
		for i, f := range mf.FABs {
			boxes[i] = f.DataBox
		}
		mf.dataIdx = grid.NewBoxIndex(boxes)
	})
	return mf.dataIdx
}

// ForEachFAB runs fn over every FAB in parallel using a worker pool. fn
// receives the box index and the FAB. This is the compute-parallelism
// analogue of AMReX's MFIter loop.
func (mf *MultiFab) ForEachFAB(fn func(idx int, fab *FAB)) {
	n := len(mf.FABs)
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, f := range mf.FABs {
			fn(i, f)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i, mf.FABs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// FillConst sets a component to v everywhere (ghosts included).
func (mf *MultiFab) FillConst(comp int, v float64) {
	mf.ForEachFAB(func(_ int, f *FAB) { f.FillConst(comp, v) })
}

// FillBoundary copies valid data into the ghost cells of neighboring FABs
// on the same level. Ghost regions not covered by any valid box (physical
// boundaries or coarse-fine boundaries) are left untouched; FillPatch and
// the physical BC fill handle those. The copy schedule comes from the plan
// cache, so after the first call per grid generation this is a pure replay
// with no neighbor search at all.
func (mf *MultiFab) FillBoundary() {
	plan := fillBoundaryPlan(mf.BA, mf.NGhost)
	mf.ForEachFAB(func(di int, dst *FAB) {
		for _, p := range plan.byDst[di] {
			dst.CopyFrom(mf.FABs[p.srcIdx], p.region)
		}
	})
}

// MinMax reduces both extrema of a component over all valid regions with
// one parallel pass. Panics on an empty MultiFab: there is no identity
// element a caller could sensibly receive.
func (mf *MultiFab) MinMax(comp int) (mn, mx float64) {
	if len(mf.FABs) == 0 {
		panic("amr: MinMax on MultiFab with no FABs")
	}
	partial := make([][2]float64, len(mf.FABs))
	mf.ForEachFAB(func(i int, f *FAB) {
		partial[i][0], partial[i][1] = f.MinMax(comp)
	})
	mn, mx = partial[0][0], partial[0][1]
	for _, p := range partial[1:] {
		if p[0] < mn {
			mn = p[0]
		}
		if p[1] > mx {
			mx = p[1]
		}
	}
	return mn, mx
}

// Min reduces the minimum of a component over all valid regions.
func (mf *MultiFab) Min(comp int) float64 {
	mn, _ := mf.MinMax(comp)
	return mn
}

// Max reduces the maximum of a component over all valid regions.
func (mf *MultiFab) Max(comp int) float64 {
	_, mx := mf.MinMax(comp)
	return mx
}

// Sum reduces the sum of a component over all valid regions. Per-FAB sums
// run in parallel; the combine is serial in box order, so the result is
// deterministic run to run.
func (mf *MultiFab) Sum(comp int) float64 {
	partial := make([]float64, len(mf.FABs))
	mf.ForEachFAB(func(i int, f *FAB) { partial[i] = f.Sum(comp) })
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// ValueAt returns component comp at cell p, via the spatial index over the
// valid region. ok is false if p is not covered by the valid region.
func (mf *MultiFab) ValueAt(p grid.IntVect, comp int) (v float64, ok bool) {
	if i := mf.BA.Owner(p); i >= 0 {
		return mf.FABs[i].At(p.X, p.Y, comp), true
	}
	return 0, false
}

// CopyInto copies the overlapping valid data of src (same index space)
// into dst's valid+ghost regions. Used when swapping hierarchies after a
// regrid. The overlap schedule is plan-cached on both arrays'
// fingerprints.
func (mf *MultiFab) CopyInto(dst *MultiFab) {
	if mf.NComp != dst.NComp {
		panic("amr: CopyInto component mismatch")
	}
	plan := copyIntoPlan(mf.BA, dst.BA, dst.NGhost)
	dst.ForEachFAB(func(di int, df *FAB) {
		for _, p := range plan.byDst[di] {
			df.CopyFrom(mf.FABs[p.srcIdx], p.region)
		}
	})
}

// BytesPerRank returns the plotfile-serialized valid bytes owned by each
// of nprocs ranks — the per-task quantity behind the paper's Fig. 8.
func (mf *MultiFab) BytesPerRank(nprocs int) []int64 {
	out := make([]int64, nprocs)
	for i, f := range mf.FABs {
		out[mf.DM.Owner[i]] += f.ValidBytes()
	}
	return out
}
