package amr

import (
	"testing"

	"amrproxyio/internal/grid"
	"amrproxyio/internal/mpisim"
)

// buildExchangeFixture creates a 4-box MultiFab with distinct values per
// box so ghost provenance is checkable.
func buildExchangeFixture(nprocs int, strategy DistStrategy) *MultiFab {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))
	ba := SingleBoxArray(dom, 8, 8)
	dm := MustDistribute(ba, nprocs, strategy)
	mf := NewMultiFab(ba, dm, 2, 2)
	for idx, f := range mf.FABs {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				f.Set(i, j, 0, float64(1000*idx+10*i+j))
				f.Set(i, j, 1, float64(idx))
			}
		}
	}
	return mf
}

func TestFillBoundaryDistributedMatchesSerial(t *testing.T) {
	for _, nprocs := range []int{1, 2, 4} {
		serial := buildExchangeFixture(nprocs, DistRoundRobin)
		distributed := buildExchangeFixture(nprocs, DistRoundRobin)

		serial.FillBoundary()
		world := mpisim.NewWorld(nprocs)
		if err := distributed.FillBoundaryDistributed(world); err != nil {
			t.Fatalf("nprocs=%d: %v", nprocs, err)
		}
		for idx := range serial.FABs {
			a, b := serial.FABs[idx], distributed.FABs[idx]
			for k := range a.Data {
				if a.Data[k] != b.Data[k] {
					t.Fatalf("nprocs=%d box %d: data[%d] %g != %g",
						nprocs, idx, k, a.Data[k], b.Data[k])
				}
			}
		}
	}
}

func TestFillBoundaryDistributedTraffic(t *testing.T) {
	mf := buildExchangeFixture(4, DistRoundRobin)
	world := mpisim.NewWorld(4)
	if err := mf.FillBoundaryDistributed(world); err != nil {
		t.Fatal(err)
	}
	stats := world.Stats()
	if stats.Messages == 0 {
		t.Fatal("no messages recorded for a 4-rank exchange")
	}
	// Single rank: all copies are local, no traffic beyond barriers.
	mf1 := buildExchangeFixture(1, DistRoundRobin)
	world1 := mpisim.NewWorld(1)
	if err := mf1.FillBoundaryDistributed(world1); err != nil {
		t.Fatal(err)
	}
	if world1.Stats().Messages != 0 {
		t.Errorf("single-rank exchange sent %d messages", world1.Stats().Messages)
	}
}

func TestExchangeVolume(t *testing.T) {
	// All boxes on one rank: zero off-rank volume.
	mf1 := buildExchangeFixture(1, DistRoundRobin)
	if v := mf1.ExchangeVolume(); v != 0 {
		t.Errorf("single-rank volume = %d", v)
	}
	// Spread over 4 ranks: every neighbor overlap crosses ranks.
	mf4 := buildExchangeFixture(4, DistRoundRobin)
	v4 := mf4.ExchangeVolume()
	if v4 <= 0 {
		t.Fatalf("4-rank volume = %d", v4)
	}
	// The volume matches the traffic the real exchange generates.
	world := mpisim.NewWorld(4)
	if err := mf4.FillBoundaryDistributed(world); err != nil {
		t.Fatal(err)
	}
	if got := world.Stats().Bytes; got < v4 {
		t.Errorf("recorded traffic %d < analytic volume %d", got, v4)
	}
}

func TestExchangeVolumeDependsOnMapping(t *testing.T) {
	// SFC keeps neighbors on the same rank more often than round-robin on
	// a regular grid, so its off-rank exchange volume must not exceed
	// round-robin's.
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	ba := SingleBoxArray(dom, 8, 8) // 64 boxes
	rr := NewMultiFab(ba, MustDistribute(ba, 8, DistRoundRobin), 1, 1)
	sfc := NewMultiFab(ba, MustDistribute(ba, 8, DistSFC), 1, 1)
	if sfc.ExchangeVolume() > rr.ExchangeVolume() {
		t.Errorf("SFC volume %d > round-robin volume %d",
			sfc.ExchangeVolume(), rr.ExchangeVolume())
	}
}
