package amr

import (
	"sync"

	"amrproxyio/internal/grid"
)

// Communication-plan cache: the (srcIdx, dstIdx, region) copy lists behind
// FillBoundary, CopyInto, AverageDown and FillPatch's coarse-region
// computation are pure functions of the participating BoxArrays plus a few
// integer parameters, so they are computed once per grid generation and
// replayed every timestep. Keys embed the arrays' content fingerprints:
// a regrid produces new boxes, hence new fingerprints, hence fresh plans —
// stale metadata cannot outlive the grids it was computed for. This is the
// same architecture as AMReX's FB/copy comm-metadata cache (CPC/FB caches)
// that makes its FillBoundary O(N) instead of O(N^2).

type planOp uint8

const (
	opFillBoundary planOp = iota
	opCopyInto
	opAverageDown
	opFillPatchCoarse
	opPairTraffic
)

// planKey identifies one cached plan. aFP/bFP are BoxArray fingerprints;
// p1/p2 carry the scalar parameters (ghost width, refinement ratio, or a
// hashed domain box).
type planKey struct {
	op       planOp
	aFP, bFP uint64
	p1, p2   uint64
}

// copyPair is one region copy: FABs[dstIdx] receives src data over region.
type copyPair struct {
	srcIdx, dstIdx int
	region         grid.Box
}

// copyPlan is a reusable copy schedule. pairs is sorted by (srcIdx,
// dstIdx) — the deterministic wire order of the distributed exchange —
// while byDst groups the same pairs per destination FAB in ascending
// source order, the layout the shared-memory consumers replay in parallel.
type copyPlan struct {
	pairs []copyPair
	byDst [][]copyPair
}

// regionPlan holds, per destination FAB, the regions needing coarse
// interpolation during FillPatch (data box minus all same-level valid
// boxes, clipped to the domain).
type regionPlan struct {
	byDst [][]grid.Box
}

var (
	planMu    sync.Mutex
	planCache = map[planKey]interface{}{}
	planHits  uint64
	planMiss  uint64
)

// planCacheLimit bounds the cache; regrid-heavy campaigns cycle through
// grid generations, and plans for dead generations are unreachable (their
// fingerprints never recur), so a full flush is cheap and simple.
const planCacheLimit = 256

// lookupPlan returns the cached plan for key, computing and storing it on
// miss. compute must be deterministic in key.
func lookupPlan(key planKey, compute func() interface{}) interface{} {
	planMu.Lock()
	if p, ok := planCache[key]; ok {
		planHits++
		planMu.Unlock()
		return p
	}
	planMiss++
	planMu.Unlock()
	// Compute outside the lock: plans for distinct keys build concurrently.
	p := compute()
	planMu.Lock()
	if len(planCache) >= planCacheLimit {
		planCache = map[planKey]interface{}{}
	}
	planCache[key] = p
	planMu.Unlock()
	return p
}

// PlanCacheStats reports cumulative plan-cache hits and misses (for tests
// and instrumentation).
func PlanCacheStats() (hits, misses uint64) {
	planMu.Lock()
	defer planMu.Unlock()
	return planHits, planMiss
}

// finishCopyPlan builds the per-destination view of pairs. The builders
// append in src-major, ascending-dst order — already the deterministic
// (srcIdx, dstIdx) wire order of the distributed exchange, since each
// src/dst box pair overlaps in at most one rectangle — so grouping
// preserves ascending srcIdx within each destination and no sort is
// needed.
func finishCopyPlan(pairs []copyPair, nDst int) *copyPlan {
	byDst := make([][]copyPair, nDst)
	for _, p := range pairs {
		byDst[p.dstIdx] = append(byDst[p.dstIdx], p)
	}
	return &copyPlan{pairs: pairs, byDst: byDst}
}

// fillBoundaryPlan returns the same-level ghost-exchange plan for a
// MultiFab shape: every (src valid, dst ghost) overlap of ba grown by
// nghost.
func fillBoundaryPlan(ba BoxArray, nghost int) *copyPlan {
	key := planKey{op: opFillBoundary, aFP: ba.Fingerprint(), bFP: 0, p1: uint64(nghost)}
	return lookupPlan(key, func() interface{} {
		return computeFillBoundaryPlan(ba, nghost)
	}).(*copyPlan)
}

// computeFillBoundaryPlan is the uncached O(N)-queries construction. It
// iterates sources and queries each source box grown by nghost, using the
// dilation identity dst.Grow(g) ∩ src ≠ ∅ ⟺ src.Grow(g) ∩ dst ≠ ∅, so
// pairs emerge in (srcIdx, dstIdx) order with no post-sort.
func computeFillBoundaryPlan(ba BoxArray, nghost int) *copyPlan {
	idx := ba.Index()
	var pairs []copyPair
	var scratch []int
	for si, b := range ba.Boxes {
		sg := b.Grow(nghost)
		scratch = idx.Intersecting(sg, scratch[:0])
		for _, di := range scratch {
			if di == si {
				continue
			}
			pairs = append(pairs, copyPair{
				srcIdx: si,
				dstIdx: di,
				region: ba.Boxes[di].Grow(nghost).Intersect(b),
			})
		}
	}
	return finishCopyPlan(pairs, ba.Len())
}

// copyIntoPlan returns the plan for MultiFab.CopyInto: every overlap of a
// src valid box with a dst data box (dst valid grown by dstNGhost).
func copyIntoPlan(src, dst BoxArray, dstNGhost int) *copyPlan {
	key := planKey{op: opCopyInto, aFP: src.Fingerprint(), bFP: dst.Fingerprint(), p1: uint64(dstNGhost)}
	return lookupPlan(key, func() interface{} {
		idx := dst.Index()
		var pairs []copyPair
		var scratch []int
		for si, b := range src.Boxes {
			sg := b.Grow(dstNGhost)
			scratch = idx.Intersecting(sg, scratch[:0])
			for _, di := range scratch {
				pairs = append(pairs, copyPair{
					srcIdx: si,
					dstIdx: di,
					region: dst.Boxes[di].Grow(dstNGhost).Intersect(b),
				})
			}
		}
		return finishCopyPlan(pairs, dst.Len())
	}).(*copyPlan)
}

// averageDownPlan returns the restriction plan: for every fine box, the
// coarse boxes its coarsened image overlaps, with regions in coarse index
// space. byDst lists each coarse FAB's sources in ascending fine index —
// the replay order that keeps results byte-identical to the historical
// all-pairs loop even if coarsened fine boxes overlap at unaligned seams.
func averageDownPlan(crse, fine BoxArray, ratio int) *copyPlan {
	key := planKey{op: opAverageDown, aFP: fine.Fingerprint(), bFP: crse.Fingerprint(), p1: uint64(ratio)}
	return lookupPlan(key, func() interface{} {
		idx := crse.Index()
		var pairs []copyPair
		var scratch []int
		for fi, fb := range fine.Boxes {
			cb := fb.Coarsen(ratio)
			scratch = idx.Intersecting(cb, scratch[:0])
			for _, ci := range scratch {
				pairs = append(pairs, copyPair{
					srcIdx: fi,
					dstIdx: ci,
					region: crse.Boxes[ci].Intersect(cb),
				})
			}
		}
		return finishCopyPlan(pairs, crse.Len())
	}).(*copyPlan)
}

// fillPatchCoarsePlan returns, per fine FAB, the regions of its data box
// (clipped to domain) not covered by any same-level valid box — the cells
// FillPatch must interpolate from the coarse level.
func fillPatchCoarsePlan(fine BoxArray, nghost int, domain grid.Box) *regionPlan {
	key := planKey{
		op:  opFillPatchCoarse,
		aFP: fine.Fingerprint(),
		bFP: grid.FingerprintBoxes([]grid.Box{domain}),
		p1:  uint64(nghost),
	}
	return lookupPlan(key, func() interface{} {
		return computeFillPatchCoarsePlan(fine, nghost, domain)
	}).(*regionPlan)
}

// computeFillPatchCoarsePlan is the uncached construction: a box-calculus
// subtraction restricted, via the index, to the valid boxes that actually
// intersect each data box.
func computeFillPatchCoarsePlan(fine BoxArray, nghost int, domain grid.Box) *regionPlan {
	idx := fine.Index()
	byDst := make([][]grid.Box, fine.Len())
	var scratch []int
	for di, b := range fine.Boxes {
		needed := []grid.Box{b.Grow(nghost).Intersect(domain)}
		scratch = idx.Intersecting(needed[0], scratch[:0])
		for _, vi := range scratch {
			var next []grid.Box
			for _, r := range needed {
				next = append(next, r.Difference(fine.Boxes[vi])...)
			}
			needed = next
			if len(needed) == 0 {
				break
			}
		}
		byDst[di] = needed
	}
	return &regionPlan{byDst: byDst}
}
