package amr

import (
	"fmt"
	"math"

	"amrproxyio/internal/grid"
)

// FAB is a Fortran-Array-Box-style container: ncomp float64 fields over a
// valid box grown by nghost ghost cells. Data layout is component-major,
// then row-major within a component (j outer, i inner), matching the
// on-disk FAB layout the plotfile writer serializes.
type FAB struct {
	ValidBox grid.Box // the box this FAB is responsible for
	DataBox  grid.Box // ValidBox grown by NGhost
	NComp    int
	NGhost   int
	Data     []float64
	nx, ny   int
}

// NewFAB allocates a zeroed FAB.
func NewFAB(valid grid.Box, ncomp, nghost int) *FAB {
	if valid.IsEmpty() {
		panic("amr: NewFAB on empty box")
	}
	if ncomp < 1 {
		panic(fmt.Sprintf("amr: NewFAB ncomp=%d", ncomp))
	}
	db := valid.Grow(nghost)
	s := db.Size()
	return &FAB{
		ValidBox: valid,
		DataBox:  db,
		NComp:    ncomp,
		NGhost:   nghost,
		Data:     make([]float64, ncomp*s.X*s.Y),
		nx:       s.X,
		ny:       s.Y,
	}
}

// index computes the flat offset of (i, j, comp); callers must stay inside
// DataBox.
func (f *FAB) index(i, j, comp int) int {
	return comp*f.nx*f.ny + (j-f.DataBox.Lo.Y)*f.nx + (i - f.DataBox.Lo.X)
}

// At returns the value at cell (i,j) of component comp.
func (f *FAB) At(i, j, comp int) float64 { return f.Data[f.index(i, j, comp)] }

// Set stores v at cell (i,j) of component comp.
func (f *FAB) Set(i, j, comp int, v float64) { f.Data[f.index(i, j, comp)] = v }

// Add accumulates v at cell (i,j) of component comp.
func (f *FAB) Add(i, j, comp int, v float64) { f.Data[f.index(i, j, comp)] += v }

// FillConst sets component comp to v over the whole data box (ghosts
// included).
func (f *FAB) FillConst(comp int, v float64) {
	base := comp * f.nx * f.ny
	for k := base; k < base+f.nx*f.ny; k++ {
		f.Data[k] = v
	}
}

// CopyFrom copies all components of src over region (which must be inside
// both data boxes).
func (f *FAB) CopyFrom(src *FAB, region grid.Box) {
	if f.NComp != src.NComp {
		panic("amr: CopyFrom component mismatch")
	}
	for c := 0; c < f.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			di := f.index(region.Lo.X, j, c)
			si := src.index(region.Lo.X, j, c)
			copy(f.Data[di:di+region.Size().X], src.Data[si:si+region.Size().X])
		}
	}
}

// row returns the contiguous valid-region row j of component comp as a
// slice of the backing array.
func (f *FAB) row(j, comp int) []float64 {
	lo := f.index(f.ValidBox.Lo.X, j, comp)
	return f.Data[lo : lo+f.ValidBox.Size().X]
}

// Row exposes the contiguous valid-region row j of component comp (no
// ghosts) as a slice of the backing array. Serializers iterate rows
// instead of calling At per cell; the slice must not be resized.
func (f *FAB) Row(j, comp int) []float64 { return f.row(j, comp) }

// MinMax returns the min and max of comp over the valid box. The inner
// loop ranges over contiguous row slices rather than computing a flat
// offset per element.
func (f *FAB) MinMax(comp int) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
		for _, v := range f.row(j, comp) {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
	}
	return
}

// Sum returns the sum of comp over the valid box, row-sliced like MinMax.
func (f *FAB) Sum(comp int) float64 {
	var s float64
	for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
		for _, v := range f.row(j, comp) {
			s += v
		}
	}
	return s
}

// ValidBytes returns the serialized size of the valid region: the quantity
// the plotfile writer puts on disk (no ghosts are written, matching
// AMReX's WriteMultiLevelPlotfile).
func (f *FAB) ValidBytes() int64 {
	return f.ValidBox.NumPts() * int64(f.NComp) * 8
}
