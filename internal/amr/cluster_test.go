package amr

import (
	"math"
	"math/rand"
	"testing"

	"amrproxyio/internal/grid"
)

func TestTagSetBasics(t *testing.T) {
	ts := NewTagSet()
	ts.Add(grid.IV(3, 4))
	ts.Add(grid.IV(3, 4)) // duplicate
	ts.Add(grid.IV(1, 2))
	if ts.Len() != 2 {
		t.Errorf("Len = %d", ts.Len())
	}
	pts := ts.Points()
	if pts[0] != grid.IV(1, 2) || pts[1] != grid.IV(3, 4) {
		t.Errorf("Points = %v (must be sorted)", pts)
	}
}

func TestTagSetBuffer(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(9, 9))
	ts := NewTagSet()
	ts.Add(grid.IV(0, 0)) // corner: buffer clips
	b := ts.Buffer(1, dom)
	if b.Len() != 4 { // (0,0),(1,0),(0,1),(1,1)
		t.Errorf("buffered corner tags = %d", b.Len())
	}
	ts2 := NewTagSet()
	ts2.Add(grid.IV(5, 5))
	if got := ts2.Buffer(1, dom).Len(); got != 9 {
		t.Errorf("buffered interior tags = %d", got)
	}
	// Buffer(0) returns the same set.
	if ts2.Buffer(0, dom) != ts2 {
		t.Error("Buffer(0) should be a no-op")
	}
}

func TestTagSetCoarsen(t *testing.T) {
	ts := NewTagSet()
	ts.Add(grid.IV(0, 0))
	ts.Add(grid.IV(1, 1))
	ts.Add(grid.IV(2, 0))
	c := ts.Coarsen(2)
	if c.Len() != 2 { // (0,0) and (1,0)
		t.Errorf("coarsened tags = %d", c.Len())
	}
	if ts.Coarsen(1) != ts {
		t.Error("Coarsen(1) should be a no-op")
	}
}

// clusterCovers verifies the fundamental clustering contract.
func clusterCovers(t *testing.T, pts []grid.IntVect, boxes []grid.Box) {
	t.Helper()
	for _, p := range pts {
		found := false
		for _, b := range boxes {
			if b.Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("tag %v not covered by any cluster box", p)
		}
	}
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Intersects(boxes[j]) {
				t.Fatalf("cluster boxes %v and %v overlap", boxes[i], boxes[j])
			}
		}
	}
}

func TestClusterSingleBlob(t *testing.T) {
	var pts []grid.IntVect
	for j := 10; j < 20; j++ {
		for i := 10; i < 20; i++ {
			pts = append(pts, grid.IV(i, j))
		}
	}
	boxes := Cluster(pts, 0.7)
	clusterCovers(t, pts, boxes)
	if len(boxes) != 1 {
		t.Errorf("dense blob should be one box, got %d", len(boxes))
	}
	if !boxes[0].Equal(grid.NewBox(grid.IV(10, 10), grid.IV(19, 19))) {
		t.Errorf("blob box = %v", boxes[0])
	}
}

func TestClusterTwoSeparatedBlobs(t *testing.T) {
	var pts []grid.IntVect
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			pts = append(pts, grid.IV(i, j))
			pts = append(pts, grid.IV(i+40, j+40))
		}
	}
	boxes := Cluster(pts, 0.7)
	clusterCovers(t, pts, boxes)
	if len(boxes) != 2 {
		t.Errorf("expected 2 boxes, got %d: %v", len(boxes), boxes)
	}
	// Efficiency of each accepted box must be >= eff (they are exact here).
	for _, b := range boxes {
		if b.NumPts() != 16 {
			t.Errorf("box %v should be 4x4", b)
		}
	}
}

func TestClusterEfficiencyHonored(t *testing.T) {
	// An L-shaped region: one bounding box would be 50% efficient, so
	// clustering at 0.7 must split it.
	var pts []grid.IntVect
	for j := 0; j < 16; j++ {
		for i := 0; i < 8; i++ {
			pts = append(pts, grid.IV(i, j))
		}
	}
	for j := 0; j < 8; j++ {
		for i := 8; i < 16; i++ {
			pts = append(pts, grid.IV(i, j))
		}
	}
	boxes := Cluster(pts, 0.7)
	clusterCovers(t, pts, boxes)
	total := int64(0)
	for _, b := range boxes {
		total += b.NumPts()
	}
	eff := float64(len(pts)) / float64(total)
	if eff < 0.7 {
		t.Errorf("overall efficiency = %g", eff)
	}
}

func TestClusterAnnulus(t *testing.T) {
	// A shock-front-like ring of tags (the Sedov pattern).
	var pts []grid.IntVect
	cx, cy, r := 64.0, 64.0, 40.0
	for deg := 0; deg < 3600; deg++ {
		a := float64(deg) * math.Pi / 1800
		pts = append(pts, grid.IV(int(cx+r*math.Cos(a)), int(cy+r*math.Sin(a))))
	}
	set := NewTagSet()
	for _, p := range pts {
		set.Add(p)
	}
	boxes := Cluster(set.Points(), 0.5)
	clusterCovers(t, set.Points(), boxes)
	if len(boxes) < 4 {
		t.Errorf("ring should split into several boxes, got %d", len(boxes))
	}
	var covered int64
	for _, b := range boxes {
		covered += b.NumPts()
	}
	if eff := float64(set.Len()) / float64(covered); eff < 0.4 {
		t.Errorf("ring clustering efficiency = %g", eff)
	}
}

func TestClusterEmptyAndSingle(t *testing.T) {
	if got := Cluster(nil, 0.7); got != nil {
		t.Errorf("empty cluster = %v", got)
	}
	boxes := Cluster([]grid.IntVect{grid.IV(5, 7)}, 0.7)
	if len(boxes) != 1 || !boxes[0].Equal(grid.NewBox(grid.IV(5, 7), grid.IV(5, 7))) {
		t.Errorf("single point cluster = %v", boxes)
	}
}

func TestClusterRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		set := NewTagSet()
		n := rng.Intn(300) + 1
		for k := 0; k < n; k++ {
			set.Add(grid.IV(rng.Intn(100), rng.Intn(100)))
		}
		pts := set.Points()
		boxes := Cluster(pts, 0.6)
		clusterCovers(t, pts, boxes)
	}
}

func TestMakeFineBoxArray(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	tags := NewTagSet()
	for j := 20; j < 28; j++ {
		for i := 20; i < 28; i++ {
			tags.Add(grid.IV(i, j))
		}
	}
	ba := MakeFineBoxArray(tags, dom, 2, 8, 32, 0.7, 1)
	if ba.Len() == 0 {
		t.Fatal("no boxes generated")
	}
	if !ba.IsDisjoint() {
		t.Error("fine boxes overlap")
	}
	fineDom := dom.Refine(2)
	for _, b := range ba.Boxes {
		if !fineDom.ContainsBox(b) {
			t.Errorf("box %v outside fine domain", b)
		}
		if b.Lo.X%8 != 0 || b.Lo.Y%8 != 0 {
			t.Errorf("box %v lo not blocking-aligned", b)
		}
		s := b.Size()
		if s.X > 32 || s.Y > 32 {
			t.Errorf("box %v exceeds max grid size", b)
		}
	}
	// Every buffered tag, refined, must be covered.
	for _, p := range tags.Buffer(1, dom).Points() {
		fp := grid.IV(p.X*2, p.Y*2)
		if !ba.Contains(fp) {
			t.Errorf("refined tag %v not covered", fp)
		}
	}
}

func TestMakeFineBoxArrayEmptyTags(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	ba := MakeFineBoxArray(NewTagSet(), dom, 2, 8, 32, 0.7, 1)
	if ba.Len() != 0 {
		t.Errorf("expected empty BoxArray, got %d boxes", ba.Len())
	}
}

func TestEnforceNesting(t *testing.T) {
	parent := NewBoxArray([]grid.Box{grid.NewBox(grid.IV(0, 0), grid.IV(15, 15))})
	// Candidate fine box sticking out of the refined parent region.
	fine := NewBoxArray([]grid.Box{grid.NewBox(grid.IV(24, 24), grid.IV(39, 39))})
	nested := EnforceNesting(fine, parent, 2)
	if nested.Len() != 1 {
		t.Fatalf("nested len = %d", nested.Len())
	}
	want := grid.NewBox(grid.IV(24, 24), grid.IV(31, 31))
	if !nested.Boxes[0].Equal(want) {
		t.Errorf("nested box = %v, want %v", nested.Boxes[0], want)
	}
	// Fully outside -> dropped.
	outside := NewBoxArray([]grid.Box{grid.NewBox(grid.IV(40, 40), grid.IV(47, 47))})
	if got := EnforceNesting(outside, parent, 2); got.Len() != 0 {
		t.Errorf("outside box survived nesting: %v", got.Boxes)
	}
}

func TestTagGradient(t *testing.T) {
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(31, 31))
	ba := SingleBoxArray(dom, 16, 8)
	mf := NewMultiFab(ba, MustDistribute(ba, 1, DistRoundRobin), 1, 1)
	// Step function at i = 16: gradient cells there should tag.
	mf.ForEachFAB(func(_ int, f *FAB) {
		for j := f.DataBox.Lo.Y; j <= f.DataBox.Hi.Y; j++ {
			for i := f.DataBox.Lo.X; i <= f.DataBox.Hi.X; i++ {
				v := 1.0
				if i >= 16 {
					v = 2.0
				}
				f.Set(i, j, 0, v)
			}
		}
	})
	tags := TagGradient(mf, 0, 0.3)
	if tags.Len() == 0 {
		t.Fatal("no tags on a step discontinuity")
	}
	for _, p := range tags.Points() {
		if p.X != 15 && p.X != 16 {
			t.Errorf("unexpected tag at %v", p)
		}
	}
	// Smooth field: no tags.
	mf.FillConst(0, 1.0)
	if got := TagGradient(mf, 0, 0.3); got.Len() != 0 {
		t.Errorf("constant field tagged %d cells", got.Len())
	}
}
