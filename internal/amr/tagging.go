package amr

import (
	"math"

	"amrproxyio/internal/grid"
)

// Error estimation: which cells of a level need refinement. Castro's Sedov
// setup tags on density and pressure gradients; we implement the standard
// relative undivided-gradient criterion.

// TagGradient tags every valid cell where the undivided gradient of
// component comp, relative to the local magnitude, exceeds relThreshold.
// The MultiFab's ghost cells must be filled (FillPatch) so stencils at box
// edges see neighbor data.
func TagGradient(mf *MultiFab, comp int, relThreshold float64) *TagSet {
	tags := NewTagSet()
	floor := 1e-12
	for _, f := range mf.FABs {
		for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
			for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
				v := f.At(i, j, comp)
				g := math.Abs(f.At(i+1, j, comp) - v)
				if d := math.Abs(v - f.At(i-1, j, comp)); d > g {
					g = d
				}
				if d := math.Abs(f.At(i, j+1, comp) - v); d > g {
					g = d
				}
				if d := math.Abs(v - f.At(i, j-1, comp)); d > g {
					g = d
				}
				den := math.Abs(v)
				if den < floor {
					den = floor
				}
				if g/den > relThreshold {
					tags.Add(grid.IntVect{X: i, Y: j})
				}
			}
		}
	}
	return tags
}

// EnforceNesting clips a candidate fine-level BoxArray (in level-(l+1)
// index space) to lie inside the parent level's region (parent is in
// level-l index space). AMReX calls this proper nesting: a fine level may
// only exist where its parent level exists.
func EnforceNesting(fine BoxArray, parent BoxArray, ratio int) BoxArray {
	refined := parent.Refine(ratio)
	var out []grid.Box
	for _, fb := range fine.Boxes {
		for _, isect := range refined.Intersections(fb) {
			out = append(out, isect.Box)
		}
	}
	return NewBoxArray(out)
}
