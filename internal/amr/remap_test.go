package amr

import (
	"math/rand"
	"testing"

	"amrproxyio/internal/iosim"
)

func topoWithTargets(targets int) iosim.Topology {
	return iosim.Topology{Nodes: 1, Targets: targets, TargetBandwidth: 1e9}
}

// maxFanIn is the quantity RemapToTargets minimizes: the busiest
// target's total load under a rank→target map (nil = round-robin).
func maxFanIn(perRank []int64, m []int, targets int) int64 {
	var worst int64
	for _, l := range FanInLoads(perRank, m, targets) {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// perRankLoads extracts the per-rank totals the way RemapToTargets does.
func perRankLoads(dm DistributionMapping, loads []int64, nprocs int) []int64 {
	out := make([]int64, nprocs)
	for i, o := range dm.Owner {
		out[o] += loads[i]
	}
	return out
}

// TestRemapIdentityOnUniformLoads: uniform per-rank loads keep the
// round-robin placement (nil = no remap) — the identity that keeps
// remap-enabled runs byte-identical on balanced hierarchies.
func TestRemapIdentityOnUniformLoads(t *testing.T) {
	for _, targets := range []int{1, 3, 8, 77} {
		dm := DistributionMapping{Owner: []int{0, 1, 2, 3, 4, 5, 6, 7}}
		loads := []int64{10, 10, 10, 10, 10, 10, 10, 10}
		if m := RemapToTargets(dm, topoWithTargets(targets), loads); m != nil {
			t.Fatalf("targets=%d: uniform loads remapped to %v, want nil (keep round-robin)", targets, m)
		}
	}
}

// TestRemapIdentityOnZeroLoads: an all-zero burst must also keep the
// round-robin layout (nothing to balance, nothing to perturb).
func TestRemapIdentityOnZeroLoads(t *testing.T) {
	dm := DistributionMapping{Owner: []int{0, 1, 2, 3, 4}}
	if m := RemapToTargets(dm, topoWithTargets(3), make([]int64, 5)); m != nil {
		t.Fatalf("zero loads remapped to %v, want nil", m)
	}
}

// TestRemapKeepsRoundRobinWhenLPTIsWorse is the regression for the LPT
// pitfall: the greedy's 4/3 bound is relative to optimal, not to the
// incumbent, so it can produce a layout strictly worse than round-robin
// — here loads [4,2,0,3,3,2] on 2 targets give round-robin max 7 but
// LPT max 8. RemapToTargets must detect that and keep round-robin.
func TestRemapKeepsRoundRobinWhenLPTIsWorse(t *testing.T) {
	dm := DistributionMapping{Owner: []int{0, 1, 2, 3, 4, 5}}
	loads := []int64{4, 2, 0, 3, 3, 2}
	if m := RemapToTargets(dm, topoWithTargets(2), loads); m != nil {
		per := perRankLoads(dm, loads, 6)
		t.Fatalf("LPT-worse burst remapped to %v (fan-in %d vs round-robin %d), want nil",
			m, maxFanIn(per, m, 2), maxFanIn(per, nil, 2))
	}
}

// TestRemapDisabledTopology: no target modeling, no remap.
func TestRemapDisabledTopology(t *testing.T) {
	dm := DistributionMapping{Owner: []int{0, 1}}
	loads := []int64{1, 2}
	if m := RemapToTargets(dm, iosim.Topology{}, loads); m != nil {
		t.Errorf("disabled topology remap = %v, want nil", m)
	}
	if m := RemapToTargets(dm, iosim.Topology{Nodes: 2}, loads); m != nil {
		t.Errorf("targetless topology remap = %v, want nil", m)
	}
	if m := RemapToTargets(DistributionMapping{}, topoWithTargets(2), nil); m != nil {
		t.Errorf("empty mapping remap = %v, want nil", m)
	}
}

// TestRemapReducesSkewedFanIn is the acceptance fixture: a skewed
// per-rank load where round-robin collides the two heavy ranks on one
// target; the remap must strictly reduce the max per-target fan-in.
func TestRemapReducesSkewedFanIn(t *testing.T) {
	// Ranks 0 and 2 are heavy; with 2 targets round-robin puts both on
	// target 0 (load 200) while target 1 idles at 2.
	dm := DistributionMapping{Owner: []int{0, 1, 2, 3}}
	loads := []int64{100, 1, 100, 1}
	topo := topoWithTargets(2)
	perRank := perRankLoads(dm, loads, 4)

	rr := maxFanIn(perRank, nil, 2)
	m := RemapToTargets(dm, topo, loads)
	remapped := maxFanIn(perRank, m, 2)
	if remapped >= rr {
		t.Fatalf("remap max fan-in %d, round-robin %d: no improvement", remapped, rr)
	}
	if want := int64(101); remapped != want {
		t.Errorf("remap max fan-in = %d, want balanced %d", remapped, want)
	}
}

// TestRemapNeverWorseThanRoundRobin is the LPT property over random
// skewed bursts, plus determinism of the produced maps.
func TestRemapNeverWorseThanRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		nprocs := rng.Intn(32) + 1
		targets := rng.Intn(8) + 1
		nb := nprocs + rng.Intn(3*nprocs)
		owner := make([]int, nb)
		loads := make([]int64, nb)
		for i := range owner {
			owner[i] = rng.Intn(nprocs)
			loads[i] = int64(rng.Intn(1 << uint(rng.Intn(12))))
		}
		dm := DistributionMapping{Owner: owner}
		topo := topoWithTargets(targets)
		m := RemapToTargets(dm, topo, loads)
		m2 := RemapToTargets(dm, topo, loads)
		for r := range m {
			if m[r] != m2[r] {
				t.Fatalf("iter %d: remap not deterministic at rank %d", iter, r)
			}
			if m[r] < 0 || m[r] >= targets {
				t.Fatalf("iter %d: target %d out of range", iter, m[r])
			}
		}
		perRank := perRankLoads(dm, loads, nprocs)
		got, rr := maxFanIn(perRank, m, targets), maxFanIn(perRank, nil, targets)
		if got > rr {
			t.Fatalf("iter %d: remap fan-in %d worse than round-robin %d", iter, got, rr)
		}
		if m != nil && got >= rr {
			t.Fatalf("iter %d: non-nil remap without strict improvement (%d vs %d)", iter, got, rr)
		}
	}
}

// TestRemapAvoidingEmptyDelegates: an empty (or nil) avoid set must
// behave exactly like RemapToTargets, incumbent comparison included.
func TestRemapAvoidingEmptyDelegates(t *testing.T) {
	dm := DistributionMapping{Owner: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	loads := []int64{10, 10, 10, 10, 10, 10, 10, 10}
	if m := RemapToTargetsAvoiding(dm, topoWithTargets(3), loads, nil); m != nil {
		t.Fatalf("uniform loads with empty avoid remapped to %v, want nil", m)
	}
	skewed := []int64{100, 1, 1, 1, 1, 1, 1, 1}
	want := RemapToTargets(dm, topoWithTargets(3), skewed)
	got := RemapToTargetsAvoiding(dm, topoWithTargets(3), skewed, map[int]bool{})
	if len(want) != len(got) {
		t.Fatalf("empty-avoid remap diverged: %v vs %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("empty-avoid remap diverged at %d: %v vs %v", i, got, want)
		}
	}
}

// TestRemapAvoidingRoutesAroundQuarantine: no rank may land on an
// avoided target, even when that makes the fan-in worse than the
// incumbent round-robin — a quarantined target costs a retry storm per
// write, which dominates fan-in contention.
func TestRemapAvoidingRoutesAroundQuarantine(t *testing.T) {
	dm := DistributionMapping{Owner: []int{0, 1, 2, 3, 4, 5}}
	loads := []int64{10, 10, 10, 10, 10, 10}
	avoid := map[int]bool{0: true, 2: true}
	m := RemapToTargetsAvoiding(dm, topoWithTargets(4), loads, avoid)
	if m == nil {
		t.Fatal("uniform loads with a quarantine set produced no remap (ranks would stay on dead targets)")
	}
	if len(m) != 6 {
		t.Fatalf("remap covers %d ranks, want 6", len(m))
	}
	for r, tgt := range m {
		if avoid[tgt] {
			t.Errorf("rank %d routed to quarantined target %d", r, tgt)
		}
		if tgt < 0 || tgt >= 4 {
			t.Errorf("rank %d routed outside the target range: %d", r, tgt)
		}
	}
	// The healthy targets share the load evenly: 3 ranks each on 1 and 3.
	counts := map[int]int{}
	for _, tgt := range m {
		counts[tgt]++
	}
	if counts[1] != 3 || counts[3] != 3 {
		t.Errorf("healthy fan-out unbalanced: %v", counts)
	}
}

// TestRemapAvoidingAllQuarantined: with nowhere to route, fall back to
// the plain remap rather than inventing an invalid layout.
func TestRemapAvoidingAllQuarantined(t *testing.T) {
	dm := DistributionMapping{Owner: []int{0, 1, 2, 3}}
	loads := []int64{10, 10, 10, 10}
	avoid := map[int]bool{0: true, 1: true}
	got := RemapToTargetsAvoiding(dm, topoWithTargets(2), loads, avoid)
	want := RemapToTargets(dm, topoWithTargets(2), loads)
	if (got == nil) != (want == nil) || len(got) != len(want) {
		t.Fatalf("all-quarantined fallback diverged: %v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("all-quarantined fallback diverged at %d: %v vs %v", i, got, want)
		}
	}
}
