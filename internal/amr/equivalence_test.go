package amr

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"amrproxyio/internal/grid"
	"amrproxyio/internal/mpisim"
)

// Naive O(N^2) reference implementations of every indexed hot path. The
// property tests below assert that the BoxIndex/plan-cache fast paths
// produce byte-identical field state on randomized BoxArrays, including
// across regrid-style box-set changes (which exercises plan-cache
// invalidation: a stale plan replayed against new grids would corrupt the
// comparison immediately).

// naiveFillBoundary is the historical all-pairs ghost fill.
func naiveFillBoundary(mf *MultiFab) {
	for di, dst := range mf.FABs {
		for si, src := range mf.FABs {
			if si == di {
				continue
			}
			overlap := dst.DataBox.Intersect(src.ValidBox)
			if overlap.IsEmpty() {
				continue
			}
			dst.CopyFrom(src, overlap)
		}
	}
}

// naiveExchangePairs is the historical all-pairs plan construction.
func naiveExchangePairs(mf *MultiFab) []copyPair {
	var pairs []copyPair
	for di, df := range mf.FABs {
		for si, sf := range mf.FABs {
			if si == di {
				continue
			}
			overlap := df.DataBox.Intersect(sf.ValidBox)
			if overlap.IsEmpty() {
				continue
			}
			pairs = append(pairs, copyPair{srcIdx: si, dstIdx: di, region: overlap})
		}
	}
	// The historical deterministic wire order.
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].srcIdx != pairs[b].srcIdx {
			return pairs[a].srcIdx < pairs[b].srcIdx
		}
		return pairs[a].dstIdx < pairs[b].dstIdx
	})
	return pairs
}

// naiveCopyInto is the historical all-pairs hierarchy swap copy.
func naiveCopyInto(src, dst *MultiFab) {
	for _, df := range dst.FABs {
		for _, sf := range src.FABs {
			overlap := df.DataBox.Intersect(sf.ValidBox)
			if !overlap.IsEmpty() {
				df.CopyFrom(sf, overlap)
			}
		}
	}
}

// naiveAverageDown is the historical all-pairs restriction.
func naiveAverageDown(crse, fine *MultiFab, ratio int) {
	inv := 1.0 / float64(ratio*ratio)
	for _, cf := range crse.FABs {
		for _, ff := range fine.FABs {
			overlap := cf.ValidBox.Intersect(ff.ValidBox.Coarsen(ratio))
			if overlap.IsEmpty() {
				continue
			}
			for c := 0; c < crse.NComp; c++ {
				for j := overlap.Lo.Y; j <= overlap.Hi.Y; j++ {
					for i := overlap.Lo.X; i <= overlap.Hi.X; i++ {
						var s float64
						for dj := 0; dj < ratio; dj++ {
							for di := 0; di < ratio; di++ {
								s += ff.At(i*ratio+di, j*ratio+dj, c)
							}
						}
						cf.Set(i, j, c, s*inv)
					}
				}
			}
		}
	}
}

// naiveClampedLookup is the historical linear-scan coarse lookup.
func naiveClampedLookup(mf *MultiFab) coarseLookup {
	return func(i, j, comp int) float64 {
		p := grid.IntVect{X: i, Y: j}
		for _, f := range mf.FABs {
			if f.ValidBox.Contains(p) {
				return f.At(i, j, comp)
			}
		}
		for _, f := range mf.FABs {
			if f.DataBox.Contains(p) {
				return f.At(i, j, comp)
			}
		}
		best := math.MaxInt64
		var bi, bj int
		var bf *FAB
		for _, f := range mf.FABs {
			ci := clamp(i, f.ValidBox.Lo.X, f.ValidBox.Hi.X)
			cj := clamp(j, f.ValidBox.Lo.Y, f.ValidBox.Hi.Y)
			d := (ci-i)*(ci-i) + (cj-j)*(cj-j)
			if d < best {
				best, bi, bj, bf = d, ci, cj, f
			}
		}
		if bf == nil {
			return 0
		}
		return bf.At(bi, bj, comp)
	}
}

// naiveInterpRegion mirrors InterpRegion with the scanning lookup.
func naiveInterpRegion(fine *FAB, crse *MultiFab, region grid.Box, ratio int, kind InterpKind) {
	look := naiveClampedLookup(crse)
	for c := 0; c < fine.NComp; c++ {
		for j := region.Lo.Y; j <= region.Hi.Y; j++ {
			for i := region.Lo.X; i <= region.Hi.X; i++ {
				fine.Set(i, j, c, interpCell(kind, look, i, j, c, ratio))
			}
		}
	}
}

// naiveFillPatch is the historical FillPatch: naive ghost fill, then the
// subtract-every-valid-box coarse-region computation, then physical BCs.
func naiveFillPatch(fine, crse *MultiFab, fineDomain grid.Box, ratio int, kind InterpKind) {
	naiveFillBoundary(fine)
	if crse != nil {
		for _, df := range fine.FABs {
			needed := []grid.Box{df.DataBox.Intersect(fineDomain)}
			for _, vb := range fine.BA.Boxes {
				var next []grid.Box
				for _, r := range needed {
					next = append(next, r.Difference(vb)...)
				}
				needed = next
				if len(needed) == 0 {
					break
				}
			}
			for _, r := range needed {
				naiveInterpRegion(df, crse, r, ratio, kind)
			}
		}
	}
	FillOutflowBC(fine, fineDomain)
}

// randomTiling builds a disjoint BoxArray by cutting region into random
// rows and columns and keeping each tile with probability keep.
func randomTiling(rng *rand.Rand, region grid.Box, keep float64) BoxArray {
	cutsX := []int{region.Lo.X}
	for x := region.Lo.X; x <= region.Hi.X; {
		x += rng.Intn(17) + 4
		if x > region.Hi.X {
			break
		}
		cutsX = append(cutsX, x)
	}
	cutsX = append(cutsX, region.Hi.X+1)
	cutsY := []int{region.Lo.Y}
	for y := region.Lo.Y; y <= region.Hi.Y; {
		y += rng.Intn(17) + 4
		if y > region.Hi.Y {
			break
		}
		cutsY = append(cutsY, y)
	}
	cutsY = append(cutsY, region.Hi.Y+1)
	var boxes []grid.Box
	for yi := 0; yi+1 < len(cutsY); yi++ {
		for xi := 0; xi+1 < len(cutsX); xi++ {
			if rng.Float64() > keep {
				continue
			}
			boxes = append(boxes, grid.NewBox(
				grid.IV(cutsX[xi], cutsY[yi]),
				grid.IV(cutsX[xi+1]-1, cutsY[yi+1]-1)))
		}
	}
	if len(boxes) == 0 {
		boxes = append(boxes, region)
	}
	return NewBoxArray(boxes)
}

// randomMultiFab builds a MultiFab over ba with every data-box cell
// (ghosts included) set to a deterministic pseudo-random value.
func randomMultiFab(rng *rand.Rand, ba BoxArray, ncomp, nghost int) *MultiFab {
	dm := MustDistribute(ba, rng.Intn(4)+1, DistRoundRobin)
	mf := NewMultiFab(ba, dm, ncomp, nghost)
	for _, f := range mf.FABs {
		for k := range f.Data {
			f.Data[k] = rng.Float64()*2000 - 1000
		}
	}
	return mf
}

// cloneMultiFab deep-copies field data into a fresh MultiFab of the same
// shape (sharing the BoxArray, as a regridded swap would).
func cloneMultiFab(mf *MultiFab) *MultiFab {
	out := NewMultiFab(mf.BA, mf.DM, mf.NComp, mf.NGhost)
	for i, f := range mf.FABs {
		copy(out.FABs[i].Data, f.Data)
	}
	return out
}

func assertIdentical(t *testing.T, iter int, what string, a, b *MultiFab) {
	t.Helper()
	for i := range a.FABs {
		fa, fb := a.FABs[i], b.FABs[i]
		for k := range fa.Data {
			if fa.Data[k] != fb.Data[k] {
				t.Fatalf("iter %d: %s diverged at box %d offset %d: %g != %g",
					iter, what, i, k, fa.Data[k], fb.Data[k])
			}
		}
	}
}

func TestFillBoundaryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(95, 95))
	for iter := 0; iter < 40; iter++ {
		ba := randomTiling(rng, dom, 0.8)
		ncomp, nghost := rng.Intn(3)+1, rng.Intn(3)+1
		fast := randomMultiFab(rng, ba, ncomp, nghost)
		ref := cloneMultiFab(fast)
		fast.FillBoundary()
		naiveFillBoundary(ref)
		assertIdentical(t, iter, "FillBoundary", ref, fast)
	}
}

func TestExchangePlanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(127, 127))
	for iter := 0; iter < 40; iter++ {
		ba := randomTiling(rng, dom, 0.7)
		mf := randomMultiFab(rng, ba, 1, rng.Intn(3)+1)
		got := buildExchangePlan(mf)
		want := naiveExchangePairs(mf)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d pairs, want %d", iter, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("iter %d pair %d: %+v != %+v", iter, k, got[k], want[k])
			}
		}
	}
}

func TestExchangeVolumeAndDistributedMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	for iter := 0; iter < 10; iter++ {
		ba := randomTiling(rng, dom, 0.85)
		nprocs := rng.Intn(4) + 1
		dm := MustDistribute(ba, nprocs, DistKnapsack)
		fast := NewMultiFab(ba, dm, 2, 2)
		for _, f := range fast.FABs {
			for k := range f.Data {
				f.Data[k] = rng.Float64() * 100
			}
		}
		ref := cloneMultiFab(fast)

		// Analytic volume agrees with the naive pair list.
		var want int64
		for _, p := range naiveExchangePairs(fast) {
			if dm.Owner[p.srcIdx] != dm.Owner[p.dstIdx] {
				want += p.region.NumPts() * int64(fast.NComp) * 8
			}
		}
		if got := fast.ExchangeVolume(); got != want {
			t.Fatalf("iter %d: ExchangeVolume %d, naive %d", iter, got, want)
		}

		// The distributed exchange lands exactly where the naive serial
		// fill does.
		if err := fast.FillBoundaryDistributed(mpisim.NewWorld(nprocs)); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		naiveFillBoundary(ref)
		assertIdentical(t, iter, "FillBoundaryDistributed", ref, fast)
	}
}

func TestCopyIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(95, 95))
	for iter := 0; iter < 30; iter++ {
		srcBA := randomTiling(rng, dom, 0.75)
		dstBA := randomTiling(rng, dom, 0.75)
		src := randomMultiFab(rng, srcBA, 2, rng.Intn(3))
		fastDst := randomMultiFab(rng, dstBA, 2, rng.Intn(3)+1)
		refDst := cloneMultiFab(fastDst)
		src.CopyInto(fastDst)
		naiveCopyInto(src, refDst)
		assertIdentical(t, iter, "CopyInto", refDst, fastDst)
	}
}

func TestAverageDownMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cdom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	for iter := 0; iter < 30; iter++ {
		ratio := 2
		if rng.Intn(2) == 1 {
			ratio = 4
		}
		cba := randomTiling(rng, cdom, 1.0)
		// Fine boxes must be ratio-aligned (as Berger-Rigoutsos clustering
		// guarantees) or the ratio x ratio gather would read outside the
		// fine FAB — in the naive reference just as in the indexed path.
		fba := randomTiling(rng, cdom, 0.5).Refine(ratio)
		fine := randomMultiFab(rng, fba, 2, 0)
		fastCrse := randomMultiFab(rng, cba, 2, 1)
		refCrse := cloneMultiFab(fastCrse)
		AverageDown(fastCrse, fine, ratio)
		naiveAverageDown(refCrse, fine, ratio)
		assertIdentical(t, iter, "AverageDown", refCrse, fastCrse)
	}
}

func TestFillPatchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cdom := grid.NewBox(grid.IV(0, 0), grid.IV(47, 47))
	for iter := 0; iter < 20; iter++ {
		ratio := 2
		kind := InterpPiecewiseConstant
		if rng.Intn(2) == 1 {
			kind = InterpCellConsLinear
		}
		fdom := cdom.Refine(ratio)
		cba := randomTiling(rng, cdom, 1.0)
		fba := randomTiling(rng, fdom, 0.6)
		crse := randomMultiFab(rng, cba, 2, 2)
		fast := randomMultiFab(rng, fba, 2, 2)
		ref := cloneMultiFab(fast)
		FillPatch(fast, crse, fdom, ratio, kind)
		naiveFillPatch(ref, crse, fdom, ratio, kind)
		assertIdentical(t, iter, "FillPatch", ref, fast)
	}
}

// TestPlanCacheSurvivesAndInvalidates drives the regrid scenario directly:
// repeated FillBoundary calls on one grid generation reuse a cached plan
// (hit counter moves, results stay right), and a new BoxArray — same
// domain, different boxes, as a regrid produces — gets a fresh plan rather
// than a stale replay.
func TestPlanCacheSurvivesAndInvalidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(95, 95))
	for iter := 0; iter < 10; iter++ {
		ba1 := randomTiling(rng, dom, 0.9)
		mfA := randomMultiFab(rng, ba1, 1, 2)
		mfA.FillBoundary() // populate the cache for generation 1

		// Steady state: a second exchange on the same generation is a pure
		// cache hit.
		h0, _ := PlanCacheStats()
		mfB := cloneMultiFab(mfA)
		refB := cloneMultiFab(mfA)
		mfB.FillBoundary()
		h1, _ := PlanCacheStats()
		if h1 <= h0 {
			t.Fatalf("iter %d: steady-state FillBoundary missed the plan cache", iter)
		}
		naiveFillBoundary(refB)
		assertIdentical(t, iter, "cached FillBoundary", refB, mfB)

		// "Regrid": new boxes over the same domain. The fingerprint-keyed
		// cache must build a fresh plan for the new generation.
		ba2 := randomTiling(rng, dom, 0.9)
		if ba2.Fingerprint() == ba1.Fingerprint() {
			continue // astronomically unlikely identical tiling; skip
		}
		fast := randomMultiFab(rng, ba2, 1, 2)
		ref := cloneMultiFab(fast)
		fast.FillBoundary()
		naiveFillBoundary(ref)
		assertIdentical(t, iter, "post-regrid FillBoundary", ref, fast)
	}
}

// TestMinMaxSumReductions pins the reduction semantics: Min/Max agree with
// a serial scan over valid cells, Sum is deterministic, and the empty
// MultiFab panics with a clear message instead of faulting on FABs[0].
func TestMinMaxSumReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	ba := randomTiling(rng, dom, 1.0)
	mf := randomMultiFab(rng, ba, 2, 2)
	for comp := 0; comp < 2; comp++ {
		wantMn, wantMx := math.Inf(1), math.Inf(-1)
		var wantSum float64
		for _, f := range mf.FABs {
			for j := f.ValidBox.Lo.Y; j <= f.ValidBox.Hi.Y; j++ {
				for i := f.ValidBox.Lo.X; i <= f.ValidBox.Hi.X; i++ {
					v := f.At(i, j, comp)
					if v < wantMn {
						wantMn = v
					}
					if v > wantMx {
						wantMx = v
					}
					wantSum += v
				}
			}
		}
		if got := mf.Min(comp); got != wantMn {
			t.Fatalf("Min(%d) = %g, want %g", comp, got, wantMn)
		}
		if got := mf.Max(comp); got != wantMx {
			t.Fatalf("Max(%d) = %g, want %g", comp, got, wantMx)
		}
		if got := mf.Sum(comp); got != mf.Sum(comp) || math.Abs(got-wantSum) > 1e-9*math.Abs(wantSum) {
			t.Fatalf("Sum(%d) = %g, want %g", comp, got, wantSum)
		}
	}
	empty := &MultiFab{BA: NewBoxArray(nil), NComp: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax on empty MultiFab did not panic")
		}
	}()
	empty.MinMax(0)
}

// TestValueAtMatchesNaive checks the indexed point lookup against the
// linear scan, inside and outside the covered region.
func TestValueAtMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dom := grid.NewBox(grid.IV(0, 0), grid.IV(63, 63))
	for iter := 0; iter < 20; iter++ {
		ba := randomTiling(rng, dom, 0.7)
		mf := randomMultiFab(rng, ba, 1, 1)
		for q := 0; q < 200; q++ {
			p := grid.IV(rng.Intn(80)-8, rng.Intn(80)-8)
			var wantV float64
			wantOK := false
			for _, f := range mf.FABs {
				if f.ValidBox.Contains(p) {
					wantV, wantOK = f.At(p.X, p.Y, 0), true
					break
				}
			}
			gotV, gotOK := mf.ValueAt(p, 0)
			if gotOK != wantOK || gotV != wantV {
				t.Fatalf("iter %d ValueAt(%v) = (%g,%v), want (%g,%v)",
					iter, p, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}
