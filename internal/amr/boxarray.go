// Package amr implements the block-structured adaptive mesh refinement
// machinery the paper's AMReX/Castro substrate provides: box arrays,
// distribution mappings (domain decomposition over MPI tasks), error
// tagging, Berger–Rigoutsos grid generation, distributed field containers
// (MultiFab), ghost-cell exchange and coarse-fine interpolation.
//
// The package is deliberately close to AMReX's vocabulary — BoxArray,
// DistributionMapping, MultiFab, FillPatch — because the paper's measured
// quantity (bytes per timestep, per level, per task — its Eq. 2) is a
// direct function of these objects' evolution.
package amr

import (
	"fmt"
	"sort"

	"amrproxyio/internal/grid"
)

// BoxArray is the set of boxes that tile a level's valid region.
type BoxArray struct {
	Boxes []grid.Box
}

// NewBoxArray wraps a box list.
func NewBoxArray(boxes []grid.Box) BoxArray {
	return BoxArray{Boxes: boxes}
}

// SingleBoxArray covers dom with one box, then splits it to respect
// maxGridSize with blockingFactor alignment — exactly how AMReX builds the
// level-0 grid set from amr.n_cell and amr.max_grid_size.
func SingleBoxArray(dom grid.Box, maxGridSize, blockingFactor int) BoxArray {
	return BoxArray{Boxes: dom.SplitMax(maxGridSize, blockingFactor)}
}

// Len returns the number of boxes.
func (ba BoxArray) Len() int { return len(ba.Boxes) }

// NumPts is the total cell count over all boxes.
func (ba BoxArray) NumPts() int64 {
	var n int64
	for _, b := range ba.Boxes {
		n += b.NumPts()
	}
	return n
}

// MinimalBox is the bounding box of the array.
func (ba BoxArray) MinimalBox() grid.Box {
	if len(ba.Boxes) == 0 {
		return grid.Empty()
	}
	out := ba.Boxes[0]
	for _, b := range ba.Boxes[1:] {
		out.Lo = out.Lo.Min(b.Lo)
		out.Hi = out.Hi.Max(b.Hi)
	}
	return out
}

// Contains reports whether cell p is covered by any box.
func (ba BoxArray) Contains(p grid.IntVect) bool {
	for _, b := range ba.Boxes {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// ContainsBox reports whether box o is entirely covered by the union of
// the array's boxes.
func (ba BoxArray) ContainsBox(o grid.Box) bool {
	remaining := []grid.Box{o}
	for _, b := range ba.Boxes {
		var next []grid.Box
		for _, r := range remaining {
			next = append(next, r.Difference(b)...)
		}
		remaining = next
		if len(remaining) == 0 {
			return true
		}
	}
	return len(remaining) == 0
}

// Intersections returns the indices and overlap boxes of all array boxes
// intersecting b.
func (ba BoxArray) Intersections(b grid.Box) []Intersection {
	var out []Intersection
	for i, ab := range ba.Boxes {
		if isect := ab.Intersect(b); !isect.IsEmpty() {
			out = append(out, Intersection{Index: i, Box: isect})
		}
	}
	return out
}

// Intersection pairs a box index with the overlap region.
type Intersection struct {
	Index int
	Box   grid.Box
}

// Refine maps every box to the finer index space.
func (ba BoxArray) Refine(ratio int) BoxArray {
	out := make([]grid.Box, len(ba.Boxes))
	for i, b := range ba.Boxes {
		out[i] = b.Refine(ratio)
	}
	return BoxArray{Boxes: out}
}

// Coarsen maps every box to the coarser index space.
func (ba BoxArray) Coarsen(ratio int) BoxArray {
	out := make([]grid.Box, len(ba.Boxes))
	for i, b := range ba.Boxes {
		out[i] = b.Coarsen(ratio)
	}
	return BoxArray{Boxes: out}
}

// Complement returns the parts of region not covered by the array.
func (ba BoxArray) Complement(region grid.Box) []grid.Box {
	remaining := []grid.Box{region}
	for _, b := range ba.Boxes {
		var next []grid.Box
		for _, r := range remaining {
			next = append(next, r.Difference(b)...)
		}
		remaining = next
		if len(remaining) == 0 {
			break
		}
	}
	return remaining
}

// IsDisjoint verifies no two boxes overlap (an AMReX BoxArray invariant
// for valid regions).
func (ba BoxArray) IsDisjoint() bool {
	for i := range ba.Boxes {
		for j := i + 1; j < len(ba.Boxes); j++ {
			if ba.Boxes[i].Intersects(ba.Boxes[j]) {
				return false
			}
		}
	}
	return true
}

func (ba BoxArray) String() string {
	return fmt.Sprintf("BoxArray{%d boxes, %d cells}", ba.Len(), ba.NumPts())
}

// DistributionMapping assigns each box of a BoxArray to an owning rank.
type DistributionMapping struct {
	Owner []int
}

// DistStrategy selects the decomposition algorithm.
type DistStrategy int

const (
	// DistRoundRobin assigns box i to rank i % nprocs (AMReX's simplest).
	DistRoundRobin DistStrategy = iota
	// DistKnapsack balances total cells per rank greedily (largest box to
	// least-loaded rank), AMReX's default-ish heuristic.
	DistKnapsack
	// DistSFC orders boxes along a Morton space-filling curve and chops
	// the curve into nprocs contiguous chunks of roughly equal cells.
	DistSFC
)

func (s DistStrategy) String() string {
	switch s {
	case DistRoundRobin:
		return "roundrobin"
	case DistKnapsack:
		return "knapsack"
	case DistSFC:
		return "sfc"
	default:
		return fmt.Sprintf("DistStrategy(%d)", int(s))
	}
}

// Distribute builds a DistributionMapping for ba over nprocs ranks.
func Distribute(ba BoxArray, nprocs int, strategy DistStrategy) DistributionMapping {
	n := ba.Len()
	owner := make([]int, n)
	if nprocs < 1 {
		nprocs = 1
	}
	switch strategy {
	case DistRoundRobin:
		for i := range owner {
			owner[i] = i % nprocs
		}
	case DistKnapsack:
		type item struct {
			idx int
			pts int64
		}
		items := make([]item, n)
		for i, b := range ba.Boxes {
			items[i] = item{idx: i, pts: b.NumPts()}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].pts != items[b].pts {
				return items[a].pts > items[b].pts
			}
			return items[a].idx < items[b].idx // deterministic tie-break
		})
		load := make([]int64, nprocs)
		for _, it := range items {
			best := 0
			for r := 1; r < nprocs; r++ {
				if load[r] < load[best] {
					best = r
				}
			}
			owner[it.idx] = best
			load[best] += it.pts
		}
	case DistSFC:
		type item struct {
			idx  int
			code uint64
			pts  int64
		}
		items := make([]item, n)
		var total int64
		for i, b := range ba.Boxes {
			c := b.Lo.Add(b.Hi) // 2*center; monotone in center
			items[i] = item{idx: i, code: grid.Morton(c.X, c.Y), pts: b.NumPts()}
			total += b.NumPts()
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].code != items[b].code {
				return items[a].code < items[b].code
			}
			return items[a].idx < items[b].idx
		})
		perRank := float64(total) / float64(nprocs)
		var acc int64
		rank := 0
		for _, it := range items {
			if rank < nprocs-1 && float64(acc) >= perRank*float64(rank+1) {
				rank++
			}
			owner[it.idx] = rank
			acc += it.pts
		}
	default:
		panic(fmt.Sprintf("amr: unknown distribution strategy %d", strategy))
	}
	return DistributionMapping{Owner: owner}
}

// RankBoxes returns the box indices owned by rank.
func (dm DistributionMapping) RankBoxes(rank int) []int {
	var out []int
	for i, o := range dm.Owner {
		if o == rank {
			out = append(out, i)
		}
	}
	return out
}

// LoadPerRank returns total cells owned by each of nprocs ranks.
func (dm DistributionMapping) LoadPerRank(ba BoxArray, nprocs int) []int64 {
	load := make([]int64, nprocs)
	for i, o := range dm.Owner {
		load[o] += ba.Boxes[i].NumPts()
	}
	return load
}
